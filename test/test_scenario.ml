(* Tests for the declarative scenario layer: registry coverage (every
   registered algorithm reachable from the CLI enums — the drift the
   registries were built to kill), the JSON codec (decode ∘ encode = id,
   by qcheck property over valid specs), and execution equivalence — the
   single Scenario.run dispatch path must reproduce, bit for bit, the
   Runner.result of the hand-built wiring it replaced, across the 42
   golden configs of test_golden.ml and through a save/load round trip. *)

module Param = Bfdn_scenario.Param
module Algo_registry = Bfdn_scenario.Algo_registry
module World_registry = Bfdn_scenario.World_registry
module Scenario = Bfdn_scenario.Scenario
module Job = Bfdn_engine.Job
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Bfdn_algo = Bfdn.Bfdn_algo
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

(* ---- registry coverage: nothing registered can be CLI-unreachable ---- *)

let test_worlds_cover_tree_gen () =
  check_sl "tree worlds = Tree_gen.families" Tree_gen.families
    World_registry.tree_names

let test_algos_reachable_from_cli () =
  List.iter
    (fun name ->
      checkb (name ^ " in --algo enum") true
        (List.mem (name, name) Algo_registry.cli_choices))
    Algo_registry.tree_names;
  (* the adversary subcommand's enum is exactly the adaptive-capable
     subset — the bfdn|cte-only drift this replaces *)
  List.iter
    (fun name ->
      let e = Option.get (Algo_registry.find name) in
      checkb
        (name ^ " in adversary enum iff adaptive")
        (Algo_registry.caps e).Algo_registry.adaptive
        (List.mem_assoc name Algo_registry.adaptive_cli_choices))
    Algo_registry.tree_names;
  (* aliases resolve to their canonical entry and appear in the enum *)
  List.iter
    (fun (e : Algo_registry.entry) ->
      List.iter
        (fun alias ->
          checkb (alias ^ " alias resolves") true
            (match Algo_registry.find alias with
            | Some e' -> e' == e
            | None -> false);
          if (Algo_registry.caps e).Algo_registry.tree then
            checkb (alias ^ " alias in enum") true
              (List.mem (alias, e.name) Algo_registry.cli_choices))
        e.aliases)
    Algo_registry.all

let test_engine_vocabulary_is_registry () =
  check_sl "Job.algos" Algo_registry.tree_names Job.algos;
  check_sl "Job.policies" World_registry.policy_names Job.policies

let test_caps_match_constructors () =
  (* The capability matrix is derived, so a listed capability without a
     constructor (or vice versa) is impossible by construction — this
     pins the derivation itself, plus the name lists built from it. *)
  List.iter
    (fun (e : Algo_registry.entry) ->
      let c = Algo_registry.caps e in
      checkb (e.name ^ " tree cap = constructor") c.Algo_registry.tree
        (e.make_tree <> None);
      checkb (e.name ^ " graph cap = constructor") c.Algo_registry.graph
        (e.make_graph <> None);
      checkb (e.name ^ " async cap = constructor") c.Algo_registry.async
        (e.make_async <> None);
      if c.Algo_registry.adaptive then
        checkb (e.name ^ " adaptive implies tree") true c.Algo_registry.tree;
      checkb (e.name ^ " has a constructor") true
        (c.Algo_registry.tree || c.Algo_registry.graph || c.Algo_registry.async);
      checkb (e.name ^ " in graph_names iff graph-capable")
        c.Algo_registry.graph
        (List.mem e.name Algo_registry.graph_names);
      checkb (e.name ^ " in async_names iff async-capable")
        c.Algo_registry.async
        (List.mem e.name Algo_registry.async_names))
    Algo_registry.all;
  checkb "a graph algorithm is registered" true
    (Algo_registry.graph_names <> []);
  checkb "an async algorithm is registered" true
    (Algo_registry.async_names <> []);
  checkb "a graph world is registered" true (World_registry.graph_names <> [])

let test_every_world_builds_and_explores () =
  (* Tiny end-to-end run of every tree world through the one dispatch
     path, so a registered world can't silently be unrunnable. *)
  List.iter
    (fun world ->
      let spec =
        Scenario.make ~k:4 ~seed:7
          (Scenario.world
             ~params:[ ("depth_hint", Param.Int 6); ("n", Param.Int 80) ]
             world)
      in
      let o = Scenario.run spec in
      checkb (world ^ " explored") true o.Scenario.result.explored)
    World_registry.tree_names

let test_every_policy_runs () =
  List.iter
    (fun policy ->
      let spec =
        Scenario.make ~k:4 ~seed:7
          (Scenario.adversarial ~policy ~capacity:120 ~depth_budget:30)
      in
      let o = Scenario.run spec in
      checkb (policy ^ " explored") true o.Scenario.result.explored;
      checkb (policy ^ " has replay") true (o.Scenario.replay_rounds <> None))
    World_registry.policy_names

(* ---- validation ---- *)

let expect_error what spec =
  match Scenario.validate spec with
  | Ok () -> Alcotest.failf "%s: expected a validation error" what
  | Error msg -> checkb (what ^ " error mentions cause") true (msg <> "")

let test_validate_rejects () =
  expect_error "unknown algorithm"
    (Scenario.make ~algo:"no-such-algo" (Scenario.world "comb"));
  expect_error "unknown world"
    (Scenario.make (Scenario.world "no-such-world"));
  expect_error "unknown policy"
    (Scenario.make
       (Scenario.adversarial ~policy:"nope" ~capacity:10 ~depth_budget:5));
  (* capability mismatches *)
  expect_error "graph algo on tree scenario"
    (Scenario.make ~algo:"bfdn-graph" (Scenario.world "comb"));
  expect_error "grid world in a tree scenario"
    (Scenario.make (Scenario.world "grid"));
  expect_error "oracle-reading algo vs adaptive adversary"
    (Scenario.make ~algo:"offline"
       (Scenario.adversarial ~policy:"miser" ~capacity:10 ~depth_budget:5));
  (* parameter schema *)
  expect_error "unknown algo param"
    (Scenario.make ~algo_params:[ ("nope", Param.Int 1) ]
       (Scenario.world "comb"));
  expect_error "wrong param type"
    (Scenario.make
       (Scenario.world ~params:[ ("n", Param.String "many") ] "comb"));
  expect_error "k < 1" (Scenario.make ~k:0 (Scenario.world "comb"));
  expect_error "max_rounds < 1"
    (Scenario.make ~max_rounds:0 (Scenario.world "comb"));
  (* but the adaptive subset does accept every adaptive algorithm *)
  List.iter
    (fun algo ->
      checkb (algo ^ " accepted vs adversary") true
        (Scenario.validate
           (Scenario.make ~algo
              (Scenario.adversarial ~policy:"miser" ~capacity:10
                 ~depth_budget:5))
        = Ok ()))
    Algo_registry.adaptive_names

(* ---- JSON codec ---- *)

let test_json_shape_and_defaults () =
  let spec =
    Scenario.make ~algo:"bfdn-rec"
      ~algo_params:[ ("ell", Param.Int 3) ]
      ~k:9 ~seed:3 ~max_rounds:77
      (Scenario.generated ~family:"comb" ~n:500 ~depth_hint:12)
  in
  checks "stable wire format"
    {|{"schema_version":1,"world":{"name":"comb","params":{"depth_hint":12,"n":500}},"algo":{"name":"bfdn-rec","params":{"ell":3}},"k":9,"seed":3,"max_rounds":77,"metrics":false}|}
    (Scenario.to_string spec);
  (* member order is irrelevant and optional fields default *)
  match
    Scenario.of_string
      {| {"seed":3, "k":9, "algo":{"name":"bfdn-rec","params":{"ell":3}},
          "world":{"name":"comb","params":{"n":500,"depth_hint":12}},
          "schema_version":1} |}
  with
  | Error e -> Alcotest.fail e
  | Ok t ->
      checkb "decoded to the same spec (modulo optionals)" true
        (Scenario.equal t { spec with max_rounds = None })

let test_json_rejects () =
  List.iter
    (fun (what, s) ->
      checkb what true (Result.is_error (Scenario.of_string s)))
    [
      ("not json", "{nope");
      ("missing instance", {|{"schema_version":1,"algo":{"name":"bfdn"},"k":1,"seed":0}|});
      ( "both instances",
        {|{"schema_version":1,"world":{"name":"comb"},"adversary":{"name":"miser"},"algo":{"name":"bfdn"},"k":1,"seed":0}|}
      );
      ( "bad version",
        {|{"schema_version":99,"world":{"name":"comb"},"algo":{"name":"bfdn"},"k":1,"seed":0}|}
      );
      ( "unknown algorithm",
        {|{"schema_version":1,"world":{"name":"comb"},"algo":{"name":"zap"},"k":1,"seed":0}|}
      );
      ( "non-int k",
        {|{"schema_version":1,"world":{"name":"comb"},"algo":{"name":"bfdn"},"k":"many","seed":0}|}
      );
    ]

(* qcheck: decode ∘ encode = id over randomly generated valid specs,
   including adversarial instances, parameter bindings of every type and
   the optional fields. *)
let spec_gen =
  let open QCheck2.Gen in
  let value_for ?world (s : Param.spec) =
    (* "scale" is value-checked by validate (and "lazy" only on the
       families with lazy support), so draw from the legal set. *)
    if s.key = "scale" then
      let choices =
        "eager"
        ::
        (match world with
        | Some w when Bfdn_sim.Lazy_world.supported w -> [ "lazy" ]
        | _ -> [])
      in
      map (fun s -> Param.String s) (oneofl choices)
    else
      match s.default with
      | Param.Int _ -> map (fun i -> Param.Int i) (int_range (-1000) 1000)
      | Param.Float _ ->
          map (fun f -> Param.Float f) (float_range (-1e6) 1e6)
      | Param.Bool _ -> map (fun b -> Param.Bool b) bool
      | Param.String _ ->
          map (fun s -> Param.String s) (string_size ~gen:printable (0 -- 8))
  in
  let bindings_for ?world schema =
    (* each key independently present or defaulted *)
    let rec go = function
      | [] -> return []
      | (s : Param.spec) :: rest ->
          bool >>= fun keep ->
          go rest >>= fun tl ->
          if keep then value_for ?world s >>= fun v -> return ((s.key, v) :: tl)
          else return tl
    in
    go schema
  in
  bool >>= fun adversarial ->
  (if adversarial then
     oneofl World_registry.policies >>= fun (p : World_registry.policy_entry) ->
     bindings_for p.p_params >>= fun params ->
     return (Scenario.Adversarial { policy = p.p_name; params })
   else
     oneofl World_registry.tree_names >>= fun world ->
     let entry = Option.get (World_registry.find world) in
     bindings_for ~world entry.params >>= fun params ->
     return (Scenario.World { world; params }))
  >>= fun instance ->
  oneofl
    (if adversarial then Algo_registry.adaptive_names
     else Algo_registry.tree_names)
  >>= fun algo ->
  bindings_for (Option.get (Algo_registry.find algo)).params
  >>= fun algo_params ->
  int_range 1 512 >>= fun k ->
  int_range (-100000) 100000 >>= fun seed ->
  opt (int_range 1 100000) >>= fun max_rounds ->
  bool >>= fun metrics ->
  return
    (Scenario.make ~algo ~algo_params ~k ~seed ?max_rounds ~metrics instance)

let prop_json_roundtrip =
  QCheck2.Test.make ~count:500 ~name:"scenario json round-trip"
    ~print:Scenario.to_string spec_gen (fun spec ->
      match Scenario.of_string (Scenario.to_string spec) with
      | Ok spec' -> Scenario.equal spec spec'
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

(* Graph/grid specs: same codec property over the version-2 vocabulary,
   plus the version pin — a graph world (or async-only algorithm) must
   be emitted as schema_version 2, never retroactively upgrade a plain
   tree spec. *)
let graph_spec_gen =
  let open QCheck2.Gen in
  let int_param = map (fun i -> Param.Int i) (int_range 1 64) in
  bool >>= fun async ->
  (if async then
     oneofl World_registry.tree_names >>= fun world ->
     oneofl Algo_registry.async_names >>= fun algo ->
     float_range 0.0 2.0 >>= fun spread ->
     return
       ( Scenario.World { world; params = [] },
         algo,
         [ ("speed_spread", Param.Float spread) ] )
   else
     oneofl World_registry.graph_names >>= fun world ->
     let entry = Option.get (World_registry.find world) in
     let rec go = function
       | [] -> return []
       | (s : Param.spec) :: rest ->
           bool >>= fun keep ->
           go rest >>= fun tl ->
           if keep then int_param >>= fun v -> return ((s.Param.key, v) :: tl)
           else return tl
     in
     go entry.params >>= fun params ->
     oneofl Algo_registry.graph_names >>= fun algo ->
     return (Scenario.World { world; params }, algo, []))
  >>= fun (instance, algo, algo_params) ->
  int_range 1 64 >>= fun k ->
  int_range 0 100000 >>= fun seed ->
  return (Scenario.make ~algo ~algo_params ~k ~seed instance)

let prop_graph_json_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"graph/async spec json round-trip"
    ~print:Scenario.to_string graph_spec_gen (fun spec ->
      let wire = Scenario.to_string spec in
      if
        not
          (String.length wire > 20
          && String.sub wire 0 20 = {|{"schema_version":2,|})
      then QCheck2.Test.fail_reportf "not emitted as version 2: %s" wire;
      match Scenario.of_string wire with
      | Ok spec' -> Scenario.equal spec spec'
      | Error e -> QCheck2.Test.fail_reportf "decode failed: %s" e)

(* ---- execution equivalence ----

   Scenario.run must reproduce the exact Runner.result of the hand-built
   wiring it replaced. The 42 configs are those of test_golden.ml: the 7
   golden families × 3 anchor policies × shortcut ∈ {false, true}, at
   k = 9, n = 500, depth_hint = 12, with the engine's historical stream
   derivation (split 0 = tree, split 1 = algorithm). *)

let result_t =
  Alcotest.testable Runner.pp_result (fun (a : Runner.result) b -> a = b)

let golden_families =
  [ "comb"; "binary"; "random"; "trap"; "caterpillar"; "spider"; "hidden-path" ]

let policies = [ "least-loaded"; "first-open"; "random-open" ]

let hand_wired ~family ~policy ~shortcut ~seed =
  let root = Rng.create seed in
  let tree =
    Tree_gen.of_family family ~rng:(Rng.split root 0) ~n:500 ~depth_hint:12
  in
  let env = Env.create tree ~k:9 in
  let pol =
    match policy with
    | "least-loaded" -> Bfdn_algo.Least_loaded
    | "first-open" -> Bfdn_algo.First_open
    | _ -> Bfdn_algo.Random_open (Rng.split root 1)
  in
  let t = Bfdn_algo.make ~policy:pol ~shortcut env in
  Runner.run (Bfdn_algo.algo t) env

let test_golden_equivalence () =
  let idx = ref 0 in
  List.iter
    (fun family ->
      List.iter
        (fun policy ->
          List.iter
            (fun shortcut ->
              let seed = 1000 + !idx in
              incr idx;
              let spec =
                Scenario.make ~algo:"bfdn"
                  ~algo_params:
                    [
                      ("policy", Param.String policy);
                      ("shortcut", Param.Bool shortcut);
                    ]
                  ~k:9 ~seed
                  (Scenario.generated ~family ~n:500 ~depth_hint:12)
              in
              Alcotest.check result_t
                (Printf.sprintf "%s/%s/shortcut=%b" family policy shortcut)
                (hand_wired ~family ~policy ~shortcut ~seed)
                (Scenario.run spec).Scenario.result)
            [ false; true ])
        policies)
    golden_families;
  Alcotest.(check int) "all 42 golden configs covered" 42 !idx

let test_job_run_is_scenario_run () =
  (* the engine's Job.run and Scenario.run are one path, generated and
     adversarial alike *)
  let jobs =
    [
      Job.make ~algo:"cte" ~k:7 ~seed:11
        (Job.Generated { family = "trap"; n = 300; depth_hint = 10 });
      Job.make ~algo:"random-walk" ~k:3 ~seed:5
        (Job.Generated { family = "star"; n = 60; depth_hint = 2 });
      Job.make ~algo:"bfdn" ~k:6 ~seed:2
        (Job.Adversarial
           { policy = "thick-comb"; capacity = 150; depth_budget = 40 });
    ]
  in
  List.iter
    (fun job ->
      checkb (Job.describe job) true
        (Scenario.equal_outcome (Job.run job) (Scenario.run job)))
    jobs

let test_save_load_reexecute () =
  let path = Filename.temp_file "scenario" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let spec =
        Scenario.make ~algo:"bfdn-rec"
          ~algo_params:[ ("ell", Param.Int 2) ]
          ~k:5 ~seed:33
          (Scenario.adversarial ~policy:"corridor" ~capacity:200
             ~depth_budget:50)
      in
      Scenario.save ~path spec;
      match Scenario.load path with
      | Error e -> Alcotest.fail e
      | Ok spec' ->
          checkb "spec survives the disk round trip" true
            (Scenario.equal spec spec');
          checkb "re-executed outcome is identical" true
            (Scenario.equal_outcome (Scenario.run spec) (Scenario.run spec')))

let test_run_on_tree_matches_run () =
  (* materialize + run_on_tree is the --tree-file replay path; on the
     spec's own tree it must equal Scenario.run exactly. *)
  let spec =
    Scenario.make ~algo:"bfdn" ~k:6 ~seed:9
      (Scenario.generated ~family:"random-deep" ~n:250 ~depth_hint:30)
  in
  checkb "replay on the materialized tree is identical" true
    (Scenario.equal_outcome (Scenario.run spec)
       (Scenario.run_on_tree spec (Scenario.materialize spec)))

let test_lazy_scale_runs () =
  (* scale=lazy dispatches the world through Lazy_world: every supported
     family must validate, fully explore, and survive materialize (the
     --tree-file path for lazy specs). *)
  List.iter
    (fun world ->
      let spec =
        Scenario.make ~k:4 ~seed:7
          (Scenario.world
             ~params:
               [
                 ("depth_hint", Param.Int 6); ("n", Param.Int 80);
                 ("scale", Param.String "lazy");
               ]
             world)
      in
      (match Scenario.validate spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s scale=lazy rejected: %s" world e);
      let o = Scenario.run spec in
      checkb (world ^ " lazy explored") true o.Scenario.result.explored;
      let t = Scenario.materialize spec in
      checkb (world ^ " lazy materializes") true (Bfdn_trees.Tree.n t > 1))
    (List.filter Bfdn_sim.Lazy_world.supported World_registry.tree_names)

let test_lazy_scale_rejects_unsupported () =
  let spec =
    Scenario.make ~k:4 ~seed:7
      (Scenario.world
         ~params:[ ("scale", Param.String "lazy") ]
         "hidden-path")
  in
  (match Scenario.validate spec with
  | Ok () -> Alcotest.fail "hidden-path scale=lazy must be rejected"
  | Error _ -> ());
  let bad =
    Scenario.make ~k:4 ~seed:7
      (Scenario.world ~params:[ ("scale", Param.String "huge") ] "binary")
  in
  match Scenario.validate bad with
  | Ok () -> Alcotest.fail "unknown scale value must be rejected"
  | Error _ -> ()

(* ---- graph and async worlds through the one executor ---- *)

let grid_spec ?(faults = []) ?(k = 5) ?(seed = 13) () =
  Scenario.make ~algo:"bfdn-graph" ~k ~seed ~faults
    (Scenario.world
       ~params:
         [
           ("height", Param.Int 7); ("obstacles", Param.Int 3);
           ("width", Param.Int 9);
         ]
       "grid")

let test_every_graph_world_explores () =
  (* Mirror of test_every_world_builds_and_explores for the graph
     vocabulary: a registered graph world must run end to end through
     Scenario.run with a graph-capable algorithm. *)
  List.iter
    (fun world ->
      let spec = Scenario.make ~algo:"bfdn-graph" ~k:4 ~seed:7
          (Scenario.world world)
      in
      let o = Scenario.run spec in
      checkb (world ^ " explored") true o.Scenario.result.explored;
      checkb (world ^ " back at origin") true o.Scenario.result.at_root)
    World_registry.graph_names

let test_async_spec_runs () =
  let spec =
    Scenario.make ~algo:"bfdn-async"
      ~algo_params:[ ("speed_spread", Param.Float 0.5) ]
      ~k:6 ~seed:11
      (Scenario.generated ~family:"comb" ~n:200 ~depth_hint:8)
  in
  let o = Scenario.run spec in
  checkb "async explored" true o.Scenario.result.explored;
  checkb "async at root" true o.Scenario.result.at_root;
  checkb "async outcome deterministic" true
    (Scenario.equal_outcome o (Scenario.run spec));
  (* run_on_tree drives the async path on the spec's own tree *)
  checkb "async run_on_tree matches run" true
    (Scenario.equal_outcome o
       (Scenario.run_on_tree spec (Scenario.materialize spec)))

let test_graph_batch_determinism () =
  (* the 1-vs-N oracle now covers graph and async specs: engine jobs are
     scenarios, so a grid sweep shards across workers bit-for-bit *)
  let module Batch = Bfdn_engine.Batch in
  let jobs =
    [
      grid_spec ();
      grid_spec ~k:9 ~seed:40 ();
      Scenario.make ~algo:"bfdn-graph" ~k:6 ~seed:3
        (Scenario.world ~params:[ ("n", Param.Int 200) ] "random-graph");
      Scenario.make ~algo:"bfdn-async" ~k:4 ~seed:8
        (Scenario.generated ~family:"random"~n:150 ~depth_hint:10);
    ]
  in
  let seq = Batch.run ~workers:1 jobs in
  let par = Batch.run ~workers:3 jobs in
  List.iter2
    (fun (job, a) (_, b) ->
      match (a, b) with
      | Ok x, Ok y ->
          checkb
            (Printf.sprintf "1 vs 3 workers: %s" (Job.describe job))
            true (Job.equal_outcome x y)
      | _ -> Alcotest.fail (Job.describe job ^ ": job failed"))
    seq par

let test_grid_fault_sweep () =
  (* the E17-style fault machinery applies to grid worlds: crashed
     robots freeze, restarts teleport to the origin, and the run still
     covers the graph (the graph variant self-heals by re-anchoring). *)
  let faulty =
    grid_spec
      ~faults:[ ("rate", Param.Float 0.1); ("restart", Param.Int 12) ]
      ()
  in
  let clean = grid_spec () in
  let of_ = Scenario.run faulty and oc = Scenario.run clean in
  checkb "faulty grid run explored" true of_.Scenario.result.explored;
  checkb "faulty grid run returns home" true of_.Scenario.result.at_root;
  checkb "faults perturb the schedule" true
    (of_.Scenario.result <> oc.Scenario.result);
  checkb "fault schedule replays identically" true
    (Scenario.equal_outcome of_ (Scenario.run faulty))

let test_materialize_rejects_graph_worlds () =
  match Scenario.materialize (grid_spec ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "materialize must reject graph worlds"

let test_validate_rejects_kind_mismatch () =
  (* tree algorithm on a graph world and graph algorithm on a tree world
     are both caught by validate, not at execution *)
  let bad1 =
    Scenario.make ~algo:"bfdn" ~k:4 ~seed:1 (Scenario.world "grid")
  in
  let bad2 =
    Scenario.make ~algo:"bfdn-graph" ~k:4 ~seed:1 (Scenario.world "comb")
  in
  let bad3 =
    Scenario.make ~algo:"bfdn-graph" ~k:4 ~seed:1
      (Scenario.adversarial ~policy:"miser" ~capacity:100 ~depth_budget:30)
  in
  List.iter
    (fun (what, s) ->
      checkb what true (Result.is_error (Scenario.validate s)))
    [
      ("tree algo on grid", bad1);
      ("graph algo on tree", bad2);
      ("graph algo on adversary", bad3);
    ]

let test_probe_does_not_change_outcome () =
  let spec =
    Scenario.make ~algo:"bfdn" ~k:8 ~seed:4
      (Scenario.generated ~family:"comb" ~n:300 ~depth_hint:15)
  in
  let m = Bfdn_obs.Metrics.create () in
  checkb "metrics probe preserves the outcome" true
    (Scenario.equal_outcome (Scenario.run spec)
       (Scenario.run ~probe:(Bfdn_obs.Probe.of_metrics m) spec))

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "scenario",
    [
      tc "worlds cover Tree_gen" test_worlds_cover_tree_gen;
      tc "algorithms reachable from CLI" test_algos_reachable_from_cli;
      tc "engine vocabulary is the registry" test_engine_vocabulary_is_registry;
      tc "caps match constructors" test_caps_match_constructors;
      tc "every world builds and explores" test_every_world_builds_and_explores;
      tc "every policy runs" test_every_policy_runs;
      tc "validate rejects" test_validate_rejects;
      tc "json wire format" test_json_shape_and_defaults;
      tc "json rejects" test_json_rejects;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      QCheck_alcotest.to_alcotest prop_graph_json_roundtrip;
      tc "golden equivalence (42 configs)" test_golden_equivalence;
      tc "job.run = scenario.run" test_job_run_is_scenario_run;
      tc "save/load/re-execute" test_save_load_reexecute;
      tc "run_on_tree matches run" test_run_on_tree_matches_run;
      tc "lazy scale runs" test_lazy_scale_runs;
      tc "lazy scale rejects unsupported" test_lazy_scale_rejects_unsupported;
      tc "every graph world explores" test_every_graph_world_explores;
      tc "async spec runs" test_async_spec_runs;
      tc "graph batch 1 vs N workers" test_graph_batch_determinism;
      tc "grid fault sweep" test_grid_fault_sweep;
      tc "materialize rejects graph worlds" test_materialize_rejects_graph_worlds;
      tc "validate rejects kind mismatch" test_validate_rejects_kind_mismatch;
      tc "probe does not change outcome" test_probe_does_not_change_outcome;
    ] )
