(* Tests for seed-batched lockstep execution and intra-run sharding.

   The two contracts under test are determinism contracts:

   - batch oracle: every lane of [Seed_batch.run] is byte-identical to
     the sequential [Scenario.run] of the unbatched lane spec — across
     random configs (QCheck), including shapes served by the sequential
     fallback (adversarial, faults, randomized algorithms);
   - shard oracle: [Scenario.run ~shards:n] is byte-identical to the
     unsharded run for every n — the sharded select's merge is stable
     robot-index order by construction.

   Plus the soundness premises of the identical-lane collapse: the
   deterministic-family predicate is asserted against the generators
   themselves, and the collapse flag only appears when its proof
   obligations hold. *)

module Scenario = Bfdn_scenario.Scenario
module Param = Bfdn_scenario.Param
module World_registry = Bfdn_scenario.World_registry
module Seed_batch = Bfdn_engine.Seed_batch
module Tree_gen = Bfdn_trees.Tree_gen
module Tree = Bfdn_trees.Tree
module Rng = Bfdn_util.Rng
module Shard_pool = Bfdn_util.Shard_pool

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

let gen_spec ~family ~n ~k ~seed ?(algo = "bfdn") ?(batch_seeds = 1)
    ?algo_params ?faults () =
  Scenario.make ~algo ?algo_params ?faults ~k ~seed ~batch_seeds
    (Scenario.world
       ~params:[ ("n", Param.Int n); ("depth_hint", Param.Int 8) ]
       family)

let sequential_outcomes t =
  Array.init t.Scenario.batch_seeds (fun l ->
      Scenario.run (Scenario.unbatch t l))

let check_batch_equals_sequential what t =
  let report = Seed_batch.run t in
  let seq = sequential_outcomes t in
  checki (what ^ ": lane count") t.Scenario.batch_seeds
    (Array.length report.Seed_batch.outcomes);
  Array.iteri
    (fun l o ->
      checkb
        (Printf.sprintf "%s: lane %d identical" what l)
        true
        (Scenario.equal_outcome o seq.(l)))
    report.Seed_batch.outcomes;
  report

(* ---- deterministic-family predicate vs the generators ---- *)

let test_deterministic_families () =
  List.iter
    (fun family ->
      let build seed =
        Tree_gen.of_family family ~rng:(Rng.create seed) ~n:60 ~depth_hint:5
      in
      let same = Tree.equal (build 1) (build 99) in
      checkb
        (Printf.sprintf "family %s: predicate matches generator" family)
        (Tree_gen.deterministic_family family)
        same)
    Tree_gen.families;
  checkb "unknown family is not deterministic" false
    (Tree_gen.deterministic_family "no-such-family");
  checkb "world predicate: eager binary" true
    (World_registry.deterministic_tree "binary");
  checkb "world predicate: random is not" false
    (World_registry.deterministic_tree "random");
  checkb "world predicate: lazy scale is not" false
    (World_registry.deterministic_tree
       ~params:[ ("scale", Param.String "lazy") ]
       "binary");
  checkb "world predicate: graph world is not" false
    (World_registry.deterministic_tree "grid")

(* ---- collapse: flags only when the proof obligations hold ---- *)

let test_collapse_flags () =
  (* Deterministic family + draw-free algorithm: collapses. *)
  let r =
    check_batch_equals_sequential "binary/bfdn"
      (gen_spec ~family:"binary" ~n:120 ~k:8 ~seed:5 ~batch_seeds:8 ())
  in
  checkb "binary/bfdn collapses" true r.Seed_batch.collapsed;
  checkb "binary/bfdn shares the world" true r.Seed_batch.shared_world;
  checkb "binary/bfdn lockstep" true r.Seed_batch.lockstep;
  (* Randomized instance: no shared world, no collapse, still equal. *)
  let r =
    check_batch_equals_sequential "random/bfdn"
      (gen_spec ~family:"random" ~n:100 ~k:8 ~seed:6 ~batch_seeds:4 ())
  in
  checkb "random/bfdn does not share" false r.Seed_batch.shared_world;
  checkb "random/bfdn does not collapse" false r.Seed_batch.collapsed;
  checkb "random/bfdn still lockstep" true r.Seed_batch.lockstep;
  (* Drawing algorithm on a deterministic family: lanes genuinely
     differ, so the draw-free proof must fail. *)
  let r =
    check_batch_equals_sequential "binary/random-walk"
      (gen_spec ~family:"binary" ~n:60 ~k:4 ~seed:7 ~batch_seeds:3
         ~algo:"random-walk" ())
  in
  checkb "random-walk does not collapse" false r.Seed_batch.collapsed;
  (* Faults: per-lane schedules differ, so no collapse even when the
     world is shared. *)
  let r =
    check_batch_equals_sequential "faulty binary/bfdn"
      (gen_spec ~family:"binary" ~n:100 ~k:8 ~seed:8 ~batch_seeds:3
         ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
         ~faults:[ ("rate", Param.Float 0.2); ("restart", Param.Int 9) ]
         ())
  in
  checkb "faulty batch does not collapse" false r.Seed_batch.collapsed;
  checkb "faulty batch still shares the world" true r.Seed_batch.shared_world

let test_fallback_shapes () =
  (* Adversarial: sequential fallback, still lane-identical. *)
  let t =
    Scenario.make ~algo:"bfdn" ~k:4 ~seed:11 ~batch_seeds:3
      (Scenario.adversarial ~policy:"corridor" ~capacity:120 ~depth_budget:10)
  in
  let r = check_batch_equals_sequential "adversarial" t in
  checkb "adversarial falls back" false r.Seed_batch.lockstep;
  (* Round cap: hit_round_limit lanes stay identical. *)
  let t =
    {
      (gen_spec ~family:"comb" ~n:150 ~k:2 ~seed:12 ~batch_seeds:3 ()) with
      Scenario.max_rounds = Some 17;
    }
  in
  let r = check_batch_equals_sequential "round-capped" t in
  checkb "capped lane hit the limit" true
    r.Seed_batch.outcomes.(0).Scenario.result.Bfdn_sim.Runner.hit_round_limit

(* ---- qcheck: batch oracle across random configs ---- *)

let batched_spec_gen =
  let open QCheck2.Gen in
  oneofl [ "binary"; "comb"; "spider"; "random"; "star"; "caterpillar" ]
  >>= fun family ->
  (* Faults only pair with fault-tolerant bfdn — the other algorithms
     don't survive crash/restart (same restriction as the fault suite). *)
  oneofl [ []; [ ("rate", Param.Float 0.15); ("restart", Param.Int 7) ] ]
  >>= fun faults ->
  (if faults <> [] then return "bfdn"
   else oneofl [ "bfdn"; "bfdn-wr"; "cte"; "dfs"; "random-walk" ])
  >>= fun algo ->
  (match algo with
  | "bfdn" ->
      oneofl [ "least-loaded"; "first-open"; "random-open" ] >>= fun p ->
      return
        (("policy", Param.String p)
        ::
        (if faults <> [] then [ ("fault_tolerant", Param.Bool true) ] else []))
  | _ -> return [])
  >>= fun algo_params ->
  int_range 1 12 >>= fun k ->
  int_range 30 150 >>= fun n ->
  int_range (-5000) 5000 >>= fun seed ->
  int_range 2 5 >>= fun batch_seeds ->
  return
    (gen_spec ~family ~n ~k ~seed ~algo ~batch_seeds ~algo_params ~faults ())

let prop_batch_equals_sequential =
  QCheck2.Test.make ~count:40 ~name:"seed batch = S sequential runs"
    ~print:Scenario.to_string batched_spec_gen (fun t ->
      let report = Seed_batch.run t in
      let seq = sequential_outcomes t in
      Array.for_all2
        (fun a b -> Scenario.equal_outcome a b)
        report.Seed_batch.outcomes seq)

(* ---- sharding: bit-for-bit across shard counts ---- *)

let test_shard_equality () =
  List.iter
    (fun (what, t) ->
      let plain = Scenario.run t in
      List.iter
        (fun shards ->
          let sharded = Scenario.run ~shards t in
          checkb
            (Printf.sprintf "%s: %d shards = unsharded" what shards)
            true
            (Scenario.equal_outcome plain sharded))
        [ 1; 2; 3 ])
    [
      ("comb k=64", gen_spec ~family:"comb" ~n:400 ~k:64 ~seed:3 ());
      ("trap k=32", gen_spec ~family:"trap" ~n:300 ~k:32 ~seed:4 ());
      ( "shortcut spider",
        gen_spec ~family:"spider" ~n:300 ~k:16 ~seed:5
          ~algo_params:[ ("shortcut", Param.Bool true) ]
          () );
      ( "fault-tolerant binary",
        gen_spec ~family:"binary" ~n:200 ~k:8 ~seed:6
          ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
          ~faults:[ ("crashes", Param.String "1@8,3@20+25") ]
          () );
    ]

let test_shard_pool () =
  let pool = Shard_pool.create ~shards:3 in
  checki "shards" 3 (Shard_pool.shards pool);
  let hits = Array.make 100 0 in
  Shard_pool.run pool ~n:100 (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "every index exactly once" true (Array.for_all (( = ) 1) hits);
  (* Worker exceptions surface at the caller and the pool survives. *)
  checkb "exception propagates" true
    (try
       Shard_pool.run pool ~n:10 (fun i -> if i = 7 then failwith "boom");
       false
     with Failure _ -> true);
  Shard_pool.run pool ~n:100 (fun i -> hits.(i) <- hits.(i) + 1);
  checkb "pool alive after exception" true (Array.for_all (( = ) 2) hits);
  Shard_pool.shutdown pool;
  Shard_pool.shutdown pool (* idempotent *)

(* ---- batched specs on the wire ---- *)

let test_batch_wire () =
  let plain = gen_spec ~family:"comb" ~n:90 ~k:4 ~seed:2 () in
  let batched = { plain with Scenario.batch_seeds = 16 } in
  (* batch_seeds = 1 is the plain pre-batch wire form, byte for byte. *)
  checkb "batch=1 emits no batch member" false
    (contains ~affix:"batch" (Scenario.to_string plain));
  let wire = Scenario.to_string batched in
  checkb "batch member emitted" true
    (contains ~affix:{|"batch":{"seeds":16}|} wire);
  checkb "batched spec is version 2" true
    (contains ~affix:{|"schema_version":2|} wire);
  (match Scenario.of_string wire with
  | Ok t -> checkb "round-trips" true (Scenario.equal t batched)
  | Error e -> Alcotest.failf "batched spec failed to parse: %s" e);
  checkb "distinct fingerprints" true
    (Scenario.fingerprint plain <> Scenario.fingerprint batched);
  (* Range checks and the run-side rejection. *)
  checkb "batch=0 invalid" true
    (Result.is_error (Scenario.validate { plain with Scenario.batch_seeds = 0 }));
  checkb "batch>65536 invalid" true
    (Result.is_error
       (Scenario.validate { plain with Scenario.batch_seeds = 65537 }));
  checkb "Scenario.run rejects batched specs" true
    (try
       ignore (Scenario.run batched);
       false
     with Invalid_argument _ -> true);
  (* unbatch: lane seeds and bounds. *)
  checki "lane 3 seed" (batched.Scenario.seed + 3)
    (Scenario.unbatch batched 3).Scenario.seed;
  checkb "lane out of range" true
    (try
       ignore (Scenario.unbatch batched 16);
       false
     with Invalid_argument _ -> true)

let suite =
  ( "batch",
    [
      Alcotest.test_case "deterministic families" `Quick
        test_deterministic_families;
      Alcotest.test_case "collapse flags" `Quick test_collapse_flags;
      Alcotest.test_case "fallback shapes" `Quick test_fallback_shapes;
      Alcotest.test_case "shard equality" `Quick test_shard_equality;
      Alcotest.test_case "shard pool" `Quick test_shard_pool;
      Alcotest.test_case "batched wire form" `Quick test_batch_wire;
      QCheck_alcotest.to_alcotest prop_batch_equals_sequential;
    ] )
