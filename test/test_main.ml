(* Aggregated alcotest entry point: one suite per library. *)

let () =
  Alcotest.run "bfdn"
    [
      Test_util.suite;
      Test_obs.suite;
      Test_trees.suite;
      Test_succinct.suite;
      Test_sim.suite;
      Test_partial_diff.suite;
      Test_bfdn.suite;
      Test_golden.suite;
      Test_urn.suite;
      Test_planner.suite;
      Test_graphs.suite;
      Test_rec.suite;
      Test_baselines.suite;
      Test_alloc.suite;
      Test_bounds.suite;
      Test_adversary.suite;
      Test_async.suite;
      Test_engine.suite;
      Test_scenario.suite;
      Test_faults.suite;
      Test_batch.suite;
      Test_serve.suite;
    ]
