(* Tests for the exploration environment: discovery semantics, move
   legality, synchronous application, masks, whiteboards and traces. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Whiteboard = Bfdn_sim.Whiteboard
module Runner = Bfdn_sim.Runner
module Trace = Bfdn_sim.Trace
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small () = Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* ---- initial state ---- *)

let test_create_initial () =
  let env = Env.create (small ()) ~k:3 in
  let view = Env.view env in
  checki "k" 3 (Env.k env);
  checki "round" 0 (Env.round env);
  checkb "root explored" true (Partial_tree.is_explored view 0);
  checki "explored count" 1 (Partial_tree.num_explored view);
  checki "dangling at root" 2 (Partial_tree.num_dangling view);
  checkb "positions at root" true (Env.positions env = [| 0; 0; 0 |]);
  checkb "not fully explored" false (Env.fully_explored env);
  checkb "all at root" true (Env.all_at_root env)

let test_single_node_tree () =
  let env = Env.create (Tree.of_parents [| -1 |]) ~k:2 in
  checkb "explored" true (Env.fully_explored env)

(* ---- legality ---- *)

let test_up_at_root_rejected () =
  let env = Env.create (small ()) ~k:1 in
  checkb "Up at root" true (raises_invalid (fun () -> Env.apply env [| Env.Up |]))

let test_bad_port_rejected () =
  let env = Env.create (small ()) ~k:1 in
  checkb "port out of range" true
    (raises_invalid (fun () -> Env.apply env [| Env.Via_port 2 |]))

let test_wrong_arity_rejected () =
  let env = Env.create (small ()) ~k:2 in
  checkb "wrong arity" true
    (raises_invalid (fun () -> Env.apply env [| Env.Stay |]))

(* ---- discovery semantics ---- *)

let test_discovery () =
  let env = Env.create (small ()) ~k:1 in
  let view = Env.view env in
  Env.apply env [| Env.Via_port 0 |];
  (* robot moved to node 1 *)
  checki "position" 1 (Env.position env 0);
  checkb "1 explored" true (Partial_tree.is_explored view 1);
  checki "ports of 1" 3 (Partial_tree.num_ports view 1);
  checkb "port 0 is parent" true (Partial_tree.port view 1 0 = Partial_tree.To_parent);
  checkb "root port 0 resolved" true (Partial_tree.port view 0 0 = Partial_tree.Child 1);
  checkb "root port 1 dangling" true (Partial_tree.port view 0 1 = Partial_tree.Dangling);
  checki "dangling total" 3 (Partial_tree.num_dangling view);
  checki "edge events" 1 (Env.edge_events env);
  Partial_tree.check_invariants view

let test_two_robots_same_dangling () =
  let env = Env.create (small ()) ~k:2 in
  let view = Env.view env in
  Env.apply env [| Env.Via_port 0; Env.Via_port 0 |];
  checki "both at 1" 1 (Env.position env 0);
  checki "both at 1 (bis)" 1 (Env.position env 1);
  checki "explored" 2 (Partial_tree.num_explored view);
  checki "one edge event" 1 (Env.edge_events env);
  Partial_tree.check_invariants view

let test_up_event_counted_once () =
  let env = Env.create (small ()) ~k:1 in
  Env.apply env [| Env.Via_port 0 |];
  Env.apply env [| Env.Up |];
  checki "down+up events" 2 (Env.edge_events env);
  Env.apply env [| Env.Via_port 0 |];
  Env.apply env [| Env.Up |];
  checki "revisits are free" 2 (Env.edge_events env)

let test_metrics_moves () =
  let env = Env.create (small ()) ~k:2 in
  Env.apply env [| Env.Via_port 0; Env.Stay |];
  Env.apply env [| Env.Up; Env.Via_port 1 |];
  checki "total moves" 3 (Env.moves_total env);
  checki "robot 0 moves" 2 (Env.moves_of_robot env 0);
  checki "robot 1 moves" 1 (Env.moves_of_robot env 1);
  checki "rounds" 2 (Env.round env)

(* ---- masks (Section 4.2) ---- *)

let test_mask_pins_robot () =
  let mask ~round:_ ~robot = robot <> 0 in
  let env = Env.create ~mask (small ()) ~k:2 in
  checkb "robot 0 blocked" false (Env.allowed env 0);
  checkb "robot 1 allowed" true (Env.allowed env 1);
  Env.apply env [| Env.Via_port 0; Env.Via_port 1 |];
  checki "robot 0 pinned" 0 (Env.position env 0);
  checki "robot 1 moved" 2 (Env.position env 1);
  checki "allowed_total counts slots" 1 (Env.allowed_total env)

let test_mask_round_dependent () =
  let mask ~round ~robot:_ = round mod 2 = 1 in
  let env = Env.create ~mask (small ()) ~k:1 in
  Env.apply env [| Env.Via_port 0 |];
  checki "even round blocked" 0 (Env.position env 0);
  Env.apply env [| Env.Via_port 0 |];
  checki "odd round moves" 1 (Env.position env 0)

(* ---- partial tree direct exercises ---- *)

let test_partial_tree_queries_unexplored () =
  let env = Env.create (small ()) ~k:1 in
  let view = Env.view env in
  checkb "ports of unexplored" true
    (raises_invalid (fun () -> ignore (Partial_tree.num_ports view 3)))

let test_min_open_depth_progression () =
  let env = Env.create (Tree_gen.path 5) ~k:1 in
  let view = Env.view env in
  checkb "starts at 0" true (Partial_tree.min_open_depth view = Some 0);
  Env.apply env [| Env.Via_port 0 |];
  checkb "moves to 1" true (Partial_tree.min_open_depth view = Some 1);
  checkb "open nodes at min depth" true (Partial_tree.open_nodes_at_min_depth view = [ 1 ])

let test_ports_from_root () =
  let env = Env.create (small ()) ~k:1 in
  let view = Env.view env in
  Env.apply env [| Env.Via_port 0 |];
  Env.apply env [| Env.Via_port 1 |];
  (* robot is now at node 3 (first child of 1) *)
  checkb "path root->3" true (Partial_tree.ports_from_root view 3 = [ 0; 1 ]);
  checkb "is_ancestor in view" true (Partial_tree.is_ancestor view 1 3);
  checkb "not ancestor" false (Partial_tree.is_ancestor view 3 1)

let test_subtree_open () =
  let env = Env.create (small ()) ~k:1 in
  let view = Env.view env in
  Env.apply env [| Env.Via_port 0 |];
  checkb "whole tree open" true (Partial_tree.subtree_open view 0);
  checkb "subtree of 1 open" true (Partial_tree.subtree_open view 1)

(* Random exploration keeps the incremental bookkeeping consistent. *)
let prop_invariants_under_random_walk =
  QCheck.Test.make ~name:"partial-tree invariants under random walks" ~count:50
    QCheck.(pair (int_range 2 120) (int_range 1 5))
    (fun (n, k) ->
      let r = Rng.create (n * 31 + k) in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let tree = Tree.of_parents parents in
      let env = Env.create tree ~k in
      let view = Env.view env in
      for _ = 1 to 200 do
        let moves =
          Array.init k (fun i ->
              let pos = Env.position env i in
              let nports = Partial_tree.num_ports view pos in
              if nports = 0 then Env.Stay else Env.Via_port (Rng.int r nports))
        in
        Env.apply env moves
      done;
      Partial_tree.check_invariants view;
      true)

let prop_edge_events_bounded =
  QCheck.Test.make ~name:"edge events never exceed 2(n-1)" ~count:50
    QCheck.(int_range 2 100)
    (fun n ->
      let r = Rng.create (n * 7) in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let tree = Tree.of_parents parents in
      let env = Env.create tree ~k:3 in
      let view = Env.view env in
      for _ = 1 to 300 do
        let moves =
          Array.init 3 (fun i ->
              let pos = Env.position env i in
              let nports = Partial_tree.num_ports view pos in
              if nports = 0 then Env.Stay else Env.Via_port (Rng.int r nports))
        in
        Env.apply env moves
      done;
      Env.edge_events env <= 2 * (n - 1))

let prop_positions_always_explored =
  QCheck.Test.make ~name:"robot positions are always explored nodes" ~count:40
    QCheck.(pair (int_range 2 120) (int_range 1 5))
    (fun (n, k) ->
      let r = Rng.create ((n * 41) + k) in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let env = Env.create (Tree.of_parents parents) ~k in
      let view = Env.view env in
      let ok = ref true in
      for _ = 1 to 150 do
        let moves =
          Array.init k (fun i ->
              let pos = Env.position env i in
              let nports = Partial_tree.num_ports view pos in
              if nports = 0 then Env.Stay else Env.Via_port (Rng.int r nports))
        in
        Env.apply env moves;
        Array.iter
          (fun p -> if not (Partial_tree.is_explored view p) then ok := false)
          (Env.positions env)
      done;
      !ok)

(* ---- whiteboards ---- *)

let test_whiteboard_partition_descending () =
  let wb = Whiteboard.create ~hidden_n:4 in
  Whiteboard.init_node wb 1 ~num_ports:4 ~is_root:false;
  checkb "first" true (Whiteboard.partition wb 1 = Some 3);
  checkb "second" true (Whiteboard.partition wb 1 = Some 2);
  checkb "third" true (Whiteboard.partition wb 1 = Some 1);
  checkb "exhausted (port 0 is the parent)" true (Whiteboard.partition wb 1 = None);
  checkb "all dispatched" true (Whiteboard.all_dispatched wb 1)

let test_whiteboard_root_partition () =
  let wb = Whiteboard.create ~hidden_n:4 in
  Whiteboard.init_node wb 0 ~num_ports:2 ~is_root:true;
  checkb "port 1" true (Whiteboard.partition wb 0 = Some 1);
  checkb "port 0 dispatchable at root" true (Whiteboard.partition wb 0 = Some 0);
  checkb "done" true (Whiteboard.partition wb 0 = None)

let test_whiteboard_mark_dispatched () =
  let wb = Whiteboard.create ~hidden_n:4 in
  Whiteboard.init_node wb 1 ~num_ports:4 ~is_root:false;
  Whiteboard.mark_dispatched wb 1 3;
  checkb "skips externally dispatched" true (Whiteboard.partition wb 1 = Some 2)

let test_whiteboard_finished () =
  let wb = Whiteboard.create ~hidden_n:4 in
  Whiteboard.init_node wb 1 ~num_ports:3 ~is_root:false;
  checkb "not finished" false (Whiteboard.all_finished wb 1);
  Whiteboard.mark_finished wb 1 1;
  Whiteboard.mark_finished wb 1 2;
  checkb "finished" true (Whiteboard.all_finished wb 1);
  checkb "list" true (Whiteboard.finished_ports wb 1 = [ 1; 2 ]);
  checkb "is_finished" true (Whiteboard.is_finished wb 1 2)

let test_whiteboard_init_idempotent () =
  let wb = Whiteboard.create ~hidden_n:2 in
  Whiteboard.init_node wb 0 ~num_ports:3 ~is_root:true;
  ignore (Whiteboard.partition wb 0);
  Whiteboard.init_node wb 0 ~num_ports:3 ~is_root:true;
  checkb "state preserved" true (Whiteboard.partition wb 0 = Some 1)

let test_whiteboard_uninitialized () =
  let wb = Whiteboard.create ~hidden_n:2 in
  checkb "partition requires init" true
    (raises_invalid (fun () -> ignore (Whiteboard.partition wb 0)))

(* ---- runner & trace ---- *)

let test_runner_round_limit () =
  let env = Env.create (small ()) ~k:1 in
  let algo =
    { Runner.name = "lazy"; select = (fun env -> Array.make (Env.k env) Env.Stay);
      finished = (fun _ -> false) }
  in
  let r = Runner.run ~max_rounds:10 algo env in
  checkb "hit limit" true r.hit_round_limit;
  checki "rounds" 10 r.rounds

let test_trace_records () =
  let env = Env.create (small ()) ~k:1 in
  let trace = Trace.create () in
  Trace.record trace env;
  Env.apply env [| Env.Via_port 0 |];
  Trace.recorder trace env;
  checki "frames" 2 (Trace.length trace);
  let frames = Trace.frames trace in
  checki "first round" 0 (List.hd frames).Trace.round;
  checki "second explored" 2 (List.nth frames 1).Trace.explored

let test_trace_depth_timeline () =
  let env = Env.create (Tree_gen.path 6) ~k:2 in
  let trace = Trace.create () in
  Trace.record trace env;
  let algo = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env) in
  ignore (Runner.run ~on_round:(Trace.recorder trace) algo env);
  let s = Trace.depth_timeline trace env in
  checkb "has axis" true (String.length s > 0);
  checkb "mentions depth rows" true (String.contains s 'd')

let test_trace_render () =
  let env = Env.create (small ()) ~k:2 in
  let s = Trace.render_frame env in
  checkb "mentions robots" true (String.length s > 0 && String.contains s 'r')

let checks = Alcotest.(check string)

(* ---- golden renderings: the exact strings are part of the contract
   (EXAMPLES in the docs show them verbatim). ---- *)

let test_trace_render_golden_single () =
  let env = Env.create (Tree.of_parents [| -1 |]) ~k:1 in
  checks "single node"
    "round 0: 1 explored, 0 dangling\n0  <- robots [0]\n"
    (Trace.render_frame env)

let test_trace_render_golden_multi () =
  let env = Env.create (small ()) ~k:2 in
  checks "initial"
    "round 0: 1 explored, 2 dangling\n0 (+2?)  <- robots [0,1]\n"
    (Trace.render_frame env);
  Env.apply env [| Env.Via_port 0; Env.Via_port 1 |];
  checks "after one round"
    ("round 1: 3 explored, 3 dangling\n" ^ "0\n"
   ^ "  1 (+2?)  <- robots [0]\n" ^ "  2 (+1?)  <- robots [1]\n")
    (Trace.render_frame env)

let test_trace_timeline_golden_empty () =
  let env = Env.create (small ()) ~k:1 in
  let trace = Trace.create () in
  checks "no frames" "(no frames)\n" (Trace.depth_timeline trace env)

let test_trace_timeline_golden_single_frame () =
  let env = Env.create (small ()) ~k:2 in
  let trace = Trace.create () in
  Trace.record trace env;
  let legend =
    Bfdn_util.Ascii.legend
      [ ('.', "0"); (':', "1-2"); ('o', "3-5"); ('O', "6-10"); ('@', ">10") ]
  in
  checks "one frame, both robots at depth 0"
    ("robots per depth over time (1 frames):\n" ^ "d=0   :\n"
   ^ "      time ->\n" ^ legend ^ "\n")
    (Trace.depth_timeline trace env)

let test_trace_timeline_golden_multi_depth () =
  (* One robot walking down a path: the diagonal front, one frame per
     depth. *)
  let env = Env.create (Tree_gen.path 3) ~k:1 in
  let trace = Trace.create () in
  Trace.record trace env;
  Env.apply env [| Env.Via_port 0 |];
  Trace.record trace env;
  (* Port 0 of a non-root node is the parent edge; the dangling child
     port of a path node is port 1. *)
  Env.apply env [| Env.Via_port 1 |];
  Trace.record trace env;
  let legend =
    Bfdn_util.Ascii.legend
      [ ('.', "0"); (':', "1-2"); ('o', "3-5"); ('O', "6-10"); ('@', ">10") ]
  in
  checks "diagonal"
    ("robots per depth over time (3 frames):\n" ^ "d=0   :..\n"
   ^ "d=1   .:.\n" ^ "d=2   ..:\n" ^ "      time ->\n" ^ legend ^ "\n")
    (Trace.depth_timeline trace env)

let test_trace_ring_bounded () =
  let env = Env.create (Tree_gen.path 6) ~k:2 in
  let trace = Trace.create ~capacity:4 () in
  let algo = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env) in
  let r = Runner.run ~on_round:(Trace.recorder trace) algo env in
  checki "length counts every frame" r.Runner.rounds (Trace.length trace);
  checki "retained bounded" 4 (Trace.retained trace);
  checki "dropped" (r.Runner.rounds - 4) (Trace.dropped trace);
  let fs = Trace.frames trace in
  checki "frames returns retained" 4 (List.length fs);
  (* Newest [capacity] frames, chronological: the last one is the final
     round. *)
  checki "last frame is final round" r.Runner.rounds
    (List.nth fs 3).Trace.round

let test_trace_json_frame () =
  let env = Env.create (small ()) ~k:2 in
  Env.apply env [| Env.Via_port 0; Env.Via_port 1 |];
  checks "frame json"
    {|{"round":1,"explored":3,"dangling":3,"positions":[1,2]}|}
    (Bfdn_obs.Json.to_string (Trace.json_of_frame (Trace.frame_of_env env)))

(* ---- growable flat storage (huge tier) ---- *)

(* Above the preallocation threshold the partial tree starts small and
   grows geometrically with the revealed prefix. A deep revealed path
   exercises per-node growth, pool growth and the by-depth bucket
   growth together; invariants must hold throughout. *)
let test_partial_tree_grows_above_threshold () =
  let hidden_n = 200_000 and m = 70_000 in
  let pt = Partial_tree.Internal.create ~hidden_n ~root:0 in
  checkb "starts below hidden_n" true (Partial_tree.id_bound pt < hidden_n);
  Partial_tree.Internal.reveal pt 0 ~parent:None ~num_ports:1;
  for v = 1 to m do
    Partial_tree.Internal.resolve_dangling pt (v - 1)
      (if v - 1 = 0 then 0 else 1)
      v;
    Partial_tree.Internal.reveal pt v ~parent:(Some (v - 1))
      ~num_ports:(if v = m then 1 else 2)
  done;
  checki "explored count" (m + 1) (Partial_tree.num_explored pt);
  checki "depth of tip" m (Partial_tree.depth_of pt m);
  checkb "id_bound covers revealed ids" true (Partial_tree.id_bound pt > m);
  checkb "tip explored" true (Partial_tree.is_explored pt m);
  checkb "beyond bound unexplored" true
    (not (Partial_tree.is_explored pt (Partial_tree.id_bound pt)));
  checkb "complete" true (Partial_tree.complete pt);
  Partial_tree.check_invariants pt

let test_env_scratch_grows_with_view () =
  (* A lazy world above the threshold: env + algo scratch follow
     id_bound, and the run must still fully explore. *)
  let lw =
    Bfdn_sim.Lazy_world.make ~family:"binary" ~n:70_000 ~depth_hint:20
      ~seed:0
  in
  let env = Env.of_world (Bfdn_sim.Lazy_world.world lw) ~k:64 in
  let r = Runner.run (Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env)) env in
  checkb "explored" true r.Runner.explored;
  checkb "home" true r.Runner.at_root;
  checki "revealed all" (Bfdn_sim.Lazy_world.capacity lw)
    (Partial_tree.num_explored (Env.view env));
  Partial_tree.check_invariants (Env.view env)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "sim",
    [
      tc "create initial" test_create_initial;
      tc "single node tree" test_single_node_tree;
      tc "up at root rejected" test_up_at_root_rejected;
      tc "bad port rejected" test_bad_port_rejected;
      tc "wrong arity rejected" test_wrong_arity_rejected;
      tc "discovery" test_discovery;
      tc "two robots same dangling" test_two_robots_same_dangling;
      tc "up event counted once" test_up_event_counted_once;
      tc "metrics moves" test_metrics_moves;
      tc "mask pins robot" test_mask_pins_robot;
      tc "mask round dependent" test_mask_round_dependent;
      tc "unexplored queries rejected" test_partial_tree_queries_unexplored;
      tc "min open depth progression" test_min_open_depth_progression;
      tc "ports from root" test_ports_from_root;
      tc "subtree open" test_subtree_open;
      qc prop_invariants_under_random_walk;
      qc prop_edge_events_bounded;
      qc prop_positions_always_explored;
      tc "whiteboard partition descending" test_whiteboard_partition_descending;
      tc "whiteboard root partition" test_whiteboard_root_partition;
      tc "whiteboard mark dispatched" test_whiteboard_mark_dispatched;
      tc "whiteboard finished" test_whiteboard_finished;
      tc "whiteboard init idempotent" test_whiteboard_init_idempotent;
      tc "whiteboard uninitialized" test_whiteboard_uninitialized;
      tc "runner round limit" test_runner_round_limit;
      tc "trace records" test_trace_records;
      tc "trace depth timeline" test_trace_depth_timeline;
      tc "trace render" test_trace_render;
      tc "trace render golden single" test_trace_render_golden_single;
      tc "trace render golden multi" test_trace_render_golden_multi;
      tc "trace timeline golden empty" test_trace_timeline_golden_empty;
      tc "trace timeline golden single" test_trace_timeline_golden_single_frame;
      tc "trace timeline golden multi-depth" test_trace_timeline_golden_multi_depth;
      tc "trace ring bounded" test_trace_ring_bounded;
      tc "trace json frame" test_trace_json_frame;
      tc "partial tree grows above threshold"
        test_partial_tree_grows_above_threshold;
      tc "env scratch grows with view" test_env_scratch_grows_with_view;
    ] )
