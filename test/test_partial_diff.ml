(* Differential oracle for Partial_tree: a naive list-based reference
   implementation is driven through the same randomized reveal/resolve
   traces as the real structure, and every observable — port states,
   parents, depths, ports_from_root, min_open_depth, sorted open-node
   buckets — must agree at every step. This is what licenses the
   swap-remove bucket and parent-port-cache internals: any bookkeeping bug
   diverges from the reference within a few steps. *)

module Partial_tree = Bfdn_sim.Partial_tree
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* ---- reference implementation: association lists, recomputed scans ---- *)

module Ref_tree = struct
  type t = {
    root : int;
    mutable revealed : (int * int * int option) list; (* node, nports, parent *)
    mutable resolved : (int * int * int) list; (* v, port, child *)
  }

  let create ~root = { root; revealed = []; resolved = [] }

  let reveal t v ~parent ~num_ports =
    t.revealed <- (v, num_ports, parent) :: t.revealed

  let resolve t v p c = t.resolved <- (v, p, c) :: t.resolved

  let explored t =
    List.sort compare (List.map (fun (v, _, _) -> v) t.revealed)

  let num_ports t v =
    let _, np, _ = List.find (fun (w, _, _) -> w = v) t.revealed in
    np

  let parent t v =
    let _, _, p = List.find (fun (w, _, _) -> w = v) t.revealed in
    p

  let child_behind t v p =
    List.find_opt (fun (w, q, _) -> w = v && q = p) t.resolved
    |> Option.map (fun (_, _, c) -> c)

  (* Mirrors Partial_tree.port_state without depending on its internals. *)
  let port t v p =
    if v <> t.root && p = 0 then Partial_tree.To_parent
    else
      match child_behind t v p with
      | Some c -> Partial_tree.Child c
      | None -> Partial_tree.Dangling

  let rec depth t v =
    match parent t v with None -> 0 | Some p -> 1 + depth t p

  let parent_port t v =
    match List.find_opt (fun (_, _, c) -> c = v) t.resolved with
    | None -> -1
    | Some (_, p, _) -> p

  let rec ports_from_root t v =
    match parent t v with
    | None -> []
    | Some p -> ports_from_root t p @ [ parent_port t v ]

  let dangling_ports t v =
    List.filter
      (fun p -> port t v p = Partial_tree.Dangling)
      (List.init (num_ports t v) Fun.id)

  let is_open t v = dangling_ports t v <> []

  let num_dangling t =
    List.fold_left (fun acc v -> acc + List.length (dangling_ports t v)) 0 (explored t)

  let min_open_depth t =
    List.fold_left
      (fun acc v ->
        if is_open t v then
          match acc with
          | None -> Some (depth t v)
          | Some d -> Some (min d (depth t v))
        else acc)
      None (explored t)

  let open_at t d =
    List.filter (fun v -> is_open t v && depth t v = d) (explored t)

  let max_depth t = List.fold_left (fun acc v -> max acc (depth t v)) 0 (explored t)
end

(* ---- step-by-step comparison ---- *)

let compare_states pt rt =
  Partial_tree.check_invariants pt;
  let expl = Ref_tree.explored rt in
  checki "num_explored" (List.length expl) (Partial_tree.num_explored pt);
  checki "num_dangling" (Ref_tree.num_dangling rt) (Partial_tree.num_dangling pt);
  List.iter
    (fun v ->
      checkb "is_explored" true (Partial_tree.is_explored pt v);
      let np = Ref_tree.num_ports rt v in
      checki "num_ports" np (Partial_tree.num_ports pt v);
      for p = 0 to np - 1 do
        let want = Ref_tree.port rt v p in
        checkb "port state" true (Partial_tree.port pt v p = want);
        checkb "is_port_dangling" (want = Partial_tree.Dangling)
          (Partial_tree.is_port_dangling pt v p);
        checki "port_child_id"
          (match want with Partial_tree.Child c -> c | _ -> -1)
          (Partial_tree.port_child_id pt v p)
      done;
      checki "depth" (Ref_tree.depth rt v) (Partial_tree.depth_of pt v);
      checkb "parent" true (Ref_tree.parent rt v = Partial_tree.parent pt v);
      checki "parent_port" (Ref_tree.parent_port rt v) (Partial_tree.parent_port pt v);
      check_ints "ports_from_root" (Ref_tree.ports_from_root rt v)
        (Partial_tree.ports_from_root pt v);
      checkb "is_open" (Ref_tree.is_open rt v) (Partial_tree.is_open pt v))
    expl;
  checkb "min_open_depth" true
    (Ref_tree.min_open_depth rt = Partial_tree.min_open_depth pt);
  for d = 0 to Ref_tree.max_depth rt + 1 do
    check_ints "open_nodes_at_depth" (Ref_tree.open_at rt d)
      (Partial_tree.open_nodes_at_depth pt d);
    checki "num_open_at_depth"
      (List.length (Ref_tree.open_at rt d))
      (Partial_tree.num_open_at_depth pt d)
  done

(* ---- randomized reveal/resolve traces ---- *)

(* Grow a random tree one node per step: pick a uniformly random dangling
   (node, port), resolve it to a fresh id, reveal the new node with a
   random degree. Exactly the call sequence Env issues during a run. *)
let run_trace ~seed ~steps ~check_every =
  let rng = Rng.create seed in
  let capacity = steps + 1 in
  let pt = Partial_tree.Internal.create ~hidden_n:capacity ~root:0 in
  let rt = Ref_tree.create ~root:0 in
  let root_ports = 1 + Rng.int rng 3 in
  Partial_tree.Internal.reveal pt 0 ~parent:None ~num_ports:root_ports;
  Ref_tree.reveal rt 0 ~parent:None ~num_ports:root_ports;
  compare_states pt rt;
  (* The frontier mirror only drives trace generation; the structures
     under test never see it. *)
  let frontier = ref (List.map (fun p -> (0, p)) (List.init root_ports Fun.id)) in
  let next_id = ref 1 in
  let step s =
    match !frontier with
    | [] -> false
    | fr ->
        let i = Rng.int rng (List.length fr) in
        let v, p = List.nth fr i in
        let c = !next_id in
        incr next_id;
        let np = 1 + Rng.int rng 4 in
        Partial_tree.Internal.resolve_dangling pt v p c;
        Partial_tree.Internal.reveal pt c ~parent:(Some v) ~num_ports:np;
        Ref_tree.resolve rt v p c;
        Ref_tree.reveal rt c ~parent:(Some v) ~num_ports:np;
        frontier :=
          List.filteri (fun j _ -> j <> i) fr
          @ List.map (fun q -> (c, q)) (List.init (np - 1) (fun q -> q + 1));
        if s mod check_every = 0 then compare_states pt rt;
        true
  in
  let s = ref 0 in
  while !s < steps && step !s do
    incr s
  done;
  compare_states pt rt

let test_small_every_step () =
  run_trace ~seed:1 ~steps:60 ~check_every:1;
  run_trace ~seed:2 ~steps:60 ~check_every:1

let test_medium_sampled () =
  run_trace ~seed:3 ~steps:250 ~check_every:7;
  run_trace ~seed:4 ~steps:250 ~check_every:7

let test_chain_heavy () =
  (* Seeded so degree-1 reveals dominate: exercises deep buckets with a
     single open node and the O(depth) ports_from_root walk. *)
  let rng = Rng.create 99 in
  let steps = 120 in
  let pt = Partial_tree.Internal.create ~hidden_n:(steps + 1) ~root:0 in
  let rt = Ref_tree.create ~root:0 in
  Partial_tree.Internal.reveal pt 0 ~parent:None ~num_ports:1;
  Ref_tree.reveal rt 0 ~parent:None ~num_ports:1;
  let tip = ref (0, 0) in
  for c = 1 to steps do
    let v, p = !tip in
    (* Mostly chain links (2 ports: parent + one child), occasional leaf
       burst that closes the path and reopens it elsewhere is skipped to
       keep a single frontier port. *)
    let np = if Rng.int rng 10 = 0 then 3 else 2 in
    Partial_tree.Internal.resolve_dangling pt v p c;
    Partial_tree.Internal.reveal pt c ~parent:(Some v) ~num_ports:np;
    Ref_tree.resolve rt v p c;
    Ref_tree.reveal rt c ~parent:(Some v) ~num_ports:np;
    tip := (c, 1);
    if c mod 10 = 0 then compare_states pt rt
  done;
  compare_states pt rt

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "diff",
    [
      tc "random traces, checked every step" test_small_every_step;
      tc "random traces, sampled checks" test_medium_sampled;
      tc "chain-heavy trace" test_chain_heavy;
    ] )
