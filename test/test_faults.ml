(* Tests for the fault-injection layer: plan predicates (pure, total,
   deterministic), heartbeat bookkeeping, the Env hook (crashed robots
   pinned, restarts teleported to the root), the Fault_spec schema, the
   crash-tolerant BFDN mode — and the two system-level contracts:
   determinism under faults (same spec + seed => bit-identical outcome
   and trace, on one engine worker or many) and the robustness property
   (whenever at least one robot survives, exploration completes). *)

module Fault_plan = Bfdn_faults.Fault_plan
module Heartbeat = Bfdn_faults.Heartbeat
module Injector = Bfdn_faults.Injector
module Fault_spec = Bfdn_scenario.Fault_spec
module Param = Bfdn_scenario.Param
module Scenario = Bfdn_scenario.Scenario
module Batch = Bfdn_engine.Batch
module Job = Bfdn_engine.Job
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Trace = Bfdn_sim.Trace
module Tree_gen = Bfdn_trees.Tree_gen
module Bfdn_algo = Bfdn.Bfdn_algo
module Rng = Bfdn_util.Rng
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Fault_plan ---- *)

let test_plan_none () =
  let p = Fault_plan.none ~k:4 in
  checkb "quiet" true (Fault_plan.quiet p);
  checki "all survive" 4 (Fault_plan.survivors p);
  for round = 0 to 50 do
    for robot = 0 to 3 do
      checkb "never down" false (Fault_plan.down p ~round ~robot);
      checkb "never restarts" false (Fault_plan.restarts_after p ~round ~robot);
      checkb "never drops" false (Fault_plan.drops_write p ~round ~robot)
    done
  done

let test_plan_windows () =
  (* robot 1 crashes at 10 forever; robot 2 crashes at 5, back after 3. *)
  let p = Fault_plan.make ~k:4 [ (1, 10, -1); (2, 5, 3) ] in
  checkb "not quiet" false (Fault_plan.quiet p);
  checkb "r1 up before crash" false (Fault_plan.down p ~round:9 ~robot:1);
  checkb "r1 down at crash" true (Fault_plan.down p ~round:10 ~robot:1);
  checkb "r1 down much later" true (Fault_plan.down p ~round:9999 ~robot:1);
  checkb "r2 down in window" true (Fault_plan.down p ~round:6 ~robot:2);
  checkb "r2 back after window" false (Fault_plan.down p ~round:8 ~robot:2);
  (* restart fires on exactly the last round of the crash window *)
  checkb "no restart mid-window" false
    (Fault_plan.restarts_after p ~round:6 ~robot:2);
  checkb "restart on last down round" true
    (Fault_plan.restarts_after p ~round:7 ~robot:2);
  checkb "no restart after" false
    (Fault_plan.restarts_after p ~round:8 ~robot:2);
  checkb "permanent crash never restarts" false
    (Fault_plan.restarts_after p ~round:9999 ~robot:1);
  (* survivors: robot 1 is gone for good, everyone else lives *)
  checki "survivors" 3 (Fault_plan.survivors p);
  let crashes, restarts = Fault_plan.stats p ~rounds:100 in
  checki "crashes within horizon" 2 crashes;
  checki "restarts within horizon" 1 restarts;
  let c0, r0 = Fault_plan.stats p ~rounds:4 in
  checki "no crash before round 5" 0 c0;
  checki "no restart before round 8" 0 r0;
  (* last entry wins on a duplicate robot *)
  let q = Fault_plan.make ~k:4 [ (1, 10, -1); (1, 20, -1) ] in
  checkb "first entry overridden" false (Fault_plan.down q ~round:15 ~robot:1);
  checkb "second entry live" true (Fault_plan.down q ~round:20 ~robot:1)

let test_plan_rejects () =
  let raises f = match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  checkb "robot out of range" true
    (raises (fun () -> Fault_plan.make ~k:4 [ (4, 10, -1) ]));
  checkb "crash round 0" true
    (raises (fun () -> Fault_plan.make ~k:4 [ (1, 0, -1) ]));
  checkb "bad restart delay" true
    (raises (fun () -> Fault_plan.make ~k:4 [ (1, 5, -2) ]))

let test_plan_masks () =
  let base mask = Fault_plan.make ~mask ~k:6 [] in
  let p = base (Fault_plan.Rotating 3) in
  for round = 0 to 30 do
    for robot = 0 to 5 do
      checkb "rotating blocks (round+robot) mod m = 0"
        ((round + robot) mod 3 = 0)
        (Fault_plan.down p ~round ~robot)
    done
  done;
  let h = base Fault_plan.Half in
  checkb "lower half moves" false (Fault_plan.down h ~round:3 ~robot:2);
  checkb "upper half pinned" true (Fault_plan.down h ~round:3 ~robot:3);
  let s = base Fault_plan.Solo in
  checkb "robot 0 moves" false (Fault_plan.down s ~round:3 ~robot:0);
  checkb "others pinned" true (Fault_plan.down s ~round:3 ~robot:1);
  (* random mask: pure — the same slot always answers the same *)
  let r = Fault_plan.make ~mask:(Fault_plan.Random 0.5) ~seed:7 ~k:6 [] in
  let blocked = ref 0 in
  for round = 0 to 200 do
    for robot = 0 to 5 do
      let a = Fault_plan.down r ~round ~robot in
      checkb "pure coin" a (Fault_plan.down r ~round ~robot);
      if a then incr blocked
    done
  done;
  let total = 201 * 6 in
  checkb "coin is roughly fair" true
    (!blocked > total / 4 && !blocked < 3 * total / 4);
  checkb "p=0 never blocks" false
    (Fault_plan.down
       (Fault_plan.make ~mask:(Fault_plan.Random 0.0) ~seed:7 ~k:6 [])
       ~round:5 ~robot:0);
  checkb "p=1 always blocks" true
    (Fault_plan.down
       (Fault_plan.make ~mask:(Fault_plan.Random 1.0) ~seed:7 ~k:6 [])
       ~round:5 ~robot:0)

let test_plan_drops () =
  let p = Fault_plan.make ~drop_writes:0.5 ~seed:11 ~k:4 [] in
  let dropped = ref 0 in
  for round = 0 to 400 do
    for robot = 0 to 3 do
      let a = Fault_plan.drops_write p ~round ~robot in
      checkb "pure drop coin" a (Fault_plan.drops_write p ~round ~robot);
      if a then incr dropped
    done
  done;
  let total = 401 * 4 in
  checkb "drop coin roughly fair" true
    (!dropped > total / 4 && !dropped < 3 * total / 4)

let test_plan_random_deterministic () =
  let mk () = Fault_plan.random ~rng:(Rng.create 42) ~k:16 ~rate:0.4
      ~window:30 ~restart:10 ?drop_writes:None ?mask:None ()
  in
  checkb "same rng state, same plan" true (Fault_plan.equal (mk ()) (mk ()));
  let none =
    Fault_plan.random ~rng:(Rng.create 42) ~k:16 ~rate:0.0 ~window:30
      ~restart:(-1) ?drop_writes:None ?mask:None ()
  in
  checkb "rate 0 crashes nobody" true (Fault_plan.quiet none);
  let all =
    Fault_plan.random ~rng:(Rng.create 42) ~k:16 ~rate:1.0 ~window:30
      ~restart:(-1) ?drop_writes:None ?mask:None ()
  in
  checki "rate 1 crashes everybody for good" 0 (Fault_plan.survivors all);
  let restarted =
    Fault_plan.random ~rng:(Rng.create 42) ~k:16 ~rate:1.0 ~window:30
      ~restart:5 ?drop_writes:None ?mask:None ()
  in
  checki "restarting crashes leave all survivors" 16
    (Fault_plan.survivors restarted)

(* ---- Heartbeat ---- *)

let test_heartbeat () =
  let hb = Heartbeat.create ~k:3 () in
  checki "initial last_seen" 0 (Heartbeat.last_seen hb 1);
  Heartbeat.beat hb ~robot:1 ~round:5;
  checki "beat recorded" 5 (Heartbeat.last_seen hb 1);
  checki "missed counts from last beat" 4 (Heartbeat.missed hb ~robot:1 ~round:9);
  checkb "fresh within window" false
    (Heartbeat.stale hb ~robot:1 ~round:9 ~after:4);
  checkb "stale past window" true
    (Heartbeat.stale hb ~robot:1 ~round:10 ~after:4);
  (* a dropped write leaves last_seen untouched *)
  let lossy =
    Heartbeat.create ~drop:(fun ~round ~robot:_ -> round = 7) ~k:3 ()
  in
  Heartbeat.beat lossy ~robot:0 ~round:6;
  Heartbeat.beat lossy ~robot:0 ~round:7;
  checki "dropped beat is lost" 6 (Heartbeat.last_seen lossy 0)

(* ---- Env hook: pinning and restart teleports ---- *)

let test_env_pins_and_restarts () =
  let tree = Tree_gen.of_family "comb" ~rng:(Rng.create 3) ~n:80 ~depth_hint:8 in
  (* robot 1 crashes at round 2 and comes back 3 rounds later *)
  let plan = Fault_plan.make ~k:2 [ (1, 2, 3) ] in
  let env = Env.create tree ~k:2 ~fault:(Injector.hook plan) in
  let t = Bfdn_algo.make env in
  let algo = Bfdn_algo.algo t in
  let seen_pinned = ref false in
  let start_of_crash_pos = ref (-1) in
  for _ = 1 to 6 do
    let round = Env.round env in
    let pos_before = Env.position env 1 in
    Env.apply env (algo.Runner.select env);
    if round >= 2 && round < 4 then begin
      (* crashed: not allowed, and pinned (the window closes with the
         round-4 restart teleport, checked below) *)
      checkb "crashed robot not allowed" false (Env.allowed env 1);
      if round = 2 then start_of_crash_pos := pos_before;
      if round < 4 then checki "crashed robot pinned" !start_of_crash_pos
          (Env.position env 1);
      seen_pinned := true
    end
  done;
  checkb "crash window was exercised" true !seen_pinned;
  (* after round 4's apply the replacement robot stands at the root *)
  checkb "past the window" true (Env.round env > 4);
  checki "restart counted" 1 (Env.restarts env);
  (* run to completion: the restart must not break exploration *)
  let r = Runner.run algo env in
  checkb "explores after restart" true r.Runner.explored

(* ---- Fault_spec ---- *)

let test_spec_validate () =
  let ok bindings = Result.is_ok (Fault_spec.validate ?k:(Some 8) bindings) in
  checkb "empty ok" true (ok []);
  checkb "explicit ok" true (ok [ ("crashes", Param.String "1@8,3@20+25") ]);
  checkb "rate ok" true (ok [ ("rate", Param.Float 0.3) ]);
  checkb "bad entry" false (ok [ ("crashes", Param.String "nope") ]);
  checkb "robot out of range" false (ok [ ("crashes", Param.String "8@5") ]);
  checkb "crashes and rate exclusive" false
    (ok [ ("crashes", Param.String "1@8"); ("rate", Param.Float 0.2) ]);
  checkb "bad mask" false (ok [ ("mask", Param.String "sideways") ]);
  checkb "unknown key" false (ok [ ("crash", Param.String "1@8") ])

let test_spec_plan () =
  let rng () = Rng.split (Rng.create 99) 2 in
  checkb "inactive bindings compile to None" true
    (Fault_spec.plan ~rng:(rng ()) ~k:8 [] = None);
  checkb "all-default bindings are inactive" true
    (Fault_spec.plan ~rng:(rng ()) ~k:8 [ ("rate", Param.Float 0.0) ] = None);
  (match
     Fault_spec.plan ~rng:(rng ()) ~k:8
       [ ("crashes", Param.String "1@8,3@20+25") ]
   with
  | None -> Alcotest.fail "explicit crashes must compile"
  | Some p ->
      checkb "robot 1 down from 8" true (Fault_plan.down p ~round:8 ~robot:1);
      checkb "robot 3 restarts after 25" true
        (Fault_plan.restarts_after p ~round:44 ~robot:3);
      checki "survivors" 7 (Fault_plan.survivors p));
  (* the same bindings + the same stream always give the same plan *)
  let compile () =
    Option.get
      (Fault_spec.plan ~rng:(rng ()) ~k:8
         [ ("rate", Param.Float 0.5); ("window", Param.Int 20) ])
  in
  checkb "random mode deterministic in the stream" true
    (Fault_plan.equal (compile ()) (compile ()))

(* ---- crash-tolerant BFDN ---- *)

let ft_spec ?(algo_params = []) ?max_rounds ~faults ~k ~seed () =
  Scenario.make ~algo:"bfdn"
    ~algo_params:(("fault_tolerant", Param.Bool true) :: algo_params)
    ~k ~seed ?max_rounds ~faults
    (Scenario.generated ~family:"comb" ~n:300 ~depth_hint:15)

let test_ft_recovers () =
  let reg = Metrics.create () in
  let o =
    Scenario.run ~probe:(Probe.of_metrics reg)
      (ft_spec ~faults:[ ("crashes", Param.String "1@8,3@20+25") ] ~k:8
         ~seed:20230619 ())
  in
  let cval name =
    match Metrics.find_counter reg name with
    | Some c -> Metrics.value c
    | None -> 0
  in
  checkb "explored" true o.Scenario.result.Runner.explored;
  checkb "no round-limit bailout" false o.Scenario.result.Runner.hit_round_limit;
  checki "both crashes declared" 2 (cval "robots_lost");
  checki "the restarted robot revived" 1 (cval "robots_revived");
  checkb "latency histogram fed" true
    (Metrics.find_histogram reg "detect_latency_rounds" <> None)

let test_plain_bfdn_strands () =
  (* same schedule, fault tolerance off: the crashed robot never reports
     home, so the run spins to its cap *)
  let spec =
    Scenario.make ~algo:"bfdn" ~k:8 ~seed:20230619 ~max_rounds:400
      ~faults:[ ("crashes", Param.String "1@8") ]
      (Scenario.generated ~family:"comb" ~n:300 ~depth_hint:15)
  in
  let o = Scenario.run spec in
  checkb "hits the cap" true o.Scenario.result.Runner.hit_round_limit

let test_ft_under_write_drops () =
  (* lossy whiteboard: detection is delayed and false positives are
     possible (a survivor's silence), but the run must still finish —
     revival on the next surviving beat un-buries false positives *)
  let o =
    Scenario.run
      (ft_spec
         ~faults:
           [ ("crashes", Param.String "2@12"); ("drops", Param.Float 0.4) ]
         ~k:8 ~seed:5 ())
  in
  checkb "explored despite lossy heartbeats" true
    o.Scenario.result.Runner.explored;
  checkb "no cap" false o.Scenario.result.Runner.hit_round_limit

let test_ft_no_faults_is_plain_bfdn () =
  (* with no plan, the ft machinery must not change the exploration *)
  let plain =
    Scenario.run
      (Scenario.make ~algo:"bfdn" ~k:8 ~seed:17
         (Scenario.generated ~family:"random" ~n:250 ~depth_hint:12))
  in
  let ft =
    Scenario.run
      (Scenario.make ~algo:"bfdn"
         ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
         ~k:8 ~seed:17
         (Scenario.generated ~family:"random" ~n:250 ~depth_hint:12))
  in
  checki "same rounds" plain.Scenario.result.Runner.rounds
    ft.Scenario.result.Runner.rounds;
  checki "same moves" plain.Scenario.result.Runner.moves
    ft.Scenario.result.Runner.moves

(* ---- determinism under faults ---- *)

let faulted_jobs () =
  List.concat_map
    (fun seed ->
      [
        ft_spec ~faults:[ ("rate", Param.Float 0.3); ("restart", Param.Int 15) ]
          ~k:6 ~seed ();
        ft_spec
          ~faults:[ ("crashes", Param.String "1@5,2@9+12") ]
          ~k:6 ~seed ();
      ])
    [ 1; 2; 3; 4 ]

let test_determinism_across_workers () =
  let jobs = faulted_jobs () in
  let seq = Batch.run ~workers:1 jobs in
  let par = Batch.run ~workers:2 jobs in
  List.iter2
    (fun (job, a) (_, b) ->
      match (a, b) with
      | Ok x, Ok y ->
          checkb
            (Printf.sprintf "1 vs 2 workers: %s" (Job.describe job))
            true (Job.equal_outcome x y)
      | _ -> Alcotest.fail (Job.describe job ^ ": job failed"))
    seq par

let test_trace_frames_identical () =
  let spec =
    ft_spec ~faults:[ ("rate", Param.Float 0.4); ("restart", Param.Int 10) ]
      ~k:6 ~seed:23 ()
  in
  let record () =
    let tr = Trace.create ~capacity:100_000 () in
    let o =
      Scenario.run
        ~on_round:(fun x -> Trace.push tr (x.Bfdn_sim.Exec_env.frame ()))
        spec
    in
    (o, Trace.frames tr)
  in
  let o1, f1 = record () in
  let o2, f2 = record () in
  checkb "outcomes identical" true (Scenario.equal_outcome o1 o2);
  checki "same frame count" (List.length f1) (List.length f2);
  checkb "frames identical" true (f1 = f2);
  checkb "no frames dropped" true (List.length f1 = o1.Scenario.result.Runner.rounds)

(* ---- robustness property ---- *)

(* Whenever at least one robot survives (robot 0 never crashes below),
   crash-tolerant BFDN terminates and covers every edge. The cap is for
   the degenerate fleet: with k - 1 crashes the survivor explores alone,
   so the k-robot termination bound does not apply. *)
let prop_survivor_implies_coverage =
  let open QCheck2.Gen in
  let gen =
    let* family = oneofl [ "comb"; "random"; "binary"; "random-deep" ] in
    let* n = int_range 40 250 in
    let* k = int_range 2 6 in
    let* seed = int_range 0 10_000 in
    let* crashes =
      list_size
        (int_range 0 (k - 1))
        (let* robot = int_range 1 (k - 1) in
         let* round = int_range 1 40 in
         let* restart = oneofl [ -1; -1; 5; 20 ] in
         return (robot, round, restart))
    in
    return (family, n, k, seed, crashes)
  in
  QCheck2.Test.make ~count:150 ~name:"a surviving robot covers the tree" gen
    (fun (family, n, k, seed, crashes) ->
      let entry (robot, round, restart) =
        Printf.sprintf "%d@%d%s" robot round
          (if restart < 0 then "" else Printf.sprintf "+%d" restart)
      in
      let faults =
        match crashes with
        | [] -> []
        | l -> [ ("crashes", Param.String (String.concat "," (List.map entry l))) ]
      in
      let spec =
        Scenario.make ~algo:"bfdn"
          ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
          ~k ~seed ~max_rounds:100_000 ~faults
          (Scenario.generated ~family ~n ~depth_hint:12)
      in
      let o = Scenario.run spec in
      o.Scenario.result.Runner.explored
      && not o.Scenario.result.Runner.hit_round_limit)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "faults",
    [
      tc "plan: none is quiet" test_plan_none;
      tc "plan: crash windows" test_plan_windows;
      tc "plan: rejects bad entries" test_plan_rejects;
      tc "plan: masks" test_plan_masks;
      tc "plan: write drops" test_plan_drops;
      tc "plan: random mode deterministic" test_plan_random_deterministic;
      tc "heartbeat bookkeeping" test_heartbeat;
      tc "env pins crashed, teleports restarts" test_env_pins_and_restarts;
      tc "spec: validation" test_spec_validate;
      tc "spec: plan compilation" test_spec_plan;
      tc "ft bfdn recovers" test_ft_recovers;
      tc "plain bfdn strands" test_plain_bfdn_strands;
      tc "ft survives write drops" test_ft_under_write_drops;
      tc "ft without faults = plain bfdn" test_ft_no_faults_is_plain_bfdn;
      tc "determinism: 1 vs 2 workers" test_determinism_across_workers;
      tc "determinism: trace frames" test_trace_frames_identical;
      QCheck_alcotest.to_alcotest prop_survivor_implies_coverage;
    ] )
