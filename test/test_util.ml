(* Unit and property tests for Bfdn_util: Rng, Mathx, Stats, Table, Ascii. *)

module Rng = Bfdn_util.Rng
module Mathx = Bfdn_util.Mathx
module Stats = Bfdn_util.Stats
module Table = Bfdn_util.Table
module Ascii = Bfdn_util.Ascii

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Rng.bits64 a <> Rng.bits64 b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    checkb "in range" true (x >= 0 && x < 17)
  done

let test_rng_int_bounds_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_covers_values () =
  let rng = Rng.create 13 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 8) <- true
  done;
  checkb "all residues hit" true (Array.for_all Fun.id seen)

let test_rng_int_in () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng (-5) 5 in
    checkb "in closed range" true (x >= -5 && x <= 5)
  done

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let x = Rng.float rng 3.0 in
    checkb "in range" true (x >= 0.0 && x < 3.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 99 in
  let b = Rng.split a 0 in
  (* The split stream must not simply replay the parent stream. *)
  let same = ref 0 in
  for _ = 1 to 20 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checkb "split diverges" true (!same < 3)

let test_rng_split_children_differ () =
  (* Statistical smoke test: the first outputs of children 0..31 are
     pairwise distinct, and sibling streams stay decorrelated over a
     longer prefix. *)
  let parent = Rng.create 2023 in
  let firsts = Array.init 32 (fun i -> Rng.bits64 (Rng.split parent i)) in
  let distinct = Hashtbl.create 64 in
  Array.iter (fun x -> Hashtbl.replace distinct x ()) firsts;
  checki "first outputs pairwise distinct" 32 (Hashtbl.length distinct);
  let a = Rng.split parent 0 and b = Rng.split parent 1 in
  let collisions = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bits64 a = Rng.bits64 b then incr collisions
  done;
  checki "sibling streams decorrelated" 0 !collisions

let test_rng_split_stable () =
  (* Same parent state and index must give the same child stream across
     runs (the engine's replay contract), and deriving a child must not
     advance the parent. *)
  let p1 = Rng.create 7 and p2 = Rng.create 7 in
  let c1 = Rng.split p1 3 and c2 = Rng.split p2 3 in
  for _ = 1 to 50 do
    check Alcotest.int64 "same child stream" (Rng.bits64 c1) (Rng.bits64 c2)
  done;
  (* p1 handed out a child, p2 two more: their own streams must agree. *)
  ignore (Rng.split p2 0);
  ignore (Rng.split p2 1);
  check Alcotest.int64 "parent not advanced" (Rng.bits64 p1) (Rng.bits64 p2)

let test_rng_split_negative () =
  Alcotest.check_raises "negative index" (Invalid_argument "Rng.split: negative index")
    (fun () -> ignore (Rng.split (Rng.create 1) (-1)))

let test_rng_copy () =
  let a = Rng.create 4 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_permutation () =
  let rng = Rng.create 21 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  checkb "is a permutation" true (sorted = Array.init 50 (fun i -> i))

let test_rng_coin_bias () =
  let rng = Rng.create 31 in
  let heads = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.coin rng 0.25 then incr heads
  done;
  checkb "bias roughly honoured" true (!heads > 2000 && !heads < 3000)

(* ---- Mathx ---- *)

let test_log2i () =
  checki "log2i 1" 0 (Mathx.log2i 1);
  checki "log2i 2" 1 (Mathx.log2i 2);
  checki "log2i 3" 1 (Mathx.log2i 3);
  checki "log2i 1024" 10 (Mathx.log2i 1024);
  checki "log2i 1025" 10 (Mathx.log2i 1025)

let test_ceil_log2 () =
  checki "ceil_log2 1" 0 (Mathx.ceil_log2 1);
  checki "ceil_log2 2" 1 (Mathx.ceil_log2 2);
  checki "ceil_log2 3" 2 (Mathx.ceil_log2 3);
  checki "ceil_log2 1024" 10 (Mathx.ceil_log2 1024);
  checki "ceil_log2 1025" 11 (Mathx.ceil_log2 1025)

let test_ceil_div () =
  checki "7/2" 4 (Mathx.ceil_div 7 2);
  checki "8/2" 4 (Mathx.ceil_div 8 2);
  checki "0/5" 0 (Mathx.ceil_div 0 5);
  checki "1/5" 1 (Mathx.ceil_div 1 5)

let test_pow () =
  checki "2^10" 1024 (Mathx.pow 2 10);
  checki "3^0" 1 (Mathx.pow 3 0);
  checki "5^3" 125 (Mathx.pow 5 3);
  checki "1^100" 1 (Mathx.pow 1 100)

let test_saturating () =
  checki "mul in range" 12 (Mathx.mul_cap 3 4);
  checki "mul saturates" max_int (Mathx.mul_cap max_int 2);
  checki "mul big saturates" max_int (Mathx.mul_cap (max_int / 2 + 1) 2);
  checki "mul zero" 0 (Mathx.mul_cap 0 max_int);
  checki "add in range" 7 (Mathx.add_cap 3 4);
  checki "add saturates" max_int (Mathx.add_cap max_int 1);
  checki "pow in range" 1024 (Mathx.pow_cap 2 10);
  checki "pow saturates" max_int (Mathx.pow_cap 2 63);
  checki "pow deep saturates" max_int (Mathx.pow_cap 10 100);
  checki "pow zero exp" 1 (Mathx.pow_cap 7 0);
  checkb "mul rejects negatives" true
    (try ignore (Mathx.mul_cap (-1) 2); false
     with Invalid_argument _ -> true)

let test_iroot () =
  checki "iroot 8 3" 2 (Mathx.iroot 8 3);
  checki "iroot 9 3" 2 (Mathx.iroot 9 3);
  checki "iroot 26 3" 2 (Mathx.iroot 26 3);
  checki "iroot 27 3" 3 (Mathx.iroot 27 3);
  checki "iroot 1 5" 1 (Mathx.iroot 1 5);
  checki "iroot 1000000 2" 1000 (Mathx.iroot 1000000 2)

let test_clamp () =
  checki "below" 2 (Mathx.clamp 2 9 0);
  checki "inside" 5 (Mathx.clamp 2 9 5);
  checki "above" 9 (Mathx.clamp 2 9 100)

let prop_iroot_exact =
  QCheck.Test.make ~name:"iroot is the exact integer root" ~count:500
    QCheck.(pair (int_range 1 1_000_000) (int_range 1 6))
    (fun (x, l) ->
      let r = Mathx.iroot x l in
      Mathx.pow r l <= x && Mathx.pow (r + 1) l > x)

let prop_ceil_div =
  QCheck.Test.make ~name:"ceil_div matches float ceiling" ~count:500
    QCheck.(pair (int_range 0 100000) (int_range 1 1000))
    (fun (a, b) ->
      Mathx.ceil_div a b = int_of_float (ceil (float_of_int a /. float_of_int b)))

(* ---- Stats ---- *)

let test_stats_mean () =
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean [||])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant" 0.0 (Stats.stddev [| 5.0; 5.0; 5.0 |]);
  check (Alcotest.float 1e-6) "known" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_stats_percentile () =
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile xs 50.0);
  check (Alcotest.float 1e-9) "p100" 100.0 (Stats.percentile xs 100.0)

let test_stats_summary () =
  let s = Stats.summarize [| 3.0; 1.0; 2.0 |] in
  checki "count" 3 s.count;
  check (Alcotest.float 1e-9) "min" 1.0 s.min;
  check (Alcotest.float 1e-9) "max" 3.0 s.max

let prop_stats_order =
  QCheck.Test.make ~name:"min <= p50 <= p95 <= max" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Stats.summarize xs in
      s.min <= s.p50 && s.p50 <= s.p95 && s.p95 <= s.max)

let test_linear_fit () =
  let a, b = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  check (Alcotest.float 1e-9) "slope" 2.0 a;
  check (Alcotest.float 1e-9) "intercept" 1.0 b

let test_linear_fit_errors () =
  checkb "one point" true
    (try ignore (Stats.linear_fit [ (1.0, 1.0) ]); false
     with Invalid_argument _ -> true);
  checkb "vertical" true
    (try ignore (Stats.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]); false
     with Invalid_argument _ -> true)

let prop_log_log_exponent_recovers_power =
  QCheck.Test.make ~name:"log-log fit recovers a power law" ~count:100
    QCheck.(pair (float_range 0.5 3.0) (float_range 0.1 10.0))
    (fun (e, c) ->
      let points = List.map (fun x -> (float_of_int x, c *. (float_of_int x ** e))) [ 2; 5; 10; 30; 80; 200 ] in
      Float.abs (Stats.log_log_exponent points -. e) < 0.01)

(* ---- Table ---- *)

let test_table_render () =
  let t = Table.create ~caption:"cap" [ ("a", Table.Left); ("bb", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "caption present" true (String.length s > 3 && String.sub s 0 3 = "cap");
  checkb "row content present" true (contains s "yy")

let test_table_arity () =
  let t = Table.create [ ("a", Table.Left) ] in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: wrong number of cells") (fun () ->
      Table.add_row t [ "x"; "y" ])

let test_table_formats () =
  check Alcotest.string "fint" "42" (Table.fint 42);
  check Alcotest.string "ffloat" "3.14" (Table.ffloat ~decimals:2 3.14159);
  check Alcotest.string "fratio" "0.500" (Table.fratio 0.5);
  check Alcotest.string "fbool yes" "yes" (Table.fbool true);
  check Alcotest.string "fbool no" "NO" (Table.fbool false)

(* ---- Ascii ---- *)

let test_ascii_grid () =
  let s = Ascii.grid ~rows:2 ~cols:3 ~cell:(fun ~row ~col -> if row = col then 'x' else '.') () in
  checkb "frame present" true (String.contains s '+');
  checkb "cells present" true (String.contains s 'x')

let test_ascii_bar_chart () =
  let s = Ascii.bar_chart [ ("a", 10.0); ("b", 5.0) ] in
  checkb "bars drawn" true (String.contains s '#')

let test_ascii_legend () =
  check Alcotest.string "legend" "a = one   b = two"
    (Ascii.legend [ ('a', "one"); ('b', "two") ])

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "util",
    [
      tc "rng deterministic" test_rng_deterministic;
      tc "rng seed sensitivity" test_rng_seed_sensitivity;
      tc "rng int range" test_rng_int_range;
      tc "rng int invalid bound" test_rng_int_bounds_invalid;
      tc "rng int covers residues" test_rng_int_covers_values;
      tc "rng int_in" test_rng_int_in;
      tc "rng float range" test_rng_float_range;
      tc "rng split independent" test_rng_split_independent;
      tc "rng split children differ" test_rng_split_children_differ;
      tc "rng split stable across runs" test_rng_split_stable;
      tc "rng split negative index" test_rng_split_negative;
      tc "rng copy" test_rng_copy;
      tc "rng permutation" test_rng_permutation;
      tc "rng coin bias" test_rng_coin_bias;
      tc "mathx log2i" test_log2i;
      tc "mathx ceil_log2" test_ceil_log2;
      tc "mathx saturating caps" test_saturating;
      tc "mathx ceil_div" test_ceil_div;
      tc "mathx pow" test_pow;
      tc "mathx iroot" test_iroot;
      tc "mathx clamp" test_clamp;
      qc prop_iroot_exact;
      qc prop_ceil_div;
      tc "stats mean" test_stats_mean;
      tc "stats stddev" test_stats_stddev;
      tc "stats percentile" test_stats_percentile;
      tc "stats summary" test_stats_summary;
      qc prop_stats_order;
      tc "linear fit" test_linear_fit;
      tc "linear fit errors" test_linear_fit_errors;
      qc prop_log_log_exponent_recovers_power;
      tc "table render" test_table_render;
      tc "table arity" test_table_arity;
      tc "table formats" test_table_formats;
      tc "ascii grid" test_ascii_grid;
      tc "ascii bar chart" test_ascii_bar_chart;
      tc "ascii legend" test_ascii_legend;
    ] )
