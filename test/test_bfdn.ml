(* Tests for BFDN (Algorithm 1): correctness, Theorem 1, Lemma 2, the
   Claim 4 invariant, anchor-policy ablations and the Section 4.2
   break-down variant (Proposition 7). *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Runner = Bfdn_sim.Runner
module Bfdn_algo = Bfdn.Bfdn_algo
module Bounds = Bfdn.Bounds
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_bfdn ?policy ?mask tree k =
  let env = Env.create ?mask tree ~k in
  let t = Bfdn_algo.make ?policy env in
  let result = Runner.run (Bfdn_algo.algo t) env in
  (env, t, result)

let thm1_bound env k =
  Bounds.bfdn ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
    ~delta:(Env.oracle_max_degree env)

let random_tree seed n =
  let r = Rng.create seed in
  Tree.of_parents (Array.init n (fun v -> if v = 0 then -1 else Rng.int r v))

(* ---- correctness on all families ---- *)

let test_explores_all_families () =
  let rng = Rng.create 77 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:400 ~depth_hint:12 in
      List.iter
        (fun k ->
          let _, _, r = run_bfdn tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          checkb (Printf.sprintf "%s k=%d no limit" fam k) false r.hit_round_limit)
        [ 1; 3; 17 ])
    Tree_gen.families

let test_single_robot_is_dfs () =
  (* With k = 1, BFDN degenerates to DFS: exactly 2(n-1) rounds. *)
  List.iter
    (fun seed ->
      let tree = random_tree seed 200 in
      let _, _, r = run_bfdn tree 1 in
      checki "2(n-1) rounds" (2 * (Tree.n tree - 1)) r.rounds)
    [ 1; 2; 3 ]

let test_single_node () =
  let _, _, r = run_bfdn (Tree.of_parents [| -1 |]) 4 in
  checki "zero rounds" 0 r.rounds;
  checkb "explored" true r.explored

let test_more_robots_than_nodes () =
  let _, _, r = run_bfdn (Tree_gen.path 4) 100 in
  checkb "explored" true r.explored;
  checkb "at root" true r.at_root

let test_edge_events_complete () =
  let tree = random_tree 5 300 in
  let env, _, r = run_bfdn tree 8 in
  checkb "explored" true r.explored;
  checki "every edge crossed both ways" (2 * (Tree.n tree - 1)) (Env.edge_events env)

(* Claim 2: a dangling edge is traversed by a single robot the round it
   is explored — BFDN's round-local selection makes discoveries
   exclusive. (CTE has no such discipline, giving a contrast check.) *)
let test_claim2_single_discoverer () =
  let tree = Tree_gen.of_family "caterpillar" ~rng:(Rng.create 61) ~n:400 ~depth_hint:10 in
  let env, _, r = run_bfdn tree 24 in
  checkb "explored" true r.explored;
  checki "no shared discovery under BFDN" 0 (Env.multi_reveals env);
  let env2 = Env.create tree ~k:24 in
  let r2 = Runner.run (Bfdn_baselines.Cte.make env2) env2 in
  checkb "cte explored" true r2.explored;
  checkb "cte does share discoveries" true (Env.multi_reveals env2 > 0)

(* ---- Theorem 1 ---- *)

let prop_theorem1_random_trees =
  QCheck.Test.make ~name:"Theorem 1 bound on random trees" ~count:60
    QCheck.(pair (int_range 2 300) (int_range 1 40))
    (fun (n, k) ->
      let tree = random_tree (n * 131 + k) n in
      let env, _, r = run_bfdn tree k in
      r.explored && r.at_root
      && float_of_int r.rounds <= thm1_bound env k
      && Env.multi_reveals env = 0 (* Claim 2, as a standing property *))

let prop_theorem1_all_families =
  QCheck.Test.make ~name:"Theorem 1 bound on all instance families" ~count:40
    QCheck.(triple (int_range 2 400) (int_range 1 32) (int_range 1 15))
    (fun (n, k, d) ->
      List.for_all
        (fun fam ->
          let tree = Tree_gen.of_family fam ~rng:(Rng.create (n + k + d)) ~n ~depth_hint:d in
          let env, _, r = run_bfdn tree k in
          r.explored && r.at_root && float_of_int r.rounds <= thm1_bound env k)
        Tree_gen.families)

(* On Δ = 3 trees the min(log k, log Δ) term is the Δ side: the bound
   with log k replaced by log 3 must still hold. *)
let prop_theorem1_delta_side =
  QCheck.Test.make ~name:"Theorem 1's log Δ refinement on bounded-degree trees" ~count:40
    QCheck.(pair (int_range 2 300) (int_range 2 64))
    (fun (n, k) ->
      let tree =
        Tree_gen.random_bounded_degree ~rng:(Rng.create (n + (k * 999))) ~n ~delta:3
      in
      let env, _, r = run_bfdn tree k in
      let d = Env.oracle_depth env in
      let tight =
        (2.0 *. float_of_int n /. float_of_int k)
        +. (float_of_int (d * d) *. (log 3.0 +. 3.0))
      in
      r.explored && float_of_int r.rounds <= tight)

let test_bound_tight_on_star () =
  (* Star with k | (n-1): BFDN needs exactly 2(n-1)/k rounds, which is the
     offline lower bound — the 2n/k term of Theorem 1 is real. *)
  let tree = Tree_gen.star 65 in
  let _, _, r = run_bfdn tree 8 in
  checki "star rounds" 16 r.rounds

(* ---- Lemma 2: per-depth reanchor counts ---- *)

let test_lemma2_per_depth () =
  List.iter
    (fun (fam, n, d, k) ->
      let tree = Tree_gen.of_family fam ~rng:(Rng.create 3) ~n ~depth_hint:d in
      let env, t, r = run_bfdn tree k in
      checkb "explored" true r.explored;
      let delta = Env.oracle_max_degree env in
      let cap = Bounds.urn_game ~delta ~k +. float_of_int k in
      for depth = 1 to Env.oracle_depth env - 1 do
        checkb
          (Printf.sprintf "%s reanchors at depth %d within k(min log + 3)" fam depth)
          true
          (float_of_int (Bfdn_algo.reanchors_at_depth t depth) <= cap)
      done)
    [
      ("random", 500, 12, 8);
      ("comb", 400, 10, 16);
      ("caterpillar", 400, 10, 16);
      ("star", 300, 1, 12);
      ("binary", 511, 8, 32);
    ]

let test_reanchors_total_consistency () =
  let tree = random_tree 9 300 in
  let _, t, _ = run_bfdn tree 6 in
  let by_depth = ref 0 in
  for d = 0 to 300 do
    by_depth := !by_depth + Bfdn_algo.reanchors_at_depth t d
  done;
  checki "totals agree" (Bfdn_algo.reanchors_total t) !by_depth

(* ---- Claim 4: open nodes covered by anchored subtrees ---- *)

let test_claim4_invariant () =
  let tree = Tree_gen.of_family "random-deep" ~rng:(Rng.create 17) ~n:300 ~depth_hint:15 in
  let env = Env.create tree ~k:7 in
  let t = Bfdn_algo.make env in
  let ok = ref true in
  let check env = if Env.round env mod 3 = 0 then ok := !ok && Bfdn_algo.check_claim4 t in
  let r = Runner.run ~on_round:check (Bfdn_algo.algo t) env in
  checkb "explored" true r.explored;
  checkb "claim 4 held at all sampled rounds" true !ok

(* Cross-algorithm invariant behind Claims 4/5: after every synchronous
   round, the subtree of every open node hosts at least one robot (its
   discoverer cannot have left it). Holds for BFDN and for CTE. *)
let subtree_hosts_robot env =
  let view = Env.view env in
  let positions = Env.positions env in
  Partial_tree.fold_explored view ~init:true ~f:(fun acc v ->
      acc
      && ((not (Partial_tree.is_open view v))
         || Array.exists (fun p -> Partial_tree.is_ancestor view v p) positions))

let test_open_subtrees_hosted () =
  List.iter
    (fun (name, make_algo) ->
      let tree =
        Tree_gen.of_family "random-deep" ~rng:(Rng.create 29) ~n:250 ~depth_hint:12
      in
      let env = Env.create tree ~k:6 in
      let ok = ref true in
      let watch env = ok := !ok && subtree_hosts_robot env in
      let r = Runner.run ~on_round:watch (make_algo env) env in
      checkb (name ^ " explored") true r.explored;
      checkb (name ^ " open subtrees always hosted") true !ok)
    [
      ("bfdn", fun env -> Bfdn_algo.algo (Bfdn_algo.make env));
      ("cte", fun env -> Bfdn_baselines.Cte.make env);
      ("cte-wr", Bfdn_baselines.Cte_writeread.make);
      ("bfdn-wr", fun env -> Bfdn.Bfdn_planner.algo (Bfdn.Bfdn_planner.make env));
      ("bfdn-rec", fun env -> Bfdn.Bfdn_rec.algo (Bfdn.Bfdn_rec.make ~ell:2 env));
    ]

(* BFDN scales: a quarter-million-node instance explores in well under a
   second of wall-clock and exactly meets its invariants. *)
let test_scales_to_large_instances () =
  let tree =
    Tree_gen.random_tree ~rng:(Rng.create 123) ~n:250_000 ()
  in
  let env = Env.create tree ~k:128 in
  let t = Bfdn_algo.make env in
  let r = Runner.run (Bfdn_algo.algo t) env in
  checkb "explored" true r.explored;
  checkb "at root" true r.at_root;
  checkb "within bound" true (float_of_int r.rounds <= thm1_bound env 128);
  Partial_tree.check_invariants (Env.view env)

(* ---- anchor-policy ablation ---- *)

let test_policies_still_explore () =
  let tree = Tree_gen.of_family "comb" ~rng:(Rng.create 23) ~n:400 ~depth_hint:10 in
  List.iter
    (fun (name, policy) ->
      let _, _, r = run_bfdn ~policy tree 9 in
      checkb (name ^ " explored") true r.explored;
      checkb (name ^ " at root") true r.at_root)
    [
      ("least loaded", Bfdn_algo.Least_loaded);
      ("first open", Bfdn_algo.First_open);
      ("random open", Bfdn_algo.Random_open (Rng.create 5));
    ]

let test_shortcut_variant_explores () =
  (* The shortcut-reanchor ablation keeps correctness (exploration +
     return) on every family, even though Theorem 1 is not claimed. *)
  let rng = Rng.create 55 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:400 ~depth_hint:12 in
      List.iter
        (fun k ->
          let env = Env.create tree ~k in
          let t = Bfdn_algo.make ~shortcut:true env in
          let r = Runner.run (Bfdn_algo.algo t) env in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          checkb (Printf.sprintf "%s k=%d no limit" fam k) false r.hit_round_limit)
        [ 1; 4; 16 ])
    Tree_gen.families

(* ---- Section 4.2: adversarial break-downs (Proposition 7) ---- *)

let breakdown_threshold env k =
  Bounds.bfdn_breakdown ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)

(* Run BFDN under a mask; assert that whenever the average allowed moves
   A(M) passes the Proposition 7 threshold, the tree is fully explored. *)
let check_prop7 tree k mask =
  let env = Env.create ~mask tree ~k in
  let t = Bfdn_algo.make env in
  let algo = { (Bfdn_algo.algo t) with Runner.finished = Env.fully_explored } in
  let violated = ref false in
  let watch env =
    let avg = float_of_int (Env.allowed_total env) /. float_of_int k in
    if avg >= breakdown_threshold env k && not (Env.fully_explored env) then
      violated := true
  in
  let r = Runner.run ~max_rounds:500_000 ~on_round:watch algo env in
  r.explored && not !violated

let test_prop7_random_masks () =
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let tree = random_tree (seed * 7) 250 in
      (* Memoized random mask: each (round, robot) allowed with prob 1/2,
         decided once (the adversary commits to M). *)
      let memo = Hashtbl.create 1024 in
      let mask ~round ~robot =
        match Hashtbl.find_opt memo (round, robot) with
        | Some b -> b
        | None ->
            let b = Rng.bool rng in
            Hashtbl.add memo (round, robot) b;
            b
      in
      checkb "prop7 random mask" true (check_prop7 tree 5 mask))
    [ 1; 2; 3 ]

let test_prop7_half_fleet_blocked () =
  let tree = random_tree 41 300 in
  let mask ~round:_ ~robot = robot mod 2 = 0 in
  checkb "half fleet forever blocked" true (check_prop7 tree 8 mask)

let test_prop7_alternating_rounds () =
  let tree = Tree_gen.of_family "comb" ~rng:(Rng.create 2) ~n:300 ~depth_hint:8 in
  let mask ~round ~robot = (round + robot) mod 3 <> 0 in
  checkb "rotating blocks" true (check_prop7 tree 6 mask)

let test_blocked_robot_never_moves () =
  let tree = random_tree 6 120 in
  let mask ~round:_ ~robot = robot <> 2 in
  let env = Env.create ~mask tree ~k:4 in
  let t = Bfdn_algo.make env in
  let algo = { (Bfdn_algo.algo t) with Runner.finished = Env.fully_explored } in
  let r = Runner.run algo env in
  checkb "explored without robot 2" true r.explored;
  checki "robot 2 pinned at root" 0 (Env.moves_of_robot env 2)

(* ---- Remark 8: reactive adversary that sees selected moves ---- *)

(* A reactive adversary that vetoes every selected discovery move stalls
   exploration forever even though the allowed-move budget A(M) keeps
   growing: Proposition 7's guarantee genuinely requires the oblivious
   mask model — the reactive model is exactly what Remark 8 leaves open. *)
let discovery_veto env view ~round:_ ~selected =
  Array.mapi
    (fun i m ->
      match m with
      | Env.Via_port p ->
          Partial_tree.port view (Env.position env i) p <> Partial_tree.Dangling
      | Env.Stay | Env.Up -> true)
    selected

let test_reactive_blocker_can_stall () =
  let tree = random_tree 71 250 in
  let k = 8 in
  let env = Env.create tree ~k in
  let view = Env.view env in
  Env.set_reactive_blocker env (discovery_veto env view);
  let t = Bfdn_algo.make env in
  let algo = { (Bfdn_algo.algo t) with Runner.finished = Env.fully_explored } in
  let r = Runner.run ~max_rounds:20_000 algo env in
  checkb "stalled forever" false r.explored;
  (* ... although the per-robot allowance blew far past the Prop 7
     threshold: the guarantee does not survive a move-observing adversary. *)
  let threshold =
    Bounds.bfdn_breakdown ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
  in
  checkb "A(M) far beyond the oblivious threshold" true
    (float_of_int (Env.allowed_total env) /. float_of_int k > threshold)

let test_reactive_blocker_intermittent_completes () =
  (* If the reactive adversary must relent periodically (discovery allowed
     every third round), exploration completes again. *)
  let tree = random_tree 71 250 in
  let k = 8 in
  let env = Env.create tree ~k in
  let view = Env.view env in
  let veto = discovery_veto env view in
  Env.set_reactive_blocker env (fun ~round ~selected ->
      if round mod 3 = 0 then Array.make k true else veto ~round ~selected);
  let t = Bfdn_algo.make env in
  let algo = { (Bfdn_algo.algo t) with Runner.finished = Env.fully_explored } in
  let r = Runner.run ~max_rounds:1_000_000 algo env in
  checkb "explored under intermittent vetoes" true r.explored

let test_reactive_blocker_arity_checked () =
  let env = Env.create (random_tree 3 20) ~k:3 in
  Env.set_reactive_blocker env (fun ~round:_ ~selected:_ -> [| true |]);
  checkb "bad arity rejected" true
    (try
       Env.apply env [| Env.Stay; Env.Stay; Env.Stay |];
       false
     with Invalid_argument _ -> true)

(* ---- determinism ---- *)

let test_deterministic_runs () =
  let tree = random_tree 100 300 in
  let _, _, r1 = run_bfdn tree 9 in
  let _, _, r2 = run_bfdn tree 9 in
  checki "same rounds" r1.rounds r2.rounds;
  checki "same moves" r1.moves r2.moves

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "bfdn",
    [
      tc "explores all families" test_explores_all_families;
      tc "single robot is DFS" test_single_robot_is_dfs;
      tc "single node" test_single_node;
      tc "more robots than nodes" test_more_robots_than_nodes;
      tc "edge events complete" test_edge_events_complete;
      tc "claim 2: single discoverer" test_claim2_single_discoverer;
      qc prop_theorem1_random_trees;
      qc prop_theorem1_all_families;
      qc prop_theorem1_delta_side;
      tc "bound tight on star" test_bound_tight_on_star;
      tc "lemma 2 per depth" test_lemma2_per_depth;
      tc "reanchor totals" test_reanchors_total_consistency;
      tc "claim 4 invariant" test_claim4_invariant;
      tc "open subtrees hosted (all tree algos)" test_open_subtrees_hosted;
      tc "scales to 250k nodes" test_scales_to_large_instances;
      tc "policy ablation explores" test_policies_still_explore;
      tc "shortcut variant explores" test_shortcut_variant_explores;
      tc "prop 7 random masks" test_prop7_random_masks;
      tc "prop 7 half fleet blocked" test_prop7_half_fleet_blocked;
      tc "prop 7 rotating blocks" test_prop7_alternating_rounds;
      tc "blocked robot never moves" test_blocked_robot_never_moves;
      tc "reactive veto can stall (Remark 8)" test_reactive_blocker_can_stall;
      tc "intermittent reactive veto completes" test_reactive_blocker_intermittent_completes;
      tc "reactive blocker arity" test_reactive_blocker_arity_checked;
      tc "deterministic" test_deterministic_runs;
    ] )
