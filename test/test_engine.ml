(* Tests for Bfdn_engine: the pool drains under any worker count, batches
   are deterministic across worker counts (the sharded-replay contract),
   and failures are contained per job. *)

module Job = Bfdn_engine.Job
module Pool = Bfdn_engine.Pool
module Batch = Bfdn_engine.Batch
module Report = Bfdn_engine.Report

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Pool ---- *)

let test_pool_drains () =
  List.iter
    (fun workers ->
      let pool = Pool.create ~workers () in
      checki "worker count" (max 1 workers) (Pool.workers pool);
      let hits = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.submit pool (fun () -> Atomic.incr hits)
      done;
      Pool.join pool;
      checki
        (Printf.sprintf "all tasks ran (workers=%d)" workers)
        50 (Atomic.get hits);
      (* The pool stays usable after a join. *)
      Pool.submit pool (fun () -> Atomic.incr hits);
      Pool.join pool;
      checki "usable after join" 51 (Atomic.get hits);
      let per_worker = Pool.executed pool in
      checki "per-worker stats account for every task" 51
        (Array.fold_left ( + ) 0 per_worker);
      Pool.shutdown pool)
    [ 1; 2; Domain.recommended_domain_count () ]

let test_pool_survives_raising_task () =
  let pool = Pool.create ~workers:2 () in
  let hits = Atomic.make 0 in
  for i = 1 to 30 do
    Pool.submit pool (fun () ->
        if i mod 3 = 0 then failwith "boom";
        Atomic.incr hits)
  done;
  Pool.join pool;
  checki "non-raising tasks all ran" 20 (Atomic.get hits);
  (* Workers survived: the pool still executes new tasks. *)
  Pool.submit pool (fun () -> Atomic.incr hits);
  Pool.shutdown pool;
  checki "pool alive after exceptions" 21 (Atomic.get hits)

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~workers:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  checkb "submit after shutdown rejected" true
    (try
       Pool.submit pool (fun () -> ());
       false
     with Invalid_argument _ -> true)

(* ---- Batch determinism (the sequential-vs-parallel oracle) ---- *)

(* >= 200 jobs across every algorithm and instance family the registry
   knows, tiny instances so the whole oracle runs in well under a second
   of simulated work per worker count. *)
let oracle_jobs () =
  let jobs = ref [] in
  let add j = jobs := j :: !jobs in
  let seed = ref 1000 in
  let next_seed () =
    incr seed;
    !seed
  in
  List.iter
    (fun family ->
      List.iter
        (fun algo ->
          List.iter
            (fun k ->
              for _ = 1 to 2 do
                add
                  (Job.make ~algo ~k ~seed:(next_seed ())
                     (Job.Generated { family; n = 60; depth_hint = 8 }))
              done)
            [ 1; 3; 8 ])
        [ "bfdn"; "cte"; "dfs"; "offline"; "random-walk"; "bfdn-wr"; "bfdn-rec" ])
    [ "random"; "comb"; "star"; "spider"; "hidden-path" ];
  List.iter
    (fun policy ->
      List.iter
        (fun algo ->
          List.iter
            (fun k ->
              add
                (Job.make ~algo ~k ~seed:(next_seed ())
                   (Job.Adversarial
                      { policy; capacity = 80; depth_budget = 12 })))
            [ 2; 6 ])
        [ "bfdn"; "cte" ])
    Job.policies;
  List.rev !jobs

let result_testable =
  Alcotest.testable
    (fun ppf -> function
      | Ok (o : Job.outcome) ->
          Format.fprintf ppf "Ok(rounds=%d n=%d)" o.result.rounds o.n
      | Error e -> Format.fprintf ppf "Error(%s)" e)
    (fun a b ->
      match (a, b) with
      | Ok x, Ok y -> Job.equal_outcome x y
      | Error x, Error y -> x = y
      | _ -> false)

let test_batch_parallel_equals_sequential () =
  let jobs = oracle_jobs () in
  checkb "oracle batch is >= 200 jobs" true (List.length jobs >= 200);
  let sequential = Batch.run ~workers:1 jobs in
  List.iter
    (fun workers ->
      let parallel = Batch.run ~workers jobs in
      List.iter2
        (fun (job, expect) (_, got) ->
          check result_testable
            (Printf.sprintf "workers=%d %s" workers (Job.describe job))
            expect got)
        sequential parallel)
    [ 2; max 2 (Domain.recommended_domain_count ()) ]

let test_batch_progress_and_order () =
  let jobs =
    List.init 40 (fun i ->
        Job.make ~algo:"bfdn" ~k:3 ~seed:i
          (Job.Generated { family = "random"; n = 30; depth_hint = 5 }))
  in
  let last = ref 0 in
  let monotone = ref true in
  let results =
    Batch.run ~workers:3
      ~progress:(fun ~completed ~total ->
        if completed <= !last || total <> 40 then monotone := false;
        last := completed)
      jobs
  in
  checkb "progress is monotone" true !monotone;
  checki "progress reached the total" 40 !last;
  (* Ordered collection: result i corresponds to job i. *)
  List.iteri
    (fun i (job, _) ->
      checki (Printf.sprintf "slot %d holds job %d" i i) i job.Job.seed)
    results

let test_batch_error_isolated () =
  let good i =
    Job.make ~algo:"bfdn" ~k:2 ~seed:i
      (Job.Generated { family = "star"; n = 20; depth_hint = 2 })
  in
  let bad =
    Job.make ~algo:"no-such-algo" ~k:2 ~seed:99
      (Job.Generated { family = "star"; n = 20; depth_hint = 2 })
  in
  let jobs = [ good 0; bad; good 1; bad; good 2 ] in
  let results = Batch.run ~workers:2 jobs in
  let oks, errs =
    List.partition (fun (_, r) -> Result.is_ok r) results
  in
  checki "good jobs all completed" 3 (List.length oks);
  checki "bad jobs reported per job" 2 (List.length errs);
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun (_, r) ->
      match r with
      | Error msg ->
          checkb "error names the unknown algorithm" true
            (contains msg "no-such-algo")
      | Ok _ -> ())
    errs

let test_batch_map_generic () =
  let xs = Array.init 100 (fun i -> i) in
  let res = Batch.map ~workers:3 (fun x -> x * x) xs in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> checki "square in order" (i * i) v
      | Error e -> Alcotest.failf "unexpected error %s" e)
    res

let test_aggregate () =
  let jobs =
    List.concat_map
      (fun algo ->
        List.init 3 (fun i ->
            Job.make ~algo ~k:2 ~seed:(i + 7)
              (Job.Generated { family = "comb"; n = 40; depth_hint = 6 })))
      [ "bfdn"; "cte" ]
  in
  let results = Batch.run ~workers:1 jobs in
  let agg = Batch.aggregate results in
  checki "job count" 6 agg.jobs;
  checki "no errors" 0 agg.errors;
  checki "two algos" 2 (List.length agg.per_algo);
  checkb "per-algo counts" true
    (List.for_all (fun (_, (s : Bfdn_util.Stats.summary)) -> s.count = 3)
       agg.per_algo)

(* ---- Report ---- *)

let test_report_json () =
  let j =
    Report.Obj
      [
        ("s", Report.String "a\"b\n");
        ("i", Report.Int 3);
        ("f", Report.Float 1.5);
        ("nan", Report.Float Float.nan);
        ("l", Report.List [ Report.Bool true; Report.Null ]);
      ]
  in
  check Alcotest.string "rendering"
    "{\"s\":\"a\\\"b\\n\",\"i\":3,\"f\":1.5,\"nan\":null,\"l\":[true,null]}"
    (Report.to_string j)

let test_report_of_sweep () =
  let jobs =
    List.init 4 (fun i ->
        Job.make ~algo:"bfdn" ~k:2 ~seed:i
          (Job.Generated { family = "star"; n = 15; depth_hint = 2 }))
  in
  let results = Batch.run ~workers:1 jobs in
  let j =
    Report.of_sweep ~label:"test" ~workers:2 ~seed:0 ~wall:0.5 ~sequential_wall:1.0
      results
  in
  let s = Report.to_string j in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "has jobs_per_sec" true (contains "\"jobs_per_sec\":8");
  checkb "has speedup" true (contains "\"speedup\":2");
  checkb "has per-algo block" true (contains "\"bfdn\"")

(* ---- adversarial replay invariant through the engine ---- *)

let test_adversarial_replay_matches () =
  List.iter
    (fun policy ->
      let job =
        Job.make ~algo:"bfdn" ~k:4 ~seed:5
          (Job.Adversarial { policy; capacity = 120; depth_budget = 15 })
      in
      let o = Job.run job in
      match o.replay_rounds with
      | None -> Alcotest.fail "adversarial job must report replay rounds"
      | Some r ->
          checki
            (Printf.sprintf "frozen replay reproduces the run (%s)" policy)
            o.result.rounds r)
    [ "thick-comb"; "corridor"; "miser" ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "engine",
    [
      tc "pool drains under 1/2/N workers" test_pool_drains;
      tc "pool survives raising tasks" test_pool_survives_raising_task;
      tc "pool shutdown is idempotent" test_pool_shutdown_idempotent;
      tc "batch: parallel equals sequential" test_batch_parallel_equals_sequential;
      tc "batch: progress monotone, collection ordered" test_batch_progress_and_order;
      tc "batch: per-job errors are isolated" test_batch_error_isolated;
      tc "batch: generic map" test_batch_map_generic;
      tc "batch: aggregate summaries" test_aggregate;
      tc "report: json rendering" test_report_json;
      tc "report: sweep body" test_report_of_sweep;
      tc "adversarial replay matches adaptive run" test_adversarial_replay_matches;
    ] )
