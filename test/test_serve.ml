(* Tests for the scenario-execution service: fingerprint soundness over
   the golden suite, the LRU result cache (eviction order, byte-identical
   hit/miss, concurrent access), HTTP framing and routing units, admission
   backpressure, and — over real sockets — end-to-end determinism
   (an HTTP submission reproduces the in-process outcome byte for byte),
   timeout cancellation leaving the pool usable, and graceful drain. *)

module Json = Bfdn_obs.Json
module Param = Bfdn_scenario.Param
module Scenario = Bfdn_scenario.Scenario
module Http = Bfdn_serve.Http
module Router = Bfdn_serve.Router
module Result_cache = Bfdn_serve.Result_cache
module Q = Bfdn_serve.Queue_admission
module Server = Bfdn_serve.Server
module Client = Bfdn_serve.Client

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

(* ---- fingerprint ---- *)

(* The 42 golden configs of test_golden.ml: 7 families × 3 anchor
   policies × shortcut ∈ {false, true}. *)
let golden_specs () =
  let families =
    [ "comb"; "binary"; "random"; "trap"; "caterpillar"; "spider"; "hidden-path" ]
  and policies = [ "least-loaded"; "first-open"; "random-open" ] in
  let specs = ref [] in
  let idx = ref 0 in
  List.iter
    (fun family ->
      List.iter
        (fun policy ->
          List.iter
            (fun shortcut ->
              let seed = 1000 + !idx in
              incr idx;
              specs :=
                Scenario.make ~algo:"bfdn"
                  ~algo_params:
                    [
                      ("policy", Param.String policy);
                      ("shortcut", Param.Bool shortcut);
                    ]
                  ~k:9 ~seed
                  (Scenario.generated ~family ~n:500 ~depth_hint:12)
                :: !specs)
            [ false; true ])
        policies)
    families;
  !specs

let test_fingerprint_collision_free () =
  let fps = List.map Scenario.fingerprint (golden_specs ()) in
  checki "42 golden configs" 42 (List.length fps);
  let distinct = List.sort_uniq compare fps in
  checki "all fingerprints distinct" 42 (List.length distinct);
  List.iter
    (fun fp ->
      checki "16 hex chars" 16 (String.length fp);
      String.iter
        (fun c ->
          checkb "lowercase hex" true
            ((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')))
        fp)
    fps

let test_fingerprint_ignores_metrics_flag () =
  let spec =
    Scenario.make ~k:4 ~seed:11 (Scenario.generated ~family:"comb" ~n:60 ~depth_hint:5)
  in
  checks "metrics flag is advisory"
    (Scenario.fingerprint { spec with Scenario.metrics = false })
    (Scenario.fingerprint { spec with Scenario.metrics = true });
  checkb "seed is load-bearing" false
    (String.equal
       (Scenario.fingerprint spec)
       (Scenario.fingerprint { spec with Scenario.seed = 12 }))

(* ---- result cache ---- *)

let test_cache_lru_eviction () =
  let c = Result_cache.create ~cap:3 in
  Result_cache.put c "a" "1";
  Result_cache.put c "b" "2";
  Result_cache.put c "c" "3";
  check_sl "mru order after fills" [ "c"; "b"; "a" ] (Result_cache.keys_mru c);
  (* touching [a] promotes it, so [b] is now the eviction candidate *)
  checkb "find a" true (Result_cache.find c "a" = Some "1");
  Result_cache.put c "d" "4";
  check_sl "b evicted, not a" [ "d"; "a"; "c" ] (Result_cache.keys_mru c);
  checkb "b gone" false (Result_cache.mem c "b");
  let s = Result_cache.stats c in
  checki "one eviction" 1 s.Result_cache.evictions;
  checki "size tracks" 3 s.Result_cache.size;
  (* refreshing an existing key neither grows nor evicts *)
  Result_cache.put c "c" "3'";
  checki "refresh keeps size" 3 (Result_cache.length c);
  checkb "refresh replaces body" true (Result_cache.find c "c" = Some "3'")

let test_cache_zero_cap_disabled () =
  let c = Result_cache.create ~cap:0 in
  Result_cache.put c "a" "1";
  checkb "never stores" true (Result_cache.find c "a" = None);
  checki "empty" 0 (Result_cache.length c)

let test_cache_hit_is_byte_identical () =
  let c = Result_cache.create ~cap:8 in
  let body = {|{"rounds":202,"explored":true}|} in
  Result_cache.put c "fp" body;
  match Result_cache.find c "fp" with
  | None -> Alcotest.fail "expected a hit"
  | Some got -> checks "hit returns the stored bytes" body got

let test_cache_concurrent_access () =
  (* 4 threads hammer a small cache with overlapping keys; the point is
     absence of torn state: every hit must return the exact body written
     for its key, and the final size must respect the cap. *)
  let c = Result_cache.create ~cap:8 in
  let body_of k = "body:" ^ k in
  let errors = Atomic.make 0 in
  let worker t =
    for i = 0 to 499 do
      let k = Printf.sprintf "k%d" ((i + t) mod 12) in
      (match Result_cache.find c k with
      | Some v when v <> body_of k -> Atomic.incr errors
      | _ -> ());
      Result_cache.put c k (body_of k)
    done
  in
  let threads = List.init 4 (fun t -> Thread.create worker t) in
  List.iter Thread.join threads;
  checki "no torn reads" 0 (Atomic.get errors);
  checkb "cap respected" true (Result_cache.length c <= 8);
  let s = Result_cache.stats c in
  checki "finds all accounted" (4 * 500) (s.Result_cache.hits + s.Result_cache.misses)

(* ---- http framing ---- *)

let parse_request raw =
  let r, w = Unix.pipe () in
  let writer = Thread.create (fun () ->
      Http.write_all w raw;
      Unix.close w)
      ()
  in
  let res = Http.read_request (Http.reader r) in
  Thread.join writer;
  Unix.close r;
  res

let test_http_parse_request () =
  match
    parse_request
      "POST /run?wait=0&x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\nX-Mixed-Case: V \r\n\r\nbody"
  with
  | Error e -> Alcotest.fail e
  | Ok req ->
      checks "method" "POST" req.Http.meth;
      check_sl "path segments" [ "run" ] req.Http.path;
      checkb "query decoded" true
        (Http.query_param "wait" req = Some "0" && Http.query_param "x" req = Some "1");
      checkb "headers lowercased, values trimmed" true
        (Http.header "x-mixed-case" req = Some "V"
        && Http.header "X-Mixed-Case" req = Some "V");
      checks "body" "body" req.Http.body

let test_http_parse_rejects () =
  List.iter
    (fun (what, raw) ->
      checkb what true (Result.is_error (parse_request raw)))
    [
      ("malformed request line", "GET\r\n\r\n");
      ("not http", "GET / FTP/1.1\r\n\r\n");
      ("bad content-length", "GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n");
      ( "body too large",
        "POST / HTTP/1.1\r\nContent-Length: 1048577\r\n\r\n" );
      ("eof mid-headers", "GET / HTTP/1.1\r\nHost: h\r\n");
      ( "too many headers",
        "GET / HTTP/1.1\r\n"
        ^ String.concat ""
            (List.init 65 (fun i -> Printf.sprintf "H%d: v\r\n" i))
        ^ "\r\n" );
    ]

(* ---- router ---- *)

let test_router_dispatch () =
  let routes =
    [
      Router.route ~meth:"GET" "/jobs/:id/stream" `Stream;
      Router.route ~meth:"GET" "/jobs/:id" `Status;
      Router.route ~meth:"POST" "/run" `Run;
    ]
  in
  (match Router.dispatch routes ~meth:"GET" ~path:[ "jobs"; "7"; "stream" ] with
  | Router.Match (`Stream, params) ->
      checkb "captures id" true (List.assoc_opt "id" params = Some "7")
  | _ -> Alcotest.fail "expected stream match");
  (match Router.dispatch routes ~meth:"GET" ~path:[ "run" ] with
  | Router.Method_not_allowed allowed -> check_sl "allow list" [ "POST" ] allowed
  | _ -> Alcotest.fail "expected 405");
  match Router.dispatch routes ~meth:"GET" ~path:[ "nope" ] with
  | Router.Not_found -> ()
  | _ -> Alcotest.fail "expected 404"

(* ---- json position errors ---- *)

let test_json_position_errors () =
  match Json.of_string_pos "{\"a\": 1,\n  \"b\": nope}" with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e ->
      checki "line" 2 e.Json.line;
      checkb "column points into line 2" true (e.Json.col >= 7 && e.Json.col <= 9);
      checkb "offset consistent with line/col" true (e.Json.offset >= 14);
      checkb "message survives rendering" true
        (String.length (Json.error_to_string e) > 0)

(* ---- admission ---- *)

let spec_small =
  Scenario.make ~k:4 ~seed:3 (Scenario.generated ~family:"comb" ~n:60 ~depth_hint:5)

let test_admission_bound_and_drain () =
  let q = Q.create ~cap:2 () in
  let admit () = Q.admit q ~timeout_s:1.0 ~fingerprint:"fp" spec_small in
  let j1 = Result.get_ok (admit ()) in
  let j2 = Result.get_ok (admit ()) in
  (match admit () with
  | Error `Full -> ()
  | _ -> Alcotest.fail "expected `Full past the cap");
  checki "inflight" 2 (Q.inflight q);
  checkb "retry-after positive" true (Q.retry_after_s q >= 1);
  Q.settle q j1 (Q.Done "{}");
  checkb "slot freed" true (Result.is_ok (admit ()));
  Q.drain q;
  (match admit () with
  | Error `Draining -> ()
  | _ -> Alcotest.fail "expected `Draining");
  (* drain cancelled the still-queued jobs; settling is idempotent *)
  checkb "queued jobs cancelled by drain" true (Q.state q j2 = Q.Cancelled);
  Q.await_idle q;
  checki "idle after drain" 0 (Q.inflight q);
  checkb "await returns the terminal state" true (Q.await q j1 = Q.Done "{}")

(* ---- end-to-end over real sockets ---- *)

let with_server ?(workers = 2) ?(queue_cap = 64) ?(cache_cap = 256)
    ?(timeout_s = 60.) ?postmortem_dir f =
  let config =
    {
      Server.default_config with
      Server.port = 0;
      workers;
      queue_cap;
      cache_cap;
      timeout_s;
      postmortem_dir;
    }
  in
  let srv = Server.create config in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () -> f (Server.port srv))

let post_run ?(query = "") port body =
  match
    Client.request ~port ~body ~meth:"POST" ~path:("/run" ^ query) ()
  with
  | Ok resp -> resp
  | Error msg -> Alcotest.fail ("POST /run: " ^ msg)

let get port path =
  match Client.request ~port ~meth:"GET" ~path () with
  | Ok resp -> resp
  | Error msg -> Alcotest.fail ("GET " ^ path ^ ": " ^ msg)

let member_string name body =
  match Json.of_string body with
  | Ok j -> (
      match Json.member name j with
      | Some (Json.String s) -> Some s
      | _ -> None)
  | Error _ -> None

let test_e2e_determinism_and_cache () =
  with_server (fun port ->
      let wire = Scenario.to_string spec_small in
      let expected =
        Json.to_string (Scenario.outcome_to_json (Scenario.run spec_small))
      in
      let miss = post_run port wire in
      checki "first submission runs" 200 miss.Client.status;
      checkb "marked miss" true (member_string "cache" miss.Client.body = Some "miss");
      let hit = post_run port wire in
      checki "second submission cached" 200 hit.Client.status;
      checkb "marked hit" true (member_string "cache" hit.Client.body = Some "hit");
      (* the embedded result must be byte-identical to the in-process
         run, and the hit and miss bodies must differ only in the cache
         marker *)
      let result_of body =
        match Json.of_string body with
        | Ok j -> (
            match Json.member "result" j with
            | Some r -> Json.to_string r
            | None -> Alcotest.fail "no result member")
        | Error e -> Alcotest.fail e
      in
      checks "HTTP result = in-process outcome" expected (result_of miss.Client.body);
      checks "hit byte-identical to miss" (result_of miss.Client.body)
        (result_of hit.Client.body);
      (* metrics flag must not defeat the cache *)
      let with_metrics =
        Scenario.to_string { spec_small with Scenario.metrics = true }
      in
      checkb "metrics variant hits too" true
        (member_string "cache" (post_run port with_metrics).Client.body = Some "hit");
      (* graph worlds run through the same executor, fingerprint and
         cache: a version-2 grid spec must miss, then hit byte-identically *)
      let grid_spec =
        Scenario.make ~algo:"bfdn-graph" ~k:5 ~seed:21
          (Scenario.world
             ~params:
               [
                 ("height", Param.Int 6);
                 ("obstacles", Param.Int 2);
                 ("width", Param.Int 8);
               ]
             "grid")
      in
      let grid_wire = Scenario.to_string grid_spec in
      let grid_expected =
        Json.to_string (Scenario.outcome_to_json (Scenario.run grid_spec))
      in
      let gmiss = post_run port grid_wire in
      checki "grid submission runs" 200 gmiss.Client.status;
      checkb "grid first is a miss" true
        (member_string "cache" gmiss.Client.body = Some "miss");
      checks "grid HTTP result = in-process outcome" grid_expected
        (result_of gmiss.Client.body);
      let ghit = post_run port grid_wire in
      checkb "grid second is a hit" true
        (member_string "cache" ghit.Client.body = Some "hit");
      checks "grid hit byte-identical to miss" (result_of gmiss.Client.body)
        (result_of ghit.Client.body))

let test_e2e_concurrent_clients () =
  with_server (fun port ->
      let wire = Scenario.to_string spec_small in
      let expected =
        Json.to_string (Scenario.outcome_to_json (Scenario.run spec_small))
      in
      let results = Array.make 4 None in
      let client i =
        match Client.request ~port ~body:wire ~meth:"POST" ~path:"/run" () with
        | Ok resp -> results.(i) <- Some resp
        | Error _ -> ()
      in
      let threads = List.init 4 (fun i -> Thread.create client i) in
      List.iter Thread.join threads;
      Array.iteri
        (fun i r ->
          match r with
          | None -> Alcotest.fail (Printf.sprintf "client %d got no response" i)
          | Some resp ->
              checki (Printf.sprintf "client %d status" i) 200 resp.Client.status;
              checkb
                (Printf.sprintf "client %d result bytes" i)
                true
                (let b = resp.Client.body in
                 (* the result segment is the canonical outcome either way *)
                 match Json.of_string b with
                 | Ok j -> (
                     match Json.member "result" j with
                     | Some r -> String.equal (Json.to_string r) expected
                     | None -> false)
                 | Error _ -> false))
        results)

let test_e2e_bad_spec_400 () =
  with_server (fun port ->
      let resp = post_run port "{\"a\": 1,\n  \"b\": nope}" in
      checki "malformed json is 400" 400 resp.Client.status;
      (match Json.of_string resp.Client.body with
      | Ok j ->
          checkb "error body carries the position" true
            (Json.member "line" j = Some (Json.Int 2)
            && Json.member "offset" j <> None)
      | Error e -> Alcotest.fail e);
      let resp =
        post_run port
          {|{"schema_version":1,"world":{"name":"comb"},"algo":{"name":"zap"},"k":1,"seed":0}|}
      in
      checki "unknown algorithm is 400" 400 resp.Client.status;
      let resp = get port "/nope" in
      checki "unknown path is 404" 404 resp.Client.status)

let spec_wire_other =
  Scenario.to_string
    (Scenario.make ~k:4 ~seed:6 (Scenario.generated ~family:"comb" ~n:60 ~depth_hint:5))

let test_e2e_backpressure_429 () =
  (* one worker, admission bound 1: while the first job occupies the
     slot, the second submission must be refused up front — 429 with a
     Retry-After — without ever running. *)
  with_server ~workers:1 ~queue_cap:1 ~cache_cap:0 (fun port ->
      let slow =
        Scenario.to_string
          (Scenario.make ~k:4 ~seed:5
             (Scenario.generated ~family:"random" ~n:20000 ~depth_hint:40))
      in
      let first = post_run ~query:"?wait=0" port slow in
      checki "slow job admitted" 202 first.Client.status;
      let refused = post_run ~query:"?wait=0" port spec_wire_other in
      checki "second refused while full" 429 refused.Client.status;
      checkb "retry-after advertised" true
        (match Client.response_header "Retry-After" refused with
        | Some v -> int_of_string_opt v <> None
        | None -> false);
      checkb "refused without running" true
        (member_string "error" refused.Client.body <> None))

let test_e2e_timeout_cancels_cleanly () =
  with_server ~workers:1 ~cache_cap:0 (fun port ->
      let big =
        Scenario.to_string
          (Scenario.make ~k:4 ~seed:5
             (Scenario.generated ~family:"random" ~n:50000 ~depth_hint:60))
      in
      let resp = post_run ~query:"?timeout_s=0.005" port big in
      checki "timed-out job is 504" 504 resp.Client.status;
      checkb "reported as timeout" true
        (member_string "status" resp.Client.body = Some "timeout");
      (* the pool must still be usable after the cancellation *)
      let ok = post_run port (Scenario.to_string spec_small) in
      checki "pool survives the cancel" 200 ok.Client.status)

let test_e2e_stream_and_status () =
  with_server ~workers:1 (fun port ->
      let wire = Scenario.to_string spec_small in
      let ticket = post_run ~query:"?wait=0" port wire in
      checki "async submit accepted" 202 ticket.Client.status;
      let id =
        match Json.of_string ticket.Client.body with
        | Ok j -> (
            match Json.member "id" j with
            | Some (Json.Int id) -> id
            | _ -> Alcotest.fail "no id in ticket")
        | Error e -> Alcotest.fail e
      in
      let stream = get port (Printf.sprintf "/jobs/%d/stream" id) in
      checki "stream responds" 200 stream.Client.status;
      let lines =
        String.split_on_char '\n' (String.trim stream.Client.body)
      in
      checkb "at least one frame plus the status line" true (List.length lines >= 2);
      let last = List.nth lines (List.length lines - 1) in
      checkb "final line settles the job" true
        (member_string "status" last = Some "done");
      List.iteri
        (fun i line ->
          if i < List.length lines - 1 then
            match Json.of_string line with
            | Ok j -> checkb "frame has a round" true (Json.member "round" j <> None)
            | Error e -> Alcotest.fail e)
        lines;
      let status = get port (Printf.sprintf "/jobs/%d" id) in
      checki "status endpoint" 200 status.Client.status;
      checkb "done with result" true
        (member_string "status" status.Client.body = Some "done"))

let test_e2e_registry_and_metrics () =
  with_server (fun port ->
      let reg = get port "/registry" in
      checki "registry ok" 200 reg.Client.status;
      checks "registry = Scenario.registry_json"
        (Json.to_string (Scenario.registry_json ()))
        reg.Client.body;
      ignore (post_run port (Scenario.to_string spec_small));
      let m = get port "/metrics" in
      checki "metrics ok" 200 m.Client.status;
      match Json.of_string m.Client.body with
      | Error e -> Alcotest.fail e
      | Ok j ->
          checkb "has metrics and cache sections" true
            (Json.member "metrics" j <> None && Json.member "cache" j <> None))

(* ---- spans, prometheus exposition, postmortems ---- *)

module Prometheus = Bfdn_obs.Prometheus

let contains body sub =
  let n = String.length body and k = String.length sub in
  let rec go i = i + k <= n && (String.sub body i k = sub || go (i + 1)) in
  go 0

(* Poll the status endpoint until the job settles (the async path). *)
let await_done port id =
  let rec go tries =
    if tries = 0 then Alcotest.fail "job did not settle in time";
    let st = get port (Printf.sprintf "/jobs/%d" id) in
    match member_string "status" st.Client.body with
    | Some ("done" | "failed" | "timeout" | "cancelled") -> st
    | _ ->
        Unix.sleepf 0.01;
        go (tries - 1)
  in
  go 1000

let test_e2e_span_tree () =
  (* A deep comb at small k: thousands of rounds, so the runner loop
     dominates the execute span and the phase-sum criterion is sharp. *)
  let spec =
    Scenario.make ~k:4 ~seed:9
      (Scenario.generated ~family:"comb" ~n:4000 ~depth_hint:60)
  in
  with_server ~workers:1 ~cache_cap:0 (fun port ->
      let ticket = post_run ~query:"?wait=0" port (Scenario.to_string spec) in
      checki "async submit accepted" 202 ticket.Client.status;
      let trace =
        match member_string "trace" ticket.Client.body with
        | Some t -> t
        | None -> Alcotest.fail "ticket carries no trace id"
      in
      checkb "trace id non-empty" true (String.length trace > 0);
      let id =
        match Json.of_string ticket.Client.body with
        | Ok j -> (
            match Json.member "id" j with
            | Some (Json.Int id) -> id
            | _ -> Alcotest.fail "no id in ticket")
        | Error e -> Alcotest.fail e
      in
      ignore (await_done port id);
      let resp = get port (Printf.sprintf "/jobs/%d/spans" id) in
      checki "spans endpoint" 200 resp.Client.status;
      let tree =
        match Json.of_string resp.Client.body with
        | Ok j -> j
        | Error e -> Alcotest.fail e
      in
      checkb "tree carries the ticket's trace id" true
        (Json.member "trace" tree = Some (Json.String trace));
      let name_of j =
        match Json.member "name" j with Some (Json.String s) -> s | _ -> ""
      in
      let children j =
        match Json.member "children" j with Some (Json.List l) -> l | _ -> []
      in
      let dur j =
        match Json.member "dur_ns" j with Some (Json.Int d) -> d | _ -> 0
      in
      let roots =
        match Json.member "spans" tree with Some (Json.List l) -> l | _ -> []
      in
      checki "one root span" 1 (List.length roots);
      let root = List.hd roots in
      checks "root is the request" "request" (name_of root);
      let kid name = List.find_opt (fun c -> name_of c = name) (children root) in
      checkb "edge spans present" true
        (kid "parse" <> None && kid "cache_lookup" <> None
        && kid "admission" <> None && kid "queue" <> None);
      let exe =
        match kid "execute" with
        | Some e -> e
        | None -> Alcotest.fail "no execute span"
      in
      let phase_names =
        [ "phase:select"; "phase:apply"; "phase:finished_check" ]
      in
      let phases =
        List.filter (fun c -> List.mem (name_of c) phase_names) (children exe)
      in
      checki "three phase spans" 3 (List.length phases);
      let run =
        match
          List.find_opt (fun c -> name_of c = "run") (children exe)
        with
        | Some r -> r
        | None -> Alcotest.fail "no run span under execute"
      in
      (* The three accumulated phases cover the whole runner loop: their
         sum must land within 5% of the run span's wall time (the
         execute span additionally carries world/env/algorithm setup). *)
      let phase_sum = List.fold_left (fun a p -> a + dur p) 0 phases in
      let run_wall = dur run in
      checkb "phases closed" true
        (List.for_all (fun p -> Json.member "open" p = None) phases);
      checkb
        (Printf.sprintf "phase sum %d within 5%% of run wall %d" phase_sum
           run_wall)
        true
        (run_wall > 0
        && Float.abs (float_of_int (phase_sum - run_wall))
           <= 0.05 *. float_of_int run_wall);
      checkb "execute wall covers the loop" true (dur exe >= run_wall))

let test_e2e_prometheus_metrics () =
  with_server (fun port ->
      ignore (post_run port (Scenario.to_string spec_small));
      let m = get port "/metrics?format=prometheus" in
      checki "prometheus format ok" 200 m.Client.status;
      (match Client.response_header "Content-Type" m with
      | Some ct -> checks "exposition content type" Prometheus.content_type ct
      | None -> Alcotest.fail "no content type");
      let body = m.Client.body in
      (match Prometheus.validate body with
      | Ok () -> ()
      | Error e -> Alcotest.failf "exposition does not validate: %s" e);
      checkb "request latency histogram" true
        (contains body "# TYPE bfdn_request_s histogram"
        && contains body "bfdn_request_s_bucket{le=\"+Inf\"}");
      checkb "quantile estimate gauges" true (contains body "bfdn_request_s_p99");
      checkb "simulation counters merged" true (contains body "bfdn_rounds");
      checkb "gc registry merged" true (contains body "bfdn_gc_");
      checkb "service stats folded in" true
        (contains body "bfdn_result_cache_hits"
        && contains body "bfdn_admission_inflight"
        && contains body "bfdn_pool_workers"))

let pm_seq = ref 0

let with_postmortem_dir f =
  incr pm_seq;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bfdn-pm-%d-%d" (Unix.getpid ()) !pm_seq)
  in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> Sys.remove (Filename.concat dir f))
          (Sys.readdir dir);
        Unix.rmdir dir
      end)
    (fun () -> f dir)

let test_e2e_timeout_postmortem () =
  with_postmortem_dir (fun dir ->
      with_server ~workers:1 ~cache_cap:0 ~postmortem_dir:dir (fun port ->
          let big =
            Scenario.make ~k:4 ~seed:5
              (Scenario.generated ~family:"random" ~n:50000 ~depth_hint:60)
          in
          let resp =
            post_run ~query:"?timeout_s=0.005" port (Scenario.to_string big)
          in
          checki "timed-out job is 504" 504 resp.Client.status;
          let path =
            match member_string "postmortem" resp.Client.body with
            | Some p -> p
            | None -> Alcotest.fail "504 body lacks a postmortem link"
          in
          checkb "bundle exists by response time" true (Sys.file_exists path);
          let bundle =
            let ic = open_in_bin path in
            Fun.protect
              ~finally:(fun () -> close_in_noerr ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          (match Json.of_string bundle with
          | Error e -> Alcotest.fail e
          | Ok j ->
              checkb "reason is timeout" true
                (Json.member "reason" j = Some (Json.String "timeout"));
              checkb "spec embedded and re-parseable" true
                (match Json.member "spec" j with
                | Some spec_j -> (
                    match Scenario.of_json spec_j with
                    | Ok round_tripped ->
                        Scenario.fingerprint round_tripped
                        = Scenario.fingerprint big
                    | Error _ -> false)
                | None -> false);
              checkb "fingerprint recorded" true
                (Json.member "fingerprint" j
                = Some (Json.String (Scenario.fingerprint big)));
              checkb "seed recorded" true
                (Json.member "seed" j = Some (Json.Int 5));
              checkb "metrics snapshot present" true
                (match Json.member "metrics" j with
                | Some (Json.Obj _) -> true
                | _ -> false);
              checkb "trace frames present" true
                (match Json.member "frames" j with
                | Some (Json.List l) -> List.length l > 0
                | _ -> false);
              checkb "span tree present" true
                (match Json.member "spans" j with
                | Some (Json.Obj _) -> true
                | _ -> false));
          (* the job status endpoint links the bundle too *)
          let id =
            match Json.of_string resp.Client.body with
            | Ok j -> (
                match Json.member "id" j with
                | Some (Json.Int id) -> id
                | _ -> Alcotest.fail "no id in 504 body")
            | Error e -> Alcotest.fail e
          in
          let st = get port (Printf.sprintf "/jobs/%d" id) in
          checkb "status links postmortem" true
            (member_string "postmortem" st.Client.body = Some path)))

let test_e2e_tracing_disabled () =
  (* trace = false: requests still work, the spans endpoint degrades to
     an empty tree rather than an error. *)
  let config =
    {
      Server.default_config with
      Server.port = 0;
      workers = 1;
      cache_cap = 0;
      trace = false;
    }
  in
  let srv = Server.create config in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () ->
      let port = Server.port srv in
      let ticket =
        post_run ~query:"?wait=0" port (Scenario.to_string spec_small)
      in
      checki "async submit accepted" 202 ticket.Client.status;
      let id =
        match Json.of_string ticket.Client.body with
        | Ok j -> (
            match Json.member "id" j with
            | Some (Json.Int id) -> id
            | _ -> Alcotest.fail "no id in ticket")
        | Error e -> Alcotest.fail e
      in
      ignore (await_done port id);
      let resp = get port (Printf.sprintf "/jobs/%d/spans" id) in
      checki "spans endpoint still answers" 200 resp.Client.status;
      match Json.of_string resp.Client.body with
      | Ok j ->
          checkb "empty span tree" true
            (Json.member "spans" j = Some (Json.List []))
      | Error e -> Alcotest.fail e)

(* One admission ticket for a batched spec fans out to S cached lane
   fingerprints plus the batch body under its own fingerprint. *)
let test_e2e_batched_fanout () =
  with_server (fun port ->
      let batched = { spec_small with Scenario.batch_seeds = 4 } in
      let resp = post_run port (Scenario.to_string batched) in
      checki "batched submission runs" 200 resp.Client.status;
      checkb "marked miss" true
        (member_string "cache" resp.Client.body = Some "miss");
      (match Json.of_string resp.Client.body with
      | Ok j -> (
          match Json.member "result" j with
          | Some r -> (
              match Json.member "outcomes" r with
              | Some (Json.List lanes) ->
                  checki "one row per lane" 4 (List.length lanes);
                  List.iteri
                    (fun l row ->
                      let expected =
                        Json.to_string
                          (Scenario.outcome_to_json
                             (Scenario.run (Scenario.unbatch batched l)))
                      in
                      match Json.member "outcome" row with
                      | Some o ->
                          checks
                            (Printf.sprintf "lane %d = sequential run" l)
                            expected (Json.to_string o)
                      | None -> Alcotest.fail "lane row missing outcome")
                    lanes
              | _ -> Alcotest.fail "no outcomes list in batch result")
          | None -> Alcotest.fail "no result member")
      | Error e -> Alcotest.fail e);
      (* every lane's plain single-seed spec is now a cache hit *)
      for l = 0 to 3 do
        let lane_wire = Scenario.to_string (Scenario.unbatch batched l) in
        checkb
          (Printf.sprintf "lane %d spec hits the cache" l)
          true
          (member_string "cache" (post_run port lane_wire).Client.body
          = Some "hit")
      done;
      checkb "batch resubmission hits" true
        (member_string "cache"
           (post_run port (Scenario.to_string batched)).Client.body
        = Some "hit"))

let suite =
  ( "serve",
    [
      Alcotest.test_case "fingerprint collision-free over golden suite" `Quick
        test_fingerprint_collision_free;
      Alcotest.test_case "fingerprint ignores the metrics flag" `Quick
        test_fingerprint_ignores_metrics_flag;
      Alcotest.test_case "cache LRU eviction order" `Quick test_cache_lru_eviction;
      Alcotest.test_case "cache cap 0 disables" `Quick test_cache_zero_cap_disabled;
      Alcotest.test_case "cache hit is byte-identical" `Quick
        test_cache_hit_is_byte_identical;
      Alcotest.test_case "cache concurrent access" `Quick
        test_cache_concurrent_access;
      Alcotest.test_case "http request parsing" `Quick test_http_parse_request;
      Alcotest.test_case "http rejects malformed framing" `Quick
        test_http_parse_rejects;
      Alcotest.test_case "router dispatch" `Quick test_router_dispatch;
      Alcotest.test_case "json errors carry positions" `Quick
        test_json_position_errors;
      Alcotest.test_case "admission bound and drain" `Quick
        test_admission_bound_and_drain;
      Alcotest.test_case "e2e determinism and cache hit" `Quick
        test_e2e_determinism_and_cache;
      Alcotest.test_case "e2e concurrent clients agree" `Quick
        test_e2e_concurrent_clients;
      Alcotest.test_case "e2e malformed spec is 400" `Quick test_e2e_bad_spec_400;
      Alcotest.test_case "e2e full queue is 429" `Quick test_e2e_backpressure_429;
      Alcotest.test_case "e2e timeout cancels cleanly" `Quick
        test_e2e_timeout_cancels_cleanly;
      Alcotest.test_case "e2e stream and job status" `Quick
        test_e2e_stream_and_status;
      Alcotest.test_case "e2e registry and metrics endpoints" `Quick
        test_e2e_registry_and_metrics;
      Alcotest.test_case "e2e span tree and phase sums" `Quick
        test_e2e_span_tree;
      Alcotest.test_case "e2e prometheus exposition" `Quick
        test_e2e_prometheus_metrics;
      Alcotest.test_case "e2e timeout writes a postmortem" `Quick
        test_e2e_timeout_postmortem;
      Alcotest.test_case "e2e tracing disabled degrades cleanly" `Quick
        test_e2e_tracing_disabled;
      Alcotest.test_case "e2e batched spec fans out to lane cache" `Quick
        test_e2e_batched_fanout;
    ] )
