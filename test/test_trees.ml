(* Structural tests for the tree substrate: representation, port
   numbering, traversals, and every instance-family generator. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Tree_stats = Bfdn_trees.Tree_stats
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rng () = Rng.create 12345

(* ---- Tree core ---- *)

let small () = Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]
(* 0 -> {1 -> {3, 4}, 2 -> {5}} *)

let test_of_parents_basic () =
  let t = small () in
  checki "n" 6 (Tree.n t);
  checki "edges" 5 (Tree.num_edges t);
  checki "root" 0 (Tree.root t);
  checki "depth" 2 (Tree.depth t);
  checki "max_degree" 3 (Tree.max_degree t)

let test_of_parents_rejects_cycle () =
  (* 1 and 2 point at each other: unreachable from the root. *)
  checkb "cycle rejected" true
    (try
       ignore (Tree.of_parents [| -1; 2; 1 |]);
       false
     with Invalid_argument _ -> true)

let test_of_parents_rejects_bad_root () =
  checkb "root marker required" true
    (try
       ignore (Tree.of_parents [| 0; 0 |]);
       false
     with Invalid_argument _ -> true)

let test_of_parents_rejects_out_of_range () =
  checkb "parent out of range" true
    (try
       ignore (Tree.of_parents [| -1; 7 |]);
       false
     with Invalid_argument _ -> true)

let test_depth_of () =
  let t = small () in
  checki "root depth" 0 (Tree.depth_of t 0);
  checki "leaf depth" 2 (Tree.depth_of t 5)

let test_parent_children () =
  let t = small () in
  checkb "root has no parent" true (Tree.parent t 0 = None);
  checkb "parent of 3" true (Tree.parent t 3 = Some 1);
  checkb "children of 1" true (Tree.children t 1 = [| 3; 4 |])

let test_ports_roundtrip () =
  let t = small () in
  (* Non-root: port 0 is the parent; children at ports >= 1. *)
  checki "port to parent" 0 (Tree.port_to_parent t 1);
  checki "node 1 degree" 3 (Tree.degree t 1);
  checki "via port 0 from 1" 0 (Tree.neighbor_via_port t 1 0);
  checki "via port 1 from 1" 3 (Tree.neighbor_via_port t 1 1);
  checki "port of child" 1 (Tree.port_of_child t 1 3);
  (* Root: all ports are children. *)
  checki "root port 0" 1 (Tree.neighbor_via_port t 0 0);
  checki "root port of child 2" 1 (Tree.port_of_child t 0 2)

let test_is_ancestor () =
  let t = small () in
  checkb "root over all" true (Tree.is_ancestor t 0 5);
  checkb "self" true (Tree.is_ancestor t 3 3);
  checkb "1 over 4" true (Tree.is_ancestor t 1 4);
  checkb "2 not over 4" false (Tree.is_ancestor t 2 4);
  checkb "child not over parent" false (Tree.is_ancestor t 5 2)

let test_path_to_root () =
  let t = small () in
  checkb "path from 5" true (Tree.path_to_root t 5 = [ 5; 2; 0 ]);
  checkb "path from root" true (Tree.path_to_root t 0 = [ 0 ])

let test_subtree () =
  let t = small () in
  checki "subtree of 1" 3 (Tree.subtree_size t 1);
  checki "subtree of root" 6 (Tree.subtree_size t 0);
  checkb "nodes of 1" true (List.sort compare (Tree.subtree_nodes t 1) = [ 1; 3; 4 ])

let test_euler_tour () =
  let t = small () in
  let tour = Tree.euler_tour t in
  checki "length" (2 * Tree.num_edges t + 1) (List.length tour);
  checkb "starts at root" true (List.hd tour = 0);
  checkb "ends at root" true (List.nth tour (List.length tour - 1) = 0);
  (* Consecutive tour nodes are adjacent. *)
  let rec adjacent = function
    | a :: (b :: _ as rest) ->
        (Tree.parent t a = Some b || Tree.parent t b = Some a) && adjacent rest
    | _ -> true
  in
  checkb "steps along edges" true (adjacent tour)

let test_equal () =
  let a = small () and b = small () in
  checkb "equal" true (Tree.equal a b);
  checkb "not equal" false (Tree.equal a (Tree.of_parents [| -1; 0 |]))

let test_to_dot () =
  let s = Tree.to_dot (small ()) in
  checkb "digraph" true (String.length s > 7 && String.sub s 0 7 = "digraph")

(* Random parent arrays always describe valid trees once each node points
   to a strictly smaller index. *)
let prop_of_parents_random =
  QCheck.Test.make ~name:"random parent arrays build valid trees" ~count:200
    QCheck.(int_range 1 200)
    (fun n ->
      let r = Rng.create n in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let t = Tree.of_parents parents in
      Tree.validate t;
      Tree.n t = n)

(* ---- generators ---- *)

let test_gen_path () =
  let t = Tree_gen.path 10 in
  checki "n" 10 (Tree.n t);
  checki "depth" 9 (Tree.depth t);
  checki "max degree" 2 (Tree.max_degree t)

let test_gen_star () =
  let t = Tree_gen.star 10 in
  checki "n" 10 (Tree.n t);
  checki "depth" 1 (Tree.depth t);
  checki "max degree" 9 (Tree.max_degree t)

let test_gen_complete () =
  let t = Tree_gen.complete ~arity:2 ~depth:4 in
  checki "n" 31 (Tree.n t);
  checki "depth" 4 (Tree.depth t);
  checki "max degree" 3 (Tree.max_degree t)

let test_gen_spider () =
  let t = Tree_gen.spider ~legs:5 ~leg_len:4 in
  checki "n" 21 (Tree.n t);
  checki "depth" 4 (Tree.depth t);
  checki "degree of root" 5 (Tree.degree t (Tree.root t))

let test_gen_caterpillar () =
  let t = Tree_gen.caterpillar ~spine:4 ~legs_per_node:3 in
  (* 5 spine nodes, 3 leaves each. *)
  checki "n" 20 (Tree.n t);
  checki "depth" 5 (Tree.depth t)

let test_gen_comb () =
  let t = Tree_gen.comb ~spine:3 ~tooth_len:2 in
  (* spine 3 edges + 3 teeth of 2 edges: 1 + 3 + 6 nodes; the deepest
     tooth hangs from spine depth 2, reaching depth 4 *)
  checki "n" 10 (Tree.n t);
  checki "depth" 4 (Tree.depth t)

let test_gen_broom () =
  let t = Tree_gen.broom ~handle:5 ~bristles:7 in
  checki "n" 13 (Tree.n t);
  checki "depth" 6 (Tree.depth t)

let test_gen_random_tree_depth_cap () =
  let t = Tree_gen.random_tree ~rng:(rng ()) ~n:500 ~max_depth:5 () in
  checki "n" 500 (Tree.n t);
  checkb "depth capped" true (Tree.depth t <= 5)

let test_gen_bounded_degree () =
  let t = Tree_gen.random_bounded_degree ~rng:(rng ()) ~n:500 ~delta:3 in
  checki "n" 500 (Tree.n t);
  checkb "degree bounded" true (Tree.max_degree t <= 3)

let test_gen_random_deep () =
  let t = Tree_gen.random_deep ~rng:(rng ()) ~n:300 ~depth:40 in
  checki "n" 300 (Tree.n t);
  checki "depth exact" 40 (Tree.depth t)

let test_gen_binary_trap () =
  let t = Tree_gen.binary_trap ~levels:4 ~tail:3 in
  (* spine of 4 nodes below the root... count: root + 4*(tail + 1 spine) + final tail *)
  checki "n" (1 + (4 * (3 + 1)) + 3) (Tree.n t);
  checkb "depth" true (Tree.depth t >= 4)

let test_gen_hidden_path () =
  let t = Tree_gen.hidden_path ~k:8 ~blocks:3 in
  checkb "positive size" true (Tree.n t > 3 * 8);
  checkb "depth stacked" true (Tree.depth t >= 3 * 3)

let test_gen_of_family_all () =
  List.iter
    (fun fam ->
      let t = Tree_gen.of_family fam ~rng:(rng ()) ~n:300 ~depth_hint:10 in
      Tree.validate t;
      Alcotest.(check bool) (fam ^ " nonempty") true (Tree.n t >= 1))
    Tree_gen.families

let test_gen_of_family_unknown () =
  checkb "unknown family rejected" true
    (try
       ignore (Tree_gen.of_family "nope" ~rng:(rng ()) ~n:10 ~depth_hint:2);
       false
     with Invalid_argument _ -> true)

let test_builder () =
  let b = Tree_gen.Builder.create () in
  let c = Tree_gen.Builder.add_child b (Tree_gen.Builder.root b) in
  let tip = Tree_gen.Builder.add_path b c 3 in
  checki "size" 5 (Tree_gen.Builder.size b);
  let t = Tree_gen.Builder.build b in
  checki "tip depth" 4 (Tree.depth_of t tip)

let test_serialization_roundtrip () =
  let t = small () in
  checkb "roundtrip" true (Tree.equal t (Tree.of_string (Tree.to_string t)))

let test_serialization_errors () =
  List.iter
    (fun s ->
      checkb ("rejects " ^ s) true
        (try
           ignore (Tree.of_string s);
           false
         with Invalid_argument _ -> true))
    [ ""; "3:"; "2:-1"; "2:-1 x"; "1:0"; "abc:-1" ]

let prop_serialization_roundtrip =
  QCheck.Test.make ~name:"to_string/of_string roundtrip" ~count:100
    QCheck.(int_range 1 300)
    (fun n ->
      let r = Rng.create (n * 13) in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let t = Tree.of_parents parents in
      Tree.equal t (Tree.of_string (Tree.to_string t)))

(* ---- stats ---- *)

let test_stats_compute () =
  let s = Tree_stats.compute (Tree_gen.star 10) in
  checki "leaves" 9 s.leaves;
  checki "depth" 1 s.depth;
  Alcotest.(check (float 1e-9)) "branching" 9.0 s.avg_branching

let test_offline_lower_bound () =
  checki "edge-bound regime" 20 (Tree_stats.offline_lower_bound ~n:11 ~k:1 ~depth:2);
  checki "depth regime" 18 (Tree_stats.offline_lower_bound ~n:10 ~k:9 ~depth:9)

let prop_generators_validate =
  QCheck.Test.make ~name:"all families validate at random sizes" ~count:100
    QCheck.(pair (int_range 2 400) (int_range 1 20))
    (fun (n, d) ->
      List.for_all
        (fun fam ->
          let t = Tree_gen.of_family fam ~rng:(Rng.create (n + d)) ~n ~depth_hint:d in
          Tree.validate t;
          true)
        Tree_gen.families)

(* Size guards: absurd requests must fail fast with Invalid_argument
   from the saturating size estimate — not overflow int arithmetic into
   a bogus small allocation, and not attempt a max_int allocation. *)
let test_generators_reject_absurd_sizes () =
  List.iter
    (fun fam ->
      checkb (fam ^ " rejects n=max_int") true
        (try
           ignore
             (Tree_gen.of_family fam ~rng:(Rng.create 1) ~n:max_int
                ~depth_hint:10);
           false
         with Invalid_argument _ -> true))
    Tree_gen.families;
  (* Multiplicative estimates must saturate rather than wrap: a spider
     whose legs * leg_len product overflows would otherwise slip past a
     plain comparison. *)
  checkb "huge but sub-max_int n rejected" true
    (try
       ignore
         (Tree_gen.of_family "star" ~rng:(Rng.create 1)
            ~n:(Sys.max_array_length + 1) ~depth_hint:1);
       false
     with Invalid_argument _ -> true)

let prop_euler_tour_each_edge_twice =
  QCheck.Test.make ~name:"euler tour crosses every edge exactly twice" ~count:100
    QCheck.(int_range 2 200)
    (fun n ->
      let r = Rng.create n in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      let t = Tree.of_parents parents in
      let counts = Hashtbl.create 16 in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            let key = (min a b, max a b) in
            Hashtbl.replace counts key (1 + try Hashtbl.find counts key with Not_found -> 0);
            walk rest
        | _ -> ()
      in
      walk (Tree.euler_tour t);
      Hashtbl.length counts = n - 1
      && Hashtbl.fold (fun _ c acc -> acc && c = 2) counts true)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "trees",
    [
      tc "of_parents basic" test_of_parents_basic;
      tc "of_parents rejects cycle" test_of_parents_rejects_cycle;
      tc "of_parents rejects bad root" test_of_parents_rejects_bad_root;
      tc "of_parents rejects out of range" test_of_parents_rejects_out_of_range;
      tc "depth_of" test_depth_of;
      tc "parent/children" test_parent_children;
      tc "ports roundtrip" test_ports_roundtrip;
      tc "is_ancestor" test_is_ancestor;
      tc "path_to_root" test_path_to_root;
      tc "subtree" test_subtree;
      tc "euler tour" test_euler_tour;
      tc "equal" test_equal;
      tc "to_dot" test_to_dot;
      qc prop_of_parents_random;
      tc "gen path" test_gen_path;
      tc "gen star" test_gen_star;
      tc "gen complete" test_gen_complete;
      tc "gen spider" test_gen_spider;
      tc "gen caterpillar" test_gen_caterpillar;
      tc "gen comb" test_gen_comb;
      tc "gen broom" test_gen_broom;
      tc "gen random depth cap" test_gen_random_tree_depth_cap;
      tc "gen bounded degree" test_gen_bounded_degree;
      tc "gen random deep" test_gen_random_deep;
      tc "gen binary trap" test_gen_binary_trap;
      tc "gen hidden path" test_gen_hidden_path;
      tc "gen of_family all" test_gen_of_family_all;
      tc "gen of_family unknown" test_gen_of_family_unknown;
      tc "gen rejects absurd sizes" test_generators_reject_absurd_sizes;
      tc "builder" test_builder;
      tc "serialization roundtrip" test_serialization_roundtrip;
      tc "serialization errors" test_serialization_errors;
      qc prop_serialization_roundtrip;
      tc "stats compute" test_stats_compute;
      tc "offline lower bound" test_offline_lower_bound;
      qc prop_generators_validate;
      qc prop_euler_tour_each_edge_twice;
    ] )
