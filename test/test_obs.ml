(* Tests for the observability subsystem: the JSON emitter's float
   round-trip, the bounded ring, histogram bucketing, cross-registry
   merging, and probes wired through the runner and the engine pool. *)

module Json = Bfdn_obs.Json
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe
module Sink = Bfdn_obs.Sink
module Ring = Bfdn_obs.Sink.Ring
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Tree = Bfdn_trees.Tree
module Batch = Bfdn_engine.Batch

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)
let checkf = Alcotest.(check (float 0.0))

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* ---- json ---- *)

let test_json_float_roundtrip () =
  (* The %.6g emitter this replaced lost 0.1 to 0.100000; every finite
     double must now parse back bit-for-bit. *)
  List.iter
    (fun f ->
      let s = Json.float_to_string f in
      checkb (Printf.sprintf "%h round-trips via %s" f s) true
        (float_of_string s = f))
    [
      0.1; 1.0 /. 3.0; 4.0 *. atan 1.0; 1e-308; 4e-324; max_float;
      min_float; 1e22; 123456.789012345; -0.0; 0.0; 2.5; 667010.0;
    ]

let test_json_nonfinite_null () =
  checks "nan" "null" (Json.to_string (Json.Float nan));
  checks "inf" "null" (Json.to_string (Json.Float infinity));
  checks "neg inf" "null" (Json.to_string (Json.Float neg_infinity))

let test_json_shapes () =
  checks "obj"
    {|{"a":1,"b":[true,null,"x\"y"]}|}
    (Json.to_string
       (Json.Obj
          [
            ("a", Json.Int 1);
            ("b", Json.List [ Json.Bool true; Json.Null; Json.String "x\"y" ]);
          ]));
  checks "escapes" "\\\"\\\\\\n\\t" (Json.escape "\"\\\n\t")

let test_json_parse () =
  let ok s = match Json.of_string s with Ok j -> j | Error e -> failwith e in
  checkb "scalars" true
    (ok "true" = Json.Bool true
    && ok "null" = Json.Null
    && ok "-42" = Json.Int (-42)
    && ok "2.5e2" = Json.Float 250.0);
  (* ints stay ints, anything with a fraction or exponent is a float *)
  checkb "int vs float" true
    (ok "7" = Json.Int 7 && ok "7.0" = Json.Float 7.0 && ok "7e0" = Json.Float 7.0);
  checkb "nested" true
    (ok {| { "a" : [1, {"b": false}], "c": "x" } |}
    = Json.Obj
        [
          ("a", Json.List [ Json.Int 1; Json.Obj [ ("b", Json.Bool false) ] ]);
          ("c", Json.String "x");
        ]);
  checks "string escapes" "\"\\\n\t/"
    (match ok {|"\"\\\n\t\/"|} with Json.String s -> s | _ -> "?");
  checks "unicode escape" "\xcf\x80\xe2\x89\xa4A"
    (match ok {|"\u03c0\u2264A"|} with Json.String s -> s | _ -> "?");
  List.iter
    (fun bad ->
      checkb (Printf.sprintf "%S rejected" bad) true
        (Result.is_error (Json.of_string bad)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{'a':1}" ]

let test_json_parse_inverts_emit () =
  (* Every value the emitter can produce (minus non-finite floats, which
     emit as null) parses back constructor-for-constructor. *)
  let samples =
    [
      Json.Null; Json.Bool false; Json.Int max_int; Json.Int min_int;
      Json.Float 0.1; Json.Float (-1e-308); Json.Float 667010.0;
      Json.String ""; Json.String "a\"b\\c\nd\te\x01f";
      Json.String "π ≤ 𝄞"; (* 2-, 3- and 4-byte UTF-8 *)
      Json.List [];
      Json.Obj
        [
          ("k", Json.List [ Json.Int 1; Json.Null ]);
          ("nested", Json.Obj [ ("x", Json.Float 2.5) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      let s = Json.to_string j in
      checkb (Printf.sprintf "%s round-trips" s) true (Json.of_string s = Ok j))
    samples;
  checkb "member" true
    (Json.member "b" (Json.Obj [ ("a", Json.Int 1); ("b", Json.Int 2) ])
     = Some (Json.Int 2)
    && Json.member "z" (Json.Obj [ ("a", Json.Int 1) ]) = None
    && Json.member "a" (Json.List []) = None)

(* ---- ring ---- *)

let test_ring_wraps () =
  let r = Ring.create 3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5 ];
  checki "capacity" 3 (Ring.capacity r);
  checki "length" 3 (Ring.length r);
  checki "pushed" 5 (Ring.pushed r);
  checki "dropped" 2 (Ring.dropped r);
  checkb "keeps newest, oldest-first" true (Ring.to_list r = [ 3; 4; 5 ]);
  Ring.clear r;
  checki "cleared" 0 (Ring.length r);
  checkb "empty list" true (Ring.to_list r = [])

let test_ring_under_capacity () =
  let r = Ring.create 8 in
  Ring.push r 42;
  checki "length" 1 (Ring.length r);
  checki "dropped" 0 (Ring.dropped r);
  checkb "list" true (Ring.to_list r = [ 42 ])

(* ---- metrics ---- *)

let test_counter_gauge () =
  let m = Metrics.create () in
  let c = Metrics.counter m "c" in
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter" 5 (Metrics.value c);
  let g = Metrics.gauge m "g" in
  Metrics.set g 2.5;
  checkf "gauge" 2.5 (Metrics.gauge_value g);
  checkb "same handle" true (Metrics.counter m "c" == c);
  checkb "kind clash" true
    (raises_invalid (fun () -> ignore (Metrics.gauge m "c")))

let test_histogram_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] m "h" in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 4.0; 5.0 ];
  checki "buckets incl overflow" 4 (Metrics.num_buckets h);
  (* Bounds are inclusive upper bounds: 1.0 lands in the first bucket,
     4.0 in the last finite one, 5.0 overflows. *)
  checki "le 1" 2 (Metrics.bucket_count h 0);
  checki "le 2" 1 (Metrics.bucket_count h 1);
  checki "le 4" 1 (Metrics.bucket_count h 2);
  checki "overflow" 1 (Metrics.bucket_count h 3);
  checkb "overflow le" true (Metrics.bucket_le h 3 = infinity);
  checki "count" 5 (Metrics.hist_count h);
  checkf "sum" 12.0 (Metrics.hist_sum h);
  checkf "min" 0.5 (Metrics.hist_min h);
  checkf "max" 5.0 (Metrics.hist_max h)

let test_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  let ca = Metrics.counter a "n" and cb = Metrics.counter b "n" in
  Metrics.add ca 3;
  Metrics.add cb 4;
  let ha = Metrics.histogram ~bounds:[| 1.0; 2.0 |] a "h" in
  let hb = Metrics.histogram ~bounds:[| 1.0; 2.0 |] b "h" in
  Metrics.observe ha 0.5;
  Metrics.observe hb 1.5;
  Metrics.observe hb 9.0;
  let only_b = Metrics.counter b "only_b" in
  Metrics.incr only_b;
  Metrics.merge_into ~into:a b;
  checki "counters add" 7 (Metrics.value ca);
  let h = Option.get (Metrics.find_histogram a "h") in
  checki "hist counts add" 3 (Metrics.hist_count h);
  checki "bucket 0" 1 (Metrics.bucket_count h 0);
  checki "bucket 1" 1 (Metrics.bucket_count h 1);
  checki "overflow" 1 (Metrics.bucket_count h 2);
  checkf "min over both" 0.5 (Metrics.hist_min h);
  checkf "max over both" 9.0 (Metrics.hist_max h);
  checki "missing metrics registered" 1
    (Metrics.value (Option.get (Metrics.find_counter a "only_b")))

let test_merge_bounds_mismatch () =
  let a = Metrics.create () and b = Metrics.create () in
  ignore (Metrics.histogram ~bounds:[| 1.0; 2.0 |] a "h");
  ignore (Metrics.histogram ~bounds:[| 1.0; 3.0 |] b "h");
  checkb "bounds mismatch raises" true
    (raises_invalid (fun () -> Metrics.merge_into ~into:a b))

(* ---- probes through the runner ---- *)

let small () = Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let test_probe_counters_match_runner () =
  let m = Metrics.create () in
  let probe = Probe.of_metrics m in
  let env = Env.create ~probe (small ()) ~k:2 in
  let algo = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make ~probe env) in
  let r = Runner.run ~probe algo env in
  let cval name = Metrics.value (Option.get (Metrics.find_counter m name)) in
  checkb "explored" true r.Runner.explored;
  checki "rounds counter" r.Runner.rounds (cval "rounds");
  checki "moves counter" r.Runner.moves (cval "moves");
  checki "edge_events counter" r.Runner.edge_events (cval "edge_events");
  (* n - 1 nodes are revealed after the root. *)
  checki "reveals counter" 5 (cval "reveals");
  checkb "phases timed" true
    (cval "select_ns" >= 0 && cval "apply_ns" >= 0
    && cval "finished_check_ns" > 0);
  let idle = Option.get (Metrics.find_histogram m "idle_robots") in
  checki "one idle sample per round" r.Runner.rounds
    (Metrics.hist_count idle);
  (* The reanchor summary flushes the algorithm's own per-depth counts
     once, when finished first holds. *)
  let rd = Option.get (Metrics.find_histogram m "reanchor_depth") in
  checki "summary fills reanchor_depth" (cval "reanchors")
    (Metrics.hist_count rd)

let test_event_hooks_gated () =
  (* An aggregate probe (events = false) must never fire the per-event
     hooks; Probe.make ~events:true must. *)
  let selects = ref 0 and reanchors = ref 0 in
  let run ~events =
    selects := 0;
    reanchors := 0;
    let probe =
      Probe.make ~events
        ~on_select:(fun ~idle:_ -> incr selects)
        ~on_reanchor:(fun ~robot:_ ~depth:_ ~route_len:_ -> incr reanchors)
        ()
    in
    let env = Env.create ~probe (small ()) ~k:2 in
    Runner.run ~probe (Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make ~probe env)) env
  in
  let r = run ~events:false in
  checki "no select events when gated" 0 !selects;
  checki "no reanchor events when gated" 0 !reanchors;
  let r' = run ~events:true in
  checki "one select event per round" r'.Runner.rounds !selects;
  checkb "reanchor events fire" true (!reanchors > 0);
  checki "events do not perturb" r.Runner.rounds r'.Runner.rounds

let test_reanchor_summary_once () =
  let totals = ref [] in
  let probe =
    Probe.make
      ~on_reanchor_summary:(fun ~total ~by_depth ->
        totals := (total, Array.fold_left ( + ) 0 by_depth) :: !totals)
      ()
  in
  let env = Env.create ~probe (small ()) ~k:2 in
  let t = Bfdn.Bfdn_algo.make ~probe env in
  let a = Bfdn.Bfdn_algo.algo t in
  ignore (Runner.run ~probe a env);
  (* finished keeps being true afterwards; calling it again must not
     re-send. *)
  checkb "still finished" true (a.Runner.finished env);
  match !totals with
  | [ (total, by_depth_sum) ] ->
      checki "summary total matches algo counter" (Bfdn.Bfdn_algo.reanchors_total t) total;
      checki "by_depth sums to total" total by_depth_sum
  | l -> Alcotest.failf "summary fired %d times" (List.length l)

let test_probe_does_not_perturb () =
  let run probed =
    let probe =
      if probed then Probe.of_metrics (Metrics.create ()) else Probe.noop
    in
    let env = Env.create ~probe (small ()) ~k:3 in
    Runner.run ~probe (Bfdn_baselines.Cte.make ~probe env) env
  in
  let a = run false and b = run true in
  checki "same rounds" a.Runner.rounds b.Runner.rounds;
  checki "same moves" a.Runner.moves b.Runner.moves;
  checki "same events" a.Runner.edge_events b.Runner.edge_events

(* ---- probes through the engine pool ---- *)

let pool_jobs_counted workers =
  let regs = Array.init (max 1 workers) (fun _ -> Metrics.create ()) in
  let probe = Probe.pool_probe regs in
  let xs = Array.init 20 (fun i -> i) in
  let res = Batch.map ~probe ~workers (fun x -> x * x) xs in
  let merged = Metrics.create () in
  Array.iter (fun reg -> Metrics.merge_into ~into:merged reg) regs;
  let count name =
    match Metrics.find_histogram merged name with
    | Some h -> Metrics.hist_count h
    | None -> 0
  in
  (res, count "job_s", count "queue_wait_s")

let test_pool_probe_aggregate_invariant () =
  (* The per-worker split varies with scheduling, but the merged totals
     must equal the job count whatever the worker count. *)
  let res1, jobs1, waits1 = pool_jobs_counted 1 in
  let res3, jobs3, waits3 = pool_jobs_counted 3 in
  checki "jobs observed (1 worker)" 20 jobs1;
  checki "jobs observed (3 workers)" 20 jobs3;
  checki "waits observed (1 worker)" 20 waits1;
  checki "waits observed (3 workers)" 20 waits3;
  checkb "results identical across worker counts" true (res1 = res3);
  checkb "results correct" true
    (Array.to_list res1
    = List.init 20 (fun i -> Ok (i * i)))

(* ---- sink ---- *)

let test_dashboard_renders () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "rounds") 7;
  Metrics.observe (Metrics.histogram ~bounds:[| 1.0 |] m "lat") 0.5;
  let s = Sink.dashboard ~title:"hot loop" m in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  checkb "has title" true (contains "hot loop");
  checkb "has counter" true (contains "rounds");
  checkb "has histogram" true (contains "lat")

(* ---- GC probe ---- *)

let test_gc_probe_records () =
  let reg = Metrics.create () in
  let gp = Bfdn_obs.Gc_probe.create reg in
  (* Force at least one major cycle between ticks, then tick: the
     interval must land in the pause histogram and the cycle counter. *)
  Bfdn_obs.Gc_probe.tick gp;
  Gc.full_major ();
  Bfdn_obs.Gc_probe.tick gp;
  let cycles = Bfdn_obs.Gc_probe.major_cycles gp in
  checkb "alarm saw the forced major cycle" true (cycles >= 1);
  (match Metrics.find_histogram reg "gc_pause_ns" with
  | None -> Alcotest.fail "gc_pause_ns not registered"
  | Some h ->
      checkb "pause recorded" true (Metrics.hist_count h >= 1);
      checkb "pause positive" true (Metrics.hist_sum h > 0.));
  (match Metrics.find_counter reg "gc_major_cycles" with
  | None -> Alcotest.fail "gc_major_cycles not registered"
  | Some c -> checkb "counter folded" true (Metrics.value c >= 1));
  Bfdn_obs.Gc_probe.snapshot gp;
  checkb "snapshot exports quick_stat gauges" true
    (Metrics.gauge_value (Metrics.gauge reg "gc_major_collections") >= 1.);
  Bfdn_obs.Gc_probe.dispose gp;
  Bfdn_obs.Gc_probe.dispose gp (* idempotent *)

let test_gc_probe_quiet_tick () =
  let reg = Metrics.create () in
  let gp = Bfdn_obs.Gc_probe.create reg in
  (* Drain any cycle pending from test setup, then two adjacent ticks:
     an interval without a major-cycle end must not record a pause. *)
  Bfdn_obs.Gc_probe.tick gp;
  Bfdn_obs.Gc_probe.tick gp;
  let before =
    match Metrics.find_histogram reg "gc_pause_ns" with
    | Some h -> Metrics.hist_count h
    | None -> 0
  in
  Bfdn_obs.Gc_probe.tick gp;
  let after =
    match Metrics.find_histogram reg "gc_pause_ns" with
    | Some h -> Metrics.hist_count h
    | None -> 0
  in
  checkb "no pause without a cycle" true (after <= before + 1);
  Bfdn_obs.Gc_probe.dispose gp

(* ---- spans ---- *)

module Span = Bfdn_obs.Span
module Log = Bfdn_obs.Log
module Prometheus = Bfdn_obs.Prometheus
module Tail = Bfdn_obs.Tail

let test_span_tree () =
  let emitted = ref [] in
  let sp =
    Span.create ~sink:(fun j -> emitted := j :: !emitted) ~trace_id:"t1" ()
  in
  checkb "enabled" true (Span.enabled sp);
  checks "trace id" "t1" (Span.trace_id sp);
  let root = Span.start sp "request" in
  let child = Span.start ~parent:root sp "parse" in
  Span.finish ~attrs:[ ("ok", Span.Bool true) ] sp child;
  let open_child = Span.start ~parent:root sp "queue" in
  checki "spans retained" 3 (Span.length sp);
  checki "nothing dropped" 0 (Span.dropped sp);
  (* One sink record per finished span, carrying trace/span/parent. *)
  checki "one emission" 1 (List.length !emitted);
  (match !emitted with
  | [ j ] ->
      checkb "sink record" true
        (Json.member "trace" j = Some (Json.String "t1")
        && Json.member "name" j = Some (Json.String "parse")
        && Json.member "parent" j = Some (Json.Int root));
  | _ -> Alcotest.fail "expected one sink record");
  (* The tree nests parse and queue under request; queue is open. *)
  (match Json.member "spans" (Span.tree_json sp) with
  | Some (Json.List [ r ]) -> (
      checkb "root name" true
        (Json.member "name" r = Some (Json.String "request"));
      match Json.member "children" r with
      | Some (Json.List [ c1; c2 ]) ->
          checkb "first child is parse" true
            (Json.member "name" c1 = Some (Json.String "parse"));
          checkb "open child marked" true
            (Json.member "open" c2 = Some (Json.Bool true))
      | _ -> Alcotest.fail "expected two children")
  | _ -> Alcotest.fail "expected one root span");
  Span.finish sp open_child;
  Span.finish sp root;
  checki "all emitted" 3 (List.length !emitted)

let test_span_accumulation () =
  let sp = Span.create ~trace_id:"t" () in
  let s = Span.start sp "phase" in
  Span.add_ns sp s 10;
  Span.add_ns sp s 32;
  Span.finish sp s;
  match Json.member "spans" (Span.tree_json sp) with
  | Some (Json.List [ j ]) ->
      checkb "accumulated duration, not wall" true
        (Json.member "dur_ns" j = Some (Json.Int 42))
  | _ -> Alcotest.fail "expected one span"

let test_span_disabled_noop () =
  let sp = Span.disabled in
  checkb "disabled" false (Span.enabled sp);
  let s = Span.start sp "x" in
  checkb "start returns none" true (s = Span.none);
  Span.add_ns sp s 5;
  Span.finish sp s;
  checki "nothing recorded" 0 (Span.length sp);
  (* phase_probe on a disabled recorder returns the probe untouched. *)
  let p = Probe.of_metrics (Metrics.create ()) in
  let p', close = Span.phase_probe sp ~parent:Span.none p in
  checkb "probe physically unchanged" true (p' == p);
  close ()

let test_span_capacity () =
  let sp = Span.create ~capacity:2 ~trace_id:"t" () in
  let a = Span.start sp "a" in
  let b = Span.start sp "b" in
  let c = Span.start sp "c" in
  checkb "over-capacity start returns none" true (c = Span.none);
  checki "retained" 2 (Span.length sp);
  checki "dropped counted" 1 (Span.dropped sp);
  Span.finish sp a;
  Span.finish sp b;
  Span.finish sp c;
  match Json.member "dropped" (Span.tree_json sp) with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "tree_json must report dropped"

let test_span_phase_probe_sums () =
  (* The three accumulated phase spans must sum exactly to the phase
     counters the metrics probe records from the same clock reads. *)
  let reg = Metrics.create () in
  let sp = Span.create ~trace_id:"t" () in
  let parent = Span.start sp "execute" in
  let probe, close = Span.phase_probe sp ~parent (Probe.of_metrics reg) in
  let env = Env.create ~probe (small ()) ~k:2 in
  let r =
    Runner.run ~probe (Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make ~probe env)) env
  in
  close ();
  Span.finish sp parent;
  checkb "explored" true r.Runner.explored;
  let cval name = Metrics.value (Option.get (Metrics.find_counter reg name)) in
  let expect =
    cval "select_ns" + cval "apply_ns" + cval "finished_check_ns"
  in
  let spans =
    match Json.member "spans" (Span.tree_json sp) with
    | Some (Json.List [ root ]) -> (
        match Json.member "children" root with
        | Some (Json.List l) -> l
        | _ -> [])
    | _ -> []
  in
  checki "three phase spans" 3 (List.length spans);
  let total =
    List.fold_left
      (fun acc j ->
        match Json.member "dur_ns" j with Some (Json.Int d) -> acc + d | _ -> acc)
      0 spans
  in
  checki "phase spans sum to counter total" expect total

(* ---- log ---- *)

let test_log_levels () =
  let lines = ref [] in
  let log = Log.create ~level:Log.Warn (fun j -> lines := j :: !lines) in
  Log.debug log "nope";
  Log.info log "nope";
  Log.warn log ~trace:"t9" ~attrs:[ ("k", Span.Int 7) ] "kept";
  Log.error log "kept too";
  checki "level gating" 2 (List.length !lines);
  (match List.rev !lines with
  | [ w; _ ] ->
      checkb "warn line shape" true
        (Json.member "level" w = Some (Json.String "warn")
        && Json.member "msg" w = Some (Json.String "kept")
        && Json.member "trace" w = Some (Json.String "t9")
        && Json.member "k" w = Some (Json.Int 7)
        && Json.member "ts" w <> None)
  | _ -> Alcotest.fail "expected two lines");
  Log.set_level log Log.Debug;
  Log.debug log "now kept";
  checki "set_level" 3 (List.length !lines);
  checkb "enabled reflects level" true
    (Log.enabled log Log.Debug && not (Log.enabled Log.ignore_log Log.Error));
  checkb "level names round-trip" true
    (List.for_all
       (fun l -> Log.level_of_name (Log.level_name l) = Some l)
       [ Log.Debug; Log.Info; Log.Warn; Log.Error ]
    && Log.level_of_name "WARNING" = Some Log.Warn
    && Log.level_of_name "bogus" = None)

(* ---- quantiles ---- *)

let test_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0; 4.0 |] m "h" in
  checkf "empty histogram" 0.0 (Metrics.quantile h 0.5);
  (* 100 samples uniform over (0, 4]: quartile boundaries land on the
     bucket bounds, interpolation inside. *)
  for i = 1 to 100 do
    Metrics.observe h (float_of_int i /. 25.0)
  done;
  let q50 = Metrics.quantile h 0.5 and q90 = Metrics.quantile h 0.9 in
  let q99 = Metrics.quantile h 0.99 in
  checkb "p50 in containing bucket" true (q50 >= 1.0 && q50 <= 2.0);
  checkb "p90 in containing bucket" true (q90 >= 2.0 && q90 <= 4.0);
  checkb "monotonic" true (q50 <= q90 && q90 <= q99);
  checkb "p99 clamped by observed max" true (q99 <= 4.0);
  (* Single-sample histogram: every quantile is that sample. *)
  let h1 = Metrics.histogram ~bounds:[| 10.0 |] m "h1" in
  Metrics.observe h1 3.0;
  checkf "p50 of singleton" 3.0 (Metrics.quantile h1 0.5);
  checkf "p99 of singleton" 3.0 (Metrics.quantile h1 0.99);
  (* to_json carries the estimates. *)
  match Json.member "h" (Metrics.to_json m) with
  | Some hj ->
      checkb "json members" true
        (Json.member "p50" hj <> None && Json.member "p90" hj <> None
        && Json.member "p99" hj <> None)
  | None -> Alcotest.fail "histogram missing from to_json"

(* ---- prometheus ---- *)

let test_prometheus_render_valid () =
  let m = Metrics.create () in
  Metrics.add (Metrics.counter m "rounds") 7;
  Metrics.set (Metrics.gauge m "heap_words") 1234.5;
  let h = Metrics.histogram ~bounds:[| 1.0; 2.0 |] m "lat" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 9.0 ];
  let body = Prometheus.render m in
  (match Prometheus.validate body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "render does not validate: %s" e);
  let contains sub =
    let n = String.length body and k = String.length sub in
    let rec go i = i + k <= n && (String.sub body i k = sub || go (i + 1)) in
    go 0
  in
  checkb "namespaced counter" true (contains "bfdn_rounds 7");
  checkb "type lines" true (contains "# TYPE bfdn_lat histogram");
  checkb "inf bucket" true (contains "bfdn_lat_bucket{le=\"+Inf\"} 3");
  checkb "cumulative bucket" true (contains "bfdn_lat_bucket{le=\"2.0\"} 2");
  checkb "count" true (contains "bfdn_lat_count 3");
  checkb "quantile gauges" true (contains "bfdn_lat_p99")

let test_prometheus_validator_rejects () =
  let bad =
    [
      ("bad name", "9bad_name 1\n");
      ("bad type kind", "# TYPE x weird\nx 1\n");
      ("duplicate type", "# TYPE x counter\n# TYPE x counter\nx 1\n");
      ( "interleaved families",
        "# TYPE a counter\na 1\n# TYPE b counter\nb 1\na 2\n" );
      ( "non-cumulative histogram",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
         h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n" );
      ( "missing inf bucket",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n" );
      ( "count disagrees",
        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n" );
      ("unquoted label", "x{l=v} 1\n");
      ("not a number", "x hello\n");
    ]
  in
  List.iter
    (fun (what, doc) ->
      checkb (what ^ " rejected") true
        (Result.is_error (Prometheus.validate doc)))
    bad;
  (* And a sane hand-written document passes, including escapes. *)
  match
    Prometheus.validate
      "# HELP x a comment\n# TYPE x counter\nx{l=\"a\\\"b\\\\c\\nd\"} 1 \
       1234567\n"
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "valid document rejected: %s" e

(* ---- tail rendering ---- *)

let test_tail_renders () =
  let span =
    Json.Obj
      [
        ("trace", Json.String "t1"); ("span", Json.Int 0); ("parent", Json.Null);
        ("name", Json.String "request"); ("start_ns", Json.Int 0);
        ("dur_ns", Json.Int 1000);
      ]
  in
  let child =
    Json.Obj
      [
        ("trace", Json.String "t1"); ("span", Json.Int 1);
        ("parent", Json.Int 0); ("name", Json.String "parse");
        ("start_ns", Json.Int 100); ("dur_ns", Json.Int 200);
      ]
  in
  let log_line =
    Json.Obj
      [
        ("ts", Json.Float 1.5); ("level", Json.String "warn");
        ("msg", Json.String "hello"); ("trace", Json.String "t1");
      ]
  in
  let frame =
    Json.Obj [ ("round", Json.Int 3); ("explored", Json.Int 17) ]
  in
  checkb "kinds" true
    (Tail.kind_of span = Tail.Span
    && Tail.kind_of log_line = Tail.Log
    && Tail.kind_of frame = Tail.Frame
    && Tail.kind_of (Json.Int 3) = Tail.Other);
  let has sub s =
    let n = String.length s and k = String.length sub in
    let rec go i = i + k <= n && (String.sub s i k = sub || go (i + 1)) in
    go 0
  in
  checkb "span line" true (has "request" (Tail.render_line span));
  checkb "log line" true
    (has "WARN" (Tail.render_line log_line)
    && has "hello" (Tail.render_line log_line));
  checkb "frame line" true (has "round" (Tail.render_line frame));
  let tl = Tail.span_timeline [ span; child ] in
  checkb "timeline has both spans" true (has "request" tl && has "parse" tl);
  checks "empty timeline" "" (Tail.span_timeline [])

(* ---- GC probe alarm lifecycle + exposition ---- *)

let test_gc_probe_alarm_lifecycle () =
  let reg = Metrics.create () in
  let gp = Bfdn_obs.Gc_probe.create reg in
  checkb "alarm active after create" true (Bfdn_obs.Gc_probe.alarm_active gp);
  (* Pause histogram is monotone under forced cycles: counts only grow. *)
  let pauses () =
    match Metrics.find_histogram reg "gc_pause_ns" with
    | Some h -> Metrics.hist_count h
    | None -> 0
  in
  Bfdn_obs.Gc_probe.tick gp;
  Gc.full_major ();
  Bfdn_obs.Gc_probe.tick gp;
  let c1 = pauses () in
  Gc.full_major ();
  Bfdn_obs.Gc_probe.tick gp;
  let c2 = pauses () in
  checkb "histogram monotone" true (c1 >= 1 && c2 >= c1);
  (* The GC registry renders to valid exposition with the gauges. *)
  Bfdn_obs.Gc_probe.snapshot gp;
  let body = Prometheus.render reg in
  (match Prometheus.validate body with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gc registry does not validate: %s" e);
  let has sub =
    let n = String.length body and k = String.length sub in
    let rec go i = i + k <= n && (String.sub body i k = sub || go (i + 1)) in
    go 0
  in
  checkb "pause histogram exposed" true (has "bfdn_gc_pause_ns_bucket");
  checkb "snapshot gauges exposed" true (has "bfdn_gc_heap_words");
  Bfdn_obs.Gc_probe.dispose gp;
  checkb "alarm removed by dispose" false (Bfdn_obs.Gc_probe.alarm_active gp);
  Bfdn_obs.Gc_probe.dispose gp;
  checkb "dispose idempotent" false (Bfdn_obs.Gc_probe.alarm_active gp)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  ( "obs",
    [
      tc "json float round-trip" test_json_float_roundtrip;
      tc "json non-finite null" test_json_nonfinite_null;
      tc "json shapes" test_json_shapes;
      tc "json parse" test_json_parse;
      tc "json parse inverts emit" test_json_parse_inverts_emit;
      tc "ring wraps" test_ring_wraps;
      tc "ring under capacity" test_ring_under_capacity;
      tc "counter and gauge" test_counter_gauge;
      tc "histogram buckets" test_histogram_buckets;
      tc "merge registries" test_merge;
      tc "merge bounds mismatch" test_merge_bounds_mismatch;
      tc "probe counters match runner" test_probe_counters_match_runner;
      tc "event hooks gated" test_event_hooks_gated;
      tc "reanchor summary once" test_reanchor_summary_once;
      tc "probe does not perturb" test_probe_does_not_perturb;
      tc "pool probe aggregate invariant" test_pool_probe_aggregate_invariant;
      tc "dashboard renders" test_dashboard_renders;
      tc "gc probe records pauses" test_gc_probe_records;
      tc "gc probe quiet tick" test_gc_probe_quiet_tick;
      tc "span tree" test_span_tree;
      tc "span accumulation" test_span_accumulation;
      tc "span disabled no-op" test_span_disabled_noop;
      tc "span capacity and dropped" test_span_capacity;
      tc "span phase probe sums" test_span_phase_probe_sums;
      tc "log levels and shape" test_log_levels;
      tc "histogram quantiles" test_quantiles;
      tc "prometheus render validates" test_prometheus_render_valid;
      tc "prometheus validator rejects" test_prometheus_validator_rejects;
      tc "tail renders" test_tail_renders;
      tc "gc probe alarm lifecycle" test_gc_probe_alarm_lifecycle;
    ] )
