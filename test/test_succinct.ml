(* Differential suite for the succinct flat-array tree storage: the CSR
   representation behind {!Tree} must agree, query by query, with the
   record-based reference model it replaced (per-node records holding a
   parent pointer, a child list and a depth — the layout of the seed
   implementation). Exercised on the seven golden-suite instances (the
   trees under all 42 golden configs of test_golden.ml) and on random
   parent arrays, plus the lazy-world side: a lazily materialized family
   must expand to the same summary statistics as its eager generator. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Tree_stats = Bfdn_trees.Tree_stats
module Lazy_world = Bfdn_sim.Lazy_world
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- the record-based reference model ---- *)

type ref_node = {
  r_parent : int; (* -1 at the root *)
  mutable r_children : int list; (* increasing id order *)
  r_depth : int;
}

type ref_tree = { r_root : int; r_nodes : ref_node array }

let ref_of_parents ?(root = 0) parents =
  let n = Array.length parents in
  let depth = Array.make n (-1) in
  let rec depth_of v =
    if depth.(v) >= 0 then depth.(v)
    else begin
      let d = if v = root then 0 else 1 + depth_of parents.(v) in
      depth.(v) <- d;
      d
    end
  in
  let nodes =
    Array.init n (fun v ->
        { r_parent = parents.(v); r_children = []; r_depth = depth_of v })
  in
  for v = n - 1 downto 0 do
    if v <> root then
      nodes.(parents.(v)).r_children <- v :: nodes.(parents.(v)).r_children
  done;
  { r_root = root; r_nodes = nodes }

let ref_degree rt v =
  List.length rt.r_nodes.(v).r_children + if v = rt.r_root then 0 else 1

(* Port p of v under the paper's convention, resolved on the reference
   model: parent at port 0 (non-root), children in order after. *)
let ref_neighbor rt v p =
  let nd = rt.r_nodes.(v) in
  if v <> rt.r_root && p = 0 then nd.r_parent
  else List.nth nd.r_children (if v = rt.r_root then p else p - 1)

let ref_stats rt =
  let n = Array.length rt.r_nodes in
  let depth = ref 0 and maxdeg = ref 0 and leaves = ref 0 in
  let internal = ref 0 and child_sum = ref 0 in
  Array.iteri
    (fun v nd ->
      if nd.r_depth > !depth then depth := nd.r_depth;
      let d = ref_degree rt v in
      if d > !maxdeg then maxdeg := d;
      match List.length nd.r_children with
      | 0 -> incr leaves
      | c ->
          incr internal;
          child_sum := !child_sum + c)
    rt.r_nodes;
  ( n, n - 1, !depth, !maxdeg, !leaves,
    if !internal = 0 then 0.
    else float_of_int !child_sum /. float_of_int !internal )

(* ---- query-by-query agreement ---- *)

let agree_exn label tree rt =
  let n = Tree.n tree in
  let ck what v got want =
    if got <> want then
      Alcotest.failf "%s: node %d %s: flat %d <> reference %d" label v what
        got want
  in
  checki (label ^ ": n") (Array.length rt.r_nodes) n;
  checki (label ^ ": root") rt.r_root (Tree.root tree);
  for v = 0 to n - 1 do
    let nd = rt.r_nodes.(v) in
    ck "depth_of" v (Tree.depth_of tree v) nd.r_depth;
    (match Tree.parent tree v with
    | None ->
        if v <> rt.r_root then Alcotest.failf "%s: node %d lost parent" label v
    | Some p -> ck "parent" v p nd.r_parent);
    let kids = Tree.children tree v in
    if Array.to_list kids <> nd.r_children then
      Alcotest.failf "%s: node %d children differ" label v;
    ck "num_children" v (Tree.num_children tree v) (List.length nd.r_children);
    Array.iteri (fun i c -> ck "child i" v (Tree.child tree v i) c) kids;
    let got_iter = ref [] in
    Tree.iter_children tree v (fun c -> got_iter := c :: !got_iter);
    if List.rev !got_iter <> nd.r_children then
      Alcotest.failf "%s: node %d iter_children differ" label v;
    ck "degree" v (Tree.degree tree v) (ref_degree rt v);
    ck "num_ports" v (Tree.num_ports tree v) (ref_degree rt v);
    for p = 0 to ref_degree rt v - 1 do
      ck "neighbor_via_port" v
        (Tree.neighbor_via_port tree v p)
        (ref_neighbor rt v p)
    done;
    if v <> rt.r_root then ck "port_to_parent" v (Tree.port_to_parent tree v) 0;
    List.iteri
      (fun i c ->
        ck "port_of_child" v
          (Tree.port_of_child tree v c)
          (if v = rt.r_root then i else i + 1))
      nd.r_children
  done;
  (* Summary statistics: the one-pass compute and the streaming
     accumulator must both match the reference walk. *)
  let rn, redges, rdepth, rmaxdeg, rleaves, ravg = ref_stats rt in
  let s = Tree_stats.compute tree in
  checki (label ^ ": stats n") rn s.Tree_stats.n;
  checki (label ^ ": stats edges") redges s.Tree_stats.edges;
  checki (label ^ ": stats depth") rdepth s.Tree_stats.depth;
  checki (label ^ ": stats max_degree") rmaxdeg s.Tree_stats.max_degree;
  checki (label ^ ": stats leaves") rleaves s.Tree_stats.leaves;
  checkb (label ^ ": stats avg_branching") true
    (Float.abs (ravg -. s.Tree_stats.avg_branching) < 1e-9);
  let acc = Tree_stats.Acc.create () in
  for v = 0 to n - 1 do
    Tree_stats.Acc.add acc ~depth:rt.r_nodes.(v).r_depth
      ~children:(List.length rt.r_nodes.(v).r_children)
  done;
  checkb (label ^ ": Acc agrees with compute") true
    (Tree_stats.Acc.stats acc = s)

let parents_of tree =
  Array.init (Tree.n tree) (fun v ->
      match Tree.parent tree v with None -> -1 | Some p -> p)

(* The seven instances under the 42-config golden suite, generated
   exactly as test_golden.ml does. *)
let golden_families =
  [ "comb"; "binary"; "random"; "trap"; "caterpillar"; "spider"; "hidden-path" ]

let test_golden_instances () =
  List.iteri
    (fun fi fam ->
      let tree =
        Tree_gen.of_family fam ~rng:(Rng.create (1000 + fi)) ~n:500
          ~depth_hint:12
      in
      agree_exn ("golden " ^ fam) tree (ref_of_parents (parents_of tree)))
    golden_families

(* Random parent arrays: every shape, not just generator output. *)
let prop_random_trees =
  QCheck2.Test.make ~name:"flat CSR tree agrees with record reference"
    ~count:60
    QCheck2.Gen.(pair (int_range 1 200) (int_bound 1_000_000))
    (fun (n, seed) ->
      let r = Rng.create seed in
      let parents = Array.init n (fun v -> if v = 0 then -1 else Rng.int r v) in
      agree_exn "random" (Tree.of_parents parents) (ref_of_parents parents);
      true)

(* ---- lazy worlds expand to the eager instances ---- *)

(* Ids differ (reveal order vs DFS order) so the comparison is on the
   summary statistics, which are relabeling-invariant; [materialize]
   additionally revalidates the tree structure via of_parents. *)
let test_lazy_matches_eager () =
  List.iter
    (fun fam ->
      let n = 700 and depth_hint = 9 in
      let lw = Lazy_world.make ~family:fam ~n ~depth_hint ~seed:42 in
      let tree = Lazy_world.materialize lw in
      let ls = Tree_stats.compute tree in
      checki (fam ^ ": capacity is the node count") (Lazy_world.capacity lw)
        (Tree.n tree);
      if not (String.equal fam "random") then begin
        (* Deterministic families: same (n, depth_hint) as the eager
           generator must give the same instance up to relabeling. *)
        let eager =
          Tree_gen.of_family fam ~rng:(Rng.create 0) ~n ~depth_hint
        in
        let es = Tree_stats.compute eager in
        checkb (fam ^ ": lazy stats = eager stats") true (ls = es)
      end
      else begin
        checki "random: n" n ls.Tree_stats.n;
        checkb "random: depth positive" true (ls.Tree_stats.depth > 0)
      end)
    Lazy_world.families

(* Exploring a lazy world to exhaustion must reveal exactly the
   materialized instance (streaming stats = frozen-tree stats). *)
let test_lazy_full_exploration_stats () =
  let lw = Lazy_world.make ~family:"caterpillar" ~n:400 ~depth_hint:8 ~seed:0 in
  let env = Bfdn_sim.Env.of_world (Lazy_world.world lw) ~k:7 in
  let algo = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env) in
  let r = Bfdn_sim.Runner.run algo env in
  checkb "explored" true r.Bfdn_sim.Runner.explored;
  checki "revealed = capacity" (Lazy_world.capacity lw)
    (Lazy_world.nodes_revealed lw);
  let streaming = Lazy_world.stats lw in
  let frozen = Tree_stats.compute (Lazy_world.materialize lw) in
  checkb "streaming stats = frozen stats" true (streaming = frozen)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "succinct",
    [
      tc "golden instances agree with reference" test_golden_instances;
      qc prop_random_trees;
      tc "lazy worlds match eager generators" test_lazy_matches_eager;
      tc "lazy full exploration stats" test_lazy_full_exploration_stats;
    ] )
