(* bfdn-explore: command-line driver for the collaborative-exploration
   library. Subcommands:

   run       explore a tree scenario (flags or a --spec JSON file)
   sweep     run a whole instance batch on the parallel engine
   list      print every registered algorithm, world and adversary
   serve     run the scenario-execution HTTP service
   submit    POST a spec to a running service
   game      play the Section 3 balls-in-urns game
   regions   print the Figure 1 region map
   grid      sweep a warehouse grid with graph-BFDN
   adversary grow a tree adaptively against the explorer
   tail      pretty-print observability JSONL (frames, spans, logs)
   promlint  validate a Prometheus text exposition document

   All algorithm and world dispatch goes through the Bfdn_scenario
   registries: the enums below are derived from them, so a variant
   registered there is reachable here with no CLI change. *)

open Cmdliner
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Trace = Bfdn_sim.Trace
module Rng = Bfdn_util.Rng
module Job = Bfdn_engine.Job
module Batch = Bfdn_engine.Batch
module Seed_batch = Bfdn_engine.Seed_batch
module Report = Bfdn_engine.Report
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe
module Sink = Bfdn_obs.Sink
module Param = Bfdn_scenario.Param
module Fault_spec = Bfdn_scenario.Fault_spec
module Algo_registry = Bfdn_scenario.Algo_registry
module World_registry = Bfdn_scenario.World_registry
module Scenario = Bfdn_scenario.Scenario
module Json = Bfdn_obs.Json
module Log = Bfdn_obs.Log
module Tail = Bfdn_obs.Tail
module Prometheus = Bfdn_obs.Prometheus
module Server = Bfdn_serve.Server
module Client = Bfdn_serve.Client

(* ---- shared arguments ---- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let k_arg =
  Arg.(value & opt int 8 & info [ "k"; "robots" ] ~docv:"K" ~doc:"Number of robots.")

let names l = String.concat ", " l

(* Parse repeatable KEY=VALUE options against a registry schema; the
   schema's typed default decides how VALUE is read. *)
let parse_bindings ~what ~schema kvs =
  List.map
    (fun kv ->
      match String.index_opt kv '=' with
      | None -> failwith (Printf.sprintf "%s: expected KEY=VALUE, got %S" what kv)
      | Some i ->
          let key = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          let spec =
            match List.find_opt (fun s -> String.equal s.Param.key key) schema with
            | Some s -> s
            | None ->
                failwith
                  (Printf.sprintf "%s: unknown parameter %S (known: %s)" what key
                     (names (List.map (fun s -> s.Param.key) schema)))
          in
          let bad ty =
            failwith
              (Printf.sprintf "%s: parameter %s expects %s, got %S" what key ty v)
          in
          let value =
            match spec.Param.default with
            | Param.Int _ -> (
                match int_of_string_opt v with
                | Some i -> Param.Int i
                | None -> bad "an int")
            | Param.Float _ -> (
                match float_of_string_opt v with
                | Some f -> Param.Float f
                | None -> bad "a float")
            | Param.Bool _ -> (
                match bool_of_string_opt v with
                | Some b -> Param.Bool b
                | None -> bad "a bool")
            | Param.String _ -> Param.String v
          in
          (key, value))
    kvs

let algo_schema name =
  match Algo_registry.find name with
  | Some e -> e.Algo_registry.params
  | None -> failwith (Printf.sprintf "unknown algorithm %S" name)

(* "fault."-prefixed --param keys address the fault-injection schema
   instead of the algorithm's; split them off and strip the prefix. *)
let fault_prefix = "fault."

let split_fault_params kvs =
  let is_fault kv =
    String.length kv > String.length fault_prefix
    && String.sub kv 0 (String.length fault_prefix) = fault_prefix
  in
  let fault_kvs, algo_kvs = List.partition is_fault kvs in
  let strip kv =
    String.sub kv (String.length fault_prefix)
      (String.length kv - String.length fault_prefix)
  in
  (List.map strip fault_kvs, algo_kvs)

(* ---- run ---- *)

let run_cmd =
  let family =
    Arg.(
      value
      & opt (enum World_registry.cli_world_choices) "random"
      & info [ "family"; "world" ] ~docv:"WORLD"
          ~doc:
            (Printf.sprintf "Tree world: %s."
               (names World_registry.tree_names)))
  in
  let algo_name =
    Arg.(
      value
      & opt (enum Algo_registry.cli_choices) "bfdn"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:(Printf.sprintf "Algorithm: %s." (names Algo_registry.tree_names)))
  in
  let n = Arg.(value & opt int 5000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Target node count.") in
  let depth =
    Arg.(value & opt int 20 & info [ "depth" ] ~docv:"D" ~doc:"Depth hint for the generator.")
  in
  let params =
    Arg.(
      value
      & opt_all string []
      & info [ "param"; "p" ] ~docv:"KEY=VALUE"
          ~doc:
            "Algorithm parameter (repeatable); see $(b,explore list) for each \
             algorithm's schema, e.g. --algo bfdn-rec --param ell=3. Keys \
             prefixed $(b,fault.) address the fault-injection schema instead, \
             e.g. --param fault.crashes=2@10 --param fault_tolerant=true.")
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rounds" ] ~docv:"R"
          ~doc:"Round cap (default: the Section 2.1 termination bound).")
  in
  let scale =
    Arg.(
      value
      & opt (enum [ ("eager", "eager"); ("lazy", "lazy") ]) "eager"
      & info [ "scale" ] ~docv:"SCALE"
          ~doc:
            "World materialization: $(b,eager) builds the instance up \
             front, $(b,lazy) generates nodes at reveal so the run holds \
             O(explored) memory — the huge tier (supported families only).")
  in
  let rss =
    Arg.(
      value
      & flag
      & info [ "rss" ]
          ~doc:
            "Print the process's peak resident set (VmHWM) after the run \
             (Linux only).")
  in
  let spec_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"FILE.json"
          ~doc:
            "Load the whole scenario (world, algorithm, parameters, k, seed) \
             from a JSON spec file; the instance/algorithm flags are ignored.")
  in
  let dump_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-spec" ] ~docv:"FILE"
          ~doc:
            "Write the scenario spec as JSON to $(docv) (- for stdout) and \
             exit without running — the file re-executes with --spec.")
  in
  let smoke =
    Arg.(
      value
      & flag
      & info [ "smoke" ]
          ~doc:
            "CI mode: one compact line of output; exit non-zero unless the \
             run fully explored its instance.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE.jsonl"
          ~doc:"Stream one JSON frame per round (round, explored, dangling, positions) to $(docv).")
  in
  let watch =
    Arg.(value & flag & info [ "watch" ] ~doc:"Print the discovered tree after every round (small trees only).")
  in
  let metrics =
    Arg.(
      value
      & flag
      & info [ "metrics" ]
          ~doc:
            "Attach the standard probes (round counters, phase timing, anchor \
             switches) and print a metrics dashboard after the run.")
  in
  let tree_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "tree-file" ] ~docv:"FILE"
          ~doc:"Load the instance from a file written by --dump-tree instead of generating one.")
  in
  let dump_tree =
    Arg.(
      value
      & opt (some string) None
      & info [ "dump-tree" ] ~docv:"FILE" ~doc:"Write the instance to a file for later replay.")
  in
  let shards =
    Arg.(
      value & opt int 1
      & info [ "shards" ] ~docv:"S"
          ~doc:
            "Shard the per-robot route-computation phase over $(docv) \
             domains. Results are bit-for-bit identical for every value — \
             a pure latency knob for big single runs.")
  in
  let action spec_file dump_spec smoke family algo_name n depth params k seed
      max_rounds scale rss trace watch metrics tree_file dump_tree shards =
    let spec =
      match spec_file with
      | Some file -> (
          match Scenario.load file with
          | Ok s -> s
          | Error msg -> failwith msg)
      | None ->
          let fault_kvs, algo_kvs = split_fault_params params in
          let algo_params =
            parse_bindings ~what:"--param" ~schema:(algo_schema algo_name)
              algo_kvs
          in
          let faults =
            parse_bindings ~what:"--param fault.*" ~schema:Fault_spec.schema
              fault_kvs
          in
          let world_params =
            (* Same binding order as Scenario.generated, so eager specs
               keep their exact wire form. *)
            [ ("depth_hint", Param.Int depth); ("n", Param.Int n) ]
            @ (* Only an explicit scale=lazy is serialized: the default
                 keeps wire forms (and fingerprints) of eager specs
                 unchanged. *)
            (if scale = "lazy" then [ ("scale", Param.String "lazy") ] else [])
          in
          Scenario.make ~algo:algo_name ~algo_params ~k ~seed ?max_rounds
            ~metrics ~faults
            (Scenario.world ~params:world_params family)
    in
    let spec = if metrics then { spec with Scenario.metrics = true } else spec in
    (match Scenario.validate spec with
    | Ok () -> ()
    | Error msg -> failwith msg);
    match dump_spec with
    | Some "-" -> print_endline (Scenario.to_string spec)
    | Some file ->
        Scenario.save ~path:file spec;
        Printf.printf "spec written to %s\n" file
    | None ->
        (match dump_tree with
        | Some file ->
            let oc = open_out file in
            output_string oc (Bfdn_trees.Tree.to_string (Scenario.materialize spec));
            output_char oc '\n';
            close_out oc;
            Printf.printf "instance written to %s\n" file
        | None -> ());
        let registry =
          if spec.Scenario.metrics then Some (Metrics.create ()) else None
        in
        let probe =
          match registry with Some m -> Probe.of_metrics m | None -> Probe.noop
        in
        let trace_oc = Option.map open_out trace in
        let on_round (exec : Bfdn_sim.Exec_env.t) =
          (match trace_oc with
          | Some oc ->
              Sink.write_jsonl oc
                (Trace.json_of_frame (exec.Bfdn_sim.Exec_env.frame ()))
          | None -> ());
          if watch then begin
            print_newline ();
            print_string (exec.Bfdn_sim.Exec_env.render ())
          end
        in
        let outcome =
          match tree_file with
          | Some file ->
              let ic = open_in file in
              let contents = really_input_string ic (in_channel_length ic) in
              close_in ic;
              Scenario.run_on_tree ~probe ~on_round spec
                (Bfdn_trees.Tree.of_string (String.trim contents))
          | None -> Scenario.run ~probe ~on_round ~shards spec
        in
        let result = outcome.Scenario.result in
        (match (trace_oc, trace) with
        | Some oc, Some path ->
            close_out oc;
            Printf.printf "trace written to %s (%d frames)\n" path result.rounds
        | _ -> ());
        if smoke then begin
          Printf.printf "ok %s: rounds=%d explored=%b\n" (Scenario.describe spec)
            result.rounds result.explored;
          if not (result.explored && not result.hit_round_limit) then exit 1
        end
        else begin
          let nn = outcome.Scenario.n
          and d = outcome.Scenario.depth
          and delta = outcome.Scenario.max_degree
          and k = spec.Scenario.k in
          Printf.printf "instance: %s — n=%d D=%d Δ=%d (seed %d)\n"
            (Scenario.instance_label spec) nn d delta spec.Scenario.seed;
          Format.printf "%s with k=%d: %a@." spec.Scenario.algo k Runner.pp_result
            result;
          (match outcome.Scenario.replay_rounds with
          | Some r -> Printf.printf "frozen-tree replay : %d rounds\n" r
          | None -> ());
          Printf.printf "offline lower bound : %.0f\n"
            (Bfdn.Bounds.offline_lb ~n:nn ~k ~d:(max 1 d));
          Printf.printf "Theorem 1 guarantee : %.0f\n"
            (Bfdn.Bounds.bfdn ~n:nn ~k ~d ~delta);
          Printf.printf "CTE comparison bound: %.0f\n" (Bfdn.Bounds.cte ~n:nn ~k ~d);
          (match registry with
          | Some m ->
              print_string
                (Sink.dashboard ~title:(spec.Scenario.algo ^ " metrics") m)
          | None -> ());
          if rss then
            (match Report.peak_rss_bytes () with
            | Some b ->
                Printf.printf "peak RSS            : %.1f MB\n"
                  (float_of_int b /. (1024. *. 1024.))
            | None -> print_endline "peak RSS            : unavailable");
          if result.hit_round_limit then exit 1
        end
  in
  let term =
    Term.(
      const action $ spec_file $ dump_spec $ smoke $ family $ algo_name $ n
      $ depth $ params $ k_arg $ seed_arg $ max_rounds $ scale $ rss $ trace
      $ watch $ metrics $ tree_file $ dump_tree $ shards)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Explore a tree scenario given by flags or a --spec JSON file.")
    term

(* ---- list ---- *)

let plain_list () =
    let schema_block params =
      let s = Param.describe_schema params in
      if s <> "" then print_string s
    in
    print_endline "Algorithms:";
    List.iter
      (fun (e : Algo_registry.entry) ->
        let c = Algo_registry.caps e in
        let caps =
          List.filter_map
            (fun (name, on) -> if on then Some name else None)
            [
              ("tree", c.Algo_registry.tree);
              ("adaptive", c.Algo_registry.adaptive);
              ("graph", c.Algo_registry.graph);
              ("async", c.Algo_registry.async);
            ]
        in
        let aliases =
          match e.aliases with
          | [] -> ""
          | l -> Printf.sprintf " (alias %s)" (names l)
        in
        Printf.printf "  %-14s [%s]%s\n      %s\n" e.name (names caps) aliases
          e.doc;
        schema_block e.params)
      Algo_registry.all;
    print_endline "\nWorlds:";
    List.iter
      (fun (e : World_registry.entry) ->
        let kind =
          match e.kind with
          | World_registry.Tree _ -> "tree"
          | World_registry.Grid _ -> "grid"
          | World_registry.Graph _ -> "graph"
        in
        Printf.printf "  %-14s [%s]\n      %s\n" e.name kind e.doc;
        schema_block e.params)
      World_registry.worlds;
    print_endline "\nAdversary policies (adaptive worlds):";
    List.iter
      (fun (p : World_registry.policy_entry) ->
        Printf.printf "  %-14s %s\n" p.p_name p.p_doc;
        schema_block p.p_params)
      World_registry.policies;
    print_endline "\nFault injection (run --param fault.KEY=VALUE):";
    schema_block Fault_spec.schema;
    print_endline "\nUrn-game adversaries (game subcommand):";
    List.iter
      (fun (name, doc) -> Printf.printf "  %-14s %s\n" name doc)
      Bfdn.Urn_game.adversaries

let list_cmd =
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the registries as machine-readable JSON — the same \
             document a running service serves at GET /registry.")
  in
  let action json =
    if json then print_endline (Json.to_string (Scenario.registry_json ()))
    else plain_list ()
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:
         "Print every registered algorithm, world and adversary policy with \
          its parameter schema.")
    Term.(const action $ json_flag)

(* ---- sweep ---- *)

let sweep_cmd =
  let module Table = Bfdn_util.Table in
  let comma_list ~docv ~doc ~default =
    Arg.(value & opt string default & info [ String.lowercase_ascii docv ] ~docv ~doc)
  in
  let families_arg =
    comma_list ~docv:"FAMILIES" ~default:"random,comb,trap"
      ~doc:
        (Printf.sprintf "Comma-separated tree worlds (of: %s)."
           (names World_registry.tree_names))
  in
  let algos_arg =
    comma_list ~docv:"ALGOS" ~default:"bfdn,cte"
      ~doc:
        (Printf.sprintf "Comma-separated algorithms (of: %s)."
           (names Algo_registry.tree_names))
  in
  let ks_arg =
    comma_list ~docv:"KS" ~default:"1,8,64" ~doc:"Comma-separated robot counts."
  in
  let jobs_arg =
    Arg.(
      value
      & opt int (Domain.recommended_domain_count ())
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains for the batch. Results are identical for any \
             value (deterministic sharded replay); only wall time changes.")
  in
  let n = Arg.(value & opt int 5000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Target node count.") in
  let depth =
    Arg.(value & opt int 20 & info [ "depth" ] ~docv:"D" ~doc:"Depth hint for the generator.")
  in
  let repeats =
    Arg.(value & opt int 3 & info [ "repeats" ] ~docv:"R" ~doc:"Seeds per (family, algo, k) cell.")
  in
  let out =
    Arg.(
      value
      & opt (some string) (Some "BENCH_engine.json")
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the machine-readable report here (pass an empty string to skip).")
  in
  let metrics_arg =
    Arg.(
      value
      & flag
      & info [ "metrics" ]
          ~doc:
            "Record per-worker queue-wait and job-latency histograms and print \
             them (plus the merged aggregate) after the sweep.")
  in
  let seed_batch_arg =
    Arg.(
      value & flag
      & info [ "seed-batch" ]
          ~doc:
            "Run each (family, algo, k) cell's repeat seeds as one lockstep \
             seed batch instead of R independent jobs. Results are \
             bit-for-bit identical to the per-job sweep; deterministic cells \
             collapse to a single execution per cell.")
  in
  let action families algos ks jobs n depth repeats seed out metrics seed_batch =
    let split_csv s = String.split_on_char ',' s |> List.map String.trim in
    let ks =
      List.map
        (fun s ->
          match int_of_string_opt s with
          | Some k when k >= 1 -> k
          | _ -> failwith ("bad robot count: " ^ s))
        (split_csv ks)
    in
    (* Bad names are warned about here but still swept: the engine contains
       each failing job as an Error result, so the sweep reports per-cell
       warnings and exits 1 instead of aborting the whole batch. *)
    let algos = split_csv algos in
    List.iter
      (fun a ->
        match Algo_registry.find a with
        | Some e when (Algo_registry.caps e).Algo_registry.tree -> ()
        | _ ->
            Printf.eprintf "warning: unknown algorithm %S (of: %s)\n" a
              (names Algo_registry.tree_names))
      algos;
    let families = split_csv families in
    List.iter
      (fun f ->
        if not (List.mem f World_registry.tree_names) then
          Printf.eprintf "warning: unknown tree world %S (of: %s)\n" f
            (names World_registry.tree_names))
      families;
    (* One base spec per (family, algo, k) cell; the flat job list expands
       each cell into its repeat seeds, keeping them consecutive (the table
       code below relies on that order). *)
    let cells =
      List.concat_map
        (fun family ->
          List.concat_map
            (fun algo ->
              List.map
                (fun k ->
                  Job.make ~algo ~k ~seed
                    (Job.Generated { family; n; depth_hint = depth }))
                ks)
            algos)
        families
    in
    let specs =
      List.concat_map
        (fun (cell : Job.t) ->
          List.init repeats (fun r -> { cell with Job.seed = seed + r }))
        cells
    in
    let total = List.length specs in
    if seed_batch then
      Printf.eprintf "sweep: %d jobs as %d seed batches of %d\n%!" total
        (List.length cells) repeats
    else
      Printf.eprintf "sweep: %d jobs on %d worker(s) (%d core(s))\n%!" total
        jobs
        (Domain.recommended_domain_count ());
    (* One registry per worker: each worker domain records its own
       latency histograms without locking; merged after the drain. *)
    let worker_regs =
      if metrics then Array.init (max 1 jobs) (fun _ -> Metrics.create ())
      else [||]
    in
    let probe =
      if metrics then Probe.pool_probe worker_regs else Probe.noop
    in
    let t0 = Batch.now () in
    let results =
      if seed_batch then begin
        (* One lockstep batch per cell, expanded back into the per-job
           result shape so the table, aggregate and report code below is
           oblivious to how the jobs were executed — the batch oracle
           guarantees the rows are byte-identical either way. *)
        let total_cells = List.length cells in
        let completed = ref 0 in
        List.concat_map
          (fun (cell : Job.t) ->
            let batched = { cell with Job.batch_seeds = repeats } in
            let rows =
              match Seed_batch.run batched with
              | report ->
                  Array.to_list
                    (Array.mapi
                       (fun l o -> (Scenario.unbatch batched l, Ok o))
                       report.Seed_batch.outcomes)
              | exception e ->
                  List.init repeats (fun l ->
                      ( Scenario.unbatch batched l,
                        Error (Printexc.to_string e) ))
            in
            incr completed;
            if !completed mod 5 = 0 || !completed = total_cells then
              Printf.eprintf "\r  %d/%d cells%!" !completed total_cells;
            rows)
          cells
      end
      else
        Batch.run ~probe ~workers:jobs
          ~progress:(fun ~completed ~total ->
            if completed mod 10 = 0 || completed = total then
              Printf.eprintf "\r  %d/%d%!" completed total)
          specs
    in
    Printf.eprintf "\n%!";
    let wall = Batch.now () -. t0 in
    let t =
      Table.create
        ~caption:"one row per (family, algo, k): rounds over the repeat seeds"
        [
          ("family", Table.Left); ("algo", Table.Left); ("k", Table.Right);
          ("runs", Table.Right); ("n", Table.Right); ("D", Table.Right);
          ("rounds p50", Table.Right); ("rounds max", Table.Right);
          ("explored", Table.Left);
        ]
    in
    (* Collapse the repeat seeds of each cell into one row; results are in
       input order, so consecutive chunks of [repeats] share a cell. *)
    let rec chunks = function
      | [] -> []
      | l ->
          let rec take i acc = function
            | x :: tl when i < repeats -> take (i + 1) (x :: acc) tl
            | rest -> (List.rev acc, rest)
          in
          let c, rest = take 0 [] l in
          c :: chunks rest
    in
    List.iter
      (fun cell ->
        match cell with
        | [] -> ()
        | ((job : Job.t), _) :: _ ->
            let outcomes =
              List.filter_map (fun (_, r) -> Result.to_option r) cell
            in
            let errors = List.length cell - List.length outcomes in
            if errors > 0 then
              Printf.eprintf "warning: %d failed job(s) in cell %s\n" errors
                (Job.describe job);
            let rounds =
              Array.of_list
                (List.map
                   (fun (o : Job.outcome) -> float_of_int o.result.rounds)
                   outcomes)
            in
            if Array.length rounds > 0 then begin
              let s = Bfdn_util.Stats.summarize rounds in
              let o = List.hd outcomes in
              Table.add_row t
                [
                  Scenario.instance_label job;
                  job.algo; Table.fint job.k;
                  Table.fint (Array.length rounds); Table.fint o.n;
                  Table.fint o.depth; Table.ffloat ~decimals:0 s.p50;
                  Table.ffloat ~decimals:0 s.max;
                  Table.fbool
                    (List.for_all (fun (o : Job.outcome) -> o.result.explored)
                       outcomes);
                ]
            end)
      (chunks results);
    Table.print t;
    let agg = Batch.aggregate results in
    Printf.printf "%d jobs (%d errors) in %.2fs — %.1f jobs/s on %d worker(s)\n"
      agg.jobs agg.errors wall
      (float_of_int agg.jobs /. Float.max 1e-9 wall)
      jobs;
    if metrics then begin
      let merged = Metrics.create () in
      Array.iteri
        (fun w reg ->
          Metrics.merge_into ~into:merged reg;
          match Metrics.find_histogram reg "job_s" with
          | Some h when Metrics.hist_count h > 0 ->
              Printf.printf "%s\n"
                (Sink.dashboard ~title:(Printf.sprintf "worker %d" w) reg)
          | _ -> ())
        worker_regs;
      Printf.printf "%s\n" (Sink.dashboard ~title:"sweep metrics (merged)" merged)
    end;
    (match out with
    | Some path when path <> "" ->
        Report.write ~path
          (Report.of_sweep ~label:"bfdn-explore sweep" ~workers:jobs ~seed ~wall
             results);
        Printf.printf "report written to %s\n" path
    | _ -> ());
    if agg.errors > 0 then exit 1
  in
  let term =
    Term.(
      const action $ families_arg $ algos_arg $ ks_arg $ jobs_arg $ n $ depth
      $ repeats $ seed_arg $ out $ metrics_arg $ seed_batch_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a (family x algo x k x seed) batch on the parallel engine and \
          report round distributions.")
    term

(* ---- game ---- *)

let game_cmd =
  let module U = Bfdn.Urn_game in
  let delta =
    Arg.(value & opt int 0 & info [ "delta" ] ~docv:"DELTA" ~doc:"Urn threshold Δ (default: k).")
  in
  let adversary =
    Arg.(
      value
      & opt (enum (List.map (fun (a, _) -> (a, a)) U.adversaries)) "greedy"
      & info [ "adversary" ] ~docv:"ADV"
          ~doc:
            (Printf.sprintf "Adversary: %s."
               (names (List.map fst U.adversaries))))
  in
  let action k delta adversary seed =
    let delta = if delta <= 0 then k else delta in
    let adv = U.adversary_of_name ~rng:(Rng.create seed) adversary in
    let steps = U.play (U.create ~delta ~k) adv U.player_least_loaded in
    Printf.printf "k=%d Δ=%d adversary=%s: game over after %d steps\n" k delta adversary steps;
    Printf.printf "optimal adversary (DP): %d steps\n" (U.dp_value ~delta ~k);
    Printf.printf "Theorem 3 bound       : %.0f steps\n" (U.bound ~delta ~k)
  in
  let term = Term.(const action $ k_arg $ delta $ adversary $ seed_arg) in
  Cmd.v (Cmd.info "game" ~doc:"Play the Section 3 balls-in-urns game.") term

(* ---- regions ---- *)

let regions_cmd =
  let rows = Arg.(value & opt int 24 & info [ "rows" ] ~docv:"ROWS" ~doc:"Map height.") in
  let cols = Arg.(value & opt int 72 & info [ "cols" ] ~docv:"COLS" ~doc:"Map width.") in
  let argmin =
    Arg.(value & flag & info [ "argmin" ] ~doc:"Use the concrete guarantee formulas instead of the Appendix A regions.")
  in
  let action k rows cols argmin =
    let mode = if argmin then Bfdn.Regions.Argmin else Bfdn.Regions.Analytic in
    print_string (Bfdn.Regions.render (Bfdn.Regions.compute_map ~rows ~cols ~mode ~k ()))
  in
  let term = Term.(const action $ k_arg $ rows $ cols $ argmin) in
  Cmd.v (Cmd.info "regions" ~doc:"Print the Figure 1 best-guarantee region map.") term

(* ---- bounds ---- *)

let bounds_cmd =
  let n = Arg.(value & opt int 100000 & info [ "n"; "nodes" ] ~docv:"N" ~doc:"Node count.") in
  let d = Arg.(value & opt int 50 & info [ "depth" ] ~docv:"D" ~doc:"Tree depth.") in
  let delta = Arg.(value & opt int 0 & info [ "delta" ] ~docv:"DELTA" ~doc:"Max degree (default: k).") in
  let action k n d delta =
    let delta = if delta <= 0 then k else delta in
    let module B = Bfdn.Bounds in
    let t =
      Bfdn_util.Table.create
        ~caption:(Printf.sprintf "Runtime guarantees at n=%d, D=%d, k=%d, Δ=%d:" n d k delta)
        [ ("algorithm", Bfdn_util.Table.Left); ("bound (rounds)", Bfdn_util.Table.Right) ]
    in
    let row name v = Bfdn_util.Table.add_row t [ name; Bfdn_util.Table.ffloat ~decimals:0 v ] in
    row "offline lower bound" (B.offline_lb ~n ~k ~d);
    row "offline split 2(n/k+D)" (B.offline_split ~n ~k ~d);
    row "single-robot DFS" (B.dfs ~n);
    row "CTE [10] (n/log2 k + D)" (B.cte ~n ~k ~d);
    row "Yo* [13]" (B.yostar ~n ~k ~d);
    row "BFDN (Theorem 1)" (B.bfdn ~n ~k ~d ~delta);
    row "BFDN break-downs (Prop 7)" (B.bfdn_breakdown ~n ~k ~d);
    let v, ell = B.bfdn_rec_best ~n ~k ~d ~delta in
    row (Printf.sprintf "BFDN_l (Thm 10, best l=%d)" ell) v;
    Bfdn_util.Table.print t;
    let w, value = Bfdn.Regions.winner ~n ~k ~d ~delta in
    Printf.printf "best guarantee: %s (%.0f rounds)\n" (Bfdn.Regions.name w) value
  in
  let term = Term.(const action $ k_arg $ n $ d $ delta) in
  Cmd.v (Cmd.info "bounds" ~doc:"Print every guarantee formula for an instance shape.") term

(* ---- adversary ---- *)

let adversary_cmd =
  let policy_name =
    Arg.(
      value
      & opt (enum World_registry.cli_policy_choices) "thick-comb"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            (Printf.sprintf "Adversary policy: %s."
               (names World_registry.policy_names)))
  in
  let algo_name =
    Arg.(
      value
      & opt (enum Algo_registry.adaptive_cli_choices) "bfdn"
      & info [ "algo" ] ~docv:"ALGO"
          ~doc:
            (Printf.sprintf "Explorer: %s."
               (names Algo_registry.adaptive_names)))
  in
  let capacity =
    Arg.(value & opt int 3000 & info [ "capacity" ] ~docv:"N" ~doc:"Node budget.")
  in
  let depth_budget =
    Arg.(value & opt int 200 & info [ "depth-budget" ] ~docv:"D" ~doc:"Depth budget.")
  in
  let action k policy_name algo_name capacity depth_budget seed =
    let spec =
      Scenario.make ~algo:algo_name ~k ~seed
        (Scenario.adversarial ~policy:policy_name ~capacity
           ~depth_budget)
    in
    let o = Scenario.run spec in
    Format.printf "%s vs %s adversary: %a@." algo_name policy_name
      Runner.pp_result o.Scenario.result;
    Printf.printf "frozen instance: n=%d D=%d Δ=%d\n" o.Scenario.n
      o.Scenario.depth o.Scenario.max_degree;
    (match o.Scenario.replay_rounds with
    | Some r -> Printf.printf "frozen-tree replay : %d rounds\n" r
    | None -> ());
    let lb =
      Bfdn.Bounds.offline_lb ~n:o.Scenario.n ~k ~d:(max 1 o.Scenario.depth)
    in
    Printf.printf "offline lower bound: %.0f (ratio %.2f)\n" lb
      (float_of_int o.Scenario.result.rounds /. lb)
  in
  let term =
    Term.(const action $ k_arg $ policy_name $ algo_name $ capacity $ depth_budget $ seed_arg)
  in
  Cmd.v
    (Cmd.info "adversary" ~doc:"Grow a tree adaptively against the explorer, then report.")
    term

(* ---- grid ---- *)

let grid_cmd =
  let width = Arg.(value & opt int 30 & info [ "width" ] ~docv:"W" ~doc:"Grid width.") in
  let height = Arg.(value & opt int 12 & info [ "height" ] ~docv:"H" ~doc:"Grid height.") in
  let obstacles =
    Arg.(value & opt int 10 & info [ "obstacles" ] ~docv:"COUNT" ~doc:"Number of random rectangular obstacles.")
  in
  let action k width height obstacles seed =
    let module Grid = Bfdn_graphs.Grid in
    let module Genv = Bfdn_graphs.Graph_env in
    let grid =
      let params =
        [
          ("height", Param.Int height);
          ("obstacles", Param.Int obstacles);
          ("width", Param.Int width);
        ]
      in
      match World_registry.find "grid" with
      | Some { World_registry.kind = World_registry.Grid build; _ } ->
          build { World_registry.rng = Rng.create seed; params }
      | _ -> failwith "grid world missing from the registry"
    in
    print_string (Grid.render grid);
    let g = Grid.graph grid in
    let env = Genv.create g ~origin:(Grid.origin grid) ~k in
    let r = Bfdn.Bfdn_graph.run (Bfdn.Bfdn_graph.make env) in
    Printf.printf
      "k=%d: %d edges traversed in %d rounds (%d closed); bound %.0f; home=%b\n" k
      (Genv.traversed_edges env) r.rounds r.closed_edges
      (Bfdn.Bounds.bfdn_graph ~n_edges:(Genv.oracle_n_edges env) ~k
         ~d:(Genv.oracle_radius env) ~delta:(Genv.oracle_max_degree env))
      r.at_origin
  in
  let term = Term.(const action $ k_arg $ width $ height $ obstacles $ seed_arg) in
  Cmd.v (Cmd.info "grid" ~doc:"Sweep a warehouse grid with graph-BFDN.") term

(* ---- serve ---- *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind / connect address.")

let port_arg ~default =
  Arg.(
    value & opt int default
    & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (0 picks an ephemeral one).")

let serve_cmd =
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:"Engine pool domains (0 = the recommended domain count).")
  in
  let queue_cap =
    Arg.(
      value & opt int Server.default_config.Server.queue_cap
      & info [ "queue-cap" ] ~docv:"N"
          ~doc:"In-flight job bound; past it POST /run answers 429.")
  in
  let cache_cap =
    Arg.(
      value & opt int Server.default_config.Server.cache_cap
      & info [ "cache-cap" ] ~docv:"N"
          ~doc:"Result-cache entries (0 disables caching).")
  in
  let timeout_s =
    Arg.(
      value & opt float Server.default_config.Server.timeout_s
      & info [ "timeout-s" ] ~docv:"SECONDS"
          ~doc:"Default per-job wall-clock timeout.")
  in
  let quiet =
    Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Suppress lifecycle logging.")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Minimum log severity: debug, info, warn or error.")
  in
  let postmortem_dir =
    Arg.(
      value & opt (some string) None
      & info [ "postmortem-dir" ] ~docv:"DIR"
          ~doc:
            "Write a postmortem bundle (spec, metrics, trace frames, span \
             tree) here for every failed, timed-out or robot-losing job.")
  in
  let span_log =
    Arg.(
      value & opt (some string) None
      & info [ "span-log" ] ~docv:"FILE"
          ~doc:"Append every finished span to this JSONL file.")
  in
  let no_trace =
    Arg.(
      value & flag
      & info [ "no-trace" ]
          ~doc:"Disable per-request span recording (tracing hooks no-op).")
  in
  let action host port workers queue_cap cache_cap timeout_s quiet log_level
      postmortem_dir span_log no_trace =
    let level =
      match Log.level_of_name log_level with
      | Some l -> l
      | None ->
          Printf.eprintf "unknown log level %S\n" log_level;
          exit 2
    in
    (* Stderr is itself a JSONL stream: one log object per line, which
       [explore tail] renders back into readable text. *)
    let log =
      if quiet then Log.ignore_log
      else
        Log.create ~level (fun j ->
            Printf.eprintf "%s\n%!" (Json.to_string j))
    in
    let span_sink =
      Option.map
        (fun file ->
          let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
          at_exit (fun () -> close_out_noerr oc);
          let m = Mutex.create () in
          fun j ->
            Mutex.lock m;
            Sink.write_jsonl oc j;
            flush oc;
            Mutex.unlock m)
        span_log
    in
    let config =
      {
        Server.host;
        port;
        workers =
          (if workers <= 0 then Server.default_config.Server.workers
           else workers);
        queue_cap;
        cache_cap;
        timeout_s;
        log;
        trace = not no_trace;
        span_sink;
        postmortem_dir;
      }
    in
    let server = Server.create config in
    let stop _ = Server.stop server in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Server.run server
  in
  let term =
    Term.(
      const action $ host_arg $ port_arg ~default:8080 $ workers $ queue_cap
      $ cache_cap $ timeout_s $ quiet $ log_level $ postmortem_dir $ span_log
      $ no_trace)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the scenario-execution HTTP service: POST /run executes specs \
          on the parallel engine with admission control and a fingerprint \
          result cache; SIGTERM drains gracefully.")
    term

let submit_cmd =
  let spec_file =
    Arg.(
      required
      & opt (some file) None
      & info [ "spec" ] ~docv:"FILE" ~doc:"Scenario spec JSON file to submit.")
  in
  let no_wait =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:"Submit asynchronously (wait=0) and print the job ticket.")
  in
  let stream =
    Arg.(
      value & flag
      & info [ "stream" ]
          ~doc:
            "After an asynchronous submit, follow GET /jobs/:id/stream and \
             print each trace frame as it arrives.")
  in
  let action host port spec_file no_wait stream =
    let body =
      let ic = open_in_bin spec_file in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let path = if no_wait || stream then "/run?wait=0" else "/run" in
    match Client.request ~host ~port ~body ~meth:"POST" ~path () with
    | Error msg ->
        Printf.eprintf "submit failed: %s\n" msg;
        exit 1
    | Ok resp ->
        print_endline resp.Client.body;
        if stream && resp.Client.status = 202 then begin
          let id =
            match Json.of_string resp.Client.body with
            | Ok j -> (
                match Json.member "id" j with
                | Some (Json.Int id) -> id
                | _ -> failwith "no job id in response")
            | Error e -> failwith e
          in
          match
            Client.request ~host ~port ~meth:"GET"
              ~path:(Printf.sprintf "/jobs/%d/stream" id)
              ~on_chunk:print_string ()
          with
          | Ok _ -> ()
          | Error msg ->
              Printf.eprintf "stream failed: %s\n" msg;
              exit 1
        end
        else if resp.Client.status >= 400 then exit 1
  in
  let term =
    Term.(
      const action $ host_arg $ port_arg ~default:8080 $ spec_file $ no_wait
      $ stream)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "POST a scenario spec to a running service and print the response \
          (optionally following the live JSONL trace stream).")
    term

(* ---- tail ---- *)

let tail_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"JSONL file of trace frames, span records and/or log lines.")
  in
  let follow =
    Arg.(
      value & flag
      & info [ "follow"; "f" ]
          ~doc:"Keep the file open and print records as they are appended.")
  in
  let timeline =
    Arg.(
      value & flag
      & info [ "timeline" ]
          ~doc:
            "After the per-record lines, render an ASCII span timeline of \
             every span record in the file.")
  in
  let action file follow timeline =
    let spans = ref [] in
    let emit line =
      let line = String.trim line in
      if line <> "" then
        match Json.of_string line with
        | Error _ -> print_endline line
        | Ok j ->
            if Tail.kind_of j = Tail.Span then spans := j :: !spans;
            print_endline (Tail.render_line j)
    in
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec drain () =
          match input_line ic with
          | line ->
              emit line;
              drain ()
          | exception End_of_file -> ()
        in
        drain ();
        if follow then begin
          (* Poll for appended lines; [input_line] raising EOF leaves
             the channel positioned to retry once more data lands. *)
          let stop = ref false in
          Sys.set_signal Sys.sigint
            (Sys.Signal_handle (fun _ -> stop := true));
          while not !stop do
            match input_line ic with
            | line -> emit line
            | exception End_of_file -> Unix.sleepf 0.2
          done
        end;
        if timeline then begin
          let s = Tail.span_timeline (List.rev !spans) in
          if s <> "" then print_string s
        end)
  in
  let term = Term.(const action $ file $ follow $ timeline) in
  Cmd.v
    (Cmd.info "tail"
       ~doc:
         "Pretty-print an observability JSONL file (trace frames, spans, \
          log lines) as aligned text, optionally following appends like \
          tail -f.")
    term

(* ---- promlint ---- *)

let promlint_cmd =
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Exposition document to check (defaults to stdin).")
  in
  let action file =
    let body =
      match file with
      | Some f ->
          let ic = open_in_bin f in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
      | None -> In_channel.input_all stdin
    in
    match Prometheus.validate body with
    | Ok () -> print_endline "OK"
    | Error msg ->
        Printf.eprintf "invalid exposition: %s\n" msg;
        exit 1
  in
  let term = Term.(const action $ file) in
  Cmd.v
    (Cmd.info "promlint"
       ~doc:
         "Validate a Prometheus text exposition document (as served by \
          /metrics?format=prometheus) against the 0.0.4 format.")
    term

let () =
  let doc = "Collaborative tree exploration with Breadth-First Depth-Next (BFDN)." in
  let info = Cmd.info "bfdn-explore" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; sweep_cmd; list_cmd; serve_cmd; submit_cmd; game_cmd;
            regions_cmd; grid_cmd; adversary_cmd; bounds_cmd; tail_cmd;
            promlint_cmd;
          ]))
