(* E2 — Theorem 1: BFDN completes in at most
   2n/k + D^2 (min(log k, log Δ) + 3) rounds, on every instance family. *)

open Bench_common
module Table = Bfdn_util.Table

let run () =
  header "E2 (Theorem 1)"
    "BFDN rounds vs the 2n/k + D^2(min(log k, log Δ)+3) guarantee";
  let t =
    Table.create
      ~caption:
        "rounds always <= bound (a violation would falsify Theorem 1);\n\
         lb = offline lower bound max(2n/k, 2D)."
      [
        ("family", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("Δ", Table.Right); ("k", Table.Right); ("rounds", Table.Right);
        ("bound", Table.Right); ("rounds/bound", Table.Right);
        ("rounds/lb", Table.Right); ("ok", Table.Left);
      ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam
          ~rng:(Rng.create seed)
          ~n:(sized 5000) ~depth_hint:40
      in
      List.iter
        (fun k ->
          let env, _, r = run_bfdn tree k in
          let bound = thm1_bound env k in
          let ratio = float_of_int r.rounds /. bound in
          worst := Float.max !worst ratio;
          Table.add_row t
            [
              fam;
              Table.fint (Env.oracle_n env);
              Table.fint (Env.oracle_depth env);
              Table.fint (Env.oracle_max_degree env);
              Table.fint k;
              Table.fint r.rounds;
              Table.ffloat ~decimals:0 bound;
              Table.fratio ratio;
              Table.fratio (float_of_int r.rounds /. offline_lb env k);
              Table.fbool (r.explored && r.at_root && ratio <= 1.0);
            ])
        [ 1; 8; 64; 512 ])
    Bfdn_trees.Tree_gen.families;
  Table.print t;
  Printf.printf "worst rounds/bound ratio: %.3f (paper predicts <= 1)\n" !worst
