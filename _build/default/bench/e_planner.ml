(* E5 — Proposition 6: BFDN in the write-read / restricted-memory model
   keeps the 2n/k + D^2(min(log k, log Δ)+3) guarantee. *)

open Bench_common
module Table = Bfdn_util.Table

let run () =
  header "E5 (Proposition 6)" "write-read BFDN vs complete-communication BFDN";
  let t =
    Table.create
      ~caption:
        "same bound as Theorem 1; the write-read planner pays extra probe\n\
         travel but stays within it."
      [
        ("family", Table.Left); ("n", Table.Right); ("k", Table.Right);
        ("bfdn", Table.Right); ("write-read", Table.Right);
        ("wr/bfdn", Table.Right); ("bound", Table.Right);
        ("wr/bound", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam ~rng:(Rng.create (seed + 2))
          ~n:(sized 3000) ~depth_hint:20
      in
      List.iter
        (fun k ->
          let env1, _, r1 = run_bfdn tree k in
          let _, _, r2 = run_planner tree k in
          let bound = thm1_bound env1 k in
          Table.add_row t
            [
              fam;
              Table.fint (Env.oracle_n env1);
              Table.fint k;
              Table.fint r1.rounds;
              Table.fint r2.rounds;
              Table.fratio (float_of_int r2.rounds /. float_of_int r1.rounds);
              Table.ffloat ~decimals:0 bound;
              Table.fratio (float_of_int r2.rounds /. bound);
              Table.fbool
                (r2.explored && r2.at_root && float_of_int r2.rounds <= bound);
            ])
        [ 8; 64 ])
    Bfdn_trees.Tree_gen.families;
  Table.print t
