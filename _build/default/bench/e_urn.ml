(* E3 — Theorem 3: the balls-in-urns game ends within
   k min(log Δ, log k) + 2k steps under the least-loaded strategy;
   the greedy adversary realizes the exact optimum (R(N, u) DP). *)

open Bench_common
module Urn_game = Bfdn.Urn_game
module Table = Bfdn_util.Table

let play ~delta ~k adversary =
  Urn_game.play (Urn_game.create ~delta ~k) adversary Urn_game.player_least_loaded

let run () =
  header "E3 (Theorem 3)" "urn-game length vs k·min(log Δ, log k) + 2k";
  let t =
    Table.create
      ~caption:
        "greedy realizes the optimal adversary (= DP value); all adversaries\n\
         stay within the Theorem 3 bound."
      [
        ("k", Table.Right); ("Δ", Table.Right); ("greedy", Table.Right);
        ("DP optimum", Table.Right); ("fresh-first", Table.Right);
        ("random", Table.Right); ("bound", Table.Right);
        ("greedy/bound", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun (k, delta) ->
      let greedy = play ~delta ~k Urn_game.adversary_greedy in
      let dp = Urn_game.dp_value ~delta ~k in
      let fresh = play ~delta ~k Urn_game.adversary_fresh_first in
      let rnd = play ~delta ~k (Urn_game.adversary_random (Rng.create seed)) in
      let bound = Urn_game.bound ~delta ~k in
      Table.add_row t
        [
          Table.fint k; Table.fint delta; Table.fint greedy; Table.fint dp;
          Table.fint fresh; Table.fint rnd;
          Table.ffloat ~decimals:0 bound;
          Table.fratio (float_of_int greedy /. bound);
          Table.fbool
            (greedy = dp
            && float_of_int greedy <= bound
            && float_of_int fresh <= bound
            && float_of_int rnd <= bound);
        ])
    [
      (4, 4); (16, 16); (64, 64); (256, 256); (1024, 1024); (4096, 4096);
      (1024, 16); (1024, 4); (64, 100000);
    ];
  Table.print t
