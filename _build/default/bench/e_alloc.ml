(* E10 — resource allocation under uncertainty (Section 3 interpretation):
   reassigning idle workers to the least-crowded unfinished task costs at
   most k log k + 2k switches, irrespective of task lengths. *)

open Bench_common
module Alloc = Bfdn_alloc.Alloc
module Table = Bfdn_util.Table

let run () =
  header "E10 (resource allocation)"
    "worker switches vs k log k + 2k under unknown task lengths";
  let t =
    Table.create
      ~caption:"makespan lb = total work / k; switches lb ~ k (each worker moves once)."
      [
        ("profile", Table.Left); ("k", Table.Right); ("total work", Table.Right);
        ("switches", Table.Right); ("bound", Table.Right);
        ("switches/bound", Table.Right); ("makespan", Table.Right);
        ("makespan/lb", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun k ->
      let total = 100 * k in
      let profiles =
        [
          ("uniform", Array.make k (total / k));
          ("random", Alloc.random_lengths ~rng:(Rng.create (seed + k)) ~k ~total);
          ("geometric", Alloc.adversarial_lengths ~k ~total);
          ( "one giant task",
            Array.init k (fun i -> if i = 0 then total else 0) );
        ]
      in
      List.iter
        (fun (name, lengths) ->
          let total = Array.fold_left ( + ) 0 lengths in
          let r = Alloc.simulate ~lengths () in
          let bound = Alloc.switches_bound ~k in
          let lb = Bfdn_util.Mathx.ceil_div total k in
          Table.add_row t
            [
              name; Table.fint k; Table.fint total; Table.fint r.switches;
              Table.ffloat ~decimals:0 bound;
              Table.fratio (float_of_int r.switches /. bound);
              Table.fint r.rounds;
              Table.fratio (float_of_int r.rounds /. float_of_int (max 1 lb));
              Table.fbool (float_of_int r.switches <= bound);
            ])
        profiles)
    [ 16; 64; 256; 1024 ];
  Table.print t
