(* E7 — Proposition 9: graph exploration with distance-to-origin knowledge
   on grid graphs with rectangular obstacles ([12]'s setting):
   2n/k + D^2(min(log Δ, log k)+3) with n = #edges and D = radius; the
   never-closed edges form a BFS tree. *)

open Bench_common
module Grid = Bfdn_graphs.Grid
module Graph = Bfdn_graphs.Graph
module Genv = Bfdn_graphs.Graph_env
module Table = Bfdn_util.Table

let run () =
  header "E7 (Proposition 9)" "graph-BFDN on grids with rectangular obstacles";
  let t =
    Table.create
      ~caption:"n = edges, D = radius of the origin; lb = 2n/k."
      [
        ("grid", Table.Left); ("|E|", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("rounds", Table.Right); ("closed", Table.Right);
        ("bound", Table.Right); ("rounds/bound", Table.Right);
        ("rounds/lb", Table.Right); ("ok", Table.Left);
      ]
  in
  let grids =
    [
      ("20x20, 8 obst", 20, 20, 8);
      ("35x35, 20 obst", 35, 35, 20);
      ("60x25, 30 obst", 60, 25, 30);
      ("45x45, open", 45, 45, 0);
    ]
  in
  List.iter
    (fun (name, w, h, obstacles) ->
      let rng = Rng.create (seed + w + h) in
      let spec = Grid.random_spec ~rng ~width:w ~height:h ~obstacle_count:obstacles ~max_side:5 in
      let grid = Grid.make spec in
      let g = Grid.graph grid in
      List.iter
        (fun k ->
          let env = Genv.create g ~origin:(Grid.origin grid) ~k in
          let state = Bfdn.Bfdn_graph.make env in
          let r = Bfdn.Bfdn_graph.run state in
          let bound =
            Bfdn.Bounds.bfdn_graph ~n_edges:(Genv.oracle_n_edges env) ~k
              ~d:(Genv.oracle_radius env) ~delta:(Genv.oracle_max_degree env)
          in
          let lb = 2.0 *. float_of_int (Genv.oracle_n_edges env) /. float_of_int k in
          Table.add_row t
            [
              name;
              Table.fint (Genv.oracle_n_edges env);
              Table.fint (Genv.oracle_radius env);
              Table.fint k;
              Table.fint r.rounds;
              Table.fint r.closed_edges;
              Table.ffloat ~decimals:0 bound;
              Table.fratio (float_of_int r.rounds /. bound);
              Table.fratio (float_of_int r.rounds /. Float.max lb 1.0);
              Table.fbool
                (r.explored && r.at_origin && float_of_int r.rounds <= bound);
            ])
        [ 1; 8; 64 ])
    grids;
  Table.print t
