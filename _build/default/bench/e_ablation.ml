(* A1 — ablation of the design choices DESIGN.md calls out:
   (1) anchor selection policy (the urn-game least-loaded rule vs naive
       alternatives) — affects per-depth reanchor pressure and rounds;
   (2) the contribution of the recursive depth-splitting (ell) on deep
       trees (measured, complementing E8's bound view). *)

open Bench_common
module Table = Bfdn_util.Table
module Bfdn_algo = Bfdn.Bfdn_algo

let max_reanchors env state =
  let worst = ref 0 in
  for d = 1 to Env.oracle_depth env - 1 do
    worst := max !worst (Bfdn_algo.reanchors_at_depth state d)
  done;
  !worst

let run () =
  header "A1 (ablation)" "anchor policy and recursion depth";
  let t =
    Table.create
      ~caption:
        "anchor policies (k = 64): Least_loaded is the paper's rule; the\n\
         alternatives keep correctness but lose the Lemma 2 balance."
      [
        ("family", Table.Left); ("policy", Table.Left); ("rounds", Table.Right);
        ("max reanchors@d", Table.Right); ("lemma2 cap", Table.Right);
      ]
  in
  let k = 64 in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam ~rng:(Rng.create (seed + 8))
          ~n:(sized 4000) ~depth_hint:25
      in
      List.iter
        (fun (name, policy) ->
          let env = Env.create tree ~k in
          let state = Bfdn_algo.make ~policy env in
          let r = Runner.run (Bfdn_algo.algo state) env in
          assert r.explored;
          let cap =
            Bfdn.Bounds.urn_game ~delta:(Env.oracle_max_degree env) ~k
            +. float_of_int k
          in
          Table.add_row t
            [
              fam; name; Table.fint r.rounds;
              Table.fint (max_reanchors env state);
              Table.ffloat ~decimals:0 cap;
            ])
        [
          ("least-loaded (paper)", Bfdn_algo.Least_loaded);
          ("first-open", Bfdn_algo.First_open);
          ("random-open", Bfdn_algo.Random_open (Rng.create (seed + 9)));
        ];
      Table.add_rule t)
    [ "caterpillar"; "comb"; "random-deep"; "broom" ];
  Table.print t;
  (* Return-to-root vs shortcut re-anchoring (Section 2 discusses why the
     paper keeps the walk home: it enables the write-read planner). *)
  let t2 =
    Table.create
      ~caption:
        "walk-home (paper, Theorem 1 holds) vs shortcut re-anchoring via the\n\
         LCA (no guarantee claimed): the walk is robust, the shortcut is a\n\
         gamble — much faster on deep path-like trees, much slower on bushy\n\
         ones."
      [
        ("family", Table.Left); ("k", Table.Right);
        ("walk-home", Table.Right); ("shortcut", Table.Right);
        ("walk/shortcut", Table.Right); ("thm1 bound", Table.Right);
        ("shortcut <= bound?", Table.Left);
      ]
  in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam ~rng:(Rng.create (seed + 10))
          ~n:(sized 3000) ~depth_hint:30
      in
      List.iter
        (fun k ->
          let env1 = Env.create tree ~k in
          let r1 =
            Runner.run (Bfdn_algo.algo (Bfdn_algo.make env1)) env1
          in
          let env2 = Env.create tree ~k in
          let r2 =
            Runner.run (Bfdn_algo.algo (Bfdn_algo.make ~shortcut:true env2)) env2
          in
          let bound = thm1_bound env1 k in
          Table.add_row t2
            [
              fam; Table.fint k; Table.fint r1.rounds; Table.fint r2.rounds;
              Table.fratio (float_of_int r1.rounds /. float_of_int r2.rounds);
              Table.ffloat ~decimals:0 bound;
              Table.fbool (float_of_int r2.rounds <= bound);
            ])
        [ 8; 64 ])
    [ "caterpillar"; "hidden-path"; "binary"; "random"; "comb" ];
  Table.print t2;
  print_endline
    "NO entries in the last column are expected: the shortcut variant can\n\
     exceed the Theorem 1 bound (it breaks the urn-game reduction), which\n\
     is precisely why Algorithm 1 sends robots home before re-anchoring."
