(* B1–B6 — Bechamel micro-benchmarks of the substrate and algorithms:
   wall-clock throughput of one full exploration per iteration. *)

open Bechamel
open Toolkit
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng

let tree = lazy (Tree_gen.random_tree ~rng:(Rng.create 42) ~n:2000 ())
let deep = lazy (Tree_gen.comb ~spine:40 ~tooth_len:20)

let explore_bfdn () =
  let env = Env.create (Lazy.force tree) ~k:16 in
  let t = Bfdn.Bfdn_algo.make env in
  ignore (Runner.run (Bfdn.Bfdn_algo.algo t) env)

let explore_planner () =
  let env = Env.create (Lazy.force tree) ~k:16 in
  let t = Bfdn.Bfdn_planner.make env in
  ignore (Runner.run (Bfdn.Bfdn_planner.algo t) env)

let explore_cte () =
  let env = Env.create (Lazy.force tree) ~k:16 in
  ignore (Runner.run (Bfdn_baselines.Cte.make env) env)

let explore_rec () =
  let env = Env.create (Lazy.force deep) ~k:16 in
  let t = Bfdn.Bfdn_rec.make ~ell:2 env in
  ignore (Runner.run (Bfdn.Bfdn_rec.algo t) env)

let urn_game () =
  ignore
    (Bfdn.Urn_game.play
       (Bfdn.Urn_game.create ~delta:256 ~k:256)
       Bfdn.Urn_game.adversary_greedy Bfdn.Urn_game.player_least_loaded)

let gen_tree () =
  ignore (Tree_gen.random_tree ~rng:(Rng.create 7) ~n:2000 ())

let tests =
  Test.make_grouped ~name:"bfdn"
    [
      Test.make ~name:"explore/bfdn k=16 n=2000" (Staged.stage explore_bfdn);
      Test.make ~name:"explore/write-read k=16 n=2000" (Staged.stage explore_planner);
      Test.make ~name:"explore/cte k=16 n=2000" (Staged.stage explore_cte);
      Test.make ~name:"explore/bfdn_2 k=16 deep" (Staged.stage explore_rec);
      Test.make ~name:"urn-game k=256 greedy" (Staged.stage urn_game);
      Test.make ~name:"tree-gen random n=2000" (Staged.stage gen_tree);
    ]

let run () =
  Bench_common.header "B1-B6 (micro-benchmarks)"
    "wall-clock per full run (Bechamel, OLS on monotonic clock)";
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.6) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  let table =
    Bfdn_util.Table.create
      [ ("benchmark", Bfdn_util.Table.Left); ("time/run", Bfdn_util.Table.Right);
        ("r²", Bfdn_util.Table.Right) ]
  in
  List.iter
    (fun (name, ols) ->
      let time =
        match Analyze.OLS.estimates ols with
        | Some (t :: _) ->
            if t > 1e9 then Printf.sprintf "%.2f s" (t /. 1e9)
            else if t > 1e6 then Printf.sprintf "%.2f ms" (t /. 1e6)
            else Printf.sprintf "%.2f us" (t /. 1e3)
        | _ -> "n/a"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.3f" r
        | None -> "-"
      in
      Bfdn_util.Table.add_row table [ name; time; r2 ])
    rows;
  Bfdn_util.Table.print table
