(* E1 — Figure 1: regions of (n, D) where each algorithm's guarantee is
   best, plus the Appendix A cross-check. *)

open Bench_common
module Regions = Bfdn.Regions

let run () =
  header "E1 (Figure 1)"
    "best runtime guarantee per (n, D) region, CTE vs Yo* vs BFDN vs BFDN_l";
  List.iter
    (fun k ->
      let m = Regions.compute_map ~rows:22 ~cols:70 ~k () in
      print_string (Regions.render m))
    [ 64; 65536 ];
  let m = Regions.compute_map ~rows:24 ~cols:72 ~mode:Regions.Argmin ~k:1024 () in
  Printf.printf
    "Cross-check: numeric argmin of the four guarantee formulas agrees with\n\
     the Appendix A closed-form CTE/BFDN boundary on %.1f%% of contested cells\n\
     (k = 1024; boundary cells within a factor 2 accepted either way).\n"
    (100.0 *. Regions.agreement_with_analytic m);
  (* Appendix A boundary checks, one sample point per region. The regions
     are defined with all constants dropped and live at doubly-exponential
     scales, so points are given in log space. *)
  let t =
    Table.create
      ~caption:
        "Appendix A regions at sample points (log-space coordinates):"
      [
        ("expected region", Table.Left); ("k", Table.Right);
        ("ln n", Table.Right); ("ln D", Table.Right); ("analytic", Table.Left);
        ("ok", Table.Left);
      ]
  in
  List.iter
    (fun (expected, k, ln_n, ln_d) ->
      let got = Regions.analytic_winner ~n:(exp ln_n) ~k ~d:(exp ln_d) in
      Table.add_row t
        [
          Regions.name expected; Table.fint k;
          Table.ffloat ~decimals:1 ln_n; Table.ffloat ~decimals:1 ln_d;
          Regions.name got; Table.fbool (got = expected);
        ])
    [
      (* BFDN: wide and shallow — k D^2 <= n/k and D^2 log^2 k <= n. *)
      (Regions.Bfdn, 1024, 20.0, 1.0);
      (* CTE: deeper than e^(log^2 k) at small k. *)
      (Regions.Cte, 8, 10.0, 8.0);
      (* Yo*: moderate n, large D relative to the BFDN boundary. *)
      (Regions.Yostar, 1024, 10.0, 7.0);
      (* BFDN_l: the wedge n/k^(1/l) < D^2, D < n^(l/(l+1))/(k log^2 k);
         requires k^(1/l) > log^2 k, hence very large n. *)
      (Regions.Bfdn_rec, 65536, 85.0, 40.0);
    ];
  Table.print t
