(* E13/E14 — executable extensions beyond the paper's theorems:
   E13: Remark 8's continuous-time relaxation (heterogeneous speeds);
   E14: Section 4.1's memory claim, measured (Δ + D log Δ bits). *)

open Bench_common
module Aenv = Bfdn_sim.Async_env
module Table = Bfdn_util.Table

let run_async ?speeds tree k =
  let env = Aenv.create ?speeds tree ~k in
  let t = Bfdn.Bfdn_async.make env in
  Aenv.run (Bfdn.Bfdn_async.decide t) env;
  env

let e13 () =
  header "E13 (continuous time, Remark 8)"
    "async BFDN with heterogeneous robot speeds";
  let tree =
    Bfdn_trees.Tree_gen.of_family "random" ~rng:(Rng.create (seed + 13))
      ~n:(sized 4000) ~depth_hint:15
  in
  let n = Bfdn_trees.Tree.n tree in
  let k = 16 in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "k = %d, n = %d; work lb = 2(n-1)/Σspeeds; sync = synchronous\n\
            BFDN rounds (the unit-speed async run tracks it)." k n)
      [
        ("fleet", Table.Left); ("Σ speeds", Table.Right);
        ("makespan", Table.Right); ("work lb", Table.Right);
        ("makespan/lb", Table.Right); ("explored", Table.Left);
      ]
  in
  let env0 = Env.create tree ~k in
  let sync =
    (Runner.run (Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env0)) env0).rounds
  in
  let fleets =
    [
      ("uniform 1x", Array.make k 1.0);
      ("half 1x, half 0.25x", Array.init k (fun i -> if i mod 2 = 0 then 1.0 else 0.25));
      ("one 4x scout, rest 1x", Array.init k (fun i -> if i = 0 then 4.0 else 1.0));
      ("geometric decay", Array.init k (fun i -> 1.0 /. float_of_int (1 + i)));
    ]
  in
  List.iter
    (fun (name, speeds) ->
      let env = run_async ~speeds tree k in
      let total = Array.fold_left ( +. ) 0.0 speeds in
      let lb = 2.0 *. float_of_int (n - 1) /. total in
      Table.add_row t
        [
          name;
          Table.ffloat ~decimals:2 total;
          Table.ffloat ~decimals:0 (Aenv.makespan env);
          Table.ffloat ~decimals:0 lb;
          Table.fratio (Aenv.makespan env /. lb);
          Table.fbool (Aenv.fully_explored env && Aenv.all_at_root env);
        ])
    fleets;
  Table.print t;
  Printf.printf "synchronous BFDN on the same instance: %d rounds\n" sync

let e14 () =
  header "E14 (Section 4.1 memory)"
    "measured robot memory vs the Δ + D log Δ bits claim";
  let t =
    Table.create
      ~caption:
        "bits = deepest port stack x port width + finished-port set;\n\
         claim = Δ + (D+1) ceil(log2 Δ)."
      [
        ("family", Table.Left); ("D", Table.Right); ("Δ", Table.Right);
        ("max stack", Table.Right); ("bits used", Table.Right);
        ("claimed bits", Table.Right); ("used/claim", Table.Right);
        ("ok", Table.Left);
      ]
  in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam ~rng:(Rng.create (seed + 14))
          ~n:(sized 3000) ~depth_hint:18
      in
      let env, state, r = run_planner tree 16 in
      assert r.explored;
      let d = Env.oracle_depth env and delta = Env.oracle_max_degree env in
      let used = Bfdn.Bfdn_planner.memory_bits_used state in
      let claim = delta + ((d + 1) * Bfdn_util.Mathx.ceil_log2 (max 2 delta)) in
      Table.add_row t
        [
          fam; Table.fint d; Table.fint delta;
          Table.fint (Bfdn.Bfdn_planner.max_stack_length state);
          Table.fint used; Table.fint claim;
          Table.fratio (float_of_int used /. float_of_int claim);
          Table.fbool (used <= claim);
        ])
    Bfdn_trees.Tree_gen.families;
  Table.print t

let run () =
  e13 ();
  e14 ()
