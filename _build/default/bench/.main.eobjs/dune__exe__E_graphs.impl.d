bench/e_graphs.ml: Bench_common Bfdn Bfdn_graphs Bfdn_util Float List Rng
