bench/e_overhead.ml: Bench_common Bfdn_trees Bfdn_util Env List Printf
