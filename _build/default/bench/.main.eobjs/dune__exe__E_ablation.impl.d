bench/e_ablation.ml: Bench_common Bfdn Bfdn_trees Bfdn_util Env List Rng Runner
