bench/e_cte.ml: Bench_common Bfdn Bfdn_baselines Bfdn_trees Bfdn_util Env List Printf Rng Runner
