bench/e_regions.ml: Bench_common Bfdn List Printf Table
