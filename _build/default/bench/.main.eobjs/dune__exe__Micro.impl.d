bench/micro.ml: Analyze Bechamel Bench_common Benchmark Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util Hashtbl Instance Lazy List Measure Printf Staged Test Time Toolkit
