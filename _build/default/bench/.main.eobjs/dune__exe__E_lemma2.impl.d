bench/e_lemma2.ml: Bench_common Bfdn Bfdn_trees Bfdn_util Env Float List Rng
