bench/e_thm1.ml: Bench_common Bfdn_trees Bfdn_util Env Float List Printf Rng
