bench/main.ml: Array Bench_common E_ablation E_adversary E_alloc E_breakdown E_cte E_extensions E_graphs E_lemma2 E_overhead E_planner E_rec E_regions E_thm1 E_urn List Micro Printf String Sys
