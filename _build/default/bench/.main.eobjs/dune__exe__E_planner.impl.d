bench/e_planner.ml: Bench_common Bfdn_trees Bfdn_util Env List Rng
