bench/e_breakdown.ml: Bench_common Bfdn Bfdn_trees Bfdn_util Env Hashtbl List Printf Rng Runner
