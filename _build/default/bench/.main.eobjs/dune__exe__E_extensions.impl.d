bench/e_extensions.ml: Array Bench_common Bfdn Bfdn_sim Bfdn_trees Bfdn_util Env List Printf Rng Runner
