bench/e_rec.ml: Bench_common Bfdn Bfdn_trees Bfdn_util Env List Rng
