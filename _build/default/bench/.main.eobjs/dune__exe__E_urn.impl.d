bench/e_urn.ml: Bench_common Bfdn Bfdn_util List Rng
