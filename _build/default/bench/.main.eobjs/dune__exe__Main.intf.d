bench/main.mli:
