bench/e_adversary.ml: Bench_common Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util Env List Rng Runner
