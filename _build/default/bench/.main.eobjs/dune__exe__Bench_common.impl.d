bench/bench_common.ml: Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util Printf
