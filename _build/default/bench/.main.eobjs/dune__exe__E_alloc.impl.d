bench/e_alloc.ml: Array Bench_common Bfdn_alloc Bfdn_util List Rng
