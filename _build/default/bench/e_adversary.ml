(* E11 — adaptive adversaries (extension): the hidden tree is decided
   online against the algorithm, in the spirit of the tightness
   constructions the paper builds on ([11] for CTE; lower bounds in [6]).
   The frozen tree is an ordinary instance — a deterministic algorithm
   replays it identically — so Theorem 1 must still hold for BFDN, and
   does. *)

open Bench_common
module Adversary = Bfdn_sim.Adversary
module Table = Bfdn_util.Table

let adversaries () =
  [
    ( "thick comb (11-style)",
      fun () -> Adversary.make_rec ~capacity:(sized 4000) ~depth_budget:(sized 1200) Adversary.thick_comb );
    ( "corridor crowds",
      fun () ->
        Adversary.make ~capacity:(sized 4000) ~depth_budget:80
          (Adversary.corridor_crowds ~threshold:2) );
    ( "budget bomb",
      fun () -> Adversary.make ~capacity:(sized 4000) ~depth_budget:6 Adversary.greedy_widest );
    ( "random grower",
      fun () ->
        Adversary.make ~capacity:(sized 4000) ~depth_budget:60
          (Adversary.random_policy (Rng.create (seed + 11)) ~max_children:3) );
  ]

let run () =
  header "E11 (adaptive adversaries)"
    "trees grown online against the algorithm, then frozen and replayed";
  let t =
    Table.create
      ~caption:
        "lb = max(2n/k, 2D) of the frozen tree; replay = rounds of a re-run\n\
         on the frozen instance (must equal the adaptive run for these\n\
         deterministic algorithms); thm1 applies to BFDN rows only."
      [
        ("adversary", Table.Left); ("algo", Table.Left); ("k", Table.Right);
        ("rounds", Table.Right); ("replay", Table.Right); ("n", Table.Right);
        ("D", Table.Right); ("rounds/lb", Table.Right);
        ("rounds/thm1", Table.Right); ("ok", Table.Left);
      ]
  in
  let algos =
    [
      ("bfdn", fun env -> Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env));
      ("cte", Bfdn_baselines.Cte.make);
    ]
  in
  List.iter
    (fun (aname, make_adv) ->
      List.iter
        (fun (algo_name, make_algo) ->
          List.iter
            (fun k ->
              let adv = make_adv () in
              let env = Env.of_world (Adversary.world adv) ~k in
              let r = Runner.run (make_algo env) env in
              let tree = Adversary.frozen adv in
              let stats = Bfdn_trees.Tree_stats.compute tree in
              let env2 = Env.create tree ~k in
              let r2 = Runner.run (make_algo env2) env2 in
              let lb =
                Bfdn.Bounds.offline_lb ~n:stats.n ~k ~d:(max 1 stats.depth)
              in
              let thm1 =
                Bfdn.Bounds.bfdn ~n:stats.n ~k ~d:stats.depth
                  ~delta:stats.max_degree
              in
              let within_thm1 = float_of_int r.rounds <= thm1 in
              Table.add_row t
                [
                  aname; algo_name; Table.fint k; Table.fint r.rounds;
                  Table.fint r2.rounds; Table.fint stats.n; Table.fint stats.depth;
                  Table.fratio (float_of_int r.rounds /. lb);
                  (if algo_name = "bfdn" then
                     Table.fratio (float_of_int r.rounds /. thm1)
                   else "-");
                  Table.fbool
                    (r.explored && r2.rounds = r.rounds
                    && (algo_name <> "bfdn" || within_thm1));
                ])
            [ 16; 256 ])
        algos;
      Table.add_rule t)
    (adversaries ());
  Table.print t;
  print_endline
    "Reveal-time adversaries with these policies push both algorithms to\n\
     about 2x the offline bound at laptop scales — the asymptotic\n\
     separations (CTE's kD/log k tightness) require k far beyond what a\n\
     simulation exercises, matching the theory."
