(* E6 — Proposition 7: under adversarial robot break-downs, all edges are
   visited once the average number of allowed moves reaches
   2n/k + D^2(log k + 3). *)

open Bench_common
module Table = Bfdn_util.Table

let masks k rng =
  let memo = Hashtbl.create 4096 in
  let random p ~round ~robot =
    match Hashtbl.find_opt memo (p, round, robot) with
    | Some b -> b
    | None ->
        let b = Rng.float rng 1.0 < p in
        Hashtbl.add memo (p, round, robot) b;
        b
  in
  [
    ("none (baseline)", fun ~round:_ ~robot:_ -> true);
    ("random p=0.75", random 0.75);
    ("random p=0.25", random 0.25);
    ("half fleet dead", fun ~round:_ ~robot -> robot < (k + 1) / 2);
    ("rotating thirds", fun ~round ~robot -> (round + robot) mod 3 <> 0);
    ("only one mover", fun ~round:_ ~robot -> robot = 0);
  ]

let run () =
  header "E6 (Proposition 7)"
    "exploration completes before A(M) = 2n/k + D^2(log k + 3) allowed moves";
  let tree =
    Bfdn_trees.Tree_gen.of_family "random" ~rng:(Rng.create (seed + 3))
      ~n:(sized 2500) ~depth_hint:15
  in
  let k = 16 in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "k = %d; A(M) = allowed (round, robot) slots per robot at completion;\n\
            ok = tree fully explored before A(M) reached the threshold."
           k)
      [
        ("move mask", Table.Left); ("rounds", Table.Right);
        ("A(M) at completion", Table.Right); ("threshold", Table.Right);
        ("A(M)/threshold", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun (name, mask) ->
      let env = Env.create ~mask tree ~k in
      let state = Bfdn.Bfdn_algo.make env in
      let algo =
        { (Bfdn.Bfdn_algo.algo state) with Runner.finished = Env.fully_explored }
      in
      let threshold =
        Bfdn.Bounds.bfdn_breakdown ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
      in
      let violated = ref false in
      let watch env =
        if
          float_of_int (Env.allowed_total env) /. float_of_int k >= threshold
          && not (Env.fully_explored env)
        then violated := true
      in
      let r = Runner.run ~max_rounds:2_000_000 ~on_round:watch algo env in
      let avg = float_of_int (Env.allowed_total env) /. float_of_int k in
      Table.add_row t
        [
          name; Table.fint r.rounds; Table.ffloat ~decimals:0 avg;
          Table.ffloat ~decimals:0 threshold;
          Table.fratio (avg /. threshold);
          Table.fbool (r.explored && not !violated);
        ])
    (masks k (Rng.create (seed + 4)));
  Table.print t
