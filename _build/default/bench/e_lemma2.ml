(* E4 — Lemma 2: in any BFDN run, the number of Reanchor calls returning
   an anchor at a fixed depth d >= 1 is at most k (min(log k, log Δ) + 3). *)

open Bench_common
module Table = Bfdn_util.Table
module Mathx = Bfdn_util.Mathx

let run () =
  header "E4 (Lemma 2)" "per-depth reanchor counts vs k(min(log k, log Δ)+3)";
  let t =
    Table.create
      ~caption:"max over depths d in [1, D-1] of the reanchor counter."
      [
        ("family", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("max reanchors@d", Table.Right);
        ("at depth", Table.Right); ("cap", Table.Right);
        ("max/cap", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun fam ->
      let tree =
        Bfdn_trees.Tree_gen.of_family fam ~rng:(Rng.create (seed + 1))
          ~n:(sized 4000) ~depth_hint:25
      in
      List.iter
        (fun k ->
          let env, algo_state, r = run_bfdn tree k in
          assert r.explored;
          let delta = Env.oracle_max_degree env in
          (* k (min(log k, log Δ) + 3) = urn-game bound + k *)
          let cap = Bfdn.Bounds.urn_game ~delta ~k +. float_of_int k in
          let worst = ref 0 and worst_depth = ref 0 in
          for d = 1 to Env.oracle_depth env - 1 do
            let c = Bfdn.Bfdn_algo.reanchors_at_depth algo_state d in
            if c > !worst then begin
              worst := c;
              worst_depth := d
            end
          done;
          Table.add_row t
            [
              fam;
              Table.fint (Env.oracle_n env);
              Table.fint (Env.oracle_depth env);
              Table.fint k;
              Table.fint !worst;
              Table.fint !worst_depth;
              Table.ffloat ~decimals:0 cap;
              Table.fratio (float_of_int !worst /. Float.max 1.0 cap);
              Table.fbool (float_of_int !worst <= cap);
            ])
        [ 8; 64 ])
    [ "random"; "random-deep"; "comb"; "caterpillar"; "trap"; "bounded3"; "hidden-path" ];
  Table.print t
