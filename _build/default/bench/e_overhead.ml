(* E12 — the paper's open direction: is there a 2n/k + O(D^2) algorithm?
   [6] shows Ω(D^2) is unavoidable at k = n; BFDN proves O(D^2 log k).
   Here we measure BFDN's actual additive overhead
   rounds - ceil(2(n-1)/k) as D grows, at fixed k and fixed n/D ratio,
   and fit its growth exponent — locating the measured behaviour between
   the D^2 floor and the D^2 log k ceiling. *)

open Bench_common
module Table = Bfdn_util.Table

let fitted_exponent samples =
  Bfdn_util.Stats.log_log_exponent
    (List.map (fun (d, o) -> (float_of_int d, o)) samples)

let run () =
  header "E12 (open direction)"
    "measured additive overhead of BFDN vs the D^2 floor of [6]";
  let k = 64 in
  let t =
    Table.create
      ~caption:
        (Printf.sprintf
           "k = %d, combs with ~24 D nodes; overhead = rounds - ceil(2(n-1)/k);\n\
            the open question is whether the log k factor above D^2 is needed."
           k)
      [
        ("D", Table.Right); ("n", Table.Right); ("rounds", Table.Right);
        ("overhead", Table.Right); ("overhead/D^2", Table.Right);
        ("overhead/(D^2 ln k)", Table.Right);
      ]
  in
  let samples = ref [] in
  List.iter
    (fun spine ->
      let tooth = spine / 2 in
      let tree = Bfdn_trees.Tree_gen.comb ~spine ~tooth_len:tooth in
      let env, _, r = run_bfdn tree k in
      let n = Env.oracle_n env and d = Env.oracle_depth env in
      let work = Bfdn_util.Mathx.ceil_div (2 * (n - 1)) k in
      let overhead = float_of_int (max 0 (r.rounds - work)) in
      samples := (d, overhead) :: !samples;
      Table.add_row t
        [
          Table.fint d; Table.fint n; Table.fint r.rounds;
          Table.ffloat ~decimals:0 overhead;
          Table.fratio (overhead /. (float_of_int d *. float_of_int d));
          Table.fratio
            (overhead /. (float_of_int d *. float_of_int d *. log (float_of_int k)));
        ])
    [ 16; 24; 36; 54; 80; 120; 180; 270; 400 ];
  Table.print t;
  Printf.printf
    "fitted growth exponent of the overhead in D: %.2f\n\
     (1.0 = linear; 2.0 = the D^2 floor proven in [6] for k = n; BFDN's\n\
     guarantee allows up to D^2 log k — on combs the measured overhead\n\
     grows well below the guarantee, consistent with the conjecture that\n\
     2n/k + O(D^2) might be attainable.)\n"
    (fitted_exponent !samples)
