(* Break-down resilience (Section 4.2): an adversary freezes robots at
   will — flat batteries, lost radio links, whole half of the fleet dead —
   yet BFDN still visits every edge once the surviving move budget
   reaches 2n/k + D^2(log k + 3) moves per robot on average.

   Run with: dune exec examples/breakdown_resilience.exe *)

module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng

let () =
  let tree = Tree_gen.random_tree ~rng:(Rng.create 5) ~n:4000 () in
  let stats = Bfdn_trees.Tree_stats.compute tree in
  let k = 24 in
  Format.printf "Exploring %a with k=%d robots under failures:@." Bfdn_trees.Tree_stats.pp
    stats k;
  let threshold = Bfdn.Bounds.bfdn_breakdown ~n:stats.n ~k ~d:stats.depth in
  let failure_rng = Rng.create 99 in
  let memo = Hashtbl.create 4096 in
  let flaky p ~round ~robot =
    match Hashtbl.find_opt memo (p, round, robot) with
    | Some b -> b
    | None ->
        let b = Rng.float failure_rng 1.0 < p in
        Hashtbl.add memo (p, round, robot) b;
        b
  in
  let scenarios =
    [
      ("no failures", fun ~round:_ ~robot:_ -> true);
      ("10% of moves dropped", flaky 0.9);
      ("60% of moves dropped", flaky 0.4);
      ("half the fleet is dead", fun ~round:_ ~robot -> robot < k / 2);
      ("fleet dies after round 300", fun ~round ~robot -> robot < 3 || round < 300);
    ]
  in
  List.iter
    (fun (name, mask) ->
      let env = Env.create ~mask tree ~k in
      let state = Bfdn.Bfdn_algo.make env in
      (* blocked robots may never make it home: require full edge coverage
         only (the paper drops the return requirement here) *)
      let algo = { (Bfdn.Bfdn_algo.algo state) with Runner.finished = Env.fully_explored } in
      let r = Runner.run ~max_rounds:5_000_000 algo env in
      let avg_allowed = float_of_int (Env.allowed_total env) /. float_of_int k in
      Printf.printf
        "  %-26s explored=%b in %6d rounds; allowed moves per robot %6.0f \
         (threshold %5.0f, used %4.1f%%)\n"
        name r.explored r.rounds avg_allowed threshold
        (100.0 *. avg_allowed /. threshold))
    scenarios;
  print_newline ();
  print_endline
    "Proposition 7: any failure pattern granting an average of\n\
     2n/k + D^2(log k + 3) moves per robot suffices to finish the job."
