(* Warehouse sweep: a robot swarm must traverse every aisle of a warehouse
   floor (a grid graph with rectangular shelving obstacles, the Section
   4.3 setting of the paper via Ortolf & Schindelhauer's model) and
   return to the charging dock at the corner.

   Robots know their distance to the dock (trivially available indoors);
   graph-BFDN closes the non-shortest edges on the fly and explores the
   rest as a tree, within 2|E|/k + D^2(min(log Δ, log k)+3) rounds.

   Run with: dune exec examples/warehouse_sweep.exe *)

module Grid = Bfdn_graphs.Grid
module Graph = Bfdn_graphs.Graph
module Genv = Bfdn_graphs.Graph_env
module Rng = Bfdn_util.Rng

let () =
  let rng = Rng.create 7 in
  let spec = Grid.random_spec ~rng ~width:34 ~height:14 ~obstacle_count:12 ~max_side:4 in
  let grid = Grid.make spec in
  print_endline "Warehouse floor ('O' = charging dock, '#' = shelving):";
  print_string (Grid.render grid);
  let g = Grid.graph grid in
  Printf.printf "\n%d reachable cells, %d aisles (edges), radius %d\n\n"
    (Grid.free_cells grid) (Graph.num_edges g)
    (Graph.eccentricity g (Grid.origin grid));
  List.iter
    (fun k ->
      let env = Genv.create g ~origin:(Grid.origin grid) ~k in
      let sweep = Bfdn.Bfdn_graph.make env in
      let r = Bfdn.Bfdn_graph.run sweep in
      let bound =
        Bfdn.Bounds.bfdn_graph ~n_edges:(Genv.oracle_n_edges env) ~k
          ~d:(Genv.oracle_radius env) ~delta:(Genv.oracle_max_degree env)
      in
      Printf.printf
        "k=%3d robots: swept every aisle in %5d rounds (guarantee %6.0f), \
         %d loop edges closed, all docked=%b\n"
        k r.rounds bound r.closed_edges r.at_origin)
    [ 1; 4; 16; 64 ];
  print_newline ();
  print_endline
    "The edges never closed form a shortest-path tree of the floor: after\n\
     the sweep, any robot can navigate optimally back to the dock."
