(* Quickstart: explore an unknown random tree with a team of robots using
   BFDN, and compare the round count with the Theorem 1 guarantee and the
   offline lower bound.

   Run with: dune exec examples/quickstart.exe *)

module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng

let () =
  let rng = Rng.create 2023 in
  let tree = Tree_gen.random_tree ~rng ~n:10_000 () in
  let stats = Bfdn_trees.Tree_stats.compute tree in
  Format.printf "Unknown tree drawn: %a@." Bfdn_trees.Tree_stats.pp stats;
  List.iter
    (fun k ->
      (* The environment hides the tree; the algorithm only sees the
         discovered part. *)
      let env = Env.create tree ~k in
      let bfdn = Bfdn.Bfdn_algo.make env in
      let result = Runner.run (Bfdn.Bfdn_algo.algo bfdn) env in
      let bound =
        Bfdn.Bounds.bfdn ~n:stats.n ~k ~d:stats.depth ~delta:stats.max_degree
      in
      let lower = Bfdn.Bounds.offline_lb ~n:stats.n ~k ~d:stats.depth in
      Printf.printf
        "k=%4d  rounds=%6d  explored=%b  back at root=%b  |  guarantee=%8.0f  \
         offline lb=%6.0f  overhead vs lb=%.2fx\n"
        k result.rounds result.explored result.at_root bound lower
        (float_of_int result.rounds /. lower))
    [ 1; 4; 16; 64; 256 ];
  print_newline ();
  print_endline
    "The guarantee 2n/k + D^2(min(log k, log Delta) + 3) always holds;\n\
     on shallow trees BFDN's rounds track the offline optimum max(2n/k, 2D)."
