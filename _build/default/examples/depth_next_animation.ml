(* Round-by-round rendering of BFDN on a small tree: watch robots fan out
   breadth-first to their anchors, then depth-next through the dangling
   edges, and regroup at the root.

   Run with: dune exec examples/depth_next_animation.exe *)

module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Trace = Bfdn_sim.Trace

let () =
  let tree = Tree_gen.comb ~spine:3 ~tooth_len:2 in
  let env = Env.create tree ~k:3 in
  let state = Bfdn.Bfdn_algo.make env in
  print_endline "BFDN with 3 robots on a small comb; (+c?) = c dangling edges:\n";
  print_string (Trace.render_frame env);
  let trace = Trace.create () in
  Trace.record trace env;
  let on_round env =
    Trace.recorder trace env;
    print_newline ();
    print_string (Trace.render_frame env)
  in
  let r = Runner.run ~on_round (Bfdn.Bfdn_algo.algo state) env in
  Printf.printf
    "\nDone: %d nodes explored in %d rounds, everyone back at the root.\n"
    (Bfdn_sim.Partial_tree.num_explored (Env.view env))
    r.rounds;
  Printf.printf "Reanchor calls per depth:";
  for d = 0 to Env.oracle_depth env do
    Printf.printf " d%d:%d" d (Bfdn.Bfdn_algo.reanchors_at_depth state d)
  done;
  print_newline ();
  print_newline ();
  (* The same wave on a larger instance, as a depth-occupancy heat map. *)
  let tree = Tree_gen.comb ~spine:30 ~tooth_len:2 in
  let env = Env.create tree ~k:24 in
  let state = Bfdn.Bfdn_algo.make env in
  let trace = Trace.create () in
  Trace.record trace env;
  ignore (Runner.run ~on_round:(Trace.recorder trace) (Bfdn.Bfdn_algo.algo state) env);
  print_endline "The breadth-first wave on a 30x2 comb with 24 robots:";
  print_string (Trace.depth_timeline trace env)
