(* Heterogeneous fleet in continuous time (Remark 8's relaxation): a few
   fast scouts and a crowd of slow carriers explore together. Moves take
   1/speed time units; decisions are event-driven.

   Run with: dune exec examples/heterogeneous_fleet.exe *)

module Aenv = Bfdn_sim.Async_env
module Tree_gen = Bfdn_trees.Tree_gen
module Trace = Bfdn_sim.Trace
module Rng = Bfdn_util.Rng

let sweep tree name speeds =
  let k = Array.length speeds in
  let env = Aenv.create ~speeds tree ~k in
  let t = Bfdn.Bfdn_async.make env in
  Aenv.run (Bfdn.Bfdn_async.decide t) env;
  let total_speed = Array.fold_left ( +. ) 0.0 speeds in
  let work_lb = 2.0 *. float_of_int (Bfdn_trees.Tree.n tree - 1) /. total_speed in
  Printf.printf
    "%-28s k=%-3d Σspeed=%5.1f  makespan=%8.1f  work-lb=%7.1f  efficiency=%3.0f%%  home=%b\n"
    name k total_speed (Aenv.makespan env) work_lb
    (100.0 *. work_lb /. Aenv.makespan env)
    (Aenv.all_at_root env)

let () =
  let tree = Tree_gen.random_tree ~rng:(Rng.create 77) ~n:8000 () in
  let stats = Bfdn_trees.Tree_stats.compute tree in
  Format.printf "Continuous-time exploration of %a@.@." Bfdn_trees.Tree_stats.pp stats;
  sweep tree "16 robots at speed 1" (Array.make 16 1.0);
  sweep tree "8 at speed 2 (same budget)" (Array.make 8 2.0);
  sweep tree "32 at speed 0.5 (same)" (Array.make 32 0.5);
  sweep tree "2 scouts 4x + 14 at 1x" (Array.init 16 (fun i -> if i < 2 then 4.0 else 1.0));
  sweep tree "15 at 1x + 1 straggler .05x"
    (Array.init 16 (fun i -> if i = 15 then 0.05 else 1.0));
  print_newline ();
  print_endline
    "Same total speed budget: few-and-fast beats many-and-slow (less anchor\n\
     travel is wasted), and a single straggler barely hurts — BFDN never\n\
     waits for anyone: slow robots simply contribute fewer subtrees."
