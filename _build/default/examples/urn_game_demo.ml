(* The balls-in-urns game of Section 3, played move by move.

   k workers (balls) sit on k tasks (urns). The adversary finishes tasks
   by pulling workers off them; the player re-places each freed worker on
   the least-crowded untouched task. Theorem 3: the game — and hence the
   number of worker reassignments — ends within k log k + 2k steps.

   Run with: dune exec examples/urn_game_demo.exe *)

module U = Bfdn.Urn_game

let () =
  let k = 8 in
  let b = U.create ~delta:k ~k in
  Printf.printf "k = %d urns, optimal adversary vs least-loaded player.\n\n" k;
  Printf.printf "start:\n%s\n" (U.render b);
  let continue = ref true in
  while !continue do
    match U.step b U.adversary_greedy U.player_least_loaded with
    | None -> continue := false
    | Some (a, dest) ->
        Printf.printf "step %d: adversary drains urn %d, player refills urn %d\n%s\n"
          (U.steps b) a dest (U.render b)
  done;
  Printf.printf "game over after %d steps.\n" (U.steps b);
  Printf.printf "exact optimum (R(N,u) dynamic program): %d\n" (U.dp_value ~delta:k ~k);
  Printf.printf "Theorem 3 budget                      : %.0f\n" (U.bound ~delta:k ~k)
