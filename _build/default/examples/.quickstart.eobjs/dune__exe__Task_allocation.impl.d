examples/task_allocation.ml: Array Bfdn_alloc Bfdn_util List Printf
