examples/urn_game_demo.mli:
