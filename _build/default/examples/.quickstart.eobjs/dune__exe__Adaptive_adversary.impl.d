examples/adaptive_adversary.ml: Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees List Printf
