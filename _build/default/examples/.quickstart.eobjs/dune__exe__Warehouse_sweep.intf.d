examples/warehouse_sweep.mli:
