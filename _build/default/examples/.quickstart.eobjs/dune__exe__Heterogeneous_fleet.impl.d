examples/heterogeneous_fleet.ml: Array Bfdn Bfdn_sim Bfdn_trees Bfdn_util Format Printf
