examples/quickstart.mli:
