examples/task_allocation.mli:
