examples/breakdown_resilience.ml: Bfdn Bfdn_sim Bfdn_trees Bfdn_util Format Hashtbl List Printf
