examples/depth_next_animation.ml: Bfdn Bfdn_sim Bfdn_trees Printf
