examples/breakdown_resilience.mli:
