examples/urn_game_demo.ml: Bfdn Printf
