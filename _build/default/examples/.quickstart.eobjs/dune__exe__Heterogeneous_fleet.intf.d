examples/heterogeneous_fleet.mli:
