examples/warehouse_sweep.ml: Bfdn Bfdn_graphs Bfdn_util List Printf
