examples/quickstart.ml: Bfdn Bfdn_sim Bfdn_trees Bfdn_util Format List Printf
