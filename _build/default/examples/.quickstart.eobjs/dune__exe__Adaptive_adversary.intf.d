examples/adaptive_adversary.mli:
