examples/depth_next_animation.mli:
