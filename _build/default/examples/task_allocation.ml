(* Online task allocation: k build workers must drain k CI queues whose
   lengths are unknown in advance (the Section 3 interpretation of the
   balls-in-urns game).

   Rule under test: when a worker goes idle, send it to the unfinished
   queue with the fewest workers. Theorem 3 promises at most
   k log k + 2k reassignments — about (log k + 2) times the unavoidable k
   — no matter how the work is distributed.

   Run with: dune exec examples/task_allocation.exe *)

module Alloc = Bfdn_alloc.Alloc
module Rng = Bfdn_util.Rng

let profile_name = [ "balanced"; "zipf-ish"; "one monster queue"; "random" ]

let profiles ~k ~total rng =
  [
    Array.make k (total / k);
    Alloc.adversarial_lengths ~k ~total;
    Array.init k (fun i -> if i = 0 then total else 0);
    Alloc.random_lengths ~rng ~k ~total;
  ]

let () =
  let k = 128 in
  let total = 64 * k in
  let rng = Rng.create 11 in
  Printf.printf "%d workers, %d queues, %d total jobs; switch budget (Theorem 3): %.0f\n\n"
    k k total (Alloc.switches_bound ~k);
  List.iter2
    (fun name lengths ->
      Printf.printf "--- workload: %s ---\n" name;
      List.iter
        (fun (policy_name, policy) ->
          let r = Alloc.simulate ~policy ~lengths () in
          Printf.printf
            "  %-22s makespan=%4d rounds  switches=%4d  wasted worker-rounds=%5d\n"
            policy_name r.rounds r.switches r.wasted_work)
        [
          ("least-crowded (paper)", Alloc.Least_crowded);
          ("most-crowded", Alloc.Most_crowded);
          ("random queue", Alloc.Random_task (Rng.create 3));
        ])
    profile_name
    (profiles ~k ~total rng);
  print_newline ();
  Printf.printf
    "Optimal offline makespan is total/k = %d rounds; least-crowded stays\n\
     within a round or two of it while never exceeding the switch budget.\n"
    (total / k)
