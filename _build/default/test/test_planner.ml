(* Tests for the write-read / restricted-memory BFDN (Section 4.1,
   Algorithm 2, Proposition 6). *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Bfdn_planner = Bfdn.Bfdn_planner
module Bounds = Bfdn.Bounds
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_planner tree k =
  let env = Env.create tree ~k in
  let t = Bfdn_planner.make env in
  let r = Runner.run (Bfdn_planner.algo t) env in
  (env, t, r)

let random_tree seed n =
  let r = Rng.create seed in
  Tree.of_parents (Array.init n (fun v -> if v = 0 then -1 else Rng.int r v))

let test_explores_all_families () =
  let rng = Rng.create 4 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:350 ~depth_hint:10 in
      List.iter
        (fun k ->
          let _, _, r = run_planner tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          checkb (Printf.sprintf "%s k=%d no limit" fam k) false r.hit_round_limit)
        [ 1; 5; 19 ])
    Tree_gen.families

let test_single_node () =
  let _, _, r = run_planner (Tree.of_parents [| -1 |]) 3 in
  checkb "explored" true r.explored;
  checki "rounds" 0 r.rounds

let prop_proposition6_bound =
  QCheck.Test.make ~name:"Proposition 6 bound on random trees" ~count:50
    QCheck.(pair (int_range 2 250) (int_range 1 24))
    (fun (n, k) ->
      let tree = random_tree (n * 17 + k) n in
      let env, _, r = run_planner tree k in
      let bound =
        Bounds.bfdn_writeread ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
          ~delta:(Env.oracle_max_degree env)
      in
      r.explored && r.at_root && float_of_int r.rounds <= bound)

let prop_proposition6_families =
  QCheck.Test.make ~name:"Proposition 6 bound on all families" ~count:25
    QCheck.(triple (int_range 2 300) (int_range 1 16) (int_range 1 12))
    (fun (n, k, d) ->
      List.for_all
        (fun fam ->
          let tree = Tree_gen.of_family fam ~rng:(Rng.create (n + k)) ~n ~depth_hint:d in
          let env, _, r = run_planner tree k in
          let bound =
            Bounds.bfdn_writeread ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
              ~delta:(Env.oracle_max_degree env)
          in
          r.explored && r.at_root && float_of_int r.rounds <= bound)
        Tree_gen.families)

let test_working_depth_advances () =
  (* On a path with several robots the probing robots chase the explorer
     down: the planner's working depth must advance past the first levels
     (a single DFS excursion finishes whole subtrees, so it need not reach
     the bottom). *)
  let tree = Tree_gen.path 20 in
  let _, t, r = run_planner tree 3 in
  checkb "explored" true r.explored;
  checkb "depth advanced" true (Bfdn_planner.working_depth t >= 2);
  checkb "depth within D" true (Bfdn_planner.working_depth t <= 20)

let test_assignment_accounting () =
  let tree = random_tree 8 300 in
  let _, t, r = run_planner tree 7 in
  checkb "explored" true r.explored;
  let per_depth = ref 0 in
  for d = 0 to 300 do
    per_depth := !per_depth + Bfdn_planner.assignments_at_depth t d
  done;
  checki "totals agree" (Bfdn_planner.assignments_total t) !per_depth;
  checkb "assignments happened" true (Bfdn_planner.assignments_total t > 0)

(* The write-read model explores every edge exactly twice in terms of edge
   events, like the complete-communication version. *)
let test_edge_events_complete () =
  let tree = random_tree 15 250 in
  let env, _, r = run_planner tree 6 in
  checkb "explored" true r.explored;
  checki "edge events" (2 * (Tree.n tree - 1)) (Env.edge_events env)

(* Comparable magnitude to complete-communication BFDN: the restricted
   model is at most a small factor slower on benign instances. *)
let test_not_catastrophically_slower () =
  let tree = random_tree 21 400 in
  let env1 = Env.create tree ~k:8 in
  let t1 = Bfdn.Bfdn_algo.make env1 in
  let r1 = Runner.run (Bfdn.Bfdn_algo.algo t1) env1 in
  let _, _, r2 = run_planner tree 8 in
  checkb "within 4x of complete-comm" true (r2.rounds <= 4 * r1.rounds + 50)

(* Section 4.1's memory claim: robots operate with Delta + D log Delta
   bits (port stack + finished-port set). *)
let test_memory_within_claim () =
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng:(Rng.create 31) ~n:400 ~depth_hint:12 in
      let env, t, r = run_planner tree 9 in
      checkb (fam ^ " explored") true r.explored;
      let d = Env.oracle_depth env and delta = Env.oracle_max_degree env in
      checkb (fam ^ " stack within depth") true (Bfdn_planner.max_stack_length t <= d);
      let claim = delta + ((d + 1) * Bfdn_util.Mathx.ceil_log2 (max 2 delta)) in
      checkb (fam ^ " memory within Delta + D log Delta") true
        (Bfdn_planner.memory_bits_used t <= claim))
    [ "random"; "star"; "comb"; "broom"; "caterpillar" ]

(* The write-read analogue of Lemma 2: per-depth assignments stay within
   the urn-game budget (+k slack for the final sweep). *)
let test_assignments_per_depth_bounded () =
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng:(Rng.create 37) ~n:500 ~depth_hint:10 in
      let env, t, r = run_planner tree 12 in
      checkb (fam ^ " explored") true r.explored;
      let delta = Env.oracle_max_degree env in
      let cap = Bfdn.Bounds.urn_game ~delta ~k:12 +. 12.0 in
      for d = 1 to Env.oracle_depth env do
        checkb
          (Printf.sprintf "%s assignments at depth %d bounded" fam d)
          true
          (float_of_int (Bfdn_planner.assignments_at_depth t d) <= cap)
      done)
    [ "random"; "comb"; "caterpillar"; "trap" ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "planner",
    [
      tc "explores all families" test_explores_all_families;
      tc "single node" test_single_node;
      qc prop_proposition6_bound;
      qc prop_proposition6_families;
      tc "working depth advances" test_working_depth_advances;
      tc "assignment accounting" test_assignment_accounting;
      tc "edge events complete" test_edge_events_complete;
      tc "not catastrophically slower" test_not_catastrophically_slower;
      tc "memory within Section 4.1 claim" test_memory_within_claim;
      tc "per-depth assignments bounded" test_assignments_per_depth_bounded;
    ] )
