(* Tests for the online resource-allocation application (Section 3's
   interpretation of the urn game). *)

module Alloc = Bfdn_alloc.Alloc
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_validation () =
  checkb "empty" true
    (try
       ignore (Alloc.simulate ~lengths:[||] ());
       false
     with Invalid_argument _ -> true);
  checkb "negative" true
    (try
       ignore (Alloc.simulate ~lengths:[| 1; -2 |] ());
       false
     with Invalid_argument _ -> true)

let test_uniform_tasks_no_switches () =
  (* Equal tasks with one worker each finish simultaneously: no switch. *)
  let r = Alloc.simulate ~lengths:(Array.make 8 10) () in
  checki "switches" 0 r.switches;
  checki "rounds" 10 r.rounds;
  checki "no waste" 0 r.wasted_work

let test_zero_length_tasks () =
  let r = Alloc.simulate ~lengths:[| 0; 0; 0; 12 |] () in
  checkb "finishes" true (r.rounds > 0);
  (* three idle workers redeploy onto the only real task *)
  checki "switches" 3 r.switches;
  checki "rounds" 3 r.rounds

let test_single_task () =
  let r = Alloc.simulate ~lengths:[| 17 |] () in
  checki "rounds" 17 r.rounds;
  checki "switches" 0 r.switches

let test_makespan_lower_bound () =
  let rng = Rng.create 6 in
  let lengths = Alloc.random_lengths ~rng ~k:16 ~total:1600 in
  let r = Alloc.simulate ~lengths () in
  checkb "makespan >= total/k" true (r.rounds >= 1600 / 16)

let prop_switch_bound_random =
  QCheck.Test.make ~name:"switch bound on random compositions" ~count:150
    QCheck.(pair (int_range 1 200) (int_range 0 5000))
    (fun (k, total) ->
      let lengths = Alloc.random_lengths ~rng:(Rng.create (k + total)) ~k ~total in
      let r = Alloc.simulate ~lengths () in
      float_of_int r.switches <= Alloc.switches_bound ~k)

let prop_switch_bound_adversarial =
  QCheck.Test.make ~name:"switch bound on geometric profiles" ~count:100
    QCheck.(pair (int_range 1 300) (int_range 0 10000))
    (fun (k, total) ->
      let lengths = Alloc.adversarial_lengths ~k ~total in
      let r = Alloc.simulate ~lengths () in
      float_of_int r.switches <= Alloc.switches_bound ~k)

let prop_all_work_done =
  QCheck.Test.make ~name:"makespan between total/k and total" ~count:100
    QCheck.(pair (int_range 1 50) (int_range 1 2000))
    (fun (k, total) ->
      let lengths = Alloc.random_lengths ~rng:(Rng.create (k * 7 + total)) ~k ~total in
      let r = Alloc.simulate ~lengths () in
      r.rounds >= Bfdn_util.Mathx.ceil_div total k && r.rounds <= total)

let test_least_crowded_beats_most_crowded () =
  let lengths = Alloc.adversarial_lengths ~k:64 ~total:6400 in
  let good = Alloc.simulate ~policy:Alloc.Least_crowded ~lengths () in
  let bad = Alloc.simulate ~policy:Alloc.Most_crowded ~lengths () in
  checkb "least-crowded is no slower" true (good.rounds <= bad.rounds)

let test_random_policy_terminates () =
  let lengths = Alloc.adversarial_lengths ~k:32 ~total:3200 in
  let r = Alloc.simulate ~policy:(Alloc.Random_task (Rng.create 3)) ~lengths () in
  checkb "finishes" true (r.rounds > 0)

let test_lengths_generators () =
  let rng = Rng.create 10 in
  let rand = Alloc.random_lengths ~rng ~k:10 ~total:100 in
  checki "random total" 100 (Array.fold_left ( + ) 0 rand);
  let adv = Alloc.adversarial_lengths ~k:10 ~total:100 in
  checki "adversarial total" 100 (Array.fold_left ( + ) 0 adv);
  checkb "geometric head" true (adv.(0) = 50)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "alloc",
    [
      tc "validation" test_validation;
      tc "uniform tasks no switches" test_uniform_tasks_no_switches;
      tc "zero-length tasks" test_zero_length_tasks;
      tc "single task" test_single_task;
      tc "makespan lower bound" test_makespan_lower_bound;
      qc prop_switch_bound_random;
      qc prop_switch_bound_adversarial;
      qc prop_all_work_done;
      tc "least-crowded beats most-crowded" test_least_crowded_beats_most_crowded;
      tc "random policy terminates" test_random_policy_terminates;
      tc "lengths generators" test_lengths_generators;
    ] )
