(* Tests for the guarantee formulas and the Figure 1 region machinery. *)

module Bounds = Bfdn.Bounds
module Regions = Bfdn.Regions

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let test_offline_lb () =
  checkf "edge regime" 200.0 (Bounds.offline_lb ~n:1000 ~k:10 ~d:5);
  checkf "depth regime" 400.0 (Bounds.offline_lb ~n:1000 ~k:10 ~d:200)

let test_dfs () = checkf "dfs" 198.0 (Bounds.dfs ~n:100)

let test_bfdn_formula () =
  (* 2n/k + d^2 (min(log k, log delta) + 3) *)
  let v = Bounds.bfdn ~n:1000 ~k:10 ~d:5 ~delta:3 in
  checkf "bfdn" ((2000.0 /. 10.0) +. (25.0 *. (log 3.0 +. 3.0))) v

let test_bfdn_k1_exact () =
  (* With one robot the additive term is 3 d^2 (log 1 = 0). *)
  checkf "k=1" (2.0 *. 1000.0 +. (4.0 *. 3.0)) (Bounds.bfdn ~n:1000 ~k:1 ~d:2 ~delta:1)

let test_bfdn_monotone () =
  let v k = Bounds.bfdn ~n:100000 ~k ~d:10 ~delta:1000 in
  checkb "more robots help" true (v 2 > v 4 && v 4 > v 16)

let test_breakdown_no_delta () =
  (* the break-down variant must not benefit from small delta *)
  let a = Bounds.bfdn ~n:1000 ~k:100 ~d:10 ~delta:2 in
  let b = Bounds.bfdn_breakdown ~n:1000 ~k:100 ~d:10 in
  checkb "breakdown >= bfdn" true (b >= a)

let test_bfdn_rec_ell1_close_to_bfdn () =
  (* Theorem 10 at ell = 1 is the Theorem 1 shape up to a factor ~4. *)
  let a = Bounds.bfdn ~n:50000 ~k:64 ~d:20 ~delta:64 in
  let b = Bounds.bfdn_rec ~n:50000 ~k:64 ~d:20 ~delta:64 ~ell:1 in
  checkb "within factor 8" true (b <= 8.0 *. a && a <= b)

let test_bfdn_rec_best () =
  let v, ell = Bounds.bfdn_rec_best ~n:100000 ~k:4096 ~d:300 ~delta:4096 in
  checkb "admissible ell" true (ell >= 1);
  List.iter
    (fun l ->
      checkb "is the minimum" true
        (v <= Bounds.bfdn_rec ~n:100000 ~k:4096 ~d:300 ~delta:4096 ~ell:l))
    [ 1; 2; 3 ]

let test_urn_game_formula () =
  checkf "urn" ((8.0 *. log 8.0) +. 16.0) (Bounds.urn_game ~delta:100 ~k:8);
  checkf "urn delta-limited" ((8.0 *. log 3.0) +. 16.0) (Bounds.urn_game ~delta:3 ~k:8)

let test_lower_bound_k_eq_n () =
  checkf "d^2/16" 25.0 (Bounds.lower_bound_k_eq_n ~d:20)

(* ---- Regions ---- *)

let test_winner_requires_d_lt_n () =
  checkb "d >= n rejected" true
    (try
       ignore (Regions.winner ~n:5 ~k:4 ~d:5 ~delta:3);
       false
     with Invalid_argument _ -> true)

(* The log-space formulas used by the map agree with the direct formulas
   at integer scales. *)
let prop_logspace_matches_bounds =
  QCheck.Test.make ~name:"region argmin consistent with Bounds formulas" ~count:200
    QCheck.(triple (int_range 10 2_000_000) (int_range 2 4096) (int_range 1 1000))
    (fun (n, k, d) ->
      QCheck.assume (d < n);
      let _, v = Regions.winner ~n ~k ~d ~delta:k in
      let direct =
        List.fold_left Float.min infinity
          [
            Bounds.cte ~n ~k ~d;
            Bounds.yostar ~n ~k ~d;
            Bounds.bfdn ~n ~k ~d ~delta:k;
            fst (Bounds.bfdn_rec_best ~n ~k ~d ~delta:k);
          ]
      in
      Float.abs (v -. direct) /. direct < 0.05)

let test_winner_shallow_wide_is_bfdn () =
  (* Shallow, very wide: BFDN's 2n/k term dominates everyone. *)
  let a, _ = Regions.winner ~n:10_000_000 ~k:256 ~d:4 ~delta:256 in
  checkb "bfdn wins" true (a = Regions.Bfdn)

let test_winner_deep_is_cte () =
  (* Nearly path-like: CTE's n/log k + D is unbeatable among the four. *)
  let a, _ = Regions.winner ~n:1000 ~k:256 ~d:900 ~delta:256 in
  checkb "cte wins" true (a = Regions.Cte)

let test_analytic_boundaries () =
  checkb "bfdn beats cte on wide" true (Regions.bfdn_beats_cte ~n:1_000_000 ~k:64 ~d:10);
  checkb "cte beats bfdn on deep" false (Regions.bfdn_beats_cte ~n:1000 ~k:64 ~d:100);
  checkb "bfdn beats yostar" true (Regions.bfdn_beats_yostar ~n:1_000_000 ~k:8 ~d:10);
  checkb "bfdn_rec boundary" true (Regions.bfdn_rec_beats_cte ~n:100_000_000 ~k:64 ~d:10 ~ell:2)

let test_map_analytic () =
  let m = Regions.compute_map ~rows:16 ~cols:40 ~k:1024 () in
  checkb "has BFDN region" true
    (Array.exists (fun row -> Array.exists (fun c -> c = Regions.Bfdn) row) m.Regions.cells);
  checkb "has CTE region" true
    (Array.exists (fun row -> Array.exists (fun c -> c = Regions.Cte) row) m.Regions.cells);
  let s = Regions.render m in
  checkb "renders" true (String.length s > 100)

let test_map_argmin_agreement () =
  let m = Regions.compute_map ~rows:20 ~cols:50 ~mode:Regions.Argmin ~k:256 () in
  let agreement = Regions.agreement_with_analytic m in
  checkb "argmin matches Appendix A on the CTE/BFDN boundary" true (agreement >= 0.9)

let test_names () =
  checkb "names" true
    (Regions.name Regions.Cte = "CTE"
    && Regions.name Regions.Bfdn = "BFDN"
    && Regions.name Regions.Yostar = "Yo*"
    && Regions.name Regions.Bfdn_rec = "BFDN_l")

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "bounds",
    [
      tc "offline lb" test_offline_lb;
      tc "dfs" test_dfs;
      tc "bfdn formula" test_bfdn_formula;
      tc "bfdn k=1" test_bfdn_k1_exact;
      tc "bfdn monotone in k" test_bfdn_monotone;
      tc "breakdown ignores delta" test_breakdown_no_delta;
      tc "bfdn_rec ell=1 close to bfdn" test_bfdn_rec_ell1_close_to_bfdn;
      tc "bfdn_rec best" test_bfdn_rec_best;
      tc "urn game formula" test_urn_game_formula;
      tc "lower bound k=n" test_lower_bound_k_eq_n;
      tc "winner requires d<n" test_winner_requires_d_lt_n;
      qc prop_logspace_matches_bounds;
      tc "shallow wide is bfdn" test_winner_shallow_wide_is_bfdn;
      tc "deep is cte" test_winner_deep_is_cte;
      tc "analytic boundaries" test_analytic_boundaries;
      tc "map analytic regions" test_map_analytic;
      tc "map argmin agreement" test_map_argmin_agreement;
      tc "algorithm names" test_names;
    ] )
