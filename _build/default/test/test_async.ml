(* Tests for the continuous-time model (Remark 8's relaxation): the event
   queue, the async environment, and async BFDN. *)

module Pqueue = Bfdn_util.Pqueue
module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Aenv = Bfdn_sim.Async_env
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- priority queue ---- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, v) -> Pqueue.push q p v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  checkb "a first" true (Pqueue.pop q = Some (1.0, "a"));
  checkb "b second" true (Pqueue.pop q = Some (2.0, "b"));
  checkb "c third" true (Pqueue.pop q = Some (3.0, "c"));
  checkb "empty" true (Pqueue.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 5.0 v) [ 1; 2; 3; 4 ];
  checkb "fifo on equal priority" true
    (List.map (fun _ -> snd (Option.get (Pqueue.pop q))) [ (); (); (); () ] = [ 1; 2; 3; 4 ])

let test_pqueue_peek () =
  let q = Pqueue.create () in
  Pqueue.push q 2.0 "x";
  checkb "peek" true (Pqueue.peek q = Some (2.0, "x"));
  checki "length" 1 (Pqueue.length q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing priority" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_range 0.0 100.0))
    (fun prios ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) prios;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (p, _) -> p >= last && drain p
      in
      drain neg_infinity)

(* ---- async env mechanics ---- *)

let small () = Tree.of_parents [| -1; 0; 0; 1; 1; 2 |]

let test_async_validation () =
  checkb "bad speeds arity" true
    (try
       ignore (Aenv.create ~speeds:[| 1.0 |] (small ()) ~k:2);
       false
     with Invalid_argument _ -> true);
  checkb "non-positive speed" true
    (try
       ignore (Aenv.create ~speeds:[| 1.0; 0.0 |] (small ()) ~k:2);
       false
     with Invalid_argument _ -> true)

let run_async ?speeds tree k =
  let env = Aenv.create ?speeds tree ~k in
  let t = Bfdn.Bfdn_async.make env in
  Aenv.run (Bfdn.Bfdn_async.decide t) env;
  env

let test_async_explores_families () =
  let rng = Rng.create 12 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:300 ~depth_hint:10 in
      List.iter
        (fun k ->
          let env = run_async tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true (Aenv.fully_explored env);
          checkb (Printf.sprintf "%s k=%d at root" fam k) true (Aenv.all_at_root env))
        [ 1; 5; 17 ])
    Tree_gen.families

(* With unit speeds the event-driven run closely tracks the synchronous
   one (decisions interleave differently at equal timestamps, so equality
   is approximate: exact on the large instances of the bench, within a
   small band on tiny ones). Cross-validates the two simulators. *)
let prop_unit_speeds_match_sync =
  QCheck.Test.make ~name:"unit-speed async tracks synchronous BFDN" ~count:40
    QCheck.(pair (int_range 2 200) (int_range 1 16))
    (fun (n, k) ->
      let r = Rng.create ((n * 53) + k) in
      let tree = Tree.of_parents (Array.init n (fun v -> if v = 0 then -1 else Rng.int r v)) in
      let env = run_async tree k in
      let senv = Bfdn_sim.Env.create tree ~k in
      let st = Bfdn.Bfdn_algo.make senv in
      let sr = Bfdn_sim.Runner.run (Bfdn.Bfdn_algo.algo st) senv in
      let sync = float_of_int sr.rounds in
      Aenv.fully_explored env && Aenv.all_at_root env
      && Aenv.makespan env <= (1.6 *. sync) +. 5.0
      && Aenv.makespan env >= (0.5 *. sync) -. 5.0)

let test_async_heterogeneous_completes () =
  let tree = Tree_gen.of_family "comb" ~rng:(Rng.create 3) ~n:400 ~depth_hint:12 in
  let speeds = Array.init 8 (fun i -> if i < 4 then 1.0 else 0.25) in
  let env = run_async ~speeds tree 8 in
  checkb "explored" true (Aenv.fully_explored env);
  checkb "everyone home" true (Aenv.all_at_root env);
  Bfdn_sim.Partial_tree.check_invariants (Aenv.view env)

let test_faster_fleet_not_slower () =
  let tree = Tree_gen.of_family "random" ~rng:(Rng.create 9) ~n:500 ~depth_hint:10 in
  let slow = run_async ~speeds:(Array.make 6 0.5) tree 6 in
  let fast = run_async ~speeds:(Array.make 6 1.0) tree 6 in
  checkb "doubling every speed halves the makespan" true
    (Float.abs ((Aenv.makespan slow /. 2.0) -. Aenv.makespan fast) <= 1.0)

let test_work_conservation () =
  (* Total distance over robots is the same as the synchronous run's move
     count on unit speeds: each edge still crossed twice in aggregate plus
     anchor travel. *)
  let tree = Tree_gen.of_family "random" ~rng:(Rng.create 15) ~n:300 ~depth_hint:8 in
  let env = run_async tree 5 in
  let total = ref 0 in
  for i = 0 to 4 do
    total := !total + Aenv.distance_travelled env i
  done;
  checkb "at least 2(n-1) edge crossings" true (!total >= 2 * (Tree.n tree - 1))

let test_makespan_lower_bound () =
  (* No fleet beats the work bound 2(n-1)/sum(speeds). *)
  let tree = Tree_gen.star 201 in
  let speeds = [| 2.0; 1.0; 1.0 |] in
  let env = run_async ~speeds tree 3 in
  let work_lb = 2.0 *. 200.0 /. 4.0 in
  checkb "work lower bound respected" true (Aenv.makespan env >= work_lb)

let test_single_node_async () =
  let env = run_async (Tree.of_parents [| -1 |]) 3 in
  checkf "zero makespan" 0.0 (Aenv.makespan env);
  checkb "explored" true (Aenv.fully_explored env)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "async",
    [
      tc "pqueue order" test_pqueue_order;
      tc "pqueue fifo ties" test_pqueue_fifo_ties;
      tc "pqueue peek" test_pqueue_peek;
      qc prop_pqueue_sorted;
      tc "async validation" test_async_validation;
      tc "async explores all families" test_async_explores_families;
      qc prop_unit_speeds_match_sync;
      tc "heterogeneous fleet completes" test_async_heterogeneous_completes;
      tc "faster fleet not slower" test_faster_fleet_not_slower;
      tc "work conservation" test_work_conservation;
      tc "makespan work lower bound" test_makespan_lower_bound;
      tc "single node" test_single_node_async;
    ] )
