(* Tests for the Section 3 balls-in-urns game: Theorem 3, the R(N, u)
   dynamic program, strategy behaviour, and custom initial conditions. *)

module Urn_game = Bfdn.Urn_game
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let play_fresh ~delta ~k adversary player =
  Urn_game.play (Urn_game.create ~delta ~k) adversary player

(* ---- board mechanics ---- *)

let test_board_initial () =
  let b = Urn_game.create ~delta:4 ~k:5 in
  checki "k" 5 (Urn_game.k b);
  checki "delta" 4 (Urn_game.delta b);
  checki "virgin count" 5 (Urn_game.virgin_count b);
  checki "virgin balls" 5 (Urn_game.virgin_balls b);
  checkb "not finished (delta > 1)" false (Urn_game.finished b);
  checki "loads" 1 (Urn_game.load b 3)

let test_board_delta_one_finished_immediately () =
  let b = Urn_game.create ~delta:1 ~k:4 in
  checkb "finished at start" true (Urn_game.finished b);
  checki "zero steps" 0 (Urn_game.play b Urn_game.adversary_greedy Urn_game.player_least_loaded)

let test_custom_board () =
  let b =
    Urn_game.create_custom ~delta:3 ~loads:[| 5; 1; 1; 1 |]
      ~virgin:[| false; true; true; true |]
  in
  checki "virgin count" 3 (Urn_game.virgin_count b);
  checki "virgin balls" 3 (Urn_game.virgin_balls b)

let test_custom_board_validation () =
  checkb "negative load" true
    (try
       ignore (Urn_game.create_custom ~delta:2 ~loads:[| -1 |] ~virgin:[| true |]);
       false
     with Invalid_argument _ -> true);
  checkb "length mismatch" true
    (try
       ignore (Urn_game.create_custom ~delta:2 ~loads:[| 1; 1 |] ~virgin:[| true |]);
       false
     with Invalid_argument _ -> true)

(* ---- Theorem 3 ---- *)

let test_theorem3_greedy_adversary () =
  List.iter
    (fun (k, delta) ->
      let steps = play_fresh ~delta ~k Urn_game.adversary_greedy Urn_game.player_least_loaded in
      checkb
        (Printf.sprintf "k=%d delta=%d within bound" k delta)
        true
        (float_of_int steps <= Urn_game.bound ~delta ~k))
    [ (1, 1); (2, 2); (3, 3); (8, 8); (64, 64); (500, 500); (100, 7); (7, 100); (256, 2) ]

let prop_theorem3_random_adversary =
  QCheck.Test.make ~name:"Theorem 3 bound under random adversaries" ~count:200
    QCheck.(triple (int_range 1 100) (int_range 1 100) (int_range 0 10000))
    (fun (k, delta, seed) ->
      let steps =
        play_fresh ~delta ~k (Urn_game.adversary_random (Rng.create seed))
          Urn_game.player_least_loaded
      in
      float_of_int steps <= Urn_game.bound ~delta ~k)

let prop_theorem3_fresh_first_adversary =
  QCheck.Test.make ~name:"Theorem 3 bound under the fresh-first adversary" ~count:100
    QCheck.(pair (int_range 1 200) (int_range 1 200))
    (fun (k, delta) ->
      let steps = play_fresh ~delta ~k Urn_game.adversary_fresh_first Urn_game.player_least_loaded in
      float_of_int steps <= Urn_game.bound ~delta ~k)

(* The custom initial condition of Section 3.2 (one non-virgin urn with
   k - u balls, u virgin singleton urns) also stays within the bound. *)
let prop_theorem3_custom_initial =
  QCheck.Test.make ~name:"Theorem 3 bound from Lemma 2's initial condition" ~count:100
    QCheck.(pair (int_range 2 80) (int_range 1 80))
    (fun (k, delta) ->
      let u = max 1 (k / 2) in
      let loads = Array.init (u + 1) (fun i -> if i = 0 then k - u else 1) in
      let virgin = Array.init (u + 1) (fun i -> i > 0) in
      let b = Urn_game.create_custom ~delta ~loads ~virgin in
      let steps = Urn_game.play b Urn_game.adversary_greedy Urn_game.player_least_loaded in
      float_of_int steps <= Urn_game.bound ~delta ~k)

(* ---- exact value: the R(N, u) dynamic program ---- *)

let test_dp_matches_greedy_play () =
  (* The greedy adversary realizes the DP-optimal value (Lemma 4: option
     (a) is always preferred; when forced, burn the fullest urn). *)
  List.iter
    (fun (k, delta) ->
      let dp = Urn_game.dp_value ~delta ~k in
      let played = play_fresh ~delta ~k Urn_game.adversary_greedy Urn_game.player_least_loaded in
      checki (Printf.sprintf "k=%d delta=%d dp=play" k delta) dp played)
    [ (1, 1); (2, 2); (3, 2); (4, 4); (8, 8); (16, 16); (64, 64); (16, 3); (32, 1000) ]

let prop_dp_within_bound =
  QCheck.Test.make ~name:"DP value within the Theorem 3 bound" ~count:200
    QCheck.(pair (int_range 1 150) (int_range 1 150))
    (fun (k, delta) ->
      float_of_int (Urn_game.dp_value ~delta ~k) <= Urn_game.bound ~delta ~k)

let prop_dp_dominates_any_adversary =
  QCheck.Test.make ~name:"no adversary outlasts the DP value" ~count:100
    QCheck.(triple (int_range 1 40) (int_range 1 40) (int_range 0 1000))
    (fun (k, delta, seed) ->
      let dp = Urn_game.dp_value ~delta ~k in
      let played =
        play_fresh ~delta ~k (Urn_game.adversary_random (Rng.create seed))
          Urn_game.player_least_loaded
      in
      played <= dp)

let test_dp_monotone_in_delta () =
  let v d = Urn_game.dp_value ~delta:d ~k:32 in
  checkb "monotone" true (v 1 <= v 2 && v 2 <= v 4 && v 4 <= v 16 && v 16 <= v 64);
  checki "saturates at delta > k" (v 33) (v 1000)

let prop_ball_conservation =
  QCheck.Test.make ~name:"total balls conserved through any play" ~count:100
    QCheck.(triple (int_range 1 60) (int_range 1 60) (int_range 0 500))
    (fun (k, delta, seed) ->
      let b = Urn_game.create ~delta ~k in
      ignore
        (Urn_game.play b (Urn_game.adversary_random (Rng.create seed))
           Urn_game.player_least_loaded);
      let total = ref 0 in
      for i = 0 to k - 1 do
        total := !total + Urn_game.load b i
      done;
      !total = k)

let test_step_and_render () =
  let b = Urn_game.create ~delta:4 ~k:4 in
  (match Urn_game.step b Urn_game.adversary_greedy Urn_game.player_least_loaded with
  | Some (a, dest) ->
      checkb "moved a ball" true (a >= 0 && dest >= 0 && a < 4 && dest < 4);
      checki "one step" 1 (Urn_game.steps b)
  | None -> Alcotest.fail "expected a move");
  let s = Urn_game.render b in
  checkb "renders balls" true (String.contains s '*');
  checkb "marks virgins" true (String.contains s 'v')

(* ---- strategy comparisons ---- *)

let test_most_loaded_player_is_worse () =
  (* The anti-strategy loses to the greedy adversary on large boards —
     the least-loaded choice is what the analysis relies on. *)
  let k = 64 and delta = 64 in
  let good = play_fresh ~delta ~k Urn_game.adversary_greedy Urn_game.player_least_loaded in
  let bad =
    try play_fresh ~delta ~k Urn_game.adversary_greedy Urn_game.player_most_loaded
    with Failure _ -> max_int
  in
  checkb "least-loaded no worse" true (good <= bad)

let test_random_player_within_limit () =
  (* A random player may be bad but the game still ends (every step makes
     progress against a finite adversary). *)
  let steps =
    try
      Urn_game.play ~max_steps:100000
        (Urn_game.create ~delta:8 ~k:8)
        Urn_game.adversary_fresh_first
        (Urn_game.player_random (Rng.create 7))
    with Failure _ -> -1
  in
  checkb "terminates or hits cap" true (steps >= 0 || steps = -1)

let test_resigning_adversary () =
  let adversary _ = None in
  let steps = play_fresh ~delta:4 ~k:4 adversary Urn_game.player_least_loaded in
  checki "zero steps" 0 steps

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "urn-game",
    [
      tc "board initial" test_board_initial;
      tc "delta=1 finished immediately" test_board_delta_one_finished_immediately;
      tc "custom board" test_custom_board;
      tc "custom board validation" test_custom_board_validation;
      tc "theorem 3 greedy adversary" test_theorem3_greedy_adversary;
      qc prop_theorem3_random_adversary;
      qc prop_theorem3_fresh_first_adversary;
      qc prop_theorem3_custom_initial;
      tc "dp matches greedy play" test_dp_matches_greedy_play;
      qc prop_dp_within_bound;
      qc prop_dp_dominates_any_adversary;
      qc prop_ball_conservation;
      tc "step and render" test_step_and_render;
      tc "dp monotone in delta" test_dp_monotone_in_delta;
      tc "most-loaded player worse" test_most_loaded_player_is_worse;
      tc "random player terminates" test_random_player_within_limit;
      tc "resigning adversary" test_resigning_adversary;
    ] )
