test/test_async.ml: Alcotest Array Bfdn Bfdn_sim Bfdn_trees Bfdn_util Float Gen List Option Printf QCheck QCheck_alcotest
