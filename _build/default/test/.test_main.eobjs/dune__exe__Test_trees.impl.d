test/test_trees.ml: Alcotest Array Bfdn_trees Bfdn_util Hashtbl List QCheck QCheck_alcotest String
