test/test_adversary.ml: Alcotest Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util List QCheck QCheck_alcotest
