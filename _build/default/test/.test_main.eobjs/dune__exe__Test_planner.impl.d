test/test_planner.ml: Alcotest Array Bfdn Bfdn_sim Bfdn_trees Bfdn_util List Printf QCheck QCheck_alcotest
