test/test_baselines.ml: Alcotest Array Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util List Printf QCheck QCheck_alcotest
