test/test_sim.ml: Alcotest Array Bfdn Bfdn_sim Bfdn_trees Bfdn_util List QCheck QCheck_alcotest String
