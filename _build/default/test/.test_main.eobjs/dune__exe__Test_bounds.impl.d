test/test_bounds.ml: Alcotest Array Bfdn Float List QCheck QCheck_alcotest String
