test/test_main.ml: Alcotest Test_adversary Test_alloc Test_async Test_baselines Test_bfdn Test_bounds Test_graphs Test_planner Test_rec Test_sim Test_trees Test_urn Test_util
