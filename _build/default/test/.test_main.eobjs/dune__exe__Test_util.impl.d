test/test_util.ml: Alcotest Array Bfdn_util Float Fun Gen List QCheck QCheck_alcotest String
