test/test_alloc.ml: Alcotest Array Bfdn_alloc Bfdn_util QCheck QCheck_alcotest
