test/test_urn.ml: Alcotest Array Bfdn Bfdn_util List Printf QCheck QCheck_alcotest String
