test/test_graphs.ml: Alcotest Array Bfdn Bfdn_graphs Bfdn_util Fun List Printf QCheck QCheck_alcotest String
