test/test_bfdn.ml: Alcotest Array Bfdn Bfdn_baselines Bfdn_sim Bfdn_trees Bfdn_util Hashtbl List Printf QCheck QCheck_alcotest
