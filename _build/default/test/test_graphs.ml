(* Tests for the graph substrate and graph-BFDN (Section 4.3,
   Proposition 9). *)

module Graph = Bfdn_graphs.Graph
module Grid = Bfdn_graphs.Grid
module Genv = Bfdn_graphs.Graph_env
module Bfdn_graph = Bfdn.Bfdn_graph
module Bounds = Bfdn.Bounds
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let raises_invalid f =
  try
    f ();
    false
  with Invalid_argument _ -> true

(* A 4-cycle plus a pendant: 0-1, 1-2, 2-3, 3-0, 2-4 *)
let cycle_graph () = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 3); (3, 0); (2, 4) ]

(* ---- Graph ---- *)

let test_graph_basics () =
  let g = cycle_graph () in
  checki "n" 5 (Graph.n g);
  checki "edges" 5 (Graph.num_edges g);
  checki "degree 2" 3 (Graph.degree g 2);
  checki "max degree" 3 (Graph.max_degree g)

let test_graph_reverse_port () =
  let g = cycle_graph () in
  for v = 0 to Graph.n g - 1 do
    for p = 0 to Graph.degree g v - 1 do
      let w = Graph.neighbor g v p in
      let q = Graph.reverse_port g v p in
      checki "reverse port is an involution" v (Graph.neighbor g w q)
    done
  done

let test_graph_validation () =
  checkb "self loop" true (raises_invalid (fun () -> ignore (Graph.of_edges ~n:2 [ (0, 0) ])));
  checkb "duplicate" true
    (raises_invalid (fun () -> ignore (Graph.of_edges ~n:2 [ (0, 1); (1, 0) ])));
  checkb "out of range" true (raises_invalid (fun () -> ignore (Graph.of_edges ~n:2 [ (0, 5) ])))

let test_graph_bfs () =
  let g = cycle_graph () in
  let d = Graph.bfs_dist g 0 in
  checkb "distances" true (d = [| 0; 1; 2; 1; 3 |]);
  checki "eccentricity" 3 (Graph.eccentricity g 0)

let test_graph_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let d = Graph.bfs_dist g 0 in
  checkb "unreachable marked" true (d.(2) = max_int);
  checkb "connected_from" true (Graph.connected_from g 0 = [| true; true; false; false |])

(* ---- Grid ---- *)

let test_grid_plain () =
  let grid = Grid.make { Grid.width = 4; height = 3; obstacles = [] } in
  checki "free cells" 12 (Grid.free_cells grid);
  checki "edges" ((3 * 3) + (2 * 4)) (Graph.num_edges (Grid.graph grid));
  checkb "origin cell" true (Grid.node_of_cell grid (0, 0) = Some (Grid.origin grid))

let test_grid_obstacle () =
  let grid = Grid.make { Grid.width = 3; height = 3; obstacles = [ (1, 1, 1, 1) ] } in
  checki "free cells" 8 (Grid.free_cells grid);
  checkb "center blocked" true (Grid.node_of_cell grid (1, 1) = None)

let test_grid_cut_off_region () =
  (* A full-height wall at x = 1 disconnects the right part. *)
  let grid = Grid.make { Grid.width = 4; height = 2; obstacles = [ (1, 0, 1, 1) ] } in
  checki "only the origin column remains" 2 (Grid.free_cells grid);
  checkb "right side unreachable" true (Grid.node_of_cell grid (3, 0) = None)

let test_grid_blocked_origin () =
  checkb "origin blocked rejected" true
    (raises_invalid (fun () ->
         ignore (Grid.make { Grid.width = 2; height = 2; obstacles = [ (0, 0, 0, 0) ] })))

let test_grid_random_spec () =
  let rng = Rng.create 77 in
  let spec = Grid.random_spec ~rng ~width:20 ~height:20 ~obstacle_count:10 ~max_side:4 in
  let grid = Grid.make spec in
  checkb "origin free" true (Grid.node_of_cell grid (0, 0) <> None);
  checkb "render has origin" true (String.contains (Grid.render grid) 'O')

let test_grid_cell_roundtrip () =
  let grid = Grid.make { Grid.width = 5; height = 4; obstacles = [ (2, 2, 3, 2) ] } in
  for v = 0 to Graph.n (Grid.graph grid) - 1 do
    let cell = Grid.cell_of_node grid v in
    checkb "roundtrip" true (Grid.node_of_cell grid cell = Some v)
  done

let test_manhattan_property () =
  (* Empty grids have Manhattan distances; a wall forcing a detour breaks
     the property — the geometric caveat behind Section 4.3's assumption. *)
  let empty = Grid.make { Grid.width = 6; height = 5; obstacles = [] } in
  checkb "empty grid manhattan" true (Grid.distance_is_manhattan empty);
  (* A vertical wall rising from the bottom edge blocks every monotone
     staircase to the cells just behind it: they need a detour. *)
  let wall = Grid.make { Grid.width = 6; height = 5; obstacles = [ (1, 0, 1, 3) ] } in
  checkb "detour breaks manhattan" false (Grid.distance_is_manhattan wall)

(* ---- Graph_env close rules ---- *)

let test_genv_initial () =
  let env = Genv.create (cycle_graph ()) ~origin:0 ~k:2 in
  checkb "origin explored" true (Genv.is_explored env 0);
  checki "dist origin" 0 (Genv.dist env 0);
  checki "unknown at origin" 2 (List.length (Genv.unknown_ports env 0));
  checkb "not done" false (Genv.fully_explored env)

let test_genv_tree_edge_growth () =
  let env = Genv.create (cycle_graph ()) ~origin:0 ~k:1 in
  Genv.apply env [| Genv.Via_port 0 |];
  let w = Genv.position env 0 in
  checkb "moved off origin" true (w <> 0);
  checkb "explored" true (Genv.is_explored env w);
  checkb "tree parent" true (match Genv.tree_parent env w with Some (0, _) -> true | _ -> false);
  checkb "no backtrack" false (Genv.needs_backtrack env 0)

let test_genv_close_on_equal_dist () =
  (* Triangle 0-1, 0-2, 1-2: the 1-2 edge connects equal distances and
     must be closed; node reached stays explored or unexplored per rule. *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  let env = Genv.create g ~origin:0 ~k:1 in
  (* go to node 1 *)
  Genv.apply env [| Genv.Via_port 0 |];
  checki "at 1" 1 (Genv.position env 0);
  (* cross 1-2: dist 2 = dist 1 = 1, so the edge closes under our feet *)
  let p12 =
    let ports = Genv.unknown_ports env 1 in
    List.hd ports
  in
  Genv.apply env [| Genv.Via_port p12 |];
  checkb "needs backtrack" true (Genv.needs_backtrack env 0);
  checkb "2 not explored by a closed arrival" false (Genv.is_explored env 2);
  checki "one closed edge" 1 (Genv.closed_edges env);
  (* only Back (or Stay) is legal now *)
  checkb "moving elsewhere rejected" true
    (raises_invalid (fun () -> Genv.apply env [| Genv.Via_port 0 |]));
  Genv.apply env [| Genv.Back |];
  checki "back at 1" 1 (Genv.position env 0)

let test_genv_close_on_explored_arrival () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let env = Genv.create g ~origin:0 ~k:2 in
  (* robots split: 0 -> 1, 1 -> 2 *)
  Genv.apply env [| Genv.Via_port 0; Genv.Via_port 1 |];
  (* robot 0 explores 3 via 1; robot 1 stays *)
  let p13 = List.hd (Genv.unknown_ports env 1) in
  Genv.apply env [| Genv.Via_port p13; Genv.Stay |];
  checkb "3 explored" true (Genv.is_explored env 3);
  (* robot 1 now crosses 2-3 and arrives at an explored node: close *)
  let p23 = List.hd (Genv.unknown_ports env 2) in
  Genv.apply env [| Genv.Stay; Genv.Via_port p23 |];
  checkb "backtrack pending" true (Genv.needs_backtrack env 1);
  checki "closed" 1 (Genv.closed_edges env)

let test_genv_head_on_crossing () =
  (* Square 0-1-3-2-0: two robots meet head-on in the middle of edge 1-2?
     Edges: 0-1, 0-2, 1-3, 2-3. Robots at 1 and 2 cross 1-3 and 2-3... use
     a triangle variant with an equalizing edge instead: robots at 1 and 2
     cross the same edge 1-2 from both sides. *)
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  let env = Genv.create g ~origin:0 ~k:2 in
  Genv.apply env [| Genv.Via_port 0; Genv.Via_port 1 |];
  checki "robot 0 at 1" 1 (Genv.position env 0);
  checki "robot 1 at 2" 2 (Genv.position env 1);
  let p1 = List.hd (Genv.unknown_ports env 1) in
  let p2 = List.hd (Genv.unknown_ports env 2) in
  Genv.apply env [| Genv.Via_port p1; Genv.Via_port p2 |];
  (* identity swap: the edge closes, nobody backtracks *)
  checki "closed" 1 (Genv.closed_edges env);
  checkb "no backtrack 0" false (Genv.needs_backtrack env 0);
  checkb "no backtrack 1" false (Genv.needs_backtrack env 1);
  checkb "fully explored" true (Genv.fully_explored env)

let test_genv_closed_edge_never_reused () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (0, 2); (1, 2) ] in
  let env = Genv.create g ~origin:0 ~k:2 in
  Genv.apply env [| Genv.Via_port 0; Genv.Via_port 1 |];
  let p1 = List.hd (Genv.unknown_ports env 1) in
  let p2 = List.hd (Genv.unknown_ports env 2) in
  Genv.apply env [| Genv.Via_port p1; Genv.Via_port p2 |];
  checkb "closed port rejected" true
    (raises_invalid (fun () -> Genv.apply env [| Genv.Via_port p1; Genv.Stay |]))

(* ---- random generators ---- *)

let test_gen_random_connected () =
  let g = Bfdn_graphs.Graph_gen.random_connected ~rng:(Rng.create 3) ~n:300 ~extra_edges:150 in
  checkb "connected" true (Array.for_all Fun.id (Graph.connected_from g 0));
  checkb "edge count" true
    (Graph.num_edges g >= 299 && Graph.num_edges g <= 299 + 150)

let test_gen_layered () =
  let g = Bfdn_graphs.Graph_gen.layered ~rng:(Rng.create 5) ~layers:8 ~width:6 ~chords:30 in
  checki "n" 49 (Graph.n g);
  checkb "connected" true (Array.for_all Fun.id (Graph.connected_from g 0));
  checkb "radius close to layers" true (Graph.eccentricity g 0 <= 2 * 8)

(* ---- graph-BFDN (Proposition 9) ---- *)

let run_graph_bfdn g origin k =
  let env = Genv.create g ~origin ~k in
  let t = Bfdn_graph.make env in
  (env, Bfdn_graph.run t)

let prop9_bound env k =
  Bounds.bfdn_graph ~n_edges:(Genv.oracle_n_edges env) ~k
    ~d:(Genv.oracle_radius env) ~delta:(Genv.oracle_max_degree env)

let test_bfdn_graph_single_robot () =
  let g = cycle_graph () in
  let env, r = run_graph_bfdn g 0 1 in
  checkb "explored" true r.explored;
  checkb "at origin" true r.at_origin;
  ignore env;
  (* one robot pays exactly two traversals per edge *)
  checki "2|E| rounds" (2 * Graph.num_edges g) r.rounds

let test_bfdn_graph_on_tree_matches () =
  (* On an acyclic graph nothing closes and BFDN behaves as on trees. *)
  let g = Graph.of_edges ~n:6 [ (0, 1); (0, 2); (1, 3); (1, 4); (2, 5) ] in
  let _, r = run_graph_bfdn g 0 2 in
  checkb "explored" true r.explored;
  checki "no closed edges" 0 r.closed_edges

let prop_proposition9_grids =
  QCheck.Test.make ~name:"Proposition 9 bound on random obstacle grids" ~count:25
    QCheck.(triple (int_range 3 18) (int_range 3 18) (pair (int_range 0 8) (int_range 1 20)))
    (fun (w, h, (obstacles, k)) ->
      let rng = Rng.create ((w * 1000) + (h * 10) + obstacles) in
      let spec = Grid.random_spec ~rng ~width:w ~height:h ~obstacle_count:obstacles ~max_side:3 in
      let grid = Grid.make spec in
      let env, r = run_graph_bfdn (Grid.graph grid) (Grid.origin grid) k in
      r.explored && r.at_origin && float_of_int r.rounds <= prop9_bound env k)

let test_genv_invariants_during_run () =
  let g = Bfdn_graphs.Graph_gen.random_connected ~rng:(Rng.create 12) ~n:150 ~extra_edges:80 in
  let env = Genv.create g ~origin:0 ~k:5 in
  let t = Bfdn_graph.make env in
  let r = Bfdn_graph.run ~max_rounds:100000 t in
  checkb "explored" true r.explored;
  Genv.check_invariants env

let test_bfs_tree_property () =
  (* After exploration, every explored node's tree parent is strictly
     closer to the origin: the never-closed edges form a BFS tree. *)
  let rng = Rng.create 99 in
  let spec = Grid.random_spec ~rng ~width:15 ~height:15 ~obstacle_count:6 ~max_side:4 in
  let grid = Grid.make spec in
  let g = Grid.graph grid in
  let env, r = run_graph_bfdn g (Grid.origin grid) 5 in
  checkb "explored" true r.explored;
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if Genv.is_explored env v && v <> Genv.origin env then
      match Genv.tree_parent env v with
      | Some (parent, _) -> if Genv.dist env parent + 1 <> Genv.dist env v then ok := false
      | None -> ok := false
  done;
  checkb "BFS-tree parents" true !ok;
  checkb "all nodes explored" true
    (Array.for_all Fun.id (Array.init (Graph.n g) (fun v -> Genv.is_explored env v)))

let test_bfdn_graph_dense () =
  (* Complete graph K6: heavy closing, radius 1. *)
  let edges = ref [] in
  for u = 0 to 5 do
    for v = u + 1 to 5 do
      edges := (u, v) :: !edges
    done
  done;
  let g = Graph.of_edges ~n:6 !edges in
  List.iter
    (fun k ->
      let env, r = run_graph_bfdn g 0 k in
      checkb "explored" true r.explored;
      checkb "within bound" true (float_of_int r.rounds <= prop9_bound env k))
    [ 1; 3; 6 ]

let prop_proposition9_random_graphs =
  QCheck.Test.make ~name:"Proposition 9 bound on random connected graphs" ~count:30
    QCheck.(triple (int_range 2 250) (int_range 0 200) (int_range 1 24))
    (fun (n, extra, k) ->
      let g =
        Bfdn_graphs.Graph_gen.random_connected
          ~rng:(Rng.create ((n * 37) + extra)) ~n ~extra_edges:extra
      in
      let env, r = run_graph_bfdn g 0 k in
      r.explored && r.at_origin && float_of_int r.rounds <= prop9_bound env k)

let test_prop9_layered () =
  let g = Bfdn_graphs.Graph_gen.layered ~rng:(Rng.create 8) ~layers:12 ~width:10 ~chords:80 in
  List.iter
    (fun k ->
      let env, r = run_graph_bfdn g 0 k in
      checkb (Printf.sprintf "layered k=%d explored" k) true r.explored;
      checkb (Printf.sprintf "layered k=%d bound" k) true
        (float_of_int r.rounds <= prop9_bound env k))
    [ 1; 4; 16 ]

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "graphs",
    [
      tc "graph basics" test_graph_basics;
      tc "graph reverse port" test_graph_reverse_port;
      tc "graph validation" test_graph_validation;
      tc "graph bfs" test_graph_bfs;
      tc "graph disconnected" test_graph_disconnected;
      tc "grid plain" test_grid_plain;
      tc "grid obstacle" test_grid_obstacle;
      tc "grid cut-off region" test_grid_cut_off_region;
      tc "grid blocked origin" test_grid_blocked_origin;
      tc "grid random spec" test_grid_random_spec;
      tc "grid cell roundtrip" test_grid_cell_roundtrip;
      tc "manhattan property" test_manhattan_property;
      tc "genv initial" test_genv_initial;
      tc "genv tree edge growth" test_genv_tree_edge_growth;
      tc "genv close on equal dist" test_genv_close_on_equal_dist;
      tc "genv close on explored arrival" test_genv_close_on_explored_arrival;
      tc "genv head-on crossing" test_genv_head_on_crossing;
      tc "genv closed edge never reused" test_genv_closed_edge_never_reused;
      tc "graph-bfdn single robot" test_bfdn_graph_single_robot;
      tc "graph-bfdn on tree" test_bfdn_graph_on_tree_matches;
      qc prop_proposition9_grids;
      tc "bfs tree property" test_bfs_tree_property;
      tc "graph-bfdn dense" test_bfdn_graph_dense;
      tc "gen random connected" test_gen_random_connected;
      tc "gen layered" test_gen_layered;
      qc prop_proposition9_random_graphs;
      tc "prop 9 on layered graphs" test_prop9_layered;
      tc "genv invariants after run" test_genv_invariants_during_run;
    ] )
