(* Tests for the adaptive tree-building adversary: budget respect, frozen
   trees, replay determinism, and the fact that Theorem 1 holds even on
   adaptively built instances (they freeze into ordinary trees). *)

module Tree = Bfdn_trees.Tree
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Adversary = Bfdn_sim.Adversary
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bfdn_algo env = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env)

let run_adaptive make_algo adv k =
  let env = Env.of_world (Adversary.world adv) ~k in
  (env, Runner.run (make_algo env) env)

let test_budgets_respected () =
  let adv = Adversary.make ~capacity:500 ~depth_budget:12 Adversary.greedy_widest in
  let _, r = run_adaptive bfdn_algo adv 8 in
  checkb "explored" true r.explored;
  let tree = Adversary.frozen adv in
  Tree.validate tree;
  checkb "capacity respected" true (Tree.n tree <= 500);
  checkb "depth respected" true (Tree.depth tree <= 12)

let test_miser_builds_path () =
  let adv = Adversary.make ~capacity:100 ~depth_budget:99 Adversary.miser in
  let _, r = run_adaptive bfdn_algo adv 3 in
  checkb "explored" true r.explored;
  let tree = Adversary.frozen adv in
  checki "path nodes" 100 (Tree.n tree);
  checki "path depth" 99 (Tree.depth tree);
  checki "path max degree" 2 (Tree.max_degree tree)

let test_greedy_widest_builds_star () =
  let adv = Adversary.make ~capacity:200 ~depth_budget:10 Adversary.greedy_widest in
  let _, r = run_adaptive bfdn_algo adv 5 in
  checkb "explored" true r.explored;
  let tree = Adversary.frozen adv in
  checki "star" 1 (Tree.depth tree);
  checki "all budget spent" 200 (Tree.n tree)

let test_thick_comb_shape () =
  let adv = Adversary.make_rec ~capacity:300 ~depth_budget:60 Adversary.thick_comb in
  let _, r = run_adaptive bfdn_algo adv 6 in
  checkb "explored" true r.explored;
  let tree = Adversary.frozen adv in
  Tree.validate tree;
  checkb "comb-like: n ~ 2 D" true (Tree.n tree >= (2 * Tree.depth tree) - 2);
  checki "max degree 3" 3 (Tree.max_degree tree)

let replay_identical make_algo make_adv k =
  let adv = make_adv () in
  let _, r1 = run_adaptive make_algo adv k in
  let tree = Adversary.frozen adv in
  let env2 = Env.create tree ~k in
  let r2 = Runner.run (make_algo env2) env2 in
  r1.explored && r2.explored && r1.rounds = r2.rounds && r1.moves = r2.moves

let test_replay_determinism () =
  List.iter
    (fun k ->
      checkb "bfdn replay" true
        (replay_identical bfdn_algo
           (fun () ->
             Adversary.make ~capacity:600 ~depth_budget:40
               (Adversary.corridor_crowds ~threshold:3))
           k);
      checkb "cte replay" true
        (replay_identical Bfdn_baselines.Cte.make
           (fun () -> Adversary.make_rec ~capacity:400 ~depth_budget:80 Adversary.thick_comb)
           k))
    [ 2; 9; 33 ]

let prop_theorem1_adaptive =
  QCheck.Test.make ~name:"Theorem 1 holds on adaptively built trees" ~count:40
    QCheck.(triple (int_range 2 300) (int_range 1 24) (int_range 0 10_000))
    (fun (capacity, k, seed) ->
      let adv =
        Adversary.make ~capacity ~depth_budget:(max 1 (capacity / 3))
          (Adversary.random_policy (Rng.create seed) ~max_children:4)
      in
      let env, r = run_adaptive bfdn_algo adv k in
      let tree = Adversary.frozen adv in
      Tree.validate tree;
      let bound =
        Bfdn.Bounds.bfdn ~n:(Tree.n tree) ~k ~d:(Tree.depth tree)
          ~delta:(Tree.max_degree tree)
      in
      ignore env;
      r.explored && float_of_int r.rounds <= bound)

let prop_planner_adaptive =
  QCheck.Test.make ~name:"Proposition 6 holds on adaptively built trees" ~count:25
    QCheck.(triple (int_range 2 200) (int_range 1 16) (int_range 0 10_000))
    (fun (capacity, k, seed) ->
      let adv =
        Adversary.make ~capacity ~depth_budget:(max 1 (capacity / 3))
          (Adversary.random_policy (Rng.create seed) ~max_children:4)
      in
      let env = Env.of_world (Adversary.world adv) ~k in
      let t = Bfdn.Bfdn_planner.make env in
      let r = Runner.run (Bfdn.Bfdn_planner.algo t) env in
      let tree = Adversary.frozen adv in
      let bound =
        Bfdn.Bounds.bfdn_writeread ~n:(Tree.n tree) ~k ~d:(Tree.depth tree)
          ~delta:(Tree.max_degree tree)
      in
      r.explored && r.at_root && float_of_int r.rounds <= bound)

let test_accessors () =
  let adv = Adversary.make ~capacity:50 ~depth_budget:10 Adversary.miser in
  let _, r = run_adaptive bfdn_algo adv 2 in
  checkb "explored" true r.explored;
  checki "root parent" (-1) (Adversary.parent_of adv 0);
  checki "depth of root" 0 (Adversary.depth_of_node adv 0);
  checki "first child index" 0 (Adversary.child_index adv 1);
  (* miser with depth budget 10: a path of 10 edges *)
  checki "nodes built" 11 (Adversary.nodes_built adv)

let test_world_single_use () =
  (* Revealing the same node twice means two environments share one
     adversary — rejected. *)
  let adv = Adversary.make ~capacity:10 ~depth_budget:3 Adversary.miser in
  let _ = Env.of_world (Adversary.world adv) ~k:1 in
  checkb "second env rejected" true
    (try
       ignore (Env.of_world (Adversary.world adv) ~k:1);
       false
     with Invalid_argument _ -> true)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "adversary",
    [
      tc "budgets respected" test_budgets_respected;
      tc "miser builds a path" test_miser_builds_path;
      tc "greedy widest builds a star" test_greedy_widest_builds_star;
      tc "thick comb shape" test_thick_comb_shape;
      tc "replay determinism" test_replay_determinism;
      qc prop_theorem1_adaptive;
      qc prop_planner_adaptive;
      tc "accessors" test_accessors;
      tc "world single use" test_world_single_use;
    ] )
