(* Tests for the baseline algorithms: single-robot DFS, offline splitting,
   CTE, and the random walk. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Tree_stats = Bfdn_trees.Tree_stats
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Dfs_single = Bfdn_baselines.Dfs_single
module Offline_split = Bfdn_baselines.Offline_split
module Cte = Bfdn_baselines.Cte
module Random_walk = Bfdn_baselines.Random_walk
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_tree seed n =
  let r = Rng.create seed in
  Tree.of_parents (Array.init n (fun v -> if v = 0 then -1 else Rng.int r v))

let run make tree k =
  let env = Env.create tree ~k in
  let r = Runner.run (make env) env in
  (env, r)

(* ---- single-robot DFS ---- *)

let test_dfs_exact_rounds () =
  List.iter
    (fun seed ->
      let tree = random_tree seed 150 in
      let _, r = run Dfs_single.make tree 1 in
      checkb "explored" true r.explored;
      checkb "at root" true r.at_root;
      checki "2(n-1)" (2 * (Tree.n tree - 1)) r.rounds)
    [ 4; 5; 6 ]

let test_dfs_extra_robots_idle () =
  let tree = Tree_gen.comb ~spine:5 ~tooth_len:2 in
  let env, r = run Dfs_single.make tree 4 in
  checkb "explored" true r.explored;
  checki "robot 1 idle" 0 (Env.moves_of_robot env 1)

(* ---- offline splitting ---- *)

let test_offline_families () =
  let rng = Rng.create 8 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:400 ~depth_hint:10 in
      let stats = Tree_stats.compute tree in
      List.iter
        (fun k ->
          let _, r = run Offline_split.make tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          (* the [7,13] guarantee: 2(n/k + D), plus the ceiling slack *)
          let bound = (2.0 *. (float_of_int stats.n /. float_of_int k +. float_of_int stats.depth)) +. 2.0 in
          checkb (Printf.sprintf "%s k=%d within 2(n/k+D)" fam k) true
            (float_of_int r.rounds <= bound))
        [ 1; 4; 16 ])
    Tree_gen.families

let test_offline_planned_matches_run () =
  let tree = random_tree 12 300 in
  List.iter
    (fun k ->
      let planned = Offline_split.planned_rounds tree ~k in
      let _, r = run Offline_split.make tree k in
      checki (Printf.sprintf "k=%d planned = executed" k) planned r.rounds)
    [ 1; 3; 8; 32 ]

let prop_offline_beats_bound =
  QCheck.Test.make ~name:"offline split within 2(n/k+D) + slack" ~count:60
    QCheck.(pair (int_range 2 300) (int_range 1 32))
    (fun (n, k) ->
      let tree = random_tree (n + (k * 1000)) n in
      let d = Tree.depth tree in
      let _, r = run Offline_split.make tree k in
      r.explored
      && float_of_int r.rounds
         <= (2.0 *. ((float_of_int n /. float_of_int k) +. float_of_int d)) +. 2.0)

(* The raw itineraries are well-formed walks: consecutive nodes adjacent,
   starting and ending at the root, covering each tour edge. *)
let test_offline_itinerary_structure () =
  let tree = random_tree 64 200 in
  List.iter
    (fun k ->
      let env = Env.create tree ~k in
      let r = Runner.run (Offline_split.make env) env in
      checkb "explored" true r.explored;
      (* re-running is idempotent: fresh plan, same rounds *)
      let env2 = Env.create tree ~k in
      let r2 = Runner.run (Offline_split.make env2) env2 in
      checki "deterministic" r.rounds r2.rounds;
      checki "planned matches" (Offline_split.planned_rounds tree ~k) r.rounds)
    [ 2; 7; 40 ]

(* ---- CTE ---- *)

let test_cte_families () =
  let rng = Rng.create 13 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:350 ~depth_hint:10 in
      List.iter
        (fun k ->
          let _, r = run Cte.make tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          checkb (Printf.sprintf "%s k=%d no limit" fam k) false r.hit_round_limit)
        [ 1; 6; 24 ])
    Tree_gen.families

let test_cte_single_robot_is_dfs () =
  let tree = random_tree 31 200 in
  let _, r = run Cte.make tree 1 in
  checki "2(n-1)" (2 * (Tree.n tree - 1)) r.rounds

let prop_cte_explores =
  QCheck.Test.make ~name:"CTE always completes and regathers" ~count:60
    QCheck.(pair (int_range 2 250) (int_range 1 32))
    (fun (n, k) ->
      let tree = random_tree (n * 3 + k) n in
      let _, r = run Cte.make tree k in
      r.explored && r.at_root && not r.hit_round_limit)

let test_cte_edge_events_complete () =
  let tree = random_tree 77 250 in
  let env, r = run Cte.make tree 9 in
  checkb "explored" true r.explored;
  checki "edge events" (2 * (Tree.n tree - 1)) (Env.edge_events env)

(* ---- write-read CTE ---- *)

let test_cte_wr_families () =
  let rng = Rng.create 19 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:350 ~depth_hint:10 in
      List.iter
        (fun k ->
          let _, r = run Bfdn_baselines.Cte_writeread.make tree k in
          checkb (Printf.sprintf "%s k=%d explored" fam k) true r.explored;
          checkb (Printf.sprintf "%s k=%d at root" fam k) true r.at_root;
          checkb (Printf.sprintf "%s k=%d no limit" fam k) false r.hit_round_limit)
        [ 1; 6; 24 ])
    Tree_gen.families

let test_cte_wr_single_robot_is_dfs () =
  let tree = random_tree 47 200 in
  let _, r = run Bfdn_baselines.Cte_writeread.make tree 1 in
  checki "2(n-1)" (2 * (Tree.n tree - 1)) r.rounds

let prop_cte_wr_tracks_centralized =
  QCheck.Test.make ~name:"write-read CTE tracks complete-communication CTE" ~count:40
    QCheck.(pair (int_range 2 250) (int_range 1 24))
    (fun (n, k) ->
      let tree = random_tree ((n * 11) + k) n in
      let _, r1 = run Cte.make tree k in
      let _, r2 = run Bfdn_baselines.Cte_writeread.make tree k in
      r2.explored && r2.at_root
      && r2.rounds <= (3 * r1.rounds) + 10
      && r1.rounds <= (3 * r2.rounds) + 10)

(* ---- random walk ---- *)

let test_random_walk_completes_small () =
  let tree = Tree_gen.complete ~arity:2 ~depth:4 in
  let env = Env.create tree ~k:4 in
  let r = Runner.run ~max_rounds:100_000 (Random_walk.make ~rng:(Rng.create 2) env) env in
  checkb "explored" true r.explored

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "baselines",
    [
      tc "dfs exact rounds" test_dfs_exact_rounds;
      tc "dfs extra robots idle" test_dfs_extra_robots_idle;
      tc "offline families" test_offline_families;
      tc "offline planned = run" test_offline_planned_matches_run;
      qc prop_offline_beats_bound;
      tc "offline itinerary structure" test_offline_itinerary_structure;
      tc "cte families" test_cte_families;
      tc "cte single robot is dfs" test_cte_single_robot_is_dfs;
      qc prop_cte_explores;
      tc "cte edge events" test_cte_edge_events_complete;
      tc "cte-wr families" test_cte_wr_families;
      tc "cte-wr single robot is dfs" test_cte_wr_single_robot_is_dfs;
      qc prop_cte_wr_tracks_centralized;
      tc "random walk completes" test_random_walk_completes_small;
    ] )
