(* Tests for the recursive BFDN_ell (Section 5, Theorem 10). *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Bfdn_rec = Bfdn.Bfdn_rec
module Bounds = Bfdn.Bounds
module Rng = Bfdn_util.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let run_rec tree k ell =
  let env = Env.create tree ~k in
  let t = Bfdn_rec.make ~ell env in
  let r = Runner.run (Bfdn_rec.algo t) env in
  (env, t, r)

let random_tree seed n =
  let r = Rng.create seed in
  Tree.of_parents (Array.init n (fun v -> if v = 0 then -1 else Rng.int r v))

let thm10_bound env k ell =
  Bounds.bfdn_rec ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
    ~delta:(Env.oracle_max_degree env) ~ell

let test_invalid_ell () =
  let env = Env.create (Tree_gen.path 3) ~k:2 in
  checkb "ell 0 rejected" true
    (try
       ignore (Bfdn_rec.make ~ell:0 env);
       false
     with Invalid_argument _ -> true)

let test_robots_used () =
  let env = Env.create (Tree_gen.path 3) ~k:27 in
  checki "27^(1/3) cubed" 27 (Bfdn_rec.robots_used (Bfdn_rec.make ~ell:3 env));
  let env = Env.create (Tree_gen.path 3) ~k:30 in
  checki "floor root" 27 (Bfdn_rec.robots_used (Bfdn_rec.make ~ell:3 env));
  let env = Env.create (Tree_gen.path 3) ~k:5 in
  checki "ell 1 uses all" 5 (Bfdn_rec.robots_used (Bfdn_rec.make ~ell:1 env))

let test_explores_all_families () =
  let rng = Rng.create 2 in
  List.iter
    (fun fam ->
      let tree = Tree_gen.of_family fam ~rng ~n:300 ~depth_hint:12 in
      List.iter
        (fun (k, ell) ->
          let _, _, r = run_rec tree k ell in
          checkb (Printf.sprintf "%s k=%d ell=%d explored" fam k ell) true r.explored;
          checkb (Printf.sprintf "%s k=%d ell=%d no limit" fam k ell) false r.hit_round_limit)
        [ (1, 1); (4, 2); (9, 2); (8, 3); (20, 2) ])
    Tree_gen.families

let prop_theorem10_random_trees =
  QCheck.Test.make ~name:"Theorem 10 bound on random trees" ~count:40
    QCheck.(triple (int_range 2 250) (int_range 1 36) (int_range 1 3))
    (fun (n, k, ell) ->
      let tree = random_tree ((n * 37) + k + ell) n in
      let env, _, r = run_rec tree k ell in
      r.explored && float_of_int r.rounds <= thm10_bound env k ell)

let prop_theorem10_families =
  QCheck.Test.make ~name:"Theorem 10 bound on all families" ~count:20
    QCheck.(triple (int_range 2 300) (int_range 1 30) (int_range 1 14))
    (fun (n, k, d) ->
      List.for_all
        (fun fam ->
          let tree = Tree_gen.of_family fam ~rng:(Rng.create (n * 3 + k)) ~n ~depth_hint:d in
          List.for_all
            (fun ell ->
              let env, _, r = run_rec tree k ell in
              r.explored && float_of_int r.rounds <= thm10_bound env k ell)
            [ 1; 2; 3 ])
        Tree_gen.families)

let test_calls_grow_with_depth () =
  let shallow = Tree_gen.star 100 in
  let deep = Tree_gen.path 200 in
  let _, t1, _ = run_rec shallow 4 2 in
  let _, t2, _ = run_rec deep 4 2 in
  checkb "deep trees need more calls" true
    (Bfdn_rec.calls_started t2 > Bfdn_rec.calls_started t1)

let test_single_node () =
  let _, _, r = run_rec (Tree.of_parents [| -1 |]) 8 2 in
  checkb "explored" true r.explored;
  checki "rounds" 0 r.rounds

let test_deterministic () =
  let tree = random_tree 44 250 in
  let _, _, r1 = run_rec tree 16 2 in
  let _, _, r2 = run_rec tree 16 2 in
  checki "same rounds" r1.rounds r2.rounds

(* On deep trees, higher ell eventually pays off in measured rounds too —
   at minimum it never explodes past its own bound while plain BFDN's
   bound grows as D^2. *)
let test_rec_handles_deep_trees () =
  let tree = Tree_gen.comb ~spine:60 ~tooth_len:20 in
  let env, _, r = run_rec tree 64 3 in
  checkb "explored" true r.explored;
  checkb "within Theorem 10" true (float_of_int r.rounds <= thm10_bound env 64 3)

let suite =
  let tc name f = Alcotest.test_case name `Quick f in
  let qc t = QCheck_alcotest.to_alcotest t in
  ( "bfdn-rec",
    [
      tc "invalid ell" test_invalid_ell;
      tc "robots used" test_robots_used;
      tc "explores all families" test_explores_all_families;
      qc prop_theorem10_random_trees;
      qc prop_theorem10_families;
      tc "calls grow with depth" test_calls_grow_with_depth;
      tc "single node" test_single_node;
      tc "deterministic" test_deterministic;
      tc "handles deep trees" test_rec_handles_deep_trees;
    ] )
