(** Figure 1 — regions of the [(n, D)] plane where each algorithm's
    runtime guarantee is the best, at a fixed number of robots [k].

    The classification evaluates the four guarantee formulas of {!Bounds}
    on a log-log grid and picks the argmin, exactly the comparison the
    paper's Appendix A performs symbolically. {!analytic} reproduces the
    appendix's closed-form boundary tests so the two can be cross-checked
    (they agree up to the O-constants the paper drops). *)

type algorithm = Cte | Yostar | Bfdn | Bfdn_rec

val name : algorithm -> string

val winner : n:int -> k:int -> d:int -> delta:int -> algorithm * float
(** Argmin of the four guarantees (with BFDN_ℓ minimized over admissible
    [ℓ]); ties break towards the simpler algorithm (CTE < Yo* < BFDN <
    BFDN_ℓ). Requires [d < n]. *)

(** Appendix A closed-form boundary tests. *)

val bfdn_beats_cte : n:int -> k:int -> d:int -> bool
(** [D^2 log^2 k <= n]. *)

val bfdn_beats_yostar : n:int -> k:int -> d:int -> bool
(** [k D^2 <= n / k] (within the regime [n <= e^k], [D <= e^(log^2 k)]). *)

val bfdn_rec_beats_cte : n:int -> k:int -> d:int -> ell:int -> bool
(** [D < n^(ell/(ell+1)) / (k log^2 k)], for
    [ell < log k / log log k]. *)

val analytic_winner : n:float -> k:int -> d:float -> algorithm
(** The Appendix A classification with constants dropped — what the
    paper's schematic figure actually draws. *)

type mode =
  | Argmin  (** numeric argmin of the four guarantee formulas *)
  | Analytic  (** Appendix A closed-form regions (the paper's figure) *)

type map = {
  k : int;
  rows : int;
  cols : int;
  log_n_min : float;  (** natural log: the axes overflow floats *)
  log_n_max : float;
  cells : algorithm array array;  (** [cells.(row).(col)]; row = D axis *)
}

val compute_map : ?rows:int -> ?cols:int -> ?mode:mode -> k:int -> unit -> map
(** Log-scaled grid: [n] from [k] to [e^(1.5 k)] (column axis), [D] from
    [1] to [n] (row axis, shaded region [n <= D] excluded). *)

val render : map -> string
(** ASCII rendering with a legend — the reproduction of Figure 1. *)

val agreement_with_analytic : map -> float
(** Fraction of grid cells where the numeric argmin agrees with the
    Appendix A closed-form predictions on the CTE-vs-BFDN boundary
    (restricted to cells where the two algorithms are the top two). *)
