lib/core/urn_game.mli: Bfdn_util
