lib/core/bfdn_async.mli: Bfdn_sim
