lib/core/bfdn_planner.ml: Array Bfdn_sim Bfdn_util Hashtbl List
