lib/core/urn_game.ml: Array Bfdn_util Buffer Float Printf String
