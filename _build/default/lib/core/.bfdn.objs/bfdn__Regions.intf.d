lib/core/regions.mli:
