lib/core/bounds.mli:
