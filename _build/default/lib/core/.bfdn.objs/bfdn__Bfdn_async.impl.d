lib/core/bfdn_async.ml: Array Bfdn_sim List
