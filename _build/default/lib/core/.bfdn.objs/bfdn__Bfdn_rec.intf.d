lib/core/bfdn_rec.mli: Bfdn_sim
