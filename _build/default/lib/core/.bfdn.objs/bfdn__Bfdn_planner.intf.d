lib/core/bfdn_planner.mli: Bfdn_sim
