lib/core/bfdn_algo.mli: Bfdn_sim Bfdn_util
