lib/core/bfdn_graph.ml: Array Bfdn_graphs Hashtbl List
