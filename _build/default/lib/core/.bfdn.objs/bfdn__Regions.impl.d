lib/core/regions.ml: Array Bfdn_util Float List Printf
