lib/core/bfdn_graph.mli: Bfdn_graphs
