lib/core/bfdn_algo.ml: Array Bfdn_sim Bfdn_util Hashtbl List Option
