lib/core/bfdn_rec.ml: Array Bfdn_sim Bfdn_util Hashtbl List Option Printf
