module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Runner = Bfdn_sim.Runner
module Mathx = Bfdn_util.Mathx

type walk_step = W_up | W_port of int

type instance =
  | Leaf of leaf
  | Divide of divide

and leaf = { l_root : int; l_budget : int; l_team : int list }

and divide = {
  d_root : int;
  d_level : int; (* >= 2 *)
  d_budget : int;
  d_n_iter : int;
  d_team : int list;
  mutable d_iter : int; (* completed iterations *)
  mutable d_roots : int list; (* sub-roots of the current iteration *)
  mutable d_subs : instance list;
  mutable d_deep : bool;
}

type t = {
  env : Env.t;
  ell : int;
  kstar : int;
  used : int; (* K = kstar^ell robots actually deployed *)
  (* shared per-robot state *)
  anchor : int array;
  stack : int list array; (* breadth-first ports towards the anchor *)
  walk : walk_step list array; (* team-reassignment itinerary *)
  dest : int array; (* walk destination (meaningful while walk <> []) *)
  active : bool array;
  (* shared machinery *)
  anchor_load : int array;
  dangle_cursor : int array;
  selected : (int * int, unit) Hashtbl.t;
  moves : Env.move array;
  mutable top : instance option;
  mutable j : int; (* Definition 13 call counter *)
  mutable calls : int;
}

let make ~ell env =
  if ell < 1 then invalid_arg "Bfdn_rec.make: ell must be >= 1";
  let k = Env.k env in
  let kstar = max 1 (Mathx.iroot k ell) in
  let used = Mathx.pow kstar ell in
  let n = Env.capacity env in
  let root = Partial_tree.root (Env.view env) in
  {
    env;
    ell;
    kstar;
    used;
    anchor = Array.make k root;
    stack = Array.make k [];
    walk = Array.make k [];
    dest = Array.make k root;
    active = Array.make k false;
    anchor_load =
      (let load = Array.make n 0 in
       load.(root) <- k;
       load);
    dangle_cursor = Array.make n 0;
    selected = Hashtbl.create 16;
    moves = Array.make k Env.Stay;
    top = None;
    j = 0;
    calls = 0;
  }

let calls_started t = t.calls
let robots_used t = t.used

let view t = Env.view t.env

(* ---- leaf (BFDN_1 restricted to T(root), anchors within [budget]) ---- *)

(* Minimum-relative-depth open nodes of T(root) within the depth budget. *)
let leaf_candidates t root budget =
  let v = view t in
  let base = Partial_tree.depth_of v root in
  let rec scan dd =
    if dd > base + budget then []
    else begin
      let nodes =
        List.filter
          (fun u -> Partial_tree.is_ancestor v root u)
          (Partial_tree.open_nodes_at_depth v dd)
      in
      if nodes = [] then scan (dd + 1) else nodes
    end
  in
  scan base

let leaf_reanchor t l i =
  let v = view t in
  t.anchor_load.(t.anchor.(i)) <- t.anchor_load.(t.anchor.(i)) - 1;
  match leaf_candidates t l.l_root l.l_budget with
  | [] ->
      t.anchor.(i) <- l.l_root;
      t.anchor_load.(l.l_root) <- t.anchor_load.(l.l_root) + 1;
      t.stack.(i) <- [];
      t.active.(i) <- false
  | candidates ->
      let best =
        List.fold_left
          (fun best u ->
            if
              t.anchor_load.(u) < t.anchor_load.(best)
              || (t.anchor_load.(u) = t.anchor_load.(best) && u < best)
            then u
            else best)
          (List.hd candidates) candidates
      in
      t.anchor.(i) <- best;
      t.anchor_load.(best) <- t.anchor_load.(best) + 1;
      let base = Partial_tree.depth_of v l.l_root in
      let rec drop n xs = if n = 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r in
      t.stack.(i) <- drop base (Partial_tree.ports_from_root v best);
      t.active.(i) <- true

let next_dangling t pos =
  let v = view t in
  let nports = Partial_tree.num_ports v pos in
  (* Same transient-skip rule as Bfdn_algo.next_dangling: never commit the
     cursor past a dangling port that is merely selected this round. *)
  let rec scan c ~commit =
    if c >= nports then None
    else
      match Partial_tree.port v pos c with
      | Partial_tree.Dangling ->
          if Hashtbl.mem t.selected (pos, c) then scan (c + 1) ~commit:false
          else Some c
      | Partial_tree.To_parent | Partial_tree.Child _ ->
          if commit then t.dangle_cursor.(pos) <- c + 1;
          scan (c + 1) ~commit
  in
  scan t.dangle_cursor.(pos) ~commit:true

let leaf_step_robot t l i =
  let pos = Env.position t.env i in
  match t.walk.(i) with
  | W_up :: rest ->
      t.walk.(i) <- rest;
      t.moves.(i) <- Env.Up
  | W_port p :: rest ->
      t.walk.(i) <- rest;
      t.moves.(i) <- Env.Via_port p
  | [] -> (
      if pos = l.l_root && t.stack.(i) = [] then leaf_reanchor t l i;
      match t.stack.(i) with
      | p :: rest ->
          t.stack.(i) <- rest;
          t.moves.(i) <- Env.Via_port p
      | [] -> (
          match next_dangling t pos with
          | Some p ->
              Hashtbl.replace t.selected (pos, p) ();
              t.moves.(i) <- Env.Via_port p
          | None ->
              if pos <> l.l_root && pos <> Partial_tree.root (view t) then
                t.moves.(i) <- Env.Up))

(* ---- divide-depth (Algorithm 3) ---- *)

(* Where a robot logically is: its walk destination while re-assigned and
   in transit, its physical position otherwise. Team formation and
   sub-root collection must use this, or robots caught mid-walk get
   mis-filed and can escape their subtree. *)
let effective_position t i =
  if t.walk.(i) = [] then Env.position t.env i else t.dest.(i)

let active_count t team = List.fold_left (fun acc i -> acc + if t.active.(i) then 1 else 0) 0 team

(* Ancestor of the robot's position at absolute depth [target] (its
   "effective anchor" when iterations hand over sub-roots). *)
let effective_anchor t i target =
  let v = view t in
  let rec up u = if Partial_tree.depth_of v u <= target then u else up (Option.get (Partial_tree.parent v u)) in
  up (effective_position t i)

(* Itinerary from the robot's position to [dst]: up to their lowest common
   ancestor, then down the discovered port path (Algorithm 3 line 11; a
   robot can be re-teamed mid-walk, so the itinerary must work from any
   explored position). *)
let walk_itinerary t i dst =
  let v = view t in
  let pos = Env.position t.env i in
  let rec lift u du w dw ups =
    if u = w then (u, ups)
    else if du >= dw then lift (Option.get (Partial_tree.parent v u)) (du - 1) w dw (ups + 1)
    else lift u du (Option.get (Partial_tree.parent v w)) (dw - 1) ups
  in
  let lca, ups =
    lift pos (Partial_tree.depth_of v pos) dst (Partial_tree.depth_of v dst) 0
  in
  let base = Partial_tree.depth_of v lca in
  let rec drop n xs = if n = 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r in
  let downs = List.map (fun p -> W_port p) (drop base (Partial_tree.ports_from_root v dst)) in
  List.init ups (fun _ -> W_up) @ downs

let rec make_instance _t ~level ~root ~budget ~team =
  if level <= 1 then Leaf { l_root = root; l_budget = budget; l_team = team }
  else begin
    let n_iter = max 1 (Mathx.iroot budget level) in
    Divide
      {
        d_root = root;
        d_level = level;
        d_budget = budget;
        d_n_iter = n_iter;
        d_team = team;
        d_iter = 0;
        d_roots = [ root ];
        d_subs = [];
        d_deep = false;
      }
  end

(* Set up iteration [d.d_iter + 1]: partition the team over the sub-roots,
   send re-assigned robots walking, build sub-instances. *)
and divide_setup t d =
  let v = view t in
  let k' = List.length d.d_team / t.kstar in
  let roots =
    (* The sub-roots must span disjoint subtrees (overlapping teams would
       step a robot twice per round, corrupting its state): keep only the
       antichain of shallowest roots. At most n_team = kstar of them are
       used; the paper guarantees |R| <= k*. *)
    let uniq = List.sort_uniq compare d.d_roots in
    let antichain =
      List.filter
        (fun r ->
          not
            (List.exists
               (fun r' -> r' <> r && Partial_tree.is_ancestor v r' r)
               uniq))
        uniq
    in
    let rec take n = function [] -> [] | x :: r -> if n = 0 then [] else x :: take (n - 1) r in
    take t.kstar antichain
  in
  let assigned = Hashtbl.create 16 in
  let adopted r =
    List.filter
      (fun i ->
        t.active.(i)
        && (not (Hashtbl.mem assigned i))
        && Partial_tree.is_ancestor v r (effective_position t i))
      d.d_team
  in
  let teams =
    List.map
      (fun r ->
        let mine = adopted r in
        List.iter (fun i -> Hashtbl.replace assigned i ()) mine;
        (r, mine))
      roots
  in
  let fresh = List.filter (fun i -> not (Hashtbl.mem assigned i)) d.d_team in
  let pool = ref fresh in
  let teams =
    List.map
      (fun (r, mine) ->
        let missing = max 0 (k' - List.length mine) in
        let rec grab n acc =
          if n = 0 then acc
          else
            match !pool with
            | [] -> acc
            | i :: rest ->
                pool := rest;
                t.active.(i) <- true;
                t.walk.(i) <- walk_itinerary t i r;
                t.dest.(i) <- r;
                t.stack.(i) <- [];
                t.anchor_load.(t.anchor.(i)) <- t.anchor_load.(t.anchor.(i)) - 1;
                t.anchor.(i) <- r;
                t.anchor_load.(r) <- t.anchor_load.(r) + 1;
                grab (n - 1) (i :: acc)
        in
        (r, grab missing mine))
      teams
  in
  (* Robots in no team wait inactive where they stand. *)
  List.iter (fun i -> t.active.(i) <- false) !pool;
  let budget' = d.d_budget / d.d_n_iter in
  d.d_subs <-
    List.map
      (fun (r, team) ->
        make_instance t ~level:(d.d_level - 1) ~root:r ~budget:budget' ~team)
      teams;
  d.d_iter <- d.d_iter + 1

(* One synchronous decision round for an instance. Returns [true] while the
   instance wants to continue (top-level: false = call finished). *)
and step_instance t inst =
  match inst with
  | Leaf l ->
      List.iter (fun i -> leaf_step_robot t l i) l.l_team;
      (* Definition 13: a top-level BFDN_1 call is interrupted as soon as
         it would run deep — no dangling edge within the depth budget —
         without waiting for robots still finishing their subtrees (they
         carry over to the next, deeper call). *)
      leaf_candidates t l.l_root l.l_budget <> []
      || List.exists (fun i -> t.active.(i) && t.walk.(i) <> []) l.l_team
  | Divide d ->
      if d.d_subs = [] && not d.d_deep then divide_setup t d;
      List.iter (fun sub -> ignore (step_instance t sub)) d.d_subs;
      if d.d_deep then active_count t d.d_team > 0
      else begin
        if active_count t d.d_team < t.kstar then begin
          if d.d_iter < d.d_n_iter then begin
            (* collect sub-roots for the next iteration from the robots
               still active, at the depth this iteration closed *)
            let v = view t in
            let target =
              Partial_tree.depth_of v d.d_root + (d.d_iter * (d.d_budget / d.d_n_iter))
            in
            d.d_roots <-
              List.sort_uniq compare
                (List.filter_map
                   (fun i ->
                     if t.active.(i) then Some (effective_anchor t i target) else None)
                   d.d_team);
            d.d_subs <- [];
            if d.d_roots = [] then d.d_roots <- [ d.d_root ];
            true
          end
          else begin
            d.d_deep <- true;
            active_count t d.d_team > 0
          end
        end
        else true
      end

let start_call t =
  t.j <- t.j + 1;
  t.calls <- t.calls + 1;
  let budget = Mathx.pow 2 (t.j * t.ell) in
  let team = List.init t.used (fun i -> i) in
  let root = Partial_tree.root (view t) in
  (* adopt deep robots: everyone not at the root is mid-exploration *)
  List.iter (fun i -> t.active.(i) <- Env.position t.env i <> root) team;
  t.top <- Some (make_instance t ~level:t.ell ~root ~budget ~team)

let select t =
  Hashtbl.reset t.selected;
  Array.fill t.moves 0 (Env.k t.env) Env.Stay;
  (match t.top with
  | None -> start_call t
  | Some _ -> ());
  (match t.top with
  | Some inst ->
      let continue =
        match inst with
        | Leaf _ -> step_instance t inst
        | Divide d ->
            let keep = step_instance t inst in
            (* Definition 13: interrupt right after the last iteration,
               without running deep at the top level. *)
            if d.d_deep then false else keep
      in
      if not continue then t.top <- None
  | None -> ());
  Array.copy t.moves

let algo t =
  {
    Runner.name = Printf.sprintf "bfdn-rec-%d" t.ell;
    select = (fun _ -> select t);
    finished = Env.fully_explored;
  }
