type algorithm = Cte | Yostar | Bfdn | Bfdn_rec

let name = function
  | Cte -> "CTE"
  | Yostar -> "Yo*"
  | Bfdn -> "BFDN"
  | Bfdn_rec -> "BFDN_l"

let fi = float_of_int

(* The Figure 1 axes reach n = e^(1.5 k), far outside float range, so all
   guarantee formulas are evaluated in log space. Each formula is a sum of
   two terms whose logarithms are exact; log-sum-exp combines them. The
   test-suite checks these against {!Bounds} at ordinary scales. *)

let lse a b =
  let hi = Float.max a b and lo = Float.min a b in
  hi +. log1p (exp (lo -. hi))

let lsafe_log x = log (Float.max 2.0 x)

(* All functions below take ln n and ln d. *)

let log_cte ~ln ~k ~ld =
  if k <= 1 then log 2.0 +. ln
  else lse (ln -. log (log (fi k) /. log 2.0)) ld

let log_yostar ~ln ~k ~ld =
  let lk = lsafe_log (fi k) in
  let loglogk = lsafe_log lk in
  let coeff =
    (sqrt (Float.max 0.0 ld *. loglogk) *. log 2.0)
    +. log lk
    +. log (Float.max 1.0 ln +. lk)
  in
  lse (coeff +. ln -. log (fi k)) (coeff +. ld)

let log_bfdn ~ln ~k ~ld ~ldelta =
  let log0 x = if x <= 1.0 then 0.0 else log x in
  let factor = Float.min (log0 (fi k)) (log0 ldelta) +. 3.0 in
  lse (log 2.0 +. ln -. log (fi k)) ((2.0 *. ld) +. log factor)

let ell_max k =
  let lk = lsafe_log (fi k) in
  max 1 (int_of_float (lk /. Float.max 1.0 (log lk)))

let log_bfdn_rec_at ~ln ~k ~ld ~ldelta ~ell =
  let log0 x = if x <= 1.0 then 0.0 else log x in
  let lf = fi ell in
  let lk = log0 (fi k) in
  lse
    (log 4.0 +. ln -. (lk /. lf))
    (((lf +. 1.0) *. log 2.0)
    +. log (lf +. 1.0 +. Float.min (log0 ldelta) (lk /. lf))
    +. ((1.0 +. (1.0 /. lf)) *. ld))

let log_bfdn_rec ~ln ~k ~ld ~ldelta =
  let rec go ell best =
    if ell > ell_max k then best
    else go (ell + 1) (Float.min best (log_bfdn_rec_at ~ln ~k ~ld ~ldelta ~ell))
  in
  go 2 (log_bfdn_rec_at ~ln ~k ~ld ~ldelta ~ell:1)

let guarantees ~ln ~k ~ld ~ldelta =
  [
    (Cte, log_cte ~ln ~k ~ld);
    (Yostar, log_yostar ~ln ~k ~ld);
    (Bfdn, log_bfdn ~ln ~k ~ld ~ldelta);
    (Bfdn_rec, log_bfdn_rec ~ln ~k ~ld ~ldelta);
  ]

let argmin_winner ~ln ~k ~ld ~ldelta =
  let entries = guarantees ~ln ~k ~ld ~ldelta in
  List.fold_left
    (fun (ba, bv) (a, v) -> if v < bv then (a, v) else (ba, bv))
    (List.hd entries) (List.tl entries)

let winner ~n ~k ~d ~delta =
  if d >= n then invalid_arg "Regions.winner: requires d < n";
  let a, logv = argmin_winner ~ln:(log (fi n)) ~k ~ld:(log (fi d)) ~ldelta:(fi delta) in
  (a, exp logv)

(* Appendix A classification with the paper's dropped constants: the
   schematic Figure 1. Pairwise comparisons quoted from the appendix, in
   log space. *)
let analytic_winner_log ~ln ~k ~ld =
  let lk = lsafe_log (fi k) in
  let bfdn_over_cte = (2.0 *. ld) +. (2.0 *. log lk) <= ln in
  let bfdn_over_yo = log (fi k) +. (2.0 *. ld) <= ln -. log (fi k) in
  let yo_over_cte =
    ln <= fi k && ld <= lk *. lk
    && ld <= ln +. (2.0 *. log lk) -. log (Float.max 1.0 ln)
  in
  let lmax = ell_max k in
  let bfdnl_over_cte =
    let rec any ell =
      ell <= lmax
      && (ld < (fi ell /. (fi ell +. 1.0) *. ln) -. log (fi k) -. (2.0 *. log lk)
         || any (ell + 1))
    in
    any 2
  in
  let bfdnl_over_bfdn =
    let rec any ell =
      ell <= lmax && ((2.0 *. ld >= ln -. (lk /. fi ell)) || any (ell + 1))
    in
    any 2
  in
  if bfdn_over_cte && bfdn_over_yo && not (bfdnl_over_cte && bfdnl_over_bfdn)
  then Bfdn
  else if bfdnl_over_cte && 2.0 *. ld >= ln -. lk then Bfdn_rec
  else if yo_over_cte && not bfdn_over_yo then Yostar
  else Cte

let analytic_winner ~n ~k ~d = analytic_winner_log ~ln:(log n) ~k ~ld:(log d)

let bfdn_beats_cte ~n ~k ~d =
  let lk = lsafe_log (fi k) in
  fi d *. fi d *. lk *. lk <= fi n

let bfdn_beats_yostar ~n ~k ~d = fi k *. fi d *. fi d <= fi n /. fi k

let bfdn_rec_beats_cte ~n ~k ~d ~ell =
  let lk = lsafe_log (fi k) in
  let lf = fi ell in
  fi d < (fi n ** (lf /. (lf +. 1.0))) /. (fi k *. lk *. lk)

type map = {
  k : int;
  rows : int;
  cols : int;
  log_n_min : float;
  log_n_max : float;
  cells : algorithm array array;
}

type mode = Argmin | Analytic

(* The paper's axes are schematic: tick marks at k, e^(log^2 k) and e^k
   are drawn roughly equidistant, i.e. the drawing is uniform in
   log log n. We use the same doubly-logarithmic scale so every region is
   visible, exactly like the figure. *)
let axes m =
  let u_min = log (log (fi (2 * max 2 m))) in
  let u_max = log (1.5 *. fi m) in
  (u_min, u_max)

(* ln n and ln d of a grid cell. *)
let cell_coords ~rows ~cols ~k ~row ~col =
  let u_min, u_max = axes k in
  let ln = exp (u_min +. (fi col /. fi (cols - 1) *. (u_max -. u_min))) in
  let ld = exp (fi row /. fi (rows - 1) *. u_max) -. 1.0 in
  (ln, ld)

let compute_map ?(rows = 24) ?(cols = 72) ?(mode = Analytic) ~k () =
  let log_n_min, log_n_max = axes k in
  let cells =
    Array.init rows (fun row ->
        Array.init cols (fun col ->
            let ln, ld = cell_coords ~rows ~cols ~k ~row ~col in
            if ld >= ln then Cte (* shaded: no tree has D >= n *)
            else
              match mode with
              | Analytic -> analytic_winner_log ~ln ~k ~ld
              | Argmin -> fst (argmin_winner ~ln ~k ~ld ~ldelta:(fi k))))
  in
  { k; rows; cols; log_n_min; log_n_max; cells }

let glyph m ~row ~col =
  let ln, ld = cell_coords ~rows:m.rows ~cols:m.cols ~k:m.k ~row ~col in
  if ld >= ln then '.'
  else
    match m.cells.(row).(col) with
    | Cte -> 'C'
    | Yostar -> 'Y'
    | Bfdn -> 'B'
    | Bfdn_rec -> 'R'

let render m =
  let grid =
    Bfdn_util.Ascii.grid ~x_label:"log n ->" ~y_label:"log D ^" ~rows:m.rows
      ~cols:m.cols
      ~cell:(fun ~row ~col -> glyph m ~row ~col)
      ()
  in
  let legend =
    Bfdn_util.Ascii.legend
      [
        ('C', "CTE best");
        ('Y', "Yo* best");
        ('B', "BFDN best");
        ('R', "BFDN_l best");
        ('.', "no tree (n <= D)");
      ]
  in
  Printf.sprintf "Figure 1 reproduction (k = %d), best guarantee per (n, D):\n%s%s\n"
    m.k grid legend

let agreement_with_analytic m =
  let agree = ref 0 and total = ref 0 in
  for row = 0 to m.rows - 1 do
    for col = 0 to m.cols - 1 do
      let ln, ld = cell_coords ~rows:m.rows ~cols:m.cols ~k:m.k ~row ~col in
      if ld < ln then begin
        let sorted =
          List.sort
            (fun (_, a) (_, b) -> compare a b)
            (guarantees ~ln ~k:m.k ~ld ~ldelta:(fi m.k))
        in
        match sorted with
        | (a1, _) :: (a2, _) :: _
          when (a1 = Cte && a2 = Bfdn) || (a1 = Bfdn && a2 = Cte) ->
            incr total;
            (* Appendix A: BFDN beats CTE iff D^2 log^2 k <= n, up to the
               dropped constants; cells within a constant factor of the
               boundary are accepted either way. *)
            let lk = lsafe_log (fi m.k) in
            let margin = (2.0 *. ld) +. (2.0 *. log lk) -. ln in
            if Float.abs margin <= log 2.0 then incr agree
            else begin
              let analytic_bfdn = margin <= 0.0 in
              if (a1 = Bfdn) = analytic_bfdn then incr agree
            end
        | _ -> ()
      end
    done
  done;
  if !total = 0 then 1.0 else fi !agree /. fi !total
