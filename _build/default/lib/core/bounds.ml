let fi = float_of_int

(* Exact natural log with log(1) = 0 — theorem formulas must stay upper
   bounds even at k = 1 or delta = 1. *)
let log0 x = if x <= 1.0 then 0.0 else log x

(* Clamped variant for the comparison formulas (CTE, Yo-star) that divide
   by iterated logs. *)
let log_safe x = log (Float.max 2.0 x)

let offline_lb ~n ~k ~d = Float.max (2.0 *. fi n /. fi k) (2.0 *. fi d)

let offline_split ~n ~k ~d = 2.0 *. ((fi n /. fi k) +. fi d)

let dfs ~n = 2.0 *. fi (n - 1)

let bfdn ~n ~k ~d ~delta =
  (2.0 *. fi n /. fi k)
  +. (fi d *. fi d *. (Float.min (log0 (fi k)) (log0 (fi delta)) +. 3.0))

let bfdn_writeread = bfdn

let bfdn_breakdown ~n ~k ~d =
  (2.0 *. fi n /. fi k) +. (fi d *. fi d *. (log0 (fi k) +. 3.0))

let bfdn_graph ~n_edges ~k ~d ~delta = bfdn ~n:n_edges ~k ~d ~delta

let bfdn_rec ~n ~k ~d ~delta ~ell =
  let lf = fi ell in
  (4.0 *. fi n /. (fi k ** (1.0 /. lf)))
  +. ((2.0 ** (lf +. 1.0))
      *. (lf +. 1.0 +. Float.min (log0 (fi delta)) (log0 (fi k) /. lf))
      *. (fi d ** (1.0 +. (1.0 /. lf))))

let bfdn_rec_best ~n ~k ~d ~delta =
  let lmax =
    let lk = log_safe (fi k) in
    max 1 (int_of_float (lk /. Float.max 1.0 (log lk)))
  in
  let rec best ell acc =
    if ell > lmax then acc
    else begin
      let v = bfdn_rec ~n ~k ~d ~delta ~ell in
      let acc = match acc with (bv, _) when bv <= v -> acc | _ -> (v, ell) in
      best (ell + 1) acc
    end
  in
  best 2 (bfdn_rec ~n ~k ~d ~delta ~ell:1, 1)

let cte ~n ~k ~d =
  if k <= 1 then dfs ~n
  else (fi n /. (log_safe (fi k) /. log 2.0)) +. fi d

let yostar ~n ~k ~d =
  let loglogk = log_safe (log_safe (fi k)) in
  (2.0 ** sqrt (log_safe (fi d) *. loglogk))
  *. log_safe (fi k)
  *. (log_safe (fi n) +. log_safe (fi k))
  *. ((fi n /. fi k) +. fi d)

let urn_game ~delta ~k =
  (fi k *. Float.min (log0 (fi delta)) (log0 (fi k))) +. (2.0 *. fi k)

let lower_bound_k_eq_n ~d = fi d *. fi d /. 16.0
