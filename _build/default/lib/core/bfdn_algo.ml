module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng

type policy = Least_loaded | First_open | Random_open of Rng.t

type rstate = {
  mutable anchor : int;
  mutable stack : Env.move list; (* moves left to reach the anchor *)
}

type t = {
  env : Env.t;
  policy : policy;
  shortcut : bool;
  robots : rstate array;
  anchor_load : int array;
  (* Cursor over the ports of each node: everything before it is known to
     be non-dangling (or dangling-but-selected-this-round, hence resolved
     by the end of the round). Keeps the depth-next dangling lookup O(1)
     amortized even on high-degree nodes. *)
  dangle_cursor : int array;
  reanchor_counts : int array; (* indexed by anchor depth *)
  mutable reanchors_total : int;
  (* round-local set of dangling edges selected by earlier robots *)
  selected : (int * int, unit) Hashtbl.t;
}

let make ?(policy = Least_loaded) ?(shortcut = false) env =
  let n = Env.capacity env in
  let root = Partial_tree.root (Env.view env) in
  {
    env;
    policy;
    shortcut;
    robots = Array.init (Env.k env) (fun _ -> { anchor = root; stack = [] });
    anchor_load =
      (let load = Array.make n 0 in
       load.(root) <- Env.k env;
       load);
    dangle_cursor = Array.make n 0;
    reanchor_counts = Array.make (Env.capacity env + 2) 0;
    reanchors_total = 0;
    selected = Hashtbl.create 16;
  }

let next_dangling t view pos =
  let nports = Partial_tree.num_ports view pos in
  (* The cursor may permanently skip non-dangling ports, but a dangling
     port selected by an earlier robot of the same round is only skipped
     transiently: if that robot's move is vetoed (reactive blocking,
     Remark 8) the port stays dangling and must remain reachable. *)
  let rec scan c ~commit =
    if c >= nports then None
    else
      match Partial_tree.port view pos c with
      | Partial_tree.Dangling ->
          if Hashtbl.mem t.selected (pos, c) then scan (c + 1) ~commit:false
          else Some c
      | Partial_tree.To_parent | Partial_tree.Child _ ->
          if commit then t.dangle_cursor.(pos) <- c + 1;
          scan (c + 1) ~commit
  in
  scan t.dangle_cursor.(pos) ~commit:true

let least_loaded t candidates =
  List.fold_left
    (fun best v ->
      match best with
      | None -> Some v
      | Some b ->
          if
            t.anchor_load.(v) < t.anchor_load.(b)
            || (t.anchor_load.(v) = t.anchor_load.(b) && v < b)
          then Some v
          else best)
    None candidates

let pick_anchor t view =
  match Partial_tree.open_nodes_at_min_depth view with
  | [] -> Partial_tree.root view
  | candidates -> (
      match t.policy with
      | Least_loaded -> Option.get (least_loaded t candidates)
      | First_open -> List.fold_left min (List.hd candidates) candidates
      | Random_open rng -> Rng.pick rng (Array.of_list candidates))

(* Moves from [src] to [dst] along the discovered tree: up to the lowest
   common ancestor, then down the port path. With [src = root] this is the
   plain Algorithm 1 stack. *)
let route view src dst =
  let rec lift u du w dw ups =
    if u = w then (u, ups)
    else if du >= dw then
      lift (Option.get (Partial_tree.parent view u)) (du - 1) w dw (ups + 1)
    else lift u du (Option.get (Partial_tree.parent view w)) (dw - 1) ups
  in
  let lca, ups =
    lift src (Partial_tree.depth_of view src) dst (Partial_tree.depth_of view dst) 0
  in
  let rec drop n xs = if n = 0 then xs else match xs with [] -> [] | _ :: r -> drop (n - 1) r in
  let downs =
    List.map (fun p -> Env.Via_port p)
      (drop (Partial_tree.depth_of view lca) (Partial_tree.ports_from_root view dst))
  in
  List.init ups (fun _ -> Env.Up) @ downs

let reanchor t i =
  let view = Env.view t.env in
  let r = t.robots.(i) in
  let pos = Env.position t.env i in
  t.anchor_load.(r.anchor) <- t.anchor_load.(r.anchor) - 1;
  let v = pick_anchor t view in
  r.anchor <- v;
  t.anchor_load.(v) <- t.anchor_load.(v) + 1;
  r.stack <- route view pos v;
  let d = Partial_tree.depth_of view v in
  t.reanchor_counts.(d) <- t.reanchor_counts.(d) + 1;
  t.reanchors_total <- t.reanchors_total + 1

let select t =
  let view = Env.view t.env in
  let root = Partial_tree.root view in
  let k = Env.k t.env in
  let moves = Array.make k Env.Stay in
  Hashtbl.reset t.selected;
  for i = 0 to k - 1 do
    if Env.allowed t.env i then begin
      let r = t.robots.(i) in
      let pos = Env.position t.env i in
      if pos = root then reanchor t i;
      match r.stack with
      | m :: rest ->
          (* Breadth-first move along the stacked route. *)
          r.stack <- rest;
          moves.(i) <- m
      | [] -> (
          (* Depth-next move. *)
          match next_dangling t view pos with
          | Some p ->
              Hashtbl.replace t.selected (pos, p) ();
              moves.(i) <- Env.Via_port p
          | None ->
              if pos <> root then begin
                if t.shortcut && Partial_tree.min_open_depth view <> None then
                  (* Ablation: re-anchor in place instead of walking home
                     first (the paper keeps the walk for the write-read
                     model; see Section 2). *)
                  reanchor t i;
                match r.stack with
                | m :: rest ->
                    r.stack <- rest;
                    moves.(i) <- m
                | [] -> moves.(i) <- Env.Up
              end)
    end
  done;
  moves

let algo t =
  {
    Runner.name = "bfdn";
    select = (fun _ -> select t);
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }

let anchors t = Array.map (fun r -> r.anchor) t.robots

let reanchors_at_depth t d =
  if d < 0 || d >= Array.length t.reanchor_counts then 0
  else t.reanchor_counts.(d)

let reanchors_total t = t.reanchors_total

let check_claim4 t =
  let view = Env.view t.env in
  let anchor_list = Array.to_list (anchors t) in
  let covered v = List.exists (fun a -> Partial_tree.is_ancestor view a v) anchor_list in
  let all_open_covered acc v =
    acc && ((not (Partial_tree.is_open view v)) || covered v)
  in
  Partial_tree.fold_explored view ~init:true ~f:all_open_covered
