module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Whiteboard = Bfdn_sim.Whiteboard
module Runner = Bfdn_sim.Runner

(* An anchor is addressed by the edge leading to it: the planner knows the
   port path of the parent plus one down-port. [Root] is the bootstrap
   anchor. *)
type key = Root | Via of int * int

type rmode =
  | Idle (* at the root, waiting for an assignment *)
  | Walk of int list (* breadth-first descent along the stacked ports *)
  | Dfs (* partition-driven depth-first traversal *)

type rstate = {
  mutable mode : rmode;
  mutable key : key;
  mutable anchor_node : int; (* -1 until the robot reaches its anchor *)
  mutable anchor_ports : int;
  mutable snapshot : int list; (* finished ports of the anchor, as last seen *)
  mutable path : (int * int) list; (* (parent, parent-port) back to the root *)
  mutable pending_mark : (int * int) option; (* finished-port write on arrival *)
}

type t = {
  env : Env.t;
  wb : Whiteboard.t;
  robots : rstate array;
  (* planner state, living at the root *)
  mutable d : int;
  anchors : (key, unit) Hashtbl.t; (* A *)
  returned : (key, unit) Hashtbl.t; (* R *)
  children : (key, unit) Hashtbl.t; (* A' *)
  children_returned : (key, unit) Hashtbl.t; (* R' *)
  load : (key, int) Hashtbl.t;
  mutable assignments : int;
  per_depth : int array;
  (* memory accounting for the Section 4.1 claim: robots need at most
     Delta + D log Delta bits *)
  mutable max_stack : int;
  mutable max_anchor_ports : int;
}

let make env =
  let k = Env.k env in
  let t =
    {
      env;
      wb = Whiteboard.create ~hidden_n:(Env.capacity env);
      robots =
        Array.init k (fun _ ->
            {
              mode = Idle;
              key = Root;
              anchor_node = -1;
              anchor_ports = 0;
              snapshot = [];
              path = [];
              pending_mark = None;
            });
      d = 0;
      anchors = Hashtbl.create 16;
      returned = Hashtbl.create 16;
      children = Hashtbl.create 16;
      children_returned = Hashtbl.create 16;
      load = Hashtbl.create 16;
      assignments = 0;
      per_depth = Array.make (Env.capacity env + 2) 0;
      max_stack = 0;
      max_anchor_ports = 0;
    }
  in
  Hashtbl.replace t.anchors Root ();
  t

let working_depth t = t.d
let assignments_total t = t.assignments
let assignments_at_depth t d =
  if d < 0 || d >= Array.length t.per_depth then 0 else t.per_depth.(d)

let memory_bits_used t =
  (* port stack: one port number per level; finished-port set: one bit per
     port of the anchor. *)
  let port_bits = Bfdn_util.Mathx.ceil_log2 (max 2 t.max_anchor_ports) in
  (t.max_stack * port_bits) + t.max_anchor_ports

let max_stack_length t = t.max_stack

let load_of t key = try Hashtbl.find t.load key with Not_found -> 0

let add_load t key delta =
  Hashtbl.replace t.load key (load_of t key + delta)

let ensure_board t pos =
  if not (Whiteboard.initialized t.wb pos) then begin
    let view = Env.view t.env in
    Whiteboard.init_node t.wb pos
      ~num_ports:(Partial_tree.num_ports view pos)
      ~is_root:(pos = Partial_tree.root view)
  end

(* A robot standing at the root in [Dfs] mode has completed its tour:
   deliver its memory to the planner. *)
let report t r =
  if Hashtbl.mem t.anchors r.key && not (Hashtbl.mem t.returned r.key) then begin
    Hashtbl.replace t.returned r.key ();
    if r.anchor_node >= 0 then begin
      let first_down = if r.key = Root then 0 else 1 in
      for p = first_down to r.anchor_ports - 1 do
        Hashtbl.replace t.children (Via (r.anchor_node, p)) ()
      done;
      List.iter
        (fun p ->
          if p >= first_down then
            Hashtbl.replace t.children_returned (Via (r.anchor_node, p)) ())
        r.snapshot
    end
  end;
  (* Algorithm 2 line 6 reads the robot's whole memory: the finished ports
     of its anchor also witness returns from {e current-era} anchors one
     level below it — without this, the planner keeps probing subtrees the
     reporting robot itself finished. *)
  if r.anchor_node >= 0 then
    List.iter
      (fun p ->
        let key = Via (r.anchor_node, p) in
        if Hashtbl.mem t.anchors key then Hashtbl.replace t.returned key ())
      r.snapshot;
  add_load t r.key (-1);
  r.mode <- Idle;
  r.anchor_node <- -1;
  r.snapshot <- [];
  r.path <- []

let unreturned_anchors t =
  Hashtbl.fold
    (fun key () acc -> if Hashtbl.mem t.returned key then acc else key :: acc)
    t.anchors []

(* Algorithm 2 lines 7-13: advance the working depth once a robot has
   returned from every current anchor. *)
let advance t =
  let progressed = ref true in
  while !progressed do
    progressed := false;
    if unreturned_anchors t = [] then begin
      let fresh =
        Hashtbl.fold
          (fun key () acc ->
            if Hashtbl.mem t.children_returned key then acc else key :: acc)
          t.children []
      in
      if fresh <> [] then begin
        t.d <- t.d + 1;
        Hashtbl.reset t.anchors;
        Hashtbl.reset t.returned;
        Hashtbl.reset t.children;
        Hashtbl.reset t.children_returned;
        List.iter (fun key -> Hashtbl.replace t.anchors key ()) fresh;
        progressed := true
      end
    end
  done

(* Port stack leading from the root to an anchor key. *)
let stack_of_key t key =
  let view = Env.view t.env in
  match key with
  | Root -> []
  | Via (parent, port) -> Partial_tree.ports_from_root view parent @ [ port ]

let assign t i =
  let r = t.robots.(i) in
  match
    List.fold_left
      (fun best key ->
        match best with
        | None -> Some key
        | Some b ->
            if
              load_of t key < load_of t b
              || (load_of t key = load_of t b && compare key b < 0)
            then Some key
            else best)
      None (unreturned_anchors t)
  with
  | None -> () (* exploration finished: stay idle *)
  | Some key ->
      r.key <- key;
      let stack = stack_of_key t key in
      t.max_stack <- max t.max_stack (List.length stack);
      r.mode <- Walk stack;
      add_load t key 1;
      t.assignments <- t.assignments + 1;
      let depth = match key with Root -> 0 | Via (parent, _) ->
        Partial_tree.depth_of (Env.view t.env) parent + 1
      in
      if depth < Array.length t.per_depth then
        t.per_depth.(depth) <- t.per_depth.(depth) + 1

let select t =
  let view = Env.view t.env in
  let root = Partial_tree.root view in
  let k = Env.k t.env in
  let moves = Array.make k Env.Stay in
  (* 1. Deliver pending local writes and refresh anchor snapshots. *)
  for i = 0 to k - 1 do
    let r = t.robots.(i) in
    let pos = Env.position t.env i in
    (match r.pending_mark with
    | Some (u, p) ->
        assert (u = pos);
        ensure_board t u;
        Whiteboard.mark_finished t.wb u p;
        r.pending_mark <- None
    | None -> ());
    if r.anchor_node = pos && Whiteboard.initialized t.wb pos then
      r.snapshot <- Whiteboard.finished_ports t.wb pos
  done;
  (* 2. Robots whose tour is complete report to the planner. *)
  for i = 0 to k - 1 do
    let r = t.robots.(i) in
    if r.mode = Dfs && Env.position t.env i = root then report t r
  done;
  (* 3. Planner bookkeeping at the root. *)
  advance t;
  for i = 0 to k - 1 do
    let r = t.robots.(i) in
    if r.mode = Idle && Env.position t.env i = root then assign t i
  done;
  (* 4. Movement decisions. *)
  for i = 0 to k - 1 do
    let r = t.robots.(i) in
    let pos = Env.position t.env i in
    let descend p =
      ensure_board t pos;
      Whiteboard.mark_dispatched t.wb pos p;
      r.path <- (pos, p) :: r.path;
      moves.(i) <- Env.Via_port p
    in
    let go_up () =
      match r.path with
      | (parent, port) :: rest ->
          r.path <- rest;
          (* Mark the parent's port "finished" only when the node we are
             leaving is itself fully finished: by induction this makes
             finished-marks sound certificates that the whole subtree is
             explored. A robot bouncing off a subtree someone else is
             still working in must NOT certify it, or the planner stops
             sending helpers and one robot finishes alone (breaking the
             2n/k term of Proposition 6). *)
          ensure_board t pos;
          if Whiteboard.all_finished t.wb pos then
            r.pending_mark <- Some (parent, port);
          moves.(i) <- Env.Up
      | [] -> () (* at the root: wait *)
    in
    let dfs_step () =
      ensure_board t pos;
      match Whiteboard.partition t.wb pos with
      | Some p -> descend p
      | None -> go_up ()
    in
    match r.mode with
    | Idle -> ()
    | Walk (p :: rest) ->
        r.mode <- Walk rest;
        descend p
    | Walk [] ->
        (* Arrived at the anchor: record it and start the traversal. *)
        r.anchor_node <- pos;
        ensure_board t pos;
        r.anchor_ports <- Partial_tree.num_ports view pos;
        t.max_anchor_ports <- max t.max_anchor_ports r.anchor_ports;
        r.snapshot <- Whiteboard.finished_ports t.wb pos;
        r.mode <- Dfs;
        dfs_step ()
    | Dfs -> if pos <> root then dfs_step ()
  done;
  moves

let algo t =
  {
    Runner.name = "bfdn-planner";
    select = (fun _ -> select t);
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }
