(** BFDN in the restricted-memory / write-read communication model
    (Section 4.1, Algorithm 2).

    Robots communicate with a central planner only while standing at the
    root; elsewhere they interact with per-node whiteboards through the
    local [PARTITION] routine ({!Bfdn_sim.Whiteboard}). Each robot carries
    O(Δ + D log Δ) bits: the port stack towards its assigned anchor, and
    the finished-port set of its anchor observed on the way back.

    The planner tracks the working depth [d], the anchor list [A] at depth
    [d], the anchors [R] from which some robot has returned, and the
    candidate children [A'] / [R'] — exactly the state of Algorithm 2.
    Candidate anchors are withdrawn only when a robot anchored there has
    reached the root again, which is the information actually available at
    the root; the urn-game analysis still applies (Proposition 6), giving
    the same [2n/k + D^2 (min(log k, log Δ) + 3)] guarantee.

    Anchors are addressed as port paths (a parent node already explored
    plus one of its down-ports), so an anchor may be an as-yet-unexplored
    node — the robot's last breadth-first step then crosses the dangling
    edge itself. *)

type t

val make : Bfdn_sim.Env.t -> t

val algo : t -> Bfdn_sim.Runner.algo

(** {2 Instrumentation} *)

val working_depth : t -> int

val assignments_total : t -> int
(** Total anchor assignments performed by the planner (the write-read
    analogue of the reanchor count). *)

val assignments_at_depth : t -> int -> int

val memory_bits_used : t -> int
(** Largest robot memory actually used, in bits: the deepest port stack
    times the port width, plus the finished-port bit set — the quantity
    Section 4.1 bounds by [Δ + D log Δ]. *)

val max_stack_length : t -> int
(** Deepest anchor stack handed to a robot; at most [D]. *)
