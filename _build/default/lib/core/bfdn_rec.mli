(** Recursive BFDN — Section 5, Appendices B and C.

    [BFDN_ℓ] composes the divide-depth functor (Algorithm 3) [ℓ - 1] times
    over the depth-bounded leaf algorithm [BFDN_1(k*, k', d')]:

    - a {e leaf} instance is Algorithm 1 restricted to a subtree, with
      anchors limited to relative depth [d']; robots finding no dangling
      edge within the budget turn inactive at the instance root, while
      robots already deep inside keep exploring their subtree (running
      "deep");
    - a {e divide} instance at level [m] runs [n_iter = d^(1/m)]
      iterations; each iteration partitions its robots into [n_team = k*]
      teams over the sub-roots collected from the previous iteration's
      still-active anchors, walks re-assigned robots to their new root,
      and steps the sub-instances synchronously until fewer than [k*]
      robots remain active;
    - per Definition 13, the top level runs with depth budgets
      [d_j = 2^(j·ℓ)] for [j = 1, 2, ...], interrupting each call right
      after its last iteration and handing positions and anchors to the
      next call, until the tree is fully explored.

    Only [K = ⌊k^(1/ℓ)⌋^ℓ] robots take part; the rest idle at the root
    (the paper's arbitrary-[k] reduction). Guarantee (Theorem 10):
    exploration completes within
    [4n/k^(1/ℓ) + 2^(ℓ+1) (ℓ + 1 + min(log Δ, log k / ℓ)) D^(1+1/ℓ)]
    rounds. Unlike plain BFDN, robots are not required to re-assemble at
    the root. *)

type t

val make : ell:int -> Bfdn_sim.Env.t -> t
(** @raise Invalid_argument if [ell < 1]. *)

val algo : t -> Bfdn_sim.Runner.algo
(** [finished] is full exploration (no return-to-root requirement). *)

(** {2 Instrumentation} *)

val calls_started : t -> int
(** Number of Definition 13 calls (values of [j]) started so far. *)

val robots_used : t -> int
(** [K = ⌊k^(1/ℓ)⌋^ℓ]. *)
