(** Runtime-guarantee formulas of every algorithm discussed by the paper,
    used by the tests (theorem validation) and by the Figure 1 region
    computation.

    All formulas are stated for a tree with [n] nodes, depth [d], maximum
    degree [delta], explored by [k] robots. As in Appendix A, O-constants
    are dropped where the paper drops them. *)

val offline_lb : n:int -> k:int -> d:int -> float
(** [max (2n/k) (2d)] — no offline traversal is faster (Section 1). *)

val offline_split : n:int -> k:int -> d:int -> float
(** [2 (n/k + d)] — the constructive offline baseline of [7, 13]. *)

val dfs : n:int -> float
(** [2 (n - 1)] — single-robot depth-first search. *)

val bfdn : n:int -> k:int -> d:int -> delta:int -> float
(** Theorem 1: [2n/k + d^2 (min(log k, log delta) + 3)]. *)

val bfdn_writeread : n:int -> k:int -> d:int -> delta:int -> float
(** Proposition 6 — same expression as {!bfdn}. *)

val bfdn_breakdown : n:int -> k:int -> d:int -> float
(** Proposition 7: the average-moves threshold [2n/k + d^2 (log k + 3)]
    (the [log delta] improvement is lost under break-downs). *)

val bfdn_graph : n_edges:int -> k:int -> d:int -> delta:int -> float
(** Proposition 9 — {!bfdn} with [n] counting edges and [d] the radius. *)

val bfdn_rec : n:int -> k:int -> d:int -> delta:int -> ell:int -> float
(** Theorem 10:
    [4n/k^(1/ell) + 2^(ell+1)(ell + 1 + min(log delta, log k / ell)) d^(1+1/ell)]. *)

val bfdn_rec_best : n:int -> k:int -> d:int -> delta:int -> float * int
(** {!bfdn_rec} minimized over [1 <= ell <= log k / log log k] (the
    constraint under which BFDN_ℓ can outperform CTE, Figure 1 caption);
    returns the bound and the optimizing [ell]. *)

val cte : n:int -> k:int -> d:int -> float
(** [10]: [n / log2 k + d] (constants dropped as in Appendix A). *)

val yostar : n:int -> k:int -> d:int -> float
(** [13]: [2^(sqrt(log d · log log k)) · log k · (log n + log k) · (n/k + d)]. *)

val urn_game : delta:int -> k:int -> float
(** Theorem 3: [k min(log delta, log k) + 2k]. *)

val lower_bound_k_eq_n : d:int -> float
(** [6]: [d^2 / 16] — a concrete instantiation of the Ω(D²) lower bound
    for exploration with [k = n] robots, used as the floor line in the
    open-questions table. *)
