type t = {
  n : int;
  edges : int;
  depth : int;
  max_degree : int;
  leaves : int;
  avg_branching : float;
}

let compute tree =
  let n = Tree.n tree in
  let leaves = ref 0 in
  let internal = ref 0 in
  let child_total = ref 0 in
  Tree.iter_nodes tree (fun v ->
      let c = Array.length (Tree.children tree v) in
      if c = 0 then incr leaves
      else begin
        incr internal;
        child_total := !child_total + c
      end);
  {
    n;
    edges = n - 1;
    depth = Tree.depth tree;
    max_degree = Tree.max_degree tree;
    leaves = !leaves;
    avg_branching =
      (if !internal = 0 then 0.0
       else float_of_int !child_total /. float_of_int !internal);
  }

let pp ppf s =
  Format.fprintf ppf "n=%d D=%d Δ=%d leaves=%d branching=%.2f" s.n s.depth
    s.max_degree s.leaves s.avg_branching

let offline_lower_bound ~n ~k ~depth =
  max (Bfdn_util.Mathx.ceil_div (2 * (n - 1)) k) (2 * depth)
