(** Summary statistics of a tree instance, for experiment reporting. *)

type t = {
  n : int;  (** number of nodes *)
  edges : int;
  depth : int;  (** D *)
  max_degree : int;  (** Δ *)
  leaves : int;
  avg_branching : float;  (** mean child count over internal nodes *)
}

val compute : Tree.t -> t

val pp : Format.formatter -> t -> unit

val offline_lower_bound : n:int -> k:int -> depth:int -> int
(** [max (ceil (2n/k)) (2D)] — no k-robot traversal finishes faster
    (every edge crossed twice; the deepest node reached and left). *)
