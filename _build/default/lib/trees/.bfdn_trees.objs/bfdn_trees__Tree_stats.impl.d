lib/trees/tree_stats.ml: Array Bfdn_util Format Tree
