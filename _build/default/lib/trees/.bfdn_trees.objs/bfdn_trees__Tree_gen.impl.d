lib/trees/tree_gen.ml: Array Bfdn_util Tree
