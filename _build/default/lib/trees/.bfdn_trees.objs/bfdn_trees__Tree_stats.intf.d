lib/trees/tree_stats.mli: Format Tree
