lib/trees/tree.ml: Array Buffer Format List Printf String
