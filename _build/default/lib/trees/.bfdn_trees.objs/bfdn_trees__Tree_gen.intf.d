lib/trees/tree_gen.mli: Bfdn_util Tree
