lib/trees/tree.mli: Format
