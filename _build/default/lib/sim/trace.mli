(** Exploration traces and small-scale ASCII rendering.

    Attach {!recorder} to {!Runner.run}'s [on_round] hook to capture one
    frame per round; {!render} then draws the discovered tree with robot
    positions, which the examples use as a terminal animation. *)

type frame = {
  round : int;
  positions : int array;
  explored : int;  (** nodes explored so far *)
  dangling : int;
}

type t

val create : unit -> t

val recorder : t -> Env.t -> unit
(** To be used as [~on_round:(Trace.recorder trace)]. *)

val record : t -> Env.t -> unit
(** Capture the current state as a frame (used for the initial state). *)

val frames : t -> frame list
(** In chronological order. *)

val length : t -> int

val render_frame : Env.t -> string
(** Indented rendering of the current discovered tree; each line shows one
    node, its dangling-port count, and the robots standing on it. Intended
    for trees of at most a few dozen nodes. *)

val depth_timeline : t -> Env.t -> string
(** Heat-map of robot counts per depth (rows) over time (columns, one per
    recorded frame, subsampled to fit 72 columns): the breadth-first wave
    of BFDN is visible as a diagonal front. Uses the final environment to
    resolve node depths. *)
