module Tree = Bfdn_trees.Tree
module Pqueue = Bfdn_util.Pqueue

type robot = int

type action = Park | Go_up | Go_port of int

type t = {
  hidden : Tree.t;
  view : Partial_tree.t;
  k : int;
  speeds : float array;
  positions : int array;
  in_transit : bool array; (* robot has a pending arrival event *)
  claims : (int * int, unit) Hashtbl.t;
  events : (robot * int * int option) Pqueue.t;
      (* (robot, destination, crossed dangling port at the source) *)
  mutable now : float;
  mutable makespan : float;
  travelled : int array;
}

type decide = t -> robot -> action

let create ?speeds hidden ~k =
  if k < 1 then invalid_arg "Async_env.create: k must be >= 1";
  let speeds =
    match speeds with
    | None -> Array.make k 1.0
    | Some s ->
        if Array.length s <> k then invalid_arg "Async_env.create: wrong speeds arity";
        if Array.exists (fun x -> x <= 0.0) s then
          invalid_arg "Async_env.create: speeds must be positive";
        Array.copy s
  in
  let root = Tree.root hidden in
  let view = Partial_tree.Internal.create ~hidden_n:(Tree.n hidden) ~root in
  Partial_tree.Internal.reveal view root ~parent:None ~num_ports:(Tree.degree hidden root);
  {
    hidden;
    view;
    k;
    speeds;
    positions = Array.make k root;
    in_transit = Array.make k false;
    claims = Hashtbl.create 16;
    events = Pqueue.create ();
    now = 0.0;
    makespan = 0.0;
    travelled = Array.make k 0;
  }

let view t = t.view
let k t = t.k
let capacity t = Tree.n t.hidden
let now t = t.now
let position t i = t.positions.(i)
let claimed t v p = Hashtbl.mem t.claims (v, p)
let fully_explored t = Partial_tree.complete t.view

let all_at_root t =
  let root = Partial_tree.root t.view in
  Array.for_all (fun p -> p = root) t.positions

let makespan t = t.makespan
let distance_travelled t i = t.travelled.(i)

(* Launch a traversal: schedule the arrival event and claim dangling
   ports. *)
let depart t i action =
  let pos = t.positions.(i) in
  match action with
  | Park -> false
  | Go_up -> (
      match Partial_tree.parent t.view pos with
      | None -> invalid_arg "Async_env: Go_up at the root"
      | Some parent ->
          Pqueue.push t.events (t.now +. (1.0 /. t.speeds.(i))) (i, parent, None);
          t.in_transit.(i) <- true;
          true)
  | Go_port p ->
      if p < 0 || p >= Partial_tree.num_ports t.view pos then
        invalid_arg "Async_env: port out of range";
      let crossed, dst =
        match Partial_tree.port t.view pos p with
        | Partial_tree.To_parent -> (None, Option.get (Partial_tree.parent t.view pos))
        | Partial_tree.Child c -> (None, c)
        | Partial_tree.Dangling ->
            if Hashtbl.mem t.claims (pos, p) then
              invalid_arg "Async_env: dangling port already claimed";
            Hashtbl.replace t.claims (pos, p) ();
            (Some p, Tree.neighbor_via_port t.hidden pos p)
      in
      Pqueue.push t.events (t.now +. (1.0 /. t.speeds.(i))) (i, dst, crossed);
      t.in_transit.(i) <- true;
      true

let run ?(max_events = 10_000_000) decide t =
  let parked = Array.make t.k false in
  let ask i =
    if not t.in_transit.(i) then begin
      if depart t i (decide t i) then parked.(i) <- false else parked.(i) <- true
    end
  in
  (* Initial decisions in robot order. *)
  for i = 0 to t.k - 1 do
    ask i
  done;
  let events = ref 0 in
  let continue = ref true in
  while !continue do
    match Pqueue.pop t.events with
    | None -> continue := false
    | Some (time, (i, dst, crossed)) ->
        incr events;
        if !events > max_events then failwith "Async_env.run: event limit exceeded";
        t.now <- time;
        t.makespan <- time;
        let src = t.positions.(i) in
        t.positions.(i) <- dst;
        t.in_transit.(i) <- false;
        t.travelled.(i) <- t.travelled.(i) + 1;
        let discovered =
          match crossed with
          | None -> false
          | Some p ->
              Hashtbl.remove t.claims (src, p);
              Partial_tree.Internal.resolve_dangling t.view src p dst;
              Partial_tree.Internal.reveal t.view dst ~parent:(Some src)
                ~num_ports:(Tree.degree t.hidden dst);
              true
        in
        ask i;
        (* New frontier: wake the parked robots (in robot order). *)
        if discovered then
          for j = 0 to t.k - 1 do
            if parked.(j) then ask j
          done
  done
