type node = int

type board = {
  num_ports : int;
  min_down_port : int; (* 1 for non-root nodes (port 0 is the parent), 0 at the root *)
  mutable next : int; (* upper bound on the next port to dispatch, descending *)
  dispatched : bool array;
  finished : bool array;
}

type t = { boards : board option array }

let create ~hidden_n = { boards = Array.make hidden_n None }

let initialized t v = t.boards.(v) <> None

let init_node t v ~num_ports ~is_root =
  match t.boards.(v) with
  | Some _ -> ()
  | None ->
      let min_down_port = if is_root then 0 else 1 in
      t.boards.(v) <-
        Some
          {
            num_ports;
            min_down_port;
            next = num_ports - 1;
            dispatched = Array.make num_ports false;
            finished = Array.make num_ports false;
          }

let get t v name =
  match t.boards.(v) with
  | Some b -> b
  | None -> invalid_arg (name ^ ": whiteboard not initialized")

let partition t v =
  let b = get t v "Whiteboard.partition" in
  while b.next >= b.min_down_port && b.dispatched.(b.next) do
    b.next <- b.next - 1
  done;
  if b.next < b.min_down_port then None
  else begin
    let p = b.next in
    b.dispatched.(p) <- true;
    b.next <- b.next - 1;
    Some p
  end

let mark_dispatched t v p =
  let b = get t v "Whiteboard.mark_dispatched" in
  if p < 0 || p >= b.num_ports then invalid_arg "Whiteboard.mark_dispatched: bad port";
  b.dispatched.(p) <- true

let mark_finished t v p =
  let b = get t v "Whiteboard.mark_finished" in
  if p < 0 || p >= b.num_ports then invalid_arg "Whiteboard.mark_finished: bad port";
  b.finished.(p) <- true

let is_finished t v p =
  let b = get t v "Whiteboard.is_finished" in
  if p < 0 || p >= b.num_ports then invalid_arg "Whiteboard.is_finished: bad port";
  b.finished.(p)

let finished_ports t v =
  let b = get t v "Whiteboard.finished_ports" in
  let acc = ref [] in
  for p = b.num_ports - 1 downto 0 do
    if b.finished.(p) then acc := p :: !acc
  done;
  !acc

let all_dispatched t v =
  let b = get t v "Whiteboard.all_dispatched" in
  let ok = ref true in
  for p = b.min_down_port to b.num_ports - 1 do
    if not b.dispatched.(p) then ok := false
  done;
  !ok

let all_finished t v =
  let b = get t v "Whiteboard.all_finished" in
  let ok = ref true in
  for p = b.min_down_port to b.num_ports - 1 do
    if not b.finished.(p) then ok := false
  done;
  !ok
