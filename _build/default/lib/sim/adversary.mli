(** Adaptive tree-building adversaries.

    The tightness results the paper builds on (Higashikawa et al. [11]
    for CTE, Disser et al. [6] for the Ω(D²) lower bound) construct the
    hidden tree {e online against the algorithm}: the shape of a node's
    subtree is fixed only at the moment a robot reveals the node. This
    module provides budgeted policies and turns them into a lazily
    materialized {!Env.world}.

    A policy sees, at each reveal, the new node's depth, how many robots
    are arriving on it this round, the current round number, and the
    remaining node budget; it returns the number of children to promise
    (clamped to the budgets). Against a {e deterministic} algorithm the
    frozen tree is an ordinary instance on which a re-run reproduces the
    adaptive run exactly — that is how lower-bound constructions are
    "frozen" into concrete trees, and it is asserted in the test-suite. *)

type policy =
  node:int -> depth:int -> arriving:int -> round:int -> remaining:int -> int

type t

val make : capacity:int -> depth_budget:int -> policy -> t
(** [capacity] bounds the total node count (ids are pre-allocated when
    promised); [depth_budget] bounds the tree depth — a node at that depth
    gets no children regardless of the policy. *)

val world : t -> Env.world
(** The lazily materialized world. Each {!make} result must drive exactly
    one environment. *)

val frozen : t -> Bfdn_trees.Tree.t
(** The tree materialized so far (every promised node; after a completed
    exploration this is the full frozen instance). *)

val nodes_built : t -> int

val make_rec : capacity:int -> depth_budget:int -> (t -> policy) -> t
(** Tie the knot for stateful policies that inspect the structure built so
    far through the accessors below. *)

val parent_of : t -> int -> int
(** Parent of a promised node ([-1] for the root). *)

val child_index : t -> int -> int
(** Position of a promised node among its siblings (0-based). *)

val depth_of_node : t -> int -> int

(** {2 Stock policies} *)

val corridor_crowds : threshold:int -> policy
(** Crowds of at least [threshold] robots get a single child (the whole
    crowd marches one edge per round, parallelism 1); smaller groups get
    two children (keep splitting them). Targets proportional-splitting
    explorers such as CTE. *)

val thick_comb : t -> policy
(** [11]-style comb grown online: a spine node continues with one spine
    child plus one short tooth; teeth die immediately. Proportional
    splitters keep diverting half of every crowd into dead teeth while the
    spine advances one edge per round. Use with {!make_rec}. *)

val greedy_widest : policy
(** Spend the budget as fast as possible: every reveal takes all remaining
    nodes as children (a shallow bomb). *)

val miser : policy
(** One child per reveal: the tree degenerates to a path. *)

val random_policy : Bfdn_util.Rng.t -> max_children:int -> policy
(** Uniform 0..[max_children] children per reveal. *)
