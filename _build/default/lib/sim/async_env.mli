(** Continuous-time exploration — the relaxation suggested by Remark 8.

    Instead of synchronous rounds, each robot [i] has a speed [s_i] and
    needs [1 / s_i] time units per edge. The environment is event-driven:
    whenever a robot arrives somewhere (and once at time 0), the algorithm
    is asked for its next action, with full knowledge of the discovered
    tree at that instant (complete communication, instantaneous
    decisions). Equal-time arrivals are processed in robot order, so runs
    are deterministic.

    A dangling edge being traversed is {e claimed}: the traversal will
    reveal it, so other robots should (and, for correctness of the
    accounting, may) not start a duplicate discovery; the claim is visible
    through {!claimed}.

    A robot that answers [Park] sleeps; parked robots are re-asked after
    every discovery event, so waiting for new frontier is expressible.
    The paper proves nothing in this model — this is the library's
    executable playground for the open extension. *)

type t

type robot = int

type action =
  | Park  (** sleep until the next discovery (or forever, once done) *)
  | Go_up
  | Go_port of int

type decide = t -> robot -> action

val create : ?speeds:float array -> Bfdn_trees.Tree.t -> k:int -> t
(** [speeds] defaults to all ones; each must be positive. *)

val view : t -> Partial_tree.t
val k : t -> int

val capacity : t -> int
(** Node count of the hidden tree, for sizing per-node state. *)

val now : t -> float
val position : t -> robot -> Partial_tree.node
val claimed : t -> Partial_tree.node -> int -> bool
(** Whether a dangling port is currently being traversed. *)

val run : ?max_events:int -> decide -> t -> unit
(** Drive events until every robot is parked and no arrival is pending.
    @raise Failure on [max_events] (default [10_000_000]) — a live-lock. *)

val fully_explored : t -> bool
val all_at_root : t -> bool
val makespan : t -> float
(** Time of the last arrival processed. *)

val distance_travelled : t -> robot -> int
(** Edges traversed by the robot. *)
