module Tree = Bfdn_trees.Tree
module Rng = Bfdn_util.Rng

type policy =
  node:int -> depth:int -> arriving:int -> round:int -> remaining:int -> int

type t = {
  capacity : int;
  depth_budget : int;
  policy : policy;
  parents : int array; (* -1 until promised *)
  depths : int array;
  children : int list array; (* child ids of a revealed node, reverse port order *)
  child_of_port : int array array; (* set at reveal *)
  mutable next_id : int;
  mutable max_depth : int;
  mutable max_degree : int;
  revealed : bool array;
}

let make ~capacity ~depth_budget policy =
  if capacity < 1 then invalid_arg "Adversary.make: capacity must be >= 1";
  if depth_budget < 0 then invalid_arg "Adversary.make: negative depth budget";
  {
    capacity;
    depth_budget;
    policy;
    parents = Array.make capacity (-1);
    depths = Array.make capacity 0;
    children = Array.make capacity [];
    child_of_port = Array.make capacity [||];
    next_id = 1 (* the root is node 0 *);
    max_depth = 0;
    max_degree = 0;
    revealed = Array.make capacity false;
  }

let nodes_built t = t.next_id

(* Decide the degree of [node] at its reveal: promise children, allocating
   their ids immediately. *)
let reveal_degree t ~node ~arriving ~round =
  if t.revealed.(node) then
    invalid_arg "Adversary: node revealed twice (world misuse)";
  t.revealed.(node) <- true;
  let depth = t.depths.(node) in
  let remaining = t.capacity - t.next_id in
  let wanted =
    if depth >= t.depth_budget then 0
    else max 0 (t.policy ~node ~depth ~arriving ~round ~remaining)
  in
  let promised = min wanted remaining in
  let ports = Array.make promised (-1) in
  for c = 0 to promised - 1 do
    let id = t.next_id in
    t.next_id <- t.next_id + 1;
    t.parents.(id) <- node;
    t.depths.(id) <- depth + 1;
    t.children.(node) <- id :: t.children.(node);
    ports.(c) <- id;
    if depth + 1 > t.max_depth then t.max_depth <- depth + 1
  done;
  t.child_of_port.(node) <- ports;
  let degree = promised + if node = 0 then 0 else 1 in
  if degree > t.max_degree then t.max_degree <- degree;
  degree

let child t v p =
  let ports = t.child_of_port.(v) in
  (* Port 0 of a non-root node is its parent; the environment only asks
     for dangling (child) ports. *)
  let idx = if v = 0 then p else p - 1 in
  if idx < 0 || idx >= Array.length ports then
    invalid_arg "Adversary.child: not a promised child port";
  ports.(idx)

let make_rec ~capacity ~depth_budget make_policy =
  let forward = ref (fun ~node:_ ~depth:_ ~arriving:_ ~round:_ ~remaining:_ -> 0) in
  let t =
    make ~capacity ~depth_budget
      (fun ~node ~depth ~arriving ~round ~remaining ->
        !forward ~node ~depth ~arriving ~round ~remaining)
  in
  forward := make_policy t;
  t

let parent_of t v = t.parents.(v)

let child_index t v =
  if v = 0 then 0
  else begin
    let ports = t.child_of_port.(t.parents.(v)) in
    let rec find i = if ports.(i) = v then i else find (i + 1) in
    find 0
  end

let depth_of_node t v = t.depths.(v)

let frozen t =
  Tree.of_parents (Array.sub t.parents 0 (max 1 t.next_id))

let world t =
  {
    Env.w_capacity = t.capacity;
    w_root = 0;
    w_degree = (fun ~node ~arriving ~round -> reveal_degree t ~node ~arriving ~round);
    w_child = (fun v p -> child t v p);
    w_stats = (fun () -> (t.next_id, t.max_depth, t.max_degree));
    w_tree = (fun () -> frozen t);
  }

(* ---- stock policies ---- *)

let corridor_crowds ~threshold ~node:_ ~depth:_ ~arriving ~round:_ ~remaining:_ =
  if arriving >= threshold then 1 else 2

let greedy_widest ~node:_ ~depth:_ ~arriving:_ ~round:_ ~remaining = remaining

let miser ~node:_ ~depth:_ ~arriving:_ ~round:_ ~remaining:_ = 1

let random_policy rng ~max_children ~node:_ ~depth:_ ~arriving:_ ~round:_ ~remaining:_ =
  Rng.int rng (max_children + 1)

(* Spine-ness is decided at reveal time: the root is spine, and the
   first-listed child of a spine node is spine; everything else is a dead
   tooth. Parents are always revealed before their children, so the memo
   is filled in order. *)
let thick_comb t =
  let spine = Hashtbl.create 64 in
  Hashtbl.replace spine 0 ();
  fun ~node ~depth:_ ~arriving:_ ~round:_ ~remaining:_ ->
    let is_spine =
      node = 0
      || (Hashtbl.mem spine (parent_of t node) && child_index t node = 0)
    in
    if is_spine then begin
      Hashtbl.replace spine node ();
      2
    end
    else 0
