type node = int

type port_state = To_parent | Dangling | Child of node

(* Per-port encoding inside [port_child]: -1 = leads to parent,
   -2 = dangling, otherwise the explored child id. *)
let enc_parent = -1
let enc_dangling = -2

type t = {
  root : node;
  explored : bool array;
  nports : int array;
  parents : int array;
  depths : int array;
  port_child : int array array;
  dangling_cnt : int array;
  subtree_dangling : int array;
  open_at : (node, unit) Hashtbl.t option array; (* indexed by depth *)
  mutable min_open_ptr : int;
  mutable total_dangling : int;
  mutable num_explored : int;
}

let root t = t.root
let is_explored t v = t.explored.(v)
let num_explored t = t.num_explored
let num_dangling t = t.total_dangling
let complete t = t.total_dangling = 0

let check_explored t v name =
  if not t.explored.(v) then invalid_arg (name ^ ": unexplored node")

let num_ports t v =
  check_explored t v "Partial_tree.num_ports";
  t.nports.(v)

let port t v p =
  check_explored t v "Partial_tree.port";
  if p < 0 || p >= t.nports.(v) then invalid_arg "Partial_tree.port: bad port";
  let e = t.port_child.(v).(p) in
  if e = enc_parent then To_parent
  else if e = enc_dangling then Dangling
  else Child e

let dangling_ports t v =
  check_explored t v "Partial_tree.dangling_ports";
  let acc = ref [] in
  let ports = t.port_child.(v) in
  for p = Array.length ports - 1 downto 0 do
    if ports.(p) = enc_dangling then acc := p :: !acc
  done;
  !acc

let explored_children t v =
  check_explored t v "Partial_tree.explored_children";
  let acc = ref [] in
  let ports = t.port_child.(v) in
  for p = Array.length ports - 1 downto 0 do
    if ports.(p) >= 0 then acc := (p, ports.(p)) :: !acc
  done;
  !acc

let parent t v =
  check_explored t v "Partial_tree.parent";
  if v = t.root then None else Some t.parents.(v)

let depth_of t v =
  check_explored t v "Partial_tree.depth_of";
  t.depths.(v)

let is_open t v = t.explored.(v) && t.dangling_cnt.(v) > 0
let is_closed t v = t.explored.(v) && t.dangling_cnt.(v) = 0
let subtree_open t v =
  check_explored t v "Partial_tree.subtree_open";
  t.subtree_dangling.(v) > 0

let max_depth_index t = Array.length t.open_at - 1

let min_open_depth t =
  if t.total_dangling = 0 then None
  else begin
    let d = ref t.min_open_ptr in
    let bucket_empty d =
      match t.open_at.(d) with None -> true | Some h -> Hashtbl.length h = 0
    in
    while !d <= max_depth_index t && bucket_empty !d do
      incr d
    done;
    t.min_open_ptr <- !d;
    if !d > max_depth_index t then None else Some !d
  end

let open_nodes_at_depth t d =
  if d < 0 || d > max_depth_index t then []
  else
    match t.open_at.(d) with
    | None -> []
    | Some h -> Hashtbl.fold (fun v () acc -> v :: acc) h []

let open_nodes_at_min_depth t =
  match min_open_depth t with None -> [] | Some d -> open_nodes_at_depth t d

let is_ancestor t a v =
  check_explored t a "Partial_tree.is_ancestor";
  check_explored t v "Partial_tree.is_ancestor";
  let da = t.depths.(a) in
  let rec up v = if t.depths.(v) < da then false else v = a || up t.parents.(v) in
  up v

let ports_from_root t v =
  check_explored t v "Partial_tree.ports_from_root";
  (* Walk up, recording at each parent the port that leads back down. *)
  let rec up v acc =
    if v = t.root then acc
    else begin
      let p = t.parents.(v) in
      let ports = t.port_child.(p) in
      let rec find i =
        if i >= Array.length ports then
          invalid_arg "Partial_tree.ports_from_root: broken parent link"
        else if ports.(i) = v then i
        else find (i + 1)
      in
      up p (find 0 :: acc)
    end
  in
  up v []

let fold_explored t ~init ~f =
  let acc = ref init in
  for v = 0 to Array.length t.explored - 1 do
    if t.explored.(v) then acc := f !acc v
  done;
  !acc

let bucket t d =
  match t.open_at.(d) with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 8 in
      t.open_at.(d) <- Some h;
      h

let add_open t v =
  let d = t.depths.(v) in
  Hashtbl.replace (bucket t d) v ();
  if d < t.min_open_ptr then t.min_open_ptr <- d

let remove_open t v =
  match t.open_at.(t.depths.(v)) with
  | None -> ()
  | Some h -> Hashtbl.remove h v

let bump_path t v delta =
  let u = ref v in
  let continue = ref true in
  while !continue do
    t.subtree_dangling.(!u) <- t.subtree_dangling.(!u) + delta;
    if !u = t.root then continue := false else u := t.parents.(!u)
  done

let check_invariants t =
  let fail msg = invalid_arg ("Partial_tree.check_invariants: " ^ msg) in
  let n = Array.length t.explored in
  let expected_total = ref 0 in
  let expected_sub = Array.make n 0 in
  for v = 0 to n - 1 do
    if t.explored.(v) then begin
      let cnt =
        Array.fold_left
          (fun acc e -> if e = enc_dangling then acc + 1 else acc)
          0 t.port_child.(v)
      in
      if cnt <> t.dangling_cnt.(v) then fail "dangling_cnt mismatch";
      expected_total := !expected_total + cnt;
      (* Charge the dangling edges of [v] to every ancestor. *)
      let u = ref v in
      let continue = ref true in
      while !continue do
        expected_sub.(!u) <- expected_sub.(!u) + cnt;
        if !u = t.root then continue := false else u := t.parents.(!u)
      done;
      let in_bucket =
        match t.open_at.(t.depths.(v)) with
        | None -> false
        | Some h -> Hashtbl.mem h v
      in
      if (cnt > 0) <> in_bucket then fail "open-node index mismatch"
    end
  done;
  if !expected_total <> t.total_dangling then fail "total_dangling mismatch";
  for v = 0 to n - 1 do
    if t.explored.(v) && expected_sub.(v) <> t.subtree_dangling.(v) then
      fail "subtree_dangling mismatch"
  done;
  (match min_open_depth t with
  | None -> if t.total_dangling <> 0 then fail "min_open_depth = None too early"
  | Some d ->
      if open_nodes_at_depth t d = [] then fail "empty min-depth bucket";
      for d' = 0 to d - 1 do
        if List.exists (fun v -> t.dangling_cnt.(v) > 0) (open_nodes_at_depth t d')
        then fail "min_open_depth not minimal"
      done)

module Internal = struct
  let create ~hidden_n ~root =
    if hidden_n < 1 then invalid_arg "Partial_tree.create: empty tree";
    if root < 0 || root >= hidden_n then invalid_arg "Partial_tree.create: bad root";
    {
      root;
      explored = Array.make hidden_n false;
      nports = Array.make hidden_n (-1);
      parents = Array.make hidden_n (-1);
      depths = Array.make hidden_n (-1);
      port_child = Array.make hidden_n [||];
      dangling_cnt = Array.make hidden_n 0;
      subtree_dangling = Array.make hidden_n 0;
      open_at = Array.make (hidden_n + 1) None;
      min_open_ptr = 0;
      total_dangling = 0;
      num_explored = 0;
    }

  let reveal t v ~parent ~num_ports =
    if t.explored.(v) then invalid_arg "Partial_tree.reveal: already explored";
    (match parent with
    | None ->
        if v <> t.root then invalid_arg "Partial_tree.reveal: only the root has no parent";
        t.depths.(v) <- 0
    | Some p ->
        if not t.explored.(p) then
          invalid_arg "Partial_tree.reveal: parent must be explored";
        t.parents.(v) <- p;
        t.depths.(v) <- t.depths.(p) + 1);
    t.explored.(v) <- true;
    t.nports.(v) <- num_ports;
    let ports = Array.make num_ports enc_dangling in
    if v <> t.root then begin
      if num_ports < 1 then invalid_arg "Partial_tree.reveal: non-root needs a parent port";
      ports.(0) <- enc_parent
    end;
    t.port_child.(v) <- ports;
    let cnt = num_ports - if v = t.root then 0 else 1 in
    t.dangling_cnt.(v) <- cnt;
    t.num_explored <- t.num_explored + 1;
    if cnt > 0 then begin
      t.total_dangling <- t.total_dangling + cnt;
      bump_path t v cnt;
      add_open t v
    end

  let resolve_dangling t v p c =
    check_explored t v "Partial_tree.resolve_dangling";
    if p < 0 || p >= t.nports.(v) then
      invalid_arg "Partial_tree.resolve_dangling: bad port";
    if t.port_child.(v).(p) <> enc_dangling then
      invalid_arg "Partial_tree.resolve_dangling: port not dangling";
    t.port_child.(v).(p) <- c;
    t.parents.(c) <- v;
    t.dangling_cnt.(v) <- t.dangling_cnt.(v) - 1;
    t.total_dangling <- t.total_dangling - 1;
    bump_path t v (-1);
    if t.dangling_cnt.(v) = 0 then remove_open t v
end
