(** The partially explored tree [T_online = (V, E)] of Section 2.

    [V] is the set of {e explored} nodes (occupied by at least one robot in
    the past); [E] the set of {e discovered} edges (at least one explored
    endpoint). A discovered edge with exactly one explored endpoint is
    {e dangling}. Nodes reuse the hidden tree's integer ids, but this
    structure only ever contains information already revealed to the
    robots; algorithms must read the exploration state exclusively through
    this interface.

    Port numbering matches {!Bfdn_trees.Tree}: at an explored non-root node,
    port [0] leads to the parent; other ports lead to children, each either
    already explored ([Child]) or dangling. Exploration is complete exactly
    when no dangling port remains. *)

type t

type node = int

type port_state =
  | To_parent  (** port 0 of a non-root node *)
  | Dangling  (** discovered edge whose far endpoint is unexplored *)
  | Child of node  (** explored edge to an explored child *)

val root : t -> node

val is_explored : t -> node -> bool

val num_explored : t -> int

val num_dangling : t -> int
(** Total number of dangling edges; [0] iff exploration is complete. *)

val complete : t -> bool

val num_ports : t -> node -> int
(** Degree of an explored node (revealed on first visit).
    @raise Invalid_argument if the node is unexplored. *)

val port : t -> node -> int -> port_state
(** State of one port of an explored node. *)

val dangling_ports : t -> node -> int list
(** Ports of an explored node that are dangling, in increasing order. *)

val explored_children : t -> node -> (int * node) list
(** [(port, child)] pairs for explored children, in increasing port order. *)

val parent : t -> node -> node option
(** [None] for the root. Defined for explored nodes. *)

val depth_of : t -> node -> int
(** Distance to the root (known online: nodes are reached along discovered
    edges). *)

val is_open : t -> node -> bool
(** Adjacent to at least one dangling edge (the paper's "open node"). *)

val is_closed : t -> node -> bool
(** Explored and not open. A node of the {e fully discovered} frontierless
    region may still have open descendants; see {!subtree_open}. *)

val subtree_open : t -> node -> bool
(** Whether the discovered subtree below the node (inclusive) still contains
    a dangling edge — i.e. whether [T(v)] is possibly not fully explored.
    O(1): maintained incrementally. *)

val min_open_depth : t -> int option
(** Minimum depth of an open node, [None] when exploration is complete. *)

val open_nodes_at_depth : t -> int -> node list
(** All open nodes at one depth (unsorted). *)

val open_nodes_at_min_depth : t -> node list
(** [open_nodes_at_depth] at {!min_open_depth}; [[]] when complete. *)

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a v]: [a] lies on the (discovered) path from [v] to the
    root, inclusive of [v]. Both nodes must be explored. *)

val ports_from_root : t -> node -> int list
(** The port sequence leading from the root to an explored node — the
    stack contents of Algorithm 1 line 8 (in traversal order). *)

val fold_explored : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val check_invariants : t -> unit
(** Exhaustive O(n·D) re-verification of the incremental bookkeeping
    (dangling counters, open-node index). For tests.
    @raise Invalid_argument on a broken invariant. *)

(** Mutators, reserved to {!Env}: the simulator is the only component that
    may reveal information. Calling these from algorithm code would be
    cheating (reading the future); the test-suite exercises them only to
    build fixtures. *)
module Internal : sig
  val create : hidden_n:int -> root:node -> t
  (** Empty discovery state; the root is not yet revealed. *)

  val reveal : t -> node -> parent:node option -> num_ports:int -> unit
  (** Mark a node explored, with its full port count; all child ports start
      dangling. [parent = None] only for the root. Idempotence is an error:
      the caller must reveal each node exactly once. *)

  val resolve_dangling : t -> node -> int -> node -> unit
  (** [resolve_dangling t v p c] records that the dangling port [p] of [v]
      leads to [c]. The caller must then {!reveal} [c] (same round). *)
end
