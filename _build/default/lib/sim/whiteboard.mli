(** Per-node whiteboards for the restricted-communication model (Section
    4.1).

    Every node carries a small local memory that robots standing on the
    node may read and write. It implements the paper's [PARTITION] routine:
    ports are dispatched at most once each, in descending order, so that no
    two robots are ever sent down the same port and a robot sent through
    port [j] knows that all ports [j' >= j] were already dispatched.

    Distribution discipline (a robot only touches the whiteboard of the
    node it stands on) is the caller's responsibility; {!Bfdn.Bfdn_planner}
    is the only client and respects it by construction. *)

type t

type node = int

val create : hidden_n:int -> t

val init_node : t -> node -> num_ports:int -> is_root:bool -> unit
(** Install the whiteboard of a newly visited node; idempotent. *)

val initialized : t -> node -> bool

val partition : t -> node -> int option
(** Dispatch the next down-port of the node (descending). [None] once all
    down-ports are dispatched — the robot must then head up (port 0). *)

val mark_dispatched : t -> node -> int -> unit
(** Withdraw a port from the [partition] pool without a [partition] call —
    used when a robot enters the port while walking to a planner-assigned
    anchor, so wandering robots never re-enter an actively assigned
    subtree. Idempotent. *)

val mark_finished : t -> node -> int -> unit
(** Record that a robot has returned (come back up) from this port. *)

val is_finished : t -> node -> int -> bool

val finished_ports : t -> node -> int list
(** Increasing order. *)

val all_dispatched : t -> node -> bool
(** All down-ports have been handed out. *)

val all_finished : t -> node -> bool
(** All down-ports finished: a robot has returned from each child. *)
