lib/sim/env.mli: Bfdn_trees Partial_tree
