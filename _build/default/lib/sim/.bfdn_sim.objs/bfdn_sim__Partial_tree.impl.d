lib/sim/partial_tree.ml: Array Hashtbl List
