lib/sim/partial_tree.mli:
