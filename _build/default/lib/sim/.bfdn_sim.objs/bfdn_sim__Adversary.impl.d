lib/sim/adversary.ml: Array Bfdn_trees Bfdn_util Env Hashtbl
