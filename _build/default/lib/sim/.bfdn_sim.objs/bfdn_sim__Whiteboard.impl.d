lib/sim/whiteboard.ml: Array
