lib/sim/runner.mli: Env Format
