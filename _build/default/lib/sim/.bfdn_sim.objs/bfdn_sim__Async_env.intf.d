lib/sim/async_env.mli: Bfdn_trees Partial_tree
