lib/sim/async_env.ml: Array Bfdn_trees Bfdn_util Hashtbl Option Partial_tree
