lib/sim/trace.mli: Env
