lib/sim/runner.ml: Env Format
