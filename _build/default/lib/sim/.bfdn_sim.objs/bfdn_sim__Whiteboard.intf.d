lib/sim/whiteboard.mli:
