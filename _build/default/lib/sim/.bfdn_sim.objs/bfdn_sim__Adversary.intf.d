lib/sim/adversary.mli: Bfdn_trees Bfdn_util Env
