lib/sim/trace.ml: Array Bfdn_util Buffer Env Hashtbl List Partial_tree Printf String
