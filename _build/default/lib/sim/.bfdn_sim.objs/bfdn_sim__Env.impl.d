lib/sim/env.ml: Array Bfdn_trees Lazy Option Partial_tree
