module Rng = Bfdn_util.Rng

type spec = {
  width : int;
  height : int;
  obstacles : (int * int * int * int) list;
}

type t = {
  spec : spec;
  graph : Graph.t;
  origin : Graph.node;
  node_of : int array; (* cell index -> node id or -1 *)
  cell_of : (int * int) array; (* node id -> cell *)
}

let cell_index spec x y = (y * spec.width) + x

let blocked spec x y =
  List.exists
    (fun (x0, y0, x1, y1) -> x >= x0 && x <= x1 && y >= y0 && y <= y1)
    spec.obstacles

let make spec =
  if spec.width < 1 || spec.height < 1 then invalid_arg "Grid.make: empty grid";
  if blocked spec 0 0 then invalid_arg "Grid.make: origin blocked";
  let ncells = spec.width * spec.height in
  let free = Array.make ncells false in
  for y = 0 to spec.height - 1 do
    for x = 0 to spec.width - 1 do
      free.(cell_index spec x y) <- not (blocked spec x y)
    done
  done;
  (* Restrict to the component of the origin so the graph is connected. *)
  let reach = Array.make ncells false in
  let queue = Queue.create () in
  reach.(cell_index spec 0 0) <- true;
  Queue.add (0, 0) queue;
  let try_visit x y =
    if x >= 0 && x < spec.width && y >= 0 && y < spec.height then begin
      let i = cell_index spec x y in
      if free.(i) && not reach.(i) then begin
        reach.(i) <- true;
        Queue.add (x, y) queue
      end
    end
  in
  while not (Queue.is_empty queue) do
    let x, y = Queue.pop queue in
    try_visit (x + 1) y;
    try_visit (x - 1) y;
    try_visit x (y + 1);
    try_visit x (y - 1)
  done;
  let node_of = Array.make ncells (-1) in
  let cells = ref [] in
  let count = ref 0 in
  for y = 0 to spec.height - 1 do
    for x = 0 to spec.width - 1 do
      let i = cell_index spec x y in
      if reach.(i) then begin
        node_of.(i) <- !count;
        cells := (x, y) :: !cells;
        incr count
      end
    done
  done;
  let cell_of = Array.of_list (List.rev !cells) in
  let edges = ref [] in
  for y = 0 to spec.height - 1 do
    for x = 0 to spec.width - 1 do
      let i = cell_index spec x y in
      if node_of.(i) >= 0 then begin
        (* Right and down neighbours once each to avoid duplicates. *)
        if x + 1 < spec.width && node_of.(cell_index spec (x + 1) y) >= 0 then
          edges := (node_of.(i), node_of.(cell_index spec (x + 1) y)) :: !edges;
        if y + 1 < spec.height && node_of.(cell_index spec x (y + 1)) >= 0 then
          edges := (node_of.(i), node_of.(cell_index spec x (y + 1))) :: !edges
      end
    done
  done;
  let graph = Graph.of_edges ~n:!count !edges in
  { spec; graph; origin = node_of.(cell_index spec 0 0); node_of; cell_of }

let graph t = t.graph
let origin t = t.origin

let node_of_cell t (x, y) =
  if x < 0 || x >= t.spec.width || y < 0 || y >= t.spec.height then None
  else begin
    let id = t.node_of.(cell_index t.spec x y) in
    if id < 0 then None else Some id
  end

let cell_of_node t v = t.cell_of.(v)

let free_cells t = Array.length t.cell_of

let random_spec ~rng ~width ~height ~obstacle_count ~max_side =
  if width < 1 || height < 1 then invalid_arg "Grid.random_spec: empty grid";
  if max_side < 1 then invalid_arg "Grid.random_spec: max_side must be >= 1";
  let rec gen tries acc remaining =
    if remaining = 0 || tries > 20 * obstacle_count then acc
    else begin
      let w = Rng.int_in rng 1 max_side and h = Rng.int_in rng 1 max_side in
      let x0 = Rng.int rng width and y0 = Rng.int rng height in
      let rect = (x0, y0, min (width - 1) (x0 + w - 1), min (height - 1) (y0 + h - 1)) in
      let x0', y0', x1', y1' = rect in
      if x0' <= 0 && y0' <= 0 && x1' >= 0 && y1' >= 0 then
        gen (tries + 1) acc remaining (* would block the origin *)
      else gen (tries + 1) (rect :: acc) (remaining - 1)
    end
  in
  { width; height; obstacles = gen 0 [] obstacle_count }

let distance_is_manhattan t =
  let dist = Graph.bfs_dist t.graph t.origin in
  let ok = ref true in
  Array.iteri
    (fun v (x, y) -> if dist.(v) <> x + y then ok := false)
    t.cell_of;
  !ok

let render t =
  let buf = Buffer.create ((t.spec.width + 1) * t.spec.height) in
  for y = t.spec.height - 1 downto 0 do
    for x = 0 to t.spec.width - 1 do
      let c =
        if x = 0 && y = 0 then 'O'
        else if t.node_of.(cell_index t.spec x y) >= 0 then '.'
        else '#'
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
