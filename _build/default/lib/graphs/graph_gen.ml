module Rng = Bfdn_util.Rng

let random_connected ~rng ~n ~extra_edges =
  if n < 1 then invalid_arg "Graph_gen.random_connected: n must be >= 1";
  if extra_edges < 0 then invalid_arg "Graph_gen.random_connected: negative extras";
  let seen = Hashtbl.create (n + extra_edges) in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges
    end
  in
  for v = 1 to n - 1 do
    add v (Rng.int rng v)
  done;
  for _ = 1 to extra_edges do
    if n >= 2 then add (Rng.int rng n) (Rng.int rng n)
  done;
  Graph.of_edges ~n !edges

let layered ~rng ~layers ~width ~chords =
  if layers < 0 || width < 1 then invalid_arg "Graph_gen.layered: bad shape";
  let n = 1 + (layers * width) in
  let node layer j = if layer = 0 then 0 else 1 + ((layer - 1) * width) + j in
  let seen = Hashtbl.create (2 * n) in
  let edges = ref [] in
  let add u v =
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      edges := (u, v) :: !edges
    end
  in
  for layer = 1 to layers do
    for j = 0 to width - 1 do
      let prev = if layer = 1 then 0 else node (layer - 1) (Rng.int rng width) in
      add (node layer j) prev
    done
  done;
  for _ = 1 to chords do
    if layers >= 1 then begin
      let layer = 1 + Rng.int rng layers in
      let u = node layer (Rng.int rng width) in
      let other_layer =
        Bfdn_util.Mathx.clamp 1 layers (layer + Rng.int_in rng (-1) 1)
      in
      add u (node other_layer (Rng.int rng width))
    end
  done;
  Graph.of_edges ~n !edges
