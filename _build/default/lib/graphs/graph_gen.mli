(** Random connected graphs for the Section 4.3 experiments beyond grids.

    The paper's Proposition 9 only assumes the robots know their distance
    to the origin; these generators produce arbitrary connected graphs
    (random spanning tree plus extra chords) on which the BFS-distance
    oracle of {!Graph_env} plays that role. *)

val random_connected :
  rng:Bfdn_util.Rng.t -> n:int -> extra_edges:int -> Graph.t
(** Uniform random spanning tree skeleton (random attachment) plus
    [extra_edges] distinct random chords. The result is connected with
    [n - 1 + extra_edges'] edges where [extra_edges' <= extra_edges]
    (duplicates are skipped). *)

val layered :
  rng:Bfdn_util.Rng.t -> layers:int -> width:int -> chords:int -> Graph.t
(** Node 0 plus [layers] layers of [width] nodes; each node is connected
    to a random node of the previous layer, plus [chords] random
    same-layer or adjacent-layer chords — a synthetic "city blocks"
    topology with many equal-distance edges for the closing rule to
    discard. *)
