(** Undirected graphs with port-numbered adjacency, used by the non-tree
    exploration setting of Section 4.3.

    Nodes are integers [0 .. n-1]; each node's incident edges are numbered
    by ports [0 .. degree-1]. Multi-edges and self-loops are rejected. *)

type t

type node = int

val of_edges : n:int -> (node * node) list -> t
(** Build from an undirected edge list.
    @raise Invalid_argument on out-of-range endpoints, duplicate edges or
    self-loops. *)

val n : t -> int

val num_edges : t -> int

val degree : t -> node -> int

val max_degree : t -> int

val neighbor : t -> node -> int -> node
(** [neighbor g v p] follows port [p] of [v]. *)

val neighbors : t -> node -> node array
(** Neighbours in port order; do not mutate. *)

val reverse_port : t -> node -> int -> int
(** [reverse_port g v p] is the port at the far endpoint leading back to
    [v]. O(1): precomputed. *)

val bfs_dist : t -> node -> int array
(** Distances from a source; [max_int] for unreachable nodes. *)

val connected_from : t -> node -> bool array
(** Reachability from a source. *)

val eccentricity : t -> node -> int
(** Largest finite distance from the node (the paper's radius [D] when the
    node is the origin). *)
