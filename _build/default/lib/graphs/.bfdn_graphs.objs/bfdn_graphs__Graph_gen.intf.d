lib/graphs/graph_gen.mli: Bfdn_util Graph
