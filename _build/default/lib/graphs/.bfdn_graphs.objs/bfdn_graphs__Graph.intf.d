lib/graphs/graph.mli:
