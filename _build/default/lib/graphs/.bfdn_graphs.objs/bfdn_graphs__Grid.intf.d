lib/graphs/grid.mli: Bfdn_util Graph
