lib/graphs/graph_env.mli: Graph
