lib/graphs/grid.ml: Array Bfdn_util Buffer Graph List Queue
