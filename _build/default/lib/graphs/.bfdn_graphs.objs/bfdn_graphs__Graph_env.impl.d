lib/graphs/graph_env.ml: Array Graph Hashtbl List
