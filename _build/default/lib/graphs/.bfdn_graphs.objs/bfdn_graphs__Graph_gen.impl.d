lib/graphs/graph_gen.ml: Bfdn_util Graph Hashtbl
