type node = int

type t = {
  adj : node array array; (* neighbours in port order *)
  rev : int array array; (* rev.(v).(p): port of [neighbor v p] leading back *)
  num_edges : int;
}

let of_edges ~n edges =
  if n < 1 then invalid_arg "Graph.of_edges: n must be >= 1";
  let seen = Hashtbl.create (List.length edges) in
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edges: endpoint out of range";
      if u = v then invalid_arg "Graph.of_edges: self-loop";
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then invalid_arg "Graph.of_edges: duplicate edge";
      Hashtbl.add seen key ();
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.map (fun d -> Array.make d (-1)) deg in
  let rev = Array.map (fun d -> Array.make d (-1)) deg in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      let pu = fill.(u) and pv = fill.(v) in
      adj.(u).(pu) <- v;
      adj.(v).(pv) <- u;
      rev.(u).(pu) <- pv;
      rev.(v).(pv) <- pu;
      fill.(u) <- pu + 1;
      fill.(v) <- pv + 1)
    edges;
  { adj; rev; num_edges = List.length edges }

let n t = Array.length t.adj
let num_edges t = t.num_edges
let degree t v = Array.length t.adj.(v)

let max_degree t = Array.fold_left (fun acc a -> max acc (Array.length a)) 0 t.adj

let neighbor t v p =
  if p < 0 || p >= degree t v then invalid_arg "Graph.neighbor: bad port";
  t.adj.(v).(p)

let neighbors t v = t.adj.(v)

let reverse_port t v p =
  if p < 0 || p >= degree t v then invalid_arg "Graph.reverse_port: bad port";
  t.rev.(v).(p)

let bfs_dist t src =
  let dist = Array.make (n t) max_int in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Array.iter
      (fun w ->
        if dist.(w) = max_int then begin
          dist.(w) <- dist.(v) + 1;
          Queue.add w queue
        end)
      t.adj.(v)
  done;
  dist

let connected_from t src = Array.map (fun d -> d < max_int) (bfs_dist t src)

let eccentricity t src =
  Array.fold_left
    (fun acc d -> if d < max_int then max acc d else acc)
    0 (bfs_dist t src)
