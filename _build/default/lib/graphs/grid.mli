(** Grid graphs with rectangular obstacles — the concrete Section 4.3
    setting borrowed from Ortolf & Schindelhauer [12].

    Cells are [(x, y)] with [0 <= x < width], [0 <= y < height]; free cells
    are 4-connected; the origin is cell [(0, 0)]. The result is restricted
    to the connected component of the origin, so the returned graph is
    always connected. *)

type spec = {
  width : int;
  height : int;
  obstacles : (int * int * int * int) list;
      (** [(x0, y0, x1, y1)] inclusive corners, clipped to the grid *)
}

type t

val make : spec -> t
(** @raise Invalid_argument if the grid is empty or the origin is blocked. *)

val graph : t -> Graph.t

val origin : t -> Graph.node
(** The node id of cell [(0, 0)]. *)

val node_of_cell : t -> int * int -> Graph.node option
(** [None] for blocked or out-of-range cells (or cells cut off from the
    origin). *)

val cell_of_node : t -> Graph.node -> int * int

val free_cells : t -> int

val random_spec :
  rng:Bfdn_util.Rng.t ->
  width:int ->
  height:int ->
  obstacle_count:int ->
  max_side:int ->
  spec
(** Random axis-aligned obstacles; the origin cell is never covered. *)

val distance_is_manhattan : t -> bool
(** Whether every reachable cell's graph distance to the origin equals its
    Manhattan distance [x + y] — the geometric property Section 4.3 quotes
    from [12] to justify the distance-knowledge assumption. True on empty
    grids and staircase-friendly obstacle layouts; false when an obstacle
    forces a detour. *)

val render : t -> string
(** ASCII map: ['#'] obstacle / unreachable, ['.'] free, ['O'] origin. *)
