lib/util/pqueue.mli:
