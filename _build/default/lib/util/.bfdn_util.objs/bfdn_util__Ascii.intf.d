lib/util/ascii.mli:
