lib/util/rng.mli:
