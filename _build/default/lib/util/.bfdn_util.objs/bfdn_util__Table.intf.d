lib/util/table.mli:
