lib/util/ascii.ml: Buffer Float List Printf String
