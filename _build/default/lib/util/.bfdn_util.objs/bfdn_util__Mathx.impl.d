lib/util/mathx.ml: Float
