lib/util/mathx.mli:
