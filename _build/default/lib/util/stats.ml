let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let stddev xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (acc /. float_of_int n)
  end

let min_max xs =
  if Array.length xs = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (xs.(0), xs.(0))
    xs

let maxf xs = snd (min_max xs)

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let linear_fit points =
  let n = float_of_int (List.length points) in
  if n < 2.0 then invalid_arg "Stats.linear_fit: need at least two points";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if denom = 0.0 then invalid_arg "Stats.linear_fit: x values are all equal";
  let a = ((n *. sxy) -. (sx *. sy)) /. denom in
  (a, (sy -. (a *. sx)) /. n)

let log_log_exponent points =
  let safe v = if v <= 0.0 then 1.0 else v in
  fst (linear_fit (List.map (fun (x, y) -> (log (safe x), log (safe y))) points))

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

let summarize xs =
  let lo, hi = min_max xs in
  {
    count = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    max = hi;
    p50 = percentile xs 50.0;
    p95 = percentile xs 95.0;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f"
    s.count s.mean s.stddev s.min s.p50 s.p95 s.max
