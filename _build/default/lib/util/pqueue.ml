type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let length t = t.size

let entry t i = match t.heap.(i) with Some e -> e | None -> assert false

let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let x = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before (entry t i) (entry t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before (entry t l) (entry t !smallest) then smallest := l;
  if r < t.size && before (entry t r) (entry t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio value =
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- Some { prio; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = entry t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some ((entry t 0).prio, (entry t 0).value)
