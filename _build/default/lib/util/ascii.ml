let grid ?(x_label = "") ?(y_label = "") ~rows ~cols ~cell () =
  let buf = Buffer.create ((rows + 3) * (cols + 4)) in
  if y_label <> "" then begin
    Buffer.add_string buf y_label;
    Buffer.add_char buf '\n'
  end;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make cols '-');
  Buffer.add_string buf "+\n";
  for r = rows - 1 downto 0 do
    Buffer.add_char buf '|';
    for c = 0 to cols - 1 do
      Buffer.add_char buf (cell ~row:r ~col:c)
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make cols '-');
  Buffer.add_string buf "+\n";
  if x_label <> "" then begin
    Buffer.add_string buf (String.make (max 0 (cols - String.length x_label)) ' ');
    Buffer.add_string buf x_label;
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let bar_chart entries =
  let width = 50 in
  let top =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 entries
  in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let buf = Buffer.create 256 in
  let emit (label, v) =
    let n =
      if top <= 0.0 then 0
      else int_of_float (Float.round (v /. top *. float_of_int width))
    in
    Buffer.add_string buf label;
    Buffer.add_string buf (String.make (label_width - String.length label) ' ');
    Buffer.add_string buf " | ";
    Buffer.add_string buf (String.make n '#');
    Buffer.add_string buf (Printf.sprintf " %.1f\n" v)
  in
  List.iter emit entries;
  Buffer.contents buf

let legend items =
  String.concat "   "
    (List.map (fun (c, meaning) -> Printf.sprintf "%c = %s" c meaning) items)
