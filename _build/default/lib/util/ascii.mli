(** ASCII renderings (region maps, bar charts) for terminal output. *)

val grid :
  ?x_label:string ->
  ?y_label:string ->
  rows:int ->
  cols:int ->
  cell:(row:int -> col:int -> char) ->
  unit ->
  string
(** [grid ~rows ~cols ~cell ()] renders a character grid with row 0 printed
    last (so the y axis grows upward), with a simple frame. *)

val bar_chart : (string * float) list -> string
(** Horizontal bar chart scaled to the largest value; one line per entry. *)

val legend : (char * string) list -> string
(** One-line legend: "x = meaning   y = meaning ...". *)
