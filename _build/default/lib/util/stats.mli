(** Small descriptive-statistics helpers used by the experiment harness. *)

val mean : float array -> float
(** Arithmetic mean; 0 on the empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0 on arrays of length < 2. *)

val min_max : float array -> float * float
(** Smallest and largest element. Requires a non-empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], nearest-rank on a sorted copy.
    Requires a non-empty array. *)

val sum : float array -> float

val maxf : float array -> float
(** Largest element. Requires a non-empty array. *)

val linear_fit : (float * float) list -> float * float
(** Ordinary least-squares fit of [y = a x + b]; returns [(a, b)].
    Requires at least two points with distinct [x]. *)

val log_log_exponent : (float * float) list -> float
(** Growth exponent of [y] in [x]: the slope of a {!linear_fit} on
    [(log x, log y)] pairs (non-positive values clamped to 1 before the
    log). Used by the overhead-scaling experiment. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

val summarize : float array -> summary
(** Full summary of a non-empty array. *)

val pp_summary : Format.formatter -> summary -> unit
