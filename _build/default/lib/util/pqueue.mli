(** Minimal binary min-heap keyed by floats, for event-driven simulation.

    Ties are broken by insertion order (FIFO), which keeps event-driven
    runs deterministic when many events share a timestamp. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** [push q priority value]. *)

val pop : 'a t -> (float * 'a) option
(** Smallest priority first; among equal priorities, earliest pushed
    first. *)

val peek : 'a t -> (float * 'a) option
