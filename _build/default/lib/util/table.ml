type align = Left | Right

type row = Cells of string list | Rule

type t = {
  caption : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reverse order *)
}

let create ?caption columns =
  {
    caption;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
  }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let all_cells =
    t.headers :: List.filter_map (function Cells c -> Some c | Rule -> None) rows
  in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let measure cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
  in
  List.iter measure all_cells;
  let buf = Buffer.create 1024 in
  (match t.caption with
  | Some c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n'
  | None -> ());
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = List.nth t.aligns i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  let emit_rule () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Rule -> emit_rule ()) rows;
  Buffer.contents buf

let print t = print_string (render t); print_newline ()

let fint = string_of_int

let ffloat ?(decimals = 1) x = Printf.sprintf "%.*f" decimals x

let fratio x = Printf.sprintf "%.3f" x

let fbool b = if b then "yes" else "NO"
