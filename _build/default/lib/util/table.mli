(** Aligned plain-text tables for experiment output.

    The bench harness prints one table per reproduced figure/claim; this
    module keeps the formatting uniform (right-aligned numeric columns,
    a header rule, and an optional caption). *)

type align = Left | Right

type t

val create : ?caption:string -> (string * align) list -> t
(** [create ~caption columns] starts an empty table with the given header. *)

val add_row : t -> string list -> unit
(** Appends a row; the row length must match the number of columns. *)

val add_rule : t -> unit
(** Appends a horizontal separator row. *)

val render : t -> string
(** Renders the whole table, caption first. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

(** Cell formatting helpers. *)

val fint : int -> string
val ffloat : ?decimals:int -> float -> string
val fratio : float -> string
(** Ratio with 3 decimals. *)

val fbool : bool -> string
(** ["yes"] / ["NO"] — violations stand out. *)
