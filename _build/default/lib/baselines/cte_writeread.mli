(** CTE in the write-read communication model — the way Fraigniaud,
    Gasieniec, Kowalski and Pelc [10] actually present it.

    No central planner: each node's whiteboard records which of its child
    ports lead to {e finished} subtrees. Robots standing on the same node
    see each other (and the local board), divide themselves evenly over
    the unfinished branches, and a robot moving up from a locally finished
    child marks the corresponding port on the parent's board as done.

    Completion information thus propagates only as fast as robots carry
    it, so the trajectories can differ from the complete-communication
    {!Cte}; both explore everything and regather at the root, and the
    round counts track each other closely (tested). *)

val make : Bfdn_sim.Env.t -> Bfdn_sim.Runner.algo
