(** Uniform random-walk team — a naive baseline for the example programs.

    Every robot independently leaves through a uniformly random port each
    round (never staying). Explores eventually with probability 1; no
    useful worst-case guarantee. Terminates when the tree is explored
    (robots are not required to re-gather at the root). *)

val make : rng:Bfdn_util.Rng.t -> Bfdn_sim.Env.t -> Bfdn_sim.Runner.algo
