(** Offline DFS-segment splitting ([7, 13]): the constructive
    [2 (n/k + D)]-round baseline.

    The Euler tour of the (known!) tree — length [2 (n-1)] — is cut into
    [k] segments of [ceil (2 (n-1) / k)] edges; robot [i] walks from the
    root to the start of segment [i], traverses it, and walks back to the
    root. This is the executable stand-in for optimal offline exploration,
    whose exact value is NP-hard ([10]); it is within a factor 2 of the
    [max (2n/k) (2D)] lower bound.

    This baseline {e plans from the hidden tree} (it is offline by
    definition); execution still goes through the legality-checked
    environment. *)

val make : Bfdn_sim.Env.t -> Bfdn_sim.Runner.algo

val planned_rounds : Bfdn_trees.Tree.t -> k:int -> int
(** Makespan of the plan without running it: the longest robot itinerary. *)
