module Env = Bfdn_sim.Env
module Tree = Bfdn_trees.Tree
module Mathx = Bfdn_util.Mathx

(* Itinerary of robot [i]: root -> start of its tour segment, the segment
   itself, then back to the root; as a node sequence. *)
let itineraries tree k =
  let tour = Array.of_list (Tree.euler_tour tree) in
  let edges = Array.length tour - 1 in
  let seg = if edges = 0 then 0 else Mathx.ceil_div edges k in
  let root = Tree.root tree in
  let down_path v = List.rev (Tree.path_to_root tree v) in
  let plan i =
    let start = min (i * seg) edges in
    let stop = min ((i + 1) * seg) edges in
    if start >= stop then [ root ]
    else begin
      let entry = down_path tour.(start) in
      let segment = Array.to_list (Array.sub tour (start + 1) (stop - start)) in
      let exit =
        match Tree.path_to_root tree tour.(stop) with
        | _ :: rest -> rest
        | [] -> []
      in
      entry @ segment @ exit
    end
  in
  Array.init k plan

let moves_of_itinerary tree nodes =
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let step =
          if Tree.parent tree a = Some b then Env.Up
          else Env.Via_port (Tree.port_of_child tree a b)
        in
        step :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs nodes

let planned_rounds tree ~k =
  Array.fold_left
    (fun acc it -> max acc (List.length it - 1))
    0 (itineraries tree k)

let make env =
  let tree = Env.oracle_tree env in
  let k = Env.k env in
  let plans =
    Array.map (fun it -> ref (moves_of_itinerary tree it)) (itineraries tree k)
  in
  let select env =
    Array.init (Env.k env) (fun i ->
        match !(plans.(i)) with
        | [] -> Env.Stay
        | m :: rest ->
            plans.(i) := rest;
            m)
  in
  let finished _ = Array.for_all (fun p -> !p = []) plans in
  { Bfdn_sim.Runner.name = "offline-split"; select; finished }
