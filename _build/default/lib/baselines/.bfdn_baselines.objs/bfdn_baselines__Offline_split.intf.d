lib/baselines/offline_split.mli: Bfdn_sim Bfdn_trees
