lib/baselines/cte_writeread.mli: Bfdn_sim
