lib/baselines/random_walk.ml: Array Bfdn_sim Bfdn_util
