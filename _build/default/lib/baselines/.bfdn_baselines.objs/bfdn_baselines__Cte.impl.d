lib/baselines/cte.ml: Array Bfdn_sim Hashtbl List
