lib/baselines/cte.mli: Bfdn_sim
