lib/baselines/random_walk.mli: Bfdn_sim Bfdn_util
