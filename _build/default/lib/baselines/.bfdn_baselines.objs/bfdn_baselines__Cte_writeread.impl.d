lib/baselines/cte_writeread.ml: Array Bfdn_sim Hashtbl List
