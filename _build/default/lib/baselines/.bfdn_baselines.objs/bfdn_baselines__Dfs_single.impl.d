lib/baselines/dfs_single.ml: Array Bfdn_sim
