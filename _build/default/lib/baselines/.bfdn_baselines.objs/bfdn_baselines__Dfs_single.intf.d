lib/baselines/dfs_single.mli: Bfdn_sim
