lib/baselines/offline_split.ml: Array Bfdn_sim Bfdn_trees Bfdn_util List
