module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree

(* Unfinished branches of [v]: dangling ports, plus explored children whose
   discovered subtree still has a dangling edge. The cursor permanently
   skips the finished prefix of the port array (finished is absorbing). *)
let branches view cursor v =
  let nports = Partial_tree.num_ports view v in
  let unfinished p =
    match Partial_tree.port view v p with
    | Partial_tree.Dangling -> true
    | Partial_tree.Child c -> Partial_tree.subtree_open view c
    | Partial_tree.To_parent -> false
  in
  while cursor.(v) < nports && not (unfinished cursor.(v)) do
    cursor.(v) <- cursor.(v) + 1
  done;
  let acc = ref [] in
  for p = nports - 1 downto cursor.(v) do
    if unfinished p then acc := p :: !acc
  done;
  !acc

let make env =
  let view = Env.view env in
  let n = Env.capacity env in
  let cursor = Array.make n 0 in
  let select env =
    let k = Env.k env in
    let moves = Array.make k Env.Stay in
    (* Group robots by node. *)
    let by_node = Hashtbl.create 16 in
    for i = k - 1 downto 0 do
      let pos = Env.position env i in
      let prev = try Hashtbl.find by_node pos with Not_found -> [] in
      Hashtbl.replace by_node pos (i :: prev)
    done;
    let root = Partial_tree.root view in
    let handle_node pos robots =
      match branches view cursor pos with
      | [] ->
          if pos <> root then List.iter (fun i -> moves.(i) <- Env.Up) robots
      | ports ->
          let ports = Array.of_list ports in
          let m = Array.length ports in
          List.iteri
            (fun j i -> moves.(i) <- Env.Via_port ports.(j mod m))
            robots
    in
    Hashtbl.iter handle_node by_node;
    moves
  in
  {
    Bfdn_sim.Runner.name = "cte";
    select;
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }

let bound ~n ~k ~depth =
  if k <= 1 then 2.0 *. float_of_int (n - 1)
  else (float_of_int n /. (log (float_of_int k) /. log 2.0)) +. float_of_int depth
