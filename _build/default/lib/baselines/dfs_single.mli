(** Online single-robot depth-first search.

    The optimal one-robot tree traversal (Section 1): go through an
    adjacent unexplored edge if possible, one step up otherwise. Finishes
    in exactly [2 (n - 1)] rounds with the robot back at the root.

    When the environment has [k > 1] robots, robot 0 does the work and the
    others stay at the root — useful as a fixed-team baseline. *)

val make : Bfdn_sim.Env.t -> Bfdn_sim.Runner.algo
