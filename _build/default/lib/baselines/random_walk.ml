module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree
module Rng = Bfdn_util.Rng

let make ~rng env =
  let view = Env.view env in
  let select env =
    Array.init (Env.k env) (fun i ->
        let pos = Env.position env i in
        let nports = Partial_tree.num_ports view pos in
        if nports = 0 then Env.Stay else Env.Via_port (Rng.int rng nports))
  in
  {
    Bfdn_sim.Runner.name = "random-walk";
    select;
    finished = Env.fully_explored;
  }
