module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree

let make env =
  let view = Env.view env in
  let n = Env.capacity env in
  (* Monotone cursor over each node's ports (everything before it has been
     tried); gives O(1) amortized next-dangling lookups. *)
  let cursor = Array.make n 0 in
  let next_dangling pos =
    let nports = Partial_tree.num_ports view pos in
    let rec scan () =
      let c = cursor.(pos) in
      if c >= nports then None
      else
        match Partial_tree.port view pos c with
        | Partial_tree.Dangling -> Some c
        | Partial_tree.To_parent | Partial_tree.Child _ ->
            cursor.(pos) <- c + 1;
            scan ()
    in
    scan ()
  in
  let select env =
    let moves = Array.make (Env.k env) Env.Stay in
    let pos = Env.position env 0 in
    (match next_dangling pos with
    | Some p ->
        cursor.(pos) <- p + 1;
        moves.(0) <- Env.Via_port p
    | None -> if pos <> Partial_tree.root view then moves.(0) <- Env.Up);
    moves
  in
  {
    Bfdn_sim.Runner.name = "dfs-single";
    select;
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }
