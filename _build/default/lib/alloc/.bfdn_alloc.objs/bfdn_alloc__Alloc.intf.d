lib/alloc/alloc.mli: Bfdn_util
