lib/alloc/alloc.ml: Array Bfdn_util
