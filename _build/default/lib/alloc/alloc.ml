module Rng = Bfdn_util.Rng

type policy = Least_crowded | Most_crowded | Random_task of Rng.t

type result = { rounds : int; switches : int; wasted_work : int }

let pick_task policy remaining workers =
  let k = Array.length remaining in
  match policy with
  | Least_crowded ->
      let best = ref (-1) in
      for i = 0 to k - 1 do
        if remaining.(i) > 0 && (!best < 0 || workers.(i) < workers.(!best)) then
          best := i
      done;
      !best
  | Most_crowded ->
      let best = ref (-1) in
      for i = 0 to k - 1 do
        if remaining.(i) > 0 && (!best < 0 || workers.(i) > workers.(!best)) then
          best := i
      done;
      !best
  | Random_task rng ->
      let unfinished = ref [] in
      Array.iteri (fun i r -> if r > 0 then unfinished := i :: !unfinished) remaining;
      (match !unfinished with
      | [] -> -1
      | xs -> Rng.pick rng (Array.of_list xs))

let simulate ?(policy = Least_crowded) ~lengths () =
  let k = Array.length lengths in
  if k = 0 then invalid_arg "Alloc.simulate: no tasks";
  if Array.exists (fun l -> l < 0) lengths then
    invalid_arg "Alloc.simulate: negative task length";
  let remaining = Array.copy lengths in
  let workers = Array.make k 1 in
  let rounds = ref 0 in
  let switches = ref 0 in
  let wasted = ref 0 in
  let reassign_finished () =
    for i = 0 to k - 1 do
      if remaining.(i) = 0 && workers.(i) > 0 then begin
        let freed = workers.(i) in
        workers.(i) <- 0;
        for _ = 1 to freed do
          match pick_task policy remaining workers with
          | -1 -> () (* everything done: workers retire *)
          | j ->
              workers.(j) <- workers.(j) + 1;
              incr switches
        done
      end
    done
  in
  reassign_finished ();
  while Array.exists (fun r -> r > 0) remaining do
    incr rounds;
    for i = 0 to k - 1 do
      if remaining.(i) > 0 then begin
        let done_now = min workers.(i) remaining.(i) in
        wasted := !wasted + (workers.(i) - done_now);
        remaining.(i) <- remaining.(i) - done_now
      end
      else (* task already finished: its (zero) workers cost nothing *)
        ()
    done;
    reassign_finished ()
  done;
  { rounds = !rounds; switches = !switches; wasted_work = !wasted }

let switches_bound ~k =
  let kf = float_of_int k in
  (kf *. log kf) +. (2.0 *. kf)

let random_lengths ~rng ~k ~total =
  if k < 1 then invalid_arg "Alloc.random_lengths: k must be >= 1";
  if total < 0 then invalid_arg "Alloc.random_lengths: negative total";
  let lengths = Array.make k 0 in
  for _ = 1 to total do
    let i = Rng.int rng k in
    lengths.(i) <- lengths.(i) + 1
  done;
  lengths

let adversarial_lengths ~k ~total =
  if k < 1 then invalid_arg "Alloc.adversarial_lengths: k must be >= 1";
  let lengths = Array.make k 0 in
  let rest = ref total in
  for i = 0 to k - 2 do
    let part = !rest / 2 in
    lengths.(i) <- part;
    rest := !rest - part
  done;
  lengths.(k - 1) <- !rest;
  lengths
