(** Online resource allocation under unknown task lengths — the immediate
    application of the urn game (Section 3, "Interpretation of the game").

    [k] workers process [k] perfectly parallelizable tasks whose total
    work amounts are unknown in advance. Work proceeds in rounds: each of
    the [w] workers assigned to a task removes one work unit per round
    (the last units of a task may be taken in the same round by several
    workers; surplus effort is wasted, as with robots sharing a subtree).
    When a task finishes, its workers become idle one per round and must
    be re-assigned online.

    Reassigning each idle worker to the {e unfinished task with the
    fewest workers} (the urn-game player strategy) guarantees at most
    [k log k + 2k] reassignments in total — a [(log k + 2)] factor off
    the trivial [k] lower bound — irrespective of the task lengths
    (Theorem 3 with [delta >= k]). *)

type policy =
  | Least_crowded  (** the paper's strategy *)
  | Most_crowded  (** anti-strategy baseline *)
  | Random_task of Bfdn_util.Rng.t

type result = {
  rounds : int;  (** makespan: rounds until all tasks finished *)
  switches : int;  (** total reassignments performed *)
  wasted_work : int;  (** worker-rounds spent idle or redundant *)
}

val simulate : ?policy:policy -> lengths:int array -> unit -> result
(** [simulate ~lengths ()] runs [k = Array.length lengths] workers over tasks
    with the given work amounts (each starts with exactly one worker, as
    in the game).
    @raise Invalid_argument on empty or negative input. *)

val switches_bound : k:int -> float
(** [k log k + 2k]. *)

val random_lengths :
  rng:Bfdn_util.Rng.t -> k:int -> total:int -> int array
(** A uniformly random composition of [total] work units into [k] tasks
    (some may be zero — instantly finished tasks stress the strategy). *)

val adversarial_lengths : k:int -> total:int -> int array
(** Geometric profile: half the work in one task, a quarter in the next,
    ... — the sequential-discovery pattern that maximizes reassignment
    pressure. *)
