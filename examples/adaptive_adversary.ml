(* Adaptive adversary: the forest fights back. The hidden tree is grown
   ONLINE against the explorer — a node's children are decided only at the
   moment a robot steps on it — in the spirit of the lower-bound
   constructions the paper builds on (Higashikawa et al. for CTE).

   Because the explorers are deterministic, the grown tree can be frozen
   and replayed: the re-run takes exactly as many rounds, which is how
   adaptive lower bounds turn into concrete worst-case instances.

   Run with: dune exec examples/adaptive_adversary.exe *)

module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Adversary = Bfdn_sim.Adversary

let duel name make_adv =
  Printf.printf "--- adversary: %s ---\n" name;
  List.iter
    (fun (algo_name, make_algo) ->
      let adv = make_adv () in
      let env = Env.of_world (Adversary.world adv) ~k:32 in
      let r = Runner.run (make_algo env) env in
      let tree = Adversary.frozen adv in
      let stats = Bfdn_trees.Tree_stats.compute tree in
      let env2 = Env.create tree ~k:32 in
      let r2 = Runner.run (make_algo env2) env2 in
      let lb = Bfdn.Bounds.offline_lb ~n:stats.n ~k:32 ~d:(max 1 stats.depth) in
      Printf.printf
        "  vs %-5s grew n=%-5d D=%-4d | %5d rounds (%.2fx offline bound), \
         frozen replay %5d (identical=%b)\n"
        algo_name stats.n stats.depth r.rounds
        (float_of_int r.rounds /. lb)
        r2.rounds (r2.rounds = r.rounds))
    [
      ("bfdn", fun env -> Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env));
      ("cte", fun env -> Bfdn_baselines.Cte.make env);
    ]

let () =
  print_endline "Each algorithm explores a tree grown adaptively against it (k = 32).\n";
  duel "thick comb (spine + dead teeth)" (fun () ->
      Adversary.make_rec ~capacity:3000 ~depth_budget:1000 Adversary.thick_comb);
  duel "corridor for crowds" (fun () ->
      Adversary.make ~capacity:3000 ~depth_budget:60
        (Adversary.corridor_crowds ~threshold:2));
  duel "budget bomb (max width)" (fun () ->
      Adversary.make ~capacity:3000 ~depth_budget:4 Adversary.greedy_widest);
  print_newline ();
  print_endline
    "BFDN never exceeds its Theorem 1 guarantee here: the theorem is per-tree,\n\
     and an adaptively grown tree freezes into an ordinary instance."
