(* E22 — seed-batched lockstep execution and intra-run sharding.

   Two throughput claims go into BENCH_batch.json:

   1. Seed batching: executing S consecutive seeds of one (world, algo,
      k) config through [Seed_batch.run] beats S sequential
      [Scenario.run] calls. On deterministic families with the
      draw-free bfdn policy the identical-lane collapse makes the
      batch degenerate to ONE execution plus S-1 replications, so
      seeds/sec grows nearly linearly in S; the perf gate requires
      >= 2x at S=64 vs the measured S=1 baseline of the same run.

   2. Intra-run sharding: [Scenario.run ~shards:N] spreads the
      per-robot route-computation pass over a domain team with a
      deterministic robot-index-order merge. Results are bit-for-bit
      identical for every N (the smoke check re-proves it); on a
      multi-core machine the wall clock of one big run drops, and the
      perf gate requires > 1x there. On a single-core runner the rows
      are still recorded but the speedup criterion is skipped — there
      is nothing to shard onto.

   `--det-check --jobs=N` (the CI determinism lane) reuses this module:
   sequential runs, the N-worker job pool, the seed batch and the
   sharded path must agree outcome-for-outcome over a config matrix. *)

open Bench_common
module Seed_batch = Bfdn_engine.Seed_batch

let report_path = "BENCH_batch.json"
let nominal_n = 4000

(* (family, depth_hint) — all three are deterministic families, so the
   batched rows exercise the shared-world and collapse tiers; the
   determinism lane below covers the randomized ones. *)
let families = [ ("binary", 12); ("comb", 60); ("spider", 30) ]
let ks = [ 64; 512 ]
let batch_sizes = [ 1; 8; 64 ]

let spec ?(batch_seeds = 1) family k =
  Scenario.make ~algo:"bfdn" ~k ~seed ~batch_seeds
    (Scenario.world
       ~params:
         [
           ("depth_hint", Param.Int (List.assoc family families));
           ("n", Param.Int (sized nominal_n));
         ]
       family)

let min_total () =
  match !scale with Quick -> 0.02 | Normal -> 0.3 | Full -> 1.0

(* One end-to-end execution of the (possibly batched) spec, including
   validation and world construction — batching amortizes exactly that
   dispatch, so it must be inside the timed region. *)
let exec t =
  if t.Scenario.batch_seeds = 1 then begin
    ignore (Scenario.run t : Scenario.outcome);
    (false, false)
  end
  else
    let r = Seed_batch.run t in
    (r.Seed_batch.collapsed, r.Seed_batch.shared_world)

type row = {
  b_family : string;
  b_k : int;
  b_s : int;
  b_wall : float; (* seconds per batch execution *)
  b_seeds_s : float;
  b_collapsed : bool;
  b_shared : bool;
  mutable b_speedup : float; (* seeds/s vs the S=1 row of the same cell *)
}

let measure family k s =
  let t = spec ~batch_seeds:s family k in
  let flags = ref (exec t) (* warm: page in the generator and stats *) in
  let t0 = Batch.now () in
  let reps = ref 0 in
  while Batch.now () -. t0 < min_total () || !reps = 0 do
    flags := exec t;
    incr reps
  done;
  let wall = (Batch.now () -. t0) /. float_of_int !reps in
  let collapsed, shared = !flags in
  {
    b_family = family;
    b_k = k;
    b_s = s;
    b_wall = wall;
    b_seeds_s = float_of_int s /. Float.max 1e-9 wall;
    b_collapsed = collapsed;
    b_shared = shared;
    b_speedup = 1.0;
  }

let measure_cell family k =
  let rows = List.map (measure family k) batch_sizes in
  let base =
    match rows with r :: _ -> r.b_seeds_s | [] -> assert false
  in
  List.iter (fun r -> r.b_speedup <- r.b_seeds_s /. Float.max 1e-9 base) rows;
  rows

(* ---- intra-run sharding: one big single run, plain vs sharded ---- *)

type shard_row = {
  h_shards : int;
  h_wall : float;
  mutable h_speedup : float; (* vs the shards=1 row *)
}

let shard_spec () =
  Scenario.make ~algo:"bfdn" ~k:512 ~seed
    (Scenario.world
       ~params:
         [ ("depth_hint", Param.Int 60); ("n", Param.Int (sized (4 * nominal_n))) ]
       "comb")

let measure_sharded shards =
  let t = shard_spec () in
  ignore (Scenario.run ~shards t : Scenario.outcome);
  let t0 = Batch.now () in
  let reps = ref 0 in
  while Batch.now () -. t0 < min_total () || !reps = 0 do
    ignore (Scenario.run ~shards t : Scenario.outcome);
    incr reps
  done;
  { h_shards = shards; h_wall = (Batch.now () -. t0) /. float_of_int !reps;
    h_speedup = 1.0 }

let shard_counts () =
  let cores = Domain.recommended_domain_count () in
  List.sort_uniq compare [ 1; min 2 cores; cores ]

let measure_shard_rows () =
  let rows = List.map measure_sharded (shard_counts ()) in
  let base =
    match rows with r :: _ -> r.h_wall | [] -> assert false
  in
  List.iter
    (fun r -> r.h_speedup <- base /. Float.max 1e-9 r.h_wall)
    rows;
  rows

(* ---- report ---- *)

let json_of_row r =
  Engine_report.Obj
    [
      ("family", Engine_report.String r.b_family);
      ("k", Engine_report.Int r.b_k);
      ("batch", Engine_report.Int r.b_s);
      ("wall_s", Engine_report.Float r.b_wall);
      ("seeds_per_sec", Engine_report.Float r.b_seeds_s);
      ("collapsed", Engine_report.Bool r.b_collapsed);
      ("shared_world", Engine_report.Bool r.b_shared);
      ("speedup_vs_s1", Engine_report.Float r.b_speedup);
    ]

let json_of_shard_row r =
  Engine_report.Obj
    [
      ("shards", Engine_report.Int r.h_shards);
      ("wall_s", Engine_report.Float r.h_wall);
      ("speedup_vs_unsharded", Engine_report.Float r.h_speedup);
    ]

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

let run () =
  header "E22 (seed batching + sharding)"
    "lockstep seed batches and intra-run sharded route computation";
  let rows =
    List.concat_map
      (fun (family, _) -> List.concat_map (measure_cell family) ks)
      families
  in
  let t =
    Table.create
      ~caption:
        "seeds/sec of S seeds of one config: S=1 is sequential \
         Scenario.run; collapsed = identical-lane collapse proved"
      [
        ("family", Table.Left); ("k", Table.Right); ("S", Table.Right);
        ("wall/batch", Table.Right); ("seeds/s", Table.Right);
        ("collapsed", Table.Left); ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.b_family; Table.fint r.b_k; Table.fint r.b_s;
          Printf.sprintf "%.4fs" r.b_wall;
          Printf.sprintf "%.0f" r.b_seeds_s;
          Table.fbool r.b_collapsed;
          Table.fratio r.b_speedup;
        ])
    rows;
  Table.print t;
  let shard_rows = measure_shard_rows () in
  let st =
    Table.create
      ~caption:
        (Printf.sprintf
           "one comb n=%d k=512 run, route phase sharded over domains \
            (%d core(s) here); results bit-identical for every row"
           (sized (4 * nominal_n))
           (Domain.recommended_domain_count ()))
      [
        ("shards", Table.Right); ("wall", Table.Right);
        ("speedup", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row st
        [
          Table.fint r.h_shards;
          Printf.sprintf "%.4fs" r.h_wall;
          Table.fratio r.h_speedup;
        ])
    shard_rows;
  Table.print st;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:1
       @ [
           ( "label",
             Engine_report.String
               "E22 seed-batched lockstep execution + intra-run sharding" );
           ("scale", Engine_report.String (scale_name ()));
           ( "cores",
             Engine_report.Int (Domain.recommended_domain_count ()) );
           ("configs", Engine_report.List (List.map json_of_row rows));
           ( "sharded",
             Engine_report.List (List.map json_of_shard_row shard_rows) );
         ]));
  Printf.printf "report written to %s\n" report_path

(* ---- smoke (--smoke / @runtest-quick) ----

   Tiny batch and shard runs that must agree byte-for-byte with their
   sequential counterparts, and the collapse must engage on a
   deterministic family. *)
let smoke () =
  let t =
    Scenario.make ~algo:"bfdn" ~k:8 ~seed:3 ~batch_seeds:4
      (Scenario.world
         ~params:[ ("depth_hint", Param.Int 10); ("n", Param.Int 120) ]
         "binary")
  in
  let r = Seed_batch.run t in
  let batch_ok =
    Array.length r.Seed_batch.outcomes = 4
    && Array.for_all2
         (fun o l -> Scenario.equal_outcome o (Scenario.run l))
         r.Seed_batch.outcomes
         (Array.init 4 (Scenario.unbatch t))
  in
  let single =
    Scenario.make ~algo:"bfdn" ~k:16 ~seed:4
      (Scenario.world
         ~params:[ ("depth_hint", Param.Int 12); ("n", Param.Int 200) ]
         "comb")
  in
  let plain = Scenario.run single in
  let shard_ok =
    List.for_all
      (fun shards ->
        Scenario.equal_outcome plain (Scenario.run ~shards single))
      [ 2; 3 ]
  in
  batch_ok && r.Seed_batch.collapsed && r.Seed_batch.shared_world && shard_ok

(* ---- perf gate (--perf-gate) ----

   Three kinds of rows:
   - committed-baseline floors (0.6x) on a subset of seeds/sec configs,
     like every other gate;
   - the machine-independent batching claim, re-measured fresh: S=64
     seeds/sec must be >= 2x the S=1 baseline measured in the same
     process — this holds on any machine because it is a ratio;
   - the sharding claim, only enforceable with > 1 core: the sharded
     single run must beat the unsharded one. *)

let gate_floor = 0.6
let batch_speedup_floor = 2.0
let gate_subset = [ ("comb", 64); ("binary", 512) ]

let committed_seeds_s j (family, k, s) =
  match Bfdn_obs.Json.member "configs" j with
  | Some (Engine_report.List rows) ->
      List.find_map
        (fun row ->
          match
            ( Bfdn_obs.Json.member "family" row,
              Bfdn_obs.Json.member "k" row,
              Bfdn_obs.Json.member "batch" row,
              Bfdn_obs.Json.member "seeds_per_sec" row )
          with
          | ( Some (Engine_report.String f),
              Some (Engine_report.Int kk),
              Some (Engine_report.Int ss),
              Some (Engine_report.Float v) )
            when f = family && kk = k && ss = s ->
              Some v
          | _ -> None)
        rows
  | _ -> failwith (report_path ^ ": no configs member")

let perf_gate () =
  scale := Normal;
  header "PERF GATE (batch)"
    (Printf.sprintf
       "seeds/s >= %.2fx committed %s; S=64 >= %.1fx S=1; sharded > 1x on \
        multi-core"
       gate_floor report_path batch_speedup_floor);
  let j =
    let raw = In_channel.with_open_text report_path In_channel.input_all in
    match Bfdn_obs.Json.of_string raw with
    | Ok j -> j
    | Error msg -> failwith (report_path ^ ": " ^ msg)
  in
  List.iter
    (fun (family, k) ->
      let rows = measure_cell family k in
      (* committed floors on the S=1 and S=64 rows *)
      List.iter
        (fun r ->
          if r.b_s = 1 || r.b_s = 64 then
            match committed_seeds_s j (family, k, r.b_s) with
            | None ->
                Printf.printf
                  "  %-6s k=%-3d S=%-3d no committed baseline, skipped\n"
                  family k r.b_s
            | Some base ->
                let ratio = r.b_seeds_s /. Float.max 1e-9 base in
                let ok = ratio >= gate_floor in
                record_gate ~gate:"E22"
                  ~name:(Printf.sprintf "%s k=%d S=%d seeds/s" family k r.b_s)
                  ~measured:r.b_seeds_s ~baseline:base ~ok;
                Printf.printf
                  "  %-6s k=%-3d S=%-3d %s %9.0f seeds/s vs committed %9.0f \
                   (%.2fx)\n"
                  family k r.b_s
                  (if ok then "ok  " else "FAIL")
                  r.b_seeds_s base ratio)
        rows;
      (* the batching claim itself, machine-independent *)
      let s64 = List.find (fun r -> r.b_s = 64) rows in
      let ok = s64.b_speedup >= batch_speedup_floor in
      record_gate ~gate:"E22"
        ~name:(Printf.sprintf "%s k=%d S=64 speedup vs S=1" family k)
        ~measured:s64.b_speedup ~baseline:batch_speedup_floor ~ok;
      Printf.printf "  %-6s k=%-3d S=64/S=1     %s %.2fx (floor %.1fx)\n"
        family k
        (if ok then "ok  " else "FAIL")
        s64.b_speedup batch_speedup_floor)
    gate_subset;
  let cores = Domain.recommended_domain_count () in
  if cores > 1 then begin
    let rows = measure_shard_rows () in
    let best =
      List.fold_left (fun acc r -> Float.max acc r.h_speedup) 0.0 rows
    in
    let ok = best > 1.0 in
    record_gate ~gate:"E22" ~name:"sharded single-run speedup" ~measured:best
      ~baseline:1.0 ~ok;
    Printf.printf "  sharded single run       %s %.2fx on %d cores\n"
      (if ok then "ok  " else "FAIL")
      best cores
  end
  else
    Printf.printf
      "  sharded single run       single core here, speedup check skipped\n"

(* ---- determinism lane (--det-check --jobs=N) ----

   Sequential Scenario.run, the N-worker job pool, Seed_batch and the
   sharded select must agree outcome-for-outcome over a matrix that
   covers deterministic and randomized families, draw-free and drawing
   policies, fault schedules and the collapse/fallback tiers. *)

let det_specs () =
  let w family n dh = Scenario.world
      ~params:[ ("depth_hint", Param.Int dh); ("n", Param.Int n) ]
      family
  in
  [
    ("binary/bfdn S=6", Scenario.make ~algo:"bfdn" ~k:8 ~seed:100 ~batch_seeds:6 (w "binary" 250 10));
    ("comb/cte S=5", Scenario.make ~algo:"cte" ~k:8 ~seed:200 ~batch_seeds:5 (w "comb" 250 20));
    ("random/bfdn S=6", Scenario.make ~algo:"bfdn" ~k:8 ~seed:300 ~batch_seeds:6 (w "random" 220 10));
    ( "spider/random-open S=4",
      Scenario.make ~algo:"bfdn"
        ~algo_params:[ ("policy", Param.String "random-open") ]
        ~k:8 ~seed:400 ~batch_seeds:4 (w "spider" 220 14) );
    ( "binary/ft+crashes S=4",
      Scenario.make ~algo:"bfdn"
        ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
        ~faults:[ ("crashes", Param.String "1@8,3@20+25") ]
        ~k:8 ~seed:500 ~batch_seeds:4 (w "binary" 220 10) );
    ( "adversarial S=3",
      Scenario.make ~algo:"bfdn" ~k:4 ~seed:600 ~batch_seeds:3
        (Scenario.adversarial ~policy:"corridor" ~capacity:150
           ~depth_budget:12) );
  ]

let det_check ~jobs () =
  header "DET CHECK"
    (Printf.sprintf
       "sequential vs %d-worker pool vs seed batch vs %d-shard select" jobs
       jobs);
  let ok_all = ref true in
  List.iter
    (fun (label, t) ->
      let s = t.Scenario.batch_seeds in
      let lanes = List.init s (Scenario.unbatch t) in
      let seq = List.map Scenario.run lanes in
      let pool_ok =
        List.for_all2
          (fun o (_, res) ->
            match res with
            | Ok o' -> Scenario.equal_outcome o o'
            | Error _ -> false)
          seq
          (Batch.run ~workers:jobs lanes)
      in
      let batch_ok =
        let r = Seed_batch.run t in
        List.for_all2 Scenario.equal_outcome seq
          (Array.to_list r.Seed_batch.outcomes)
      in
      let shard_ok =
        (* sharding only touches the tree path; lane 0 suffices *)
        match (lanes, seq) with
        | lane :: _, o :: _ -> (
            match t.Scenario.instance with
            | Scenario.World _ ->
                Scenario.equal_outcome o (Scenario.run ~shards:jobs lane)
            | Scenario.Adversarial _ -> true)
        | _ -> true
      in
      let ok = pool_ok && batch_ok && shard_ok in
      if not ok then ok_all := false;
      Printf.printf "  %-26s pool=%s batch=%s shards=%s\n" label
        (if pool_ok then "ok" else "FAIL")
        (if batch_ok then "ok" else "FAIL")
        (if shard_ok then "ok" else "FAIL"))
    (det_specs ());
  if !ok_all then Printf.printf "det check: all lanes agree\n"
  else Printf.printf "det check: DISAGREEMENT\n";
  !ok_all
