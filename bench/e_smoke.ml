(* SMOKE — one tiny engine batch per experiment (seconds, not minutes):
   `bench/main.exe --smoke`, also wired to `dune build @runtest-quick`.
   Every experiment family is exercised through the engine — tree-based
   ones as Job specs, the rest (regions, urn, grids, alloc, async) as
   pure thunks under Batch.map — so a regression in the pool, the seed
   sharding or any simulator layer trips CI before a full bench run. *)

open Bench_common

let gen family algo k s =
  Job.make ~algo ~k ~seed:s (Job.Generated { family; n = 120; depth_hint = 10 })

let explored_within_thm1 cell =
  let o = ok_outcome cell in
  let job, _ = cell in
  o.result.explored && o.result.at_root
  && float_of_int o.result.rounds <= thm1_bound_of o job.Job.k

let all_explored jobs =
  List.for_all (fun (cell : Job.t * _) -> (ok_outcome cell).result.explored)
    (run_jobs jobs)

let map_ok f xs =
  Array.for_all
    (function Ok b -> b | Error e -> failwith ("smoke task failed: " ^ e))
    (Batch.map ~workers:!workers f xs)

let checks : (string * (unit -> bool)) list =
  [
    ( "E1 regions",
      fun () ->
        map_ok
          (fun (rows, cols) ->
            let map =
              Bfdn.Regions.compute_map ~rows ~cols ~mode:Bfdn.Regions.Analytic
                ~k:16 ()
            in
            String.length (Bfdn.Regions.render map) > 0)
          [| (6, 18); (8, 24) |] );
    ( "E2 thm1",
      fun () ->
        List.for_all explored_within_thm1
          (run_jobs [ gen "random" "bfdn" 4 1; gen "comb" "bfdn" 16 2 ]) );
    ( "E3 urn",
      fun () ->
        map_ok
          (fun (k, delta) ->
            let steps =
              Bfdn.Urn_game.play
                (Bfdn.Urn_game.create ~delta ~k)
                Bfdn.Urn_game.adversary_greedy Bfdn.Urn_game.player_least_loaded
            in
            float_of_int steps <= Bfdn.Urn_game.bound ~delta ~k)
          [| (4, 4); (16, 16) |] );
    ( "E4 lemma2",
      fun () -> all_explored [ gen "comb" "bfdn" 8 3; gen "spider" "bfdn" 8 4 ] );
    ("E5 planner", fun () -> all_explored [ gen "random" "bfdn-wr" 8 5 ]);
    ( "E6 breakdowns",
      fun () ->
        map_ok
          (fun seed' ->
            let tree =
              Bfdn_trees.Tree_gen.of_family "random" ~rng:(Rng.create seed')
                ~n:100 ~depth_hint:8
            in
            let mask ~round:_ ~robot = robot < 4 in
            let env = Env.create ~mask tree ~k:8 in
            let r = Runner.run (Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env)) env in
            r.explored)
          [| 6; 7 |] );
    ( "E21 graphs direct",
      fun () ->
        map_ok
          (fun seed' ->
            let module Grid = Bfdn_graphs.Grid in
            let module Genv = Bfdn_graphs.Graph_env in
            let rng = Rng.create seed' in
            let spec =
              Grid.random_spec ~rng ~width:8 ~height:6 ~obstacle_count:2
                ~max_side:2
            in
            let grid = Grid.make spec in
            let env = Genv.create (Grid.graph grid) ~origin:(Grid.origin grid) ~k:4 in
            let r = Bfdn.Bfdn_graph.run (Bfdn.Bfdn_graph.make env) in
            r.at_origin)
          [| 8; 9 |] );
    ("E8 recursive", fun () -> all_explored [ gen "trap" "bfdn-rec" 8 10 ]);
    ("E9 cte", fun () -> all_explored [ gen "hidden-path" "cte" 8 11 ]);
    ( "E10 alloc",
      fun () ->
        map_ok
          (fun k ->
            let lengths = Bfdn_alloc.Alloc.adversarial_lengths ~k ~total:200 in
            let r = Bfdn_alloc.Alloc.simulate ~lengths () in
            float_of_int r.switches <= Bfdn_alloc.Alloc.switches_bound ~k)
          [| 4; 16 |] );
    ( "E11 adversaries",
      fun () ->
        List.for_all
          (fun cell ->
            let o = ok_outcome cell in
            o.result.explored && o.replay_rounds = Some o.result.rounds)
          (run_jobs
             (List.map
                (fun policy ->
                  Job.make ~algo:"bfdn" ~k:4 ~seed:12
                    (Job.Adversarial { policy; capacity = 100; depth_budget = 12 }))
                Job.policies)) );
    ( "E12 overhead",
      fun () -> all_explored [ gen "random" "bfdn" 4 13; gen "random" "bfdn" 32 14 ] );
    ( "E13 async",
      fun () ->
        map_ok
          (fun speeds ->
            let module Aenv = Bfdn_sim.Async_env in
            let tree =
              Bfdn_trees.Tree_gen.of_family "random" ~rng:(Rng.create 15)
                ~n:80 ~depth_hint:6
            in
            let env = Aenv.create ~speeds tree ~k:4 in
            Aenv.run (Bfdn.Bfdn_async.decide (Bfdn.Bfdn_async.make env)) env;
            Aenv.fully_explored env)
          [| Array.make 4 1.0; [| 2.0; 1.0; 0.5; 0.25 |] |] );
    ( "E14 memory",
      fun () -> all_explored [ gen "caterpillar" "bfdn-wr" 8 16 ] );
    ( "A1 ablation",
      fun () ->
        all_explored [ gen "random" "bfdn" 8 17; gen "random" "bfdn-wr" 8 17 ] );
    ("E16 hotpath", fun () -> E_hotpath.smoke ());
    ("E17 faults", fun () -> E_faults.smoke ());
    ("E21 graph scenarios", fun () -> E_graph.smoke ());
    ("E22 seed batch", fun () -> E_batch.smoke ());
    ( "E15 engine determinism",
      fun () ->
        let js = List.init 8 (fun i -> gen "random" "bfdn" 4 (100 + i)) in
        let a = Batch.run ~workers:1 js and b = Batch.run ~workers:2 js in
        List.for_all2
          (fun (_, x) (_, y) ->
            match (x, y) with
            | Ok ox, Ok oy -> Job.equal_outcome ox oy
            | _ -> false)
          a b );
  ]

let run () =
  header "SMOKE" "one tiny engine batch per experiment";
  let failures = ref 0 in
  List.iter
    (fun (name, check) ->
      let ok = try check () with e -> Printf.printf "  %s raised %s\n" name (Printexc.to_string e); false in
      if not ok then incr failures;
      Printf.printf "  %-24s %s\n%!" name (if ok then "ok" else "FAIL"))
    checks;
  if !failures > 0 then begin
    Printf.printf "smoke: %d experiment batch(es) failed\n" !failures;
    exit 1
  end;
  Printf.printf "smoke: all %d experiment batches ok\n" (List.length checks)
