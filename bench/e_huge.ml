(* E19 — huge scale tier: millions-of-nodes instances on the succinct
   flat-array storage with lazily materialized worlds. Each measurement
   runs in its own subprocess (re-exec of this binary with a hidden
   --huge-probe argument) so VmHWM — the kernel's monotone per-process
   high-water mark — attributes peak RSS to exactly one configuration.

   Three claims land in BENCH_huge.json:
   - throughput: rounds/sec of full explorations at n = 10^6, k up to
     10^4, on lazy worlds, with the GC pause histogram from the
     Gc_probe round hook;
   - memory: a bounded exploration of an n = 10^6 world holds
     O(explored) state under scale=lazy — its peak RSS must stay a
     small fraction (target <= ~25%) of the same run against the fully
     materialized eager instance;
   - reach: a bounded prefix of an n = 10^7 world completes in seconds
     and tens of MB, which the eager tier cannot represent cheaply.

   The gate row (n = 10^5, k = 256, fixed whatever --quick/--full says)
   feeds both the CI smoke assertion (--huge-smoke) and the perf gate
   (--perf-gate, >= 0.6x the committed rounds/sec). *)

open Bench_common
module Table = Bfdn_util.Table
module Json = Bfdn_obs.Json
module Gc_probe = Bfdn_obs.Gc_probe
module Lazy_world = Bfdn_sim.Lazy_world
module Partial_tree = Bfdn_sim.Partial_tree

let report_path = "BENCH_huge.json"

(* ---- probe protocol ---- *)

type spec = {
  sp_mode : string; (* "lazy" | "eager" (eager = materialized baseline) *)
  sp_family : string;
  sp_n : int;
  sp_depth_hint : int;
  sp_k : int;
  sp_max_rounds : int; (* 0 = run to full exploration *)
}

let spec_to_arg s =
  Printf.sprintf "mode=%s,family=%s,n=%d,depth_hint=%d,k=%d,max_rounds=%d"
    s.sp_mode s.sp_family s.sp_n s.sp_depth_hint s.sp_k s.sp_max_rounds

let spec_of_arg str =
  let kv = ref [] in
  List.iter
    (fun part ->
      match String.index_opt part '=' with
      | Some i ->
          kv :=
            ( String.sub part 0 i,
              String.sub part (i + 1) (String.length part - i - 1) )
            :: !kv
      | None -> failwith ("e_huge: malformed probe spec field " ^ part))
    (String.split_on_char ',' str);
  let str k = try List.assoc k !kv with Not_found -> failwith ("e_huge: probe spec missing " ^ k) in
  let int k = int_of_string (str k) in
  {
    sp_mode = str "mode";
    sp_family = str "family";
    sp_n = int "n";
    sp_depth_hint = int "depth_hint";
    sp_k = int "k";
    sp_max_rounds = int "max_rounds";
  }

(* One measurement, in-process. The GC probe ticks from the runner's
   round hook, so the pause histogram is at exploration-round
   granularity — exactly the stall number a robot round would observe. *)
let measure_spec s =
  let reg = Metrics.create () in
  let gc = Gc_probe.create reg in
  let lw =
    Lazy_world.make ~family:s.sp_family ~n:s.sp_n ~depth_hint:s.sp_depth_hint
      ~seed
  in
  let env =
    match s.sp_mode with
    | "lazy" -> Env.of_world (Lazy_world.world lw) ~k:s.sp_k
    | "eager" ->
        (* Fully materialized baseline: the same instance (identical
           rules, run to exhaustion) as a plain up-front tree. *)
        Env.create (Lazy_world.materialize lw) ~k:s.sp_k
    | m -> failwith ("e_huge: unknown probe mode " ^ m)
  in
  let algo = Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env) in
  let on_round _ = Gc_probe.tick gc in
  let t0 = Batch.now () in
  let r =
    if s.sp_max_rounds > 0 then
      Runner.run ~max_rounds:s.sp_max_rounds ~on_round algo env
    else Runner.run ~on_round algo env
  in
  let wall = Batch.now () -. t0 in
  Gc_probe.snapshot gc;
  Gc_probe.dispose gc;
  let pauses =
    match Metrics.find_histogram reg "gc_pause_ns" with
    | Some h -> Metrics.hist_count h
    | None -> 0
  in
  let revealed = Partial_tree.num_explored (Env.view env) in
  Engine_report.Obj
    [
      ("mode", Engine_report.String s.sp_mode);
      ("family", Engine_report.String s.sp_family);
      ("n", Engine_report.Int s.sp_n);
      ("k", Engine_report.Int s.sp_k);
      ("max_rounds", Engine_report.Int s.sp_max_rounds);
      ("rounds", Engine_report.Int r.Runner.rounds);
      ("explored", Engine_report.Bool r.Runner.explored);
      ("edge_events", Engine_report.Int r.Runner.edge_events);
      ("nodes_revealed", Engine_report.Int revealed);
      ("wall_seconds", Engine_report.Float wall);
      ( "rounds_per_sec",
        Engine_report.Float
          (float_of_int r.Runner.rounds /. Float.max 1e-9 wall) );
      ( "peak_rss_bytes",
        match Engine_report.peak_rss_bytes () with
        | Some b -> Engine_report.Int b
        | None -> Engine_report.Null );
      ("gc_major_cycles", Engine_report.Int (Gc_probe.major_cycles gc));
      ("gc_pauses", Engine_report.Int pauses);
      ("gc_metrics", Metrics.to_json reg);
    ]

(* Entry point of the hidden --huge-probe=<spec> argument: one
   measurement on an otherwise fresh process, one JSON line on stdout. *)
let probe_main arg =
  let j = measure_spec (spec_of_arg arg) in
  print_string (Engine_report.to_string j);
  print_newline ()

(* ---- parent side: spawn probes, collect rows ---- *)

let run_probe s =
  let cmd =
    Filename.quote_command Sys.executable_name
      [ "--huge-probe=" ^ spec_to_arg s ]
  in
  let ic = Unix.open_process_in cmd in
  let out = In_channel.input_all ic in
  match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> (
      match Json.of_string (String.trim out) with
      | Ok j -> j
      | Error msg -> failwith ("e_huge: probe output: " ^ msg))
  | _ -> failwith ("e_huge: probe failed: " ^ cmd)

let jint j key =
  match Json.member key j with
  | Some (Engine_report.Int v) -> v
  | _ -> failwith ("e_huge: probe row missing int " ^ key)

let jfloat j key =
  match Json.member key j with
  | Some (Engine_report.Float v) -> v
  | Some (Engine_report.Int v) -> float_of_int v
  | _ -> failwith ("e_huge: probe row missing float " ^ key)

let jbool j key =
  match Json.member key j with
  | Some (Engine_report.Bool v) -> v
  | _ -> failwith ("e_huge: probe row missing bool " ^ key)

let rss_mb j = float_of_int (jint j "peak_rss_bytes") /. (1024. *. 1024.)

(* ---- configurations ---- *)

let lazy_spec ?(mode = "lazy") ?(max_rounds = 0) family depth_hint n k =
  {
    sp_mode = mode;
    sp_family = family;
    sp_n = n;
    sp_depth_hint = depth_hint;
    sp_k = k;
    sp_max_rounds = max_rounds;
  }

(* Full explorations at the million-node tier; k spans 2^10 to 10^4. *)
let throughput_specs () =
  let n = sized 1_000_000 in
  [
    lazy_spec "binary" 20 n 1024;
    lazy_spec "random" 25 n 1024;
    lazy_spec "binary" 20 n 10_000;
  ]

(* Bounded prefix of an n = 10^7 world: only the explored region is ever
   materialized (at most k reveals per round), so this stays in tens of
   MB where the eager tier would hold gigabytes. *)
let reach_spec () =
  lazy_spec ~max_rounds:300 "random" 25 (sized 10_000_000) 1024

(* The memory claim: identical bounded run, lazy vs fully materialized.
   64 rounds at k = 256 reveal a few thousand nodes of the million. *)
let rss_specs () =
  let n = sized 1_000_000 in
  ( lazy_spec ~max_rounds:64 "random" 25 n 256,
    lazy_spec ~mode:"eager" ~max_rounds:64 "random" 25 n 256 )

(* Target for lazy/eager peak RSS on the bounded run. The headline claim
   is <= ~25%; the recorded bar leaves room for base-process RSS noise. *)
let rss_ratio_budget = 0.30

(* Gate row: fixed size whatever the scale flag says, so the committed
   number is comparable across runs (and cheap enough for CI). *)
let gate_spec =
  { sp_mode = "lazy"; sp_family = "binary"; sp_n = 100_000;
    sp_depth_hint = 20; sp_k = 256; sp_max_rounds = 0 }

(* CI ceiling for the gate row's peak RSS: a full n = 10^5 lazy
   exploration holds a few tens of MB of per-node state on top of the
   base process image. *)
let smoke_rss_ceiling_bytes = 256 * 1024 * 1024

let run () =
  header "E19 (huge tier)"
    "millions-of-nodes worlds: throughput, peak RSS and GC pauses under \
     lazy materialization";
  let t =
    Table.create
      ~caption:
        "per-subprocess measurements (VmHWM peak RSS; GC ticked per round)"
      [
        ("mode", Table.Left); ("family", Table.Left); ("n", Table.Right);
        ("k", Table.Right); ("rounds", Table.Right); ("done", Table.Left);
        ("rounds/s", Table.Right); ("RSS MB", Table.Right);
        ("gc maj", Table.Right); ("pauses", Table.Right);
      ]
  in
  let add_row j =
    Table.add_row t
      [
        (match Json.member "mode" j with
        | Some (Engine_report.String s) -> s
        | _ -> "?");
        (match Json.member "family" j with
        | Some (Engine_report.String s) -> s
        | _ -> "?");
        Table.fint (jint j "n"); Table.fint (jint j "k");
        Table.fint (jint j "rounds");
        (if jbool j "explored" then "full" else "prefix");
        Table.ffloat ~decimals:0 (jfloat j "rounds_per_sec");
        Table.ffloat ~decimals:1 (rss_mb j);
        Table.fint (jint j "gc_major_cycles"); Table.fint (jint j "gc_pauses");
      ]
  in
  let throughput = List.map run_probe (throughput_specs ()) in
  List.iter add_row throughput;
  let reach = run_probe (reach_spec ()) in
  add_row reach;
  let rss_lazy_spec, rss_eager_spec = rss_specs () in
  let rss_lazy = run_probe rss_lazy_spec in
  let rss_eager = run_probe rss_eager_spec in
  add_row rss_lazy;
  add_row rss_eager;
  let gate = run_probe gate_spec in
  add_row gate;
  Table.print t;
  let ratio =
    float_of_int (jint rss_lazy "peak_rss_bytes")
    /. float_of_int (max 1 (jint rss_eager "peak_rss_bytes"))
  in
  Printf.printf
    "bounded n=%d run: lazy peak RSS %.1f MB vs materialized %.1f MB — \
     %.0f%% (target <= %.0f%%) %s\n"
    (jint rss_lazy "n") (rss_mb rss_lazy) (rss_mb rss_eager) (100. *. ratio)
    (100. *. rss_ratio_budget)
    (if ratio <= rss_ratio_budget then "ok" else "FAIL");
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:1
       @ [
           ("label", Engine_report.String "E19 huge scale tier");
           ( "scale",
             Engine_report.String
               (match !scale with
               | Quick -> "quick"
               | Normal -> "normal"
               | Full -> "full") );
           ("throughput", Engine_report.List throughput);
           ("reach", reach);
           ( "rss_comparison",
             Engine_report.Obj
               [
                 ("lazy", rss_lazy);
                 ("eager", rss_eager);
                 ("lazy_over_eager", Engine_report.Float ratio);
                 ("budget", Engine_report.Float rss_ratio_budget);
                 ("ok", Engine_report.Bool (ratio <= rss_ratio_budget));
               ] );
           ("gate", gate);
         ]));
  Printf.printf "report written to %s\n" report_path

(* ---- CI smoke (--huge-smoke): the gate row must fully explore within
   an absolute RSS ceiling ---- *)

let smoke () =
  let j = run_probe gate_spec in
  let rss = jint j "peak_rss_bytes" in
  let explored = jbool j "explored" in
  let rounds = jint j "rounds" in
  Printf.printf
    "huge smoke: n=%d k=%d rounds=%d explored=%b peak RSS %.1f MB (ceiling \
     %d MB)\n"
    (jint j "n") (jint j "k") rounds explored (rss_mb j)
    (smoke_rss_ceiling_bytes / (1024 * 1024));
  (* The binary family snaps to a complete tree (2^d - 1 nodes, rounding
     n up), so the revealed count is checked against a range. *)
  explored && rounds > 0
  && jint j "nodes_revealed" > gate_spec.sp_n / 2
  && jint j "nodes_revealed" <= 2 * gate_spec.sp_n
  && rss > 0
  && rss <= smoke_rss_ceiling_bytes

(* ---- perf gate (--perf-gate): the gate row's rounds/sec must stay
   within [gate_floor] of the committed BENCH_huge.json ---- *)

let gate_floor = 0.6

let perf_gate () =
  header "PERF GATE (huge)"
    (Printf.sprintf "gate row rounds/s must stay >= %.2fx the committed %s"
       gate_floor report_path);
  let doc = In_channel.with_open_text report_path In_channel.input_all in
  let committed =
    match Json.of_string doc with
    | Error msg -> failwith (report_path ^ ": " ^ msg)
    | Ok j -> (
        match Json.member "gate" j with
        | Some g -> jfloat g "rounds_per_sec"
        | None -> failwith (report_path ^ ": no gate member"))
  in
  let j = run_probe gate_spec in
  let rps = jfloat j "rounds_per_sec" in
  let ratio = rps /. Float.max 1e-9 committed in
  let ok = ratio >= gate_floor in
  record_gate ~gate:"E19"
    ~name:
      (Printf.sprintf "%s n=%d k=%d r/s" gate_spec.sp_family gate_spec.sp_n
         gate_spec.sp_k)
    ~measured:rps ~baseline:committed ~ok;
  Printf.printf "  %-6s n=%d k=%d %s %11.0f r/s vs committed %11.0f (%.2fx)\n"
    gate_spec.sp_family gate_spec.sp_n gate_spec.sp_k
    (if ok then "ok  " else "FAIL")
    rps committed ratio;
  if not ok then
    Printf.printf "perf gate: huge tier regressed past %.2fx\n" gate_floor
  else Printf.printf "perf gate: huge tier within budget\n"
