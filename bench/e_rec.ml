(* E8 — Theorem 10: recursive BFDN_ell explores within
   4n/k^(1/ell) + 2^(ell+1)(ell+1+min(log Δ, log k / ell)) D^(1+1/ell);
   improving dependence on depth for deep trees. *)

open Bench_common
module Table = Bfdn_util.Table

let run () =
  header "E8 (Theorem 10)" "BFDN_ell on deep trees, ell in {1, 2, 3}";
  let t =
    Table.create
      ~caption:
        "bound(ell) is the Theorem 10 guarantee; bfdn = plain BFDN rounds\n\
         (its Theorem 1 bound grows as D^2, BFDN_ell's as D^(1+1/ell))."
      [
        ("tree", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("ell", Table.Right); ("rounds", Table.Right);
        ("bound(ell)", Table.Right); ("rounds/bound", Table.Right);
        ("bfdn", Table.Right); ("thm1 bound", Table.Right); ("ok", Table.Left);
      ]
  in
  let instances =
    [
      ("comb 80x30", Bfdn_trees.Tree_gen.comb ~spine:80 ~tooth_len:(max 3 (sized 30)));
      ( "random-deep",
        Bfdn_trees.Tree_gen.random_deep ~rng:(Rng.create (seed + 5))
          ~n:(sized 6000) ~depth:150 );
      ("path", Bfdn_trees.Tree_gen.path (sized 2000));
      ("trap 10x100", Bfdn_trees.Tree_gen.binary_trap ~levels:10 ~tail:(max 5 (sized 100)));
    ]
  in
  List.iter
    (fun (name, tree) ->
      List.iter
        (fun k ->
          let env0, _, r0 = run_bfdn tree k in
          let thm1 = thm1_bound env0 k in
          List.iter
            (fun ell ->
              let env, r =
                run_algo "bfdn-rec" ~params:[ ("ell", Param.Int ell) ] tree k
              in
              let bound =
                Bfdn.Bounds.bfdn_rec ~n:(Env.oracle_n env) ~k
                  ~d:(Env.oracle_depth env)
                  ~delta:(Env.oracle_max_degree env) ~ell
              in
              Table.add_row t
                [
                  name;
                  Table.fint (Env.oracle_n env);
                  Table.fint (Env.oracle_depth env);
                  Table.fint k;
                  Table.fint ell;
                  Table.fint r.rounds;
                  Table.ffloat ~decimals:0 bound;
                  Table.fratio (float_of_int r.rounds /. bound);
                  Table.fint r0.rounds;
                  Table.ffloat ~decimals:0 thm1;
                  Table.fbool (r.explored && float_of_int r.rounds <= bound);
                ])
            [ 1; 2; 3 ])
        [ 16; 256 ];
      Table.add_rule t)
    instances;
  Table.print t;
  (* The headline comparison: guarantee curves as D grows at fixed n/D ratio. *)
  let curve =
    Table.create
      ~caption:
        "Guarantee comparison at k = 4096, n = 50 D^1.5 (deep regime):\n\
         BFDN_ell's bound overtakes BFDN's as D grows — the Section 5 point."
      [
        ("D", Table.Right); ("thm1 bound", Table.Right);
        ("thm10 ell=2", Table.Right); ("thm10 ell=3", Table.Right);
        ("best", Table.Left);
      ]
  in
  List.iter
    (fun d ->
      let n = int_of_float (50.0 *. (float_of_int d ** 1.5)) in
      let k = 4096 in
      let b1 = Bfdn.Bounds.bfdn ~n ~k ~d ~delta:k in
      let b2 = Bfdn.Bounds.bfdn_rec ~n ~k ~d ~delta:k ~ell:2 in
      let b3 = Bfdn.Bounds.bfdn_rec ~n ~k ~d ~delta:k ~ell:3 in
      let best =
        if b1 <= b2 && b1 <= b3 then "BFDN"
        else if b2 <= b3 then "BFDN_2"
        else "BFDN_3"
      in
      Table.add_row curve
        [
          Table.fint d; Table.ffloat ~decimals:0 b1; Table.ffloat ~decimals:0 b2;
          Table.ffloat ~decimals:0 b3; best;
        ])
    [ 10; 30; 100; 300; 1000; 3000; 10000 ];
  Table.print curve
