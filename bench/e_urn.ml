(* E3 — Theorem 3: the balls-in-urns game ends within
   k min(log Δ, log k) + 2k steps under the least-loaded strategy;
   the greedy adversary realizes the exact optimum (R(N, u) DP).
   Each (k, Δ) configuration — four adversaries plus the DP — is one
   task in a Batch.map: pure, so the parallel sweep is reproducible. *)

open Bench_common
module Urn_game = Bfdn.Urn_game
module Table = Bfdn_util.Table

type cell = {
  k : int;
  delta : int;
  greedy : int;
  dp : int;
  fresh : int;
  rnd : int;
  bound : float;
}

let configs =
  [|
    (4, 4); (16, 16); (64, 64); (256, 256); (1024, 1024); (4096, 4096);
    (1024, 16); (1024, 4); (64, 100000);
  |]

let play ~delta ~k adversary =
  Urn_game.play (Urn_game.create ~delta ~k) adversary Urn_game.player_least_loaded

let eval (k, delta) =
  {
    k;
    delta;
    greedy = play ~delta ~k Urn_game.adversary_greedy;
    dp = Urn_game.dp_value ~delta ~k;
    fresh = play ~delta ~k Urn_game.adversary_fresh_first;
    rnd = play ~delta ~k (Urn_game.adversary_random (Rng.create seed));
    bound = Urn_game.bound ~delta ~k;
  }

let run () =
  header "E3 (Theorem 3)" "urn-game length vs k·min(log Δ, log k) + 2k";
  let t =
    Table.create
      ~caption:
        "greedy realizes the optimal adversary (= DP value); all adversaries\n\
         stay within the Theorem 3 bound."
      [
        ("k", Table.Right); ("Δ", Table.Right); ("greedy", Table.Right);
        ("DP optimum", Table.Right); ("fresh-first", Table.Right);
        ("random", Table.Right); ("bound", Table.Right);
        ("greedy/bound", Table.Right); ("ok", Table.Left);
      ]
  in
  Array.iter
    (fun res ->
      let c = match res with Ok c -> c | Error e -> failwith ("E3 task failed: " ^ e) in
      Table.add_row t
        [
          Table.fint c.k; Table.fint c.delta; Table.fint c.greedy;
          Table.fint c.dp; Table.fint c.fresh; Table.fint c.rnd;
          Table.ffloat ~decimals:0 c.bound;
          Table.fratio (float_of_int c.greedy /. c.bound);
          Table.fbool
            (c.greedy = c.dp
            && float_of_int c.greedy <= c.bound
            && float_of_int c.fresh <= c.bound
            && float_of_int c.rnd <= c.bound);
        ])
    (Batch.map ~workers:!workers eval configs);
  Table.print t
