(* E16 — hot-path throughput: rounds/sec and edge-events/sec of the
   synchronous round loop (select + apply) for BFDN and CTE across
   {comb, b-ary, random, CTE-trap} × k ∈ {8, 64, 512}. This is the
   BENCH trajectory experiment: the numbers land in BENCH_hotpath.json
   together with the frozen seed-implementation baseline (measured on
   the same instances, same machine, before the zero-allocation round
   loop landed), so every future PR can be judged against it.

   E20 rides on the same interleaved measurement: the span-tracing
   overhead of Span.phase_probe, disabled (must be within 1% of the
   metrics-probed loop — the hooks are no-ops) and enabled (within 3%),
   at k = 512. Both budgets are enforced by --perf-gate against the
   committed report.

   The instances are the paper's adversarial regime — deep combs and the
   CTE trap tree — where per-round costs dominate sweep wall time. *)

open Bench_common
module Table = Bfdn_util.Table
module Span = Bfdn_obs.Span

let report_path = "BENCH_hotpath.json"

(* (family, depth_hint): deep adversarial shapes, plus bushy and random. *)
let families = [ ("comb", 60); ("binary", 12); ("random", 25); ("trap", 40) ]
let ks = [ 8; 64; 512 ]
let algos = [ "bfdn"; "cte" ]
let nominal_n = 4000

(* Rounds/sec of the seed (pre-optimization) implementation on the same
   instances, captured at the default scale on the development machine the
   day this experiment was added. Keyed (family, algo, k). Used only at
   the default scale — at --quick/--full the instances differ. *)
let seed_baseline : ((string * string * int) * float) list =
  [
    (("comb", "bfdn", 8), 667010.);
    (("comb", "cte", 8), 526067.);
    (("comb", "bfdn", 64), 197002.);
    (("comb", "cte", 64), 141321.);
    (("comb", "bfdn", 512), 13879.);
    (("comb", "cte", 512), 12521.);
    (("binary", "bfdn", 8), 582684.);
    (("binary", "cte", 8), 491139.);
    (("binary", "bfdn", 64), 63450.);
    (("binary", "cte", 64), 49349.);
    (("binary", "bfdn", 512), 6509.);
    (("binary", "cte", 512), 3592.);
    (("random", "bfdn", 8), 472755.);
    (("random", "cte", 8), 421296.);
    (("random", "bfdn", 64), 73731.);
    (("random", "cte", 64), 55392.);
    (("random", "bfdn", 512), 7866.);
    (("random", "cte", 512), 6263.);
    (("trap", "bfdn", 8), 326539.);
    (("trap", "cte", 8), 375604.);
    (("trap", "bfdn", 64), 103894.);
    (("trap", "cte", 64), 120570.);
    (("trap", "bfdn", 512), 12991.);
    (("trap", "cte", 512), 13552.);
  ]

let baseline_for key =
  if !scale <> Normal then None else List.assoc_opt key seed_baseline

let algo_of ?probe name env = Algo_registry.instantiate ?probe name env

type sample = {
  s_rounds : int;
  s_events : int;
  s_wall : float; (* best (minimum) wall over the repetitions *)
}

(* One full exploration = one repetition; repeat until the total measured
   time passes [min_total] (at least [min_reps] times), keep the fastest.
   Runs are deterministic, so every repetition performs identical work. *)
let measure ?(probe = Probe.noop) ?(min_total = 0.4) ?(min_reps = 2)
    ?(max_reps = 6) tree k algo_name =
  let rounds = ref 0 and events = ref 0 in
  let best = ref infinity and total = ref 0.0 and reps = ref 0 in
  while (!total < min_total || !reps < min_reps) && !reps < max_reps do
    let t0 = Batch.now () in
    let env = Env.create ~probe tree ~k in
    let r = Runner.run ~probe (algo_of ~probe algo_name env) env in
    let dt = Batch.now () -. t0 in
    if not r.explored then failwith "e_hotpath: instance not explored";
    rounds := r.rounds;
    events := r.edge_events;
    total := !total +. dt;
    if dt < !best then best := dt;
    incr reps
  done;
  { s_rounds = !rounds; s_events = !events; s_wall = !best }

let config_rows () =
  List.concat_map
    (fun (family, depth_hint) ->
      let tree =
        Tree_gen.of_family family ~rng:(Rng.create seed) ~n:(sized nominal_n)
          ~depth_hint
      in
      let n = Tree.n tree and depth = Tree.depth tree in
      List.concat_map
        (fun k ->
          List.map
            (fun algo ->
              let s = measure tree k algo in
              (family, n, depth, k, algo, s))
            algos)
        ks)
    families

let json_of_row (family, n, depth, k, algo, s) =
  let rps = float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall in
  let eps = float_of_int s.s_events /. Float.max 1e-9 s.s_wall in
  let base =
    [
      ("family", Engine_report.String family);
      ("n", Engine_report.Int n);
      ("depth", Engine_report.Int depth);
      ("k", Engine_report.Int k);
      ("algo", Engine_report.String algo);
      ("rounds", Engine_report.Int s.s_rounds);
      ("edge_events", Engine_report.Int s.s_events);
      ("wall_seconds", Engine_report.Float s.s_wall);
      ("rounds_per_sec", Engine_report.Float rps);
      ("events_per_sec", Engine_report.Float eps);
    ]
  in
  let vs_seed =
    match baseline_for (family, algo, k) with
    | None -> []
    | Some b ->
        [
          ("seed_rounds_per_sec", Engine_report.Float b);
          ("speedup_vs_seed", Engine_report.Float (rps /. Float.max 1e-9 b));
        ]
  in
  Engine_report.Obj (base @ vs_seed)

(* ---- probe overhead ----

   The acceptance bar for the obs subsystem: a fully enabled metrics
   probe (clock reads bracketing each phase, per-round counters,
   reanchor histograms) must cost <= 2% vs the no-op default. Measured
   at k = 512, where a round does enough real work that the handful of
   counter bumps and three monotonic-clock reads are noise; at tiny k
   the relative cost is meaningless (a round is tens of nanoseconds). *)

let overhead_k = 512

type overhead_row = {
  o_family : string;
  o_algo : string;
  o_plain : sample;
  o_probed : sample;
  o_ratio : float; (* probed/plain wall ratio over the cleanest segments *)
  o_reg : Metrics.t; (* registry filled by the probed repetitions *)
  (* E20 — span-tracing overhead, measured against the metrics-probed
     side (the server always runs the metrics probe; tracing is the
     increment on top): *)
  o_disabled : sample; (* metrics probe through a disabled Span recorder *)
  o_enabled : sample; (* metrics probe wrapped by Span.phase_probe *)
  o_dis_ratio : float; (* disabled/probed — must stay within 1% *)
  o_en_ratio : float; (* enabled/probed — must stay within 3% *)
}

let overhead_pct r = 100.0 *. (r.o_ratio -. 1.0)
let tracing_disabled_pct r = 100.0 *. (r.o_dis_ratio -. 1.0)
let tracing_enabled_pct r = 100.0 *. (r.o_en_ratio -. 1.0)

(* Segment width for overhead timing, in rounds. Small enough that a
   segment (~0.4–1 ms at k = 512) can fall between bursts of competing
   load on a shared core; large enough that the per-segment clock reads
   (two per [overhead_seg] rounds, added identically to both sides) are
   far below the effect being measured. Power of two: the round check
   is a single [land]. *)
let overhead_seg = 16

(* Mutable measurement state for one (family, algo) overhead config. *)
type overhead_cfg = {
  c_family : string;
  c_algo : string;
  c_reg : Metrics.t;
  (* One timed sample: an inner-batched block of explorations
     alternating plain/probed per exploration, each exploration feeding
     per-[overhead_seg]-round segment walls into [c_plains]/[c_probeds]. *)
  c_one : unit -> unit;
  c_rounds : int;
  c_events : int;
  c_plains : float list ref; (* per-segment plain walls *)
  c_probeds : float list ref; (* per-segment probed walls *)
  c_disableds : float list ref; (* probed through a disabled recorder *)
  c_enableds : float list ref; (* probed + enabled span accumulation *)
}

(* Plain and probed repetitions are interleaved and each side keeps its
   best wall time: CPU-frequency drift between "first measure A, then
   measure B" sessions easily exceeds the effect being measured, but it
   hits both sides of an interleaved pair equally. *)
let overhead_rows () =
  let pairs = match !scale with Quick -> 4 | Normal -> 24 | Full -> 48 in
  let cfgs =
    List.concat_map
      (fun (family, depth_hint) ->
        let tree =
          Tree_gen.of_family family ~rng:(Rng.create seed) ~n:(sized nominal_n)
            ~depth_hint
        in
        List.map
          (fun algo ->
            let reg = Metrics.create () in
            let probe = Probe.of_metrics reg in
            (* [explore probe out] runs one full exploration and, when
               [out] is given, appends the wall time of every completed
               [overhead_seg]-round segment to it. The segment clock
               lives in [Runner.run]'s [on_round] hook, which both the
               instrumented and the plain loop call identically — so
               the (tiny) measurement cost is paid by both sides and
               cancels in the ratio. *)
            let explore ?out probe =
              let env = Env.create ~probe tree ~k:overhead_k in
              let a = algo_of ~probe algo env in
              let r =
                match out with
                | None -> Runner.run ~probe a env
                | Some acc ->
                    let last = ref (Bfdn_util.Clock.now ()) in
                    let on_round env =
                      if Env.round env land (overhead_seg - 1) = 0 then begin
                        let t = Bfdn_util.Clock.now () in
                        acc := (t -. !last) :: !acc;
                        last := t
                      end
                    in
                    Runner.run ~probe ~on_round a env
              in
              if not r.Runner.explored then
                failwith "e_hotpath: overhead instance not explored";
              (r.Runner.rounds, r.Runner.edge_events)
            in
            (* Warm up, and batch enough explorations per timed sample
               that a sample lasts >= ~20ms: a 1ms run cannot be timed
               to the precision the 2% question needs. *)
            let t0 = Batch.now () in
            let rounds, events = explore Probe.noop in
            let est = Batch.now () -. t0 in
            let inner =
              max 1 (int_of_float (Float.ceil (0.02 /. Float.max 1e-6 est)))
            in
            (* Alternate plain/probed per ~1ms exploration inside one
               sample, accumulating a separate timer for each side: CPU
               frequency state and ambient load are then identical for
               both sides of the ratio, which neither best-of (defeated
               by sparse turbo windows landing on one side) nor coarse
               per-sample pairing (defeated by bursts shorter than a
               sample) guarantees. *)
            let plains = ref [] and probeds = ref [] in
            let disableds = ref [] and enableds = ref [] in
            (* Disabled tracing returns the probe physically untouched
               (Span.phase_probe on Span.disabled is the identity), so
               the disabled side times the very same closures as the
               probed side: the measured delta is the honest price of
               "hooks compile to no-ops". *)
            let disabled_probe =
              fst (Span.phase_probe Span.disabled ~parent:Span.none probe)
            in
            let one () =
              let timed out p =
                let rd, ev = explore ~out p in
                if rd <> rounds || ev <> events then
                  failwith "e_hotpath: enabled probe perturbed the round loop"
              in
              (* A fresh recorder per exploration, as the server does
                 per job: recorder setup and span close are part of the
                 cost being measured. *)
              let timed_enabled out =
                let sp = Span.create ~trace_id:"e20" () in
                let parent = Span.start sp "execute" in
                let p, close = Span.phase_probe sp ~parent probe in
                timed out p;
                close ();
                Span.finish sp parent
              in
              let sides =
                [|
                  (fun () -> timed plains Probe.noop);
                  (fun () -> timed probeds probe);
                  (fun () -> timed disableds disabled_probe);
                  (fun () -> timed_enabled enableds);
                |]
              in
              (* Rotate the side order each iteration: GC pauses are
                 phase-locked to the allocation cycle (every exploration
                 allocates a fresh env, so minor collections recur every
                 few explorations) and would otherwise land
                 systematically in one side's slot. *)
              for it = 1 to inner do
                for j = 0 to 3 do
                  sides.((it + j) land 3) ()
                done
              done
            in
            { c_family = family; c_algo = algo; c_reg = reg; c_one = one;
              c_rounds = rounds; c_events = events;
              c_plains = plains; c_probeds = probeds;
              c_disableds = disableds; c_enableds = enableds })
          algos)
      families
  in
  (* Samples are round-robined across configs so each config's samples
     span the whole multi-second measurement window rather than one
     contiguous slice a single noise burst can cover. *)
  for _ = 1 to pairs do
    List.iter (fun c -> c.c_one ()) cfgs
  done;
  List.map
    (fun c ->
      (* Overhead estimator: each side independently keeps the quartile
         of smallest per-segment walls, and the estimate is the ratio
         of the two trimmed means. Machine noise (a shared single core
         with bursty competing load) is additive and heavy-tailed, so a
         full-sum ratio is dominated by whichever side the largest
         bursts happened to land on, and whole-exploration statistics
         cannot help the slow configs at all — a 60 ms exploration
         virtually always absorbs a burst, so best-of, medians and
         trimmed sums over explorations all carry multi-percent
         variance. A ~0.5 ms segment, in contrast, fits between bursts;
         with hundreds of segments per side the cleanest quartile is
         burst-free on both sides, and the per-exploration interleaving
         of [one] keeps the two sides' quiet segments comparable (same
         frequency state, same ambient load). *)
      let trimmed l =
        let a = Array.of_list l in
        Array.sort compare a;
        let keep = max 1 (Array.length a / 4) in
        let s = ref 0.0 in
        for i = 0 to keep - 1 do
          s := !s +. a.(i)
        done;
        !s /. float_of_int keep
      in
      let tp = trimmed !(c.c_plains) in
      let tq = trimmed !(c.c_probeds) in
      let td = trimmed !(c.c_disableds) in
      let te = trimmed !(c.c_enableds) in
      (* Reconstruct a clean-run-equivalent wall for the r/s display:
         per-round time is (trimmed segment wall) / overhead_seg. *)
      let wall_of per_seg =
        per_seg /. float_of_int overhead_seg *. float_of_int c.c_rounds
      in
      let sample wall =
        { s_rounds = c.c_rounds; s_events = c.c_events; s_wall = wall }
      in
      { o_family = c.c_family; o_algo = c.c_algo;
        o_plain = sample (wall_of tp); o_probed = sample (wall_of tq);
        o_ratio = tq /. Float.max 1e-12 tp; o_reg = c.c_reg;
        o_disabled = sample (wall_of td); o_enabled = sample (wall_of te);
        o_dis_ratio = td /. Float.max 1e-12 tq;
        o_en_ratio = te /. Float.max 1e-12 tq })
    cfgs

let json_of_overhead r =
  Engine_report.Obj
    [
      ("family", Engine_report.String r.o_family);
      ("algo", Engine_report.String r.o_algo);
      ("k", Engine_report.Int overhead_k);
      ("plain_wall_seconds", Engine_report.Float r.o_plain.s_wall);
      ("probed_wall_seconds", Engine_report.Float r.o_probed.s_wall);
      ("overhead_pct", Engine_report.Float (overhead_pct r));
    ]

(* E20 rows: span-tracing cost relative to the metrics-probed loop. *)
let json_of_tracing r =
  Engine_report.Obj
    [
      ("family", Engine_report.String r.o_family);
      ("algo", Engine_report.String r.o_algo);
      ("k", Engine_report.Int overhead_k);
      ("probed_wall_seconds", Engine_report.Float r.o_probed.s_wall);
      ("disabled_wall_seconds", Engine_report.Float r.o_disabled.s_wall);
      ("enabled_wall_seconds", Engine_report.Float r.o_enabled.s_wall);
      ("tracing_disabled_pct", Engine_report.Float (tracing_disabled_pct r));
      ("tracing_enabled_pct", Engine_report.Float (tracing_enabled_pct r));
    ]

(* Per-phase wall share recorded by the probe, for --profile. *)
let profile_row r =
  let ns name =
    match Metrics.find_counter r.o_reg name with
    | Some c -> Metrics.value c
    | None -> 0
  in
  let sel = ns "select_ns" and app = ns "apply_ns" in
  let fin = ns "finished_check_ns" in
  let total = Float.max 1.0 (float_of_int (sel + app + fin)) in
  let pct x = 100.0 *. float_of_int x /. total in
  (pct sel, pct app, pct fin, ns "reanchors")

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

let run () =
  header "E16 (hot path)"
    "round-loop throughput, BFDN + CTE on deep adversarial instances";
  let rows = config_rows () in
  let t =
    Table.create
      ~caption:"rounds/sec and edge-events/sec of the synchronous round loop"
      [
        ("family", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("algo", Table.Left); ("rounds", Table.Right);
        ("rounds/s", Table.Right); ("events/s", Table.Right);
        ("vs seed", Table.Right);
      ]
  in
  List.iter
    (fun (family, n, depth, k, algo, s) ->
      let rps = float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall in
      let eps = float_of_int s.s_events /. Float.max 1e-9 s.s_wall in
      let vs =
        match baseline_for (family, algo, k) with
        | None -> "-"
        | Some b -> Printf.sprintf "%.2fx" (rps /. Float.max 1e-9 b)
      in
      Table.add_row t
        [
          family; Table.fint n; Table.fint depth; Table.fint k; algo;
          Table.fint s.s_rounds;
          Table.ffloat ~decimals:0 rps; Table.ffloat ~decimals:0 eps; vs;
        ])
    rows;
  Table.print t;
  let orows = overhead_rows () in
  let ot =
    Table.create
      ~caption:
        (Printf.sprintf
           "instrumentation overhead: enabled metrics probe vs no-op (k=%d)"
           overhead_k)
      [
        ("family", Table.Left); ("algo", Table.Left);
        ("plain r/s", Table.Right); ("probed r/s", Table.Right);
        ("overhead", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let rps (s : sample) =
        float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall
      in
      Table.add_row ot
        [
          r.o_family; r.o_algo;
          Table.ffloat ~decimals:0 (rps r.o_plain);
          Table.ffloat ~decimals:0 (rps r.o_probed);
          Printf.sprintf "%+.2f%%" (overhead_pct r);
        ])
    orows;
  Table.print ot;
  let max_ov =
    List.fold_left (fun acc r -> Float.max acc (overhead_pct r)) neg_infinity
      orows
  in
  Printf.printf "max probe overhead: %+.2f%% (target <= 2%%)\n" max_ov;
  let tt =
    Table.create
      ~caption:
        (Printf.sprintf
           "E20 span-tracing overhead vs the metrics-probed loop (k=%d)"
           overhead_k)
      [
        ("family", Table.Left); ("algo", Table.Left);
        ("probed r/s", Table.Right); ("disabled", Table.Right);
        ("enabled", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let rps (s : sample) =
        float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall
      in
      Table.add_row tt
        [
          r.o_family; r.o_algo;
          Table.ffloat ~decimals:0 (rps r.o_probed);
          Printf.sprintf "%+.2f%%" (tracing_disabled_pct r);
          Printf.sprintf "%+.2f%%" (tracing_enabled_pct r);
        ])
    orows;
  Table.print tt;
  let max_dis =
    List.fold_left
      (fun acc r -> Float.max acc (tracing_disabled_pct r))
      neg_infinity orows
  in
  let max_en =
    List.fold_left
      (fun acc r -> Float.max acc (tracing_enabled_pct r))
      neg_infinity orows
  in
  Printf.printf
    "max tracing overhead: disabled %+.2f%% (target <= 1%%), enabled %+.2f%% \
     (target <= 3%%)\n"
    max_dis max_en;
  if !profile then begin
    let pt =
      Table.create
        ~caption:"--profile: per-phase wall share of the probed runs"
        [
          ("family", Table.Left); ("algo", Table.Left);
          ("select", Table.Right); ("apply", Table.Right);
          ("finished", Table.Right); ("reanchors", Table.Right);
        ]
    in
    List.iter
      (fun r ->
        let sel, app, fin, rean = profile_row r in
        Table.add_row pt
          [
            r.o_family; r.o_algo;
            Printf.sprintf "%.1f%%" sel; Printf.sprintf "%.1f%%" app;
            Printf.sprintf "%.1f%%" fin; Table.fint rean;
          ])
      orows;
    Table.print pt
  end;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:1
       @ [
           ("label", Engine_report.String "E16 hot-path throughput");
           ("scale", Engine_report.String (scale_name ()));
           ("configs", Engine_report.List (List.map json_of_row rows));
           ( "probe_overhead",
             Engine_report.List (List.map json_of_overhead orows) );
           ("max_probe_overhead_pct", Engine_report.Float max_ov);
           ( "tracing_overhead",
             Engine_report.List (List.map json_of_tracing orows) );
           ("max_tracing_disabled_pct", Engine_report.Float max_dis);
           ("max_tracing_enabled_pct", Engine_report.Float max_en);
         ]));
  Printf.printf "report written to %s\n" report_path

(* CI tripwire for --smoke: a tiny instance must explore, produce a
   positive throughput, and two measurements of the same config must
   report identical rounds (the measurement harness itself must not
   perturb the deterministic round loop). The probed variant must agree
   move-for-move with the plain one, its counters must match the
   runner's own totals, and its cost must stay within a loose factor —
   at this instance size wall times are noisy, so the precise <= 2%
   claim is checked by [run] at the default scale, not here. *)
let smoke () =
  let tree =
    Tree_gen.of_family "comb" ~rng:(Rng.create seed) ~n:300 ~depth_hint:15
  in
  let a = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "bfdn" in
  let b = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "bfdn" in
  let c = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "cte" in
  let reg = Metrics.create () in
  let p =
    measure ~probe:(Probe.of_metrics reg) ~min_total:0.0 ~min_reps:1
      ~max_reps:1 tree 8 "bfdn"
  in
  let cval name =
    match Metrics.find_counter reg name with
    | Some cnt -> Metrics.value cnt
    | None -> -1
  in
  let counters_ok =
    cval "rounds" = p.s_rounds && cval "edge_events" = p.s_events
  in
  let overhead_ok = p.s_wall <= (3.0 *. a.s_wall) +. 0.01 in
  (* Span-tracing variant: the wrapped probe must agree move-for-move
     with the plain run, and the three accumulated phase spans must sum
     to the phase-counter total exactly (same add_ns feed). *)
  let sp = Span.create ~trace_id:"smoke" () in
  let parent = Span.start sp "execute" in
  let wrapped, close =
    Span.phase_probe sp ~parent (Probe.of_metrics (Metrics.create ()))
  in
  let tr = measure ~probe:wrapped ~min_total:0.0 ~min_reps:1 ~max_reps:1
      tree 8 "bfdn"
  in
  close ();
  Span.finish sp parent;
  let tracing_ok =
    tr.s_rounds = a.s_rounds && tr.s_events = a.s_events
    && Span.length sp = 4 && Span.dropped sp = 0
  in
  a.s_rounds > 0 && a.s_rounds = b.s_rounds && a.s_events = b.s_events
  && c.s_rounds > 0 && a.s_wall > 0.0
  && p.s_rounds = a.s_rounds && p.s_events = a.s_events
  && counters_ok && overhead_ok && tracing_ok

(* ---- CI perf-regression gate (--perf-gate) ----

   Re-measure a small subset of the committed configs and fail when
   throughput drops below [gate_floor] of the committed
   BENCH_hotpath.json value (a >40% regression). The committed numbers
   come from whatever machine last ran E16 at the default scale, so the
   floor is deliberately loose: it catches accidental algorithmic
   slowdowns on the hot path, not machine-to-machine variance. *)

let gate_floor = 0.6

let gate_subset =
  [ ("comb", "bfdn", 8); ("comb", "cte", 8); ("random", "bfdn", 64) ]

(* E20 budgets: the committed report's worst-case tracing overheads
   must stay inside the issue's budgets. These are checked against the
   committed numbers (re-measuring a 1% effect in a noisy CI runner
   would flake); regenerating the report is part of landing any change
   to the probe or span hot paths. *)
let tracing_disabled_budget_pct = 1.0
let tracing_enabled_budget_pct = 3.0

let gate_report () =
  let doc = In_channel.with_open_text report_path In_channel.input_all in
  match Bfdn_obs.Json.of_string doc with
  | Error msg -> failwith (report_path ^ ": " ^ msg)
  | Ok j -> j

let gate_configs j =
  match Bfdn_obs.Json.member "configs" j with
  | Some (Engine_report.List rows) -> rows
  | _ -> failwith (report_path ^ ": no configs member")

let committed_rps rows (family, algo, k) =
  List.find_map
    (fun row ->
      match
        ( Bfdn_obs.Json.member "family" row,
          Bfdn_obs.Json.member "algo" row,
          Bfdn_obs.Json.member "k" row,
          Bfdn_obs.Json.member "rounds_per_sec" row )
      with
      | ( Some (Engine_report.String f),
          Some (Engine_report.String a),
          Some (Engine_report.Int kk),
          Some (Engine_report.Float rps) )
        when f = family && a = algo && kk = k ->
          Some rps
      | _ -> None)
    rows

let perf_gate () =
  scale := Normal;
  header "PERF GATE"
    (Printf.sprintf "measured rounds/s must stay >= %.2fx the committed %s"
       gate_floor report_path);
  let report = gate_report () in
  let rows = gate_configs report in
  let fails = ref 0 in
  List.iter
    (fun ((family, algo, k) as key) ->
      match committed_rps rows key with
      | None ->
          Printf.printf "  %-6s %-4s k=%-3d no committed baseline, skipped\n"
            family algo k
      | Some base ->
          let depth_hint = List.assoc family families in
          let tree =
            Tree_gen.of_family family ~rng:(Rng.create seed)
              ~n:(sized nominal_n) ~depth_hint
          in
          let s = measure tree k algo in
          let rps = float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall in
          let ratio = rps /. Float.max 1e-9 base in
          let ok = ratio >= gate_floor in
          if not ok then incr fails;
          record_gate ~gate:"E16"
            ~name:(Printf.sprintf "%s/%s k=%d r/s" family algo k)
            ~measured:rps ~baseline:base ~ok;
          Printf.printf
            "  %-6s %-4s k=%-3d %s %11.0f r/s vs committed %11.0f (%.2fx)\n"
            family algo k
            (if ok then "ok  " else "FAIL")
            rps base ratio)
    gate_subset;
  (* E20 tracing budgets over the committed report. *)
  let check_budget member budget =
    match Bfdn_obs.Json.member member report with
    | Some (Engine_report.Float pct) ->
        let ok = pct <= budget in
        if not ok then incr fails;
        record_gate ~gate:"E20" ~name:(member ^ " (<= budget)") ~measured:pct
          ~baseline:budget ~ok;
        Printf.printf "  %-26s %s %+6.2f%% (budget <= %.0f%%)\n" member
          (if ok then "ok  " else "FAIL")
          pct budget
    | _ ->
        Printf.printf "  %-26s not in committed report, skipped\n" member
  in
  check_budget "max_tracing_disabled_pct" tracing_disabled_budget_pct;
  check_budget "max_tracing_enabled_pct" tracing_enabled_budget_pct;
  if !fails > 0 then
    Printf.printf "perf gate: %d check(s) failed\n" !fails
  else
    Printf.printf "perf gate: all %d configs + tracing budgets within budget\n"
      (List.length gate_subset)
