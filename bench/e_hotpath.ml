(* E16 — hot-path throughput: rounds/sec and edge-events/sec of the
   synchronous round loop (select + apply) for BFDN and CTE across
   {comb, b-ary, random, CTE-trap} × k ∈ {8, 64, 512}. This is the
   BENCH trajectory experiment: the numbers land in BENCH_hotpath.json
   together with the frozen seed-implementation baseline (measured on
   the same instances, same machine, before the zero-allocation round
   loop landed), so every future PR can be judged against it.

   The instances are the paper's adversarial regime — deep combs and the
   CTE trap tree — where per-round costs dominate sweep wall time. *)

open Bench_common
module Table = Bfdn_util.Table

let report_path = "BENCH_hotpath.json"

(* (family, depth_hint): deep adversarial shapes, plus bushy and random. *)
let families = [ ("comb", 60); ("binary", 12); ("random", 25); ("trap", 40) ]
let ks = [ 8; 64; 512 ]
let algos = [ "bfdn"; "cte" ]
let nominal_n = 4000

(* Rounds/sec of the seed (pre-optimization) implementation on the same
   instances, captured at the default scale on the development machine the
   day this experiment was added. Keyed (family, algo, k). Used only at
   the default scale — at --quick/--full the instances differ. *)
let seed_baseline : ((string * string * int) * float) list =
  [
    (("comb", "bfdn", 8), 667010.);
    (("comb", "cte", 8), 526067.);
    (("comb", "bfdn", 64), 197002.);
    (("comb", "cte", 64), 141321.);
    (("comb", "bfdn", 512), 13879.);
    (("comb", "cte", 512), 12521.);
    (("binary", "bfdn", 8), 582684.);
    (("binary", "cte", 8), 491139.);
    (("binary", "bfdn", 64), 63450.);
    (("binary", "cte", 64), 49349.);
    (("binary", "bfdn", 512), 6509.);
    (("binary", "cte", 512), 3592.);
    (("random", "bfdn", 8), 472755.);
    (("random", "cte", 8), 421296.);
    (("random", "bfdn", 64), 73731.);
    (("random", "cte", 64), 55392.);
    (("random", "bfdn", 512), 7866.);
    (("random", "cte", 512), 6263.);
    (("trap", "bfdn", 8), 326539.);
    (("trap", "cte", 8), 375604.);
    (("trap", "bfdn", 64), 103894.);
    (("trap", "cte", 64), 120570.);
    (("trap", "bfdn", 512), 12991.);
    (("trap", "cte", 512), 13552.);
  ]

let baseline_for key =
  if !scale <> Normal then None else List.assoc_opt key seed_baseline

let algo_of name env =
  match name with
  | "bfdn" -> Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env)
  | "cte" -> Bfdn_baselines.Cte.make env
  | other -> invalid_arg ("e_hotpath: unknown algo " ^ other)

type sample = {
  s_rounds : int;
  s_events : int;
  s_wall : float; (* best (minimum) wall over the repetitions *)
}

(* One full exploration = one repetition; repeat until the total measured
   time passes [min_total] (at least [min_reps] times), keep the fastest.
   Runs are deterministic, so every repetition performs identical work. *)
let measure ?(min_total = 0.4) ?(min_reps = 2) ?(max_reps = 6) tree k algo_name =
  let rounds = ref 0 and events = ref 0 in
  let best = ref infinity and total = ref 0.0 and reps = ref 0 in
  while (!total < min_total || !reps < min_reps) && !reps < max_reps do
    let t0 = Batch.now () in
    let env = Env.create tree ~k in
    let r = Runner.run (algo_of algo_name env) env in
    let dt = Batch.now () -. t0 in
    if not r.explored then failwith "e_hotpath: instance not explored";
    rounds := r.rounds;
    events := r.edge_events;
    total := !total +. dt;
    if dt < !best then best := dt;
    incr reps
  done;
  { s_rounds = !rounds; s_events = !events; s_wall = !best }

let config_rows () =
  List.concat_map
    (fun (family, depth_hint) ->
      let tree =
        Tree_gen.of_family family ~rng:(Rng.create seed) ~n:(sized nominal_n)
          ~depth_hint
      in
      let n = Tree.n tree and depth = Tree.depth tree in
      List.concat_map
        (fun k ->
          List.map
            (fun algo ->
              let s = measure tree k algo in
              (family, n, depth, k, algo, s))
            algos)
        ks)
    families

let json_of_row (family, n, depth, k, algo, s) =
  let rps = float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall in
  let eps = float_of_int s.s_events /. Float.max 1e-9 s.s_wall in
  let base =
    [
      ("family", Engine_report.String family);
      ("n", Engine_report.Int n);
      ("depth", Engine_report.Int depth);
      ("k", Engine_report.Int k);
      ("algo", Engine_report.String algo);
      ("rounds", Engine_report.Int s.s_rounds);
      ("edge_events", Engine_report.Int s.s_events);
      ("wall_seconds", Engine_report.Float s.s_wall);
      ("rounds_per_sec", Engine_report.Float rps);
      ("events_per_sec", Engine_report.Float eps);
    ]
  in
  let vs_seed =
    match baseline_for (family, algo, k) with
    | None -> []
    | Some b ->
        [
          ("seed_rounds_per_sec", Engine_report.Float b);
          ("speedup_vs_seed", Engine_report.Float (rps /. Float.max 1e-9 b));
        ]
  in
  Engine_report.Obj (base @ vs_seed)

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

let run () =
  header "E16 (hot path)"
    "round-loop throughput, BFDN + CTE on deep adversarial instances";
  let rows = config_rows () in
  let t =
    Table.create
      ~caption:"rounds/sec and edge-events/sec of the synchronous round loop"
      [
        ("family", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("algo", Table.Left); ("rounds", Table.Right);
        ("rounds/s", Table.Right); ("events/s", Table.Right);
        ("vs seed", Table.Right);
      ]
  in
  List.iter
    (fun (family, n, depth, k, algo, s) ->
      let rps = float_of_int s.s_rounds /. Float.max 1e-9 s.s_wall in
      let eps = float_of_int s.s_events /. Float.max 1e-9 s.s_wall in
      let vs =
        match baseline_for (family, algo, k) with
        | None -> "-"
        | Some b -> Printf.sprintf "%.2fx" (rps /. Float.max 1e-9 b)
      in
      Table.add_row t
        [
          family; Table.fint n; Table.fint depth; Table.fint k; algo;
          Table.fint s.s_rounds;
          Table.ffloat ~decimals:0 rps; Table.ffloat ~decimals:0 eps; vs;
        ])
    rows;
  Table.print t;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       [
         ("label", Engine_report.String "E16 hot-path throughput");
         ("scale", Engine_report.String (scale_name ()));
         ("configs", Engine_report.List (List.map json_of_row rows));
       ]);
  Printf.printf "report written to %s\n" report_path

(* CI tripwire for --smoke: a tiny instance must explore, produce a
   positive throughput, and two measurements of the same config must
   report identical rounds (the measurement harness itself must not
   perturb the deterministic round loop). *)
let smoke () =
  let tree =
    Tree_gen.of_family "comb" ~rng:(Rng.create seed) ~n:300 ~depth_hint:15
  in
  let a = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "bfdn" in
  let b = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "bfdn" in
  let c = measure ~min_total:0.0 ~min_reps:1 ~max_reps:1 tree 8 "cte" in
  a.s_rounds > 0 && a.s_rounds = b.s_rounds && a.s_events = b.s_events
  && c.s_rounds > 0 && a.s_wall > 0.0
