(* E9 — competitive overhead vs competitive ratio (Section 1 context):
   BFDN against CTE head to head, measured rounds and guarantees. CTE's
   guarantee degrades to ~ n/log k on sequential-breadth instances [11];
   BFDN's 2n/k + D^2 log k wins whenever D^2 log^2 k <= n (Appendix A). *)

open Bench_common
module Table = Bfdn_util.Table
module Regions = Bfdn.Regions

let run () =
  header "E9 (CTE vs BFDN)" "measured head-to-head and guarantee crossovers";
  let t =
    Table.create
      ~caption:
        "guarantee winner = Appendix A region of the instance; measured\n\
         ratios > 1 mean BFDN is faster. lb = max(2n/k, 2D)."
      [
        ("instance", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("cte", Table.Right); ("cte-wr", Table.Right);
        ("bfdn", Table.Right); ("offline", Table.Right);
        ("cte/bfdn", Table.Right); ("bfdn/lb", Table.Right);
        ("guarantee winner", Table.Left);
      ]
  in
  let instances =
    [
      ( "wide shallow random",
        Bfdn_trees.Tree_gen.random_tree ~rng:(Rng.create (seed + 6))
          ~n:(sized 40_000) ~max_depth:8 () );
      ( "comb long teeth",
        Bfdn_trees.Tree_gen.comb ~spine:25 ~tooth_len:(max 5 (sized 120)) );
      ( "caterpillar",
        Bfdn_trees.Tree_gen.caterpillar ~spine:30 ~legs_per_node:(max 3 (sized 150)) );
      ("hidden path (CTE-friendly deep)", Bfdn_trees.Tree_gen.hidden_path ~k:64 ~blocks:10);
      ("star of spiders", Bfdn_trees.Tree_gen.spider ~legs:(sized 800) ~leg_len:6);
      ( "random medium",
        Bfdn_trees.Tree_gen.random_tree ~rng:(Rng.create (seed + 7))
          ~n:(sized 20_000) () );
    ]
  in
  List.iter
    (fun (name, tree) ->
      List.iter
        (fun k ->
          let env1, r1 = run_algo "cte" tree k in
          let _, _, r2 = run_bfdn tree k in
          let _, r3 = run_algo "offline" tree k in
          let _, rwr = run_algo "cte-writeread" tree k in
          let n = Env.oracle_n env1 and d = Env.oracle_depth env1 in
          (* Concrete-formula argmin: at laptop scales the constants matter
             (the constants-dropped Appendix A regions put everything this
             small inside Yo*'s region). *)
          let winner =
            if d >= n then "-"
            else
              Regions.name
                (fst (Regions.winner ~n ~k ~d ~delta:(Env.oracle_max_degree env1)))
          in
          Table.add_row t
            [
              name; Table.fint n; Table.fint d; Table.fint k;
              Table.fint r1.rounds; Table.fint rwr.rounds;
              Table.fint r2.rounds; Table.fint r3.rounds;
              Table.fratio (float_of_int r1.rounds /. float_of_int r2.rounds);
              Table.fratio (float_of_int r2.rounds /. offline_lb env1 k);
              winner;
            ])
        [ 16; 64; 256 ];
      Table.add_rule t)
    instances;
  Table.print t;
  Printf.printf
    "Shape check: BFDN tracks the offline lower bound on shallow/wide trees\n\
     (competitive overhead 2n/k + O(D^2 log k)), while CTE can only promise\n\
     n/log2 k + D; on deep instances CTE's measured rounds stay competitive,\n\
     matching the Figure 1 region split.\n"
