(* Shared plumbing for the experiment harness: scaling knobs, run helpers
   and formatting shortcuts. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng
module Table = Bfdn_util.Table
module Job = Bfdn_engine.Job
module Batch = Bfdn_engine.Batch
module Engine_report = Bfdn_engine.Report
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe
module Param = Bfdn_scenario.Param
module Algo_registry = Bfdn_scenario.Algo_registry
module Scenario = Bfdn_scenario.Scenario

type scale = Quick | Normal | Full

let scale = ref Normal

(* Print per-phase timing breakdowns in experiments that support them
   (--profile). Off by default: the breakdown needs an enabled probe,
   and the headline numbers are always measured with the no-op one. *)
let profile = ref false

(* Worker count for engine-backed experiments (--jobs=N). The results are
   deterministic whatever this is set to; it only changes wall time. *)
let workers = ref (Domain.recommended_domain_count ())

(* Multiply a nominal instance size by the scale factor. *)
let sized n =
  match !scale with Quick -> max 50 (n / 10) | Normal -> n | Full -> n * 4

let seed = 20230619 (* PODC'23 *)

let header id claim =
  Printf.printf "\n=== %s — %s ===\n%!" id claim

let run_to_result algo env = Runner.run algo env

let run_bfdn tree k =
  let env = Env.create tree ~k in
  let t = Bfdn.Bfdn_algo.make env in
  (env, t, Runner.run (Bfdn.Bfdn_algo.algo t) env)

let run_planner tree k =
  let env = Env.create tree ~k in
  let t = Bfdn.Bfdn_planner.make env in
  (env, t, Runner.run (Bfdn.Bfdn_planner.algo t) env)

(* Registry-dispatched run: the generic path for experiments that only
   need the result, not a typed algorithm-state handle. *)
let run_algo ?params name tree k =
  let env = Env.create tree ~k in
  (env, Runner.run (Algo_registry.instantiate ?params name env) env)

let thm1_bound env k =
  Bfdn.Bounds.bfdn ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
    ~delta:(Env.oracle_max_degree env)

let offline_lb env k =
  Bfdn.Bounds.offline_lb ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)

let describe env =
  Printf.sprintf "n=%d D=%d Δ=%d" (Env.oracle_n env) (Env.oracle_depth env)
    (Env.oracle_max_degree env)

(* ---- perf-gate result recording (--perf-gate) ----

   Gates record one row per re-measured config here instead of exiting
   on first failure: the driver prints every gate, then writes one
   machine-readable summary (perf-summary.json, plus a markdown table to
   $GITHUB_STEP_SUMMARY when CI provides it) and exits nonzero iff any
   row failed — so a regression report always shows the full picture,
   not just the first tripped gate. *)

type gate_row = {
  g_gate : string;  (* experiment id, e.g. "E16" *)
  g_name : string;  (* config label within the gate *)
  g_measured : float;
  g_baseline : float;  (* committed value (or budget) compared against *)
  g_ratio : float;  (* measured / baseline *)
  g_ok : bool;
}

let gate_rows : gate_row list ref = ref []

let record_gate ~gate ~name ~measured ~baseline ~ok =
  gate_rows :=
    {
      g_gate = gate;
      g_name = name;
      g_measured = measured;
      g_baseline = baseline;
      g_ratio = measured /. Float.max 1e-9 baseline;
      g_ok = ok;
    }
    :: !gate_rows

let gate_failures () =
  List.length (List.filter (fun r -> not r.g_ok) !gate_rows)

let gate_summary_json () =
  let module J = Bfdn_obs.Json in
  J.Obj
    [
      ("failures", J.Int (gate_failures ()));
      ( "rows",
        J.List
          (List.rev_map
             (fun r ->
               J.Obj
                 [
                   ("gate", J.String r.g_gate);
                   ("name", J.String r.g_name);
                   ("measured", J.Float r.g_measured);
                   ("baseline", J.Float r.g_baseline);
                   ("ratio", J.Float r.g_ratio);
                   ("ok", J.Bool r.g_ok);
                 ])
             !gate_rows) );
    ]

let gate_summary_markdown () =
  let b = Buffer.create 1024 in
  Buffer.add_string b "## Perf gate\n\n";
  Buffer.add_string b "| gate | config | measured | baseline | ratio | status |\n";
  Buffer.add_string b "|---|---|---:|---:|---:|---|\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "| %s | %s | %.1f | %.1f | %.2fx | %s |\n" r.g_gate
           r.g_name r.g_measured r.g_baseline r.g_ratio
           (if r.g_ok then "ok" else "**FAIL**")))
    (List.rev !gate_rows);
  Buffer.add_string b
    (Printf.sprintf "\n%d row(s), %d failure(s)\n" (List.length !gate_rows)
       (gate_failures ()));
  Buffer.contents b

(* ---- engine-backed batches ---- *)

let run_jobs jobs = Batch.run ~workers:!workers jobs

let ok_outcome (job, res) =
  match res with
  | Ok (o : Job.outcome) -> o
  | Error e -> failwith (Printf.sprintf "engine job %s failed: %s" (Job.describe job) e)

let family_of_job = Scenario.instance_label

(* Bound formulas from an outcome's frozen-instance statistics. *)
let thm1_bound_of (o : Job.outcome) k =
  Bfdn.Bounds.bfdn ~n:o.n ~k ~d:o.depth ~delta:o.max_degree

let offline_lb_of (o : Job.outcome) k = Bfdn.Bounds.offline_lb ~n:o.n ~k ~d:(max 1 o.depth)
