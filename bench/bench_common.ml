(* Shared plumbing for the experiment harness: scaling knobs, run helpers
   and formatting shortcuts. *)

module Tree = Bfdn_trees.Tree
module Tree_gen = Bfdn_trees.Tree_gen
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng
module Table = Bfdn_util.Table
module Job = Bfdn_engine.Job
module Batch = Bfdn_engine.Batch
module Engine_report = Bfdn_engine.Report
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe
module Param = Bfdn_scenario.Param
module Algo_registry = Bfdn_scenario.Algo_registry
module Scenario = Bfdn_scenario.Scenario

type scale = Quick | Normal | Full

let scale = ref Normal

(* Print per-phase timing breakdowns in experiments that support them
   (--profile). Off by default: the breakdown needs an enabled probe,
   and the headline numbers are always measured with the no-op one. *)
let profile = ref false

(* Worker count for engine-backed experiments (--jobs=N). The results are
   deterministic whatever this is set to; it only changes wall time. *)
let workers = ref (Domain.recommended_domain_count ())

(* Multiply a nominal instance size by the scale factor. *)
let sized n =
  match !scale with Quick -> max 50 (n / 10) | Normal -> n | Full -> n * 4

let seed = 20230619 (* PODC'23 *)

let header id claim =
  Printf.printf "\n=== %s — %s ===\n%!" id claim

let run_to_result algo env = Runner.run algo env

let run_bfdn tree k =
  let env = Env.create tree ~k in
  let t = Bfdn.Bfdn_algo.make env in
  (env, t, Runner.run (Bfdn.Bfdn_algo.algo t) env)

let run_planner tree k =
  let env = Env.create tree ~k in
  let t = Bfdn.Bfdn_planner.make env in
  (env, t, Runner.run (Bfdn.Bfdn_planner.algo t) env)

(* Registry-dispatched run: the generic path for experiments that only
   need the result, not a typed algorithm-state handle. *)
let run_algo ?params name tree k =
  let env = Env.create tree ~k in
  (env, Runner.run (Algo_registry.instantiate ?params name env) env)

let thm1_bound env k =
  Bfdn.Bounds.bfdn ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)
    ~delta:(Env.oracle_max_degree env)

let offline_lb env k =
  Bfdn.Bounds.offline_lb ~n:(Env.oracle_n env) ~k ~d:(Env.oracle_depth env)

let describe env =
  Printf.sprintf "n=%d D=%d Δ=%d" (Env.oracle_n env) (Env.oracle_depth env)
    (Env.oracle_max_degree env)

(* ---- engine-backed batches ---- *)

let run_jobs jobs = Batch.run ~workers:!workers jobs

let ok_outcome (job, res) =
  match res with
  | Ok (o : Job.outcome) -> o
  | Error e -> failwith (Printf.sprintf "engine job %s failed: %s" (Job.describe job) e)

let family_of_job = Scenario.instance_label

(* Bound formulas from an outcome's frozen-instance statistics. *)
let thm1_bound_of (o : Job.outcome) k =
  Bfdn.Bounds.bfdn ~n:o.n ~k ~d:o.depth ~delta:o.max_degree

let offline_lb_of (o : Job.outcome) k = Bfdn.Bounds.offline_lb ~n:o.n ~k ~d:(max 1 o.depth)
