(* E17 — fault injection: crash-tolerant BFDN against seeded crash
   schedules. Two claims are quantified into BENCH_faults.json:

   1. Robustness: with [fault_tolerant=true] exploration completes (and
      the surviving fleet parks at the root) whenever at least one robot
      survives, across crash rates, restart policies, k and tree
      families — while plain BFDN under the same schedule spins to the
      round bound the moment a permanently crashed robot strands away
      from the root. The rounds column shows the graceful-degradation
      price of each crash rate.

   2. Overhead: the fault hook threaded through Env.apply must be free
      when faults are off. The disabled path adds one immutable-flag
      branch per robot, which cannot be A/B'd against the pre-fault
      code inside one binary — its <= 1% budget is enforced by the CI
      perf gate against the committed BENCH_hotpath.json (measured
      pre-hook). What this experiment measures, with the E16 probe
      methodology (interleaved per-segment walls, trimmed-quartile
      ratio), is the {e enabled-idle} price: a live hook whose plan
      never fires, i.e. the per-robot predicate cost paid whenever
      fault injection is switched on at all. *)

open Bench_common
module Fault_plan = Bfdn_faults.Fault_plan
module Injector = Bfdn_faults.Injector
module Fault_spec = Bfdn_scenario.Fault_spec

let report_path = "BENCH_faults.json"

let families = [ ("comb", 30); ("random", 15) ]
let ks = [ 8; 64 ]
let nominal_n = 1000

(* (fault_tolerant, crash rate, restart delay) legs per (family, k).
   restart = -1: crashes are permanent. *)
let legs =
  [
    (true, 0.0, -1);
    (true, 0.1, -1);
    (true, 0.3, -1);
    (true, 0.3, 20);
    (false, 0.1, -1);
  ]

let fault_bindings ~rate ~restart =
  if rate = 0.0 then []
  else
    [
      ("rate", Param.Float rate);
      ("restart", Param.Int restart);
      ("window", Param.Int 40);
    ]

let spec ~family ~depth_hint ~k ~ft ~rate ~restart =
  Scenario.make ~algo:"bfdn"
    ~algo_params:(if ft then [ ("fault_tolerant", Param.Bool true) ] else [])
    ~k ~seed
    ~faults:(fault_bindings ~rate ~restart)
    (Scenario.generated ~family ~n:(sized nominal_n) ~depth_hint)

type row = {
  r_family : string;
  r_k : int;
  r_ft : bool;
  r_rate : float;
  r_restart : int;
  r_n : int;
  r_depth : int;
  r_rounds : int;
  r_explored : bool;
  r_hit_limit : bool;
  r_crashes : int;
  r_restarts : int;
  r_survivors : int;
  r_lost : int;
  r_revived : int;
}

let run_leg ~family ~depth_hint ~k (ft, rate, restart) =
  let sp = spec ~family ~depth_hint ~k ~ft ~rate ~restart in
  let reg = Metrics.create () in
  let outcome = Scenario.run ~probe:(Probe.of_metrics reg) sp in
  let result = outcome.Scenario.result in
  (* Re-derive the plan exactly as Scenario.run did (fault stream =
     split index 2 of the root seed) for the schedule-side statistics. *)
  let plan =
    Fault_spec.plan
      ~rng:(Rng.split (Rng.create seed) 2)
      ~k sp.Scenario.faults
  in
  let crashes, restarts, survivors =
    match plan with
    | None -> (0, 0, k)
    | Some p ->
        let c, r = Fault_plan.stats p ~rounds:result.Runner.rounds in
        (c, r, Fault_plan.survivors p)
  in
  let cval name =
    match Metrics.find_counter reg name with
    | Some c -> Metrics.value c
    | None -> 0
  in
  {
    r_family = family;
    r_k = k;
    r_ft = ft;
    r_rate = rate;
    r_restart = restart;
    r_n = outcome.Scenario.n;
    r_depth = outcome.Scenario.depth;
    r_rounds = result.Runner.rounds;
    r_explored = result.Runner.explored;
    r_hit_limit = result.Runner.hit_round_limit;
    r_crashes = crashes;
    r_restarts = restarts;
    r_survivors = survivors;
    r_lost = cval "robots_lost";
    r_revived = cval "robots_revived";
  }

let sweep_rows () =
  List.concat_map
    (fun (family, depth_hint) ->
      List.concat_map
        (fun k -> List.map (run_leg ~family ~depth_hint ~k) legs)
        ks)
    families

let json_of_row r =
  Engine_report.Obj
    [
      ("family", Engine_report.String r.r_family);
      ("n", Engine_report.Int r.r_n);
      ("depth", Engine_report.Int r.r_depth);
      ("k", Engine_report.Int r.r_k);
      ("fault_tolerant", Engine_report.Bool r.r_ft);
      ("rate", Engine_report.Float r.r_rate);
      ("restart", Engine_report.Int r.r_restart);
      ("crashes", Engine_report.Int r.r_crashes);
      ("restarts", Engine_report.Int r.r_restarts);
      ("survivors", Engine_report.Int r.r_survivors);
      ("rounds", Engine_report.Int r.r_rounds);
      ("explored", Engine_report.Bool r.r_explored);
      ("hit_round_limit", Engine_report.Bool r.r_hit_limit);
      ("robots_lost", Engine_report.Int r.r_lost);
      ("robots_revived", Engine_report.Int r.r_revived);
    ]

(* ---- enabled-idle overhead ----

   Same estimator as E16's probe budget: alternate the two sides per
   exploration, collect per-[seg]-round segment walls through the
   runner's on_round hook (paid identically by both sides), and compare
   the trimmed means of each side's cleanest quartile. k = 512 so a
   round does enough work for the question to be meaningful. *)

let overhead_k = 512
let seg = 16

(* An enabled hook that never fires: one crash scheduled far beyond any
   horizon this bench reaches. Not [quiet], so Injector.hook keeps it
   enabled — the hot loop pays the compiled [fh_down] predicate per
   robot per round, exactly what any active crash plan costs while no
   crash is in its window. *)
let idle_plan = Fault_plan.make ~k:overhead_k [ (0, max_int / 2, -1) ]

let measure_overhead () =
  let tree =
    Tree_gen.of_family "comb" ~rng:(Rng.create seed) ~n:(sized 4000)
      ~depth_hint:60
  in
  let explore ~fault out =
    let env = Env.create tree ~k:overhead_k ~fault in
    let a = Algo_registry.instantiate "bfdn" env in
    let last = ref (Bfdn_util.Clock.now ()) in
    let on_round env =
      if Env.round env land (seg - 1) = 0 then begin
        let t = Bfdn_util.Clock.now () in
        out := (t -. !last) :: !out;
        last := t
      end
    in
    let r = Runner.run ~on_round a env in
    if not r.Runner.explored then failwith "e_faults: overhead run incomplete";
    (r.Runner.rounds, r.Runner.edge_events)
  in
  let idle_hook = Injector.hook idle_plan in
  let plains = ref [] and idles = ref [] in
  let warm = explore ~fault:Env.fault_noop (ref []) in
  let pairs = match !scale with Quick -> 3 | Normal -> 16 | Full -> 32 in
  for it = 1 to pairs do
    let check out fault =
      if explore ~fault out <> warm then
        failwith "e_faults: idle fault hook perturbed the round loop"
    in
    if it land 1 = 0 then begin
      check plains Env.fault_noop;
      check idles idle_hook
    end
    else begin
      check idles idle_hook;
      check plains Env.fault_noop
    end
  done;
  let trimmed l =
    let a = Array.of_list l in
    Array.sort compare a;
    let keep = max 1 (Array.length a / 4) in
    let s = ref 0.0 in
    for i = 0 to keep - 1 do
      s := !s +. a.(i)
    done;
    !s /. float_of_int keep
  in
  let tp = trimmed !plains and ti = trimmed !idles in
  let rounds, _ = warm in
  (100.0 *. ((ti /. Float.max 1e-12 tp) -. 1.0), rounds, tp, ti)

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

let run () =
  header "E17 (faults)"
    "crash-tolerant BFDN under seeded fault schedules + fault-hook budget";
  let rows = sweep_rows () in
  let t =
    Table.create
      ~caption:
        "crash-rate sweep (window=40): ft completes with survivors at root; \
         plain BFDN spins to the bound"
      [
        ("family", Table.Left); ("k", Table.Right); ("ft", Table.Left);
        ("rate", Table.Right); ("restart", Table.Right);
        ("crash/rst", Table.Right); ("lost/rev", Table.Right);
        ("rounds", Table.Right); ("explored", Table.Left);
        ("capped", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.r_family; Table.fint r.r_k; (if r.r_ft then "yes" else "no");
          Printf.sprintf "%.1f" r.r_rate;
          (if r.r_restart < 0 then "-" else string_of_int r.r_restart);
          Printf.sprintf "%d/%d" r.r_crashes r.r_restarts;
          Printf.sprintf "%d/%d" r.r_lost r.r_revived;
          Table.fint r.r_rounds;
          (if r.r_explored then "yes" else "NO");
          (if r.r_hit_limit then "YES" else "no");
        ])
    rows;
  Table.print t;
  let overhead_pct, orounds, tp, ti = measure_overhead () in
  Printf.printf
    "fault-hook enabled-idle overhead (vs disabled, comb k=%d, %d rounds): \
     %+.2f%%\n\
     disabled-path budget (<= 1%%): enforced by `--perf-gate` against the \
     committed BENCH_hotpath.json\n"
    overhead_k orounds overhead_pct;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:1
       @ [
           ("label", Engine_report.String "E17 fault injection");
           ("scale", Engine_report.String (scale_name ()));
           ("configs", Engine_report.List (List.map json_of_row rows));
           ( "fault_hook_overhead",
             Engine_report.Obj
               [
                 ("k", Engine_report.Int overhead_k);
                 ("rounds", Engine_report.Int orounds);
                 ("disabled_segment_wall", Engine_report.Float tp);
                 ("idle_hook_segment_wall", Engine_report.Float ti);
                 ("enabled_idle_overhead_pct", Engine_report.Float overhead_pct);
                 ( "disabled_budget",
                   Engine_report.String
                     "<= 1% vs pre-hook baselines; enforced by --perf-gate \
                      against committed BENCH_hotpath.json" );
               ] );
         ]));
  Printf.printf "report written to %s\n" report_path

(* CI tripwire for --smoke: a crash-tolerant run under a permanent crash
   completes deterministically with the loss detected, while plain BFDN
   under the same schedule hits its round cap; a crash-with-restart run
   revives the replacement robot. *)
let smoke () =
  let faults = [ ("crashes", Param.String "1@8") ] in
  let inst = Scenario.generated ~family:"comb" ~n:300 ~depth_hint:15 in
  let ft_spec =
    Scenario.make ~algo:"bfdn"
      ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
      ~k:8 ~seed ~faults inst
  in
  let reg = Metrics.create () in
  let a = Scenario.run ~probe:(Probe.of_metrics reg) ft_spec in
  let b = Scenario.run ft_spec in
  let cval name =
    match Metrics.find_counter reg name with
    | Some c -> Metrics.value c
    | None -> 0
  in
  let plain =
    Scenario.run
      (Scenario.make ~algo:"bfdn" ~k:8 ~seed ~max_rounds:400 ~faults inst)
  in
  let restart =
    Scenario.run
      (Scenario.make ~algo:"bfdn"
         ~algo_params:[ ("fault_tolerant", Param.Bool true) ]
         ~k:8 ~seed
         ~faults:[ ("crashes", Param.String "1@8+30") ]
         inst)
  in
  a.Scenario.result.Runner.explored
  && (not a.Scenario.result.Runner.hit_round_limit)
  && Scenario.equal_outcome a b
  && cval "robots_lost" >= 1
  && plain.Scenario.result.Runner.hit_round_limit
  && restart.Scenario.result.Runner.explored
  && restart.Scenario.result.Runner.at_root
