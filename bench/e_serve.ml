(* E18 — service throughput: the serve subsystem measured end to end
   over real sockets. An in-process server (ephemeral port, engine pool
   at --jobs workers) takes one cold submission per distinct spec (each
   a full engine run populating the result cache), then 4 concurrent
   client threads hammer the same specs for a fixed window — every
   request a cache hit served straight from the LRU. Reported: per-spec
   cold latency, sustained cached req/s with p50/p99 latency, and the
   cold-vs-cached speedup (the acceptance bar is >= 10x: a cache hit
   must cost network + parsing, not an engine run).

   The numbers land in BENCH_serve.json; --perf-gate re-measures the
   cached path against the committed req/s (loose floor, same
   machine-variance caveats as the E16 gate). *)

open Bench_common
module Server = Bfdn_serve.Server
module Client = Bfdn_serve.Client
module Json = Bfdn_obs.Json

let report_path = "BENCH_serve.json"
let client_threads = 4
let nominal_n = 2000

let specs () =
  List.concat_map
    (fun family ->
      List.map
        (fun seed ->
          ( family,
            seed,
            Scenario.to_string
              (Scenario.make ~k:8 ~seed
                 (Scenario.generated ~family ~n:(sized nominal_n)
                    ~depth_hint:12)) ))
        [ 1; 2; 3 ])
    [ "comb"; "binary"; "random"; "trap" ]

let window_s () =
  match !scale with Quick -> 0.5 | Normal -> 2.0 | Full -> 5.0

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let post port body =
  match Client.request ~port ~body ~meth:"POST" ~path:"/run" () with
  | Ok resp when resp.Client.status = 200 -> resp
  | Ok resp ->
      failwith (Printf.sprintf "e_serve: POST /run -> %d" resp.Client.status)
  | Error msg -> failwith ("e_serve: " ^ msg)

let cache_marker resp =
  match Json.of_string resp.Client.body with
  | Ok j -> (
      match Json.member "cache" j with
      | Some (Json.String s) -> s
      | _ -> "?")
  | Error _ -> "?"

let with_server f =
  let srv =
    Server.create
      {
        Server.default_config with
        Server.port = 0;
        workers = !Bench_common.workers;
        cache_cap = 256;
      }
  in
  let th = Thread.create Server.run srv in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Thread.join th)
    (fun () -> f (Server.port srv))

type measurement = {
  cold : (string * int * float) list; (* family, seed, wall seconds *)
  cold_mean_s : float;
  cached_requests : int;
  cached_window_s : float;
  cached_req_s : float;
  cached_p50_s : float;
  cached_p99_s : float;
  speedup : float;
}

let measure () =
  with_server (fun port ->
      let specs = specs () in
      (* cold: every distinct spec runs the engine once *)
      let cold =
        List.map
          (fun (family, seed, wire) ->
            let t0 = Batch.now () in
            let resp = post port wire in
            let dt = Batch.now () -. t0 in
            if cache_marker resp <> "miss" then
              failwith "e_serve: expected a cold miss";
            (family, seed, dt))
          specs
      in
      let cold_mean_s =
        List.fold_left (fun acc (_, _, dt) -> acc +. dt) 0.0 cold
        /. float_of_int (List.length cold)
      in
      (* cached: concurrent clients over the now-populated cache *)
      let wires = Array.of_list (List.map (fun (_, _, w) -> w) specs) in
      let window = window_s () in
      let stop_at = Batch.now () +. window in
      let lats = Array.make client_threads [] in
      let counts = Array.make client_threads 0 in
      let client t =
        let i = ref t in
        while Batch.now () < stop_at do
          let wire = wires.(!i mod Array.length wires) in
          incr i;
          let t0 = Batch.now () in
          let resp = post port wire in
          let dt = Batch.now () -. t0 in
          if cache_marker resp <> "hit" then
            failwith "e_serve: expected a cached hit";
          lats.(t) <- dt :: lats.(t);
          counts.(t) <- counts.(t) + 1
        done
      in
      let t_start = Batch.now () in
      let threads = List.init client_threads (fun t -> Thread.create client t) in
      List.iter Thread.join threads;
      let elapsed = Batch.now () -. t_start in
      let all = Array.of_list (List.concat (Array.to_list lats)) in
      Array.sort compare all;
      let requests = Array.fold_left ( + ) 0 counts in
      let mean_cached =
        Array.fold_left ( +. ) 0.0 all /. float_of_int (max 1 (Array.length all))
      in
      {
        cold;
        cold_mean_s;
        cached_requests = requests;
        cached_window_s = elapsed;
        cached_req_s = float_of_int requests /. Float.max 1e-9 elapsed;
        cached_p50_s = percentile all 0.50;
        cached_p99_s = percentile all 0.99;
        speedup = cold_mean_s /. Float.max 1e-9 mean_cached;
      })

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

let run () =
  header "E18 (serve)"
    "service throughput: cold engine runs vs cached hits over real sockets";
  let m = measure () in
  let t =
    Table.create ~caption:"cold submissions (one engine run each)"
      [ ("family", Table.Left); ("seed", Table.Right); ("wall ms", Table.Right) ]
  in
  List.iter
    (fun (family, seed, dt) ->
      Table.add_row t
        [ family; Table.fint seed; Table.ffloat ~decimals:2 (dt *. 1e3) ])
    m.cold;
  Table.print t;
  Printf.printf
    "cached (%d client threads, %.1fs window): %d requests, %.0f req/s\n"
    client_threads m.cached_window_s m.cached_requests m.cached_req_s;
  Printf.printf "cached latency: p50 %.3f ms, p99 %.3f ms\n"
    (m.cached_p50_s *. 1e3) (m.cached_p99_s *. 1e3);
  Printf.printf "cold-vs-cached speedup: %.1fx (target >= 10x)\n" m.speedup;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:!Bench_common.workers
       @ [
           ("label", Engine_report.String "E18 service throughput");
           ("scale", Engine_report.String (scale_name ()));
           ("client_threads", Engine_report.Int client_threads);
           ( "cold",
             Engine_report.List
               (List.map
                  (fun (family, sd, dt) ->
                    Engine_report.Obj
                      [
                        ("family", Engine_report.String family);
                        ("seed", Engine_report.Int sd);
                        ("wall_seconds", Engine_report.Float dt);
                      ])
                  m.cold) );
           ("cold_mean_seconds", Engine_report.Float m.cold_mean_s);
           ("cached_requests", Engine_report.Int m.cached_requests);
           ("cached_window_seconds", Engine_report.Float m.cached_window_s);
           ("cached_req_per_sec", Engine_report.Float m.cached_req_s);
           ("cached_p50_seconds", Engine_report.Float m.cached_p50_s);
           ("cached_p99_seconds", Engine_report.Float m.cached_p99_s);
           ("speedup_cold_vs_cached", Engine_report.Float m.speedup);
         ]));
  Printf.printf "report written to %s\n" report_path

(* ---- CI perf-regression gate (--perf-gate) ----

   Re-measure the cached path briefly and fail when sustained req/s
   drops below [gate_floor] of the committed BENCH_serve.json value.
   Same philosophy as the E16 gate: a loose floor that catches
   accidental slow paths (a cache hit suddenly running the engine, a
   lock held across a syscall), not machine variance. The driver only
   invokes this when the report file exists, so a tree that has never
   run E18 still gates cleanly on the other files. *)

let gate_floor = 0.5

let committed_req_s () =
  let doc = In_channel.with_open_text report_path In_channel.input_all in
  match Json.of_string doc with
  | Error msg -> failwith (report_path ^ ": " ^ msg)
  | Ok j -> (
      match Json.member "cached_req_per_sec" j with
      | Some (Json.Float r) -> r
      | Some (Json.Int r) -> float_of_int r
      | _ -> failwith (report_path ^ ": no cached_req_per_sec member"))

let perf_gate () =
  header "PERF GATE (serve)"
    (Printf.sprintf "cached req/s must stay >= %.2fx the committed %s"
       gate_floor report_path);
  let base = committed_req_s () in
  scale := Quick;
  let m = measure () in
  let ratio = m.cached_req_s /. Float.max 1e-9 base in
  let ok = ratio >= gate_floor in
  record_gate ~gate:"E18" ~name:"cached req/s" ~measured:m.cached_req_s
    ~baseline:base ~ok;
  Printf.printf "  cached %8.0f req/s vs committed %8.0f (%.2fx) %s\n"
    m.cached_req_s base ratio
    (if ok then "ok" else "FAIL");
  if not ok then
    Printf.printf "perf gate: serve cached path regressed past %.2fx\n"
      gate_floor
  else Printf.printf "perf gate: serve cached path within budget\n"
