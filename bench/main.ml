(* Experiment harness: regenerates every figure and quantitative claim of
   the paper (E1–E10), the design-choice ablations (A1), the batch-engine
   reference sweep (E15) and the Bechamel micro-benchmarks (B1–B6). See
   EXPERIMENTS.md for the index.

   Usage: dune exec bench/main.exe -- [--quick|--full] [--no-micro]
          [--only E1,E3,...] [--jobs=N] [--profile] [--smoke] [--huge-smoke]
          [--perf-gate] *)

let experiments =
  [
    ("E1", E_regions.run);
    ("E2", E_thm1.run);
    ("E3", E_urn.run);
    ("E4", E_lemma2.run);
    ("E5", E_planner.run);
    ("E6", E_breakdown.run);
    (* E7's direct-loop grid table was absorbed into E21 (E_graph.run);
       the alias keeps --only=E7 working. *)
    ("E7", E_graph.run_direct);
    ("E8", E_rec.run);
    ("E9", E_cte.run);
    ("E10", E_alloc.run);
    ("E11", E_adversary.run);
    ("E12", E_overhead.run);
    ("E13+E14", E_extensions.run);
    ("E15", E_engine.run);
    ("E16", E_hotpath.run);
    ("E17", E_faults.run);
    ("E18", E_serve.run);
    ("E19", E_huge.run);
    ("E21", E_graph.run);
    ("E22", E_batch.run);
    ("A1", E_ablation.run);
  ]

(* Perf gates keyed by the committed report they compare against; a gate
   only runs when its file exists, so a fresh checkout (or a new
   experiment whose baseline has never been committed) still gates
   cleanly on the others. *)
let perf_gates =
  [
    (E_hotpath.report_path, E_hotpath.perf_gate);
    (E_serve.report_path, E_serve.perf_gate);
    (E_huge.report_path, E_huge.perf_gate);
    (E_graph.report_path, E_graph.perf_gate);
    (E_batch.report_path, E_batch.perf_gate);
  ]

(* --perf-gate: after every gate has recorded its rows, one summary is
   written for CI — perf-summary.json (uploaded as an artifact on every
   run, pass or fail) and a markdown table appended to
   $GITHUB_STEP_SUMMARY when Actions provides it. *)
let write_perf_summary () =
  Bfdn_engine.Report.write ~path:"perf-summary.json"
    (Bench_common.gate_summary_json ());
  Printf.printf "perf summary written to perf-summary.json\n";
  match Sys.getenv_opt "GITHUB_STEP_SUMMARY" with
  | Some path when path <> "" ->
      let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      output_string oc (Bench_common.gate_summary_markdown ());
      close_out oc
  | _ -> ()

let () =
  (* Hidden re-exec entry: one E19 measurement in a fresh process so
     VmHWM attributes peak RSS to exactly that configuration. Must be
     dispatched before any other argument handling. *)
  (match
     List.find_opt
       (fun a -> String.length a > 13 && String.sub a 0 13 = "--huge-probe=")
       (List.tl (Array.to_list Sys.argv))
   with
  | Some arg ->
      E_huge.probe_main (String.sub arg 13 (String.length arg - 13));
      exit 0
  | None -> ());
  let only = ref None in
  let micro = ref true in
  let smoke = ref false in
  let huge_smoke = ref false in
  let perf_gate = ref false in
  let det_check = ref false in
  let args = List.tl (Array.to_list Sys.argv) in
  List.iter
    (fun arg ->
      match arg with
      | "--quick" -> Bench_common.scale := Bench_common.Quick
      | "--full" -> Bench_common.scale := Bench_common.Full
      | "--no-micro" -> micro := false
      | "--profile" -> Bench_common.profile := true
      | "--smoke" -> smoke := true
      | "--huge-smoke" -> huge_smoke := true
      | "--perf-gate" -> perf_gate := true
      | "--det-check" -> det_check := true
      | _ when String.length arg > 7 && String.sub arg 0 7 = "--only=" ->
          only :=
            Some
              (String.split_on_char ','
                 (String.sub arg 7 (String.length arg - 7)))
      | _ when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
          let n =
            match int_of_string_opt (String.sub arg 7 (String.length arg - 7)) with
            | Some n when n >= 1 -> n
            | _ ->
                Printf.eprintf "--jobs expects a positive integer\n";
                exit 2
          in
          Bench_common.workers := n
      | _ ->
          Printf.eprintf
            "unknown argument %s\n\
             usage: main.exe [--quick|--full] [--no-micro] [--only=E1,E2,...]\n\
            \       [--jobs=N] [--profile] [--smoke] [--huge-smoke] [--perf-gate]\n\
            \       [--det-check]\n"
            arg;
          exit 2)
    args;
  if !det_check then begin
    (* CI determinism lane: sequential vs N-worker pool vs seed batch vs
       sharded select, outcome-for-outcome over a config matrix. *)
    if not (E_batch.det_check ~jobs:!Bench_common.workers ()) then exit 1
  end
  else if !perf_gate then begin
    (* CI regression tripwire: re-measure a committed-baseline subset,
       skipping gates whose baseline file is not committed yet. Gates
       record rows instead of exiting, so the summary always covers
       every gate; the nonzero exit happens here, after the artifact
       is on disk. *)
    List.iter
      (fun (path, gate) ->
        if Sys.file_exists path then gate ()
        else Printf.printf "perf gate: %s not committed yet, skipped\n" path)
      perf_gates;
    write_perf_summary ();
    let fails = Bench_common.gate_failures () in
    if fails > 0 then begin
      Printf.printf "perf gate: %d row(s) failed\n" fails;
      exit 1
    end
  end
  else if !huge_smoke then begin
    (* CI tripwire for the huge scale tier: the E19 gate row must fully
       explore within its RSS ceiling (see E_huge.smoke). *)
    if not (E_huge.smoke ()) then begin
      Printf.eprintf "huge smoke FAILED\n";
      exit 1
    end;
    print_endline "huge smoke ok"
  end
  else if !smoke then begin
    (* CI tripwire: tiny engine batches over every experiment family. *)
    Bench_common.scale := Bench_common.Quick;
    E_smoke.run ()
  end
  else begin
    let wanted id = match !only with None -> true | Some ids -> List.mem id ids in
    print_endline
      "BFDN reproduction harness — Cosson, Massoulié, Viennot (PODC'23 / full version)";
    List.iter (fun (id, run) -> if wanted id then run ()) experiments;
    if !micro && wanted "B" then Micro.run ()
  end
