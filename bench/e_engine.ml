(* E15 — the batch engine itself: the reference sweep runs once on one
   worker and once on the full pool, the two result lists must match
   job-for-job (the sharded-replay determinism contract), and the
   throughput numbers land in BENCH_engine.json for trend tracking. *)

open Bench_common
module Table = Bfdn_util.Table

let report_path = "BENCH_engine.json"

let jobs () =
  let gen = List.concat_map
      (fun family ->
        List.concat_map
          (fun k ->
            List.map
              (fun s ->
                Job.make ~algo:"bfdn" ~k ~seed:(seed + s)
                  (Job.Generated { family; n = sized 600; depth_hint = 20 }))
              [ 0; 1 ])
          [ 4; 64 ])
      Bfdn_trees.Tree_gen.families
  in
  let baselines =
    List.concat_map
      (fun algo ->
        List.map
          (fun k ->
            Job.make ~algo ~k ~seed
              (Job.Generated { family = "random"; n = sized 600; depth_hint = 20 }))
          [ 4; 64 ])
      [ "cte"; "offline"; "bfdn-wr" ]
  in
  gen @ baselines

let same_results a b =
  List.for_all2
    (fun (_, x) (_, y) ->
      match (x, y) with
      | Ok ox, Ok oy -> Job.equal_outcome ox oy
      | Error ex, Error ey -> ex = ey
      | _ -> false)
    a b

let run () =
  header "E15 (batch engine)"
    "deterministic sharded replay: 1 worker vs pool, plus throughput";
  let js = jobs () in
  let t0 = Batch.now () in
  let sequential = Batch.run ~workers:1 js in
  let t1 = Batch.now () in
  let shares = ref [||] in
  let parallel =
    Batch.run ~workers:!workers ~on_pool_stats:(fun s -> shares := s) js
  in
  let t2 = Batch.now () in
  let seq_wall = t1 -. t0 and par_wall = t2 -. t1 in
  let deterministic = same_results sequential parallel in
  let agg = Batch.aggregate parallel in
  let t =
    Table.create
      ~caption:"per-algorithm round distributions over the reference sweep"
      [
        ("algo", Table.Left); ("jobs", Table.Right); ("mean", Table.Right);
        ("p50", Table.Right); ("p95", Table.Right); ("max", Table.Right);
      ]
  in
  List.iter
    (fun (algo, (s : Bfdn_util.Stats.summary)) ->
      Table.add_row t
        [
          algo; Table.fint s.count; Table.ffloat ~decimals:1 s.mean;
          Table.ffloat ~decimals:0 s.p50; Table.ffloat ~decimals:0 s.p95;
          Table.ffloat ~decimals:0 s.max;
        ])
    agg.per_algo;
  Table.print t;
  Printf.printf
    "%d jobs, %d errors | sequential %.3fs (%.1f jobs/s) | %d worker(s) %.3fs\n\
     (%.1f jobs/s) | speedup %.2fx on %d core(s)\n"
    agg.jobs agg.errors seq_wall
    (float_of_int agg.jobs /. Float.max 1e-9 seq_wall)
    !workers par_wall
    (float_of_int agg.jobs /. Float.max 1e-9 par_wall)
    (seq_wall /. Float.max 1e-9 par_wall)
    (Domain.recommended_domain_count ());
  if Array.length !shares > 0 then
    Printf.printf "per-worker job counts: [%s]\n"
      (String.concat "; " (Array.to_list (Array.map string_of_int !shares)));
  Printf.printf "deterministic across worker counts: %s\n"
    (if deterministic then "yes" else "NO — ENGINE BUG");
  Engine_report.write ~path:report_path
    (Engine_report.of_sweep ~label:"E15 reference sweep" ~workers:!workers ~seed
       ~wall:par_wall ~sequential_wall:seq_wall parallel);
  Printf.printf "report written to %s\n" report_path;
  if not deterministic then exit 1
