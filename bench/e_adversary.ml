(* E11 — adaptive adversaries (extension): the hidden tree is decided
   online against the algorithm, in the spirit of the tightness
   constructions the paper builds on ([11] for CTE; lower bounds in [6]).
   The frozen tree is an ordinary instance — a deterministic algorithm
   replays it identically — so Theorem 1 must still hold for BFDN, and
   does. Each (adversary, algo, k) cell is an engine job: the engine
   grows the world adaptively, freezes it, and replays the frozen
   instance, all inside the worker pool. *)

open Bench_common
module Table = Bfdn_util.Table

let adversaries () =
  [
    ( "thick comb (11-style)",
      Job.Adversarial
        { policy = "thick-comb"; capacity = sized 4000; depth_budget = sized 1200 } );
    ( "corridor crowds",
      Job.Adversarial
        { policy = "corridor"; capacity = sized 4000; depth_budget = 80 } );
    ( "budget bomb",
      Job.Adversarial { policy = "bomb"; capacity = sized 4000; depth_budget = 6 } );
    ( "random grower",
      Job.Adversarial
        { policy = "random"; capacity = sized 4000; depth_budget = 60 } );
  ]

let algos = [ "bfdn"; "cte" ]
let ks = [ 16; 256 ]

let run () =
  header "E11 (adaptive adversaries)"
    "trees grown online against the algorithm, then frozen and replayed";
  let t =
    Table.create
      ~caption:
        "lb = max(2n/k, 2D) of the frozen tree; replay = rounds of a re-run\n\
         on the frozen instance (must equal the adaptive run for these\n\
         deterministic algorithms); thm1 applies to BFDN rows only."
      [
        ("adversary", Table.Left); ("algo", Table.Left); ("k", Table.Right);
        ("rounds", Table.Right); ("replay", Table.Right); ("n", Table.Right);
        ("D", Table.Right); ("rounds/lb", Table.Right);
        ("rounds/thm1", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun (aname, instance) ->
      let jobs =
        List.concat_map
          (fun algo ->
            List.map
              (fun k -> Job.make ~algo ~k ~seed:(seed + 11) instance)
              ks)
          algos
      in
      List.iter
        (fun ((job : Job.t), _ as cell) ->
          let o = ok_outcome cell in
          let replay = Option.get o.replay_rounds in
          let lb = offline_lb_of o job.k in
          let thm1 = thm1_bound_of o job.k in
          let within_thm1 = float_of_int o.result.rounds <= thm1 in
          Table.add_row t
            [
              aname; job.algo; Table.fint job.k; Table.fint o.result.rounds;
              Table.fint replay; Table.fint o.n; Table.fint o.depth;
              Table.fratio (float_of_int o.result.rounds /. lb);
              (if job.algo = "bfdn" then
                 Table.fratio (float_of_int o.result.rounds /. thm1)
               else "-");
              Table.fbool
                (o.result.explored && replay = o.result.rounds
                && (job.algo <> "bfdn" || within_thm1));
            ])
        (run_jobs jobs);
      Table.add_rule t)
    (adversaries ());
  Table.print t;
  print_endline
    "Reveal-time adversaries with these policies push both algorithms to\n\
     about 2x the offline bound at laptop scales — the asymptotic\n\
     separations (CTE's kD/log k tightness) require k far beyond what a\n\
     simulation exercises, matching the theory."
