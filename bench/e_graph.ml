(* E21 — graph worlds through the unified executor: every row here runs
   `Scenario.run` on a version-2 spec (grid / random-graph / layered +
   bfdn-graph), the exact path the CLI, the engine and the server
   execute, so the Proposition 9 claim is quantified on the shipping
   dispatch rather than a hand-wired loop (that loop is E7's job).

   Two claims go into BENCH_graph.json:

   1. Proposition 9: rounds <= 2n/k + D^2(min(log Δ, log k)+3) with
      n = #edges and D = the origin's eccentricity, on warehouse grids
      and general connected graphs, across k.

   2. Fault tolerance on graphs: under seeded crash/restart schedules
      (the E17 machinery, threaded through Graph_env) the run still
      covers the graph and parks the fleet at the origin — restarts
      teleport to the origin, where graph-BFDN re-anchors and discards
      stale route state. Permanent-crash legs (restart = -1) are capped:
      survivors still cover, but a robot that dies away from the origin
      never comes home, so without a cap the run spins to the default
      graph round limit; those rows honestly report home=NO and
      hit_round_limit=true.

   The per-row wall clock doubles as the perf-gate baseline: CI
   re-measures the gate subset and fails below [gate_floor] of the
   committed rounds/s. *)

open Bench_common
module World_registry = Bfdn_scenario.World_registry

let report_path = "BENCH_graph.json"

(* (world, params, label) legs; params are version-2 spec bindings. *)
let worlds =
  [
    ( "grid",
      [
        ("height", Param.Int 14); ("obstacles", Param.Int 10);
        ("width", Param.Int 24);
      ],
      "grid 24x14" );
    ( "grid",
      [
        ("height", Param.Int 30); ("obstacles", Param.Int 24);
        ("width", Param.Int 40);
      ],
      "grid 40x30" );
    ("random-graph", [ ("extra_edges", Param.Int 150); ("n", Param.Int 500) ],
      "random-graph 500");
    ("layered", [ ("chords", Param.Int 40); ("layers", Param.Int 14);
        ("width", Param.Int 9) ], "layered 14x9");
  ]

let ks = [ 1; 8; 64 ]

let spec ?(faults = []) ?max_rounds ~world ~params ~k () =
  Scenario.make ~algo:"bfdn-graph" ~k ~seed ?max_rounds ~faults
    (Scenario.world ~params world)

(* The spec carries node statistics in its outcome (n = nodes, depth =
   radius); Proposition 9 counts edges, so re-derive the instance from
   the root seed exactly as Scenario.run does (instance stream = split
   index 0) for the edge count. *)
let n_edges_of ~world ~params =
  let g, _ =
    World_registry.build_graph
      ~rng:(Rng.split (Rng.create seed) 0)
      ~params world
  in
  Bfdn_graphs.Graph.num_edges g

type row = {
  r_label : string;
  r_world : string;
  r_k : int;
  r_edges : int;
  r_radius : int;
  r_rounds : int;
  r_explored : bool;
  r_at_origin : bool;
  r_bound : float;
  r_wall : float;
}

let run_row ~world ~params ~label k =
  let sp = spec ~world ~params ~k () in
  let t0 = Batch.now () in
  let o = Scenario.run sp in
  let wall = Batch.now () -. t0 in
  let n_edges = n_edges_of ~world ~params in
  let bound =
    Bfdn.Bounds.bfdn_graph ~n_edges ~k ~d:o.Scenario.depth
      ~delta:o.Scenario.max_degree
  in
  {
    r_label = label;
    r_world = world;
    r_k = k;
    r_edges = n_edges;
    r_radius = o.Scenario.depth;
    r_rounds = o.Scenario.result.Runner.rounds;
    r_explored = o.Scenario.result.Runner.explored;
    r_at_origin = o.Scenario.result.Runner.at_root;
    r_bound = bound;
    r_wall = wall;
  }

(* ---- fault legs: crash/restart schedules on the larger grid ---- *)

(* (rate, restart, cap): permanent-crash legs carry an explicit round
   cap — coverage freezes within a few thousand rounds (the survivors
   are done), but the fleet can never terminate, so an uncapped run
   would spin to the ~6|E|(D+2) default limit at bench-hostile cost. *)
let fault_legs =
  [ (0.1, -1, Some 2500); (0.3, -1, Some 2500); (0.3, 20, None) ]

let fault_world, fault_params, _ = List.nth worlds 1

type fault_row = {
  f_rate : float;
  f_restart : int;
  f_k : int;
  f_rounds : int;
  f_explored : bool;
  f_at_origin : bool;
  f_crashes : int;
  f_restarts : int;
  f_capped : bool;
}

let run_fault_leg ~k (rate, restart, cap) =
  let faults =
    [
      ("rate", Param.Float rate); ("restart", Param.Int restart);
      ("window", Param.Int 40);
    ]
  in
  let sp =
    spec ~faults ?max_rounds:cap ~world:fault_world ~params:fault_params ~k ()
  in
  let o = Scenario.run sp in
  (* Schedule-side statistics, re-derived exactly as Scenario.run did
     (fault stream = split index 2 of the root seed). *)
  let plan =
    Bfdn_scenario.Fault_spec.plan
      ~rng:(Rng.split (Rng.create seed) 2)
      ~k sp.Scenario.faults
  in
  let crashes, restarts =
    match plan with
    | None -> (0, 0)
    | Some p ->
        Bfdn_faults.Fault_plan.stats p ~rounds:o.Scenario.result.Runner.rounds
  in
  {
    f_rate = rate;
    f_restart = restart;
    f_k = k;
    f_rounds = o.Scenario.result.Runner.rounds;
    f_explored = o.Scenario.result.Runner.explored;
    f_at_origin = o.Scenario.result.Runner.at_root;
    f_crashes = crashes;
    f_restarts = restarts;
    f_capped = o.Scenario.result.Runner.hit_round_limit;
  }

let json_of_row r =
  Engine_report.Obj
    [
      ("label", Engine_report.String r.r_label);
      ("world", Engine_report.String r.r_world);
      ("k", Engine_report.Int r.r_k);
      ("edges", Engine_report.Int r.r_edges);
      ("radius", Engine_report.Int r.r_radius);
      ("rounds", Engine_report.Int r.r_rounds);
      ("explored", Engine_report.Bool r.r_explored);
      ("at_origin", Engine_report.Bool r.r_at_origin);
      ("bound", Engine_report.Float r.r_bound);
      ("wall_seconds", Engine_report.Float r.r_wall);
    ]

let json_of_fault_row f =
  Engine_report.Obj
    [
      ("rate", Engine_report.Float f.f_rate);
      ("restart", Engine_report.Int f.f_restart);
      ("k", Engine_report.Int f.f_k);
      ("rounds", Engine_report.Int f.f_rounds);
      ("explored", Engine_report.Bool f.f_explored);
      ("at_origin", Engine_report.Bool f.f_at_origin);
      ("crashes", Engine_report.Int f.f_crashes);
      ("restarts", Engine_report.Int f.f_restarts);
      ("hit_round_limit", Engine_report.Bool f.f_capped);
    ]

let scale_name () =
  match !scale with Quick -> "quick" | Normal -> "normal" | Full -> "full"

(* Direct-loop cross-check (absorbed from the former E7): the same
   Proposition 9 claim measured on a hand-wired [Bfdn_graph.run] loop
   over [Grid] instances, bypassing the Scenario executor. Keeping both
   tables in one experiment pins the unified dispatch to the raw loop —
   if they ever disagree the executor, not the algorithm, regressed. *)
let run_direct () =
  let module Grid = Bfdn_graphs.Grid in
  let module Genv = Bfdn_graphs.Graph_env in
  let t =
    Table.create
      ~caption:
        "direct Bfdn_graph.run loop (no Scenario dispatch); n = edges, D = \
         radius of the origin; lb = 2n/k"
      [
        ("grid", Table.Left); ("|E|", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("rounds", Table.Right); ("closed", Table.Right);
        ("bound", Table.Right); ("rounds/bound", Table.Right);
        ("rounds/lb", Table.Right); ("ok", Table.Left);
      ]
  in
  let grids =
    [
      ("20x20, 8 obst", 20, 20, 8);
      ("35x35, 20 obst", 35, 35, 20);
      ("60x25, 30 obst", 60, 25, 30);
      ("45x45, open", 45, 45, 0);
    ]
  in
  List.iter
    (fun (name, w, h, obstacles) ->
      let rng = Rng.create (seed + w + h) in
      let spec =
        Grid.random_spec ~rng ~width:w ~height:h ~obstacle_count:obstacles
          ~max_side:5
      in
      let grid = Grid.make spec in
      let g = Grid.graph grid in
      List.iter
        (fun k ->
          let env = Genv.create g ~origin:(Grid.origin grid) ~k in
          let r = Bfdn.Bfdn_graph.run (Bfdn.Bfdn_graph.make env) in
          let bound =
            Bfdn.Bounds.bfdn_graph ~n_edges:(Genv.oracle_n_edges env) ~k
              ~d:(Genv.oracle_radius env) ~delta:(Genv.oracle_max_degree env)
          in
          let lb =
            2.0 *. float_of_int (Genv.oracle_n_edges env) /. float_of_int k
          in
          Table.add_row t
            [
              name;
              Table.fint (Genv.oracle_n_edges env);
              Table.fint (Genv.oracle_radius env);
              Table.fint k;
              Table.fint r.rounds;
              Table.fint r.closed_edges;
              Table.ffloat ~decimals:0 bound;
              Table.fratio (float_of_int r.rounds /. bound);
              Table.fratio (float_of_int r.rounds /. Float.max lb 1.0);
              Table.fbool
                (r.explored && r.at_origin && float_of_int r.rounds <= bound);
            ])
        [ 1; 8; 64 ])
    grids;
  Table.print t

let run () =
  header "E21 (graph worlds)"
    "Proposition 9 + fault schedules through the unified Scenario executor";
  run_direct ();
  let rows =
    List.concat_map
      (fun (world, params, label) ->
        List.map (run_row ~world ~params ~label) ks)
      worlds
  in
  let t =
    Table.create
      ~caption:
        "every row is one Scenario.run of a version-2 spec; \
         bound = 2n/k + D^2(min(log Δ, log k)+3), n = #edges, D = radius"
      [
        ("world", Table.Left); ("|E|", Table.Right); ("D", Table.Right);
        ("k", Table.Right); ("rounds", Table.Right); ("bound", Table.Right);
        ("rounds/bound", Table.Right); ("ok", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.r_label; Table.fint r.r_edges; Table.fint r.r_radius;
          Table.fint r.r_k; Table.fint r.r_rounds;
          Table.ffloat ~decimals:0 r.r_bound;
          Table.fratio (float_of_int r.r_rounds /. r.r_bound);
          Table.fbool
            (r.r_explored && r.r_at_origin
            && float_of_int r.r_rounds <= r.r_bound);
        ])
    rows;
  Table.print t;
  let frows = List.concat_map (fun k -> List.map (run_fault_leg ~k) fault_legs) [ 8; 64 ] in
  let ft =
    Table.create
      ~caption:
        (Printf.sprintf
           "crash/restart schedules on the %s world (window=40): restarts \
            teleport to the origin, graph-BFDN re-anchors and still covers; \
            permanent crashes (restart=-) strand the dead robot, so those \
            capped rows cover but cannot come home"
           fault_world)
      [
        ("rate", Table.Right); ("restart", Table.Right); ("k", Table.Right);
        ("crash/rst", Table.Right); ("rounds", Table.Right);
        ("explored", Table.Left); ("home", Table.Left);
      ]
  in
  List.iter
    (fun f ->
      Table.add_row ft
        [
          Printf.sprintf "%.1f" f.f_rate;
          (if f.f_restart < 0 then "-" else string_of_int f.f_restart);
          Table.fint f.f_k;
          Printf.sprintf "%d/%d" f.f_crashes f.f_restarts;
          Table.fint f.f_rounds;
          (if f.f_explored then "yes" else "NO");
          (if f.f_at_origin then "yes"
           else if f.f_capped then "no (capped)"
           else "NO");
        ])
    frows;
  Table.print ft;
  Engine_report.write ~path:report_path
    (Engine_report.Obj
       (Engine_report.meta ~seed ~workers:1
       @ [
           ("label", Engine_report.String "E21 graph worlds via Scenario.run");
           ("scale", Engine_report.String (scale_name ()));
           ("configs", Engine_report.List (List.map json_of_row rows));
           ("fault_configs", Engine_report.List (List.map json_of_fault_row frows));
         ]));
  Printf.printf "report written to %s\n" report_path

(* ---- perf gate ----

   Re-measure the gate subset and compare rounds/s against the committed
   report. The floor mirrors e_hotpath's: loose enough for machine-to-
   machine variance, tight enough to catch an accidental de-optimization
   of the graph apply path (e.g. the per-robot fault predicate growing
   work, or the settle phase going quadratic). *)

let gate_floor = 0.6

let gate_subset = [ ("grid 40x30", 8); ("random-graph 500", 8) ]

let committed_rps doc label k =
  match Bfdn_obs.Json.member "configs" doc with
  | Some (Engine_report.List rows) ->
      List.find_map
        (fun row ->
          match
            ( Bfdn_obs.Json.member "label" row,
              Bfdn_obs.Json.member "k" row,
              Bfdn_obs.Json.member "rounds" row,
              Bfdn_obs.Json.member "wall_seconds" row )
          with
          | ( Some (Engine_report.String l),
              Some (Engine_report.Int k'),
              Some (Engine_report.Int rounds),
              Some (Engine_report.Float wall) )
            when l = label && k' = k ->
              Some (float_of_int rounds /. Float.max 1e-9 wall)
          | _ -> None)
        rows
  | _ -> failwith (report_path ^ ": no configs member")

let perf_gate () =
  scale := Normal;
  header "PERF GATE (graph)"
    (Printf.sprintf "measured rounds/s must stay >= %.2fx the committed %s"
       gate_floor report_path);
  let doc =
    let raw = In_channel.with_open_text report_path In_channel.input_all in
    match Bfdn_obs.Json.of_string raw with
    | Ok j -> j
    | Error msg -> failwith (report_path ^ ": " ^ msg)
  in
  let fails = ref 0 in
  List.iter
    (fun (label, k) ->
      match committed_rps doc label k with
      | None ->
          Printf.printf "  %-18s k=%-3d no committed baseline, skipped\n" label
            k
      | Some base ->
          let world, params, _ =
            List.find (fun (_, _, l) -> l = label) worlds
          in
          (* Warm once, then take the best of 3: the gate asks "can this
             machine still reach the committed rate", not "what is the
             mean". *)
          ignore (run_row ~world ~params ~label k);
          let best = ref 0.0 in
          for _ = 1 to 3 do
            let r = run_row ~world ~params ~label k in
            best :=
              Float.max !best
                (float_of_int r.r_rounds /. Float.max 1e-9 r.r_wall)
          done;
          let ratio = !best /. Float.max 1e-9 base in
          let ok = ratio >= gate_floor in
          if not ok then incr fails;
          record_gate ~gate:"E21"
            ~name:(Printf.sprintf "%s k=%d r/s" label k)
            ~measured:!best ~baseline:base ~ok;
          Printf.printf "  %-18s k=%-3d %s %11.0f r/s vs committed %11.0f (%.2fx)\n"
            label k
            (if ok then "ok  " else "FAIL")
            !best base ratio)
    gate_subset;
  if !fails > 0 then
    Printf.printf "graph perf gate: %d check(s) failed\n" !fails
  else
    Printf.printf "graph perf gate: all %d configs within budget\n"
      (List.length gate_subset)

(* CI tripwire for --smoke: a tiny grid spec completes deterministically
   through Scenario.run, and the same grid under a crash/restart
   schedule still covers and comes home. *)
let smoke () =
  let params =
    [ ("height", Param.Int 6); ("obstacles", Param.Int 2);
      ("width", Param.Int 9) ]
  in
  let sp = spec ~world:"grid" ~params ~k:5 () in
  let a = Scenario.run sp in
  let b = Scenario.run sp in
  let faulty =
    Scenario.run
      (spec
         ~faults:
           [
             ("rate", Param.Float 0.2); ("restart", Param.Int 10);
             ("window", Param.Int 20);
           ]
         ~world:"grid" ~params ~k:5 ())
  in
  a.Scenario.result.Runner.explored
  && a.Scenario.result.Runner.at_root
  && (not a.Scenario.result.Runner.hit_round_limit)
  && Scenario.equal_outcome a b
  && faulty.Scenario.result.Runner.explored
  && faulty.Scenario.result.Runner.at_root
