(* E2 — Theorem 1: BFDN completes in at most
   2n/k + D^2 (min(log k, log Δ) + 3) rounds, on every instance family.
   The (family, k) sweep runs as one engine batch: each cell is a pure
   Job spec, executed across the worker pool and collected in order. *)

open Bench_common
module Table = Bfdn_util.Table

let ks = [ 1; 8; 64; 512 ]

let jobs () =
  List.concat_map
    (fun fam ->
      List.map
        (fun k ->
          Job.make ~algo:"bfdn" ~k ~seed
            (Job.Generated { family = fam; n = sized 5000; depth_hint = 40 }))
        ks)
    Bfdn_trees.Tree_gen.families

let run () =
  header "E2 (Theorem 1)"
    "BFDN rounds vs the 2n/k + D^2(min(log k, log Δ)+3) guarantee";
  let t =
    Table.create
      ~caption:
        "rounds always <= bound (a violation would falsify Theorem 1);\n\
         lb = offline lower bound max(2n/k, 2D)."
      [
        ("family", Table.Left); ("n", Table.Right); ("D", Table.Right);
        ("Δ", Table.Right); ("k", Table.Right); ("rounds", Table.Right);
        ("bound", Table.Right); ("rounds/bound", Table.Right);
        ("rounds/lb", Table.Right); ("ok", Table.Left);
      ]
  in
  let worst = ref 0.0 in
  List.iter
    (fun ((job : Job.t), _ as cell) ->
      let o = ok_outcome cell in
      let bound = thm1_bound_of o job.k in
      let ratio = float_of_int o.result.rounds /. bound in
      worst := Float.max !worst ratio;
      Table.add_row t
        [
          family_of_job job;
          Table.fint o.n;
          Table.fint o.depth;
          Table.fint o.max_degree;
          Table.fint job.k;
          Table.fint o.result.rounds;
          Table.ffloat ~decimals:0 bound;
          Table.fratio ratio;
          Table.fratio (float_of_int o.result.rounds /. offline_lb_of o job.k);
          Table.fbool (o.result.explored && o.result.at_root && ratio <= 1.0);
        ])
    (run_jobs (jobs ()));
  Table.print t;
  Printf.printf "worst rounds/bound ratio: %.3f (paper predicts <= 1)\n" !worst
