(** Where observations go: a bounded ring recorder, JSONL streaming and
    an ASCII dashboard. *)

(** Bounded ring buffer: pushing past capacity overwrites the oldest
    element. Backs {!Bfdn_sim.Trace} so long runs record in O(capacity)
    memory instead of an unbounded list. *)
module Ring : sig
  type 'a t

  val create : int -> 'a t
  (** @raise Invalid_argument when capacity < 1. *)

  val capacity : 'a t -> int

  val push : 'a t -> 'a -> unit

  val length : 'a t -> int
  (** Elements currently retained ([min pushed capacity]). *)

  val pushed : 'a t -> int
  (** Total elements ever pushed. *)

  val dropped : 'a t -> int
  (** [pushed - length]: elements overwritten so far. *)

  val iter : ('a -> unit) -> 'a t -> unit
  (** Oldest retained element first. *)

  val to_list : 'a t -> 'a list
  (** Oldest retained element first. *)

  val clear : 'a t -> unit
end

val write_jsonl : out_channel -> Json.t -> unit
(** One compact JSON value plus a newline — the JSONL framing used by
    [explore run --trace]. The caller owns flushing/closing. *)

val dashboard : ?title:string -> Metrics.t -> string
(** {!Metrics.render} framed with a title rule, for end-of-run terminal
    summaries. *)
