(** Where observations go: a bounded ring recorder, JSONL streaming and
    an ASCII dashboard. *)

(** Bounded ring buffer: pushing past capacity overwrites the oldest
    element. Backs {!Bfdn_sim.Trace} so long runs record in O(capacity)
    memory instead of an unbounded list. *)
module Ring : sig
  type 'a t

  val create : int -> 'a t
  (** @raise Invalid_argument when capacity < 1. *)

  val capacity : 'a t -> int

  val push : 'a t -> 'a -> unit

  val length : 'a t -> int
  (** Elements currently retained ([min pushed capacity]). *)

  val pushed : 'a t -> int
  (** Total elements ever pushed. *)

  val dropped : 'a t -> int
  (** [pushed - length]: elements overwritten so far. *)

  val iter : ('a -> unit) -> 'a t -> unit
  (** Oldest retained element first. *)

  val to_list : 'a t -> 'a list
  (** Oldest retained element first. *)

  val clear : 'a t -> unit
end

(** Bounded producer/consumer handoff of JSON frames between the domain
    executing a run and a consumer streaming them out (the serve layer's
    [GET /jobs/:id/stream]). Pushing past capacity drops the {e oldest}
    frame — the producer (a round loop) is never blocked by a slow
    consumer, matching the {!Ring} philosophy. All operations are
    mutex-guarded and safe across domains and threads. *)
module Stream : sig
  type t

  val create : ?capacity:int -> unit -> t
  (** Default capacity 1024 frames.
      @raise Invalid_argument when capacity < 1. *)

  val capacity : t -> int

  val push : t -> Json.t -> unit
  (** Never blocks: drops the oldest queued frame when full; a no-op
      after {!close}. *)

  val close : t -> unit
  (** Wakes every blocked {!next}; further pushes are dropped.
      Idempotent. *)

  val closed : t -> bool

  val pushed : t -> int
  (** Total frames ever accepted (dropped ones included). *)

  val dropped : t -> int
  (** Frames discarded because the consumer lagged past capacity. *)

  val next : t -> Json.t option
  (** Block until a frame is available or the stream is closed; [None]
      means closed-and-drained (the consumer's end-of-stream). *)
end

val write_jsonl : out_channel -> Json.t -> unit
(** One compact JSON value plus a newline — the JSONL framing used by
    [explore run --trace]. The caller owns flushing/closing. *)

val dashboard : ?title:string -> Metrics.t -> string
(** {!Metrics.render} framed with a title rule, for end-of-run terminal
    summaries. *)
