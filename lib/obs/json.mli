(** Minimal JSON emitter and parser shared by the report and trace
    sinks and by the {!Bfdn_scenario} spec files. Non-finite floats are
    emitted as [null] to keep the output standard JSON; finite floats
    use a shortest-round-trip rendering, so every value written to a
    BENCH_*.json or trace line parses back to exactly the same double. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering. *)

val emit : Buffer.t -> t -> unit

val float_to_string : float -> string
(** Shortest decimal form [s] with [float_of_string s = f]: tries 15 and
    16 significant digits before falling back to the always-exact 17.
    Only called on finite floats. *)

val escape : string -> string
(** JSON string-body escaping (quotes not included). *)

type error = { msg : string; line : int; col : int; offset : int }
(** A parse failure with its position: [line]/[col] are 1-based ([col]
    counts bytes since the last newline), [offset] is the 0-based byte
    offset into the input. *)

val error_to_string : error -> string
(** ["<msg> at line L, column C (byte N)"]. *)

val of_string_pos : string -> (t, error) result
(** Parse a complete JSON document (standard JSON; trailing garbage is
    an error). Numbers without a fraction or exponent part decode as
    [Int], everything else as [Float] — the inverse of {!to_string}, so
    values emitted by this module round-trip constructor-for-constructor
    (except non-finite floats, which were emitted as [null]). Failures
    carry the position where parsing stopped, so callers (the serve
    layer's HTTP 400 bodies, spec-file diagnostics) can point at the
    offending byte. *)

val of_string : string -> (t, string) result
(** {!of_string_pos} with the error rendered by {!error_to_string}. *)

val member : string -> t -> t option
(** [member key j] is the value bound to [key] when [j] is an [Obj]
    containing it, [None] otherwise. *)
