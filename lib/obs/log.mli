(** Structured, leveled JSONL logging.

    One log line is one compact JSON object:
    [{ts, level, msg, trace?, <attr>...}] — [ts] a Unix epoch float,
    [trace] the correlation id when the event belongs to a traced
    request (see {!Span}), and any typed attributes flattened into the
    object. The serve layer replaces its ad-hoc stderr prints with
    this, so a server's stderr is itself a JSONL stream that
    [explore tail] can render.

    Emission is mutex-guarded (connection threads and worker domains
    share one logger); a level test costs one branch, so disabled
    levels are free on request paths. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_name : string -> level option
(** Case-insensitive inverse of {!level_name}. *)

type t

val ignore_log : t
(** Drops everything (the default server config). *)

val create : ?level:level -> (Json.t -> unit) -> t
(** A logger emitting each line's JSON to the sink (JSONL framing is
    the sink's, e.g. {!Sink.write_jsonl} + flush). [level] (default
    [Info]) is the minimum severity emitted. *)

val level : t -> level
val set_level : t -> level -> unit

val enabled : t -> level -> bool
(** Whether a message at this level would be emitted. *)

val log : t -> level -> ?trace:string -> ?attrs:Span.attr list -> string -> unit

val debug : t -> ?trace:string -> ?attrs:Span.attr list -> string -> unit
val info : t -> ?trace:string -> ?attrs:Span.attr list -> string -> unit
val warn : t -> ?trace:string -> ?attrs:Span.attr list -> string -> unit
val error : t -> ?trace:string -> ?attrs:Span.attr list -> string -> unit
