(** Registry of named counters, gauges and histograms.

    Handles are looked up (or created) once, by name, at instrumentation
    setup; the record paths ({!incr}, {!add}, {!set}, {!observe}) are
    O(1) and allocation-free, so probes can fire every round of the hot
    loop. A registry is single-domain: under the parallel engine each
    worker records into its own registry and the results are folded with
    {!merge_into} after the pool drains. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

(** {2 Counters} *)

val counter : t -> string -> counter
(** Find or register. @raise Invalid_argument if [name] holds a
    different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

(** {2 Gauges} *)

val gauge : t -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {2 Histograms} *)

val histogram : ?bounds:float array -> t -> string -> histogram
(** Find or register with the given inclusive upper-bucket bounds
    (strictly increasing; an overflow bucket is added past the last).
    Defaults to {!latency_bounds}.
    @raise Invalid_argument on a kind or bounds mismatch with an
    existing registration. *)

val observe : histogram -> float -> unit
(** Record one value: the first bucket [i] with [v <= bounds.(i)], or
    the overflow bucket. *)

val observe_int : histogram -> int -> unit
(** [observe h (float_of_int v)] without boxing a float at the call
    site — use for count-valued observations on hot paths. *)

val observe_int_n : histogram -> int -> int -> unit
(** [observe_int_n h v n] records [n] occurrences of [v] at once (no-op
    for [n <= 0]) — for folding pre-aggregated counts into a histogram. *)

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_min : histogram -> float
val hist_max : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h p] estimates the [p]-th quantile ([p] clamped to
    [0, 1]) from the bucket counts: linear interpolation inside the
    bucket holding the [p]-th ranked observation, tightened by the
    observed min/max. [0.0] on an empty histogram; exact when the
    containing bucket holds a single distinct value, otherwise within
    one bucket width. *)

val num_buckets : histogram -> int
(** Number of buckets including the overflow bucket. *)

val bucket_count : histogram -> int -> int
val bucket_le : histogram -> int -> float
(** Upper bound of bucket [i]; [infinity] for the overflow bucket. *)

val latency_bounds : float array
(** Exponential ladder for wall-time seconds: 1µs doubling up to ~2s. *)

val count_bounds : float array
(** Ladder for small nonnegative counts: 0, 1, 2, 4, ... 1024. *)

(** {2 Aggregation and export} *)

val merge_into : into:t -> t -> unit
(** Accumulate a registry into another by name: counters and histogram
    buckets add, gauges take the source value. Missing metrics are
    registered, so per-worker registries fold into a fresh aggregate.
    @raise Invalid_argument on kind or histogram-bounds mismatch. *)

val find_counter : t -> string -> counter option
val find_gauge : t -> string -> gauge option
val find_histogram : t -> string -> histogram option

val names : t -> string list
(** Registration order. *)

val to_json : t -> Json.t
(** Object keyed by metric name; histograms expand to
    [{count, sum, min, max, p50, p90, p99, buckets: [{le, count}]}]
    with the quantiles estimated by {!quantile}. *)

val render : t -> string
(** ASCII dashboard: bar chart of counters/gauges, then one summary line
    plus bucket bars per non-empty histogram. *)
