module Ring = struct
  type 'a t = {
    buf : 'a option array;
    mutable head : int; (* next write slot *)
    mutable pushed : int; (* total ever pushed *)
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    { buf = Array.make capacity None; head = 0; pushed = 0 }

  let capacity t = Array.length t.buf

  let push t x =
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.pushed <- t.pushed + 1

  let length t = min t.pushed (Array.length t.buf)

  let pushed t = t.pushed

  let dropped t = t.pushed - length t

  (* Oldest retained element first. *)
  let iter f t =
    let cap = Array.length t.buf in
    let n = length t in
    let start = (t.head - n + cap) mod cap in
    for i = 0 to n - 1 do
      match t.buf.((start + i) mod cap) with
      | Some x -> f x
      | None -> assert false
    done

  let to_list t =
    let acc = ref [] in
    iter (fun x -> acc := x :: !acc) t;
    List.rev !acc

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.pushed <- 0
end

let write_jsonl oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n'

let dashboard ?(title = "metrics") m =
  let body = Metrics.render m in
  let rule = String.make (max 8 (String.length title + 8)) '-' in
  Printf.sprintf "%s\n-- %s --\n%s%s\n" rule title body rule
