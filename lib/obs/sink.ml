module Ring = struct
  type 'a t = {
    buf : 'a option array;
    mutable head : int; (* next write slot *)
    mutable pushed : int; (* total ever pushed *)
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    { buf = Array.make capacity None; head = 0; pushed = 0 }

  let capacity t = Array.length t.buf

  let push t x =
    t.buf.(t.head) <- Some x;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.pushed <- t.pushed + 1

  let length t = min t.pushed (Array.length t.buf)

  let pushed t = t.pushed

  let dropped t = t.pushed - length t

  (* Oldest retained element first. *)
  let iter f t =
    let cap = Array.length t.buf in
    let n = length t in
    let start = (t.head - n + cap) mod cap in
    for i = 0 to n - 1 do
      match t.buf.((start + i) mod cap) with
      | Some x -> f x
      | None -> assert false
    done

  let to_list t =
    let acc = ref [] in
    iter (fun x -> acc := x :: !acc) t;
    List.rev !acc

  let clear t =
    Array.fill t.buf 0 (Array.length t.buf) None;
    t.head <- 0;
    t.pushed <- 0
end

module Stream = struct
  type t = {
    capacity : int;
    q : Json.t Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable pushed : int;
    mutable dropped : int;
    mutable closed : bool;
  }

  let create ?(capacity = 1024) () =
    if capacity < 1 then invalid_arg "Sink.Stream.create: capacity must be >= 1";
    {
      capacity;
      q = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      pushed = 0;
      dropped = 0;
      closed = false;
    }

  let capacity t = t.capacity

  let push t j =
    Mutex.lock t.m;
    if not t.closed then begin
      if Queue.length t.q >= t.capacity then begin
        ignore (Queue.pop t.q);
        t.dropped <- t.dropped + 1
      end;
      Queue.push j t.q;
      t.pushed <- t.pushed + 1;
      Condition.signal t.nonempty
    end;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m

  let closed t =
    Mutex.lock t.m;
    let c = t.closed in
    Mutex.unlock t.m;
    c

  let pushed t =
    Mutex.lock t.m;
    let n = t.pushed in
    Mutex.unlock t.m;
    n

  let dropped t =
    Mutex.lock t.m;
    let n = t.dropped in
    Mutex.unlock t.m;
    n

  let next t =
    Mutex.lock t.m;
    while Queue.is_empty t.q && not t.closed do
      Condition.wait t.nonempty t.m
    done;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.m;
    r
end

let write_jsonl oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n'

let dashboard ?(title = "metrics") m =
  let body = Metrics.render m in
  let rule = String.make (max 8 (String.length title + 8)) '-' in
  Printf.sprintf "%s\n-- %s --\n%s%s\n" rule title body rule
