module Clock = Bfdn_util.Clock

type id = int

let none : id = -1

type value = Int of int | Float of float | Bool of bool | Str of string
type attr = string * value

type span = {
  sid : int;
  parent : int;
  name : string;
  start_ns : int; (* relative to the recorder's t0 *)
  mutable dur_ns : int;
  mutable accumulated : bool; (* duration built by add_ns, not elapsed *)
  mutable attrs : attr list;
  mutable closed : bool;
}

type t = {
  enabled : bool;
  trace_id : string;
  t0_ns : int;
  capacity : int;
  mutable spans : span array; (* slots [0, len) are live *)
  mutable len : int;
  mutable dropped : int;
  sink : (Json.t -> unit) option;
  m : Mutex.t;
}

let disabled =
  {
    enabled = false;
    trace_id = "";
    t0_ns = 0;
    capacity = 0;
    spans = [||];
    len = 0;
    dropped = 0;
    sink = None;
    m = Mutex.create ();
  }

let create ?(capacity = 256) ?sink ~trace_id () =
  if capacity < 1 then invalid_arg "Span.create: capacity must be >= 1";
  {
    enabled = true;
    trace_id;
    t0_ns = Clock.now_ns ();
    capacity;
    spans = [||];
    len = 0;
    dropped = 0;
    sink;
    m = Mutex.create ();
  }

let enabled t = t.enabled
let trace_id t = t.trace_id

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let start ?(parent = none) t name =
  if not t.enabled then none
  else
    locked t (fun () ->
        if t.len >= t.capacity then begin
          t.dropped <- t.dropped + 1;
          none
        end
        else begin
          if t.len >= Array.length t.spans then begin
            let cap = max 8 (min t.capacity (2 * Array.length t.spans)) in
            let grown =
              Array.make cap
                {
                  sid = none;
                  parent = none;
                  name = "";
                  start_ns = 0;
                  dur_ns = 0;
                  accumulated = false;
                  attrs = [];
                  closed = false;
                }
            in
            Array.blit t.spans 0 grown 0 t.len;
            t.spans <- grown
          end;
          let sid = t.len in
          t.spans.(sid) <-
            {
              sid;
              parent;
              name;
              start_ns = Clock.now_ns () - t.t0_ns;
              dur_ns = 0;
              accumulated = false;
              attrs = [];
              closed = false;
            };
          t.len <- sid + 1;
          sid
        end)

let valid t id = id >= 0 && id < t.len

let add_ns t id ns =
  if t.enabled && id >= 0 then
    locked t (fun () ->
        if valid t id then begin
          let s = t.spans.(id) in
          if not s.closed then begin
            s.dur_ns <- s.dur_ns + ns;
            s.accumulated <- true
          end
        end)

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Bool b -> Json.Bool b
  | Str s -> Json.String s

let json_of_attrs attrs =
  Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) attrs)

(* Flat JSONL form of one completed span (the sink framing); the
   hierarchy is recoverable from [parent]. *)
let flat_json t (s : span) =
  Json.Obj
    ([
       ("trace", Json.String t.trace_id);
       ("span", Json.Int s.sid);
       ("parent", if s.parent < 0 then Json.Null else Json.Int s.parent);
       ("name", Json.String s.name);
       ("start_ns", Json.Int s.start_ns);
       ("dur_ns", Json.Int s.dur_ns);
     ]
    @ if s.attrs = [] then [] else [ ("attrs", json_of_attrs s.attrs) ])

let finish ?(attrs = []) t id =
  if t.enabled && id >= 0 then begin
    let emit =
      locked t (fun () ->
          if valid t id then begin
            let s = t.spans.(id) in
            if s.closed then None
            else begin
              if not s.accumulated then
                s.dur_ns <- Clock.now_ns () - t.t0_ns - s.start_ns;
              s.attrs <- attrs;
              s.closed <- true;
              match t.sink with None -> None | Some _ -> Some (flat_json t s)
            end
          end
          else None)
    in
    (* Emit outside the recorder lock: the sink may take its own. *)
    match (emit, t.sink) with
    | Some j, Some sink -> sink j
    | _ -> ()
  end

let length t = locked t (fun () -> t.len)
let dropped t = locked t (fun () -> t.dropped)

let tree_json t =
  if not t.enabled then
    Json.Obj
      [
        ("trace", Json.String "");
        ("dropped", Json.Int 0);
        ("spans", Json.List []);
      ]
  else
    locked t (fun () ->
        let now_rel = Clock.now_ns () - t.t0_ns in
        (* children.(i) = child sids of span i, ascending; roots likewise. *)
        let children = Array.make t.len [] in
        let roots = ref [] in
        for i = t.len - 1 downto 0 do
          let s = t.spans.(i) in
          if s.parent >= 0 && s.parent < t.len then
            children.(s.parent) <- i :: children.(s.parent)
          else roots := i :: !roots
        done;
        let rec render i =
          let s = t.spans.(i) in
          let dur = if s.closed then s.dur_ns else now_rel - s.start_ns in
          Json.Obj
            ([
               ("id", Json.Int s.sid);
               ("name", Json.String s.name);
               ("start_ns", Json.Int s.start_ns);
               ("dur_ns", Json.Int dur);
             ]
            @ (if s.closed then [] else [ ("open", Json.Bool true) ])
            @ (if s.attrs = [] then []
               else [ ("attrs", json_of_attrs s.attrs) ])
            @
            match children.(i) with
            | [] -> []
            | c -> [ ("children", Json.List (List.map render c)) ])
        in
        Json.Obj
          [
            ("trace", Json.String t.trace_id);
            ("dropped", Json.Int t.dropped);
            ("spans", Json.List (List.map render !roots));
          ])

let phase_probe t ~parent (probe : Probe.t) =
  if not t.enabled then (probe, ignore)
  else begin
    let sel = start ~parent t "phase:select" in
    let app = start ~parent t "phase:apply" in
    let fin = start ~parent t "phase:finished_check" in
    let base = probe.Probe.on_phase in
    let on_phase ph ns =
      base ph ns;
      match ph with
      | Probe.Select -> add_ns t sel ns
      | Probe.Apply -> add_ns t app ns
      | Probe.Finished_check -> add_ns t fin ns
    in
    ( { probe with Probe.enabled = true; on_phase },
      fun () ->
        finish t sel;
        finish t app;
        finish t fin )
  end
