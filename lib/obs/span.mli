(** Hierarchical span tracing with correlation IDs.

    A recorder holds the spans of one traced unit of work (one HTTP
    request / job in the serve layer), identified by a correlation
    [trace_id] minted at the edge. Spans form a tree via parent ids;
    each carries a name, a start offset and duration in monotonic
    nanoseconds ({!Bfdn_util.Clock}), and a small list of typed
    attributes. Completed spans are streamed as JSONL to an optional
    sink; the recorder itself is a bounded buffer (excess spans are
    counted in {!dropped}, never silently lost from the accounting).

    The PR 3 discipline applies: {!disabled} is a recorder whose every
    operation is a no-op behind a single [enabled] branch, so
    instrumentation points cost nothing when tracing is off — the E16
    hot path stays within its 1% budget (enforced by the E20 rows of
    the perf gate).

    All operations are mutex-guarded: a recorder is shared between the
    connection thread that minted it and the worker domain executing
    the job. Operations are boundary-frequency (per request, per
    phase-close), never per-robot. *)

type id = int
(** Span identifier, unique within one recorder. {!none} (= [-1]) is
    returned by {!start} on a disabled or full recorder; every
    operation on it is a no-op, so call sites never branch. *)

val none : id

type value = Int of int | Float of float | Bool of bool | Str of string
type attr = string * value

type t

val disabled : t
(** The no-op recorder: {!start} returns {!none}, nothing is stored or
    emitted. *)

val create :
  ?capacity:int -> ?sink:(Json.t -> unit) -> trace_id:string -> unit -> t
(** An enabled recorder. [capacity] (default 256) bounds stored spans;
    [sink] receives one flat JSON object per {!finish}ed span (JSONL
    framing is the caller's, e.g. {!Sink.write_jsonl}).
    @raise Invalid_argument when [capacity < 1]. *)

val enabled : t -> bool
val trace_id : t -> string
(** [""] for {!disabled}. *)

val start : ?parent:id -> t -> string -> id
(** Open a span at the current monotonic clock. [parent] defaults to
    {!none} (a root span). Returns {!none} when the recorder is
    disabled or full (then counted in {!dropped}). *)

val add_ns : t -> id -> int -> unit
(** Accumulate [ns] nanoseconds into an open span's duration. A span
    with at least one [add_ns] keeps the accumulated total at
    {!finish} instead of wall-clock elapsed — this is how the three
    per-round runner phases fold O(rounds) measurements into three
    spans. *)

val finish : ?attrs:attr list -> t -> id -> unit
(** Close a span: fix its duration (elapsed since {!start}, or the
    {!add_ns} total), attach [attrs], emit it to the sink. Idempotent;
    no-op on {!none}. *)

val length : t -> int
(** Spans started (and retained) so far. *)

val dropped : t -> int
(** Spans refused because the recorder was full. *)

val tree_json : t -> Json.t
(** The span tree:
    [{trace, dropped, spans: [{id, name, start_ns, dur_ns, attrs,
    children} ...]}] with [spans] the root spans, [start_ns] relative
    to the recorder's creation. Spans still open are included with
    their duration so far and ["open": true]. *)

val phase_probe : t -> parent:id -> Probe.t -> Probe.t * (unit -> unit)
(** Wrap a probe so its {!Probe.t.on_phase} hook also accumulates each
    per-round phase duration into three spans ([phase:select],
    [phase:apply], [phase:finished_check]) under [parent]. Returns the
    wrapped probe and a closer that {!finish}es the three spans; their
    durations then sum to the instrumented loop's wall time. On a
    {!disabled} recorder the probe is returned untouched and the
    closer is a no-op. *)

val json_of_attrs : attr list -> Json.t
