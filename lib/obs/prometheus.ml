let content_type = "text/plain; version=0.0.4"

let name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let name_char c = name_start c || (c >= '0' && c <= '9')

let label_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let label_char c = label_start c || (c >= '0' && c <= '9')

let metric_name_ok name =
  String.length name > 0
  && name_start name.[0]
  && String.for_all name_char name

(* ---- rendering ---- *)

let float_str v =
  if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_nan v then "NaN"
  else Json.float_to_string v

let quantiles = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99) ]

let render ?(namespace = "bfdn") reg =
  let buf = Buffer.create 1024 in
  let typ name kind = Printf.bprintf buf "# TYPE %s %s\n" name kind in
  let gauge_sample name v =
    typ name "gauge";
    Printf.bprintf buf "%s %s\n" name (float_str v)
  in
  List.iter
    (fun name ->
      let fn = namespace ^ "_" ^ name in
      match Metrics.find_counter reg name with
      | Some c ->
          typ fn "counter";
          Printf.bprintf buf "%s %d\n" fn (Metrics.value c)
      | None -> (
          match Metrics.find_gauge reg name with
          | Some g -> gauge_sample fn (Metrics.gauge_value g)
          | None -> (
              match Metrics.find_histogram reg name with
              | Some h ->
                  typ fn "histogram";
                  let cum = ref 0 in
                  for i = 0 to Metrics.num_buckets h - 1 do
                    cum := !cum + Metrics.bucket_count h i;
                    Printf.bprintf buf "%s_bucket{le=\"%s\"} %d\n" fn
                      (float_str (Metrics.bucket_le h i))
                      !cum
                  done;
                  Printf.bprintf buf "%s_sum %s\n" fn
                    (float_str (Metrics.hist_sum h));
                  Printf.bprintf buf "%s_count %d\n" fn (Metrics.hist_count h);
                  (* Quantile estimates as sibling gauges: exposition
                     histograms carry no quantiles of their own, and a
                     recording rule is overkill for a self-contained
                     service. *)
                  List.iter
                    (fun (suffix, q) ->
                      gauge_sample
                        (Printf.sprintf "%s_%s" fn suffix)
                        (Metrics.quantile h q))
                    quantiles
              | None -> ())))
    (Metrics.names reg);
  Buffer.contents buf

(* ---- validation ---- *)

exception Bad of string

let sample_types = [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]

(* One parsed sample line: name, labels in order, value. *)
let parse_sample line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let take_while p =
    let start = !pos in
    while !pos < n && p line.[!pos] do
      incr pos
    done;
    String.sub line start (!pos - start)
  in
  let name = take_while name_char in
  if name = "" || not (name_start name.[0]) then
    raise (Bad "sample does not start with a valid metric name");
  let labels = ref [] in
  (if peek () = Some '{' then begin
     incr pos;
     let expect c what =
       if peek () <> Some c then raise (Bad ("expected " ^ what));
       incr pos
     in
     let rec pairs () =
       if peek () = Some '}' then incr pos
       else begin
         let lname = take_while label_char in
         if lname = "" || not (label_start lname.[0]) then
           raise (Bad "invalid label name");
         expect '=' "'=' after label name";
         expect '"' "opening '\"' of label value";
         let b = Buffer.create 16 in
         let rec str () =
           match peek () with
           | None -> raise (Bad "unterminated label value")
           | Some '"' -> incr pos
           | Some '\\' ->
               incr pos;
               (match peek () with
               | Some '\\' -> Buffer.add_char b '\\'
               | Some '"' -> Buffer.add_char b '"'
               | Some 'n' -> Buffer.add_char b '\n'
               | _ -> raise (Bad "invalid escape in label value"));
               incr pos;
               str ()
           | Some c ->
               Buffer.add_char b c;
               incr pos;
               str ()
         in
         str ();
         labels := (lname, Buffer.contents b) :: !labels;
         match peek () with
         | Some ',' ->
             incr pos;
             pairs ()
         | Some '}' -> incr pos
         | _ -> raise (Bad "expected ',' or '}' in label set")
       end
     in
     pairs ()
   end);
  let _ = take_while (fun c -> c = ' ' || c = '\t') in
  let value_tok = take_while (fun c -> c <> ' ' && c <> '\t') in
  if value_tok = "" then raise (Bad "sample has no value");
  let value =
    match String.lowercase_ascii value_tok with
    | "+inf" | "inf" -> infinity
    | "-inf" -> neg_infinity
    | "nan" -> nan
    | _ -> (
        match float_of_string_opt value_tok with
        | Some v -> v
        | None -> raise (Bad (Printf.sprintf "invalid sample value %S" value_tok)))
  in
  let _ = take_while (fun c -> c = ' ' || c = '\t') in
  let ts = take_while (fun c -> c <> ' ' && c <> '\t') in
  if ts <> "" && int_of_string_opt ts = None then
    raise (Bad (Printf.sprintf "invalid timestamp %S" ts));
  let _ = take_while (fun c -> c = ' ' || c = '\t') in
  if !pos <> n then raise (Bad "trailing garbage after sample");
  (name, List.rev !labels, value)

let strip_suffix name suffix =
  let nl = String.length name and sl = String.length suffix in
  if nl > sl && String.sub name (nl - sl) sl = suffix then
    Some (String.sub name 0 (nl - sl))
  else None

let validate body =
  let types : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let closed : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let sampled : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  (* Histogram evidence, collected in order of appearance. *)
  let buckets : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let current = ref None in
  (* The family a sample belongs to: histogram/summary series fold into
     their base name once its TYPE is declared. *)
  let family_of name =
    let base =
      List.find_map
        (fun suffix -> strip_suffix name suffix)
        [ "_bucket"; "_sum"; "_count" ]
    in
    match base with
    | Some b
      when (match Hashtbl.find_opt types b with
           | Some ("histogram" | "summary") -> true
           | _ -> false) ->
        b
    | _ -> name
  in
  let enter_family fam =
    (match !current with
    | Some f when f <> fam -> Hashtbl.replace closed f ()
    | _ -> ());
    if Hashtbl.mem closed fam then
      raise (Bad (Printf.sprintf "samples of %S are interleaved with another family" fam));
    current := Some fam
  in
  let handle_comment line =
    (* "# TYPE name type" | "# HELP name text" | any other comment *)
    match String.split_on_char ' ' line with
    | "#" :: "TYPE" :: rest -> (
        match rest with
        | [ name; kind ] ->
            if not (metric_name_ok name) then
              raise (Bad (Printf.sprintf "invalid metric name %S in TYPE" name));
            if not (List.mem kind sample_types) then
              raise (Bad (Printf.sprintf "unknown metric type %S" kind));
            if Hashtbl.mem types name then
              raise (Bad (Printf.sprintf "duplicate TYPE for %S" name));
            if Hashtbl.mem sampled name then
              raise (Bad (Printf.sprintf "TYPE for %S after its samples" name));
            Hashtbl.replace types name kind
        | _ -> raise (Bad "malformed TYPE line"))
    | "#" :: "HELP" :: name :: _ ->
        if not (metric_name_ok name) then
          raise (Bad (Printf.sprintf "invalid metric name %S in HELP" name))
    | _ -> ()
  in
  let handle_sample line =
    let name, labels, value = parse_sample line in
    let fam = family_of name in
    enter_family fam;
    Hashtbl.replace sampled name ();
    Hashtbl.replace sampled fam ();
    if Hashtbl.find_opt types fam = Some "histogram" then begin
      match strip_suffix name "_bucket" with
      | Some _ -> (
          match List.assoc_opt "le" labels with
          | None -> raise (Bad (Printf.sprintf "%S lacks an le label" name))
          | Some le_raw ->
              let le =
                match String.lowercase_ascii le_raw with
                | "+inf" | "inf" -> infinity
                | _ -> (
                    match float_of_string_opt le_raw with
                    | Some v -> v
                    | None ->
                        raise
                          (Bad (Printf.sprintf "invalid le value %S" le_raw)))
              in
              let l =
                match Hashtbl.find_opt buckets fam with
                | Some l -> l
                | None ->
                    let l = ref [] in
                    Hashtbl.replace buckets fam l;
                    l
              in
              l := (le, value) :: !l)
      | None -> (
          match strip_suffix name "_count" with
          | Some _ -> Hashtbl.replace counts fam value
          | None -> ())
    end
  in
  try
    let lines = String.split_on_char '\n' body in
    List.iteri
      (fun i line ->
        try
          if line = "" then ()
          else if line.[0] = '#' then handle_comment line
          else handle_sample line
        with Bad msg -> raise (Bad (Printf.sprintf "line %d: %s" (i + 1) msg)))
      lines;
    (* Cross-line histogram checks. *)
    Hashtbl.iter
      (fun fam kind ->
        if kind = "histogram" && Hashtbl.mem sampled fam then begin
          let series =
            match Hashtbl.find_opt buckets fam with
            | Some l -> List.rev !l
            | None -> raise (Bad (Printf.sprintf "histogram %S has no _bucket samples" fam))
          in
          let rec check prev = function
            | [] -> ()
            | (le, v) :: tl ->
                (match prev with
                | Some (ple, pv) ->
                    if le <= ple then
                      raise
                        (Bad (Printf.sprintf "histogram %S: le values not increasing" fam));
                    if v < pv then
                      raise
                        (Bad
                           (Printf.sprintf "histogram %S: bucket counts not cumulative" fam))
                | None -> ());
                check (Some (le, v)) tl
          in
          check None series;
          let inf_count =
            match List.rev series with
            | (le, v) :: _ when le = infinity -> v
            | _ ->
                raise (Bad (Printf.sprintf "histogram %S lacks a +Inf bucket" fam))
          in
          match Hashtbl.find_opt counts fam with
          | Some c when c <> inf_count ->
              raise
                (Bad
                   (Printf.sprintf "histogram %S: _count (%s) <> +Inf bucket (%s)"
                      fam (float_str c) (float_str inf_count)))
          | _ -> ()
        end)
      types;
    Ok ()
  with Bad msg -> Error msg
