type level = Debug | Info | Warn | Error

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_name s =
  match String.lowercase_ascii s with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  mutable lvl : level;
  sink : (Json.t -> unit) option; (* None: the logger is off entirely *)
  m : Mutex.t;
}

let ignore_log = { lvl = Error; sink = None; m = Mutex.create () }

let create ?(level = Info) sink = { lvl = level; sink = Some sink; m = Mutex.create () }

let level t = t.lvl
let set_level t lvl = t.lvl <- lvl
let enabled t lvl = t.sink <> None && severity lvl >= severity t.lvl

let log t lvl ?trace ?(attrs = []) msg =
  match t.sink with
  | None -> ()
  | Some sink ->
      if severity lvl >= severity t.lvl then begin
        let line =
          Json.Obj
            ([
               ("ts", Json.Float (Unix.gettimeofday ()));
               ("level", Json.String (level_name lvl));
               ("msg", Json.String msg);
             ]
            @ (match trace with
              | Some id -> [ ("trace", Json.String id) ]
              | None -> [])
            @ List.map
                (fun (k, v) ->
                  ( k,
                    match v with
                    | Span.Int i -> Json.Int i
                    | Span.Float f -> Json.Float f
                    | Span.Bool b -> Json.Bool b
                    | Span.Str s -> Json.String s ))
                attrs)
        in
        Mutex.lock t.m;
        Fun.protect ~finally:(fun () -> Mutex.unlock t.m) (fun () -> sink line)
      end

let debug t ?trace ?attrs msg = log t Debug ?trace ?attrs msg
let info t ?trace ?attrs msg = log t Info ?trace ?attrs msg
let warn t ?trace ?attrs msg = log t Warn ?trace ?attrs msg
let error t ?trace ?attrs msg = log t Error ?trace ?attrs msg
