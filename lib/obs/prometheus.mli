(** Prometheus text exposition (format 0.0.4) for a {!Metrics}
    registry, plus a pure-OCaml validator of the format used by the
    tests and CI against the live [/metrics?format=prometheus]
    endpoint.

    Rendering: counters and gauges one sample each; histograms as
    cumulative [<name>_bucket{le="..."}] series ending at [+Inf],
    [<name>_sum] and [<name>_count], plus [_p50]/[_p90]/[_p99]
    quantile-estimate gauges from {!Metrics.quantile}. Metric names
    are prefixed with [<namespace>_] (default ["bfdn"]). *)

val content_type : string
(** The exposition content type, ["text/plain; version=0.0.4"]. *)

val metric_name_ok : string -> bool
(** [[a-zA-Z_:][a-zA-Z0-9_:]*]. *)

val render : ?namespace:string -> Metrics.t -> string
(** The registry in exposition format, metrics in registration order,
    one [# TYPE] comment per family. *)

val validate : string -> (unit, string) result
(** Check a full exposition body: line syntax (metric-name and label
    grammar, quoted label values with backslash/quote/newline escapes,
    float sample
    values including [+Inf]/[-Inf]/[NaN]), [# TYPE] lines well-formed,
    unique, and preceding their family's samples; families contiguous
    (no interleaving); and for each declared histogram: every
    [_bucket] sample carries [le], the [le] values are increasing, the
    bucket counts are cumulative (non-decreasing), the [+Inf] bucket
    is present and agrees with [<name>_count]. Errors carry the
    1-based line number. *)
