module Clock = Bfdn_util.Clock

type phase = Select | Apply | Finished_check

type t = {
  enabled : bool;
  events : bool;
  on_round :
    round:int -> moved:int -> idle:int -> revealed:int -> edge_events:int -> unit;
  on_phase : phase -> int -> unit;
  on_reanchor : robot:int -> depth:int -> route_len:int -> unit;
  on_reanchor_summary : total:int -> by_depth:int array -> unit;
  on_select : idle:int -> unit;
  on_robot_lost : robot:int -> round:int -> latency:int -> unit;
  on_robot_revived : robot:int -> round:int -> unit;
  on_job : worker:int -> wait_ns:int -> run_ns:int -> unit;
}

let noop =
  {
    enabled = false;
    events = false;
    on_round = (fun ~round:_ ~moved:_ ~idle:_ ~revealed:_ ~edge_events:_ -> ());
    on_phase = (fun _ _ -> ());
    on_reanchor = (fun ~robot:_ ~depth:_ ~route_len:_ -> ());
    on_reanchor_summary = (fun ~total:_ ~by_depth:_ -> ());
    on_select = (fun ~idle:_ -> ());
    on_robot_lost = (fun ~robot:_ ~round:_ ~latency:_ -> ());
    on_robot_revived = (fun ~robot:_ ~round:_ -> ());
    on_job = (fun ~worker:_ ~wait_ns:_ ~run_ns:_ -> ());
  }

let make ?(events = false) ?on_round ?on_phase ?on_reanchor
    ?on_reanchor_summary ?on_select ?on_robot_lost ?on_robot_revived ?on_job
    () =
  {
    enabled = true;
    events;
    on_round = Option.value on_round ~default:noop.on_round;
    on_phase = Option.value on_phase ~default:noop.on_phase;
    on_reanchor = Option.value on_reanchor ~default:noop.on_reanchor;
    on_reanchor_summary =
      Option.value on_reanchor_summary ~default:noop.on_reanchor_summary;
    on_select = Option.value on_select ~default:noop.on_select;
    on_robot_lost = Option.value on_robot_lost ~default:noop.on_robot_lost;
    on_robot_revived =
      Option.value on_robot_revived ~default:noop.on_robot_revived;
    on_job = Option.value on_job ~default:noop.on_job;
  }

(* Standard metric names for a single-domain run. Handles are resolved
   here, once; the closures below only touch handles. Aggregate-only:
   no per-event hooks, so the per-round cost is a fixed handful of
   counter bumps however hard the instance drives the robots. *)
let of_metrics m =
  let rounds = Metrics.counter m "rounds" in
  let moves = Metrics.counter m "moves" in
  let reveals = Metrics.counter m "reveals" in
  let edge_events = Metrics.counter m "edge_events" in
  let select_ns = Metrics.counter m "select_ns" in
  let apply_ns = Metrics.counter m "apply_ns" in
  let finished_ns = Metrics.counter m "finished_check_ns" in
  let reanchors = Metrics.counter m "reanchors" in
  let reanchor_depth =
    Metrics.histogram ~bounds:Metrics.count_bounds m "reanchor_depth"
  in
  let idle = Metrics.histogram ~bounds:Metrics.count_bounds m "idle_robots" in
  let robots_lost = Metrics.counter m "robots_lost" in
  let robots_revived = Metrics.counter m "robots_revived" in
  let detect_latency =
    Metrics.histogram ~bounds:Metrics.count_bounds m "detect_latency_rounds"
  in
  make
    ~on_round:(fun ~round:_ ~moved ~idle:n ~revealed ~edge_events:ee ->
      Metrics.incr rounds;
      Metrics.add moves moved;
      Metrics.add reveals revealed;
      Metrics.add edge_events ee;
      Metrics.observe_int idle n)
    ~on_phase:(fun phase ns ->
      match phase with
      | Select -> Metrics.add select_ns ns
      | Apply -> Metrics.add apply_ns ns
      | Finished_check -> Metrics.add finished_ns ns)
    ~on_reanchor_summary:(fun ~total ~by_depth ->
      Metrics.add reanchors total;
      Array.iteri
        (fun d c -> if c > 0 then Metrics.observe_int_n reanchor_depth d c)
        by_depth)
    ~on_robot_lost:(fun ~robot:_ ~round:_ ~latency ->
      Metrics.incr robots_lost;
      Metrics.observe_int detect_latency latency)
    ~on_robot_revived:(fun ~robot:_ ~round:_ -> Metrics.incr robots_revived)
    ()

let pool_probe regs =
  let waits =
    Array.map (fun m -> Metrics.histogram m "queue_wait_s") regs
  in
  let runs = Array.map (fun m -> Metrics.histogram m "job_s") regs in
  make
    ~on_job:(fun ~worker ~wait_ns ~run_ns ->
      if worker >= 0 && worker < Array.length regs then begin
        Metrics.observe waits.(worker) (Clock.ns_to_s wait_ns);
        Metrics.observe runs.(worker) (Clock.ns_to_s run_ns)
      end)
    ()
