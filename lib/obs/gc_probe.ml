module Clock = Bfdn_util.Clock

(* GC observation without Gc.Memprof and without allocating on the
   record path. OCaml exposes no direct pause-duration hook, so the
   probe combines two cheap signals:

   - a [Gc.create_alarm] callback, fired by the runtime at the end of
     every major collection cycle, which bumps a plain int ref; and
   - a host-driven [tick], called at a natural cadence of the workload
     (once per exploration round, once per HTTP request). A tick whose
     interval saw at least one major-cycle end attributes that interval
     to the GC and records it into the pause histogram.

   The recorded gap is an upper bound on the actual pause (it includes
   the mutator work of the interval), but at round granularity it is
   exactly the quantity the huge tier cares about: how long a round can
   stall because the GC ran. The record path is two clock reads, int
   compares and [Metrics.observe_int] — no allocation, safe inside the
   hot loop. *)

type t = {
  registry : Metrics.t;
  cycles : int ref; (* bumped by the alarm at each major-cycle end *)
  pause : Metrics.histogram;
  cycle_ctr : Metrics.counter;
  mutable seen_cycles : int;
  mutable last_ns : int;
  mutable alarm : Gc.alarm option;
}

(* Nanosecond ladder mirroring {!Metrics.latency_bounds}: 1µs doubling
   to ~2s. *)
let pause_bounds_ns = Array.map (fun s -> s *. 1e9) Metrics.latency_bounds

let create ?(prefix = "gc") registry =
  let cycles = ref 0 in
  let t =
    {
      registry;
      cycles;
      pause =
        Metrics.histogram ~bounds:pause_bounds_ns registry (prefix ^ "_pause_ns");
      cycle_ctr = Metrics.counter registry (prefix ^ "_major_cycles");
      seen_cycles = 0;
      last_ns = Clock.now_ns ();
      alarm = None;
    }
  in
  t.alarm <- Some (Gc.create_alarm (fun () -> incr cycles));
  t

let tick t =
  let now = Clock.now_ns () in
  let cycles = !(t.cycles) in
  if cycles > t.seen_cycles then begin
    Metrics.observe_int t.pause (now - t.last_ns);
    Metrics.add t.cycle_ctr (cycles - t.seen_cycles);
    t.seen_cycles <- cycles
  end;
  t.last_ns <- now

let major_cycles t =
  (* Include cycles the next tick has not folded into the counter yet. *)
  !(t.cycles)

(* End-of-run totals from the runtime's own accounting. Allocates (and
   [Gc.quick_stat] is not free), so this is for run boundaries, never
   the round loop. *)
let snapshot ?(prefix = "gc") t =
  let s = Gc.quick_stat () in
  Metrics.set (Metrics.gauge t.registry (prefix ^ "_minor_collections"))
    (float_of_int s.Gc.minor_collections);
  Metrics.set (Metrics.gauge t.registry (prefix ^ "_major_collections"))
    (float_of_int s.Gc.major_collections);
  Metrics.set (Metrics.gauge t.registry (prefix ^ "_compactions"))
    (float_of_int s.Gc.compactions);
  Metrics.set (Metrics.gauge t.registry (prefix ^ "_heap_words"))
    (float_of_int s.Gc.heap_words);
  Metrics.set (Metrics.gauge t.registry (prefix ^ "_top_heap_words"))
    (float_of_int s.Gc.top_heap_words);
  Metrics.set
    (Metrics.gauge t.registry (prefix ^ "_minor_words"))
    s.Gc.minor_words

let alarm_active t = t.alarm <> None

let dispose t =
  match t.alarm with
  | None -> ()
  | Some a ->
      Gc.delete_alarm a;
      t.alarm <- None
