type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that parses back to the same double: most
   values round-trip at 15 or 16 significant digits, the remainder need
   the full 17. Integral values keep a ".0"-free form only when the %g
   notation already drops it, which is fine for JSON. *)
let float_to_string f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.16g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf (String k);
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf
