type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Shortest representation that parses back to the same double: most
   values round-trip at 15 or 16 significant digits, the remainder need
   the full 17. Integral values keep a ".0"-free form only when the %g
   notation already drops it, which is fine for JSON. *)
let float_to_string f =
  let s = Printf.sprintf "%.15g" f in
  let s =
    if float_of_string s = f then s
    else
      let s = Printf.sprintf "%.16g" f in
      if float_of_string s = f then s else Printf.sprintf "%.17g" f
  in
  (* Keep integral floats float-shaped on the wire ("250.0", not "250"):
     the parser types bare integers as Int, and the codec promises
     constructor-for-constructor round-trips. *)
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf (String k);
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

(* ---- parser ----

   Recursive descent over the whole input string. Numbers without a
   fraction or exponent part decode as [Int] (when they fit in an OCaml
   int), everything else as [Float] — the inverse of [emit], so values
   written by this module round-trip constructor-for-constructor. *)

type error = { msg : string; line : int; col : int; offset : int }

let error_to_string { msg; line; col; offset } =
  Printf.sprintf "%s at line %d, column %d (byte %d)" msg line col offset

exception Parse of error

(* 1-based line and byte column of [offset] in [s]. *)
let position s offset =
  let line = ref 1 and bol = ref 0 in
  for i = 0 to min offset (String.length s) - 1 do
    if s.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, offset - !bol + 1)

let of_string_pos s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg =
    let line, col = position s !pos in
    raise (Parse { msg; line; col; offset = !pos })
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      incr pos
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; incr pos
          | '\\' -> Buffer.add_char buf '\\'; incr pos
          | '/' -> Buffer.add_char buf '/'; incr pos
          | 'b' -> Buffer.add_char buf '\b'; incr pos
          | 'f' -> Buffer.add_char buf '\012'; incr pos
          | 'n' -> Buffer.add_char buf '\n'; incr pos
          | 'r' -> Buffer.add_char buf '\r'; incr pos
          | 't' -> Buffer.add_char buf '\t'; incr pos
          | 'u' ->
              incr pos;
              let cp = hex4 () in
              (* UTF-8 encode; [escape] only ever emits \u for control
                 characters, so the single-unit cases cover round-trips.
                 Surrogate pairs decode as two separate 3-byte units. *)
              if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
              else if cp < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
              end
          | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
      | c ->
          Buffer.add_char buf c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let body = String.sub s start (!pos - start) in
    let has_frac =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) body
    in
    if has_frac then
      match float_of_string_opt body with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number '%s'" body)
    else
      match int_of_string_opt body with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt body with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number '%s'" body))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let kvs = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            kvs := (k, v) :: !kvs;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; members ()
            | Some '}' -> incr pos
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !kvs)
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let xs = ref [] in
          let rec elements () =
            let v = parse_value () in
            xs := v :: !xs;
            skip_ws ();
            match peek () with
            | Some ',' -> incr pos; elements ()
            | Some ']' -> incr pos
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !xs)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse e -> Error e

let of_string s = Result.map_error error_to_string (of_string_pos s)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
