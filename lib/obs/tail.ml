module Ascii = Bfdn_util.Ascii

type kind = Span | Log | Frame | Other

let has key j = Json.member key j <> None

let kind_of j =
  if has "name" j && has "dur_ns" j then Span
  else if has "level" j && has "msg" j then Log
  else if has "round" j && has "explored" j then Frame
  else Other

let str_member key j =
  match Json.member key j with Some (Json.String s) -> Some s | _ -> None

let int_member key j =
  match Json.member key j with Some (Json.Int i) -> Some i | _ -> None

let istr key j = Option.value ~default:0 (int_member key j)
let sstr key j = Option.value ~default:"" (str_member key j)
let ms ns = float_of_int ns /. 1e6

let attr_str = function
  | Json.String s -> s
  | Json.Int i -> string_of_int i
  | Json.Float f -> Json.float_to_string f
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "null"
  | j -> Json.to_string j

let render_line j =
  match kind_of j with
  | Log ->
      let extras =
        match j with
        | Json.Obj members ->
            List.filter_map
              (fun (k, v) ->
                if List.mem k [ "ts"; "level"; "msg"; "trace" ] then None
                else Some (Printf.sprintf "%s=%s" k (attr_str v)))
              members
        | _ -> []
      in
      let trace =
        match str_member "trace" j with
        | Some id -> Printf.sprintf " [%s]" id
        | None -> ""
      in
      String.concat " "
        (Printf.sprintf "%-5s%s %s"
           (String.uppercase_ascii (sstr "level" j))
           trace (sstr "msg" j)
        :: extras)
  | Span ->
      Printf.sprintf "span  %-28s +%9.3fms %10.3fms  [%s]" (sstr "name" j)
        (ms (istr "start_ns" j))
        (ms (istr "dur_ns" j))
        (sstr "trace" j)
  | Frame ->
      Printf.sprintf "round %6d  explored %8d  dangling %5d" (istr "round" j)
        (istr "explored" j) (istr "dangling" j)
  | Other -> Json.to_string j

(* ---- span timeline ---- *)

type srec = {
  r_trace : string;
  r_id : int;
  r_parent : int;
  r_name : string;
  r_start : int;
  r_dur : int;
}

let srec_of j =
  match kind_of j with
  | Span ->
      Some
        {
          r_trace = sstr "trace" j;
          r_id = Option.value ~default:(-1) (int_member "span" j);
          r_parent = Option.value ~default:(-1) (int_member "parent" j);
          r_name = sstr "name" j;
          r_start = istr "start_ns" j;
          r_dur = istr "dur_ns" j;
        }
  | _ -> None

let span_timeline ?(width = 48) records =
  let spans = List.filter_map srec_of records in
  if spans = [] then ""
  else begin
    let buf = Buffer.create 1024 in
    let traces =
      List.fold_left
        (fun acc r -> if List.mem r.r_trace acc then acc else r.r_trace :: acc)
        [] spans
      |> List.rev
    in
    List.iter
      (fun trace ->
        let group =
          List.filter (fun r -> r.r_trace = trace) spans
          |> List.sort (fun a b -> compare (a.r_start, a.r_id) (b.r_start, b.r_id))
        in
        let depth_of =
          let tbl = Hashtbl.create 16 in
          List.iter (fun r -> Hashtbl.replace tbl r.r_id r.r_parent) group;
          fun id ->
            let rec go id acc =
              if acc > 16 then acc
              else
                match Hashtbl.find_opt tbl id with
                | Some p when p >= 0 -> go p (acc + 1)
                | _ -> acc
            in
            go id 0
        in
        let t0 = List.fold_left (fun a r -> min a r.r_start) max_int group in
        let t1 =
          List.fold_left (fun a r -> max a (r.r_start + r.r_dur)) min_int group
        in
        let span_ns = max 1 (t1 - t0) in
        Printf.bprintf buf "trace %s  (%d spans, %.3fms)\n" trace
          (List.length group) (ms span_ns);
        List.iter
          (fun r ->
            let indent = String.make (2 * depth_of r.r_id) ' ' in
            let label =
              let l = indent ^ r.r_name in
              if String.length l > 30 then String.sub l 0 30
              else l ^ String.make (30 - String.length l) ' '
            in
            let axis = Bytes.make width ' ' in
            let pos ns = ns * width / span_ns in
            let b0 = max 0 (min (width - 1) (pos (r.r_start - t0))) in
            let b1 =
              max (b0 + 1) (min width (pos (r.r_start - t0 + r.r_dur)))
            in
            Bytes.fill axis b0 (b1 - b0) '=';
            Printf.bprintf buf "%s |%s| %9.3fms\n" label
              (Bytes.to_string axis) (ms r.r_dur))
          group)
      traces;
    (* Aggregate wall per span name, via the PR 3 bar-chart renderer. *)
    let totals = Hashtbl.create 16 in
    List.iter
      (fun r ->
        let prev =
          Option.value ~default:0.0 (Hashtbl.find_opt totals r.r_name)
        in
        Hashtbl.replace totals r.r_name (prev +. ms r.r_dur))
      spans;
    let entries =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
      |> List.sort (fun (_, a) (_, b) -> compare b a)
    in
    Buffer.add_string buf "total ms by span name:\n";
    Buffer.add_string buf (Ascii.bar_chart entries);
    Buffer.contents buf
  end
