(** Terminal rendering of mixed observability JSONL streams — the
    trace frames, span records and log lines the serve layer emits —
    behind [explore tail]. Builds on the PR 3 ASCII dashboard
    renderer ({!Bfdn_util.Ascii}) for the aggregate charts. *)

type kind = Span | Log | Frame | Other

val kind_of : Json.t -> kind
(** Classify one JSONL record by its members: a span has [name] and
    [dur_ns], a log line [level] and [msg], a trace frame [round] and
    [explored]. *)

val render_line : Json.t -> string
(** One aligned text line (no trailing newline) for any record kind;
    unknown records render as compact JSON. *)

val span_timeline : ?width:int -> Json.t list -> string
(** An ASCII timeline of flat span records (the {!Span} sink JSONL
    form): one row per span in start order, indented by tree depth,
    with a bar positioned and scaled on a [width]-column (default 48)
    axis spanning the whole trace, plus a total-duration bar chart per
    span name. [""] when no span records are given. *)
