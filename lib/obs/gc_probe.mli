(** GC pause observation with an allocation-free record path.

    OCaml exposes no direct pause-duration hook (and [Gc.Memprof] is a
    sampling profiler, not a pause meter), so the probe combines a
    [Gc.create_alarm] callback — fired by the runtime at the end of each
    major collection cycle — with a host-driven {!tick} called at the
    workload's natural cadence (per exploration round, per HTTP
    request). A tick whose interval saw a major-cycle end records the
    interval length into a [<prefix>_pause_ns] histogram: an upper bound
    on the pause, and at round granularity exactly the round-stall
    number the huge scale tier reports.

    Used by the E19 huge-scale benchmark (ticked from the runner's
    round hook) and by the scenario server's [/metrics] endpoint. *)

type t

val create : ?prefix:string -> Metrics.t -> t
(** Install the major-cycle alarm and register [<prefix>_pause_ns]
    (histogram, nanosecond ladder mirroring {!Metrics.latency_bounds})
    and [<prefix>_major_cycles] (counter) in the registry. [prefix]
    defaults to ["gc"]. Call {!dispose} when done: the alarm otherwise
    outlives the probe. *)

val tick : t -> unit
(** Advance the interval clock; record the elapsed interval as a pause
    if at least one major cycle ended inside it. Two monotonic clock
    reads, int compares and one {!Metrics.observe_int} — no allocation,
    safe to call every round. *)

val major_cycles : t -> int
(** Major cycles ended since {!create}, including any not yet folded
    into the counter by a tick. *)

val snapshot : ?prefix:string -> t -> unit
(** Export end-of-run totals from [Gc.quick_stat] as gauges
    ([<prefix>_minor_collections], [_major_collections], [_compactions],
    [_heap_words], [_top_heap_words], [_minor_words]). Allocates — for
    run boundaries, not the round loop. *)

val alarm_active : t -> bool
(** Whether the runtime alarm is still installed (false after
    {!dispose}). *)

val dispose : t -> unit
(** Delete the runtime alarm. Idempotent. *)
