(** Profiling hooks threaded through the simulator, the algorithms and
    the batch engine.

    A probe is a record of callbacks defaulting to no-ops, with two
    gates:

    - [enabled] turns on the {e aggregate} instrumentation: per-round
      hooks ({!t.on_round}, {!t.on_phase}), per-job pool timing, and a
      once-per-run reanchor summary harvested from counters the
      algorithm maintains anyway. Cost per round is a handful of clock
      reads and counter bumps — bounded regardless of what the robots
      do, which is what keeps the E16 overhead benchmark under its 2%
      budget.
    - [events] additionally turns on the {e per-event} hooks
      ({!t.on_reanchor}, {!t.on_select}). These fire up to O(k) times
      per round (an adversarial trap instance drives BFDN to ~100
      reanchors per round at k = 512), so even no-op calls would blow
      the overhead budget: event streams are strictly opt-in.

    The {!noop} probe has both gates off; hot paths use [enabled] /
    [events] to skip the instrumentation work entirely, so the disabled
    default costs one branch per probe point. *)

type phase =
  | Select  (** the algorithm's [select] call *)
  | Apply  (** [Env.apply] *)
  | Finished_check  (** the algorithm's [finished] predicate *)

type t = {
  enabled : bool;
      (** [false] only for {!noop}: hot paths may skip timing work. *)
  events : bool;
      (** Per-event hooks ([on_reanchor], [on_select]) fire only when
          set; implies [enabled]. *)
  on_round :
    round:int -> moved:int -> idle:int -> revealed:int -> edge_events:int -> unit;
      (** After each [Env.apply]: the new round number, robots that
          moved, robots whose effective move was [Stay] (computed for
          free as [k - moved]), nodes revealed and edge events of that
          round. *)
  on_phase : phase -> int -> unit;
      (** Phase duration in monotonic nanoseconds, once per round and
          phase (fired by [Runner.run]). *)
  on_reanchor : robot:int -> depth:int -> route_len:int -> unit;
      (** Per-event ([events] only) — BFDN anchor switch: target depth
          and length of the freshly computed breadth-first route. *)
  on_reanchor_summary : total:int -> by_depth:int array -> unit;
      (** Once per run, when the algorithm first reports finished:
          total anchor switches and the per-depth counts (index =
          depth) the algorithm accumulated at zero marginal cost. The
          array is the probe's to keep. *)
  on_select : idle:int -> unit;
      (** Per-event ([events] only) — after each algorithm [select]:
          robots assigned [Stay] (costs an O(k) scan per round, hence
          gated). *)
  on_robot_lost : robot:int -> round:int -> latency:int -> unit;
      (** Crash-tolerant algorithms: a robot was declared lost at
          [round], [latency] rounds after its last surviving heartbeat.
          Fires under [enabled] (not [events]): losses are bounded by
          the fleet size per run, not by the round count. *)
  on_robot_revived : robot:int -> round:int -> unit;
      (** A presumed-lost robot produced a fresh heartbeat (restart, or
          a false positive under whiteboard write drops) and was folded
          back into the fleet. Fires under [enabled]. *)
  on_job : worker:int -> wait_ns:int -> run_ns:int -> unit;
      (** Engine pool: per-job queue wait and execution time. May be
          invoked concurrently from worker domains — implementations
          must be domain-safe (e.g. write to per-worker registries). *)
}

val noop : t
(** The disabled probe; the default everywhere a probe is accepted. *)

val make :
  ?events:bool ->
  ?on_round:
    (round:int -> moved:int -> idle:int -> revealed:int -> edge_events:int -> unit) ->
  ?on_phase:(phase -> int -> unit) ->
  ?on_reanchor:(robot:int -> depth:int -> route_len:int -> unit) ->
  ?on_reanchor_summary:(total:int -> by_depth:int array -> unit) ->
  ?on_select:(idle:int -> unit) ->
  ?on_robot_lost:(robot:int -> round:int -> latency:int -> unit) ->
  ?on_robot_revived:(robot:int -> round:int -> unit) ->
  ?on_job:(worker:int -> wait_ns:int -> run_ns:int -> unit) ->
  unit ->
  t
(** An enabled probe with the given hooks (others stay no-ops).
    [events] (default [false]) additionally enables the per-event
    hooks. *)

val of_metrics : Metrics.t -> t
(** The standard single-domain instrumentation — aggregate-only
    ([events = false], so its overhead stays within the E16 budget):
    counters [rounds], [moves], [reveals], [edge_events], [reanchors],
    [robots_lost], [robots_revived]
    and phase-time counters [select_ns]/[apply_ns]/[finished_check_ns];
    histograms [idle_robots] (one sample per round, from [on_round]),
    [reanchor_depth] (filled by the end-of-run summary) and
    [detect_latency_rounds] (crash-detection latency per lost robot). *)

val pool_probe : Metrics.t array -> t
(** Engine instrumentation: worker [i] records [queue_wait_s] and
    [job_s] histograms into registry [i] (single writer per registry, so
    no locking). Pass one registry per worker and fold with
    {!Metrics.merge_into} after the pool drains. *)
