module Ascii = Bfdn_util.Ascii

(* Float state lives in float arrays, not record fields: a float field in
   a mixed record is boxed, so [h.sum <- h.sum +. v] would allocate on
   every observation. [arr.(i) <- arr.(i) +. v] on a float array does
   not, keeping the record paths allocation-free. *)

type counter = { c_name : string; mutable c_value : int }

type gauge = { g_name : string; g_cell : float array (* [| value |] *) }

type histogram = {
  h_name : string;
  bounds : float array; (* inclusive upper bounds, strictly increasing *)
  counts : int array; (* length bounds + 1; last = overflow bucket *)
  mutable h_count : int;
  h_stats : float array; (* [| sum; min; max |] *)
}

type item = Counter of counter | Gauge of gauge | Histogram of histogram

type t = {
  tbl : (string, item) Hashtbl.t;
  mutable rev_order : string list; (* registration order, reversed *)
}

let create () = { tbl = Hashtbl.create 16; rev_order = [] }

let register t name make =
  match Hashtbl.find_opt t.tbl name with
  | Some item -> item
  | None ->
      let item = make () in
      Hashtbl.add t.tbl name item;
      t.rev_order <- name :: t.rev_order;
      item

let kind_error name want =
  invalid_arg
    (Printf.sprintf "Metrics: %S is already registered as a different kind than %s"
       name want)

let counter t name =
  match register t name (fun () -> Counter { c_name = name; c_value = 0 }) with
  | Counter c -> c
  | _ -> kind_error name "counter"

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let gauge t name =
  match register t name (fun () -> Gauge { g_name = name; g_cell = [| 0.0 |] }) with
  | Gauge g -> g
  | _ -> kind_error name "gauge"

let set g v = g.g_cell.(0) <- v
let gauge_value g = g.g_cell.(0)

(* Exponential ladders: wall-time observations in seconds (1µs .. ~2s),
   and small nonnegative counts (0 .. 1024). *)
let latency_bounds =
  Array.init 22 (fun i -> 1e-6 *. (2.0 ** float_of_int i))

let count_bounds =
  Array.append [| 0.0 |] (Array.init 11 (fun i -> 2.0 ** float_of_int i))

let check_bounds bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i - 1) >= bounds.(i) then
      invalid_arg "Metrics.histogram: bounds must be strictly increasing"
  done

let histogram ?(bounds = latency_bounds) t name =
  check_bounds bounds;
  let make () =
    Histogram
      {
        h_name = name;
        bounds = Array.copy bounds;
        counts = Array.make (Array.length bounds + 1) 0;
        h_count = 0;
        h_stats = [| 0.0; infinity; neg_infinity |];
      }
  in
  match register t name make with
  | Histogram h ->
      if h.bounds <> bounds then
        invalid_arg
          (Printf.sprintf "Metrics.histogram: %S re-registered with different bounds"
             name);
      h
  | _ -> kind_error name "histogram"

(* A value lands in the first bucket whose bound it does not exceed
   ([v <= bounds.(i)]); anything above the last bound goes to the
   overflow bucket. Linear scan: bucket ladders are ~20 entries and the
   early buckets are the hot ones. *)
let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    i := !i + 1
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_stats.(0) <- h.h_stats.(0) +. v;
  if v < h.h_stats.(1) then h.h_stats.(1) <- v;
  if v > h.h_stats.(2) then h.h_stats.(2) <- v

(* Int observations (depths, route lengths, idle counts) enter here with
   the bucketing open-coded: the converted float is only compared against
   float-array reads and accumulated into a float array, so it lives in a
   register for the whole body — whereas [observe h (float_of_int v)]
   would box it at the call boundary on every hot-path observation. *)
let observe_int h v =
  let vf = float_of_int v in
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && vf > h.bounds.(!i) do
    i := !i + 1
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_stats.(0) <- h.h_stats.(0) +. vf;
  if vf < h.h_stats.(1) then h.h_stats.(1) <- vf;
  if vf > h.h_stats.(2) then h.h_stats.(2) <- vf

(* Bulk observation: [n] occurrences of the int value [v] in one shot —
   what the end-of-run reanchor summary needs to turn per-depth counts
   into a histogram without having paid per-event cost during the run. *)
let observe_int_n h v n =
  if n > 0 then begin
    let vf = float_of_int v in
    let nb = Array.length h.bounds in
    let i = ref 0 in
    while !i < nb && vf > h.bounds.(!i) do
      i := !i + 1
    done;
    h.counts.(!i) <- h.counts.(!i) + n;
    h.h_count <- h.h_count + n;
    h.h_stats.(0) <- h.h_stats.(0) +. (vf *. float_of_int n);
    if vf < h.h_stats.(1) then h.h_stats.(1) <- vf;
    if vf > h.h_stats.(2) then h.h_stats.(2) <- vf
  end

let hist_count h = h.h_count
let hist_sum h = h.h_stats.(0)
let hist_min h = if h.h_count = 0 then 0.0 else h.h_stats.(1)
let hist_max h = if h.h_count = 0 then 0.0 else h.h_stats.(2)
let num_buckets h = Array.length h.counts
let bucket_count h i = h.counts.(i)

let bucket_le h i =
  if i >= Array.length h.bounds then infinity else h.bounds.(i)

let find t name = Hashtbl.find_opt t.tbl name

let find_counter t name =
  match find t name with Some (Counter c) -> Some c | _ -> None

let find_gauge t name =
  match find t name with Some (Gauge g) -> Some g | _ -> None

let find_histogram t name =
  match find t name with Some (Histogram h) -> Some h | _ -> None

(* Quantile estimate from the bucket counts: find the bucket holding the
   p-th ranked observation and interpolate linearly inside it, with the
   observed min/max tightening the first and overflow buckets (and, as a
   clamp, any bucket wider than the data it holds). Exact when all mass
   sits in one bucket (min = max there), within one bucket width
   otherwise — the resolution the exponential ladders are chosen for. *)
let quantile h p =
  if h.h_count = 0 then 0.0
  else begin
    let p = Float.max 0.0 (Float.min 1.0 p) in
    let target = p *. float_of_int h.h_count in
    let nb = Array.length h.counts in
    let result = ref (hist_max h) in
    let cum = ref 0 in
    (try
       for i = 0 to nb - 1 do
         let c = h.counts.(i) in
         if c > 0 && float_of_int (!cum + c) >= target then begin
           let lo =
             if i = 0 then hist_min h
             else Float.max (hist_min h) h.bounds.(i - 1)
           in
           let hi =
             if i >= Array.length h.bounds then hist_max h
             else Float.min (hist_max h) h.bounds.(i)
           in
           let frac = (target -. float_of_int !cum) /. float_of_int c in
           let frac = Float.max 0.0 (Float.min 1.0 frac) in
           result := lo +. (frac *. (hi -. lo));
           raise Exit
         end;
         cum := !cum + c
       done
     with Exit -> ());
    !result
  end

let names t = List.rev t.rev_order

(* Accumulate [src] into [into] by name: counters and histogram buckets
   add, gauges take the source's last value. Registers anything missing,
   so folding per-worker registries into a fresh one just works.
   @raise Invalid_argument on a name/kind or bucket-bounds mismatch. *)
let merge_into ~into src =
  List.iter
    (fun name ->
      match Hashtbl.find src.tbl name with
      | Counter c -> add (counter into name) c.c_value
      | Gauge g -> set (gauge into name) g.g_cell.(0)
      | Histogram h ->
          let h' = histogram ~bounds:h.bounds into name in
          Array.iteri (fun i c -> h'.counts.(i) <- h'.counts.(i) + c) h.counts;
          h'.h_count <- h'.h_count + h.h_count;
          h'.h_stats.(0) <- h'.h_stats.(0) +. h.h_stats.(0);
          if h.h_count > 0 then begin
            if h.h_stats.(1) < h'.h_stats.(1) then h'.h_stats.(1) <- h.h_stats.(1);
            if h.h_stats.(2) > h'.h_stats.(2) then h'.h_stats.(2) <- h.h_stats.(2)
          end)
    (names src)

let json_of_histogram h =
  let buckets =
    List.init (num_buckets h) (fun i ->
        Json.Obj
          [
            ( "le",
              if i >= Array.length h.bounds then Json.String "+inf"
              else Json.Float h.bounds.(i) );
            ("count", Json.Int h.counts.(i));
          ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float (hist_sum h));
      ("min", Json.Float (hist_min h));
      ("max", Json.Float (hist_max h));
      ("p50", Json.Float (quantile h 0.5));
      ("p90", Json.Float (quantile h 0.9));
      ("p99", Json.Float (quantile h 0.99));
      ("buckets", Json.List buckets);
    ]

let to_json t =
  Json.Obj
    (List.map
       (fun name ->
         match Hashtbl.find t.tbl name with
         | Counter c -> (name, Json.Int c.c_value)
         | Gauge g -> (name, Json.Float g.g_cell.(0))
         | Histogram h -> (name, json_of_histogram h))
       (names t))

let label_of_le le =
  if le = infinity then "+inf" else Printf.sprintf "<=%.3g" le

let render t =
  let buf = Buffer.create 512 in
  let scalars =
    List.filter_map
      (fun name ->
        match Hashtbl.find t.tbl name with
        | Counter c -> Some (name, float_of_int c.c_value)
        | Gauge g -> Some (name, g.g_cell.(0))
        | Histogram _ -> None)
      (names t)
  in
  if scalars <> [] then begin
    Buffer.add_string buf "counters/gauges:\n";
    Buffer.add_string buf (Ascii.bar_chart scalars)
  end;
  List.iter
    (fun name ->
      match Hashtbl.find t.tbl name with
      | Histogram h when h.h_count > 0 ->
          Buffer.add_string buf
            (Printf.sprintf "%s: count=%d sum=%.6g min=%.3g max=%.3g mean=%.3g\n"
               name h.h_count (hist_sum h) (hist_min h) (hist_max h)
               (hist_sum h /. float_of_int h.h_count));
          let nonzero =
            List.filter
              (fun (_, v) -> v > 0.0)
              (List.init (num_buckets h) (fun i ->
                   (label_of_le (bucket_le h i), float_of_int h.counts.(i))))
          in
          Buffer.add_string buf (Ascii.bar_chart nonzero)
      | _ -> ())
    (names t);
  Buffer.contents buf
