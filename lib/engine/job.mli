(** Pure simulation-job specifications.

    A job {e is} a {!Bfdn_scenario.Scenario.t} — the engine adds nothing
    to the spec type beyond construction sugar for the two classic
    instance shapes. [run job] is a pure function: two executions of the
    same spec, on any machine, in any worker, produce identical
    outcomes. This is what makes batches shardable (see {!Batch}) and
    results usable as evidence; since specs serialize to JSON
    ({!Bfdn_scenario.Scenario.to_string}), a batch is replayable data,
    not a closure. *)

module Scenario = Bfdn_scenario.Scenario

type instance =
  | Generated of { family : string; n : int; depth_hint : int }
      (** A {!Bfdn_trees.Tree_gen.of_family} instance. *)
  | Adversarial of { policy : string; capacity : int; depth_budget : int }
      (** A lazily materialized world grown online by a
          {!Bfdn_sim.Adversary} policy; the frozen tree is replayed after
          the adaptive run. *)

type t = Scenario.t = {
  instance : Scenario.instance;
  algo : string;  (** an {!Bfdn_scenario.Algo_registry} name *)
  algo_params : Bfdn_scenario.Param.binding list;
  k : int;  (** robot count *)
  seed : int;
      (** per-job seed; {!run} splits it into independent instance and
          algorithm streams with [Rng.split] *)
  max_rounds : int option;
  metrics : bool;
  faults : Bfdn_scenario.Param.binding list;
      (** fault-injection schedule ({!Bfdn_scenario.Fault_spec} schema);
          compiled to the same deterministic plan in every worker *)
  batch_seeds : int;
      (** always 1 for engine jobs — multi-seed specs run through
          {!Seed_batch}, not the per-job pool *)
}

type outcome = Scenario.outcome = {
  result : Bfdn_sim.Runner.result;
  replay_rounds : int option;
      (** adversarial jobs only: rounds of a re-run on the frozen tree
          (equal to [result.rounds] for deterministic algorithms) *)
  n : int;  (** node count of the (frozen) instance *)
  depth : int;
  max_degree : int;
}

val algos : string list
(** Algorithm names accepted by {!run} — the tree-runnable subset of
    {!Bfdn_scenario.Algo_registry.names}. *)

val policies : string list
(** Adversary policy names accepted by {!run} —
    {!Bfdn_scenario.World_registry.policy_names}. *)

val make : ?algo:string -> ?k:int -> ?seed:int -> instance -> t
(** Spec constructor with defaults [algo="bfdn"], [k=8], [seed=0];
    translates the classic instance shapes into scenario instances. *)

val describe : t -> string
(** One-line human-readable rendering, used in labels and error text. *)

val equal_outcome : outcome -> outcome -> bool
(** Structural equality; the whole record is immutable scalar data, so
    this is exactly "bit-for-bit identical run". *)

val run : t -> outcome
(** [Scenario.run] — derive the instance and algorithm RNG streams from
    [seed], build the environment, drive {!Bfdn_sim.Runner.run}.
    @raise Invalid_argument on an unknown algorithm/policy/family name. *)
