module Scenario = Bfdn_scenario.Scenario

type instance =
  | Generated of { family : string; n : int; depth_hint : int }
  | Adversarial of { policy : string; capacity : int; depth_budget : int }

type t = Scenario.t = {
  instance : Scenario.instance;
  algo : string;
  algo_params : Bfdn_scenario.Param.binding list;
  k : int;
  seed : int;
  max_rounds : int option;
  metrics : bool;
  faults : Bfdn_scenario.Param.binding list;
  batch_seeds : int;
}

type outcome = Scenario.outcome = {
  result : Bfdn_sim.Runner.result;
  replay_rounds : int option;
  n : int;
  depth : int;
  max_degree : int;
}

let algos = Bfdn_scenario.Algo_registry.tree_names
let policies = Bfdn_scenario.World_registry.policy_names

let scenario_instance = function
  | Generated { family; n; depth_hint } ->
      Scenario.generated ~family ~n ~depth_hint
  | Adversarial { policy; capacity; depth_budget } ->
      Scenario.adversarial ~policy ~capacity ~depth_budget

let make ?algo ?k ?seed instance =
  Scenario.make ?algo ?k ?seed (scenario_instance instance)

let describe = Scenario.describe
let equal_outcome = Scenario.equal_outcome
let run job = Scenario.run job
