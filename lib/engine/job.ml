module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Adversary = Bfdn_sim.Adversary
module Rng = Bfdn_util.Rng

type instance =
  | Generated of { family : string; n : int; depth_hint : int }
  | Adversarial of { policy : string; capacity : int; depth_budget : int }

type t = { instance : instance; algo : string; k : int; seed : int }

type outcome = {
  result : Runner.result;
  replay_rounds : int option;
  n : int;
  depth : int;
  max_degree : int;
}

let algos = [ "bfdn"; "bfdn-wr"; "bfdn-rec"; "cte"; "dfs"; "offline"; "random-walk" ]
let policies = [ "thick-comb"; "corridor"; "bomb"; "miser"; "random" ]

let make ?(algo = "bfdn") ?(k = 8) ?(seed = 0) instance =
  { instance; algo; k; seed }

let describe job =
  let inst =
    match job.instance with
    | Generated { family; n; depth_hint } ->
        Printf.sprintf "%s(n=%d,depth=%d)" family n depth_hint
    | Adversarial { policy; capacity; depth_budget } ->
        Printf.sprintf "adv:%s(cap=%d,depth=%d)" policy capacity depth_budget
  in
  Printf.sprintf "%s/%s k=%d seed=%d" inst job.algo job.k job.seed

let equal_outcome (a : outcome) (b : outcome) = a = b

let algo_of_name name ~rng env =
  match name with
  | "bfdn" -> Bfdn.Bfdn_algo.algo (Bfdn.Bfdn_algo.make env)
  | "bfdn-wr" -> Bfdn.Bfdn_planner.algo (Bfdn.Bfdn_planner.make env)
  | "bfdn-rec" -> Bfdn.Bfdn_rec.algo (Bfdn.Bfdn_rec.make ~ell:2 env)
  | "cte" -> Bfdn_baselines.Cte.make env
  | "dfs" -> Bfdn_baselines.Dfs_single.make env
  | "offline" -> Bfdn_baselines.Offline_split.make env
  | "random-walk" -> Bfdn_baselines.Random_walk.make ~rng env
  | other -> invalid_arg ("Job.run: unknown algorithm " ^ other)

let adversary_of_name name ~rng ~capacity ~depth_budget =
  match name with
  | "thick-comb" -> Adversary.make_rec ~capacity ~depth_budget Adversary.thick_comb
  | "corridor" ->
      Adversary.make ~capacity ~depth_budget (Adversary.corridor_crowds ~threshold:2)
  | "bomb" -> Adversary.make ~capacity ~depth_budget Adversary.greedy_widest
  | "miser" -> Adversary.make ~capacity ~depth_budget Adversary.miser
  | "random" ->
      Adversary.make ~capacity ~depth_budget (Adversary.random_policy rng ~max_children:3)
  | other -> invalid_arg ("Job.run: unknown adversary policy " ^ other)

(* Fixed split indices for the seed: instance stream, algorithm stream.
   The replay of an adversarial job re-derives the algorithm stream from
   scratch so the re-run sees exactly the stream the adaptive run saw. *)
let instance_stream root = Rng.split root 0
let algo_stream root = Rng.split root 1

let run job =
  let root = Rng.create job.seed in
  match job.instance with
  | Generated { family; n; depth_hint } ->
      let tree =
        Bfdn_trees.Tree_gen.of_family family ~rng:(instance_stream root) ~n
          ~depth_hint
      in
      let env = Env.create tree ~k:job.k in
      let algo = algo_of_name job.algo ~rng:(algo_stream root) env in
      let result = Runner.run algo env in
      {
        result;
        replay_rounds = None;
        n = Env.oracle_n env;
        depth = Env.oracle_depth env;
        max_degree = Env.oracle_max_degree env;
      }
  | Adversarial { policy; capacity; depth_budget } ->
      let adv =
        adversary_of_name policy ~rng:(instance_stream root) ~capacity
          ~depth_budget
      in
      let env = Env.of_world (Adversary.world adv) ~k:job.k in
      let algo = algo_of_name job.algo ~rng:(algo_stream root) env in
      let result = Runner.run algo env in
      let tree = Adversary.frozen adv in
      let stats = Bfdn_trees.Tree_stats.compute tree in
      let env2 = Env.create tree ~k:job.k in
      let algo2 = algo_of_name job.algo ~rng:(algo_stream root) env2 in
      let replay = Runner.run algo2 env2 in
      {
        result;
        replay_rounds = Some replay.rounds;
        n = stats.n;
        depth = stats.depth;
        max_degree = stats.max_degree;
      }
