(** Domain-based worker pool.

    A fixed set of worker domains drains a FIFO task queue. Tasks are
    [unit -> unit] thunks; a raising task is contained (the exception is
    swallowed at the worker loop) so one bad task can never take a worker
    — let alone the pool — down. Error reporting is the submitter's job:
    {!Batch} wraps every job so failures surface as per-job [Error]
    values.

    The pool is safe to drive from the spawning domain only ([submit],
    [join] and [shutdown] are not re-entrant from worker tasks). *)

type t

val create : ?probe:Bfdn_obs.Probe.t -> ?workers:int -> unit -> t
(** Spawn the worker domains. [workers] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1.
    Worker counts above the core count are legal (useful for determinism
    tests); they just time-share.

    An enabled [probe] receives [on_job ~worker ~wait_ns ~run_ns] after
    every task: queue wait (submit to dequeue) and execution time on the
    monotonic clock. The hook fires {e on the worker domain}, so it must
    be domain-safe — {!Bfdn_obs.Probe.pool_probe} writes to per-worker
    registries for exactly this reason. *)

val workers : t -> int
(** Number of worker domains actually spawned. *)

(** {2 Cancellation}

    A token is a domain-safe cancellation flag shared between a
    submitter and its task. Cancelling a token whose task is still
    queued makes the pool skip the task entirely when it is dequeued; a
    task already running observes cancellation cooperatively by calling
    {!check} at its own safe points (the serve layer does this from a
    per-round hook, which is what makes wall-clock timeouts cancel
    cleanly mid-run). *)

exception Cancelled
(** Raised by {!check}; contained by the worker loop like any other
    task exception. *)

type token

val token : unit -> token
(** A fresh, uncancelled token. *)

val cancel : token -> unit
(** Flip the flag (idempotent; callable from any domain). *)

val is_cancelled : token -> bool

val check : token -> unit
(** @raise Cancelled when the token has been cancelled. *)

val submit : ?token:token -> t -> (unit -> unit) -> unit
(** Enqueue a task. A [token] cancelled before the task is dequeued
    causes the pool to drop the task unrun (it still counts in
    {!executed} and unblocks {!join} as usual).
    @raise Invalid_argument after {!shutdown}. *)

val join : t -> unit
(** Block until every submitted task has finished (the queue is empty and
    no worker is mid-task). The pool stays usable for further [submit]s. *)

val shutdown : t -> unit
(** {!join}, then stop and join every worker domain. Idempotent. *)

val executed : t -> int array
(** Per-worker count of tasks completed so far (index = worker id). Call
    after {!join} for a consistent snapshot. *)
