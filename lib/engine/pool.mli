(** Domain-based worker pool.

    A fixed set of worker domains drains a FIFO task queue. Tasks are
    [unit -> unit] thunks; a raising task is contained (the exception is
    swallowed at the worker loop) so one bad task can never take a worker
    — let alone the pool — down. Error reporting is the submitter's job:
    {!Batch} wraps every job so failures surface as per-job [Error]
    values.

    The pool is safe to drive from the spawning domain only ([submit],
    [join] and [shutdown] are not re-entrant from worker tasks). *)

type t

val create : ?probe:Bfdn_obs.Probe.t -> ?workers:int -> unit -> t
(** Spawn the worker domains. [workers] defaults to
    [Domain.recommended_domain_count ()] and is clamped to at least 1.
    Worker counts above the core count are legal (useful for determinism
    tests); they just time-share.

    An enabled [probe] receives [on_job ~worker ~wait_ns ~run_ns] after
    every task: queue wait (submit to dequeue) and execution time on the
    monotonic clock. The hook fires {e on the worker domain}, so it must
    be domain-safe — {!Bfdn_obs.Probe.pool_probe} writes to per-worker
    registries for exactly this reason. *)

val workers : t -> int
(** Number of worker domains actually spawned. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a task. @raise Invalid_argument after {!shutdown}. *)

val join : t -> unit
(** Block until every submitted task has finished (the queue is empty and
    no worker is mid-task). The pool stays usable for further [submit]s. *)

val shutdown : t -> unit
(** {!join}, then stop and join every worker domain. Idempotent. *)

val executed : t -> int array
(** Per-worker count of tasks completed so far (index = worker id). Call
    after {!join} for a consistent snapshot. *)
