module Clock = Bfdn_util.Clock
module Probe = Bfdn_obs.Probe

exception Cancelled

type token = bool Atomic.t

let token () = Atomic.make false
let cancel tk = Atomic.set tk true
let is_cancelled tk = Atomic.get tk
let check tk = if Atomic.get tk then raise Cancelled

type t = {
  n_workers : int;
  queue : (int * token option * (unit -> unit)) Queue.t;
      (* (submit timestamp ns, cancellation token, task) *)
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;
  mutable pending : int;  (* submitted, not yet finished *)
  mutable stopped : bool;
  counts : int array;
  probe : Probe.t;
  mutable domains : unit Domain.t list;
}

let worker t i () =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopped: exit *)
    else begin
      let submitted_ns, tok, task = Queue.pop t.queue in
      Mutex.unlock t.mutex;
      (* A token cancelled while the task sat in the queue skips it
         entirely — that is what lets the serve layer drop timed-out or
         abandoned jobs without burning a worker on them. Running tasks
         observe cancellation themselves via [check]. *)
      let skip = match tok with Some tk -> is_cancelled tk | None -> false in
      (* Contain failures here so a raising task cannot kill the worker;
         result-level error reporting is layered on top (see Batch). *)
      if skip then ()
      else if t.probe.Probe.enabled then begin
        let t0 = Clock.now_ns () in
        (try task () with _ -> ());
        let t1 = Clock.now_ns () in
        (* on_job runs on this worker domain: the probe contract requires
           domain-safe hooks (per-worker sinks). *)
        t.probe.Probe.on_job ~worker:i ~wait_ns:(t0 - submitted_ns)
          ~run_ns:(t1 - t0)
      end
      else (try task () with _ -> ());
      Mutex.lock t.mutex;
      t.counts.(i) <- t.counts.(i) + 1;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let create ?(probe = Probe.noop) ?workers () =
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Domain.recommended_domain_count ()
  in
  let t =
    {
      n_workers;
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      idle = Condition.create ();
      pending = 0;
      stopped = false;
      counts = Array.make n_workers 0;
      probe;
      domains = [];
    }
  in
  t.domains <- List.init n_workers (fun i -> Domain.spawn (worker t i));
  t

let workers t = t.n_workers

let submit ?token t f =
  let submitted_ns = if t.probe.Probe.enabled then Clock.now_ns () else 0 in
  Mutex.lock t.mutex;
  if t.stopped then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  t.pending <- t.pending + 1;
  Queue.push (submitted_ns, token, f) t.queue;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let join t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

let shutdown t =
  join t;
  Mutex.lock t.mutex;
  let was_stopped = t.stopped in
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex;
  if not was_stopped then begin
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let executed t =
  Mutex.lock t.mutex;
  let c = Array.copy t.counts in
  Mutex.unlock t.mutex;
  c
