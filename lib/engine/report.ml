type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.6g" f)
      else Buffer.add_string buf "null"
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf (String k);
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  emit buf j;
  Buffer.contents buf

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j ^ "\n"))

let of_summary (s : Bfdn_util.Stats.summary) =
  Obj
    [
      ("count", Int s.count);
      ("mean", Float s.mean);
      ("stddev", Float s.stddev);
      ("min", Float s.min);
      ("max", Float s.max);
      ("p50", Float s.p50);
      ("p95", Float s.p95);
    ]

let of_sweep ~label ~workers ~wall ?sequential_wall results =
  let agg = Batch.aggregate results in
  let jobs_per_sec = if wall > 0.0 then float_of_int agg.jobs /. wall else 0.0 in
  let base =
    [
      ("label", String label);
      ("workers", Int workers);
      ("cores", Int (Domain.recommended_domain_count ()));
      ("jobs", Int agg.jobs);
      ("errors", Int agg.errors);
      ("explored", Int agg.explored);
      ("total_rounds", Int agg.total_rounds);
      ("wall_seconds", Float wall);
      ("jobs_per_sec", Float jobs_per_sec);
      ( "per_algo_rounds",
        Obj (List.map (fun (a, s) -> (a, of_summary s)) agg.per_algo) );
    ]
  in
  let speedup =
    match sequential_wall with
    | None -> []
    | Some sw ->
        [
          ("sequential_wall_seconds", Float sw);
          ("speedup", Float (if wall > 0.0 then sw /. wall else 0.0));
        ]
  in
  Obj (base @ speedup)
