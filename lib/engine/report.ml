module Json = Bfdn_obs.Json

type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

let to_string = Json.to_string

let write ~path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string j ^ "\n"))

(* Bump when the shape of the BENCH_*.json bodies changes incompatibly,
   so dashboards comparing perf trajectories across PRs can tell which
   fields to expect. v1: pre-obs reports (no meta stamp). v2: meta stamp
   (schema_version, seed, workers). v3: peak_rss_bytes joined the stamp
   (null where the platform cannot report it). *)
let schema_version = 3

(* Peak resident set of this process, best-effort: on Linux the VmHWM
   line of /proc/self/status (the kernel's high-water mark, in kB);
   None elsewhere. Read at stamp time, i.e. when the report is built —
   the process-lifetime peak, which is the honest number for a bench
   run. Sub-run attribution needs subprocess isolation (VmHWM is
   monotone per process); bench/e_huge.ml does exactly that. *)
let peak_rss_bytes () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match input_line ic with
            | exception End_of_file -> None
            | line -> (
                match Scanf.sscanf line "VmHWM: %d kB" (fun kb -> kb) with
                | kb -> Some (kb * 1024)
                | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
                    scan ())
          in
          scan ())

let meta ~seed ~workers =
  [
    ("schema_version", Int schema_version);
    ("seed", Int seed);
    ("workers", Int workers);
    ( "peak_rss_bytes",
      match peak_rss_bytes () with None -> Null | Some b -> Int b );
  ]

let of_summary (s : Bfdn_util.Stats.summary) =
  Obj
    [
      ("count", Int s.count);
      ("mean", Float s.mean);
      ("stddev", Float s.stddev);
      ("min", Float s.min);
      ("max", Float s.max);
      ("p50", Float s.p50);
      ("p95", Float s.p95);
    ]

let of_metrics = Bfdn_obs.Metrics.to_json

let of_sweep ~label ~workers ~seed ~wall ?sequential_wall results =
  let agg = Batch.aggregate results in
  let jobs_per_sec = if wall > 0.0 then float_of_int agg.jobs /. wall else 0.0 in
  let base =
    meta ~seed ~workers
    @ [
        ("label", String label);
        ("cores", Int (Domain.recommended_domain_count ()));
        ("jobs", Int agg.jobs);
        ("errors", Int agg.errors);
        ("explored", Int agg.explored);
        ("total_rounds", Int agg.total_rounds);
        ("wall_seconds", Float wall);
        ("jobs_per_sec", Float jobs_per_sec);
        ( "per_algo_rounds",
          Obj (List.map (fun (a, s) -> (a, of_summary s)) agg.per_algo) );
      ]
  in
  let speedup =
    match sequential_wall with
    | None -> []
    | Some sw ->
        [
          ("sequential_wall_seconds", Float sw);
          ("speedup", Float (if wall > 0.0 then sw /. wall else 0.0));
        ]
  in
  Obj (base @ speedup)
