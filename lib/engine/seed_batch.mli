(** Seed-batched lockstep execution of one spec over S consecutive
    seeds.

    A batched spec ([Scenario.batch_seeds = S]) stands for the S plain
    specs [Scenario.unbatch t 0 .. S-1]; [run] executes all of them
    through one fused round loop with flat Bigarray lane-control state,
    sharing what the determinism oracle proves shareable:

    - one world record (build + stat scan) when the tree family's
      generator ignores the instance stream;
    - the entire run, when lane 0 additionally completes without a
      single algorithm-stream draw on a shared fault-free world — then
      every sibling lane is provably byte-identical and its outcome is
      replicated without executing it (the {e identical-lane collapse},
      the serve cache's fingerprint argument applied inside a batch).

    Outcomes are byte-identical to S sequential [Scenario.run] calls —
    QCheck-asserted across random configs and re-checked in CI's
    determinism lane. Shapes outside the synchronous eager tree-runner
    path (graph, async, adversarial, lazy worlds, enabled probes) fall
    back to exactly those sequential calls. *)

type report = {
  outcomes : Bfdn_scenario.Scenario.outcome array;
      (** lane [i] = outcome of [Scenario.run (unbatch t i)], always *)
  lockstep : bool;  (** fused loop used (vs the sequential fallback) *)
  shared_world : bool;  (** one world record served every lane *)
  collapsed : bool;
      (** lanes 1..S-1 replicated from lane 0's draw-free proof *)
}

val run :
  ?probe:Bfdn_obs.Probe.t ->
  ?shards:int ->
  ?tick:(round:int -> active:int -> unit) ->
  Bfdn_scenario.Scenario.t ->
  report
(** Execute a (possibly) batched spec. [batch_seeds = 1] degenerates to
    one [Scenario.run].

    [probe]: per-lane observation; an {e enabled} probe forces the
    sequential fallback (identical results, Runner's instrumented loop).
    [shards] additionally shards each lane's route-computation phase
    over a domain team shared by the whole batch (see
    {!Bfdn_scenario.Scenario.run}); advisory, never alters results.
    [tick] is invoked at least once per lockstep sweep (and per lane-0
    round) with the sweep counter and the number of still-running
    lanes — raise from it to abort the batch (the serve layer's
    deadline/cancellation hook).
    @raise Invalid_argument when the spec fails validation. *)
