(* Seed-batched lockstep execution.

   A batched spec ([Scenario.batch_seeds = S]) stands for the S plain
   specs [unbatch t 0 .. unbatch t (S-1)]. Executing them one by one
   pays the full dispatch cost S times: validation, world construction,
   the O(n) stat scans behind the termination bound, and S cold round
   loops. This module advances all S lanes through ONE fused round loop
   instead, with three stacked savings — each proved sound by the
   determinism oracle, never assumed:

   1. {b Shared world}: for tree families whose generator ignores the
      instance stream ({!Bfdn_scenario.World_registry.deterministic_tree})
      every lane hides the identical tree, so one [Env.world_of_tree]
      record — including its lazily memoized stat scan — serves all S
      environments.

   2. {b Identical-lane collapse}: lanes differ only through their RNG
      streams. With a shared world, no faults and a noop probe, the only
      stream that can still reach the run is the algorithm stream — so
      if lane 0 completes having drawn {e nothing} from it (checked by
      state comparison, {!Bfdn_util.Rng.equal}), every other lane would
      execute the byte-identical run, and its outcome is replicated
      without running it. This is the serve cache's fingerprint argument
      applied within a batch, and it is what makes multi-seed validation
      sweeps of the (deterministic) paper algorithms nearly free.

   3. {b Lockstep}: lanes that do have to run share one fused loop and
      flat Bigarray lane-control state (status / rounds / moves / edge
      events as structure-of-arrays), amortizing loop dispatch; the
      per-lane robot and node state is already flat int arrays (the
      zero-allocation hot path), so the batch adds no boxed per-round
      state of its own.

   Per lane the loop body replicates [Runner.run]'s uninstrumented loop
   statement for statement, and the RNG streams are derived through the
   exact [Scenario] helpers — batched outcomes are byte-identical to S
   sequential [Scenario.run] calls (QCheck-asserted across random
   configs, and re-checked in CI's determinism lane). Shapes the fused
   loop does not cover (graph/async/adversarial/lazy worlds, enabled
   probes) fall back to exactly those sequential calls, so [run] is
   total over valid specs. *)

module Scenario = Bfdn_scenario.Scenario
module World_registry = Bfdn_scenario.World_registry
module Algo_registry = Bfdn_scenario.Algo_registry
module Env = Bfdn_sim.Env
module Runner = Bfdn_sim.Runner
module Rng = Bfdn_util.Rng
module Probe = Bfdn_obs.Probe

type report = {
  outcomes : Scenario.outcome array;
  lockstep : bool;
  shared_world : bool;
  collapsed : bool;
}

(* Lane status codes in the SoA control plane. *)
let st_running = 0
let st_done = 1
let st_limit = 2

type lanes = {
  envs : Env.t option array;
  algos : Runner.algo option array;
  limits : int array;
  (* Bigarray-backed lane control state: one int8 status plus int
     counters per lane, contiguous across lanes so the fused loop's
     working set is S bytes + 3S words regardless of world size. *)
  status : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
  rounds : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  moves : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  edges : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  hit_limit : bool array;
}

let make_lanes s =
  {
    envs = Array.make s None;
    algos = Array.make s None;
    limits = Array.make s 0;
    status = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout s;
    rounds = Bigarray.Array1.create Bigarray.int Bigarray.c_layout s;
    moves = Bigarray.Array1.create Bigarray.int Bigarray.c_layout s;
    edges = Bigarray.Array1.create Bigarray.int Bigarray.c_layout s;
    hit_limit = Array.make s false;
  }

let lane_env lanes l =
  match lanes.envs.(l) with Some e -> e | None -> assert false

let lane_algo lanes l =
  match lanes.algos.(l) with Some a -> a | None -> assert false

let finish lanes l st =
  let env = lane_env lanes l in
  Bigarray.Array1.set lanes.status l st;
  Bigarray.Array1.set lanes.rounds l (Env.round env);
  Bigarray.Array1.set lanes.moves l (Env.moves_total env);
  Bigarray.Array1.set lanes.edges l (Env.edge_events env);
  lanes.hit_limit.(l) <- st = st_limit

(* One lane step of the fused loop — [Runner.run]'s plain (probe-less)
   loop body, statement for statement. Returns [true] while running. *)
let step lanes l =
  let env = lane_env lanes l and algo = lane_algo lanes l in
  if algo.Runner.finished env then begin
    finish lanes l st_done;
    false
  end
  else if Env.round env >= lanes.limits.(l) then begin
    finish lanes l st_limit;
    false
  end
  else begin
    Env.apply env (algo.Runner.select env);
    true
  end

let outcome_of_lane lanes l =
  let env = lane_env lanes l in
  {
    Scenario.result =
      {
        Runner.rounds = Bigarray.Array1.get lanes.rounds l;
        explored = Env.fully_explored env;
        at_root = Env.all_at_root env;
        moves = Bigarray.Array1.get lanes.moves l;
        edge_events = Bigarray.Array1.get lanes.edges l;
        hit_round_limit = lanes.hit_limit.(l);
      };
    replay_rounds = None;
    n = Env.oracle_n env;
    depth = Env.oracle_depth env;
    max_degree = Env.oracle_max_degree env;
  }

let no_tick ~round:_ ~active:_ = ()

(* The fused-loop path handles exactly the synchronous eager tree-runner
   shape with no observers; everything else is executed as the S
   sequential runs it is defined to equal. *)
let lockstep_shape probe t =
  (not probe.Probe.enabled)
  &&
  match t.Scenario.instance with
  | Scenario.Adversarial _ -> false
  | Scenario.World { world; params } -> (
      (match Algo_registry.find t.Scenario.algo with
      | Some e -> e.Algo_registry.make_tree <> None
      | None -> false)
      &&
      match World_registry.find world with
      | Some { World_registry.kind = World_registry.Tree _; _ } ->
          World_registry.scale_of_params params = "eager"
      | _ -> false)

let sequential ?shards ~probe ~tick t =
  let s = t.Scenario.batch_seeds in
  let outcomes =
    Array.init s (fun l ->
        let o = Scenario.run ~probe ?shards (Scenario.unbatch t l) in
        tick ~round:l ~active:(s - 1 - l);
        o)
  in
  { outcomes; lockstep = false; shared_world = false; collapsed = false }

let run ?(probe = Probe.noop) ?shards ?(tick = no_tick) t =
  (match Scenario.validate t with
  | Ok () -> ()
  | Error msg ->
      invalid_arg ("Seed_batch: " ^ msg ^ " in " ^ Scenario.describe t));
  let s = t.Scenario.batch_seeds in
  if not (lockstep_shape probe t) then sequential ?shards ~probe ~tick t
  else begin
    let world_name, params =
      match t.Scenario.instance with
      | Scenario.World { world; params } -> (world, params)
      | Scenario.Adversarial _ -> assert false (* lockstep_shape *)
    in
    let shared = World_registry.deterministic_tree ~params world_name in
    let pool =
      match shards with
      | Some n when n > 1 -> Some (Bfdn_util.Shard_pool.create ~shards:n)
      | _ -> None
    in
    Fun.protect ~finally:(fun () ->
        match pool with
        | Some p -> Bfdn_util.Shard_pool.shutdown p
        | None -> ())
    @@ fun () ->
    (* One world record for every lane when the family is deterministic:
       the O(n) build and the lazily memoized stat scan happen once. *)
    let shared_world =
      if not shared then None
      else
        Some
          (Env.world_of_tree
             (World_registry.build_tree
                ~rng:(Scenario.instance_stream (Rng.create t.Scenario.seed))
                ~params world_name))
    in
    let lanes = make_lanes s in
    let setup_lane l =
      let root = Rng.create (t.Scenario.seed + l) in
      let fault = Scenario.fault_plan t root in
      let fault_hook = Bfdn_faults.Injector.hook_opt fault in
      let env =
        match shared_world with
        | Some w -> Env.of_world ~fixed:true w ~k:t.Scenario.k ~fault:fault_hook
        | None ->
            Env.create
              (World_registry.build_tree
                 ~rng:(Scenario.instance_stream root) ~params world_name)
              ~k:t.Scenario.k ~fault:fault_hook
      in
      let rng = Scenario.algo_stream root in
      let before = Rng.copy rng in
      let algo =
        Scenario.instantiate ~probe:Probe.noop ~rng ?fault ?shard_pool:pool t
          env
      in
      lanes.envs.(l) <- Some env;
      lanes.algos.(l) <- Some algo;
      lanes.limits.(l) <-
        (match t.Scenario.max_rounds with
        | Some m -> m
        | None -> Runner.default_max_rounds env);
      Bigarray.Array1.set lanes.status l st_running;
      (rng, before)
    in
    (* Lane 0 runs to completion first: it doubles as the collapse
       witness, so when the batch provably degenerates the other S-1
       lanes are never even constructed. *)
    let rng0, before0 = setup_lane 0 in
    let r = ref 0 in
    while step lanes 0 do
      incr r;
      tick ~round:!r ~active:1
    done;
    let draw_free = Rng.equal rng0 before0 in
    let collapsed = s > 1 && shared && t.Scenario.faults = [] && draw_free in
    let outcome0 = outcome_of_lane lanes 0 in
    if collapsed then
      {
        outcomes = Array.make s outcome0;
        lockstep = true;
        shared_world = shared;
        collapsed = true;
      }
    else begin
      (* Fused lockstep sweep over the remaining lanes. Lanes share no
         mutable state (the shared world record is read-only), so the
         sweep order cannot be observed; per lane the step sequence is
         exactly the sequential loop's. *)
      for l = 1 to s - 1 do
        ignore (setup_lane l : Rng.t * Rng.t)
      done;
      let active = ref (s - 1) in
      let sweep = ref 0 in
      while !active > 0 do
        incr sweep;
        for l = 1 to s - 1 do
          if
            Bigarray.Array1.get lanes.status l = st_running
            && not (step lanes l)
          then decr active
        done;
        tick ~round:!sweep ~active:!active
      done;
      let outcomes =
        Array.init s (fun l ->
            if l = 0 then outcome0 else outcome_of_lane lanes l)
      in
      { outcomes; lockstep = true; shared_world = shared; collapsed = false }
    end
  end
