module Stats = Bfdn_util.Stats
module Clock = Bfdn_util.Clock
module Probe = Bfdn_obs.Probe

let now () = Unix.gettimeofday ()

let map ?(probe = Probe.noop) ?workers
    ?(progress = fun ~completed:_ ~total:_ -> ())
    ?(on_pool_stats = fun _ -> ()) f xs =
  let total = Array.length xs in
  let results = Array.make total (Error "not executed") in
  let run_one i =
    results.(i) <- (try Ok (f xs.(i)) with e -> Error (Printexc.to_string e))
  in
  let w =
    match workers with
    | Some w -> max 1 w
    | None -> Domain.recommended_domain_count ()
  in
  if w <= 1 || total <= 1 then
    Array.iteri
      (fun i _ ->
        (* Inline baseline: everything runs as "worker 0" with no queue,
           so the wait component is identically zero. *)
        if probe.Probe.enabled then begin
          let t0 = Clock.now_ns () in
          run_one i;
          let t1 = Clock.now_ns () in
          probe.Probe.on_job ~worker:0 ~wait_ns:0 ~run_ns:(t1 - t0)
        end
        else run_one i;
        progress ~completed:(i + 1) ~total)
      xs
  else begin
    let pool = Pool.create ~probe ~workers:w () in
    let completed = Atomic.make 0 in
    let progress_mutex = Mutex.create () in
    Array.iteri
      (fun i _ ->
        Pool.submit pool (fun () ->
            run_one i;
            let c = Atomic.fetch_and_add completed 1 + 1 in
            Mutex.lock progress_mutex;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock progress_mutex)
              (fun () -> progress ~completed:c ~total)))
      xs;
    Pool.join pool;
    on_pool_stats (Pool.executed pool);
    Pool.shutdown pool
  end;
  results

let run ?probe ?workers ?progress ?on_pool_stats jobs =
  let arr = Array.of_list jobs in
  let res = map ?probe ?workers ?progress ?on_pool_stats Job.run arr in
  List.mapi (fun i j -> (j, res.(i))) jobs

type agg = {
  jobs : int;
  errors : int;
  explored : int;
  total_rounds : int;
  per_algo : (string * Stats.summary) list;
}

let aggregate results =
  let errors = ref 0 and explored = ref 0 and total_rounds = ref 0 in
  let order = ref [] (* algo names, first-seen order *) in
  let rounds : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((job : Job.t), res) ->
      match res with
      | Error _ -> incr errors
      | Ok (o : Job.outcome) ->
          if o.result.explored then incr explored;
          total_rounds := !total_rounds + o.result.rounds;
          let cell =
            match Hashtbl.find_opt rounds job.algo with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.add rounds job.algo r;
                order := job.algo :: !order;
                r
          in
          cell := o.result.rounds :: !cell)
    results;
  let per_algo =
    List.rev_map
      (fun algo ->
        let xs = !(Hashtbl.find rounds algo) in
        let arr = Array.of_list (List.rev_map float_of_int xs) in
        (algo, Stats.summarize arr))
      !order
  in
  {
    jobs = List.length results;
    errors = !errors;
    explored = !explored;
    total_rounds = !total_rounds;
    per_algo;
  }
