(** Deterministic parallel execution of job batches.

    The determinism contract: results are collected into a slot indexed
    by the job's position in the input, every job derives its randomness
    from its own spec ({!Job.run} is pure), and nothing a worker computes
    depends on any other worker. Hence a batch's output is a function of
    the input list alone — identical for 1 worker, [N] workers, or any
    scheduling order — which {!val:run} with worker counts 1 vs N (see
    [test/test_engine.ml]) verifies job-for-job. *)

val map :
  ?probe:Bfdn_obs.Probe.t ->
  ?workers:int ->
  ?progress:(completed:int -> total:int -> unit) ->
  ?on_pool_stats:(int array -> unit) ->
  ('a -> 'b) ->
  'a array ->
  ('b, string) result array
(** [map f xs] applies [f] to every element on a fresh {!Pool} (shut down
    before returning) and returns the results {e in input order}. An
    element on which [f] raises yields [Error] carrying the exception
    text; the remaining elements still run. [workers] defaults to
    [Domain.recommended_domain_count ()]; [workers <= 1] runs inline in
    the calling domain (the sequential baseline — no pool is spawned).
    [progress] is called after each completion with a monotonically
    increasing [completed] (serialized, possibly from worker domains: it
    must not touch the pool). [on_pool_stats] receives the per-worker
    task counts after the pool drains.

    [probe] (default {!Bfdn_obs.Probe.noop}) is handed to the pool for
    per-job queue-wait/latency reporting (see {!Pool.create}); on the
    inline [workers <= 1] path every element reports as worker [0] with
    zero wait. The probe observes timing only — results and their order
    are identical with or without it. *)

val run :
  ?probe:Bfdn_obs.Probe.t ->
  ?workers:int ->
  ?progress:(completed:int -> total:int -> unit) ->
  ?on_pool_stats:(int array -> unit) ->
  Job.t list ->
  (Job.t * (Job.outcome, string) result) list
(** [map] specialized to {!Job.run}, pairing each outcome with its spec. *)

type agg = {
  jobs : int;
  errors : int;
  explored : int;  (** jobs whose run fully explored the instance *)
  total_rounds : int;
  per_algo : (string * Bfdn_util.Stats.summary) list;
      (** distribution of [result.rounds] per algorithm name, in first-seen
          order *)
}

val aggregate : (Job.t * (Job.outcome, string) result) list -> agg

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]); here so engine clients time
    sweeps without depending on [unix] directly. *)
