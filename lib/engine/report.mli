(** Machine-readable sweep reports.

    The JSON tree and emitter live in {!Bfdn_obs.Json} (shared with the
    trace sinks); the type is re-exported here so report-building code
    keeps writing [Report.Obj [...]]. Floats are emitted in
    shortest-round-trip form — a BENCH_*.json value parses back to
    exactly the double that was measured — and non-finite floats as
    [null] to keep the output standard JSON.

    Every report body should start with {!meta}, which stamps the schema
    version, the seed and the worker count so perf trajectories stay
    comparable across PRs. *)

type json = Bfdn_obs.Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact single-line rendering. *)

val write : path:string -> json -> unit
(** [to_string] plus a trailing newline, written atomically-enough (single
    [output_string]) to [path]. *)

val schema_version : int
(** Current report schema: bumped on incompatible shape changes. *)

val peak_rss_bytes : unit -> int option
(** Peak resident set of this process, best-effort: VmHWM from
    [/proc/self/status] on Linux (kernel high-water mark, monotone over
    the process lifetime), [None] on platforms without it. *)

val meta : seed:int -> workers:int -> (string * json) list
(** The standard stamp: [schema_version], [seed], [workers],
    [peak_rss_bytes] ([null] where unavailable). Prepend to every
    BENCH_*.json body. *)

val of_summary : Bfdn_util.Stats.summary -> json
(** Round-distribution summary as an object
    [{count, mean, stddev, min, max, p50, p95}]. *)

val of_metrics : Bfdn_obs.Metrics.t -> json
(** {!Bfdn_obs.Metrics.to_json}, re-exported for report builders. *)

val of_sweep :
  label:string ->
  workers:int ->
  seed:int ->
  wall:float ->
  ?sequential_wall:float ->
  (Job.t * (Job.outcome, string) result) list ->
  json
(** Standard report body for one batch: the {!meta} stamp, label,
    core count, wall-time, jobs/sec, error count, per-algo round
    distributions, and — when [sequential_wall] is given — the
    parallel-over-sequential speedup. *)
