(** Minimal JSON emitter for machine-readable sweep reports.

    The repository has no JSON dependency, so this is a tiny writer (no
    parser): enough to emit [BENCH_engine.json] — wall-time, throughput,
    per-algorithm round distributions — for dashboards and CI trend
    tracking. Non-finite floats are emitted as [null] to keep the output
    standard JSON. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact single-line rendering. *)

val write : path:string -> json -> unit
(** [to_string] plus a trailing newline, written atomically-enough (single
    [output_string]) to [path]. *)

val of_summary : Bfdn_util.Stats.summary -> json
(** Round-distribution summary as an object
    [{count, mean, stddev, min, max, p50, p95}]. *)

val of_sweep :
  label:string ->
  workers:int ->
  wall:float ->
  ?sequential_wall:float ->
  (Job.t * (Job.outcome, string) result) list ->
  json
(** Standard report body for one batch: label, worker/core counts,
    wall-time, jobs/sec, error count, per-algo distributions, and — when
    [sequential_wall] is given — the parallel-over-sequential speedup. *)
