module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree

(* Unfinished branch test for one port of [v]: dangling, or an explored
   child whose discovered subtree still has a dangling edge. *)
let unfinished view v p =
  Partial_tree.is_port_dangling view v p
  ||
  let c = Partial_tree.port_child_id view v p in
  c >= 0 && Partial_tree.subtree_open view c

let make ?(probe = Bfdn_obs.Probe.noop) env =
  let view = Env.view env in
  let n = Env.capacity env in
  let k = Env.k env in
  let root = Partial_tree.root view in
  (* Cursor permanently skipping the finished prefix of each port array
     (finished is absorbing). *)
  let cursor = Array.make n 0 in
  (* Per-round scratch, reused across rounds so select allocates nothing
     in steady state. Per-node entries are validated against [epoch]
     instead of being cleared: [grp_cnt] ranks the robots at a node,
     [br_off]/[br_len] point into the shared [br_buf] segment holding the
     node's unfinished branches for this round. *)
  let moves = Array.make k Env.Stay in
  let epoch = ref 0 in
  let grp_stamp = Array.make n (-1) in
  let grp_cnt = Array.make n 0 in
  let br_stamp = Array.make n (-1) in
  let br_off = Array.make n 0 in
  let br_len = Array.make n 0 in
  let br_buf = ref (Array.make 16 0) in
  let br_fill = ref 0 in
  let via_cache = ref (Array.init 8 (fun p -> Env.Via_port p)) in
  let via p =
    let len = Array.length !via_cache in
    if p >= len then begin
      let l = ref len in
      while p >= !l do
        l := 2 * !l
      done;
      via_cache := Array.init !l (fun q -> Env.Via_port q)
    end;
    (!via_cache).(p)
  in
  let compute_branches pos =
    let nports = Partial_tree.num_ports view pos in
    while cursor.(pos) < nports && not (unfinished view pos cursor.(pos)) do
      cursor.(pos) <- cursor.(pos) + 1
    done;
    let off = !br_fill in
    let fill = ref off in
    for p = cursor.(pos) to nports - 1 do
      if unfinished view pos p then begin
        if !fill >= Array.length !br_buf then begin
          let b = Array.make (2 * Array.length !br_buf) 0 in
          Array.blit !br_buf 0 b 0 (Array.length !br_buf);
          br_buf := b
        end;
        (!br_buf).(!fill) <- p;
        incr fill
      end
    done;
    br_stamp.(pos) <- !epoch;
    br_off.(pos) <- off;
    br_len.(pos) <- !fill - off;
    br_fill := !fill
  in
  let select env =
    incr epoch;
    br_fill := 0;
    for i = 0 to k - 1 do
      let pos = Env.position env i in
      (* Rank of this robot among the robots currently at [pos] (ids
         ascending) — decides which unfinished branch it takes. *)
      let j =
        if grp_stamp.(pos) = !epoch then grp_cnt.(pos)
        else begin
          grp_stamp.(pos) <- !epoch;
          0
        end
      in
      grp_cnt.(pos) <- j + 1;
      if br_stamp.(pos) <> !epoch then compute_branches pos;
      let m = br_len.(pos) in
      moves.(i) <-
        (if m = 0 then if pos <> root then Env.Up else Env.Stay
         else via (!br_buf).(br_off.(pos) + (j mod m)))
    done;
    (* The O(k) idle scan is per-event instrumentation ([events] only):
       aggregate consumers get the idle count for free from Env.apply's
       on_round. Pattern match, not [=]: polymorphic equality on the
       move variant would cost a caml_compare call per robot. *)
    if probe.Bfdn_obs.Probe.events then begin
      let idle = ref 0 in
      for i = 0 to k - 1 do
        match moves.(i) with Env.Stay -> incr idle | _ -> ()
      done;
      probe.Bfdn_obs.Probe.on_select ~idle:!idle
    end;
    moves
  in
  {
    Bfdn_sim.Runner.name = "cte";
    select;
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }

let bound ~n ~k ~depth =
  if k <= 1 then 2.0 *. float_of_int (n - 1)
  else (float_of_int n /. (log (float_of_int k) /. log 2.0)) +. float_of_int depth
