(** CTE — Collective Tree Exploration of Fraigniaud, Gasieniec, Kowalski
    and Pelc [10].

    At every round, the robots standing on a node [v] are divided as
    evenly as possible among the {e unfinished branches} of [v]: ports
    that are dangling or lead to an explored child whose discovered
    subtree still contains a dangling edge. A robot on a node with no
    unfinished branch moves up (stays at the root).

    Guarantee: O(n / log k + D) rounds, hence the O(k / log k)
    competitive ratio; tight on sequential-breadth instances such as
    {!Bfdn_trees.Tree_gen.hidden_path} ([11]). *)

val make : ?probe:Bfdn_obs.Probe.t -> Bfdn_sim.Env.t -> Bfdn_sim.Runner.algo
(** [probe] (default {!Bfdn_obs.Probe.noop}) receives [on_select ~idle]
    after every selection round with the number of robots left on
    [Stay]. *)

val bound : n:int -> k:int -> depth:int -> float
(** The comparison formula used in Figure 1: [n / log2 k + depth] (the
    paper's O-free simplification, constants dropped). For [k = 1] this
    degenerates to DFS's [2 (n-1)]. *)
