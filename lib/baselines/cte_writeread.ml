module Env = Bfdn_sim.Env
module Partial_tree = Bfdn_sim.Partial_tree

(* Per-node whiteboard: which child ports lead to finished subtrees. *)
type board = { done_ports : bool array }

let make env =
  let view = Env.view env in
  let boards : board option array = Array.make (Env.capacity env) None in
  let board v =
    match boards.(v) with
    | Some b -> b
    | None ->
        let b = { done_ports = Array.make (Partial_tree.num_ports view v) false } in
        boards.(v) <- Some b;
        b
  in
  let first_child_port v = if v = Partial_tree.root view then 0 else 1 in
  let locally_finished v =
    let b = board v in
    let ok = ref true in
    for p = first_child_port v to Array.length b.done_ports - 1 do
      if not b.done_ports.(p) then ok := false
    done;
    !ok
  in
  let unfinished_branches v =
    let b = board v in
    let acc = ref [] in
    for p = Array.length b.done_ports - 1 downto first_child_port v do
      if not b.done_ports.(p) then acc := p :: !acc
    done;
    !acc
  in
  (* A robot moving up from a finished child writes the completion mark on
     the parent's board (it carries the information physically). *)
  let mark_done_at_parent child =
    match Partial_tree.parent view child with
    | None -> ()
    | Some parent ->
        let p = Partial_tree.parent_port view child in
        if p >= 0 then (board parent).done_ports.(p) <- true
  in
  let select env =
    let k = Env.k env in
    let moves = Array.make k Env.Stay in
    let by_node = Hashtbl.create 16 in
    for i = k - 1 downto 0 do
      let pos = Env.position env i in
      let prev = try Hashtbl.find by_node pos with Not_found -> [] in
      Hashtbl.replace by_node pos (i :: prev)
    done;
    let root = Partial_tree.root view in
    let handle_node pos robots =
      if locally_finished pos then begin
        if pos <> root then begin
          mark_done_at_parent pos;
          List.iter (fun i -> moves.(i) <- Env.Up) robots
        end
      end
      else begin
        let ports = Array.of_list (unfinished_branches pos) in
        let m = Array.length ports in
        List.iteri (fun j i -> moves.(i) <- Env.Via_port ports.(j mod m)) robots
      end
    in
    Hashtbl.iter handle_node by_node;
    moves
  in
  {
    Bfdn_sim.Runner.name = "cte-write-read";
    select;
    finished = (fun env -> Env.fully_explored env && Env.all_at_root env);
  }
