module Env = Bfdn_sim.Env
module Metrics = Bfdn_obs.Metrics

(* The hook's predicates sit on the round loop's per-robot path, so they
   are specialized at compile-from-plan time: a mask-free plan answers
   [fh_down] with two array loads instead of re-matching the mask
   variant every call, and a plan whose crashes are all permanent lets
   [Env.apply] skip the restart sweep entirely. *)
let hook plan =
  if Fault_plan.quiet plan then Env.fault_noop
  else
    let crash = plan.Fault_plan.crash_at in
    let restart = plan.Fault_plan.restart_at in
    let fh_down =
      match plan.Fault_plan.mask with
      | Fault_plan.No_mask ->
          fun ~round ~robot ->
            round >= crash.(robot) && round < restart.(robot)
      | _ -> fun ~round ~robot -> Fault_plan.down plan ~round ~robot
    in
    {
      Env.fh_enabled = true;
      fh_down;
      fh_restart = (fun ~round ~robot -> restart.(robot) = round + 1);
      fh_may_restart = Array.exists (fun r -> r < max_int) restart;
    }

let hook_opt = function None -> Env.fault_noop | Some plan -> hook plan

let record ~metrics plan ~rounds =
  let crashes, restarts = Fault_plan.stats plan ~rounds in
  Metrics.add (Metrics.counter metrics "faults_injected") crashes;
  Metrics.add (Metrics.counter metrics "fault_restarts") restarts;
  Metrics.set
    (Metrics.gauge metrics "fault_survivors")
    (float_of_int (Fault_plan.survivors plan))
