type t = {
  last : int array;
  drop : round:int -> robot:int -> bool;
}

let create ?(drop = fun ~round:_ ~robot:_ -> false) ~k () =
  if k < 1 then invalid_arg "Heartbeat.create: k must be >= 1";
  { last = Array.make k 0; drop }

let beat t ~robot ~round =
  if not (t.drop ~round ~robot) then t.last.(robot) <- round

let last_seen t robot = t.last.(robot)
let missed t ~robot ~round = round - t.last.(robot)
let stale t ~robot ~round ~after = missed t ~robot ~round > after
