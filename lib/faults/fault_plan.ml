module Rng = Bfdn_util.Rng

type mask =
  | No_mask
  | Rotating of int
  | Random of float
  | Half
  | Solo

type t = {
  k : int;
  seed : int;
  crash_at : int array;
  restart_at : int array;
  drop_writes : float;
  mask : mask;
}

(* Pure per-(round, robot) coin: a SplitMix64-style finalizer chain over
   (seed, salt, round, robot). No state, no allocation — the same slot
   always answers the same, however many times and from wherever it is
   asked (Env.allowed during select, Env.apply later the same round). *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let coin ~seed ~salt ~round ~robot p =
  p > 0.0
  &&
  let z = mix64 (Int64.add (Int64.of_int seed) golden_gamma) in
  let z = mix64 (Int64.add z (Int64.mul golden_gamma (Int64.of_int (salt + 1)))) in
  let z = mix64 (Int64.add z (Int64.mul golden_gamma (Int64.of_int (round + 1)))) in
  let z = mix64 (Int64.add z (Int64.mul golden_gamma (Int64.of_int (robot + 1)))) in
  let u = Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0 in
  u < p

let salt_mask = 1
let salt_drop = 2

let check_k k = if k < 1 then invalid_arg "Fault_plan: k must be >= 1"

let none ~k =
  check_k k;
  {
    k;
    seed = 0;
    crash_at = Array.make k max_int;
    restart_at = Array.make k max_int;
    drop_writes = 0.0;
    mask = No_mask;
  }

let check_mask = function
  | Rotating m when m < 2 ->
      invalid_arg "Fault_plan: rotating mask period must be >= 2"
  | Random p when p < 0.0 || p > 1.0 ->
      invalid_arg "Fault_plan: random mask probability must be in [0, 1]"
  | _ -> ()

let check_drops p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg "Fault_plan: drop_writes must be in [0, 1)"

let make ?(drop_writes = 0.0) ?(mask = No_mask) ?(seed = 0) ~k crashes =
  check_k k;
  check_mask mask;
  check_drops drop_writes;
  let t = { (none ~k) with seed; drop_writes; mask } in
  List.iter
    (fun (robot, round, restart) ->
      if robot < 0 || robot >= k then
        invalid_arg "Fault_plan.make: robot out of range";
      if round < 1 then invalid_arg "Fault_plan.make: crash round must be >= 1";
      if restart < -1 then
        invalid_arg "Fault_plan.make: restart delay must be >= -1";
      t.crash_at.(robot) <- round;
      t.restart_at.(robot) <-
        (if restart < 0 then max_int else round + max 1 restart))
    crashes;
  t

let random ~rng ~k ~rate ~window ~restart ?(drop_writes = 0.0) ?(mask = No_mask)
    () =
  check_k k;
  check_mask mask;
  check_drops drop_writes;
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Fault_plan.random: rate must be in [0, 1]";
  if window < 1 then invalid_arg "Fault_plan.random: window must be >= 1";
  if restart < -1 then invalid_arg "Fault_plan.random: restart must be >= -1";
  let crashes = ref [] in
  for robot = 0 to k - 1 do
    if Rng.coin rng rate then
      let round = Rng.int_in rng 1 window in
      crashes := (robot, round, restart) :: !crashes
  done;
  let seed = Rng.int rng 0x40000000 in
  make ~drop_writes ~mask ~seed ~k (List.rev !crashes)

(* ---- pure predicates ---- *)

let masked t ~round ~robot =
  match t.mask with
  | No_mask -> false
  | Rotating m -> (round + robot) mod m = 0
  | Random p -> coin ~seed:t.seed ~salt:salt_mask ~round ~robot p
  | Half -> robot >= (t.k + 1) / 2
  | Solo -> robot <> 0

let crashed t ~round ~robot =
  t.crash_at.(robot) <= round && round < t.restart_at.(robot)

let down t ~round ~robot = crashed t ~round ~robot || masked t ~round ~robot

let restarts_after t ~round ~robot =
  t.restart_at.(robot) <> max_int && t.restart_at.(robot) = round + 1

let drops_write t ~round ~robot =
  coin ~seed:t.seed ~salt:salt_drop ~round ~robot t.drop_writes

let quiet t =
  t.mask = No_mask && t.drop_writes = 0.0
  && Array.for_all (fun r -> r = max_int) t.crash_at

let survivors t =
  let n = ref 0 in
  for i = 0 to t.k - 1 do
    if t.crash_at.(i) = max_int || t.restart_at.(i) <> max_int then incr n
  done;
  !n

let stats t ~rounds =
  let crashes = ref 0 and restarts = ref 0 in
  for i = 0 to t.k - 1 do
    if t.crash_at.(i) < rounds then incr crashes;
    if t.restart_at.(i) <> max_int && t.restart_at.(i) <= rounds then
      incr restarts
  done;
  (!crashes, !restarts)

let equal (a : t) b = a = b

let mask_name = function
  | No_mask -> "none"
  | Rotating m -> Printf.sprintf "rotating(%d)" m
  | Random p -> Printf.sprintf "random(%.2f)" p
  | Half -> "half"
  | Solo -> "solo"

let describe t =
  let crashes = Array.fold_left (fun n r -> if r < max_int then n + 1 else n) 0 t.crash_at in
  let restarts =
    Array.fold_left (fun n r -> if r < max_int then n + 1 else n) 0 t.restart_at
  in
  Printf.sprintf "faults: %d crash(es), %d restart(s), mask=%s, drops=%.2f"
    crashes restarts (mask_name t.mask) t.drop_writes
