(** Root-whiteboard heartbeat board for crash detection.

    Every robot that acts in a round writes a heartbeat (conceptually on
    the root whiteboard it synchronizes with; the full-communication
    model makes the board global). A robot whose heartbeat goes stale
    for more than a timeout is presumed lost — the signal the
    crash-tolerant BFDN variant uses to reassign its anchor. The board
    honours the fault plan's write-drop probability: a dropped beat is
    silently lost, so detection under drops is {e delayed}, never
    unsound (a live robot keeps beating and is eventually re-seen). *)

type t

val create : ?drop:(round:int -> robot:int -> bool) -> k:int -> unit -> t
(** [drop] (default: never) decides which writes are lost — pass
    {!Fault_plan.drops_write} to model an unreliable whiteboard. All
    robots start as seen at round 0. *)

val beat : t -> robot:int -> round:int -> unit
(** Record a heartbeat, unless the drop predicate eats the write. *)

val last_seen : t -> int -> int
(** Round of the robot's last surviving heartbeat (0 initially). *)

val missed : t -> robot:int -> round:int -> int
(** [round - last_seen]: consecutive silent rounds as of [round]. *)

val stale : t -> robot:int -> round:int -> after:int -> bool
(** [missed > after] — the detection predicate. *)
