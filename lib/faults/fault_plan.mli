(** Pure, seeded fault schedules.

    A fault plan is immutable scalar data deciding, as a pure function of
    [(round, robot)], which robots are unavailable and when a crashed
    robot re-enters the exploration at the root. Because every predicate
    is pure — no cursor, no mutation — the same plan gives bit-identical
    answers whether it is queried from [Env.allowed] during an
    algorithm's [select] or from [Env.apply] later in the same round,
    and whether the run executes on one engine worker or many. Plans are
    compiled from scenario parameters (see {!Bfdn_scenario}), so they
    ride the JSON spec wire format rather than being closures.

    Vocabulary (the robot-side dual of {!Bfdn_sim.Adversary}'s
    world-side policies):

    - {e crash}: robot [i] stops moving at round [r] (permanently, or
      until a restart);
    - {e restart}: [d] rounds after its crash the robot re-enters {e at
      the root} — the replacement-worker model: a fresh robot walks in
      from the dock with no memory of its predecessor's route;
    - {e write drops}: each whiteboard (heartbeat) write is silently
      lost with probability [drop_writes] — detection of lost robots
      becomes delayed rather than instant;
    - {e move masks}: the per-round availability masks of the Section
      4.2 break-down model (the E6 vocabulary: rotating thirds, random
      coin, half fleet dead, only one mover), composed with crashes. *)

type mask =
  | No_mask
  | Rotating of int
      (** robot [i] is blocked in round [r] iff [(r + i) mod m = 0]
          ([m >= 2]: every robot moves [m-1] rounds out of [m]) *)
  | Random of float  (** blocked with probability [p], per (round, robot) *)
  | Half  (** robots [ceil(k/2) ..] never move ("half fleet dead") *)
  | Solo  (** only robot 0 ever moves *)

type t = {
  k : int;
  seed : int;  (** keys the pure [Random] and write-drop coins *)
  crash_at : int array;  (** length [k]; [max_int] = never crashes *)
  restart_at : int array;
      (** length [k]; [max_int] = never restarts; always [> crash_at] *)
  drop_writes : float;  (** whiteboard write-drop probability *)
  mask : mask;
}

val none : k:int -> t
(** The quiet plan: no crashes, no mask, no drops. *)

val make :
  ?drop_writes:float ->
  ?mask:mask ->
  ?seed:int ->
  k:int ->
  (int * int * int) list ->
  t
(** [make ~k crashes] with explicit [(robot, crash_round, restart_delay)]
    entries; [restart_delay = -1] means the robot never comes back. The
    last entry wins when a robot is listed twice.
    @raise Invalid_argument on a robot out of range, [crash_round < 1]
    or [restart_delay < -1]. *)

val random :
  rng:Bfdn_util.Rng.t ->
  k:int ->
  rate:float ->
  window:int ->
  restart:int ->
  ?drop_writes:float ->
  ?mask:mask ->
  unit ->
  t
(** Seeded sampling: each robot independently crashes with probability
    [rate], at a round uniform in [1, window]; [restart >= 0] brings
    every crashed robot back that many rounds later ([-1]: never). The
    pure-coin [seed] is drawn from [rng] too, so the whole plan is a
    deterministic function of the generator state. *)

(** {2 Pure predicates} *)

val down : t -> round:int -> robot:int -> bool
(** The robot cannot move this round (crashed or masked). *)

val crashed : t -> round:int -> robot:int -> bool
(** In its crash window specifically ([crash_at <= round < restart_at]). *)

val restarts_after : t -> round:int -> robot:int -> bool
(** The robot re-enters at the root {e at the end of} this round (the
    last round of its crash window); true for exactly one round. *)

val drops_write : t -> round:int -> robot:int -> bool
(** Whether a whiteboard write by [robot] this round is silently lost —
    a pure coin keyed on [(seed, round, robot)]. *)

val quiet : t -> bool
(** No crashes scheduled, no mask, no write drops: behaviourally
    identical to running without a fault hook at all. *)

val survivors : t -> int
(** Robots that never crash permanently (never crash, or always
    restart). Masked-forever robots ([Half], [Solo]) still count — they
    are alive, merely pinned. *)

val stats : t -> rounds:int -> int * int
(** [(crashes, restarts)] that a run of [rounds] rounds injected. *)

val equal : t -> t -> bool

val describe : t -> string
(** One-line rendering for labels, e.g.
    ["faults: 2 crash(es), 1 restart(s), mask=rotating(3), drops=0.10"]. *)
