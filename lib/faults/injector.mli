(** Compile a {!Fault_plan} into the simulator's fault hook.

    The hook is a record of pure predicates over the plan — no cursor,
    no mutable schedule — so injection is deterministic under any
    interleaving: the engine's sharded replay produces identical traces
    for any worker count (asserted by the faults test-suite). Metrics
    are derived arithmetically from the plan after the run rather than
    counted during it, keeping the injected path allocation-free. *)

val hook : Fault_plan.t -> Bfdn_sim.Env.fault_hook
(** An enabled hook backed by the plan's predicates. For a {!Fault_plan.quiet}
    plan this returns {!Bfdn_sim.Env.fault_noop} instead, so "faults
    configured but empty" costs exactly as much as no faults at all. *)

val hook_opt : Fault_plan.t option -> Bfdn_sim.Env.fault_hook
(** [hook] through an option; [None] is {!Bfdn_sim.Env.fault_noop}. *)

val record : metrics:Bfdn_obs.Metrics.t -> Fault_plan.t -> rounds:int -> unit
(** Publish the plan's injection counts for an elapsed run into a
    registry: counters [faults_injected] (crashes), [fault_restarts]
    and gauge [fault_survivors]. *)
