(** Monotonic clock for phase timing and latency probes.

    Unlike [Unix.gettimeofday] this never jumps backwards (NTP, DST), so
    differences are safe to feed into histograms. The reading is returned
    as an immediate [int] of nanoseconds: taking a timestamp allocates
    nothing, which the instrumented round loop relies on. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary origin. Only differences are
    meaningful. *)

val now : unit -> float
(** Same clock in seconds. *)

val ns_to_s : int -> float
(** Convert a nanosecond difference to seconds. *)
