(** Arithmetic helpers shared by the guarantee formulas and algorithms. *)

val log_nat : int -> float
(** Natural logarithm of a positive integer. *)

val log2i : int -> int
(** [log2i n] is [floor (log2 n)] for [n >= 1], computed exactly. *)

val ceil_log2 : int -> int
(** Smallest [e] with [2^e >= n], for [n >= 1]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is the ceiling of [a/b] for [a >= 0], [b > 0]. *)

val pow : int -> int -> int
(** [pow b e] integer power, [e >= 0]. Silently wraps on overflow — use
    {!pow_cap} wherever the result sizes an allocation. *)

val mul_cap : int -> int -> int
(** Saturating multiply of non-negative ints: [max_int] instead of
    wrapping. For overflow-safe size estimates (huge-tier generator
    guards). @raise Invalid_argument on a negative factor. *)

val add_cap : int -> int -> int
(** Saturating add of non-negative ints. *)

val pow_cap : int -> int -> int
(** Saturating integer power of non-negative ints: [pow] that answers
    [max_int] instead of wrapping, so size comparisons like
    [pow_cap arity depth >= n] stay correct at any magnitude. *)

val iroot : int -> int -> int
(** [iroot x l] is the largest [r >= 1] with [r^l <= x], for [x >= 1],
    [l >= 1]. *)

val fpow : float -> float -> float
(** Floating-point power (alias of [( ** )], named to avoid precedence
    surprises inside formulas). *)

val clamp : int -> int -> int -> int
(** [clamp lo hi x] limits [x] to the interval [\[lo, hi\]]. *)
