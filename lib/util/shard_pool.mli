(** Persistent domain team for sharding a data-parallel phase.

    [run] partitions the index range over a fixed set of warm domains
    with deterministic contiguous chunks, so a phase whose per-index
    work is independent (no shared mutable state across indices) can be
    spread over cores {e without} changing any observable result: shard
    [w] always owns indices [n*w/shards, n*(w+1)/shards), and the
    caller blocks until every chunk has finished. The simulator uses
    this for the route-computation pass of BFDN's select phase, keeping
    1-shard and N-shard runs bit-for-bit identical. *)

type t

val create : shards:int -> t
(** Spawn [shards - 1] worker domains ([shards >= 1]); the calling
    domain acts as shard 0 during {!run}. A 1-shard pool spawns nothing
    and [run] degenerates to a plain loop. *)

val shards : t -> int

val run : t -> n:int -> (int -> unit) -> unit
(** [run t ~n f] applies [f] to every index in [0, n), sharded. [f]
    must be safe to call concurrently on distinct indices. Worker
    exceptions are re-raised here (first one wins) after all chunks
    settle. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. [run] must not be
    called afterwards. *)
