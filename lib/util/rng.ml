(* SplitMix64: fast, high-quality, splittable. Reference: Steele, Lea,
   Flood, "Fast splittable pseudorandom number generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t i =
  if i < 0 then invalid_arg "Rng.split: negative index";
  (* Child [i] is keyed on the parent's *current* state and the index, and
     the parent is not advanced: the derivation is a pure function, so the
     family of child streams is independent of the order (or concurrency)
     in which they are requested. The double mix decorrelates neighbouring
     indices beyond the single SplitMix64 finalizer. *)
  let z = Int64.add t.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (mix64 z) }

let copy t = { state = t.state }
let equal a b = Int64.equal a.state b.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* [to_int] keeps the low 63 bits, whose top bit would land in OCaml's
     sign bit; clear it explicitly. *)
  let mask = Int64.to_int (bits64 t) land max_int in
  mask mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (u /. 9007199254740992.0)

let bool t = Int64.logand (bits64 t) 1L = 1L
let coin t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let x = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- x
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
