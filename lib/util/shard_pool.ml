(* A persistent team of domains for sharding one data-parallel phase of
   a hot loop. Unlike the batch engine's job pool (lib/engine/Pool),
   which queues heterogeneous closures, this pool re-runs ONE indexed
   function over contiguous chunks every invocation, round after round:
   the domains stay warm across thousands of [run] calls, so the
   per-round cost is two lock/broadcast handshakes, not a domain spawn.

   Chunking is positional and deterministic — shard [w] always owns
   indices [n*w/s, n*(w+1)/s) — so any per-index writes land in the same
   slots regardless of scheduling. The caller participates as shard 0,
   keeping a 2-shard pool at one spawned domain. *)

type t = {
  shards : int;
  mutex : Mutex.t;
  work : Condition.t;
  finished : Condition.t;
  mutable gen : int; (* bumped once per [run]; workers key off it *)
  mutable n : int;
  mutable f : int -> unit;
  mutable remaining : int;
  mutable failure : exn option; (* first worker exception, re-raised by [run] *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let chunk ~n ~shards w = (n * w / shards, n * (w + 1) / shards)

let run_chunk t w =
  let lo, hi = chunk ~n:t.n ~shards:t.shards w in
  for i = lo to hi - 1 do
    t.f i
  done

let worker t w () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while t.gen = !seen && not t.stop do
      Condition.wait t.work t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      running := false
    end
    else begin
      seen := t.gen;
      Mutex.unlock t.mutex;
      (try run_chunk t w
       with e ->
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some e;
         Mutex.unlock t.mutex);
      Mutex.lock t.mutex;
      t.remaining <- t.remaining - 1;
      if t.remaining = 0 then Condition.signal t.finished;
      Mutex.unlock t.mutex
    end
  done

let create ~shards =
  if shards < 1 then invalid_arg "Shard_pool.create: shards must be >= 1";
  let t =
    {
      shards;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      gen = 0;
      n = 0;
      f = ignore;
      remaining = 0;
      failure = None;
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (shards - 1) (fun w -> Domain.spawn (worker t (w + 1)));
  t

let shards t = t.shards

let noop = ignore

let run t ~n f =
  if t.shards = 1 || n <= 1 then
    for i = 0 to n - 1 do
      f i
    done
  else begin
    Mutex.lock t.mutex;
    t.n <- n;
    t.f <- f;
    t.remaining <- t.shards - 1;
    t.gen <- t.gen + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    (* The caller is shard 0: on a machine with [shards] free cores all
       chunks progress concurrently; on fewer cores the scheduler
       time-slices and the result is identical (chunks never overlap). *)
    run_chunk t 0;
    Mutex.lock t.mutex;
    while t.remaining > 0 do
      Condition.wait t.finished t.mutex
    done;
    (* Break the reference to the caller's closure so it can be
       collected between rounds. *)
    t.f <- noop;
    let fail = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match fail with None -> () | Some e -> raise e
  end

let shutdown t =
  Mutex.lock t.mutex;
  if not t.stop then begin
    t.stop <- true;
    Condition.broadcast t.work
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
