let log_nat n =
  if n <= 0 then invalid_arg "Mathx.log_nat: non-positive argument";
  log (float_of_int n)

let log2i n =
  if n < 1 then invalid_arg "Mathx.log2i: argument < 1";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Mathx.ceil_log2: argument < 1";
  let f = log2i n in
  if 1 lsl f = n then f else f + 1

let ceil_div a b =
  if b <= 0 then invalid_arg "Mathx.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Mathx.ceil_div: negative dividend";
  (a + b - 1) / b

let pow b e =
  if e < 0 then invalid_arg "Mathx.pow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else if e land 1 = 1 then go (acc * b) (b * b) (e lsr 1)
    else go acc (b * b) (e lsr 1)
  in
  go 1 b e

let mul_cap a b =
  if a < 0 || b < 0 then invalid_arg "Mathx.mul_cap: negative factor";
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let add_cap a b =
  if a < 0 || b < 0 then invalid_arg "Mathx.add_cap: negative addend";
  if a > max_int - b then max_int else a + b

let pow_cap b e =
  if b < 0 then invalid_arg "Mathx.pow_cap: negative base";
  if e < 0 then invalid_arg "Mathx.pow_cap: negative exponent";
  let rec go acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul_cap acc b else acc in
      if e <= 1 then acc else go acc (mul_cap b b) (e lsr 1)
    end
  in
  go 1 b e

let iroot x l =
  if x < 1 then invalid_arg "Mathx.iroot: argument < 1";
  if l < 1 then invalid_arg "Mathx.iroot: order < 1";
  if l = 1 then x
  else begin
    (* Float estimate then exact adjustment. *)
    let est =
      int_of_float (Float.round (float_of_int x ** (1.0 /. float_of_int l)))
    in
    let r = ref (max 1 est) in
    while pow !r l > x do
      decr r
    done;
    while pow (!r + 1) l <= x do
      incr r
    done;
    !r
  end

let fpow = ( ** )

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x
