(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every randomized component of the library (tree generators, adversary
    strategies, workload samplers) draws from an explicit [Rng.t] so that all
    experiments are reproducible from a single integer seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> int -> t
(** [split t i] derives the [i]-th child generator ([i >= 0]) of [t]'s
    current state {e without advancing} [t]: the derivation is a pure
    function of [(state, i)], so equal parents yield equal children
    regardless of the order in which children are requested. Distinct
    indices yield independent streams; the engine uses this to shard one
    root seed across a whole batch of jobs deterministically. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val equal : t -> t -> bool
(** State equality. Every draw advances the state, so
    [equal before after] over a bracketed computation proves the
    computation drew nothing — the batch engine uses this to detect
    draw-free algorithm runs (whose sibling seeds are then provably
    identical). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0..n-1]. *)
