(* Monotonic time for profiling probes. Backed by bechamel's
   clock_gettime(CLOCK_MONOTONIC) stub — a [@noalloc] external returning
   an unboxed int64 — immediately narrowed to an immediate [int] so hot
   paths that read the clock allocate nothing. 2^62 ns is ~146 years of
   uptime, so the narrowing cannot overflow in practice. *)

let now_ns () = Int64.to_int (Monotonic_clock.now ())

let now () = float_of_int (now_ns ()) *. 1e-9

let ns_to_s ns = float_of_int ns *. 1e-9
