module Tree = Bfdn_trees.Tree
module Tree_stats = Bfdn_trees.Tree_stats
module Mathx = Bfdn_util.Mathx

(* Lazily materialized generator worlds: the deterministic instance
   families of {!Bfdn_trees.Tree_gen}, produced node by node as the
   exploration reveals them instead of being built up front. Exploring a
   prefix of an n=10^7 world then costs O(explored) memory end to end
   (this module grows geometrically, {!Partial_tree}/{!Env}/the algorithm
   scratch follow {!Partial_tree.id_bound}).

   Mechanics follow {!Adversary}: child ids are allocated densely at the
   parent's reveal (promise time), before anything about the child's own
   subtree is decided, so the discovered tree never leaks hidden
   information. Because one reveal promises all children of a node at
   once, the children occupy consecutive ids and the per-node child table
   is just (first_kid, nkids) — no per-node heap block.

   Shapes are driven by a per-node [role] decided at promise time from
   the parent's role, so every family is exploration-order independent
   (the "random" family derives child counts from hash(seed, id), again
   order-independent; only its budget truncation tail can depend on
   reveal order, and it is a deterministic function of the exploration). *)

type family =
  | Path
  | Star
  | Complete of int (* arity; children iff depth < target depth *)
  | Spider of int * int (* legs, leg_len *)
  | Caterpillar of int * int (* spine, legs_per_node *)
  | Comb of int * int (* spine, tooth_len *)
  | Broom of int * int (* handle, bristles *)
  | Random of int (* seed *)

type t = {
  family : family;
  name : string; (* constructor arguments, for [materialize] *)
  req_n : int;
  req_depth_hint : int;
  req_seed : int;
  capacity : int; (* exact node count of the family instance *)
  target_depth : int; (* Complete only *)
  mutable parents : int array; (* -1 until promised *)
  mutable depths : int array;
  mutable role : int array; (* family-specific, set at promise time *)
  mutable first_kid : int array; (* -1 until revealed *)
  mutable nkids : int array; (* -1 until revealed *)
  mutable len : int; (* ids 0..len-1 are promised *)
  mutable next_id : int; (* = len; alias kept for clarity *)
  mutable max_depth : int;
  mutable max_degree : int;
  mutable revealed : int;
  acc : Tree_stats.Acc.acc; (* streaming stats over revealed nodes *)
}

(* SplitMix64-style finalizer over (seed, node id): a pure hash, so the
   "random" family's draws do not depend on exploration order. *)
let hash2 seed v =
  let z = seed lxor (v * 0x9E3779B97F4A7C1) in
  let z = (z lxor (z lsr 30)) * 0xBF58476D1CE4E5B in
  let z = (z lxor (z lsr 27)) * 0x94D049BB133111E in
  (z lxor (z lsr 31)) land max_int

let families = [ "path"; "star"; "binary"; "ternary"; "spider"; "caterpillar"; "comb"; "broom"; "random" ]

let supported name = List.mem name families

(* Size derivations mirror {!Tree_gen.of_family}, so [scale=lazy] and
   [scale=eager] runs of one spec describe the same instance shape. All
   arithmetic saturates: a nonsense huge parameter rejects cleanly. *)
let make ~family:name ~n ~depth_hint ~seed =
  let req_n = n and req_depth_hint = depth_hint in
  let n = max 1 n in
  let d = max 1 depth_hint in
  let family, capacity, target_depth =
    match name with
    | "path" -> (Path, n, 0)
    | "star" -> (Star, n, 0)
    | "binary" ->
        let depth = max 1 (Mathx.log2i (max 2 n)) in
        let cap =
          let top = Mathx.pow_cap 2 (depth + 1) in
          if top = max_int then max_int else top - 1
        in
        (Complete 2, cap, depth)
    | "ternary" ->
        let depth =
          let rec fit depth =
            if Mathx.pow_cap 3 (depth + 1) >= n then depth else fit (depth + 1)
          in
          max 1 (fit 1)
        in
        let cap =
          let top = Mathx.pow_cap 3 (depth + 1) in
          if top = max_int then max_int else (top - 1) / 2
        in
        (Complete 3, cap, depth)
    | "spider" ->
        let legs = max 1 (n / max 1 d) in
        (Spider (legs, d), Mathx.add_cap 1 (Mathx.mul_cap legs d), 0)
    | "caterpillar" ->
        let legs = max 1 ((n / max 1 d) - 1) in
        ( Caterpillar (d, legs),
          Mathx.mul_cap (d + 1) (Mathx.add_cap legs 1),
          0 )
    | "comb" ->
        let tooth = max 1 ((n / max 1 d) - 1) in
        ( Comb (d, tooth),
          Mathx.add_cap 1 (Mathx.mul_cap d (Mathx.add_cap tooth 1)),
          0 )
    | "broom" ->
        let bristles = max 1 (n - d - 1) in
        (Broom (d, bristles), Mathx.add_cap 1 (Mathx.add_cap d bristles), 0)
    | "random" -> (Random seed, n, 0)
    | other -> invalid_arg ("Lazy_world.make: unsupported family " ^ other)
  in
  if capacity > Sys.max_array_length then
    invalid_arg "Lazy_world.make: instance exceeds Sys.max_array_length";
  let cap0 = min capacity 1024 in
  let t =
    {
      family;
      name;
      req_n;
      req_depth_hint;
      req_seed = seed;
      capacity;
      target_depth;
      parents = Array.make cap0 (-1);
      depths = Array.make cap0 0;
      role = Array.make cap0 0;
      first_kid = Array.make cap0 (-1);
      nkids = Array.make cap0 (-1);
      len = 1;
      next_id = 1;
      max_depth = 0;
      max_degree = 0;
      revealed = 0;
      acc = Tree_stats.Acc.create ();
    }
  in
  (* Root roles: spine for the chained families, 0 elsewhere. *)
  (match family with
  | Caterpillar _ | Comb _ -> t.role.(0) <- -1
  | _ -> ());
  t

let capacity t = t.capacity
let nodes_built t = t.next_id
let nodes_revealed t = t.revealed
let stats t = Tree_stats.Acc.stats t.acc

let grow_int_array a len cap fill =
  let bigger = Array.make cap fill in
  Array.blit a 0 bigger 0 len;
  bigger

let ensure t id =
  if id >= Array.length t.parents then begin
    let cap = min t.capacity (max (id + 1) (2 * Array.length t.parents)) in
    let old = t.len in
    t.parents <- grow_int_array t.parents old cap (-1);
    t.depths <- grow_int_array t.depths old cap 0;
    t.role <- grow_int_array t.role old cap 0;
    t.first_kid <- grow_int_array t.first_kid old cap (-1);
    t.nkids <- grow_int_array t.nkids old cap (-1)
  end

(* How many children [node] wants and, via [child_role], which role each
   promised child gets (by its index among the node's children). *)
let wanted t node =
  let depth = t.depths.(node) in
  match t.family with
  | Path -> if depth < t.capacity - 1 then 1 else 0
  | Star -> if node = 0 then t.capacity - 1 else 0
  | Complete arity -> if depth < t.target_depth then arity else 0
  | Spider (legs, leg_len) ->
      if node = 0 then (if leg_len = 0 then 0 else legs)
      else if depth < leg_len then 1
      else 0
  | Caterpillar (spine, legs) ->
      (* Spine node at depth i: [legs] leaves, plus the next spine node
         last (matching Tree_gen's port order) while i < spine. *)
      if t.role.(node) = -1 then legs + if depth < spine then 1 else 0
      else 0
  | Comb (spine, tooth_len) ->
      if t.role.(node) = -1 then
        (* Spine node: a tooth (unless teeth are empty) then the next
           spine node, while spine steps remain. Tree_gen's port order
           puts the tooth first. *)
        if depth < spine then (if tooth_len = 0 then 1 else 2) else 0
      else if t.role.(node) > 0 then 1 (* tooth with edges remaining *)
      else 0
  | Broom (handle, bristles) ->
      if depth < handle then 1 else if depth = handle then bristles else 0
  | Random seed -> 1 + (hash2 seed node mod 3)

let child_role t node idx =
  match t.family with
  | Caterpillar (spine, legs) ->
      ignore spine;
      if t.role.(node) = -1 && idx = legs then -1 (* the spine child *) else 0
  | Comb (_, tooth_len) ->
      if t.role.(node) = -1 then
        if tooth_len > 0 && idx = 0 then tooth_len - 1 (* tooth start *)
        else -1 (* the spine child *)
      else t.role.(node) - 1 (* deeper along the tooth *)
  | _ -> 0

let reveal_degree t ~node ~arriving:_ ~round:_ =
  if node < 0 || node >= t.len then
    invalid_arg "Lazy_world: reveal of an unpromised node";
  if t.nkids.(node) >= 0 then
    invalid_arg "Lazy_world: node revealed twice (world misuse)";
  let depth = t.depths.(node) in
  let remaining = t.capacity - t.next_id in
  (* For every family but Random the capacity is exact, so the clamp
     never binds; Random spends the budget down to zero. *)
  let promised = min (max 0 (wanted t node)) remaining in
  let first = t.next_id in
  if promised > 0 then begin
    ensure t (first + promised - 1);
    for idx = 0 to promised - 1 do
      let id = first + idx in
      t.parents.(id) <- node;
      t.depths.(id) <- depth + 1;
      t.role.(id) <- child_role t node idx
    done;
    t.next_id <- first + promised;
    t.len <- t.next_id;
    if depth + 1 > t.max_depth then t.max_depth <- depth + 1
  end;
  t.first_kid.(node) <- (if promised > 0 then first else -1);
  t.nkids.(node) <- promised;
  t.revealed <- t.revealed + 1;
  Tree_stats.Acc.add t.acc ~depth ~children:promised;
  let degree = promised + if node = 0 then 0 else 1 in
  if degree > t.max_degree then t.max_degree <- degree;
  degree

let child t v p =
  (* Port 0 of a non-root node is its parent; the environment only asks
     for dangling (child) ports. *)
  let idx = if v = 0 then p else p - 1 in
  if v < 0 || v >= t.len || t.nkids.(v) < 0 || idx < 0 || idx >= t.nkids.(v)
  then invalid_arg "Lazy_world.child: not a promised child port";
  t.first_kid.(v) + idx

let frozen t = Tree.of_parents (Array.sub t.parents 0 (max 1 t.next_id))

let world t =
  {
    Env.w_capacity = t.capacity;
    w_root = 0;
    w_degree = (fun ~node ~arriving ~round -> reveal_degree t ~node ~arriving ~round);
    w_child = (fun v p -> child t v p);
    w_stats = (fun () -> (t.next_id, t.max_depth, t.max_degree));
    w_tree = (fun () -> frozen t);
  }

(* The fully expanded instance, as a plain eager tree: run the same rules
   on a fresh copy, revealing every node in id order (parents always
   precede children, so this is valid). This is the canonical
   materialization — the shape any exploration of a non-Random family
   discovers, and a breadth-first exploration of a Random one. Costs
   O(n); the point of comparison for the huge tier's RSS baseline. *)
let materialize t =
  let fresh =
    make ~family:t.name ~n:t.req_n ~depth_hint:t.req_depth_hint
      ~seed:t.req_seed
  in
  let v = ref 0 in
  while !v < fresh.next_id do
    ignore (reveal_degree fresh ~node:!v ~arriving:1 ~round:0);
    incr v
  done;
  frozen fresh
