type node = int

type port_state = To_parent | Dangling | Child of node

(* Per-port encoding inside [port_child]: -1 = leads to parent,
   -2 = dangling, otherwise the explored child id. *)
let enc_parent = -1
let enc_dangling = -2

(* Open-node bucket: a swap-remove dynamic array. Iteration order is
   deterministic — a pure function of the add/remove call sequence (which
   the synchronous simulator fully determines): nodes appear in insertion
   order except that removing a node moves the bucket's last node into the
   freed slot. Consumers that need a canonical order must sort (the list
   API does); the fold API exposes the raw order for O(1)-per-node scans
   whose reductions are order-independent. *)
type bucket = { mutable nodes : int array; mutable len : int }

type t = {
  root : node;
  explored : bool array;
  nports : int array;
  parents : int array;
  parent_ports : int array;
      (* port on the parent leading down to the node; -1 for the root and
         for nodes whose parent edge was never resolved (fixtures only) *)
  depths : int array;
  port_child : int array array;
  dangling_cnt : int array;
  subtree_dangling : int array;
  open_at : bucket option array; (* indexed by depth *)
  in_bucket : int array; (* index of the node inside its depth bucket; -1 *)
  mutable min_open_ptr : int;
  mutable total_dangling : int;
  mutable num_explored : int;
}

let root t = t.root
let is_explored t v = t.explored.(v)
let num_explored t = t.num_explored
let num_dangling t = t.total_dangling
let complete t = t.total_dangling = 0

let check_explored t v name =
  if not t.explored.(v) then invalid_arg (name ^ ": unexplored node")

let num_ports t v =
  check_explored t v "Partial_tree.num_ports";
  t.nports.(v)

let port t v p =
  check_explored t v "Partial_tree.port";
  if p < 0 || p >= t.nports.(v) then invalid_arg "Partial_tree.port: bad port";
  let e = t.port_child.(v).(p) in
  if e = enc_parent then To_parent
  else if e = enc_dangling then Dangling
  else Child e

let is_port_dangling t v p =
  check_explored t v "Partial_tree.is_port_dangling";
  t.port_child.(v).(p) = enc_dangling

let port_child_id t v p =
  check_explored t v "Partial_tree.port_child_id";
  let e = t.port_child.(v).(p) in
  if e >= 0 then e else -1

let iter_dangling_ports t v f =
  check_explored t v "Partial_tree.iter_dangling_ports";
  let ports = t.port_child.(v) in
  for p = 0 to Array.length ports - 1 do
    if ports.(p) = enc_dangling then f p
  done

let iter_explored_children t v f =
  check_explored t v "Partial_tree.iter_explored_children";
  let ports = t.port_child.(v) in
  for p = 0 to Array.length ports - 1 do
    if ports.(p) >= 0 then f p ports.(p)
  done

let dangling_ports t v =
  check_explored t v "Partial_tree.dangling_ports";
  let acc = ref [] in
  let ports = t.port_child.(v) in
  for p = Array.length ports - 1 downto 0 do
    if ports.(p) = enc_dangling then acc := p :: !acc
  done;
  !acc

let explored_children t v =
  check_explored t v "Partial_tree.explored_children";
  let acc = ref [] in
  let ports = t.port_child.(v) in
  for p = Array.length ports - 1 downto 0 do
    if ports.(p) >= 0 then acc := (p, ports.(p)) :: !acc
  done;
  !acc

let parent t v =
  check_explored t v "Partial_tree.parent";
  if v = t.root then None else Some t.parents.(v)

let parent_id t v =
  check_explored t v "Partial_tree.parent_id";
  if v = t.root then -1 else t.parents.(v)

let parent_port t v =
  check_explored t v "Partial_tree.parent_port";
  t.parent_ports.(v)

let depth_of t v =
  check_explored t v "Partial_tree.depth_of";
  t.depths.(v)

let is_open t v = t.explored.(v) && t.dangling_cnt.(v) > 0
let is_closed t v = t.explored.(v) && t.dangling_cnt.(v) = 0
let subtree_open t v =
  check_explored t v "Partial_tree.subtree_open";
  t.subtree_dangling.(v) > 0

let max_depth_index t = Array.length t.open_at - 1

let bucket_len t d =
  match t.open_at.(d) with None -> 0 | Some b -> b.len

let min_open_depth_raw t =
  if t.total_dangling = 0 then -1
  else begin
    let d = ref t.min_open_ptr in
    while !d <= max_depth_index t && bucket_len t !d = 0 do
      incr d
    done;
    t.min_open_ptr <- !d;
    if !d > max_depth_index t then -1 else !d
  end

let min_open_depth t =
  let d = min_open_depth_raw t in
  if d < 0 then None else Some d

let num_open_at_depth t d =
  if d < 0 || d > max_depth_index t then 0 else bucket_len t d

let fold_open_at_depth t d ~init ~f =
  if d < 0 || d > max_depth_index t then init
  else
    match t.open_at.(d) with
    | None -> init
    | Some b ->
        let acc = ref init in
        for i = 0 to b.len - 1 do
          acc := f !acc b.nodes.(i)
        done;
        !acc

let open_nodes_at_depth t d =
  (* Canonical (sorted) order, independent of the bucket's internal
     swap-remove order. *)
  List.sort compare (fold_open_at_depth t d ~init:[] ~f:(fun acc v -> v :: acc))

let open_nodes_at_min_depth t =
  match min_open_depth t with None -> [] | Some d -> open_nodes_at_depth t d

let is_ancestor t a v =
  check_explored t a "Partial_tree.is_ancestor";
  check_explored t v "Partial_tree.is_ancestor";
  let da = t.depths.(a) in
  let rec up v = if t.depths.(v) < da then false else v = a || up t.parents.(v) in
  up v

let ports_from_root t v =
  check_explored t v "Partial_tree.ports_from_root";
  (* Walk up through the parent-port cache: O(depth), no port-array scans. *)
  let rec up v acc =
    if v = t.root then acc
    else begin
      let p = t.parent_ports.(v) in
      if p < 0 then invalid_arg "Partial_tree.ports_from_root: broken parent link";
      up t.parents.(v) (p :: acc)
    end
  in
  up v []

let fold_explored t ~init ~f =
  let acc = ref init in
  for v = 0 to Array.length t.explored - 1 do
    if t.explored.(v) then acc := f !acc v
  done;
  !acc

let bucket t d =
  match t.open_at.(d) with
  | Some b -> b
  | None ->
      let b = { nodes = Array.make 8 (-1); len = 0 } in
      t.open_at.(d) <- Some b;
      b

let add_open t v =
  let d = t.depths.(v) in
  let b = bucket t d in
  let cap = Array.length b.nodes in
  if b.len = cap then begin
    let nodes = Array.make (2 * cap) (-1) in
    Array.blit b.nodes 0 nodes 0 cap;
    b.nodes <- nodes
  end;
  b.nodes.(b.len) <- v;
  t.in_bucket.(v) <- b.len;
  b.len <- b.len + 1;
  if d < t.min_open_ptr then t.min_open_ptr <- d

let remove_open t v =
  let i = t.in_bucket.(v) in
  if i >= 0 then begin
    match t.open_at.(t.depths.(v)) with
    | None -> ()
    | Some b ->
        let last = b.nodes.(b.len - 1) in
        b.nodes.(i) <- last;
        t.in_bucket.(last) <- i;
        b.len <- b.len - 1;
        t.in_bucket.(v) <- -1
  end

let bump_path t v delta =
  let u = ref v in
  let continue = ref true in
  while !continue do
    t.subtree_dangling.(!u) <- t.subtree_dangling.(!u) + delta;
    if !u = t.root then continue := false else u := t.parents.(!u)
  done

let check_invariants t =
  let fail msg = invalid_arg ("Partial_tree.check_invariants: " ^ msg) in
  let n = Array.length t.explored in
  let expected_total = ref 0 in
  let expected_sub = Array.make n 0 in
  for v = 0 to n - 1 do
    if t.explored.(v) then begin
      let cnt =
        Array.fold_left
          (fun acc e -> if e = enc_dangling then acc + 1 else acc)
          0 t.port_child.(v)
      in
      if cnt <> t.dangling_cnt.(v) then fail "dangling_cnt mismatch";
      expected_total := !expected_total + cnt;
      (* Charge the dangling edges of [v] to every ancestor. *)
      let u = ref v in
      let continue = ref true in
      while !continue do
        expected_sub.(!u) <- expected_sub.(!u) + cnt;
        if !u = t.root then continue := false else u := t.parents.(!u)
      done;
      (* Parent-port cache: when set, the parent's port must lead back. *)
      if v <> t.root then begin
        let pp = t.parent_ports.(v) in
        let parent_ports_arr = t.port_child.(t.parents.(v)) in
        if pp >= 0 then begin
          if pp >= Array.length parent_ports_arr || parent_ports_arr.(pp) <> v
          then fail "parent_port cache points to the wrong port"
        end
        else if Array.exists (fun e -> e = v) parent_ports_arr then
          fail "parent_port cache missing for a resolved child"
      end
      else if t.parent_ports.(v) <> -1 then fail "root has a parent_port";
      (* Open-node index: in the bucket iff open, at the recorded slot. *)
      let i = t.in_bucket.(v) in
      if (cnt > 0) <> (i >= 0) then fail "open-node index mismatch";
      if i >= 0 then
        match t.open_at.(t.depths.(v)) with
        | None -> fail "in_bucket set but no bucket at the node's depth"
        | Some b ->
            if i >= b.len || b.nodes.(i) <> v then
              fail "in_bucket slot does not hold the node"
    end
    else if t.in_bucket.(v) <> -1 then fail "unexplored node indexed as open"
  done;
  (* Every bucket slot points back through in_bucket, at the right depth. *)
  Array.iteri
    (fun d b ->
      match b with
      | None -> ()
      | Some b ->
          for i = 0 to b.len - 1 do
            let v = b.nodes.(i) in
            if v < 0 || v >= n || not t.explored.(v) then
              fail "bucket holds an invalid node";
            if t.in_bucket.(v) <> i then fail "bucket slot/in_bucket disagree";
            if t.depths.(v) <> d then fail "bucket holds a node of another depth"
          done)
    t.open_at;
  if !expected_total <> t.total_dangling then fail "total_dangling mismatch";
  for v = 0 to n - 1 do
    if t.explored.(v) && expected_sub.(v) <> t.subtree_dangling.(v) then
      fail "subtree_dangling mismatch"
  done;
  (match min_open_depth t with
  | None -> if t.total_dangling <> 0 then fail "min_open_depth = None too early"
  | Some d ->
      if open_nodes_at_depth t d = [] then fail "empty min-depth bucket";
      for d' = 0 to d - 1 do
        if List.exists (fun v -> t.dangling_cnt.(v) > 0) (open_nodes_at_depth t d')
        then fail "min_open_depth not minimal"
      done)

module Internal = struct
  let create ~hidden_n ~root =
    if hidden_n < 1 then invalid_arg "Partial_tree.create: empty tree";
    if root < 0 || root >= hidden_n then invalid_arg "Partial_tree.create: bad root";
    {
      root;
      explored = Array.make hidden_n false;
      nports = Array.make hidden_n (-1);
      parents = Array.make hidden_n (-1);
      parent_ports = Array.make hidden_n (-1);
      depths = Array.make hidden_n (-1);
      port_child = Array.make hidden_n [||];
      dangling_cnt = Array.make hidden_n 0;
      subtree_dangling = Array.make hidden_n 0;
      open_at = Array.make (hidden_n + 1) None;
      in_bucket = Array.make hidden_n (-1);
      min_open_ptr = 0;
      total_dangling = 0;
      num_explored = 0;
    }

  let reveal t v ~parent ~num_ports =
    if t.explored.(v) then invalid_arg "Partial_tree.reveal: already explored";
    (match parent with
    | None ->
        if v <> t.root then invalid_arg "Partial_tree.reveal: only the root has no parent";
        t.depths.(v) <- 0
    | Some p ->
        if not t.explored.(p) then
          invalid_arg "Partial_tree.reveal: parent must be explored";
        t.parents.(v) <- p;
        t.depths.(v) <- t.depths.(p) + 1);
    t.explored.(v) <- true;
    t.nports.(v) <- num_ports;
    let ports = Array.make num_ports enc_dangling in
    if v <> t.root then begin
      if num_ports < 1 then invalid_arg "Partial_tree.reveal: non-root needs a parent port";
      ports.(0) <- enc_parent
    end;
    t.port_child.(v) <- ports;
    let cnt = num_ports - if v = t.root then 0 else 1 in
    t.dangling_cnt.(v) <- cnt;
    t.num_explored <- t.num_explored + 1;
    if cnt > 0 then begin
      t.total_dangling <- t.total_dangling + cnt;
      bump_path t v cnt;
      add_open t v
    end

  let resolve_dangling t v p c =
    check_explored t v "Partial_tree.resolve_dangling";
    if p < 0 || p >= t.nports.(v) then
      invalid_arg "Partial_tree.resolve_dangling: bad port";
    if t.port_child.(v).(p) <> enc_dangling then
      invalid_arg "Partial_tree.resolve_dangling: port not dangling";
    t.port_child.(v).(p) <- c;
    t.parents.(c) <- v;
    t.parent_ports.(c) <- p;
    t.dangling_cnt.(v) <- t.dangling_cnt.(v) - 1;
    t.total_dangling <- t.total_dangling - 1;
    bump_path t v (-1);
    if t.dangling_cnt.(v) = 0 then remove_open t v
end
