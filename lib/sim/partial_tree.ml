type node = int

type port_state = To_parent | Dangling | Child of node

(* Per-port encoding inside the port pool: -1 = leads to parent,
   -2 = dangling, otherwise the explored child id. *)
let enc_parent = -1
let enc_dangling = -2

(* Above this hidden size the per-node arrays start small and grow
   geometrically as ids are revealed, so a mostly unexplored huge world
   costs O(explored) memory, not O(n). At or below it everything is
   preallocated up front — one allocation, no growth checks on the hot
   path — which keeps the small/medium tiers at their previous speed. *)
let prealloc_threshold = 65536

(* Open-node bucket: a swap-remove dynamic array. Iteration order is
   deterministic — a pure function of the add/remove call sequence (which
   the synchronous simulator fully determines): nodes appear in insertion
   order except that removing a node moves the bucket's last node into the
   freed slot. Consumers that need a canonical order must sort (the list
   API does); the fold API exposes the raw order for O(1)-per-node scans
   whose reductions are order-independent. *)
type bucket = { mutable nodes : int array; mutable len : int }

(* Storage is succinct and growable: all per-node attributes live in flat
   int arrays of one shared capacity [cap], and the per-port states of all
   nodes share a single flat pool ([port_pool]) indexed through
   [port_base] — no per-node heap block, so 10^7 explored nodes cost a
   handful of large arrays instead of 10^7 small ones. *)
type t = {
  root : node;
  hidden_n : int;
  mutable cap : int; (* length of every per-node array below *)
  mutable nports : int array; (* -1 = unexplored (replaces the bool array) *)
  mutable parents : int array;
  mutable parent_ports : int array;
      (* port on the parent leading down to the node; -1 for the root and
         for nodes whose parent edge was never resolved (fixtures only) *)
  mutable depths : int array;
  mutable port_base : int array; (* start of the node's slice in port_pool *)
  mutable dangling_cnt : int array;
  mutable subtree_dangling : int array;
  mutable in_bucket : int array; (* index inside its depth bucket; -1 *)
  mutable port_pool : int array;
  mutable pool_len : int;
  mutable open_at : bucket option array; (* indexed by depth; growable *)
  mutable min_open_ptr : int;
  mutable total_dangling : int;
  mutable num_explored : int;
}

let root t = t.root
let is_explored t v = v >= 0 && v < t.cap && t.nports.(v) >= 0
let num_explored t = t.num_explored
let num_dangling t = t.total_dangling
let complete t = t.total_dangling = 0
let id_bound t = t.cap

let grow_int_array a len cap fill =
  let bigger = Array.make cap fill in
  Array.blit a 0 bigger 0 len;
  bigger

(* Make every per-node array cover ids up to [v] (inclusive), preserving
   the unexplored defaults in the new tail. *)
let ensure_node t v =
  if v >= t.cap then begin
    let cap = max (v + 1) (2 * t.cap) in
    let old = t.cap in
    t.nports <- grow_int_array t.nports old cap (-1);
    t.parents <- grow_int_array t.parents old cap (-1);
    t.parent_ports <- grow_int_array t.parent_ports old cap (-1);
    t.depths <- grow_int_array t.depths old cap (-1);
    t.port_base <- grow_int_array t.port_base old cap (-1);
    t.dangling_cnt <- grow_int_array t.dangling_cnt old cap 0;
    t.subtree_dangling <- grow_int_array t.subtree_dangling old cap 0;
    t.in_bucket <- grow_int_array t.in_bucket old cap (-1);
    t.cap <- cap
  end

(* Append a slice of [len] ports to the pool and return its base index. *)
let pool_alloc t len =
  let need = t.pool_len + len in
  if need > Array.length t.port_pool then begin
    let cap = max need (2 * Array.length t.port_pool) in
    t.port_pool <- grow_int_array t.port_pool t.pool_len cap enc_dangling
  end;
  let base = t.pool_len in
  t.pool_len <- need;
  base

let check_explored t v name =
  if not (is_explored t v) then invalid_arg (name ^ ": unexplored node")

let num_ports t v =
  check_explored t v "Partial_tree.num_ports";
  t.nports.(v)

let port t v p =
  check_explored t v "Partial_tree.port";
  if p < 0 || p >= t.nports.(v) then invalid_arg "Partial_tree.port: bad port";
  let e = t.port_pool.(t.port_base.(v) + p) in
  if e = enc_parent then To_parent
  else if e = enc_dangling then Dangling
  else Child e

let is_port_dangling t v p =
  check_explored t v "Partial_tree.is_port_dangling";
  t.port_pool.(t.port_base.(v) + p) = enc_dangling

let port_child_id t v p =
  check_explored t v "Partial_tree.port_child_id";
  let e = t.port_pool.(t.port_base.(v) + p) in
  if e >= 0 then e else -1

let iter_dangling_ports t v f =
  check_explored t v "Partial_tree.iter_dangling_ports";
  let base = t.port_base.(v) in
  for p = 0 to t.nports.(v) - 1 do
    if t.port_pool.(base + p) = enc_dangling then f p
  done

let iter_explored_children t v f =
  check_explored t v "Partial_tree.iter_explored_children";
  let base = t.port_base.(v) in
  for p = 0 to t.nports.(v) - 1 do
    let e = t.port_pool.(base + p) in
    if e >= 0 then f p e
  done

let dangling_ports t v =
  check_explored t v "Partial_tree.dangling_ports";
  let base = t.port_base.(v) in
  let acc = ref [] in
  for p = t.nports.(v) - 1 downto 0 do
    if t.port_pool.(base + p) = enc_dangling then acc := p :: !acc
  done;
  !acc

let explored_children t v =
  check_explored t v "Partial_tree.explored_children";
  let base = t.port_base.(v) in
  let acc = ref [] in
  for p = t.nports.(v) - 1 downto 0 do
    let e = t.port_pool.(base + p) in
    if e >= 0 then acc := (p, e) :: !acc
  done;
  !acc

let parent t v =
  check_explored t v "Partial_tree.parent";
  if v = t.root then None else Some t.parents.(v)

let parent_id t v =
  check_explored t v "Partial_tree.parent_id";
  if v = t.root then -1 else t.parents.(v)

let parent_port t v =
  check_explored t v "Partial_tree.parent_port";
  t.parent_ports.(v)

let depth_of t v =
  check_explored t v "Partial_tree.depth_of";
  t.depths.(v)

let is_open t v = is_explored t v && t.dangling_cnt.(v) > 0
let is_closed t v = is_explored t v && t.dangling_cnt.(v) = 0
let subtree_open t v =
  check_explored t v "Partial_tree.subtree_open";
  t.subtree_dangling.(v) > 0

let max_depth_index t = Array.length t.open_at - 1

let bucket_len t d =
  match t.open_at.(d) with None -> 0 | Some b -> b.len

let min_open_depth_raw t =
  if t.total_dangling = 0 then -1
  else begin
    let d = ref t.min_open_ptr in
    while !d <= max_depth_index t && bucket_len t !d = 0 do
      incr d
    done;
    t.min_open_ptr <- !d;
    if !d > max_depth_index t then -1 else !d
  end

let min_open_depth t =
  let d = min_open_depth_raw t in
  if d < 0 then None else Some d

let num_open_at_depth t d =
  if d < 0 || d > max_depth_index t then 0 else bucket_len t d

let fold_open_at_depth t d ~init ~f =
  if d < 0 || d > max_depth_index t then init
  else
    match t.open_at.(d) with
    | None -> init
    | Some b ->
        let acc = ref init in
        for i = 0 to b.len - 1 do
          acc := f !acc b.nodes.(i)
        done;
        !acc

let open_nodes_at_depth t d =
  (* Canonical (sorted) order, independent of the bucket's internal
     swap-remove order. *)
  List.sort compare (fold_open_at_depth t d ~init:[] ~f:(fun acc v -> v :: acc))

let open_nodes_at_min_depth t =
  match min_open_depth t with None -> [] | Some d -> open_nodes_at_depth t d

let is_ancestor t a v =
  check_explored t a "Partial_tree.is_ancestor";
  check_explored t v "Partial_tree.is_ancestor";
  let da = t.depths.(a) in
  let rec up v = if t.depths.(v) < da then false else v = a || up t.parents.(v) in
  up v

let ports_from_root t v =
  check_explored t v "Partial_tree.ports_from_root";
  (* Walk up through the parent-port cache: O(depth), no port scans. *)
  let rec up v acc =
    if v = t.root then acc
    else begin
      let p = t.parent_ports.(v) in
      if p < 0 then invalid_arg "Partial_tree.ports_from_root: broken parent link";
      up t.parents.(v) (p :: acc)
    end
  in
  up v []

let fold_explored t ~init ~f =
  let acc = ref init in
  for v = 0 to t.cap - 1 do
    if t.nports.(v) >= 0 then acc := f !acc v
  done;
  !acc

let bucket t d =
  if d > max_depth_index t then begin
    let cap = max (d + 1) (2 * Array.length t.open_at) in
    let bigger = Array.make cap None in
    Array.blit t.open_at 0 bigger 0 (Array.length t.open_at);
    t.open_at <- bigger
  end;
  match t.open_at.(d) with
  | Some b -> b
  | None ->
      let b = { nodes = Array.make 8 (-1); len = 0 } in
      t.open_at.(d) <- Some b;
      b

let add_open t v =
  let d = t.depths.(v) in
  let b = bucket t d in
  let cap = Array.length b.nodes in
  if b.len = cap then begin
    let nodes = Array.make (2 * cap) (-1) in
    Array.blit b.nodes 0 nodes 0 cap;
    b.nodes <- nodes
  end;
  b.nodes.(b.len) <- v;
  t.in_bucket.(v) <- b.len;
  b.len <- b.len + 1;
  if d < t.min_open_ptr then t.min_open_ptr <- d

let remove_open t v =
  let i = t.in_bucket.(v) in
  if i >= 0 then begin
    match t.open_at.(t.depths.(v)) with
    | None -> ()
    | Some b ->
        let last = b.nodes.(b.len - 1) in
        b.nodes.(i) <- last;
        t.in_bucket.(last) <- i;
        b.len <- b.len - 1;
        t.in_bucket.(v) <- -1
  end

let bump_path t v delta =
  let u = ref v in
  let continue = ref true in
  while !continue do
    t.subtree_dangling.(!u) <- t.subtree_dangling.(!u) + delta;
    if !u = t.root then continue := false else u := t.parents.(!u)
  done

let check_invariants t =
  let fail msg = invalid_arg ("Partial_tree.check_invariants: " ^ msg) in
  let n = t.cap in
  let expected_total = ref 0 in
  let expected_sub = Array.make n 0 in
  let count_dangling v =
    let base = t.port_base.(v) in
    let cnt = ref 0 in
    for p = 0 to t.nports.(v) - 1 do
      if t.port_pool.(base + p) = enc_dangling then incr cnt
    done;
    !cnt
  in
  let pool_has v x =
    let base = t.port_base.(v) in
    let found = ref false in
    for p = 0 to t.nports.(v) - 1 do
      if t.port_pool.(base + p) = x then found := true
    done;
    !found
  in
  for v = 0 to n - 1 do
    if t.nports.(v) >= 0 then begin
      let cnt = count_dangling v in
      if cnt <> t.dangling_cnt.(v) then fail "dangling_cnt mismatch";
      expected_total := !expected_total + cnt;
      (* Charge the dangling edges of [v] to every ancestor. *)
      let u = ref v in
      let continue = ref true in
      while !continue do
        expected_sub.(!u) <- expected_sub.(!u) + cnt;
        if !u = t.root then continue := false else u := t.parents.(!u)
      done;
      (* Parent-port cache: when set, the parent's port must lead back. *)
      if v <> t.root then begin
        let pp = t.parent_ports.(v) in
        let pr = t.parents.(v) in
        if pp >= 0 then begin
          if
            pp >= t.nports.(pr)
            || t.port_pool.(t.port_base.(pr) + pp) <> v
          then fail "parent_port cache points to the wrong port"
        end
        else if pool_has pr v then
          fail "parent_port cache missing for a resolved child"
      end
      else if t.parent_ports.(v) <> -1 then fail "root has a parent_port";
      (* Open-node index: in the bucket iff open, at the recorded slot. *)
      let i = t.in_bucket.(v) in
      if (cnt > 0) <> (i >= 0) then fail "open-node index mismatch";
      if i >= 0 then
        match t.open_at.(t.depths.(v)) with
        | None -> fail "in_bucket set but no bucket at the node's depth"
        | Some b ->
            if i >= b.len || b.nodes.(i) <> v then
              fail "in_bucket slot does not hold the node"
    end
    else if t.in_bucket.(v) <> -1 then fail "unexplored node indexed as open"
  done;
  (* Every bucket slot points back through in_bucket, at the right depth. *)
  Array.iteri
    (fun d b ->
      match b with
      | None -> ()
      | Some b ->
          for i = 0 to b.len - 1 do
            let v = b.nodes.(i) in
            if v < 0 || v >= n || t.nports.(v) < 0 then
              fail "bucket holds an invalid node";
            if t.in_bucket.(v) <> i then fail "bucket slot/in_bucket disagree";
            if t.depths.(v) <> d then fail "bucket holds a node of another depth"
          done)
    t.open_at;
  if !expected_total <> t.total_dangling then fail "total_dangling mismatch";
  for v = 0 to n - 1 do
    if t.nports.(v) >= 0 && expected_sub.(v) <> t.subtree_dangling.(v) then
      fail "subtree_dangling mismatch"
  done;
  (match min_open_depth t with
  | None -> if t.total_dangling <> 0 then fail "min_open_depth = None too early"
  | Some d ->
      if open_nodes_at_depth t d = [] then fail "empty min-depth bucket";
      for d' = 0 to d - 1 do
        if List.exists (fun v -> t.dangling_cnt.(v) > 0) (open_nodes_at_depth t d')
        then fail "min_open_depth not minimal"
      done)

module Internal = struct
  let create ~hidden_n ~root =
    if hidden_n < 1 then invalid_arg "Partial_tree.create: empty tree";
    if root < 0 || root >= hidden_n then invalid_arg "Partial_tree.create: bad root";
    let cap =
      if hidden_n <= prealloc_threshold then hidden_n
      else max 1024 (root + 1)
    in
    let depth_cap = if hidden_n <= prealloc_threshold then hidden_n + 1 else 64 in
    (* Pool: total ports over the whole tree is 2(n-1), so 2·cap slots is a
       comfortable start even fully explored at the prealloc tier. *)
    let pool_cap = max 16 (2 * cap) in
    {
      root;
      hidden_n;
      cap;
      nports = Array.make cap (-1);
      parents = Array.make cap (-1);
      parent_ports = Array.make cap (-1);
      depths = Array.make cap (-1);
      port_base = Array.make cap (-1);
      dangling_cnt = Array.make cap 0;
      subtree_dangling = Array.make cap 0;
      in_bucket = Array.make cap (-1);
      port_pool = Array.make pool_cap enc_dangling;
      pool_len = 0;
      open_at = Array.make depth_cap None;
      min_open_ptr = 0;
      total_dangling = 0;
      num_explored = 0;
    }

  let reveal t v ~parent ~num_ports =
    if v < 0 || v >= t.hidden_n then invalid_arg "Partial_tree.reveal: bad node id";
    ensure_node t v;
    if t.nports.(v) >= 0 then invalid_arg "Partial_tree.reveal: already explored";
    (match parent with
    | None ->
        if v <> t.root then invalid_arg "Partial_tree.reveal: only the root has no parent";
        t.depths.(v) <- 0
    | Some p ->
        if not (is_explored t p) then
          invalid_arg "Partial_tree.reveal: parent must be explored";
        t.parents.(v) <- p;
        t.depths.(v) <- t.depths.(p) + 1);
    let base = pool_alloc t num_ports in
    for p = 0 to num_ports - 1 do
      t.port_pool.(base + p) <- enc_dangling
    done;
    if v <> t.root then begin
      if num_ports < 1 then invalid_arg "Partial_tree.reveal: non-root needs a parent port";
      t.port_pool.(base) <- enc_parent
    end;
    t.port_base.(v) <- base;
    t.nports.(v) <- num_ports;
    let cnt = num_ports - if v = t.root then 0 else 1 in
    t.dangling_cnt.(v) <- cnt;
    t.num_explored <- t.num_explored + 1;
    if cnt > 0 then begin
      t.total_dangling <- t.total_dangling + cnt;
      bump_path t v cnt;
      add_open t v
    end

  let resolve_dangling t v p c =
    check_explored t v "Partial_tree.resolve_dangling";
    if p < 0 || p >= t.nports.(v) then
      invalid_arg "Partial_tree.resolve_dangling: bad port";
    if t.port_pool.(t.port_base.(v) + p) <> enc_dangling then
      invalid_arg "Partial_tree.resolve_dangling: port not dangling";
    if c < 0 || c >= t.hidden_n then
      invalid_arg "Partial_tree.resolve_dangling: bad child id";
    ensure_node t c;
    t.port_pool.(t.port_base.(v) + p) <- c;
    t.parents.(c) <- v;
    t.parent_ports.(c) <- p;
    t.dangling_cnt.(v) <- t.dangling_cnt.(v) - 1;
    t.total_dangling <- t.total_dangling - 1;
    bump_path t v (-1);
    if t.dangling_cnt.(v) = 0 then remove_open t v
end
