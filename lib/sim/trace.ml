module Ring = Bfdn_obs.Sink.Ring

type frame = {
  round : int;
  positions : int array;
  explored : int;
  dangling : int;
}

(* Bounded ring: a long run keeps the newest [capacity] frames instead
   of growing a list forever (and [frames] no longer pays a List.rev per
   call — the ring iterates oldest-first directly). *)
type t = { ring : frame Ring.t }

let default_capacity = 4096

let create ?(capacity = default_capacity) () = { ring = Ring.create capacity }

let frame_of_env env =
  let view = Env.view env in
  {
    round = Env.round env;
    positions = Env.positions env;
    explored = Partial_tree.num_explored view;
    dangling = Partial_tree.num_dangling view;
  }

let record t env = Ring.push t.ring (frame_of_env env)

let recorder t env = record t env

let push t frame = Ring.push t.ring frame

let frames t = Ring.to_list t.ring

let length t = Ring.pushed t.ring

let retained t = Ring.length t.ring

let dropped t = Ring.dropped t.ring

let json_of_frame f =
  let module J = Bfdn_obs.Json in
  J.Obj
    [
      ("round", J.Int f.round);
      ("explored", J.Int f.explored);
      ("dangling", J.Int f.dangling);
      ("positions", J.List (Array.to_list (Array.map (fun p -> J.Int p) f.positions)));
    ]

let render_frame env =
  let view = Env.view env in
  let buf = Buffer.create 512 in
  let robots_at =
    let table = Hashtbl.create 16 in
    Array.iteri
      (fun i pos ->
        let prev = try Hashtbl.find table pos with Not_found -> [] in
        Hashtbl.replace table pos (i :: prev))
      (Env.positions env);
    table
  in
  let robot_mark v =
    match Hashtbl.find_opt robots_at v with
    | None -> ""
    | Some rs ->
        let ids = List.rev_map string_of_int rs in
        "  <- robots [" ^ String.concat "," ids ^ "]"
  in
  let rec draw v indent =
    let dangle = ref 0 in
    Partial_tree.iter_dangling_ports view v (fun _ -> incr dangle);
    Buffer.add_string buf indent;
    Buffer.add_string buf (string_of_int v);
    if !dangle > 0 then Buffer.add_string buf (Printf.sprintf " (+%d?)" !dangle);
    Buffer.add_string buf (robot_mark v);
    Buffer.add_char buf '\n';
    Partial_tree.iter_explored_children view v (fun _ c -> draw c (indent ^ "  "))
  in
  Buffer.add_string buf
    (Printf.sprintf "round %d: %d explored, %d dangling\n" (Env.round env)
       (Partial_tree.num_explored view)
       (Partial_tree.num_dangling view));
  draw (Partial_tree.root view) "";
  Buffer.contents buf

let depth_timeline t env =
  let view = Env.view env in
  let frames = Array.of_list (frames t) in
  let nframes = Array.length frames in
  if nframes = 0 then "(no frames)\n"
  else begin
    let max_depth =
      Array.fold_left
        (fun acc f ->
          Array.fold_left
            (fun acc pos -> max acc (Partial_tree.depth_of view pos))
            acc f.positions)
        0 frames
    in
    let cols = min 72 nframes in
    let rows = max_depth + 1 in
    let counts = Array.make_matrix rows cols 0 in
    for c = 0 to cols - 1 do
      let f = frames.(c * nframes / cols) in
      Array.iter
        (fun pos ->
          let d = Partial_tree.depth_of view pos in
          counts.(d).(c) <- counts.(d).(c) + 1)
        f.positions
    done;
    let glyph n =
      if n = 0 then '.'
      else if n <= 2 then ':'
      else if n <= 5 then 'o'
      else if n <= 10 then 'O'
      else '@'
    in
    let header = Printf.sprintf "robots per depth over time (%d frames):\n" nframes in
    let legend =
      Bfdn_util.Ascii.legend
        [ ('.', "0"); (':', "1-2"); ('o', "3-5"); ('O', "6-10"); ('@', ">10") ]
    in
    let buf = Buffer.create (rows * (cols + 8)) in
    Buffer.add_string buf header;
    for d = 0 to rows - 1 do
      Buffer.add_string buf (Printf.sprintf "d=%-3d " d);
      for c = 0 to cols - 1 do
        Buffer.add_char buf (glyph counts.(d).(c))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf "      time ->\n";
    Buffer.add_string buf legend;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
