(** Continuous-time exploration — the relaxation suggested by Remark 8.

    Instead of synchronous rounds, each robot [i] has a speed [s_i] and
    needs [1 / s_i] time units per edge. The environment is event-driven:
    whenever a robot arrives somewhere (and once at time 0), the algorithm
    is asked for its next action, with full knowledge of the discovered
    tree at that instant (complete communication, instantaneous
    decisions). Equal-time arrivals are processed in robot order, so runs
    are deterministic.

    A dangling edge being traversed is {e claimed}: the traversal will
    reveal it, so other robots should (and, for correctness of the
    accounting, may) not start a duplicate discovery; the claim is visible
    through {!claimed}.

    A robot that answers [Park] sleeps; parked robots are re-asked after
    every discovery event, so waiting for new frontier is expressible.
    The paper proves nothing in this model — this is the library's
    executable playground for the open extension. *)

type t

type robot = int

type action =
  | Park  (** sleep until the next discovery (or forever, once done) *)
  | Go_up
  | Go_port of int

type decide = t -> robot -> action

val create : ?speeds:float array -> Bfdn_trees.Tree.t -> k:int -> t
(** [speeds] defaults to all ones; each must be positive. *)

val view : t -> Partial_tree.t
val k : t -> int

val capacity : t -> int
(** Node count of the hidden tree, for sizing per-node state. *)

val now : t -> float
val position : t -> robot -> Partial_tree.node
val claimed : t -> Partial_tree.node -> int -> bool
(** Whether a dangling port is currently being traversed. *)

(** {2 Resumable driver}

    {!run} drains the event queue in one call. The driver exposes the
    same pump in horizon-sized steps so a synchronous round loop
    ({!Exec_env}) can interleave fault checks and probes between units
    of continuous time. [advance ~until:infinity] on a fresh driver is
    event-for-event identical to {!run}. *)

type driver

val driver :
  ?max_events:int ->
  ?fault:Env.fault_hook ->
  ?on_restart:(robot -> unit) ->
  decide ->
  t ->
  driver
(** Asks every robot for its initial decision (in robot order). [fault]
    is read against the integer clock [int_of_float now]: a down robot
    is forced to park when asked (in-flight traversals complete —
    crashes only ground a robot at a node); restarts are applied at
    horizon boundaries, teleporting grounded robots to the root and
    invoking [on_restart] so the algorithm can drop stale route state. *)

val advance : driver -> until:float -> unit
(** Process every event with timestamp [<= until], then (for finite
    [until]) advance the clock to [until], run the restart sweep and
    re-ask parked robots. *)

val idle : driver -> bool
(** No pending arrival and every robot parked: nothing further happens
    without an external wake (restart or a later horizon). *)

val restarts : t -> int

val run : ?max_events:int -> decide -> t -> unit
(** Drive events until every robot is parked and no arrival is pending.
    @raise Failure on [max_events] (default [10_000_000]) — a live-lock. *)

val fully_explored : t -> bool
val all_at_root : t -> bool
val makespan : t -> float
(** Time of the last arrival processed. *)

val distance_travelled : t -> robot -> int
(** Edges traversed by the robot. *)

val moves_total : t -> int
(** Sum of all distances travelled (unit-length traversals). *)

val positions : t -> Partial_tree.node array
(** A copy of all positions. *)

val min_speed : t -> float

val oracle_depth : t -> int
(** Depth of the hidden tree — for divergence guards, not visible to
    the algorithms. *)
