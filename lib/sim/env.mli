(** Synchronous exploration environment.

    Holds the hidden tree, the robots' positions, the partially explored
    tree, the round counter and the run metrics. One call to {!apply}
    executes one synchronous round: every robot moves along one incident
    discovered edge (or stays), then newly reached nodes are revealed.

    Legality is enforced here: a robot may only stay, go up, or leave
    through a port of its current (hence explored) position — all of which
    are discovered edges, so no algorithm can read or use hidden
    information through this interface.

    The environment also implements the adversarial break-down model of
    Section 4.2: an optional {e move mask} decides, per round and robot,
    whether the robot is allowed to move; masked robots are pinned in
    place whatever the algorithm selected. *)

type t

type robot = int

type move =
  | Stay
  | Up  (** towards the root; illegal at the root *)
  | Via_port of int  (** leave through a port (explored or dangling) *)

type mask = round:int -> robot:robot -> bool

type fault_hook = {
  fh_enabled : bool;
      (** immutable master switch; when [false] the predicates are never
          called and the round loop is branch-identical to a fault-free
          environment *)
  fh_down : round:int -> robot:robot -> bool;
      (** crashed or masked this round — pinned in place like a masked
          robot, and reported as not {!allowed}. Must be pure: it is
          consulted both at select time and inside {!apply}. *)
  fh_restart : round:int -> robot:robot -> bool;
      (** [true] at the end of round [r] teleports the robot to the root
          before round [r+1] (a replacement robot coming online) *)
  fh_may_restart : bool;
      (** [false] lets {!apply} skip the per-robot restart sweep
          entirely — set it iff the plan can never answer [fh_restart]
          with [true] (e.g. all crashes are permanent) *)
}
(** Fault-injection hook threaded through the round loop. Compile one
    from a fault plan with [Bfdn_faults.Injector.hook]. *)

val fault_noop : fault_hook
(** The disabled hook; default everywhere a [?fault] is accepted. *)

type reactive_blocker = round:int -> selected:move array -> bool array
(** Remark 8's stronger adversary: it observes the moves the robots have
    {e selected} this round before deciding who may move ([true] =
    allowed). Composed with the plain mask (both must allow a robot). *)

val create :
  ?mask:mask ->
  ?probe:Bfdn_obs.Probe.t ->
  ?fault:fault_hook ->
  Bfdn_trees.Tree.t ->
  k:int ->
  t
(** [create tree ~k] places [k] robots on the root and reveals it.
    [mask] defaults to "always allowed". [probe] (default
    {!Bfdn_obs.Probe.noop}) receives an [on_round] callback after every
    {!apply} with that round's moved/revealed/edge-event deltas.
    [fault] (default {!fault_noop}) injects crashes, restarts and
    fault-plan masks into the round loop. *)

(** {2 Lazily materialized worlds}

    For adaptive-adversary experiments the hidden tree can be decided
    {e online}: node degrees are fixed only when a node is revealed, and
    child ids are pre-allocated at promise time, so the discovered tree
    never leaks information the robots should not have. See
    {!Adversary}, which builds such worlds from a budgeted policy. *)

type world = {
  w_capacity : int;  (** upper bound on node ids, for array sizing *)
  w_root : int;
  w_degree : node:int -> arriving:int -> round:int -> int;
      (** total ports of a node; queried exactly once, at its reveal *)
  w_child : int -> int -> int;
      (** [(revealed parent, child port)] to the promised node id *)
  w_stats : unit -> int * int * int;
      (** materialized so far: n, depth, max degree *)
  w_tree : unit -> Bfdn_trees.Tree.t;
      (** freeze the materialized tree *)
}

val of_world :
  ?mask:mask ->
  ?fixed:bool ->
  ?probe:Bfdn_obs.Probe.t ->
  ?fault:fault_hook ->
  world ->
  k:int ->
  t
(** [fixed] (default [false]) declares that the world's [w_stats] never
    change after creation, letting {!Runner.run} compute its termination
    bound once instead of every round. {!create} sets it. *)

val world_of_tree : Bfdn_trees.Tree.t -> world

val fixed_world : t -> bool
(** Whether the hidden world was declared fixed at creation. *)

val k : t -> int

val capacity : t -> int
(** Upper bound on node ids (the node count for tree-backed worlds);
    algorithms should size per-node state with this. *)

val round : t -> int
(** Number of rounds executed so far. *)

val view : t -> Partial_tree.t
(** The discovered tree. Read-only for algorithms ({!Partial_tree.Internal}
    is reserved to this module). *)

val position : t -> robot -> Partial_tree.node

val positions : t -> Partial_tree.node array
(** A copy of all positions. *)

val set_reactive_blocker : t -> reactive_blocker -> unit
(** Install a Remark 8 adversary. No guarantee from the paper applies
    under it; the library exposes it for experiments. *)

val allowed : t -> robot -> bool
(** Whether the mask {e and} the fault hook allow this robot to move in
    the {e upcoming} round. A crashed robot reads as not allowed, which
    is exactly the Section 4.2 break-down signal algorithms already
    handle. *)

val apply : t -> move array -> unit
(** Execute one synchronous round with the given per-robot selections
    (length [k]). Masked robots are forced to [Stay].
    @raise Invalid_argument on an illegal selection (bad port, [Up] at the
    root, wrong array length). *)

val fully_explored : t -> bool
(** No dangling edge remains. *)

val all_at_root : t -> bool

(** {2 Metrics} *)

val restarts : t -> int
(** Number of crash-with-restart teleports executed so far. *)

val moves_total : t -> int
(** Total edge traversals performed (all robots, all rounds). *)

val moves_of_robot : t -> robot -> int

val edge_events : t -> int
(** Number of edge events (Section 5): first parent-to-child crossings plus
    first child-to-parent crossings; at most [2*(n-1)]. *)

val allowed_total : t -> int
(** Total number of (round, robot) slots the mask allowed so far —
    [k * A(M)] restricted to the elapsed rounds (Section 4.2). *)

val multi_reveals : t -> int
(** Number of first-time edge traversals performed by two or more robots
    simultaneously. Always [0] under BFDN (Claim 2: the round-local
    selection makes discoveries exclusive); CTE routinely piles robots on
    one dangling edge. *)

(** {2 Harness-side oracle}

    These reveal the hidden instance parameters (n, D, Δ) for reporting and
    for bound formulas. Exploration algorithms must not call them. *)

val oracle_n : t -> int
val oracle_depth : t -> int
val oracle_max_degree : t -> int
val oracle_tree : t -> Bfdn_trees.Tree.t
