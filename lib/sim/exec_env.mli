(** First-class execution environments: one round-loop for every world.

    {!Runner.run} is the tree fast path — monomorphic over {!Env.t}, with
    a zero-allocation uninstrumented loop — and stays that way. This
    module is its generalized sibling: an {!t} packages the operations
    the round loop, fault injection and the obs probes actually need
    (select/apply phases, termination test, round accounting, positions,
    trace frames) behind closures, so grid/graph environments
    ([Bfdn_graphs.Graph_env]) and the continuous-time relaxation
    ({!Async_env}, Remark 8) run through the same executor shape —
    including the probed loop's clock-bracketed
    [Finished_check]/[Select]/[Apply] phases that feed span trees and
    [/metrics].

    Adapters: {!of_env} wraps a tree algorithm/environment pair (used
    when a caller needs the uniform interface for observation — the
    scenario layer still dispatches trees to {!Runner.run});
    {!of_async} wraps an event-driven async run as a sequence of
    unit-time horizons so the synchronous round loop, round limits,
    probes and fault plans apply unchanged. Graph adapters live in
    [lib/core] ([Bfdn_graph.exec_env]) because [lib/sim] does not see
    [bfdn_graphs]. *)

type t = {
  kind : string;  (** ["tree"], ["graph"] or ["async"] — for display. *)
  k : int;
  round : unit -> int;
  select : unit -> unit;
      (** Compute this round's moves (held internally until {!apply}).
          Separate from [apply] so the probed loop can bracket the two
          phases with distinct clock stamps, as {!Runner.run} does. *)
  apply : unit -> unit;  (** Commit the selected moves: one round. *)
  finished : unit -> bool;  (** The algorithm's own termination test. *)
  round_limit : unit -> int;
      (** Divergence guard when the caller sets no [max_rounds]. *)
  explored : unit -> bool;
  at_home : unit -> bool;  (** Every robot back at the origin/root. *)
  moves_total : unit -> int;
  edge_events : unit -> int;
  positions : unit -> int array;  (** Fresh copy. *)
  frame : unit -> Trace.frame;  (** Current state as a trace frame. *)
  render : unit -> string;  (** Small-scale ASCII rendering. *)
}

val run :
  ?max_rounds:int ->
  ?on_round:(t -> unit) ->
  ?probe:Bfdn_obs.Probe.t ->
  t ->
  Runner.result
(** Same contract and loop structure as {!Runner.run} — an
    uninstrumented loop with no clock reads, and a probed loop with 3
    monotonic-clock reads per round bracketing the
    [Finished_check]/[Select]/[Apply] phases — over the closure record
    instead of a concrete environment. *)

val of_env : Runner.algo -> Env.t -> t
(** Tree adapter. [run (of_env algo env)] computes the same result as
    [Runner.run algo env]; the scenario layer keeps calling
    {!Runner.run} directly on the tree path so that path stays
    monomorphic. *)

val of_async :
  ?fault:Env.fault_hook ->
  ?probe:Bfdn_obs.Probe.t ->
  ?on_restart:(Async_env.robot -> unit) ->
  Async_env.decide ->
  Async_env.t ->
  t
(** Async adapter: each {!t.apply} advances the event-driven simulation
    by one unit-time horizon ([Async_env.advance]), so "round [r]" covers
    continuous time [(r-1, r]]. [fault] is interpreted against the
    integer horizon clock: a down robot is forced to park (it keeps any
    in-flight traversal — crashes ground a robot only at a node), and
    restarts teleport a grounded robot to the root, notifying the
    algorithm via [on_restart] so it can discard stale route state. The
    [probe]'s [on_round] fires once per horizon with per-horizon deltas,
    which is what puts async runs on [/metrics]. *)
