(** Lazily materialized generator worlds — the deterministic instance
    families of {!Bfdn_trees.Tree_gen}, produced node by node as the
    exploration reveals them instead of being built up front.

    A lazy world holds O(promised) state and grows geometrically, so an
    exploration that visits a prefix of an n=10^7 instance costs
    O(explored) memory end to end (the view, environment and algorithm
    scratch all follow {!Partial_tree.id_bound}). This is the huge scale
    tier's world backend ([scale=lazy] in scenario world specs).

    Child ids are allocated densely at the parent's reveal, before the
    child's own subtree shape is decided (the {!Adversary} discipline),
    so the discovered tree never leaks hidden information. Shapes are
    exploration-order independent: each promised node carries a family
    role fixed at promise time; the ["random"] family draws child counts
    from a pure hash of [(seed, node id)]. Node {e ids} follow reveal
    order and therefore differ from the eager generator's DFS ids — the
    instances are equal as port-numbered trees up to relabeling, with
    identical summary statistics. *)

type t

val families : string list
(** Families available lazily: ["path"], ["star"], ["binary"],
    ["ternary"], ["spider"], ["caterpillar"], ["comb"], ["broom"],
    ["random"] — {!Tree_gen.of_family} minus the families whose
    construction is inherently global (["random-deep"], ["bounded3"],
    ["trap"], ["hidden-path"]). *)

val supported : string -> bool

val make : family:string -> n:int -> depth_hint:int -> seed:int -> t
(** Build the rules for one instance. [n] and [depth_hint] are
    interpreted exactly as by {!Tree_gen.of_family}; [seed] feeds the
    ["random"] family's hash (ignored elsewhere).
    @raise Invalid_argument on an unsupported family or an instance
    exceeding [Sys.max_array_length]. *)

val world : t -> Env.world
(** The environment-facing world. Pass to {!Env.of_world}; each node's
    degree is decided exactly once, at its reveal. *)

val capacity : t -> int
(** Exact node count of the fully expanded instance. *)

val nodes_built : t -> int
(** Ids promised so far (revealed nodes plus their promised children). *)

val nodes_revealed : t -> int

val stats : t -> Bfdn_trees.Tree_stats.t
(** Streaming statistics over the revealed prefix (via
    {!Tree_stats.Acc} — no tree is ever materialized for this). *)

val materialize : t -> Bfdn_trees.Tree.t
(** The fully expanded instance as a plain eager tree, by running the
    same rules to exhaustion in id order on a fresh copy (the argument is
    not mutated). O(n) time and memory — the eager baseline the huge
    tier's RSS comparison measures against. *)
