type algo = {
  name : string;
  select : Env.t -> Env.move array;
  finished : Env.t -> bool;
}

type result = {
  rounds : int;
  explored : bool;
  at_root : bool;
  moves : int;
  edge_events : int;
  hit_round_limit : bool;
}

let default_max_rounds env =
  (3 * Env.oracle_n env * (Env.oracle_depth env + 2)) + 100

let run ?max_rounds ?(on_round = fun _ -> ()) algo env =
  (* The bound only needs recomputing against a lazily materialized world,
     where it grows as nodes are revealed; for fixed-tree worlds it is
     memoized at the first round. *)
  let limit =
    match max_rounds with
    | Some m -> fun () -> m
    | None when Env.fixed_world env ->
        let m = lazy (default_max_rounds env) in
        fun () -> Lazy.force m
    | None -> fun () -> default_max_rounds env
  in
  let hit_limit = ref false in
  let continue = ref true in
  while !continue do
    if algo.finished env then continue := false
    else if Env.round env >= limit () then begin
      hit_limit := true;
      continue := false
    end
    else begin
      Env.apply env (algo.select env);
      on_round env
    end
  done;
  {
    rounds = Env.round env;
    explored = Env.fully_explored env;
    at_root = Env.all_at_root env;
    moves = Env.moves_total env;
    edge_events = Env.edge_events env;
    hit_round_limit = !hit_limit;
  }

let pp_result ppf r =
  Format.fprintf ppf "rounds=%d explored=%b at_root=%b moves=%d events=%d%s"
    r.rounds r.explored r.at_root r.moves r.edge_events
    (if r.hit_round_limit then " (HIT ROUND LIMIT)" else "")
