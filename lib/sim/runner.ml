module Clock = Bfdn_util.Clock
module Probe = Bfdn_obs.Probe

type algo = {
  name : string;
  select : Env.t -> Env.move array;
  finished : Env.t -> bool;
}

type result = {
  rounds : int;
  explored : bool;
  at_root : bool;
  moves : int;
  edge_events : int;
  hit_round_limit : bool;
}

let default_max_rounds env =
  (3 * Env.oracle_n env * (Env.oracle_depth env + 2)) + 100

let run ?max_rounds ?(on_round = fun _ -> ()) ?(probe = Probe.noop) algo env =
  (* The bound only needs recomputing against a lazily materialized world,
     where it grows as nodes are revealed; for fixed-tree worlds it is
     memoized at the first round. *)
  let limit =
    match max_rounds with
    | Some m -> fun () -> m
    | None when Env.fixed_world env ->
        let m = lazy (default_max_rounds env) in
        fun () -> Lazy.force m
    | None -> fun () -> default_max_rounds env
  in
  let hit_limit = ref false in
  let continue = ref true in
  if probe.Probe.enabled then begin
    (* Instrumented loop: monotonic-clock brackets around the three
       phases of each round. Kept separate from the default loop so the
       uninstrumented hot path performs no clock reads at all. The
       phases are contiguous, so each phase's end stamp doubles as the
       next one's start — 3 clock reads per round, not 6. *)
    let t = ref (Clock.now_ns ()) in
    while !continue do
      let fin = algo.finished env in
      let t1 = Clock.now_ns () in
      probe.Probe.on_phase Probe.Finished_check (t1 - !t);
      t := t1;
      if fin then continue := false
      else if Env.round env >= limit () then begin
        hit_limit := true;
        continue := false
      end
      else begin
        let moves = algo.select env in
        let t2 = Clock.now_ns () in
        probe.Probe.on_phase Probe.Select (t2 - !t);
        Env.apply env moves;
        let t3 = Clock.now_ns () in
        probe.Probe.on_phase Probe.Apply (t3 - t2);
        t := t3;
        on_round env
      end
    done
  end
  else
    while !continue do
      if algo.finished env then continue := false
      else if Env.round env >= limit () then begin
        hit_limit := true;
        continue := false
      end
      else begin
        Env.apply env (algo.select env);
        on_round env
      end
    done;
  {
    rounds = Env.round env;
    explored = Env.fully_explored env;
    at_root = Env.all_at_root env;
    moves = Env.moves_total env;
    edge_events = Env.edge_events env;
    hit_round_limit = !hit_limit;
  }

let pp_result ppf r =
  Format.fprintf ppf "rounds=%d explored=%b at_root=%b moves=%d events=%d%s"
    r.rounds r.explored r.at_root r.moves r.edge_events
    (if r.hit_round_limit then " (HIT ROUND LIMIT)" else "")
