module Tree = Bfdn_trees.Tree

type robot = int

type move = Stay | Up | Via_port of int

type mask = round:int -> robot:robot -> bool

(* Fault injection is a pair of pure predicates over (round, robot): the
   same slot always answers the same, so select-time [allowed] and the
   execution inside [apply] agree within a round. [fh_enabled] guards the
   whole feature with a single immutable branch, keeping the no-faults
   path identical to the pre-fault hot loop. *)
type fault_hook = {
  fh_enabled : bool;
  fh_down : round:int -> robot:robot -> bool;
  fh_restart : round:int -> robot:robot -> bool;
  fh_may_restart : bool;
}

let fault_noop =
  {
    fh_enabled = false;
    fh_down = (fun ~round:_ ~robot:_ -> false);
    fh_restart = (fun ~round:_ ~robot:_ -> false);
    fh_may_restart = false;
  }

type reactive_blocker = round:int -> selected:move array -> bool array

(* The hidden side of the exploration: either a fixed tree, or a world
   materialized lazily by an adversary. Node ids of promised children are
   allocated before their subtree shape is decided, so the discovered tree
   never depends on information the robots should not have. *)
type world = {
  w_capacity : int; (* upper bound on node ids, for array sizing *)
  w_root : int;
  w_degree : node:int -> arriving:int -> round:int -> int;
      (* total ports of a node, decided once at its reveal *)
  w_child : int -> int -> int; (* (revealed parent, child port) -> node id *)
  w_stats : unit -> int * int * int; (* current n, depth, max degree *)
  w_tree : unit -> Tree.t;
}

let world_of_tree tree =
  (* w_stats is polled every round by the runner's termination bound:
     memoize the O(n) scans. *)
  let stats = lazy (Tree.n tree, Tree.depth tree, Tree.max_degree tree) in
  {
    w_capacity = Tree.n tree;
    w_root = Tree.root tree;
    w_degree = (fun ~node ~arriving:_ ~round:_ -> Tree.degree tree node);
    w_child = (fun v p -> Tree.neighbor_via_port tree v p);
    w_stats = (fun () -> Lazy.force stats);
    w_tree = (fun () -> tree);
  }

type t = {
  world : world;
  fixed : bool; (* tree-backed world: n/D/Δ never change after creation *)
  probe : Bfdn_obs.Probe.t; (* disabled by default; fires once per apply *)
  view : Partial_tree.t;
  k : int;
  positions : int array;
  mask : mask;
  fault : fault_hook;
  mutable blocker : reactive_blocker option;
  mutable round : int;
  mutable restarts : int;
  mutable moves_total : int;
  moves_per_robot : int array;
  mutable edge_events : int;
  mutable up_seen : bool array; (* per-node, grows with the view *)
  mutable allowed_total : int;
  mutable multi_reveals : int;
  (* Per-round scratch, reused across every {!apply} call so the steady
     state round loop allocates nothing. *)
  eff : move array; (* selected moves after masking, length k *)
  tgt_dst : int array; (* resolved target node, -1 = no move, length k *)
  tgt_port : int array; (* dangling port being crossed, -1 = none, length k *)
  mutable arriving : int array; (* per-node arrival counts, grows *)
}

(* The per-node scratch arrays track the view's growable id space instead
   of being sized to w_capacity up front: on a lazily materialized huge
   world the environment then holds O(explored) state. Fresh ids enter
   only through dangling-port resolution, so this is the one growth
   point; growth preserves contents and the zero/false defaults, keeping
   observable behaviour identical. *)
let ensure_scratch t id =
  if id >= Array.length t.arriving then begin
    let old = Array.length t.arriving in
    let cap = min t.world.w_capacity (max (id + 1) (2 * old)) in
    let arriving = Array.make cap 0 in
    Array.blit t.arriving 0 arriving 0 old;
    t.arriving <- arriving;
    let up_seen = Array.make cap false in
    Array.blit t.up_seen 0 up_seen 0 old;
    t.up_seen <- up_seen
  end

let of_world ?(mask = fun ~round:_ ~robot:_ -> true) ?(fixed = false)
    ?(probe = Bfdn_obs.Probe.noop) ?(fault = fault_noop) world ~k =
  if k < 1 then invalid_arg "Env.create: k must be >= 1";
  let view = Partial_tree.Internal.create ~hidden_n:world.w_capacity ~root:world.w_root in
  Partial_tree.Internal.reveal view world.w_root ~parent:None
    ~num_ports:(world.w_degree ~node:world.w_root ~arriving:k ~round:0);
  let scratch_cap = Partial_tree.id_bound view in
  {
    world;
    fixed;
    probe;
    view;
    k;
    positions = Array.make k world.w_root;
    mask;
    fault;
    blocker = None;
    round = 0;
    restarts = 0;
    moves_total = 0;
    moves_per_robot = Array.make k 0;
    edge_events = 0;
    up_seen = Array.make scratch_cap false;
    allowed_total = 0;
    multi_reveals = 0;
    eff = Array.make k Stay;
    tgt_dst = Array.make k (-1);
    tgt_port = Array.make k (-1);
    arriving = Array.make scratch_cap 0;
  }

let create ?mask ?probe ?fault tree ~k =
  of_world ?mask ?probe ?fault ~fixed:true (world_of_tree tree) ~k

let set_reactive_blocker t blocker = t.blocker <- Some blocker

let k t = t.k
let capacity t = t.world.w_capacity
let round t = t.round
let view t = t.view
let position t i = t.positions.(i)
let positions t = Array.copy t.positions
let allowed t i =
  t.mask ~round:t.round ~robot:i
  && not (t.fault.fh_enabled && t.fault.fh_down ~round:t.round ~robot:i)

let fully_explored t = Partial_tree.complete t.view

let all_at_root t =
  let root = Partial_tree.root t.view in
  Array.for_all (fun p -> p = root) t.positions

let restarts t = t.restarts
let moves_total t = t.moves_total
let moves_of_robot t i = t.moves_per_robot.(i)
let edge_events t = t.edge_events
let allowed_total t = t.allowed_total
let multi_reveals t = t.multi_reveals

let oracle_n t =
  let n, _, _ = t.world.w_stats () in
  n

let oracle_depth t =
  let _, d, _ = t.world.w_stats () in
  d

let oracle_max_degree t =
  let _, _, dd = t.world.w_stats () in
  dd

let oracle_tree t = t.world.w_tree ()

let fixed_world t = t.fixed

let apply t moves =
  if Array.length moves <> t.k then invalid_arg "Env.apply: wrong arity";
  (* Pre-round totals for the probe's per-round deltas: plain ints, so
     the disabled path stays allocation-free. *)
  let moves0 = t.moves_total in
  let events0 = t.edge_events in
  let explored0 = Partial_tree.num_explored t.view in
  (* The reactive blocker (Remark 8) sees the selected moves before
     deciding. Test-only adversary: this branch may allocate. *)
  let reactive =
    match t.blocker with
    | None -> None
    | Some blocker ->
        let verdict = blocker ~round:t.round ~selected:(Array.copy moves) in
        if Array.length verdict <> t.k then
          invalid_arg "Env.apply: reactive blocker returned wrong arity";
        Some verdict
  in
  (* Count this round's allowance and pin masked robots. *)
  let fault = t.fault in
  for i = 0 to t.k - 1 do
    t.eff.(i) <- Stay;
    if
      t.mask ~round:t.round ~robot:i
      && not (fault.fh_enabled && fault.fh_down ~round:t.round ~robot:i)
      && (match reactive with None -> true | Some v -> v.(i))
    then begin
      t.allowed_total <- t.allowed_total + 1;
      t.eff.(i) <- moves.(i)
    end
  done;
  (* Validate and resolve all targets before mutating anything: moves are
     synchronous. Targets are int-encoded ([tgt_dst] = -1 for Stay,
     [tgt_port] = the dangling port being crossed or -1) so resolution
     allocates nothing. *)
  let dsts = t.tgt_dst and ports = t.tgt_port in
  for i = 0 to t.k - 1 do
    let pos = t.positions.(i) in
    match t.eff.(i) with
    | Stay ->
        dsts.(i) <- -1;
        ports.(i) <- -1
    | Up ->
        let p = Partial_tree.parent_id t.view pos in
        if p < 0 then invalid_arg "Env.apply: Up selected at the root";
        dsts.(i) <- p;
        ports.(i) <- -1
    | Via_port p ->
        let nports = Partial_tree.num_ports t.view pos in
        if p < 0 || p >= nports then invalid_arg "Env.apply: port out of range";
        if Partial_tree.is_port_dangling t.view pos p then begin
          let dst = t.world.w_child pos p in
          ensure_scratch t dst;
          dsts.(i) <- dst;
          ports.(i) <- p
        end
        else begin
          let c = Partial_tree.port_child_id t.view pos p in
          dsts.(i) <- (if c >= 0 then c else Partial_tree.parent_id t.view pos);
          ports.(i) <- -1
        end
  done;
  (* Arrival counts in O(k): clear only the entries this round touches,
     then count. The scratch array persists across rounds. *)
  let arr = t.arriving in
  for i = 0 to t.k - 1 do
    if dsts.(i) >= 0 then arr.(dsts.(i)) <- 0
  done;
  for i = 0 to t.k - 1 do
    if dsts.(i) >= 0 then arr.(dsts.(i)) <- arr.(dsts.(i)) + 1
  done;
  (* Apply. Dangling ports are resolved at most once even when several
     robots cross the same new edge in the same round. *)
  for i = 0 to t.k - 1 do
    let dst = dsts.(i) in
    if dst >= 0 then begin
      let src = t.positions.(i) in
      t.positions.(i) <- dst;
      t.moves_total <- t.moves_total + 1;
      t.moves_per_robot.(i) <- t.moves_per_robot.(i) + 1;
      if Partial_tree.is_explored t.view dst then begin
        (* First child-to-parent crossing is an edge event. *)
        if
          Partial_tree.depth_of t.view dst < Partial_tree.depth_of t.view src
          && not t.up_seen.(src)
        then begin
          t.up_seen.(src) <- true;
          t.edge_events <- t.edge_events + 1
        end
      end
      else begin
        (* New node: resolve the crossed dangling port and reveal. *)
        let arriving = arr.(dst) in
        if arriving > 1 then t.multi_reveals <- t.multi_reveals + 1;
        Partial_tree.Internal.resolve_dangling t.view src ports.(i) dst;
        Partial_tree.Internal.reveal t.view dst ~parent:(Some src)
          ~num_ports:(t.world.w_degree ~node:dst ~arriving ~round:t.round);
        t.edge_events <- t.edge_events + 1
      end
    end
  done;
  (* Crash-with-restart: a replacement robot comes online at the root at
     the start of the next round. The teleport is not an edge traversal,
     so it leaves every move/edge-event metric untouched. *)
  if fault.fh_enabled && fault.fh_may_restart then begin
    let root = Partial_tree.root t.view in
    for i = 0 to t.k - 1 do
      if fault.fh_restart ~round:t.round ~robot:i then begin
        t.positions.(i) <- root;
        t.restarts <- t.restarts + 1
      end
    done
  end;
  t.round <- t.round + 1;
  if t.probe.Bfdn_obs.Probe.enabled then begin
    (* Every robot makes at most one effective move per round, so the
       idle count is [k - moved] — no scan needed. *)
    let moved = t.moves_total - moves0 in
    t.probe.Bfdn_obs.Probe.on_round ~round:t.round ~moved ~idle:(t.k - moved)
      ~revealed:(Partial_tree.num_explored t.view - explored0)
      ~edge_events:(t.edge_events - events0)
  end
