module Tree = Bfdn_trees.Tree
module Pqueue = Bfdn_util.Pqueue

type robot = int

type action = Park | Go_up | Go_port of int

type t = {
  hidden : Tree.t;
  view : Partial_tree.t;
  k : int;
  speeds : float array;
  positions : int array;
  in_transit : bool array; (* robot has a pending arrival event *)
  claims : (int * int, unit) Hashtbl.t;
  events : (robot * int * int option) Pqueue.t;
      (* (robot, destination, crossed dangling port at the source) *)
  mutable now : float;
  mutable makespan : float;
  travelled : int array;
  mutable restarts : int;
}

type decide = t -> robot -> action

let create ?speeds hidden ~k =
  if k < 1 then invalid_arg "Async_env.create: k must be >= 1";
  let speeds =
    match speeds with
    | None -> Array.make k 1.0
    | Some s ->
        if Array.length s <> k then invalid_arg "Async_env.create: wrong speeds arity";
        if Array.exists (fun x -> x <= 0.0) s then
          invalid_arg "Async_env.create: speeds must be positive";
        Array.copy s
  in
  let root = Tree.root hidden in
  let view = Partial_tree.Internal.create ~hidden_n:(Tree.n hidden) ~root in
  Partial_tree.Internal.reveal view root ~parent:None ~num_ports:(Tree.degree hidden root);
  {
    hidden;
    view;
    k;
    speeds;
    positions = Array.make k root;
    in_transit = Array.make k false;
    claims = Hashtbl.create 16;
    events = Pqueue.create ();
    now = 0.0;
    makespan = 0.0;
    travelled = Array.make k 0;
    restarts = 0;
  }

let view t = t.view
let k t = t.k
let capacity t = Tree.n t.hidden
let now t = t.now
let position t i = t.positions.(i)
let claimed t v p = Hashtbl.mem t.claims (v, p)
let fully_explored t = Partial_tree.complete t.view

let all_at_root t =
  let root = Partial_tree.root t.view in
  Array.for_all (fun p -> p = root) t.positions

let makespan t = t.makespan
let distance_travelled t i = t.travelled.(i)
let moves_total t = Array.fold_left ( + ) 0 t.travelled
let positions t = Array.copy t.positions
let restarts t = t.restarts
let min_speed t = Array.fold_left min t.speeds.(0) t.speeds
let oracle_depth t = Tree.depth t.hidden

(* Launch a traversal: schedule the arrival event and claim dangling
   ports. *)
let depart t i action =
  let pos = t.positions.(i) in
  match action with
  | Park -> false
  | Go_up -> (
      match Partial_tree.parent t.view pos with
      | None -> invalid_arg "Async_env: Go_up at the root"
      | Some parent ->
          Pqueue.push t.events (t.now +. (1.0 /. t.speeds.(i))) (i, parent, None);
          t.in_transit.(i) <- true;
          true)
  | Go_port p ->
      if p < 0 || p >= Partial_tree.num_ports t.view pos then
        invalid_arg "Async_env: port out of range";
      let crossed, dst =
        match Partial_tree.port t.view pos p with
        | Partial_tree.To_parent -> (None, Option.get (Partial_tree.parent t.view pos))
        | Partial_tree.Child c -> (None, c)
        | Partial_tree.Dangling ->
            if Hashtbl.mem t.claims (pos, p) then
              invalid_arg "Async_env: dangling port already claimed";
            Hashtbl.replace t.claims (pos, p) ();
            (Some p, Tree.neighbor_via_port t.hidden pos p)
      in
      Pqueue.push t.events (t.now +. (1.0 /. t.speeds.(i))) (i, dst, crossed);
      t.in_transit.(i) <- true;
      true

(* The driver factors {!run}'s event pump into resumable horizons so a
   synchronous round loop ({!Exec_env.run}) can step the simulation one
   unit of continuous time at a time, interleaving fault checks between
   horizons. [run ~until:infinity] over the driver replays the original
   monolithic loop event-for-event (the queue drains in the same order),
   so existing callers of {!run} are bit-identical. *)
type driver = {
  d_t : t;
  d_decide : decide;
  d_fault : Env.fault_hook;
  d_on_restart : (robot -> unit) option;
  d_parked : bool array;
  d_max_events : int;
  mutable d_events : int;
}

let d_ask d i =
  let t = d.d_t in
  if not t.in_transit.(i) then begin
    let fault = d.d_fault in
    if fault.Env.fh_enabled && fault.Env.fh_down ~round:(int_of_float t.now) ~robot:i
    then
      (* Crashed while grounded: forced park until the window closes
         (checked again at the next horizon). *)
      d.d_parked.(i) <- true
    else if depart t i (d.d_decide t i) then d.d_parked.(i) <- false
    else d.d_parked.(i) <- true
  end

let driver ?(max_events = 10_000_000) ?(fault = Env.fault_noop) ?on_restart
    decide t =
  let d =
    {
      d_t = t;
      d_decide = decide;
      d_fault = fault;
      d_on_restart = on_restart;
      d_parked = Array.make t.k false;
      d_max_events = max_events;
      d_events = 0;
    }
  in
  (* Initial decisions in robot order. *)
  for i = 0 to t.k - 1 do
    d_ask d i
  done;
  d

let advance d ~until =
  let t = d.d_t in
  let continue = ref true in
  while !continue do
    match Pqueue.peek t.events with
    | Some (time, _) when time <= until -> (
        match Pqueue.pop t.events with
        | None -> assert false
        | Some (time, (i, dst, crossed)) ->
            d.d_events <- d.d_events + 1;
            if d.d_events > d.d_max_events then
              failwith "Async_env.run: event limit exceeded";
            t.now <- time;
            t.makespan <- time;
            let src = t.positions.(i) in
            t.positions.(i) <- dst;
            t.in_transit.(i) <- false;
            t.travelled.(i) <- t.travelled.(i) + 1;
            let discovered =
              match crossed with
              | None -> false
              | Some p ->
                  Hashtbl.remove t.claims (src, p);
                  Partial_tree.Internal.resolve_dangling t.view src p dst;
                  Partial_tree.Internal.reveal t.view dst ~parent:(Some src)
                    ~num_ports:(Tree.degree t.hidden dst);
                  true
            in
            d_ask d i;
            (* New frontier: wake the parked robots (in robot order). *)
            if discovered then
              for j = 0 to t.k - 1 do
                if d.d_parked.(j) then d_ask d j
              done)
    | _ -> continue := false
  done;
  (* Horizon boundary: advance the clock, run the restart sweep, then
     re-ask every parked robot (crash windows may have closed; restarted
     robots need a fresh route). Skipped for the monolithic
     [~until:infinity] drain, which has no boundaries. *)
  if until < infinity then begin
    if until > t.now then t.now <- until;
    let fault = d.d_fault in
    if fault.Env.fh_enabled && fault.Env.fh_may_restart then begin
      let root = Partial_tree.root t.view in
      let round = int_of_float until in
      for i = 0 to t.k - 1 do
        if
          (not t.in_transit.(i))
          && fault.Env.fh_restart ~round ~robot:i
          && t.positions.(i) <> root
        then begin
          (* Replacement robot at the root; a teleport, not a traversal,
             so move metrics stay untouched. *)
          t.positions.(i) <- root;
          t.restarts <- t.restarts + 1;
          (match d.d_on_restart with None -> () | Some f -> f i);
          d.d_parked.(i) <- true
        end
      done
    end;
    for i = 0 to t.k - 1 do
      if d.d_parked.(i) then d_ask d i
    done
  end

let idle d =
  Pqueue.is_empty d.d_t.events
  && Array.for_all (fun b -> not b) d.d_t.in_transit

let run ?max_events decide t =
  let d = driver ?max_events decide t in
  advance d ~until:infinity
