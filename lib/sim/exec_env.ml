module Clock = Bfdn_util.Clock
module Probe = Bfdn_obs.Probe

type t = {
  kind : string;
  k : int;
  round : unit -> int;
  select : unit -> unit;
  apply : unit -> unit;
  finished : unit -> bool;
  round_limit : unit -> int;
  explored : unit -> bool;
  at_home : unit -> bool;
  moves_total : unit -> int;
  edge_events : unit -> int;
  positions : unit -> int array;
  frame : unit -> Trace.frame;
  render : unit -> string;
}

let run ?max_rounds ?(on_round = fun _ -> ()) ?(probe = Probe.noop) x =
  let limit =
    match max_rounds with Some m -> fun () -> m | None -> x.round_limit
  in
  let hit_limit = ref false in
  let continue = ref true in
  if probe.Probe.enabled then begin
    (* Same phase bracketing as {!Runner.run}'s instrumented loop: the
       phases are contiguous, so each end stamp doubles as the next
       start — 3 clock reads per round. *)
    let t = ref (Clock.now_ns ()) in
    while !continue do
      let fin = x.finished () in
      let t1 = Clock.now_ns () in
      probe.Probe.on_phase Probe.Finished_check (t1 - !t);
      t := t1;
      if fin then continue := false
      else if x.round () >= limit () then begin
        hit_limit := true;
        continue := false
      end
      else begin
        x.select ();
        let t2 = Clock.now_ns () in
        probe.Probe.on_phase Probe.Select (t2 - !t);
        x.apply ();
        let t3 = Clock.now_ns () in
        probe.Probe.on_phase Probe.Apply (t3 - t2);
        t := t3;
        on_round x
      end
    done
  end
  else
    while !continue do
      if x.finished () then continue := false
      else if x.round () >= limit () then begin
        hit_limit := true;
        continue := false
      end
      else begin
        x.select ();
        x.apply ();
        on_round x
      end
    done;
  {
    Runner.rounds = x.round ();
    explored = x.explored ();
    at_root = x.at_home ();
    moves = x.moves_total ();
    edge_events = x.edge_events ();
    hit_round_limit = !hit_limit;
  }

let of_env algo env =
  let pending = ref [||] in
  let round_limit =
    if Env.fixed_world env then begin
      let m = lazy (Runner.default_max_rounds env) in
      fun () -> Lazy.force m
    end
    else fun () -> Runner.default_max_rounds env
  in
  {
    kind = "tree";
    k = Env.k env;
    round = (fun () -> Env.round env);
    select = (fun () -> pending := algo.Runner.select env);
    apply = (fun () -> Env.apply env !pending);
    finished = (fun () -> algo.Runner.finished env);
    round_limit;
    explored = (fun () -> Env.fully_explored env);
    at_home = (fun () -> Env.all_at_root env);
    moves_total = (fun () -> Env.moves_total env);
    edge_events = (fun () -> Env.edge_events env);
    positions = (fun () -> Env.positions env);
    frame = (fun () -> Trace.frame_of_env env);
    render = (fun () -> Trace.render_frame env);
  }

let of_async ?(fault = Env.fault_noop) ?(probe = Probe.noop) ?on_restart
    decide aenv =
  let d = Async_env.driver ~fault ?on_restart decide aenv in
  let view = Async_env.view aenv in
  let k = Async_env.k aenv in
  let round = ref 0 in
  (* Pre-horizon totals for the probe's per-round deltas. *)
  let moves0 = ref 0 in
  let explored0 = ref (Partial_tree.num_explored view) in
  let limit =
    (* The synchronous divergence guard, stretched by the slowest robot:
       a unit edge takes [1/speed] horizons. *)
    lazy
      (let n = Async_env.capacity aenv in
       let depth = Async_env.oracle_depth aenv in
       let base = (3 * n * (depth + 2)) + 100 in
       int_of_float (ceil (float_of_int base /. Async_env.min_speed aenv)))
  in
  {
    kind = "async";
    k;
    round = (fun () -> !round);
    select = (fun () -> ());
    apply =
      (fun () ->
        incr round;
        Async_env.advance d ~until:(float_of_int !round);
        if probe.Probe.enabled then begin
          let moves = Async_env.moves_total aenv in
          let explored = Partial_tree.num_explored view in
          let moved = min (moves - !moves0) k in
          probe.Probe.on_round ~round:!round ~moved ~idle:(k - moved)
            ~revealed:(explored - !explored0)
            ~edge_events:(explored - !explored0);
          moves0 := moves;
          explored0 := explored
        end);
    finished =
      (fun () -> Async_env.fully_explored aenv && Async_env.all_at_root aenv);
    round_limit = (fun () -> Lazy.force limit);
    explored = (fun () -> Async_env.fully_explored aenv);
    at_home = (fun () -> Async_env.all_at_root aenv);
    moves_total = (fun () -> Async_env.moves_total aenv);
    edge_events = (fun () -> Partial_tree.num_explored view - 1);
    positions = (fun () -> Async_env.positions aenv);
    frame =
      (fun () ->
        {
          Trace.round = !round;
          positions = Async_env.positions aenv;
          explored = Partial_tree.num_explored view;
          dangling = Partial_tree.num_dangling view;
        });
    render =
      (fun () ->
        Printf.sprintf "t=%.2f explored=%d/%d dangling=%d\n"
          (Async_env.now aenv)
          (Partial_tree.num_explored view)
          (Async_env.capacity aenv)
          (Partial_tree.num_dangling view));
  }
