(** Round loop driving an online algorithm against an {!Env}. *)

type algo = {
  name : string;
  select : Env.t -> Env.move array;
      (** Produce this round's selection for every robot. Must not mutate
          the environment. *)
  finished : Env.t -> bool;
      (** The algorithm's own termination condition, evaluated before each
          round. *)
}

type result = {
  rounds : int;
  explored : bool;  (** all edges discovered and traversed *)
  at_root : bool;  (** all robots back at the root on termination *)
  moves : int;  (** total edge traversals *)
  edge_events : int;
  hit_round_limit : bool;
}

val default_max_rounds : Env.t -> int
(** The divergence guard used when [max_rounds] is not given: the
    termination bound [3 * n * (D + 2) + 100] of Section 2.1, far above
    any correct run. Also used by {!Exec_env.of_env}. *)

val run :
  ?max_rounds:int ->
  ?on_round:(Env.t -> unit) ->
  ?probe:Bfdn_obs.Probe.t ->
  algo ->
  Env.t ->
  result
(** Repeatedly query [select] and {!Env.apply} until [finished], the
    environment is fully explored with the algorithm finished, or
    [max_rounds] is reached (default: the termination bound
    [3 * n * (D + 2) + 100] of Section 2.1, far above any correct run).
    [on_round] is invoked after every applied round.

    When an enabled [probe] is given, every round's three phases
    (finished-check, select, apply) are bracketed with monotonic clock
    reads and reported through [probe.on_phase]; the default
    {!Bfdn_obs.Probe.noop} runs a separate loop with no clock reads at
    all. The probe does not alter the round loop's decisions, so results
    are identical with and without it. *)

val pp_result : Format.formatter -> result -> unit
