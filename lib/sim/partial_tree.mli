(** The partially explored tree [T_online = (V, E)] of Section 2.

    [V] is the set of {e explored} nodes (occupied by at least one robot in
    the past); [E] the set of {e discovered} edges (at least one explored
    endpoint). A discovered edge with exactly one explored endpoint is
    {e dangling}. Nodes reuse the hidden tree's integer ids, but this
    structure only ever contains information already revealed to the
    robots; algorithms must read the exploration state exclusively through
    this interface.

    Port numbering matches {!Bfdn_trees.Tree}: at an explored non-root node,
    port [0] leads to the parent; other ports lead to children, each either
    already explored ([Child]) or dangling. Exploration is complete exactly
    when no dangling port remains.

    Storage is succinct and growable: per-node attributes live in flat int
    arrays and all port states share one flat pool (no per-node heap
    blocks). Above a prealloc threshold the arrays start small and grow
    geometrically as ids are revealed, so exploring a prefix of a huge
    lazily-materialized world costs O(explored) memory, not O(n). *)

type t

type node = int

type port_state =
  | To_parent  (** port 0 of a non-root node *)
  | Dangling  (** discovered edge whose far endpoint is unexplored *)
  | Child of node  (** explored edge to an explored child *)

val root : t -> node

val is_explored : t -> node -> bool

val num_explored : t -> int

val num_dangling : t -> int
(** Total number of dangling edges; [0] iff exploration is complete. *)

val complete : t -> bool

val num_ports : t -> node -> int
(** Degree of an explored node (revealed on first visit).
    @raise Invalid_argument if the node is unexplored. *)

val port : t -> node -> int -> port_state
(** State of one port of an explored node. *)

val is_port_dangling : t -> node -> int -> bool
(** Allocation-free test of one port's state — equivalent to
    [port t v p = Dangling] without materializing the variant. Hot-path
    accessor: the port index must be in range (out-of-range indices fail
    with the array bounds check). *)

val port_child_id : t -> node -> int -> node
(** The explored child behind a port, or [-1] when the port leads to the
    parent or is dangling. Allocation-free hot-path accessor. *)

val dangling_ports : t -> node -> int list
(** Ports of an explored node that are dangling, in increasing order.
    Builds a fresh list; iterate with {!iter_dangling_ports} on hot paths. *)

val iter_dangling_ports : t -> node -> (int -> unit) -> unit
(** Apply a function to each dangling port in increasing order, without
    building a list. *)

val explored_children : t -> node -> (int * node) list
(** [(port, child)] pairs for explored children, in increasing port order.
    Builds a fresh list; iterate with {!iter_explored_children} on hot
    paths. *)

val iter_explored_children : t -> node -> (int -> node -> unit) -> unit
(** Apply [f port child] to each explored child in increasing port order,
    without building a list. *)

val parent : t -> node -> node option
(** [None] for the root. Defined for explored nodes. *)

val parent_id : t -> node -> node
(** The parent's id, or [-1] for the root — {!parent} without the option
    allocation. *)

val parent_port : t -> node -> int
(** The port {e on the parent} that leads down to the node, cached when the
    node's parent edge was resolved; [-1] for the root (and for fixture
    nodes revealed without {!Internal.resolve_dangling}). O(1). *)

val depth_of : t -> node -> int
(** Distance to the root (known online: nodes are reached along discovered
    edges). *)

val is_open : t -> node -> bool
(** Adjacent to at least one dangling edge (the paper's "open node"). *)

val is_closed : t -> node -> bool
(** Explored and not open. A node of the {e fully discovered} frontierless
    region may still have open descendants; see {!subtree_open}. *)

val subtree_open : t -> node -> bool
(** Whether the discovered subtree below the node (inclusive) still contains
    a dangling edge — i.e. whether [T(v)] is possibly not fully explored.
    O(1): maintained incrementally. *)

val min_open_depth : t -> int option
(** Minimum depth of an open node, [None] when exploration is complete. *)

val min_open_depth_raw : t -> int
(** {!min_open_depth} without the option allocation; [-1] when complete. *)

val open_nodes_at_depth : t -> int -> node list
(** All open nodes at one depth, sorted by node id (the canonical order —
    independent of the internal bucket layout). Builds a fresh list; use
    {!fold_open_at_depth} on hot paths. *)

val open_nodes_at_min_depth : t -> node list
(** [open_nodes_at_depth] at {!min_open_depth}; [[]] when complete. *)

val num_open_at_depth : t -> int -> int
(** Number of open nodes at one depth. O(1). *)

val fold_open_at_depth : t -> int -> init:'a -> f:('a -> node -> 'a) -> 'a
(** Fold over the open nodes of one depth without allocating, in the
    bucket's internal order. That order is deterministic — a pure function
    of the reveal/resolve call sequence (insertion order, with removals
    moving the bucket's last node into the freed slot) — but {e not}
    canonical: it is not sorted and may differ between two discovery
    histories of the same frontier. Reductions over it must therefore be
    order-independent (min/max/count/uniquely-tie-broken argmin); anything
    order-sensitive must sort first, as {!open_nodes_at_depth} does. *)

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a v]: [a] lies on the (discovered) path from [v] to the
    root, inclusive of [v]. Both nodes must be explored. *)

val ports_from_root : t -> node -> int list
(** The port sequence leading from the root to an explored node — the
    stack contents of Algorithm 1 line 8 (in traversal order). O(depth):
    reads the {!parent_port} cache, no port-array scans. *)

val fold_explored : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val id_bound : t -> int
(** Exclusive upper bound on every node id revealed or resolved so far
    (the current capacity of the growable per-node arrays — O(explored)
    by geometric growth). Algorithms size their own per-node scratch
    arrays from it and re-check it each round; it only ever grows. *)

val check_invariants : t -> unit
(** Exhaustive O(n·D) re-verification of the incremental bookkeeping
    (dangling counters, open-node buckets and their back-indices, the
    parent-port cache). For tests.
    @raise Invalid_argument on a broken invariant. *)

(** Mutators, reserved to {!Env}: the simulator is the only component that
    may reveal information. Calling these from algorithm code would be
    cheating (reading the future); the test-suite exercises them only to
    build fixtures. *)
module Internal : sig
  val create : hidden_n:int -> root:node -> t
  (** Empty discovery state; the root is not yet revealed. *)

  val reveal : t -> node -> parent:node option -> num_ports:int -> unit
  (** Mark a node explored, with its full port count; all child ports start
      dangling. [parent = None] only for the root. Idempotence is an error:
      the caller must reveal each node exactly once. *)

  val resolve_dangling : t -> node -> int -> node -> unit
  (** [resolve_dangling t v p c] records that the dangling port [p] of [v]
      leads to [c]. The caller must then {!reveal} [c] (same round). *)
end
