(** Exploration traces and small-scale ASCII rendering.

    Attach {!recorder} to {!Runner.run}'s [on_round] hook to capture one
    frame per round; {!render_frame} then draws the discovered tree with
    robot positions, which the examples use as a terminal animation.

    Frames are held in a bounded ring buffer ({!Bfdn_obs.Sink.Ring}):
    once more than [capacity] frames have been recorded the oldest are
    overwritten, so arbitrarily long runs trace in constant memory. For
    a lossless record, stream frames as they happen ({!json_of_frame}
    with [explore run --trace FILE.jsonl]). *)

type frame = {
  round : int;
  positions : int array;
  explored : int;  (** nodes explored so far *)
  dangling : int;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the retained frames (default 4096).
    @raise Invalid_argument when [capacity < 1]. *)

val recorder : t -> Env.t -> unit
(** To be used as [~on_round:(Trace.recorder trace)]. *)

val record : t -> Env.t -> unit
(** Capture the current state as a frame (used for the initial state). *)

val frame_of_env : Env.t -> frame
(** The frame {!record} would store, without storing it. *)

val push : t -> frame -> unit
(** Record an externally built frame — e.g. one produced by a
    non-tree execution view ([Exec_env.t.frame]). *)

val frames : t -> frame list
(** Retained frames in chronological order (the newest [capacity] ones
    when the ring has wrapped). *)

val length : t -> int
(** Total frames ever recorded (may exceed [List.length (frames t)]
    once the ring wraps). *)

val retained : t -> int
(** Frames currently held, [min (length t) capacity]. *)

val dropped : t -> int
(** Frames overwritten so far: [length t - retained t]. *)

val json_of_frame : frame -> Bfdn_obs.Json.t
(** [{round, explored, dangling, positions}] — one line of the JSONL
    trace stream. *)

val render_frame : Env.t -> string
(** Indented rendering of the current discovered tree; each line shows one
    node, its dangling-port count, and the robots standing on it. Intended
    for trees of at most a few dozen nodes. *)

val depth_timeline : t -> Env.t -> string
(** Heat-map of robot counts per depth (rows) over time (columns, one per
    retained frame, subsampled to fit 72 columns): the breadth-first wave
    of BFDN is visible as a diagonal front. Uses the final environment to
    resolve node depths. *)
