(** Synchronous exploration environment for non-tree graphs (Section 4.3).

    Differences with the tree environment {!Bfdn_sim.Env}:

    - an edge left through an unknown ("dangling") port may lead to an
      already explored node, or to a node that is not strictly further from
      the origin — the paper's rule then {e closes} the edge, the arriving
      node is {e not} marked explored in the second case, and the robot
      must go back where it came from on its next allowed move;
    - every robot knows, at any node it stands on, the node's graph
      distance to the origin (the paper's added assumption, geometric in
      the grid setting of [12]; here backed by a precomputed BFS);
    - exploration grows a BFS tree of the graph: the never-closed edges.
      The environment exposes each explored node's tree parent, which gives
      robots their way "up".

    Exploration is complete when no unknown port remains, i.e. every edge
    of the graph has been traversed (or closed from both endpoints). *)

type t

type robot = int

type move =
  | Stay
  | Via_port of int  (** any known-or-unknown port of the current node *)
  | Back  (** return along the arrival edge; the only legal move besides
              [Stay] after crossing an edge that got closed under the
              robot's feet *)

type port_state =
  | Unknown  (** never traversed: selectable for discovery *)
  | Tree  (** a retained (BFS-tree) edge *)
  | Closed  (** traversed and discarded by the closing rule *)

val create :
  ?probe:Bfdn_obs.Probe.t ->
  ?fault:Bfdn_sim.Env.fault_hook ->
  Graph.t ->
  origin:Graph.node ->
  k:int ->
  t
(** [probe] (default {!Bfdn_obs.Probe.noop}) receives per-round deltas
    from {!apply}, exactly as the tree environment reports them.
    [fault] (default {!Bfdn_sim.Env.fault_noop}) injects crashes and
    restarts: a down robot's selection is forced to [Stay] (reported as
    not {!allowed}), and a restart teleports the robot to the origin
    between rounds, clearing any pending backtrack. *)

val k : t -> int
val round : t -> int
val origin : t -> Graph.node
val position : t -> robot -> Graph.node
val positions : t -> Graph.node array

val is_explored : t -> Graph.node -> bool
val num_explored : t -> int

val dist : t -> Graph.node -> int
(** Distance to the origin — available to a robot standing on the node
    (and for any explored node, shared knowledge under complete
    communication). *)

val num_ports : t -> Graph.node -> int
val port : t -> Graph.node -> int -> port_state
val port_target : t -> Graph.node -> int -> Graph.node option
(** Far endpoint of a [Tree] or [Closed] port ([None] while [Unknown]). *)

val tree_parent : t -> Graph.node -> (Graph.node * int) option
(** [(parent, port-to-parent)] of an explored node in the grown BFS tree;
    [None] at the origin. *)

val needs_backtrack : t -> robot -> bool
(** The robot's last traversal was closed: it stands on the far endpoint
    (possibly unexplored) and must [Back]. *)

val unknown_ports : t -> Graph.node -> int list
(** Unknown ports of an explored node, increasing. *)

val open_nodes_at_min_dist : t -> Graph.node list
(** Explored nodes with at least one unknown port, restricted to minimum
    distance to the origin (anchoring set of graph-BFDN). *)

val check_invariants : t -> unit
(** Exhaustive re-verification of the incremental bookkeeping: symmetric
    port states, resolved targets, BFS-tree parents one step closer to the
    origin, unknown-port accounting. For tests.
    @raise Invalid_argument on a broken invariant. *)

val ports_from_origin : t -> Graph.node -> int list
(** Port sequence from the origin to an explored node along the grown BFS
    tree (the graph analogue of {!Bfdn_sim.Partial_tree.ports_from_root}). *)

val fully_explored : t -> bool
val all_at_origin : t -> bool

val unknown_ports_total : t -> int
(** Unknown ports remaining over all explored nodes — the graph
    analogue of the tree view's dangling-port count. *)

val allowed : t -> robot -> bool
(** Whether the fault hook lets the robot act in the upcoming round. A
    crashed robot reads as not allowed; algorithms should select [Stay]
    for it (any other selection is discarded by {!apply}). *)

val restarts : t -> int
(** Robots teleported back to the origin by crash-with-restart so far. *)

val apply : t -> move array -> unit
(** One synchronous round.
    @raise Invalid_argument on illegal selections (bad port, [Back] with
    no pending backtrack, moving while backtrack is pending, robot on an
    unexplored node selecting anything but [Back]/[Stay]). Selections of
    robots that are not {!allowed} are discarded, not validated. *)

(** {2 Metrics and oracle} *)

val moves_total : t -> int
val closed_edges : t -> int
val traversed_edges : t -> int
(** Distinct graph edges traversed at least once. *)

val oracle_n_edges : t -> int
val oracle_n_nodes : t -> int
val oracle_radius : t -> int
(** Eccentricity of the origin — the paper's [D]. *)

val oracle_max_degree : t -> int
