module Probe = Bfdn_obs.Probe

type robot = int

type move = Stay | Via_port of int | Back

type port_state = Unknown | Tree | Closed

(* Internal port encoding. *)
let st_unknown = 0
let st_tree = 1
let st_closed = 2

type t = {
  g : Graph.t;
  origin : int;
  k : int;
  dist : int array;
  explored : bool array;
  states : int array array;
  targets : int array array; (* far endpoint once not Unknown, else -1 *)
  tree_parent : (int * int) option array; (* (parent, port at this node) *)
  parent_down_port : int array; (* port at the parent leading here; -1 *)
  positions : int array;
  backtrack : int array; (* port to go back through, or -1 *)
  mutable round : int;
  mutable moves_total : int;
  mutable closed : int;
  mutable traversed : int;
  mutable unknown_total : int; (* unknown ports of explored nodes *)
  mutable num_explored : int;
  mutable restarts : int;
  radius : int;
  probe : Probe.t;
  fault : Bfdn_sim.Env.fault_hook;
}

let create ?(probe = Probe.noop) ?(fault = Bfdn_sim.Env.fault_noop) g ~origin
    ~k =
  if k < 1 then invalid_arg "Graph_env.create: k must be >= 1";
  let n = Graph.n g in
  if origin < 0 || origin >= n then invalid_arg "Graph_env.create: bad origin";
  let dist = Graph.bfs_dist g origin in
  if Array.exists (fun d -> d = max_int) dist then
    invalid_arg "Graph_env.create: graph must be connected";
  let t =
    {
      g;
      origin;
      k;
      dist;
      explored = Array.make n false;
      states = Array.init n (fun v -> Array.make (Graph.degree g v) st_unknown);
      targets = Array.init n (fun v -> Array.make (Graph.degree g v) (-1));
      tree_parent = Array.make n None;
      parent_down_port = Array.make n (-1);
      positions = Array.make k origin;
      backtrack = Array.make k (-1);
      round = 0;
      moves_total = 0;
      closed = 0;
      traversed = 0;
      unknown_total = 0;
      num_explored = 0;
      restarts = 0;
      radius = Graph.eccentricity g origin;
      probe;
      fault;
    }
  in
  t.explored.(origin) <- true;
  t.num_explored <- 1;
  t.unknown_total <- Graph.degree g origin;
  t

let k t = t.k
let round t = t.round
let origin t = t.origin
let position t i = t.positions.(i)
let positions t = Array.copy t.positions
let is_explored t v = t.explored.(v)
let num_explored t = t.num_explored

let standing_on t v = Array.exists (fun p -> p = v) t.positions

let dist t v =
  if not (t.explored.(v) || standing_on t v) then
    invalid_arg "Graph_env.dist: node never visited";
  t.dist.(v)

let num_ports t v =
  if not t.explored.(v) then invalid_arg "Graph_env.num_ports: unexplored node";
  Graph.degree t.g v

let port t v p =
  if not t.explored.(v) then invalid_arg "Graph_env.port: unexplored node";
  match t.states.(v).(p) with
  | 0 -> Unknown
  | 1 -> Tree
  | _ -> Closed

let port_target t v p =
  if t.states.(v).(p) = st_unknown then None else Some t.targets.(v).(p)

let tree_parent t v =
  if not t.explored.(v) then invalid_arg "Graph_env.tree_parent: unexplored node";
  t.tree_parent.(v)

let needs_backtrack t i = t.backtrack.(i) >= 0

let unknown_ports t v =
  if not t.explored.(v) then invalid_arg "Graph_env.unknown_ports: unexplored node";
  let acc = ref [] in
  let states = t.states.(v) in
  for p = Array.length states - 1 downto 0 do
    if states.(p) = st_unknown then acc := p :: !acc
  done;
  !acc

let open_nodes_at_min_dist t =
  let best = ref max_int in
  let acc = ref [] in
  for v = 0 to Graph.n t.g - 1 do
    if t.explored.(v) && Array.exists (fun s -> s = st_unknown) t.states.(v) then begin
      let d = t.dist.(v) in
      if d < !best then begin
        best := d;
        acc := [ v ]
      end
      else if d = !best then acc := v :: !acc
    end
  done;
  !acc

let fully_explored t = t.unknown_total = 0
let all_at_origin t = Array.for_all (fun p -> p = t.origin) t.positions
let unknown_ports_total t = t.unknown_total
let restarts t = t.restarts

let allowed t i =
  not (t.fault.Bfdn_sim.Env.fh_enabled
      && t.fault.Bfdn_sim.Env.fh_down ~round:t.round ~robot:i)

let moves_total t = t.moves_total
let closed_edges t = t.closed
let traversed_edges t = t.traversed
let oracle_n_edges t = Graph.num_edges t.g
let oracle_n_nodes t = Graph.n t.g
let oracle_radius t = t.radius
let oracle_max_degree t = Graph.max_degree t.g

(* Mark an edge closed from both endpoints, maintaining the unknown-port
   accounting (only explored endpoints contribute). *)
let close_edge t u p w q =
  t.states.(u).(p) <- st_closed;
  t.targets.(u).(p) <- w;
  t.states.(w).(q) <- st_closed;
  t.targets.(w).(q) <- u;
  t.closed <- t.closed + 1;
  if t.explored.(u) then t.unknown_total <- t.unknown_total - 1;
  if t.explored.(w) then t.unknown_total <- t.unknown_total - 1

let explore_via_tree_edge t u p w q =
  t.states.(u).(p) <- st_tree;
  t.targets.(u).(p) <- w;
  t.states.(w).(q) <- st_tree;
  t.targets.(w).(q) <- u;
  t.unknown_total <- t.unknown_total - 1;
  t.explored.(w) <- true;
  t.num_explored <- t.num_explored + 1;
  t.tree_parent.(w) <- Some (u, q);
  t.parent_down_port.(w) <- p;
  let fresh = ref 0 in
  Array.iter (fun s -> if s = st_unknown then incr fresh) t.states.(w);
  t.unknown_total <- t.unknown_total + !fresh

let apply t moves =
  if Array.length moves <> t.k then invalid_arg "Graph_env.apply: wrong arity";
  (* Pre-round totals for the probe's per-round deltas. *)
  let moves0 = t.moves_total in
  let traversed0 = t.traversed in
  let explored0 = t.num_explored in
  (* Phase 1: validate against the pre-round state and record intents.
     A crashed robot's selection is discarded (forced [Stay]) before
     validation — mirrors the tree environment, where a down robot is
     simply not {!allowed} to act this round. *)
  let discoveries = Hashtbl.create 16 in
  (* key: canonical edge; value: (u, p, w, q, robots from u side, robots
     from w side). *)
  let intents = Array.make t.k None in
  for i = 0 to t.k - 1 do
    let pos = t.positions.(i) in
    match (if allowed t i then moves.(i) else Stay) with
    | Stay -> ()
    | Back ->
        if t.backtrack.(i) < 0 then
          invalid_arg "Graph_env.apply: Back with no pending backtrack";
        intents.(i) <- Some (Graph.neighbor t.g pos t.backtrack.(i))
    | Via_port p ->
        if t.backtrack.(i) >= 0 then
          invalid_arg "Graph_env.apply: must Back before moving again";
        if not t.explored.(pos) then
          invalid_arg "Graph_env.apply: only Back/Stay on an unexplored node";
        if p < 0 || p >= Graph.degree t.g pos then
          invalid_arg "Graph_env.apply: port out of range";
        let w = Graph.neighbor t.g pos p in
        let q = Graph.reverse_port t.g pos p in
        (match t.states.(pos).(p) with
        | s when s = st_closed ->
            invalid_arg "Graph_env.apply: closed edges are never used again"
        | s when s = st_tree -> ()
        | _ ->
            let key = (min pos w, max pos w) in
            let u_side = pos < w in
            let entry =
              match Hashtbl.find_opt discoveries key with
              | Some e -> e
              | None ->
                  let e =
                    if u_side then (pos, p, w, q, ref [], ref [])
                    else (w, q, pos, p, ref [], ref [])
                  in
                  Hashtbl.add discoveries key e;
                  e
            in
            let _, _, _, _, from_u, from_w = entry in
            if u_side then from_u := i :: !from_u else from_w := i :: !from_w);
        intents.(i) <- Some w
  done;
  (* Phase 2: move everyone. *)
  for i = 0 to t.k - 1 do
    match intents.(i) with
    | None -> ()
    | Some dst ->
        (match moves.(i) with Back -> t.backtrack.(i) <- -1 | _ -> ());
        t.positions.(i) <- dst;
        t.moves_total <- t.moves_total + 1
  done;
  (* Phase 3: settle discovered edges in a deterministic order. *)
  let pending = Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) discoveries [] in
  let pending = List.sort compare pending in
  List.iter
    (fun (_, (u, p, w, q, from_u, from_w)) ->
      t.traversed <- t.traversed + 1;
      let crossed_both = !from_u <> [] && !from_w <> [] in
      if crossed_both then
        (* Two robots met head-on: the edge is closed and, by the identity
           swap argument, nobody backtracks (both endpoints are explored:
           robots stood there last round). *)
        close_edge t u p w q
      else begin
        let src, sport, dst, dport, crossers =
          if !from_u <> [] then (u, p, w, q, !from_u) else (w, q, u, p, !from_w)
        in
        if t.explored.(dst) || t.dist.(dst) <= t.dist.(src) then begin
          close_edge t src sport dst dport;
          (* Everybody who crossed must go back; from an unexplored far
             endpoint the node stays unexplored. *)
          List.iter (fun i -> t.backtrack.(i) <- dport) crossers
        end
        else explore_via_tree_edge t src sport dst dport
      end)
    pending;
  (* Crash-with-restart: a replacement robot comes online at the origin
     at the start of the next round. A teleport, not a traversal: move
     and edge metrics stay untouched, and any pending backtrack dies
     with the crashed robot. *)
  let fault = t.fault in
  if fault.Bfdn_sim.Env.fh_enabled && fault.Bfdn_sim.Env.fh_may_restart then
    for i = 0 to t.k - 1 do
      if fault.Bfdn_sim.Env.fh_restart ~round:t.round ~robot:i then begin
        t.positions.(i) <- t.origin;
        t.backtrack.(i) <- -1;
        t.restarts <- t.restarts + 1
      end
    done;
  t.round <- t.round + 1;
  if t.probe.Probe.enabled then begin
    let moved = t.moves_total - moves0 in
    t.probe.Probe.on_round ~round:t.round ~moved ~idle:(t.k - moved)
      ~revealed:(t.num_explored - explored0)
      ~edge_events:(t.traversed - traversed0)
  end

let check_invariants t =
  let fail msg = invalid_arg ("Graph_env.check_invariants: " ^ msg) in
  let unknown = ref 0 in
  for v = 0 to Graph.n t.g - 1 do
    for p = 0 to Graph.degree t.g v - 1 do
      let w = Graph.neighbor t.g v p in
      let q = Graph.reverse_port t.g v p in
      (* port states are symmetric *)
      if t.states.(v).(p) <> t.states.(w).(q) then fail "asymmetric port state";
      if t.states.(v).(p) <> st_unknown && t.targets.(v).(p) <> w then
        fail "wrong resolved target";
      if t.explored.(v) && t.states.(v).(p) = st_unknown then incr unknown
    done;
    if t.explored.(v) && v <> t.origin then begin
      match t.tree_parent.(v) with
      | None -> fail "explored non-origin without a tree parent"
      | Some (parent, q) ->
          if not t.explored.(parent) then fail "tree parent unexplored";
          if t.dist.(parent) + 1 <> t.dist.(v) then fail "tree parent not closer";
          if Graph.neighbor t.g v q <> parent then fail "tree port mismatch";
          if t.states.(v).(q) <> st_tree then fail "tree edge not marked Tree"
    end
  done;
  if !unknown <> t.unknown_total then fail "unknown_total mismatch";
  Array.iteri
    (fun i b ->
      if b >= 0 then begin
        (* a pending backtrack port must be a closed edge at the robot *)
        let pos = t.positions.(i) in
        if b >= Graph.degree t.g pos then fail "backtrack port out of range"
      end)
    t.backtrack

let ports_from_origin t v =
  if not t.explored.(v) then
    invalid_arg "Graph_env.ports_from_origin: unexplored node";
  let rec up v acc =
    match t.tree_parent.(v) with
    | None -> acc
    | Some (parent, _) -> up parent (t.parent_down_port.(v) :: acc)
  in
  up v []
