(** Instance families for experiments and tests.

    All generators are deterministic given their arguments (randomized ones
    take an explicit {!Bfdn_util.Rng.t}). Sizes below are node counts.

    Every constructor computes a saturating node-count estimate up front
    and raises [Invalid_argument] when it exceeds [Sys.max_array_length],
    so huge-tier parameter mistakes (e.g. a multiplicative family at
    n=10^7-scale depth) fail cleanly instead of wrapping an [int]. *)

(** Imperative tree builder used by all generators (and available for tests
    and custom workloads). *)
module Builder : sig
  type t

  val create : unit -> t
  (** Fresh builder containing only the root, node [0]. *)

  val root : t -> Tree.node

  val add_child : t -> Tree.node -> Tree.node
  (** Attach a new node under an existing one and return its id. *)

  val add_path : t -> Tree.node -> int -> Tree.node
  (** [add_path b v len] attaches a path of [len] edges below [v] and
      returns the id of its deepest node ([v] itself when [len = 0]). *)

  val size : t -> int

  val build : t -> Tree.t
end

val path : int -> Tree.t
(** Path with [n] nodes ([n >= 1]); depth [n-1]. *)

val star : int -> Tree.t
(** Root plus [n-1] leaves. *)

val complete : arity:int -> depth:int -> Tree.t
(** Complete [arity]-ary tree of the given depth. *)

val spider : legs:int -> leg_len:int -> Tree.t
(** Root with [legs] disjoint paths of [leg_len] edges. *)

val caterpillar : spine:int -> legs_per_node:int -> Tree.t
(** Path of [spine] edges with [legs_per_node] leaves attached to every
    spine node (including the root). *)

val comb : spine:int -> tooth_len:int -> Tree.t
(** Path of [spine] edges; every spine node (excluding the final one) also
    carries a downward path ("tooth") of [tooth_len] edges. *)

val broom : handle:int -> bristles:int -> Tree.t
(** Path of [handle] edges ending in a star with [bristles] leaves. *)

val random_tree : rng:Bfdn_util.Rng.t -> n:int -> ?max_depth:int -> unit -> Tree.t
(** Random recursive tree on [n] nodes: node [i] attaches to a uniformly
    random earlier node, rejecting parents at depth [max_depth] (default:
    unbounded). *)

val random_bounded_degree :
  rng:Bfdn_util.Rng.t -> n:int -> delta:int -> Tree.t
(** Random tree where every node keeps degree at most [delta] (so the
    maximum degree Δ of the result is at most [delta]); requires
    [delta >= 2]. *)

val random_deep : rng:Bfdn_util.Rng.t -> n:int -> depth:int -> Tree.t
(** Random tree containing a guaranteed path of length [depth] from the
    root, with the remaining nodes attached uniformly at random (at any
    depth <= [depth], so the tree depth is exactly [depth]). Requires
    [n >= depth + 1]. *)

val binary_trap : levels:int -> tail:int -> Tree.t
(** Recursive binary "trap": at each of [levels] branch points, one child
    starts a path of [tail] edges and the other continues to the next
    branch point. Splitting strategies halve their team at every level. *)

val hidden_path : k:int -> blocks:int -> Tree.t
(** Chain of [blocks] complete binary trees of depth [ceil(log2 k)], each
    linked to the next through a single designated leaf: breadth appears
    only gradually, which is adversarial for proportional-splitting
    exploration (the tightness regime of CTE, cf. [11]). *)

val of_family :
  string -> rng:Bfdn_util.Rng.t -> n:int -> depth_hint:int -> Tree.t
(** Name-indexed dispatch used by the CLI and the bench harness. Accepted
    names: ["path"], ["star"], ["binary"] (complete arity 2), ["ternary"],
    ["spider"], ["caterpillar"], ["comb"], ["broom"], ["random"],
    ["random-deep"], ["bounded3"], ["trap"], ["hidden-path"]. Generators
    aim for approximately [n] nodes, using [depth_hint] where the family
    has a depth parameter.
    @raise Invalid_argument on an unknown name. *)

val families : string list
(** All names accepted by {!of_family}. *)

val deterministic_family : string -> bool
(** Whether the family's generator ignores its [rng] — i.e.
    {!of_family} is a pure function of [(name, n, depth_hint)], so
    every seed of a spec on this family explores the {e same} hidden
    tree. [false] for the randomized families ([random], [random-deep],
    [bounded3]) and for unknown names. The batch engine uses this to
    share one world across a seed batch. *)
