(** Summary statistics of a tree instance, for experiment reporting. *)

type t = {
  n : int;  (** number of nodes *)
  edges : int;
  depth : int;  (** D *)
  max_degree : int;  (** Δ *)
  leaves : int;
  avg_branching : float;  (** mean child count over internal nodes *)
}

val compute : Tree.t -> t
(** One pass over the flat representation (no intermediate walks or
    allocation beyond the result record). *)

(** Streaming accumulator: the same statistics built one node at a time,
    in O(1) state, without a materialized {!Tree.t}. Feed every node
    exactly once (any order); the root is the node at [depth = 0]. Used
    by lazily materialized worlds, whose trees are never built. *)
module Acc : sig
  type acc

  val create : unit -> acc

  val add : acc -> depth:int -> children:int -> unit
  (** Record one node by its depth and child count. Allocation-free. *)

  val stats : acc -> t
  (** Snapshot of the statistics accumulated so far. *)
end

val pp : Format.formatter -> t -> unit

val offline_lower_bound : n:int -> k:int -> depth:int -> int
(** [max (ceil (2n/k)) (2D)] — no k-robot traversal finishes faster
    (every edge crossed twice; the deepest node reached and left). *)
