(** Rooted trees with port-numbered adjacency.

    Nodes are integers [0 .. n-1]. Edges are implicit: every non-root node
    has exactly one parent. Ports follow the paper's convention (Section
    4.1): at every node distinct from the root, port [0] leads to the parent
    and ports [1 .. deg-1] lead to the children in order; at the root, ports
    [0 .. deg-1] lead to the children.

    This module describes the {e hidden} tree [T_offline]; online algorithms
    never see it directly — they observe it through {!Bfdn_sim.Env}.

    Storage is succinct: four flat [int array]s (parents, CSR child
    offsets, CSR child ids, depths) — ~4 words per node in 4 heap blocks
    total, with ports derived implicitly from the CSR slice. This is the
    representation the 10^6–10^7 "huge" scale tier runs on; the
    record/nested-array layout it replaced survives only as the test
    reference model (test/test_succinct.ml). *)

type t

type node = int

val of_parents : ?root:node -> node array -> t
(** [of_parents parents] builds a tree where [parents.(v)] is the parent of
    [v] and [parents.(root)] is [-1] (default root: [0]).
    @raise Invalid_argument if the array does not describe a tree rooted at
    [root] (cycle, disconnection, wrong root marker, out-of-range parent). *)

val n : t -> int
(** Number of nodes. *)

val num_edges : t -> int
(** [n t - 1]. *)

val root : t -> node

val depth_of : t -> node -> int
(** Distance to the root. *)

val depth : t -> int
(** Depth [D] of the tree: maximum distance of a node to the root. *)

val max_degree : t -> int
(** Maximum degree [Δ] (number of incident edges, counting the parent
    edge). *)

val parent : t -> node -> node option
(** [None] exactly for the root. *)

val children : t -> node -> node array
(** Children in port order. Allocates a fresh array (a copy of the CSR
    slice); use {!num_children}/{!child}/{!iter_children} on hot paths. *)

val num_children : t -> node -> int
(** Number of children. O(1), allocation-free. *)

val child : t -> node -> int -> node
(** [child t v i] is the [i]-th child of [v] ([0 <= i < num_children]),
    in port order. O(1), allocation-free (bad indices fail with the
    array bounds check). *)

val iter_children : t -> node -> (node -> unit) -> unit
(** Apply a function to each child in port order without allocating. *)

val degree : t -> node -> int
(** Number of incident edges of the node. *)

val num_ports : t -> node -> int
(** Same as {!degree}: ports are numbered [0 .. degree-1]. *)

val neighbor_via_port : t -> node -> int -> node
(** Resolve a port to the neighbouring node, following the port convention.
    @raise Invalid_argument on an out-of-range port. *)

val port_to_parent : t -> node -> int
(** Port leading to the parent ([0] for non-root nodes).
    @raise Invalid_argument at the root. *)

val port_of_child : t -> node -> node -> int
(** [port_of_child t v c] is the port at [v] leading to its child [c].
    @raise Not_found if [c] is not a child of [v]. *)

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a v] holds if [a] lies on the path from [v] to the root,
    inclusive of [v] itself. *)

val path_to_root : t -> node -> node list
(** [v; parent v; ...; root]. *)

val subtree_size : t -> node -> int
(** Number of nodes of the subtree [T(v)] (computed once, O(1) after). *)

val subtree_nodes : t -> node -> node list
(** All descendants of [v], including [v], in preorder. *)

val iter_nodes : t -> (node -> unit) -> unit

val fold_nodes : t -> init:'a -> f:('a -> node -> 'a) -> 'a

val euler_tour : t -> node list
(** The depth-first traversal of all edges: the sequence of nodes visited by
    a single-robot DFS starting and ending at the root. Its length is
    [2*(n-1) + 1]. *)

val equal : t -> t -> bool
(** Structural equality (same parents, same root, same child orders). *)

val to_string : t -> string
(** Compact textual encoding ("n:parent parent ...", root marked [-1]) —
    for dumping frozen instances from the CLI. *)

val of_string : string -> t
(** Inverse of {!to_string}.
    @raise Invalid_argument on a malformed encoding. *)

val pp : Format.formatter -> t -> unit
(** Compact single-line rendering, for debugging small trees. *)

val to_dot : t -> string
(** Graphviz rendering. *)

val validate : t -> unit
(** Re-checks all structural invariants.
    @raise Invalid_argument when an invariant is broken. *)
