module Rng = Bfdn_util.Rng
module Mathx = Bfdn_util.Mathx

(* Hard ceiling on instance sizes. Every family constructor computes a
   saturating node-count estimate up front and rejects anything beyond
   this, so a huge-tier parameter mistake (n=10^7 with a multiplicative
   family) fails with a clear error instead of wrapping an int or dying
   inside [Array.make]. *)
let max_nodes = Sys.max_array_length

let check_size ctx est =
  if est > max_nodes then
    invalid_arg
      (Printf.sprintf "Tree_gen.%s: %s nodes requested, limit is %d" ctx
         (if est = max_int then "too many" else string_of_int est)
         max_nodes)

module Builder = struct
  type t = { mutable parents : int array; mutable size : int }

  let create () = { parents = Array.make 16 (-1); size = 1 }

  let root _ = 0

  let ensure_capacity b =
    if b.size >= Array.length b.parents then begin
      let cap = Array.length b.parents in
      if cap >= max_nodes then
        invalid_arg "Tree_gen.Builder: tree exceeds Sys.max_array_length";
      let bigger = Array.make (min max_nodes (Mathx.mul_cap 2 cap)) (-1) in
      Array.blit b.parents 0 bigger 0 b.size;
      b.parents <- bigger
    end

  let add_child b v =
    if v < 0 || v >= b.size then invalid_arg "Builder.add_child: unknown node";
    ensure_capacity b;
    let id = b.size in
    b.parents.(id) <- v;
    b.size <- b.size + 1;
    id

  let add_path b v len =
    let rec go v len = if len = 0 then v else go (add_child b v) (len - 1) in
    go v len

  let size b = b.size

  let build b = Tree.of_parents (Array.sub b.parents 0 b.size)
end

let path n =
  if n < 1 then invalid_arg "Tree_gen.path: n must be >= 1";
  check_size "path" n;
  let b = Builder.create () in
  ignore (Builder.add_path b (Builder.root b) (n - 1));
  Builder.build b

let star n =
  if n < 1 then invalid_arg "Tree_gen.star: n must be >= 1";
  check_size "star" n;
  let b = Builder.create () in
  for _ = 1 to n - 1 do
    ignore (Builder.add_child b (Builder.root b))
  done;
  Builder.build b

let complete ~arity ~depth =
  if arity < 1 then invalid_arg "Tree_gen.complete: arity must be >= 1";
  if depth < 0 then invalid_arg "Tree_gen.complete: negative depth";
  (* n = (arity^(depth+1) - 1) / (arity - 1); saturating estimate so deep
     multiplicative requests reject instead of wrapping. *)
  let est =
    if arity = 1 then depth + 1
    else
      let top = Mathx.pow_cap arity (depth + 1) in
      if top = max_int then max_int else (top - 1) / (arity - 1)
  in
  check_size "complete" est;
  let b = Builder.create () in
  let rec expand v d =
    if d < depth then
      for _ = 1 to arity do
        expand (Builder.add_child b v) (d + 1)
      done
  in
  expand (Builder.root b) 0;
  Builder.build b

let spider ~legs ~leg_len =
  if legs < 0 || leg_len < 0 then invalid_arg "Tree_gen.spider: negative size";
  check_size "spider" (Mathx.add_cap 1 (Mathx.mul_cap legs leg_len));
  let b = Builder.create () in
  for _ = 1 to legs do
    ignore (Builder.add_path b (Builder.root b) leg_len)
  done;
  Builder.build b

let caterpillar ~spine ~legs_per_node =
  if spine < 0 || legs_per_node < 0 then
    invalid_arg "Tree_gen.caterpillar: negative size";
  check_size "caterpillar"
    (Mathx.mul_cap (spine + 1) (Mathx.add_cap legs_per_node 1));
  let b = Builder.create () in
  let v = ref (Builder.root b) in
  for i = 0 to spine do
    for _ = 1 to legs_per_node do
      ignore (Builder.add_child b !v)
    done;
    if i < spine then v := Builder.add_child b !v
  done;
  Builder.build b

let comb ~spine ~tooth_len =
  if spine < 0 || tooth_len < 0 then invalid_arg "Tree_gen.comb: negative size";
  check_size "comb" (Mathx.add_cap 1 (Mathx.mul_cap spine (Mathx.add_cap tooth_len 1)));
  let b = Builder.create () in
  let v = ref (Builder.root b) in
  for _ = 1 to spine do
    ignore (Builder.add_path b !v tooth_len);
    v := Builder.add_child b !v
  done;
  Builder.build b

let broom ~handle ~bristles =
  if handle < 0 || bristles < 0 then invalid_arg "Tree_gen.broom: negative size";
  check_size "broom" (Mathx.add_cap 1 (Mathx.add_cap handle bristles));
  let b = Builder.create () in
  let tip = Builder.add_path b (Builder.root b) handle in
  for _ = 1 to bristles do
    ignore (Builder.add_child b tip)
  done;
  Builder.build b

let random_tree ~rng ~n ?max_depth () =
  if n < 1 then invalid_arg "Tree_gen.random_tree: n must be >= 1";
  check_size "random_tree" n;
  let cap = match max_depth with Some d -> d | None -> max_int in
  if cap < 0 then invalid_arg "Tree_gen.random_tree: negative max_depth";
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  (* Nodes at depth < cap are eligible parents; keep them in a dense array
     for O(1) uniform sampling. *)
  let eligible = Array.make n 0 in
  let num_eligible = ref (if cap > 0 then 1 else 0) in
  for v = 1 to n - 1 do
    if !num_eligible = 0 then
      invalid_arg "Tree_gen.random_tree: max_depth 0 with n > 1";
    let p = eligible.(Rng.int rng !num_eligible) in
    parents.(v) <- p;
    depths.(v) <- depths.(p) + 1;
    if depths.(v) < cap then begin
      eligible.(!num_eligible) <- v;
      incr num_eligible
    end
  done;
  Tree.of_parents parents

let random_bounded_degree ~rng ~n ~delta =
  if n < 1 then invalid_arg "Tree_gen.random_bounded_degree: n must be >= 1";
  if delta < 2 then invalid_arg "Tree_gen.random_bounded_degree: delta < 2";
  check_size "random_bounded_degree" n;
  let parents = Array.make n (-1) in
  let degree = Array.make n 0 in
  let eligible = Array.make n 0 in
  let num_eligible = ref 1 in
  let remove_at i =
    decr num_eligible;
    eligible.(i) <- eligible.(!num_eligible)
  in
  for v = 1 to n - 1 do
    let i = Rng.int rng !num_eligible in
    let p = eligible.(i) in
    parents.(v) <- p;
    degree.(p) <- degree.(p) + 1;
    degree.(v) <- 1;
    (* The root may take [delta] children; other nodes at most [delta - 1]
       (one port is the parent edge). *)
    let budget = if p = 0 then delta else delta - 1 in
    if degree.(p) - (if p = 0 then 0 else 1) >= budget then remove_at i;
    eligible.(!num_eligible) <- v;
    incr num_eligible
  done;
  Tree.of_parents parents

let random_deep ~rng ~n ~depth =
  if depth < 0 then invalid_arg "Tree_gen.random_deep: negative depth";
  if n < depth + 1 then invalid_arg "Tree_gen.random_deep: n < depth + 1";
  check_size "random_deep" n;
  let parents = Array.make n (-1) in
  let depths = Array.make n 0 in
  (* Spine of the required depth occupies nodes 0..depth. *)
  for v = 1 to depth do
    parents.(v) <- v - 1;
    depths.(v) <- v
  done;
  let eligible = Array.make n 0 in
  let num_eligible = ref 0 in
  for v = 0 to depth do
    if depths.(v) < depth then begin
      eligible.(!num_eligible) <- v;
      incr num_eligible
    end
  done;
  if depth = 0 then begin
    eligible.(0) <- 0;
    num_eligible := 1
  end;
  for v = depth + 1 to n - 1 do
    let p = eligible.(Rng.int rng !num_eligible) in
    parents.(v) <- p;
    depths.(v) <- depths.(p) + 1;
    if depths.(v) < depth then begin
      eligible.(!num_eligible) <- v;
      incr num_eligible
    end
  done;
  Tree.of_parents parents

let binary_trap ~levels ~tail =
  if levels < 0 || tail < 0 then invalid_arg "Tree_gen.binary_trap: negative size";
  check_size "binary_trap"
    (Mathx.add_cap (Mathx.add_cap 1 tail)
       (Mathx.mul_cap levels (Mathx.add_cap tail 1)));
  let b = Builder.create () in
  let v = ref (Builder.root b) in
  for _ = 1 to levels do
    ignore (Builder.add_path b !v tail);
    v := Builder.add_child b !v
  done;
  ignore (Builder.add_path b !v tail);
  Builder.build b

let hidden_path ~k ~blocks =
  if k < 1 then invalid_arg "Tree_gen.hidden_path: k must be >= 1";
  if blocks < 1 then invalid_arg "Tree_gen.hidden_path: blocks must be >= 1";
  let depth = max 1 (Mathx.ceil_log2 (max 2 k)) in
  (* Each block is a complete binary tree of 2^(depth+1)-1 nodes plus one
     chaining node. *)
  let block_sz =
    let top = Mathx.pow_cap 2 (depth + 1) in
    if top = max_int then max_int else top
  in
  check_size "hidden_path" (Mathx.add_cap 1 (Mathx.mul_cap blocks block_sz));
  let b = Builder.create () in
  (* Build one complete binary block below [v]; return one designated leaf
     (the last one) to chain the next block from. *)
  let rec expand v d last_leaf =
    if d = depth then begin
      last_leaf := v;
      ()
    end
    else begin
      expand (Builder.add_child b v) (d + 1) last_leaf;
      expand (Builder.add_child b v) (d + 1) last_leaf
    end
  in
  let attach = ref (Builder.root b) in
  for _ = 1 to blocks do
    let leaf = ref (Builder.root b) in
    expand !attach 0 leaf;
    attach := Builder.add_child b !leaf
  done;
  Builder.build b

let families =
  [
    "path"; "star"; "binary"; "ternary"; "spider"; "caterpillar"; "comb";
    "broom"; "random"; "random-deep"; "bounded3"; "trap"; "hidden-path";
  ]

(* The families whose generator never reads [rng]: [of_family] is a pure
   function of [(name, n, depth_hint)] for these, so distinct seeds of
   one spec share a single hidden tree. The batch engine relies on this
   to build (and stat) one world for a whole seed batch; the claim is
   asserted per family by a generator test. *)
let randomized_families = [ "random"; "random-deep"; "bounded3" ]

let deterministic_family name =
  List.mem name families && not (List.mem name randomized_families)

let of_family name ~rng ~n ~depth_hint =
  let n = max 1 n in
  let d = max 1 depth_hint in
  match name with
  | "path" -> path n
  | "star" -> star n
  | "binary" -> complete ~arity:2 ~depth:(max 1 (Mathx.log2i (max 2 n)))
  | "ternary" ->
      let depth =
        (* pow_cap: the fit test stays correct (and terminates) for any n;
           plain [pow] wraps negative past 3^40 and loops forever. *)
        let rec fit depth =
          if Mathx.pow_cap 3 (depth + 1) >= n then depth else fit (depth + 1)
        in
        max 1 (fit 1)
      in
      complete ~arity:3 ~depth
  | "spider" ->
      let legs = max 1 (n / max 1 d) in
      spider ~legs ~leg_len:d
  | "caterpillar" ->
      let legs = max 1 ((n / max 1 d) - 1) in
      caterpillar ~spine:d ~legs_per_node:legs
  | "comb" ->
      let tooth = max 1 ((n / max 1 d) - 1) in
      comb ~spine:d ~tooth_len:tooth
  | "broom" -> broom ~handle:d ~bristles:(max 1 (n - d - 1))
  | "random" -> random_tree ~rng ~n ()
  | "random-deep" -> random_deep ~rng ~n:(max n (d + 1)) ~depth:d
  | "bounded3" -> random_bounded_degree ~rng ~n ~delta:3
  | "trap" ->
      let levels = max 1 (Mathx.log2i (max 2 n)) in
      binary_trap ~levels ~tail:(max 1 (n / (levels + 1)))
  | "hidden-path" ->
      let k = max 2 (n / max 1 (2 * d)) in
      hidden_path ~k ~blocks:(max 1 d)
  | other -> invalid_arg ("Tree_gen.of_family: unknown family " ^ other)
