type t = {
  n : int;
  edges : int;
  depth : int;
  max_degree : int;
  leaves : int;
  avg_branching : float;
}

(* Streaming accumulator: one [add] per node, O(1) state, no tree
   required. Lazily materialized worlds feed it at reveal/promise time so
   the huge scale tier reports instance statistics without ever holding a
   materialized tree (see DESIGN.md §5.14). *)
module Acc = struct
  type acc = {
    mutable a_n : int;
    mutable a_depth : int;
    mutable a_max_degree : int;
    mutable a_leaves : int;
    mutable a_internal : int;
    mutable a_child_total : int;
  }

  let create () =
    {
      a_n = 0;
      a_depth = 0;
      a_max_degree = 0;
      a_leaves = 0;
      a_internal = 0;
      a_child_total = 0;
    }

  let add acc ~depth ~children =
    acc.a_n <- acc.a_n + 1;
    if depth > acc.a_depth then acc.a_depth <- depth;
    (* Degree counts the parent edge for every non-root node. *)
    let degree = children + if depth = 0 then 0 else 1 in
    if degree > acc.a_max_degree then acc.a_max_degree <- degree;
    if children = 0 then acc.a_leaves <- acc.a_leaves + 1
    else begin
      acc.a_internal <- acc.a_internal + 1;
      acc.a_child_total <- acc.a_child_total + children
    end

  let stats acc =
    {
      n = acc.a_n;
      edges = max 0 (acc.a_n - 1);
      depth = acc.a_depth;
      max_degree = acc.a_max_degree;
      leaves = acc.a_leaves;
      avg_branching =
        (if acc.a_internal = 0 then 0.0
         else float_of_int acc.a_child_total /. float_of_int acc.a_internal);
    }
end

(* One pass over the flat representation: n, D, Δ, leaves and branching
   all come from a single scan of the CSR offsets and the depth array
   (the previous version walked the tree three times — once here, once
   for [Tree.depth], once for [Tree.max_degree]). *)
let compute tree =
  let acc = Acc.create () in
  Tree.iter_nodes tree (fun v ->
      Acc.add acc ~depth:(Tree.depth_of tree v)
        ~children:(Tree.num_children tree v));
  Acc.stats acc

let pp ppf s =
  Format.fprintf ppf "n=%d D=%d Δ=%d leaves=%d branching=%.2f" s.n s.depth
    s.max_degree s.leaves s.avg_branching

let offline_lower_bound ~n ~k ~depth =
  max (Bfdn_util.Mathx.ceil_div (2 * (n - 1)) k) (2 * depth)
