type node = int

(* Succinct flat-array storage (CSR-style adjacency). The tree is four
   plain [int array]s — no per-node records or nested child arrays — so
   a node costs ~4 words and the whole structure is 4 large heap blocks
   whatever [n] is, which is what makes the 10^6–10^7 scale tier viable
   (the previous [node array array] representation paid one block header
   per node and roughly doubled the footprint; see DESIGN.md §5.14).

   Ports stay implicit: at a non-root node port 0 is the parent edge and
   port [p >= 1] is child [p - 1] of the CSR slice; at the root port [p]
   is child [p]. Children are stored in increasing id order (the same
   deterministic port numbering [of_parents] always produced). *)
type t = {
  root : node;
  parents : node array; (* -1 at the root *)
  child_off : int array; (* length n+1: children of v at [off.(v), off.(v+1)) *)
  child_arr : node array; (* length n-1, increasing ids per slice *)
  depths : int array;
  mutable subtree_sizes : int array option; (* computed lazily *)
}

let n t = Array.length t.parents
let num_edges t = n t - 1
let root t = t.root
let depth_of t v = t.depths.(v)
let parent t v = if v = t.root then None else Some t.parents.(v)

let num_children t v = t.child_off.(v + 1) - t.child_off.(v)
let child t v i = t.child_arr.(t.child_off.(v) + i)

let children t v =
  Array.sub t.child_arr t.child_off.(v) (num_children t v)

let iter_children t v f =
  for i = t.child_off.(v) to t.child_off.(v + 1) - 1 do
    f t.child_arr.(i)
  done

let degree t v = num_children t v + if v = t.root then 0 else 1

let num_ports = degree

let depth t = Array.fold_left max 0 t.depths

let max_degree t =
  let best = ref 0 in
  for v = 0 to n t - 1 do
    best := max !best (degree t v)
  done;
  !best

let neighbor_via_port t v p =
  let deg = degree t v in
  if p < 0 || p >= deg then invalid_arg "Tree.neighbor_via_port: bad port";
  if v = t.root then child t v p
  else if p = 0 then t.parents.(v)
  else child t v (p - 1)

let port_to_parent t v =
  if v = t.root then invalid_arg "Tree.port_to_parent: root has no parent";
  0

let port_of_child t v c =
  let cs = num_children t v in
  let rec find i =
    if i >= cs then raise Not_found
    else if child t v i = c then i + if v = t.root then 0 else 1
    else find (i + 1)
  in
  find 0

let is_ancestor t a v =
  (* Walk up from [v]; depths give a cheap cutoff. *)
  let da = t.depths.(a) in
  let rec up v = if t.depths.(v) < da then false else v = a || up t.parents.(v) in
  up v

let path_to_root t v =
  let rec collect v acc =
    if v = t.root then t.root :: acc else collect t.parents.(v) (v :: acc)
  in
  (* [collect] accumulates bottom-up, so the result reads root-first; flip it
     to get v; parent v; ...; root. *)
  List.rev (collect v [])

let iter_nodes t f =
  for v = 0 to n t - 1 do
    f v
  done

let fold_nodes t ~init ~f =
  let acc = ref init in
  iter_nodes t (fun v -> acc := f !acc v);
  !acc

let compute_subtree_sizes t =
  match t.subtree_sizes with
  | Some s -> s
  | None ->
      let s = Array.make (n t) 1 in
      (* Children always have larger ids than nothing in general; process by
         decreasing depth instead. *)
      let order = Array.init (n t) (fun i -> i) in
      Array.sort (fun a b -> compare t.depths.(b) t.depths.(a)) order;
      Array.iter
        (fun v -> if v <> t.root then s.(t.parents.(v)) <- s.(t.parents.(v)) + s.(v))
        order;
      t.subtree_sizes <- Some s;
      s

let subtree_size t v = (compute_subtree_sizes t).(v)

let subtree_nodes t v =
  let rec go v acc =
    let acc = ref (v :: acc) in
    iter_children t v (fun c -> acc := go c !acc);
    !acc
  in
  List.rev (go v [])

let euler_tour t =
  let rec visit v acc =
    let acc = ref (v :: acc) in
    iter_children t v (fun c -> acc := v :: visit c !acc);
    !acc
  in
  (* [visit] pushes nodes in reverse visiting order. *)
  List.rev (visit t.root [])

let equal a b =
  a.root = b.root && a.parents = b.parents && a.child_off = b.child_off
  && a.child_arr = b.child_arr

let validate t =
  let size = n t in
  if size = 0 then invalid_arg "Tree.validate: empty tree";
  if t.root < 0 || t.root >= size then invalid_arg "Tree.validate: bad root";
  if t.parents.(t.root) <> -1 then
    invalid_arg "Tree.validate: root parent must be -1";
  Array.iteri
    (fun v p ->
      if v <> t.root && (p < 0 || p >= size) then
        invalid_arg "Tree.validate: parent out of range")
    t.parents;
  (* Depth consistency and acyclicity: every node must reach the root in at
     most [size] steps with depths decreasing by one. *)
  Array.iteri
    (fun v d ->
      if v = t.root then begin
        if d <> 0 then invalid_arg "Tree.validate: root depth must be 0"
      end
      else if d <> t.depths.(t.parents.(v)) + 1 then
        invalid_arg "Tree.validate: inconsistent depth")
    t.depths;
  let seen = Array.make size false in
  let rec mark v budget =
    if budget < 0 then invalid_arg "Tree.validate: cycle detected";
    if not seen.(v) then begin
      seen.(v) <- true;
      if v <> t.root then mark t.parents.(v) (budget - 1)
    end
  in
  for v = 0 to size - 1 do
    mark v size
  done;
  (* CSR adjacency must exactly mirror parents. *)
  if Array.length t.child_off <> size + 1 then
    invalid_arg "Tree.validate: bad offset length";
  if t.child_off.(0) <> 0 || t.child_off.(size) <> Array.length t.child_arr
  then invalid_arg "Tree.validate: bad offset bounds";
  if Array.length t.child_arr <> size - 1 then
    invalid_arg "Tree.validate: children/edges mismatch";
  let child_count = Array.make size 0 in
  Array.iteri
    (fun v p -> if v <> t.root then child_count.(p) <- child_count.(p) + 1)
    t.parents;
  for v = 0 to size - 1 do
    if t.child_off.(v + 1) - t.child_off.(v) <> child_count.(v) then
      invalid_arg "Tree.validate: children/parents mismatch";
    iter_children t v (fun c ->
        if c < 0 || c >= size || t.parents.(c) <> v then
          invalid_arg "Tree.validate: child with wrong parent")
  done

let of_parents ?(root = 0) parents =
  let size = Array.length parents in
  if size = 0 then invalid_arg "Tree.of_parents: empty tree";
  if root < 0 || root >= size then invalid_arg "Tree.of_parents: bad root";
  if parents.(root) <> -1 then
    invalid_arg "Tree.of_parents: parents.(root) must be -1";
  let child_off = Array.make (size + 1) 0 in
  Array.iteri
    (fun v p ->
      if v <> root then begin
        if p < 0 || p >= size then
          invalid_arg "Tree.of_parents: parent out of range";
        child_off.(p + 1) <- child_off.(p + 1) + 1
      end)
    parents;
  for v = 1 to size do
    child_off.(v) <- child_off.(v) + child_off.(v - 1)
  done;
  let child_arr = Array.make (max 0 (size - 1)) (-1) in
  let fill = Array.copy child_off in
  (* Children in increasing id order: deterministic port numbering. *)
  for v = 0 to size - 1 do
    if v <> root then begin
      let p = parents.(v) in
      child_arr.(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1
    end
  done;
  let depths = Array.make size (-1) in
  depths.(root) <- 0;
  let rec depth_of v budget =
    if budget < 0 then invalid_arg "Tree.of_parents: cycle detected";
    if depths.(v) >= 0 then depths.(v)
    else begin
      let d = depth_of parents.(v) (budget - 1) + 1 in
      depths.(v) <- d;
      d
    end
  in
  for v = 0 to size - 1 do
    ignore (depth_of v size)
  done;
  let t =
    {
      root;
      parents = Array.copy parents;
      child_off;
      child_arr;
      depths;
      subtree_sizes = None;
    }
  in
  validate t;
  t

let to_string t =
  let buf = Buffer.create (4 * n t) in
  Buffer.add_string buf (string_of_int (n t));
  Buffer.add_char buf ':';
  Array.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int p))
    t.parents;
  Buffer.contents buf

let of_string s =
  match String.index_opt s ':' with
  | None -> invalid_arg "Tree.of_string: missing size header"
  | Some colon ->
      let size =
        try int_of_string (String.trim (String.sub s 0 colon))
        with Failure _ -> invalid_arg "Tree.of_string: bad size"
      in
      let body = String.sub s (colon + 1) (String.length s - colon - 1) in
      let fields =
        List.filter (fun f -> f <> "") (String.split_on_char ' ' (String.trim body))
      in
      if List.length fields <> size then
        invalid_arg "Tree.of_string: size mismatch";
      let parents =
        Array.of_list
          (List.map
             (fun f ->
               try int_of_string f
               with Failure _ -> invalid_arg "Tree.of_string: bad parent")
             fields)
      in
      let root =
        match Array.to_list parents |> List.mapi (fun i p -> (i, p))
              |> List.find_opt (fun (_, p) -> p = -1)
        with
        | Some (i, _) -> i
        | None -> invalid_arg "Tree.of_string: no root marker"
      in
      of_parents ~root parents

let pp ppf t =
  let rec go ppf v =
    if num_children t v = 0 then Format.fprintf ppf "%d" v
    else begin
      Format.fprintf ppf "%d(" v;
      for i = 0 to num_children t v - 1 do
        if i > 0 then Format.fprintf ppf " ";
        go ppf (child t v i)
      done;
      Format.fprintf ppf ")"
    end
  in
  go ppf t.root

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph tree {\n";
  Array.iteri
    (fun v p ->
      if v <> t.root then Buffer.add_string buf (Printf.sprintf "  %d -> %d;\n" p v))
    t.parents;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
