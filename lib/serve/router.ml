type segment = Lit of string | Var of string

type 'h route = { meth : string; segments : segment list; handler : 'h }

let route ~meth pattern handler =
  if String.length pattern = 0 || pattern.[0] <> '/' then
    invalid_arg ("Router.route: pattern must start with '/': " ^ pattern);
  let segments =
    String.split_on_char '/' pattern
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           if s.[0] = ':' then
             if String.length s = 1 then
               invalid_arg ("Router.route: empty variable in " ^ pattern)
             else Var (String.sub s 1 (String.length s - 1))
           else Lit s)
  in
  { meth = String.uppercase_ascii meth; segments; handler }

type 'h outcome =
  | Match of 'h * (string * string) list
  | Method_not_allowed of string list
  | Not_found

let rec bind segments path acc =
  match (segments, path) with
  | [], [] -> Some (List.rev acc)
  | Lit l :: sr, p :: pr when String.equal l p -> bind sr pr acc
  | Var v :: sr, p :: pr -> bind sr pr ((v, p) :: acc)
  | _ -> None

let dispatch routes ~meth ~path =
  let meth = String.uppercase_ascii meth in
  let rec go allowed = function
    | [] ->
        if allowed = [] then Not_found
        else Method_not_allowed (List.sort_uniq compare allowed)
    | r :: rest -> (
        match bind r.segments path [] with
        | None -> go allowed rest
        | Some params ->
            if String.equal r.meth meth then Match (r.handler, params)
            else go (r.meth :: allowed) rest)
  in
  go [] routes
