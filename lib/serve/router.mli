(** Pattern-based request dispatch.

    A route pattern is a path like ["/jobs/:id/stream"]: literal
    segments must match exactly, [:name] segments bind the incoming
    segment under [name]. Dispatch distinguishes an unknown path (404)
    from a known path hit with the wrong method (405), so the server
    can answer both correctly. *)

type 'h route

val route : meth:string -> string -> 'h -> 'h route
(** [route ~meth:"GET" "/jobs/:id" h]. The pattern must start with '/'.
    @raise Invalid_argument on an empty or malformed pattern. *)

type 'h outcome =
  | Match of 'h * (string * string) list
      (** the handler plus the [:name] bindings, pattern order *)
  | Method_not_allowed of string list
      (** the path exists under these (sorted, deduplicated) methods *)
  | Not_found

val dispatch : 'h route list -> meth:string -> path:string list -> 'h outcome
(** First matching route wins (registration order). *)
