module Json = Bfdn_obs.Json
module Metrics = Bfdn_obs.Metrics
module Probe = Bfdn_obs.Probe
module Stream = Bfdn_obs.Sink.Stream
module Ring = Bfdn_obs.Sink.Ring
module Span = Bfdn_obs.Span
module Log = Bfdn_obs.Log
module Prometheus = Bfdn_obs.Prometheus
module Clock = Bfdn_util.Clock
module Pool = Bfdn_engine.Pool
module Seed_batch = Bfdn_engine.Seed_batch
module Scenario = Bfdn_scenario.Scenario
module Trace = Bfdn_sim.Trace
module Q = Queue_admission

type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  cache_cap : int;
  timeout_s : float;
  log : Log.t;
  trace : bool;
  span_sink : (Json.t -> unit) option;
  postmortem_dir : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 8080;
    workers = Domain.recommended_domain_count ();
    queue_cap = 64;
    cache_cap = 256;
    timeout_s = 60.;
    log = Log.ignore_log;
    trace = true;
    span_sink = None;
    postmortem_dir = None;
  }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  adm : Q.t;
  cache : Result_cache.t;
  pool : Pool.t;
  worker_regs : Metrics.t array;
  (* HTTP-side counters live in their own registry behind a mutex:
     connection threads share one domain but interleave at safepoints,
     and /metrics folds the registry while requests are in flight. *)
  http_reg : Metrics.t;
  http_m : Mutex.t;
  (* Per-job simulation registries are merged here by the worker domain
     that ran the job. *)
  jobs_reg : Metrics.t;
  jobs_m : Mutex.t;
  (* Runtime GC pauses, ticked once per finished request. *)
  gc_reg : Metrics.t;
  gc_m : Mutex.t;
  gc_probe : Bfdn_obs.Gc_probe.t;
  trace_ctr : int Atomic.t;
  stopping : bool Atomic.t;
  conn_m : Mutex.t;
  conn_done : Condition.t;
  mutable open_conns : int;
  mutable requests : int;
}

let create config =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  let addr =
    Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port)
  in
  Unix.bind fd addr;
  Unix.listen fd 128;
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let workers = max 1 config.workers in
  let worker_regs = Array.init workers (fun _ -> Metrics.create ()) in
  let gc_reg = Metrics.create () in
  let http_reg = Metrics.create () in
  (* Registered eagerly so a /metrics scrape racing the very first
     request still sees the latency family. *)
  ignore (Metrics.histogram http_reg "request_s");
  {
    config;
    listen_fd = fd;
    bound_port;
    adm = Q.create ~cap:config.queue_cap ();
    cache = Result_cache.create ~cap:config.cache_cap;
    pool = Pool.create ~probe:(Probe.pool_probe worker_regs) ~workers ();
    worker_regs;
    http_reg;
    http_m = Mutex.create ();
    jobs_reg = Metrics.create ();
    jobs_m = Mutex.create ();
    gc_reg;
    gc_m = Mutex.create ();
    gc_probe = Bfdn_obs.Gc_probe.create gc_reg;
    trace_ctr = Atomic.make 0;
    stopping = Atomic.make false;
    conn_m = Mutex.create ();
    conn_done = Condition.create ();
    open_conns = 0;
    requests = 0;
  }

let port t = t.bound_port
let request_count t = Mutex.lock t.conn_m; let n = t.requests in Mutex.unlock t.conn_m; n

let count t name =
  Mutex.lock t.http_m;
  Metrics.incr (Metrics.counter t.http_reg name);
  Mutex.unlock t.http_m

let observe_latency t seconds =
  Mutex.lock t.http_m;
  Metrics.observe (Metrics.histogram t.http_reg "request_s") seconds;
  Mutex.unlock t.http_m

let tick_gc t =
  Mutex.lock t.gc_m;
  Bfdn_obs.Gc_probe.tick t.gc_probe;
  Mutex.unlock t.gc_m

(* Correlation id minted at the HTTP edge: a per-process sequence plus
   monotonic-clock bits so ids from server restarts rarely collide in a
   shared log. *)
let fresh_trace t =
  Printf.sprintf "t%06x-%04x"
    (Clock.now_ns () lsr 10 land 0xffffff)
    (Atomic.fetch_and_add t.trace_ctr 1 land 0xffff)

let span_recorder t ~trace =
  if t.config.trace then
    Span.create ?sink:t.config.span_sink ~trace_id:trace ()
  else Span.disabled

(* ---- response helpers ---- *)

let respond_json fd ~status ?headers j =
  Http.write_response fd ~status ?headers (Json.to_string j)

let error_body msg = Json.Obj [ ("error", Json.String msg) ]

(* ---- postmortem bundles ---- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Written by the executing worker after the run ends but before the job
   settles, so by the time a waiter sees the terminal state the bundle
   path is already linked from the job. *)
let write_postmortem t (job : Q.job) reg ~reason ~state_name =
  match t.config.postmortem_dir with
  | None -> ()
  | Some dir -> (
      let path =
        Filename.concat dir
          (Printf.sprintf "job-%d-%s.json" job.Q.id job.Q.fingerprint)
      in
      let bundle =
        Json.Obj
          [
            ("schema_version", Json.Int 1);
            ("trace", Json.String job.Q.trace);
            ("job_id", Json.Int job.Q.id);
            ("reason", Json.String reason);
            ("state", Json.String state_name);
            ("fingerprint", Json.String job.Q.fingerprint);
            ("seed", Json.Int job.Q.spec.Scenario.seed);
            ("spec", Scenario.to_json job.Q.spec);
            ("metrics", Metrics.to_json reg);
            ("frames", Json.List (Ring.to_list job.Q.frames));
            ("frames_dropped", Json.Int (Ring.dropped job.Q.frames));
            ("spans", Span.tree_json job.Q.span);
          ]
      in
      try
        mkdir_p dir;
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () ->
            output_string oc (Json.to_string bundle);
            output_char oc '\n');
        job.Q.postmortem <- Some path;
        Log.warn t.config.log ~trace:job.Q.trace
          ~attrs:[ ("path", Span.Str path); ("reason", Span.Str reason) ]
          "postmortem bundle written"
      with Sys_error msg | Unix.Unix_error (_, msg, _) ->
        Log.error t.config.log ~trace:job.Q.trace
          ~attrs:[ ("path", Span.Str path); ("detail", Span.Str msg) ]
          "postmortem bundle failed")

(* ---- job execution (runs on a pool worker domain) ---- *)

let exec t (job : Q.job) =
  if Q.mark_running t.adm job then begin
    Span.finish job.Q.span job.Q.queue_span;
    let exe = Span.start ~parent:job.Q.root_span job.Q.span "execute" in
    let reg = Metrics.create () in
    let deadline =
      Clock.now_ns () + int_of_float (job.Q.timeout_s *. 1e9)
    in
    let on_round (exec : Bfdn_sim.Exec_env.t) =
      let frame = Trace.json_of_frame (exec.Bfdn_sim.Exec_env.frame ()) in
      Stream.push job.Q.stream frame;
      Ring.push job.Q.frames frame;
      if Clock.now_ns () > deadline then begin
        job.Q.timed_out <- true;
        Pool.cancel job.Q.token
      end;
      Pool.check job.Q.token
    in
    let phased, close_phases =
      Span.phase_probe job.Q.span ~parent:exe (Probe.of_metrics reg)
    in
    (* Bracket the runner loop itself: [Scenario.run] spends setup time
       (world generation, env and algorithm construction) before its
       first round, so the execute span alone cannot anchor the
       phase-sum invariant. The run span opens at the loop's first
       phase measurement and closes with the phases, so the three
       accumulated phase durations sum to its wall time. *)
    let run_span = ref Span.none in
    let probe =
      if Span.enabled job.Q.span then begin
        let base = phased.Probe.on_phase in
        let on_phase ph ns =
          if !run_span = Span.none then
            run_span := Span.start ~parent:exe job.Q.span "run";
          base ph ns
        in
        { phased with Probe.on_phase }
      end
      else phased
    in
    let finish_exe state_name =
      close_phases ();
      Span.finish job.Q.span !run_span;
      Span.finish ~attrs:[ ("state", Span.Str state_name) ] job.Q.span exe
    in
    let lost_robots () =
      match Metrics.find_counter reg "robots_lost" with
      | Some c -> Metrics.value c
      | None -> 0
    in
    (* Merge the job's registry before settling: the waiter wakes at
       settle and may scrape /metrics immediately. *)
    let settle_with st =
      Mutex.lock t.jobs_m;
      Metrics.merge_into ~into:t.jobs_reg reg;
      Mutex.unlock t.jobs_m;
      Q.settle t.adm job st
    in
    (* Batched specs fan out through the batch engine: one admission
       ticket, one execute span, S lockstep lanes. Each lane's outcome
       is streamed as it is known and cached under the lane's own
       (unbatched) fingerprint, so a later plain request for any single
       seed is a cache hit; the combined body is cached under the batch
       fingerprint by the common path below. *)
    let run_batched () =
      let spec = job.Q.spec in
      let tick ~round:_ ~active:_ =
        if Clock.now_ns () > deadline then begin
          job.Q.timed_out <- true;
          Pool.cancel job.Q.token
        end;
        Pool.check job.Q.token
      in
      let report = Seed_batch.run ~probe ~tick spec in
      let lanes =
        Array.mapi
          (fun l outcome ->
            let lane_fp = Scenario.fingerprint (Scenario.unbatch spec l) in
            let oj = Scenario.outcome_to_json outcome in
            Result_cache.put t.cache lane_fp (Json.to_string oj);
            let row =
              Json.Obj
                [
                  ("seed", Json.Int (spec.Scenario.seed + l));
                  ("fingerprint", Json.String lane_fp);
                  ("outcome", oj);
                ]
            in
            Stream.push job.Q.stream row;
            Ring.push job.Q.frames row;
            row)
          report.Seed_batch.outcomes
      in
      Json.to_string
        (Json.Obj
           [
             ("seeds", Json.Int spec.Scenario.batch_seeds);
             ("lockstep", Json.Bool report.Seed_batch.lockstep);
             ("shared_world", Json.Bool report.Seed_batch.shared_world);
             ("collapsed", Json.Bool report.Seed_batch.collapsed);
             ("outcomes", Json.List (Array.to_list lanes));
           ])
    in
    let execute () =
      if job.Q.spec.Scenario.batch_seeds > 1 then run_batched ()
      else
        Json.to_string
          (Scenario.outcome_to_json (Scenario.run ~probe ~on_round job.Q.spec))
    in
    match execute () with
    | body ->
        finish_exe "done";
        Result_cache.put t.cache job.Q.fingerprint body;
        (* Fault-tolerant runs that lost robots finish, but are exactly
           the runs an operator wants a bundle for. *)
        let lost = lost_robots () in
        if lost > 0 then
          write_postmortem t job reg
            ~reason:(Printf.sprintf "robots_lost=%d" lost)
            ~state_name:"done";
        Log.info t.config.log ~trace:job.Q.trace
          ~attrs:[ ("job", Span.Int job.Q.id); ("state", Span.Str "done") ]
          "job settled";
        settle_with (Q.Done body)
    | exception Pool.Cancelled ->
        let st = if job.Q.timed_out then Q.Timeout else Q.Cancelled in
        let name = Q.state_name st in
        finish_exe name;
        if job.Q.timed_out then
          write_postmortem t job reg ~reason:"timeout" ~state_name:name;
        Log.warn t.config.log ~trace:job.Q.trace
          ~attrs:[ ("job", Span.Int job.Q.id); ("state", Span.Str name) ]
          "job settled";
        settle_with st
    | exception e ->
        let msg = Printexc.to_string e in
        finish_exe "failed";
        write_postmortem t job reg ~reason:("exception: " ^ msg)
          ~state_name:"failed";
        Log.error t.config.log ~trace:job.Q.trace
          ~attrs:[ ("job", Span.Int job.Q.id); ("detail", Span.Str msg) ]
          "job failed";
        settle_with (Q.Failed msg)
  end

(* ---- handlers ---- *)

(* The hit and miss response bodies embed the same pre-rendered result
   string, so they are byte-identical apart from the cache marker. *)
let result_body ~cache ~fingerprint body =
  Printf.sprintf "{\"cache\":\"%s\",\"fingerprint\":\"%s\",\"result\":%s}"
    cache fingerprint body

let job_status_json (job : Q.job) st =
  let base =
    [
      ("id", Json.Int job.Q.id);
      ("status", Json.String (Q.state_name st));
      ("fingerprint", Json.String job.Q.fingerprint);
      ("trace", Json.String job.Q.trace);
    ]
  in
  let postmortem =
    match job.Q.postmortem with
    | Some path -> [ ("postmortem", Json.String path) ]
    | None -> []
  in
  match st with
  | Q.Failed msg -> Json.Obj (base @ [ ("error", Json.String msg) ] @ postmortem)
  | _ -> Json.Obj (base @ postmortem)

let handle_run t req ~trace fd =
  let sp = span_recorder t ~trace in
  let root = Span.start sp "request" in
  let parse_span = Span.start ~parent:root sp "parse" in
  let parsed =
    match Json.of_string_pos req.Http.body with
    | Error e -> Error (`Json e)
    | Ok j -> (
        match Scenario.of_json j with
        | Error msg -> Error (`Spec msg)
        | Ok spec -> (
            match Scenario.validate spec with
            | Error msg -> Error (`Spec msg)
            | Ok () -> Ok spec))
  in
  Span.finish
    ~attrs:[ ("ok", Span.Bool (Result.is_ok parsed)) ]
    sp parse_span;
  (match parsed with
  | Error (`Json e) ->
      count t "bad_requests";
      Log.debug t.config.log ~trace
        ~attrs:[ ("detail", Span.Str e.Json.msg) ]
        "spec rejected: invalid JSON";
      respond_json fd ~status:400
        (Json.Obj
           [
             ("error", Json.String "spec is not valid JSON");
             ("detail", Json.String e.Json.msg);
             ("line", Json.Int e.Json.line);
             ("col", Json.Int e.Json.col);
             ("offset", Json.Int e.Json.offset);
           ])
  | Error (`Spec msg) ->
      count t "bad_requests";
      Log.debug t.config.log ~trace
        ~attrs:[ ("detail", Span.Str msg) ]
        "spec rejected";
      respond_json fd ~status:400 (error_body msg)
  | Ok spec -> (
      let fingerprint = Scenario.fingerprint spec in
      let cache_span = Span.start ~parent:root sp "cache_lookup" in
      let cached = Result_cache.find t.cache fingerprint in
      Span.finish
        ~attrs:[ ("hit", Span.Bool (cached <> None)) ]
        sp cache_span;
      match cached with
      | Some body ->
          count t "cache_hits";
          Http.write_response fd ~status:200
            (result_body ~cache:"hit" ~fingerprint body)
      | None -> (
          count t "cache_misses";
          let timeout_s =
            match Http.query_param "timeout_s" req with
            | Some v -> (
                match float_of_string_opt v with
                | Some f when f > 0. -> f
                | _ -> t.config.timeout_s)
            | None -> t.config.timeout_s
          in
          let admit_span = Span.start ~parent:root sp "admission" in
          let admitted =
            Q.admit ~trace ~span:sp ~parent:root t.adm ~timeout_s ~fingerprint
              spec
          in
          Span.finish
            ~attrs:
              [
                ( "outcome",
                  Span.Str
                    (match admitted with
                    | Ok _ -> "admitted"
                    | Error `Full -> "full"
                    | Error `Draining -> "draining") );
              ]
            sp admit_span;
          match admitted with
          | Error `Full ->
              count t "rejected_busy";
              respond_json fd ~status:429
                ~headers:
                  [
                    ( "Retry-After",
                      string_of_int (Q.retry_after_s t.adm) );
                  ]
                (Json.Obj
                   [
                     ("error", Json.String "job queue is full");
                     ("inflight", Json.Int (Q.inflight t.adm));
                     ("cap", Json.Int (Q.cap t.adm));
                   ])
          | Error `Draining ->
              respond_json fd ~status:503
                (error_body "server is draining")
          | Ok job -> (
              count t "jobs_admitted";
              Log.debug t.config.log ~trace
                ~attrs:
                  [
                    ("job", Span.Int job.Q.id);
                    ("fingerprint", Span.Str fingerprint);
                  ]
                "job admitted";
              Pool.submit ~token:job.Q.token t.pool (fun () -> exec t job);
              let async =
                match Http.query_param "wait" req with
                | Some ("0" | "false" | "no") -> true
                | _ -> false
              in
              if async then
                respond_json fd ~status:202 (job_status_json job Q.Queued)
              else
                match Q.await t.adm job with
                | Q.Done body ->
                    Http.write_response fd ~status:200
                      (result_body ~cache:"miss" ~fingerprint body)
                | Q.Timeout ->
                    count t "timeouts";
                    respond_json fd ~status:504
                      (job_status_json job Q.Timeout)
                | Q.Cancelled ->
                    respond_json fd ~status:503
                      (job_status_json job Q.Cancelled)
                | Q.Failed msg ->
                    respond_json fd ~status:500
                      (job_status_json job (Q.Failed msg))
                | (Q.Queued | Q.Running) as st ->
                    respond_json fd ~status:500 (job_status_json job st)))));
  Span.finish sp root

let with_job t params fd k =
  match List.assoc_opt "id" params with
  | None -> respond_json fd ~status:400 (error_body "missing job id")
  | Some raw -> (
      match int_of_string_opt raw with
      | None ->
          respond_json fd ~status:400
            (error_body (Printf.sprintf "malformed job id %S" raw))
      | Some id -> (
          match Q.find t.adm id with
          | None ->
              respond_json fd ~status:404
                (error_body (Printf.sprintf "no such job %d" id))
          | Some job -> k job))

let handle_job_status t _req params ~trace:_ fd =
  with_job t params fd (fun job ->
      match Q.state t.adm job with
      | Q.Done body ->
          let postmortem =
            match job.Q.postmortem with
            | Some path -> Printf.sprintf ",\"postmortem\":\"%s\"" (Json.escape path)
            | None -> ""
          in
          Http.write_response fd ~status:200
            (Printf.sprintf
               "{\"id\":%d,\"status\":\"done\",\"fingerprint\":\"%s\",\"trace\":\"%s\"%s,\"result\":%s}"
               job.Q.id job.Q.fingerprint (Json.escape job.Q.trace) postmortem
               body)
      | st -> respond_json fd ~status:200 (job_status_json job st))

let handle_job_spans t _req params ~trace:_ fd =
  with_job t params fd (fun job ->
      respond_json fd ~status:200 (Span.tree_json job.Q.span))

let handle_job_stream t _req params ~trace:_ fd =
  with_job t params fd (fun job ->
      Http.start_chunked fd ~status:200 ();
      let send j = Http.send_chunk fd (Json.to_string j ^ "\n") in
      let rec pump () =
        match Stream.next job.Q.stream with
        | Some frame ->
            send frame;
            pump ()
        | None -> ()
      in
      pump ();
      send (job_status_json job (Q.state t.adm job));
      Http.finish_chunked fd)

let merged_metrics t =
  let merged = Metrics.create () in
  Mutex.lock t.http_m;
  Metrics.merge_into ~into:merged t.http_reg;
  Mutex.unlock t.http_m;
  Mutex.lock t.jobs_m;
  Metrics.merge_into ~into:merged t.jobs_reg;
  Mutex.unlock t.jobs_m;
  Mutex.lock t.gc_m;
  Bfdn_obs.Gc_probe.snapshot t.gc_probe;
  Metrics.merge_into ~into:merged t.gc_reg;
  Mutex.unlock t.gc_m;
  Array.iter (fun reg -> Metrics.merge_into ~into:merged reg) t.worker_regs;
  merged

let handle_metrics t req _params ~trace:_ fd =
  let stats = Result_cache.stats t.cache in
  match Http.query_param "format" req with
  | Some "prometheus" ->
      (* Fold the service-level statistics into the merged registry as
         ordinary metrics (distinct names: the HTTP counter registry
         already owns "cache_hits" for request accounting), so one
         exposition document carries every registry. *)
      let merged = merged_metrics t in
      let c name v = Metrics.add (Metrics.counter merged name) v in
      let g name v = Metrics.set (Metrics.gauge merged name) v in
      c "result_cache_hits" stats.Result_cache.hits;
      c "result_cache_misses" stats.Result_cache.misses;
      c "result_cache_evictions" stats.Result_cache.evictions;
      g "result_cache_size" (float_of_int stats.Result_cache.size);
      g "result_cache_cap" (float_of_int (Result_cache.cap t.cache));
      c "admission_admitted" (Q.jobs_admitted t.adm);
      g "admission_inflight" (float_of_int (Q.inflight t.adm));
      g "admission_queue_cap" (float_of_int (Q.cap t.adm));
      g "pool_workers" (float_of_int (Pool.workers t.pool));
      Http.write_response fd ~status:200 ~content_type:Prometheus.content_type
        (Prometheus.render merged)
  | _ ->
      respond_json fd ~status:200
        (Json.Obj
           [
             ("metrics", Metrics.to_json (merged_metrics t));
             ( "cache",
               Json.Obj
                 [
                   ("hits", Json.Int stats.Result_cache.hits);
                   ("misses", Json.Int stats.Result_cache.misses);
                   ("evictions", Json.Int stats.Result_cache.evictions);
                   ("size", Json.Int stats.Result_cache.size);
                   ("cap", Json.Int (Result_cache.cap t.cache));
                 ] );
             ( "jobs",
               Json.Obj
                 [
                   ("admitted", Json.Int (Q.jobs_admitted t.adm));
                   ("inflight", Json.Int (Q.inflight t.adm));
                   ("queue_cap", Json.Int (Q.cap t.adm));
                 ] );
             ("workers", Json.Int (Pool.workers t.pool));
           ])

let handle_registry _t _req _params ~trace:_ fd =
  respond_json fd ~status:200 (Scenario.registry_json ())

let handle_health t _req _params ~trace:_ fd =
  respond_json fd ~status:200
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("inflight", Json.Int (Q.inflight t.adm));
         ("draining", Json.Bool (Q.draining t.adm));
       ])

let routes t =
  [
    Router.route ~meth:"POST" "/run" (fun req _params ~trace fd ->
        handle_run t req ~trace fd);
    Router.route ~meth:"GET" "/jobs/:id" (handle_job_status t);
    Router.route ~meth:"GET" "/jobs/:id/spans" (handle_job_spans t);
    Router.route ~meth:"GET" "/jobs/:id/stream" (handle_job_stream t);
    Router.route ~meth:"GET" "/metrics" (handle_metrics t);
    Router.route ~meth:"GET" "/registry" (handle_registry t);
    Router.route ~meth:"GET" "/healthz" (handle_health t);
  ]

(* ---- connection loop ---- *)

let handle_connection t routes fd =
  let t0 = Clock.now_ns () in
  let trace = fresh_trace t in
  (try
     match Http.read_request (Http.reader fd) with
     | Error msg ->
         count t "bad_requests";
         respond_json fd ~status:400 (error_body msg)
     | Ok req -> (
         count t "requests";
         Log.debug t.config.log ~trace
           ~attrs:
             [
               ("method", Span.Str req.Http.meth);
               ("target", Span.Str req.Http.target);
             ]
           "request";
         match
           Router.dispatch routes ~meth:req.Http.meth ~path:req.Http.path
         with
         | Router.Match (handler, params) -> handler req params ~trace fd
         | Router.Method_not_allowed allowed ->
             respond_json fd ~status:405
               ~headers:[ ("Allow", String.concat ", " allowed) ]
               (error_body "method not allowed")
         | Router.Not_found ->
             respond_json fd ~status:404 (error_body "not found"))
   with
  | Unix.Unix_error _ -> () (* client went away mid-response *)
  | e -> (
      Log.error t.config.log ~trace
        ~attrs:[ ("detail", Span.Str (Printexc.to_string e)) ]
        "handler raised";
      try respond_json fd ~status:500 (error_body (Printexc.to_string e))
      with _ -> ()));
  observe_latency t (float_of_int (Clock.now_ns () - t0) *. 1e-9);
  tick_gc t;
  (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Mutex.lock t.conn_m;
  t.open_conns <- t.open_conns - 1;
  t.requests <- t.requests + 1;
  if t.open_conns = 0 then Condition.broadcast t.conn_done;
  Mutex.unlock t.conn_m

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Log.info t.config.log "stop requested";
    (* Wake a blocked [accept] — closing alone does not, on Linux. *)
    try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
  end

let run t =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let routes = routes t in
  Log.info t.config.log
    ~attrs:
      [
        ("host", Span.Str t.config.host);
        ("port", Span.Int t.bound_port);
        ("workers", Span.Int (Pool.workers t.pool));
        ("queue_cap", Span.Int t.config.queue_cap);
        ("cache_cap", Span.Int t.config.cache_cap);
      ]
    "listening";
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          Mutex.lock t.conn_m;
          t.open_conns <- t.open_conns + 1;
          Mutex.unlock t.conn_m;
          ignore (Thread.create (fun () -> handle_connection t routes fd) ());
          loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error
          ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _) ->
          if not (Atomic.get t.stopping) then loop ()
  in
  loop ();
  Log.info t.config.log "draining";
  Q.drain t.adm;
  Q.await_idle t.adm;
  Mutex.lock t.conn_m;
  while t.open_conns > 0 do
    Condition.wait t.conn_done t.conn_m
  done;
  Mutex.unlock t.conn_m;
  Pool.shutdown t.pool;
  Bfdn_obs.Gc_probe.dispose t.gc_probe;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  Log.info t.config.log "drained"
