(** Size-bounded LRU cache of canonical result bodies.

    Keyed by {!Bfdn_scenario.Scenario.fingerprint}; values are the
    pre-rendered result JSON strings, so a cache hit is served without
    re-serialization and is byte-identical to the miss that populated
    it. Soundness rests on the determinism oracle: same spec (hence same
    fingerprint) ⇒ same result.

    All operations are mutex-guarded — [put] is called from pool worker
    domains, [find] from connection threads. *)

type t

val create : cap:int -> t
(** Retain at most [cap] entries, evicting least-recently-used.
    [cap = 0] disables the cache (every [find] misses, [put] is a
    no-op). @raise Invalid_argument when [cap < 0]. *)

val cap : t -> int

val find : t -> string -> string option
(** Lookup; a hit promotes the entry to most-recently-used and is
    counted in {!stats}. *)

val put : t -> string -> string -> unit
(** Insert or refresh [key ↦ body] as most-recently-used, evicting from
    the LRU end past capacity. Re-inserting an existing key replaces its
    body (with deterministic runs both bodies are identical anyway). *)

val mem : t -> string -> bool
(** Like {!find} but without promoting or counting — for tests and
    introspection. *)

val length : t -> int

val keys_mru : t -> string list
(** Keys from most- to least-recently-used (tests pin eviction order
    against this). *)

type stats = { hits : int; misses : int; evictions : int; size : int }

val stats : t -> stats
