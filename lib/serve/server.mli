(** The scenario-execution service.

    A long-running HTTP/1.1 front end over the existing engine: specs
    come in over [POST /run], are validated against the registries,
    deduplicated against the {!Result_cache} by canonical fingerprint
    and admitted through {!Queue_admission} onto a {!Bfdn_engine.Pool}
    of worker domains; per-job wall-clock timeouts cancel cleanly
    through {!Bfdn_engine.Pool.cancel} from a per-round hook, and
    SIGTERM (via {!stop}) drains gracefully: stop accepting, cancel
    queued jobs, let running jobs finish, shut the pool down.

    Every request is assigned a correlation id at the edge; when
    [trace] is on, a {!Bfdn_obs.Span} recorder follows the request
    through parsing, cache lookup, admission, pool queueing and the
    runner's clock-bracketed phases, and is served back as a span tree
    from [GET /jobs/:id/spans]. Lifecycle events go through the
    structured {!Bfdn_obs.Log}; failed, timed-out, or robot-losing
    jobs leave a postmortem bundle in [postmortem_dir].

    Endpoints:
    - [POST /run] — body: a {!Bfdn_scenario.Scenario} spec. Responds
      [{cache, fingerprint, result}] with [cache] ["hit"] or ["miss"]
      and [result] byte-identical either way. Malformed JSON → 400 with
      a position-annotated error body; queue full → 429 +
      [Retry-After]; draining → 503; per-job timeout → 504. Query
      parameters: [wait=0] returns 202 [{id, status, fingerprint,
      trace}] immediately; [timeout_s=F] overrides the default job
      timeout.
    - [GET /jobs/:id] — job status, with [result] once done and
      [postmortem] when a bundle was written.
    - [GET /jobs/:id/spans] — the job's span tree
      ({!Bfdn_obs.Span.tree_json}), live (open spans carry their
      duration so far).
    - [GET /jobs/:id/stream] — chunked JSONL: one trace frame per
      executed round, live, then a final status line.
    - [GET /metrics] — merged obs registries (HTTP counters, per-job
      simulation metrics, GC pauses, pool latency histograms) plus
      cache and admission statistics; [?format=prometheus] renders the
      same data in text exposition format 0.0.4
      ({!Bfdn_obs.Prometheus.render}) with the service statistics
      folded in as [result_cache_*] / [admission_*] / [pool_workers].
    - [GET /registry] — {!Bfdn_scenario.Scenario.registry_json}.
    - [GET /healthz] — liveness and drain state. *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** [0] picks an ephemeral port (tests, bench) *)
  workers : int;  (** engine pool domains *)
  queue_cap : int;  (** admission bound (queued + running jobs) *)
  cache_cap : int;  (** LRU entries; [0] disables caching *)
  timeout_s : float;  (** default per-job wall-clock timeout *)
  log : Bfdn_obs.Log.t;  (** structured lifecycle/request logging *)
  trace : bool;  (** per-request span recorders (default [true]) *)
  span_sink : (Bfdn_obs.Json.t -> unit) option;
      (** receives every finished span as flat JSON (e.g.
          {!Bfdn_obs.Sink.write_jsonl} to a span log file) *)
  postmortem_dir : string option;
      (** where failure bundles are written (created on demand);
          [None] disables postmortems *)
}

val default_config : config
(** [127.0.0.1:8080], recommended domain count, queue 64, cache 256,
    60 s timeout, silent log, tracing on, no span sink, no postmortem
    directory. *)

type t

val create : config -> t
(** Bind and listen (so a client may connect as soon as [create]
    returns, even before {!run} starts accepting), spawn the worker
    pool. @raise Unix.Unix_error when the address is unavailable. *)

val port : t -> int
(** The bound port — the ephemeral one when the config said [0]. *)

val run : t -> unit
(** Accept loop; returns after {!stop} has been called and the drain
    completed (all in-flight jobs settled, all connections closed, pool
    shut down). Installs [Signal_ignore] for SIGPIPE (a client hanging
    up mid-stream must not kill the server); the caller owns SIGTERM
    wiring (the CLI maps it to {!stop}). *)

val stop : t -> unit
(** Idempotent, callable from any thread or signal handler: stop
    accepting, then let {!run} drain and return. *)

val request_count : t -> int
(** Requests handled so far (tests). *)
