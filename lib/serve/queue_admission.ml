module Scenario = Bfdn_scenario.Scenario
module Stream = Bfdn_obs.Sink.Stream
module Ring = Bfdn_obs.Sink.Ring
module Span = Bfdn_obs.Span
module Pool = Bfdn_engine.Pool

type state =
  | Queued
  | Running
  | Done of string
  | Failed of string
  | Timeout
  | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Failed _ -> "failed"
  | Timeout -> "timeout"
  | Cancelled -> "cancelled"

let is_terminal = function
  | Queued | Running -> false
  | Done _ | Failed _ | Timeout | Cancelled -> true

type job = {
  id : int;
  spec : Scenario.t;
  fingerprint : string;
  timeout_s : float;
  stream : Stream.t;
  token : Pool.token;
  trace : string;
  span : Span.t;
  root_span : Span.id;
  queue_span : Span.id;
  frames : Bfdn_obs.Json.t Ring.t;
  mutable state : state;
  mutable timed_out : bool;
  mutable postmortem : string option;
}

type t = {
  capacity : int;
  keep_terminal : int;
  m : Mutex.t;
  changed : Condition.t; (* broadcast on every state transition *)
  jobs : (int, job) Hashtbl.t;
  order : int Queue.t; (* admission order, for terminal pruning *)
  mutable next_id : int;
  mutable inflight : int;
  mutable draining : bool;
}

let create ?(cap = 64) ?(keep_terminal = 256) () =
  if cap < 1 then invalid_arg "Queue_admission.create: cap must be >= 1";
  if keep_terminal < 0 then
    invalid_arg "Queue_admission.create: keep_terminal must be >= 0";
  {
    capacity = cap;
    keep_terminal;
    m = Mutex.create ();
    changed = Condition.create ();
    jobs = Hashtbl.create 64;
    order = Queue.create ();
    next_id = 0;
    inflight = 0;
    draining = false;
  }

let cap t = t.capacity

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Drop the oldest settled jobs once more than [keep_terminal] terminal
   jobs are retained. In-flight jobs are never pruned: ids are popped
   from [order] only when the head is terminal, which preserves the
   bound because admissions (hence heads) settle eventually. *)
let prune t =
  let terminal =
    Hashtbl.length t.jobs - t.inflight
  in
  let excess = ref (terminal - t.keep_terminal) in
  let parked = Queue.create () in
  while !excess > 0 && not (Queue.is_empty t.order) do
    let id = Queue.pop t.order in
    match Hashtbl.find_opt t.jobs id with
    | Some j when is_terminal j.state ->
        Hashtbl.remove t.jobs id;
        decr excess
    | Some _ -> Queue.push id parked
    | None -> ()
  done;
  (* Re-queue skipped in-flight ids ahead of the remaining order. *)
  Queue.transfer t.order parked;
  Queue.transfer parked t.order

let frame_ring_cap = 64

let admit ?(trace = "") ?(span = Span.disabled) ?(parent = Span.none) t
    ~timeout_s ~fingerprint spec =
  locked t (fun () ->
      if t.draining then Error `Draining
      else if t.inflight >= t.capacity then Error `Full
      else begin
        let id = t.next_id in
        t.next_id <- id + 1;
        let job =
          {
            id;
            spec;
            fingerprint;
            timeout_s;
            stream = Stream.create ();
            token = Pool.token ();
            trace;
            span;
            root_span = parent;
            (* Opened here so the span covers admission-to-execution
               latency; the executor closes it at [mark_running]. *)
            queue_span = Span.start ~parent span "queue";
            frames = Ring.create frame_ring_cap;
            state = Queued;
            timed_out = false;
            postmortem = None;
          }
        in
        Hashtbl.replace t.jobs id job;
        Queue.push id t.order;
        t.inflight <- t.inflight + 1;
        prune t;
        Ok job
      end)

let find t id = locked t (fun () -> Hashtbl.find_opt t.jobs id)

let mark_running t job =
  locked t (fun () ->
      match job.state with
      | Queued ->
          job.state <- Running;
          Condition.broadcast t.changed;
          true
      | _ -> false)

let settle t job st =
  if not (is_terminal st) then
    invalid_arg "Queue_admission.settle: state must be terminal";
  locked t (fun () ->
      if not (is_terminal job.state) then begin
        job.state <- st;
        t.inflight <- t.inflight - 1;
        Condition.broadcast t.changed
      end);
  (* Close outside the table lock: closing broadcasts the stream's own
     condition and must never deadlock against a pushing producer. *)
  Stream.close job.stream

let await t job =
  locked t (fun () ->
      while not (is_terminal job.state) do
        Condition.wait t.changed t.m
      done;
      job.state)

let state t job = locked t (fun () -> job.state)
let inflight t = locked t (fun () -> t.inflight)

let retry_after_s t =
  let horizon =
    locked t (fun () ->
        Hashtbl.fold
          (fun _ j acc ->
            if is_terminal j.state then acc else Float.max acc j.timeout_s)
          t.jobs 0.)
  in
  max 1 (int_of_float (ceil (horizon /. 2.)))

let drain t =
  let to_cancel =
    locked t (fun () ->
        t.draining <- true;
        Hashtbl.fold
          (fun _ j acc -> if j.state = Queued then j :: acc else acc)
          t.jobs [])
  in
  (* Cancel first so the pool skips the task, then settle; a worker
     racing into [mark_running] loses because the job is terminal. *)
  List.iter
    (fun j ->
      Pool.cancel j.token;
      settle t j Cancelled)
    to_cancel

let draining t = locked t (fun () -> t.draining)

let await_idle t =
  locked t (fun () ->
      while t.inflight > 0 do
        Condition.wait t.changed t.m
      done)

let jobs_admitted t = locked t (fun () -> t.next_id)
